# Empty dependencies file for bench_asic_redesign.
# This may be replaced when dependencies are built.
