file(REMOVE_RECURSE
  "CMakeFiles/bench_asic_redesign.dir/bench_asic_redesign.cpp.o"
  "CMakeFiles/bench_asic_redesign.dir/bench_asic_redesign.cpp.o.d"
  "bench_asic_redesign"
  "bench_asic_redesign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_asic_redesign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
