file(REMOVE_RECURSE
  "CMakeFiles/bench_mech_ablation.dir/bench_mech_ablation.cpp.o"
  "CMakeFiles/bench_mech_ablation.dir/bench_mech_ablation.cpp.o.d"
  "bench_mech_ablation"
  "bench_mech_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mech_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
