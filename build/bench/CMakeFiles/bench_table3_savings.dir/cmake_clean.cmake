file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_savings.dir/bench_table3_savings.cpp.o"
  "CMakeFiles/bench_table3_savings.dir/bench_table3_savings.cpp.o.d"
  "bench_table3_savings"
  "bench_table3_savings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_savings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
