file(REMOVE_RECURSE
  "CMakeFiles/bench_job_scheduling.dir/bench_job_scheduling.cpp.o"
  "CMakeFiles/bench_job_scheduling.dir/bench_job_scheduling.cpp.o.d"
  "bench_job_scheduling"
  "bench_job_scheduling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_job_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
