file(REMOVE_RECURSE
  "CMakeFiles/bench_model_extensions.dir/bench_model_extensions.cpp.o"
  "CMakeFiles/bench_model_extensions.dir/bench_model_extensions.cpp.o.d"
  "bench_model_extensions"
  "bench_model_extensions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_model_extensions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
