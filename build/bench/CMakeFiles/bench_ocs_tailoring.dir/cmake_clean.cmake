file(REMOVE_RECURSE
  "CMakeFiles/bench_ocs_tailoring.dir/bench_ocs_tailoring.cpp.o"
  "CMakeFiles/bench_ocs_tailoring.dir/bench_ocs_tailoring.cpp.o.d"
  "bench_ocs_tailoring"
  "bench_ocs_tailoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ocs_tailoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
