# Empty dependencies file for bench_ocs_tailoring.
# This may be replaced when dependencies are built.
