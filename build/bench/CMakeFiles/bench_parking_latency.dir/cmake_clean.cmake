file(REMOVE_RECURSE
  "CMakeFiles/bench_parking_latency.dir/bench_parking_latency.cpp.o"
  "CMakeFiles/bench_parking_latency.dir/bench_parking_latency.cpp.o.d"
  "bench_parking_latency"
  "bench_parking_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_parking_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
