
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_parking_latency.cpp" "bench/CMakeFiles/bench_parking_latency.dir/bench_parking_latency.cpp.o" "gcc" "bench/CMakeFiles/bench_parking_latency.dir/bench_parking_latency.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mech/CMakeFiles/netpp_mech.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/netpp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/netpp_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/netpp_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/netpp_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
