# Empty dependencies file for bench_parking_latency.
# This may be replaced when dependencies are built.
