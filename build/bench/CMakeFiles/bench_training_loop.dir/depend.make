# Empty dependencies file for bench_training_loop.
# This may be replaced when dependencies are built.
