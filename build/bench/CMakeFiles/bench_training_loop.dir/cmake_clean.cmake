file(REMOVE_RECURSE
  "CMakeFiles/bench_training_loop.dir/bench_training_loop.cpp.o"
  "CMakeFiles/bench_training_loop.dir/bench_training_loop.cpp.o.d"
  "bench_training_loop"
  "bench_training_loop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_training_loop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
