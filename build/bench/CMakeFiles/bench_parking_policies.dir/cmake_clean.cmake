file(REMOVE_RECURSE
  "CMakeFiles/bench_parking_policies.dir/bench_parking_policies.cpp.o"
  "CMakeFiles/bench_parking_policies.dir/bench_parking_policies.cpp.o.d"
  "bench_parking_policies"
  "bench_parking_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_parking_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
