# Empty dependencies file for bench_parking_policies.
# This may be replaced when dependencies are built.
