file(REMOVE_RECURSE
  "CMakeFiles/bench_eee_baseline.dir/bench_eee_baseline.cpp.o"
  "CMakeFiles/bench_eee_baseline.dir/bench_eee_baseline.cpp.o.d"
  "bench_eee_baseline"
  "bench_eee_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_eee_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
