# Empty dependencies file for bench_eee_baseline.
# This may be replaced when dependencies are built.
