# Empty dependencies file for bench_fleet_knobs.
# This may be replaced when dependencies are built.
