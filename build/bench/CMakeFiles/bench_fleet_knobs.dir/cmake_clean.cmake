file(REMOVE_RECURSE
  "CMakeFiles/bench_fleet_knobs.dir/bench_fleet_knobs.cpp.o"
  "CMakeFiles/bench_fleet_knobs.dir/bench_fleet_knobs.cpp.o.d"
  "bench_fleet_knobs"
  "bench_fleet_knobs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fleet_knobs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
