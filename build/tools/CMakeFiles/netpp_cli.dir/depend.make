# Empty dependencies file for netpp_cli.
# This may be replaced when dependencies are built.
