file(REMOVE_RECURSE
  "CMakeFiles/netpp_cli.dir/netpp_cli.cpp.o"
  "CMakeFiles/netpp_cli.dir/netpp_cli.cpp.o.d"
  "netpp_cli"
  "netpp_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netpp_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
