# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_cluster "/root/repo/build/tools/netpp_cli" "cluster")
set_tests_properties(cli_cluster PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_table3_csv "/root/repo/build/tools/netpp_cli" "table3" "--csv")
set_tests_properties(cli_table3_csv PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_savings "/root/repo/build/tools/netpp_cli" "savings" "--prop" "0.85")
set_tests_properties(cli_savings PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_sensitivity "/root/repo/build/tools/netpp_cli" "sensitivity" "--csv")
set_tests_properties(cli_sensitivity PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
