file(REMOVE_RECURSE
  "libnetpp_netsim.a"
)
