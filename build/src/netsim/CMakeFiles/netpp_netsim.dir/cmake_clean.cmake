file(REMOVE_RECURSE
  "CMakeFiles/netpp_netsim.dir/energy_tracker.cpp.o"
  "CMakeFiles/netpp_netsim.dir/energy_tracker.cpp.o.d"
  "CMakeFiles/netpp_netsim.dir/fairshare.cpp.o"
  "CMakeFiles/netpp_netsim.dir/fairshare.cpp.o.d"
  "CMakeFiles/netpp_netsim.dir/flowsim.cpp.o"
  "CMakeFiles/netpp_netsim.dir/flowsim.cpp.o.d"
  "libnetpp_netsim.a"
  "libnetpp_netsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netpp_netsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
