# Empty compiler generated dependencies file for netpp_netsim.
# This may be replaced when dependencies are built.
