file(REMOVE_RECURSE
  "libnetpp_traffic.a"
)
