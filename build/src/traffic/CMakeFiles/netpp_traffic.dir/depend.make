# Empty dependencies file for netpp_traffic.
# This may be replaced when dependencies are built.
