file(REMOVE_RECURSE
  "CMakeFiles/netpp_traffic.dir/generators.cpp.o"
  "CMakeFiles/netpp_traffic.dir/generators.cpp.o.d"
  "CMakeFiles/netpp_traffic.dir/training_loop.cpp.o"
  "CMakeFiles/netpp_traffic.dir/training_loop.cpp.o.d"
  "libnetpp_traffic.a"
  "libnetpp_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netpp_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
