file(REMOVE_RECURSE
  "CMakeFiles/netpp_topo.dir/builders.cpp.o"
  "CMakeFiles/netpp_topo.dir/builders.cpp.o.d"
  "CMakeFiles/netpp_topo.dir/graph.cpp.o"
  "CMakeFiles/netpp_topo.dir/graph.cpp.o.d"
  "CMakeFiles/netpp_topo.dir/maxflow.cpp.o"
  "CMakeFiles/netpp_topo.dir/maxflow.cpp.o.d"
  "CMakeFiles/netpp_topo.dir/routing.cpp.o"
  "CMakeFiles/netpp_topo.dir/routing.cpp.o.d"
  "libnetpp_topo.a"
  "libnetpp_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netpp_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
