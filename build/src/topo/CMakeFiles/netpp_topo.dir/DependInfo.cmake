
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topo/builders.cpp" "src/topo/CMakeFiles/netpp_topo.dir/builders.cpp.o" "gcc" "src/topo/CMakeFiles/netpp_topo.dir/builders.cpp.o.d"
  "/root/repo/src/topo/graph.cpp" "src/topo/CMakeFiles/netpp_topo.dir/graph.cpp.o" "gcc" "src/topo/CMakeFiles/netpp_topo.dir/graph.cpp.o.d"
  "/root/repo/src/topo/maxflow.cpp" "src/topo/CMakeFiles/netpp_topo.dir/maxflow.cpp.o" "gcc" "src/topo/CMakeFiles/netpp_topo.dir/maxflow.cpp.o.d"
  "/root/repo/src/topo/routing.cpp" "src/topo/CMakeFiles/netpp_topo.dir/routing.cpp.o" "gcc" "src/topo/CMakeFiles/netpp_topo.dir/routing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/netpp_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
