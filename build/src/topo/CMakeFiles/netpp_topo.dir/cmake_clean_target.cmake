file(REMOVE_RECURSE
  "libnetpp_topo.a"
)
