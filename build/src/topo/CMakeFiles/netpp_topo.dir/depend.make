# Empty dependencies file for netpp_topo.
# This may be replaced when dependencies are built.
