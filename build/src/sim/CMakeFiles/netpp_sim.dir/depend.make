# Empty dependencies file for netpp_sim.
# This may be replaced when dependencies are built.
