file(REMOVE_RECURSE
  "libnetpp_sim.a"
)
