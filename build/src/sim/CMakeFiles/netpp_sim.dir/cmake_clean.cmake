file(REMOVE_RECURSE
  "CMakeFiles/netpp_sim.dir/energy.cpp.o"
  "CMakeFiles/netpp_sim.dir/energy.cpp.o.d"
  "CMakeFiles/netpp_sim.dir/engine.cpp.o"
  "CMakeFiles/netpp_sim.dir/engine.cpp.o.d"
  "CMakeFiles/netpp_sim.dir/random.cpp.o"
  "CMakeFiles/netpp_sim.dir/random.cpp.o.d"
  "CMakeFiles/netpp_sim.dir/stats.cpp.o"
  "CMakeFiles/netpp_sim.dir/stats.cpp.o.d"
  "libnetpp_sim.a"
  "libnetpp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netpp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
