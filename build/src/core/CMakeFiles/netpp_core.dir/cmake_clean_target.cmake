file(REMOVE_RECURSE
  "libnetpp_core.a"
)
