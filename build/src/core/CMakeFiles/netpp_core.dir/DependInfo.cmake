
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/analysis/overlap.cpp" "src/core/CMakeFiles/netpp_core.dir/analysis/overlap.cpp.o" "gcc" "src/core/CMakeFiles/netpp_core.dir/analysis/overlap.cpp.o.d"
  "/root/repo/src/core/analysis/peak_power.cpp" "src/core/CMakeFiles/netpp_core.dir/analysis/peak_power.cpp.o" "gcc" "src/core/CMakeFiles/netpp_core.dir/analysis/peak_power.cpp.o.d"
  "/root/repo/src/core/analysis/report.cpp" "src/core/CMakeFiles/netpp_core.dir/analysis/report.cpp.o" "gcc" "src/core/CMakeFiles/netpp_core.dir/analysis/report.cpp.o.d"
  "/root/repo/src/core/analysis/savings.cpp" "src/core/CMakeFiles/netpp_core.dir/analysis/savings.cpp.o" "gcc" "src/core/CMakeFiles/netpp_core.dir/analysis/savings.cpp.o.d"
  "/root/repo/src/core/analysis/sensitivity.cpp" "src/core/CMakeFiles/netpp_core.dir/analysis/sensitivity.cpp.o" "gcc" "src/core/CMakeFiles/netpp_core.dir/analysis/sensitivity.cpp.o.d"
  "/root/repo/src/core/analysis/speedup.cpp" "src/core/CMakeFiles/netpp_core.dir/analysis/speedup.cpp.o" "gcc" "src/core/CMakeFiles/netpp_core.dir/analysis/speedup.cpp.o.d"
  "/root/repo/src/core/cluster/cluster.cpp" "src/core/CMakeFiles/netpp_core.dir/cluster/cluster.cpp.o" "gcc" "src/core/CMakeFiles/netpp_core.dir/cluster/cluster.cpp.o.d"
  "/root/repo/src/core/power/catalog.cpp" "src/core/CMakeFiles/netpp_core.dir/power/catalog.cpp.o" "gcc" "src/core/CMakeFiles/netpp_core.dir/power/catalog.cpp.o.d"
  "/root/repo/src/core/power/switch_model.cpp" "src/core/CMakeFiles/netpp_core.dir/power/switch_model.cpp.o" "gcc" "src/core/CMakeFiles/netpp_core.dir/power/switch_model.cpp.o.d"
  "/root/repo/src/core/topomodel/fattree.cpp" "src/core/CMakeFiles/netpp_core.dir/topomodel/fattree.cpp.o" "gcc" "src/core/CMakeFiles/netpp_core.dir/topomodel/fattree.cpp.o.d"
  "/root/repo/src/core/units.cpp" "src/core/CMakeFiles/netpp_core.dir/units.cpp.o" "gcc" "src/core/CMakeFiles/netpp_core.dir/units.cpp.o.d"
  "/root/repo/src/core/workload/phase_model.cpp" "src/core/CMakeFiles/netpp_core.dir/workload/phase_model.cpp.o" "gcc" "src/core/CMakeFiles/netpp_core.dir/workload/phase_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
