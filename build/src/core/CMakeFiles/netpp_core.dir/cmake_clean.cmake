file(REMOVE_RECURSE
  "CMakeFiles/netpp_core.dir/analysis/overlap.cpp.o"
  "CMakeFiles/netpp_core.dir/analysis/overlap.cpp.o.d"
  "CMakeFiles/netpp_core.dir/analysis/peak_power.cpp.o"
  "CMakeFiles/netpp_core.dir/analysis/peak_power.cpp.o.d"
  "CMakeFiles/netpp_core.dir/analysis/report.cpp.o"
  "CMakeFiles/netpp_core.dir/analysis/report.cpp.o.d"
  "CMakeFiles/netpp_core.dir/analysis/savings.cpp.o"
  "CMakeFiles/netpp_core.dir/analysis/savings.cpp.o.d"
  "CMakeFiles/netpp_core.dir/analysis/sensitivity.cpp.o"
  "CMakeFiles/netpp_core.dir/analysis/sensitivity.cpp.o.d"
  "CMakeFiles/netpp_core.dir/analysis/speedup.cpp.o"
  "CMakeFiles/netpp_core.dir/analysis/speedup.cpp.o.d"
  "CMakeFiles/netpp_core.dir/cluster/cluster.cpp.o"
  "CMakeFiles/netpp_core.dir/cluster/cluster.cpp.o.d"
  "CMakeFiles/netpp_core.dir/power/catalog.cpp.o"
  "CMakeFiles/netpp_core.dir/power/catalog.cpp.o.d"
  "CMakeFiles/netpp_core.dir/power/switch_model.cpp.o"
  "CMakeFiles/netpp_core.dir/power/switch_model.cpp.o.d"
  "CMakeFiles/netpp_core.dir/topomodel/fattree.cpp.o"
  "CMakeFiles/netpp_core.dir/topomodel/fattree.cpp.o.d"
  "CMakeFiles/netpp_core.dir/units.cpp.o"
  "CMakeFiles/netpp_core.dir/units.cpp.o.d"
  "CMakeFiles/netpp_core.dir/workload/phase_model.cpp.o"
  "CMakeFiles/netpp_core.dir/workload/phase_model.cpp.o.d"
  "libnetpp_core.a"
  "libnetpp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netpp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
