# Empty dependencies file for netpp_core.
# This may be replaced when dependencies are built.
