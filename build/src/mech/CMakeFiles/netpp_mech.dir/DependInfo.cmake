
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mech/downrate.cpp" "src/mech/CMakeFiles/netpp_mech.dir/downrate.cpp.o" "gcc" "src/mech/CMakeFiles/netpp_mech.dir/downrate.cpp.o.d"
  "/root/repo/src/mech/eee.cpp" "src/mech/CMakeFiles/netpp_mech.dir/eee.cpp.o" "gcc" "src/mech/CMakeFiles/netpp_mech.dir/eee.cpp.o.d"
  "/root/repo/src/mech/knobs.cpp" "src/mech/CMakeFiles/netpp_mech.dir/knobs.cpp.o" "gcc" "src/mech/CMakeFiles/netpp_mech.dir/knobs.cpp.o.d"
  "/root/repo/src/mech/ocs.cpp" "src/mech/CMakeFiles/netpp_mech.dir/ocs.cpp.o" "gcc" "src/mech/CMakeFiles/netpp_mech.dir/ocs.cpp.o.d"
  "/root/repo/src/mech/packet_switch.cpp" "src/mech/CMakeFiles/netpp_mech.dir/packet_switch.cpp.o" "gcc" "src/mech/CMakeFiles/netpp_mech.dir/packet_switch.cpp.o.d"
  "/root/repo/src/mech/parking.cpp" "src/mech/CMakeFiles/netpp_mech.dir/parking.cpp.o" "gcc" "src/mech/CMakeFiles/netpp_mech.dir/parking.cpp.o.d"
  "/root/repo/src/mech/rateadapt.cpp" "src/mech/CMakeFiles/netpp_mech.dir/rateadapt.cpp.o" "gcc" "src/mech/CMakeFiles/netpp_mech.dir/rateadapt.cpp.o.d"
  "/root/repo/src/mech/redesign.cpp" "src/mech/CMakeFiles/netpp_mech.dir/redesign.cpp.o" "gcc" "src/mech/CMakeFiles/netpp_mech.dir/redesign.cpp.o.d"
  "/root/repo/src/mech/scheduler.cpp" "src/mech/CMakeFiles/netpp_mech.dir/scheduler.cpp.o" "gcc" "src/mech/CMakeFiles/netpp_mech.dir/scheduler.cpp.o.d"
  "/root/repo/src/mech/trace_recorder.cpp" "src/mech/CMakeFiles/netpp_mech.dir/trace_recorder.cpp.o" "gcc" "src/mech/CMakeFiles/netpp_mech.dir/trace_recorder.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/netpp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/netpp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/netpp_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/netpp_netsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
