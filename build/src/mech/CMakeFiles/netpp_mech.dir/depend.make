# Empty dependencies file for netpp_mech.
# This may be replaced when dependencies are built.
