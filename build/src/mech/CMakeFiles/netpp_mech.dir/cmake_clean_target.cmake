file(REMOVE_RECURSE
  "libnetpp_mech.a"
)
