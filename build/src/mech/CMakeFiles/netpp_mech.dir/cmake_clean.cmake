file(REMOVE_RECURSE
  "CMakeFiles/netpp_mech.dir/downrate.cpp.o"
  "CMakeFiles/netpp_mech.dir/downrate.cpp.o.d"
  "CMakeFiles/netpp_mech.dir/eee.cpp.o"
  "CMakeFiles/netpp_mech.dir/eee.cpp.o.d"
  "CMakeFiles/netpp_mech.dir/knobs.cpp.o"
  "CMakeFiles/netpp_mech.dir/knobs.cpp.o.d"
  "CMakeFiles/netpp_mech.dir/ocs.cpp.o"
  "CMakeFiles/netpp_mech.dir/ocs.cpp.o.d"
  "CMakeFiles/netpp_mech.dir/packet_switch.cpp.o"
  "CMakeFiles/netpp_mech.dir/packet_switch.cpp.o.d"
  "CMakeFiles/netpp_mech.dir/parking.cpp.o"
  "CMakeFiles/netpp_mech.dir/parking.cpp.o.d"
  "CMakeFiles/netpp_mech.dir/rateadapt.cpp.o"
  "CMakeFiles/netpp_mech.dir/rateadapt.cpp.o.d"
  "CMakeFiles/netpp_mech.dir/redesign.cpp.o"
  "CMakeFiles/netpp_mech.dir/redesign.cpp.o.d"
  "CMakeFiles/netpp_mech.dir/scheduler.cpp.o"
  "CMakeFiles/netpp_mech.dir/scheduler.cpp.o.d"
  "CMakeFiles/netpp_mech.dir/trace_recorder.cpp.o"
  "CMakeFiles/netpp_mech.dir/trace_recorder.cpp.o.d"
  "libnetpp_mech.a"
  "libnetpp_mech.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netpp_mech.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
