file(REMOVE_RECURSE
  "CMakeFiles/switch_model_test.dir/core/switch_model_test.cpp.o"
  "CMakeFiles/switch_model_test.dir/core/switch_model_test.cpp.o.d"
  "switch_model_test"
  "switch_model_test.pdb"
  "switch_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/switch_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
