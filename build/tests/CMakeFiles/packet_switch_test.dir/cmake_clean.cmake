file(REMOVE_RECURSE
  "CMakeFiles/packet_switch_test.dir/mech/packet_switch_test.cpp.o"
  "CMakeFiles/packet_switch_test.dir/mech/packet_switch_test.cpp.o.d"
  "packet_switch_test"
  "packet_switch_test.pdb"
  "packet_switch_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/packet_switch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
