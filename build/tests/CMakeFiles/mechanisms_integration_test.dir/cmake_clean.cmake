file(REMOVE_RECURSE
  "CMakeFiles/mechanisms_integration_test.dir/integration/mechanisms_integration_test.cpp.o"
  "CMakeFiles/mechanisms_integration_test.dir/integration/mechanisms_integration_test.cpp.o.d"
  "mechanisms_integration_test"
  "mechanisms_integration_test.pdb"
  "mechanisms_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mechanisms_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
