# Empty dependencies file for downrate_test.
# This may be replaced when dependencies are built.
