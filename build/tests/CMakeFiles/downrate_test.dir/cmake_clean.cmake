file(REMOVE_RECURSE
  "CMakeFiles/downrate_test.dir/mech/downrate_test.cpp.o"
  "CMakeFiles/downrate_test.dir/mech/downrate_test.cpp.o.d"
  "downrate_test"
  "downrate_test.pdb"
  "downrate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/downrate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
