file(REMOVE_RECURSE
  "CMakeFiles/ocs_test.dir/mech/ocs_test.cpp.o"
  "CMakeFiles/ocs_test.dir/mech/ocs_test.cpp.o.d"
  "ocs_test"
  "ocs_test.pdb"
  "ocs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ocs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
