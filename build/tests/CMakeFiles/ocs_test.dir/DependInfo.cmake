
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/mech/ocs_test.cpp" "tests/CMakeFiles/ocs_test.dir/mech/ocs_test.cpp.o" "gcc" "tests/CMakeFiles/ocs_test.dir/mech/ocs_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mech/CMakeFiles/netpp_mech.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/netpp_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/netpp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/netpp_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/netpp_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
