file(REMOVE_RECURSE
  "CMakeFiles/fattree_test.dir/core/fattree_test.cpp.o"
  "CMakeFiles/fattree_test.dir/core/fattree_test.cpp.o.d"
  "fattree_test"
  "fattree_test.pdb"
  "fattree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fattree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
