# Empty compiler generated dependencies file for fattree_test.
# This may be replaced when dependencies are built.
