file(REMOVE_RECURSE
  "CMakeFiles/training_loop_test.dir/traffic/training_loop_test.cpp.o"
  "CMakeFiles/training_loop_test.dir/traffic/training_loop_test.cpp.o.d"
  "training_loop_test"
  "training_loop_test.pdb"
  "training_loop_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/training_loop_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
