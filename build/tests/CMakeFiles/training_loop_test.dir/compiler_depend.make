# Empty compiler generated dependencies file for training_loop_test.
# This may be replaced when dependencies are built.
