file(REMOVE_RECURSE
  "CMakeFiles/redesign_test.dir/mech/redesign_test.cpp.o"
  "CMakeFiles/redesign_test.dir/mech/redesign_test.cpp.o.d"
  "redesign_test"
  "redesign_test.pdb"
  "redesign_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/redesign_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
