# Empty dependencies file for redesign_test.
# This may be replaced when dependencies are built.
