# Empty dependencies file for sim_vs_model_test.
# This may be replaced when dependencies are built.
