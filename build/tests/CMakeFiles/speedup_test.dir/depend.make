# Empty dependencies file for speedup_test.
# This may be replaced when dependencies are built.
