file(REMOVE_RECURSE
  "CMakeFiles/savings_test.dir/core/savings_test.cpp.o"
  "CMakeFiles/savings_test.dir/core/savings_test.cpp.o.d"
  "savings_test"
  "savings_test.pdb"
  "savings_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/savings_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
