# Empty compiler generated dependencies file for peak_power_test.
# This may be replaced when dependencies are built.
