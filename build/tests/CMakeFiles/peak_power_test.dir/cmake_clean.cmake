file(REMOVE_RECURSE
  "CMakeFiles/peak_power_test.dir/core/peak_power_test.cpp.o"
  "CMakeFiles/peak_power_test.dir/core/peak_power_test.cpp.o.d"
  "peak_power_test"
  "peak_power_test.pdb"
  "peak_power_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/peak_power_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
