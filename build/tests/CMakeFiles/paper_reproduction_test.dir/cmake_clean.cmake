file(REMOVE_RECURSE
  "CMakeFiles/paper_reproduction_test.dir/core/paper_reproduction_test.cpp.o"
  "CMakeFiles/paper_reproduction_test.dir/core/paper_reproduction_test.cpp.o.d"
  "paper_reproduction_test"
  "paper_reproduction_test.pdb"
  "paper_reproduction_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paper_reproduction_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
