file(REMOVE_RECURSE
  "CMakeFiles/energy_tracker_test.dir/netsim/energy_tracker_test.cpp.o"
  "CMakeFiles/energy_tracker_test.dir/netsim/energy_tracker_test.cpp.o.d"
  "energy_tracker_test"
  "energy_tracker_test.pdb"
  "energy_tracker_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/energy_tracker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
