# Empty compiler generated dependencies file for energy_tracker_test.
# This may be replaced when dependencies are built.
