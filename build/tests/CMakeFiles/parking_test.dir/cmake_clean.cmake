file(REMOVE_RECURSE
  "CMakeFiles/parking_test.dir/mech/parking_test.cpp.o"
  "CMakeFiles/parking_test.dir/mech/parking_test.cpp.o.d"
  "parking_test"
  "parking_test.pdb"
  "parking_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parking_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
