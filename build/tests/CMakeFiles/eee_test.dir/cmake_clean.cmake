file(REMOVE_RECURSE
  "CMakeFiles/eee_test.dir/mech/eee_test.cpp.o"
  "CMakeFiles/eee_test.dir/mech/eee_test.cpp.o.d"
  "eee_test"
  "eee_test.pdb"
  "eee_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eee_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
