# Empty compiler generated dependencies file for eee_test.
# This may be replaced when dependencies are built.
