file(REMOVE_RECURSE
  "CMakeFiles/rateadapt_test.dir/mech/rateadapt_test.cpp.o"
  "CMakeFiles/rateadapt_test.dir/mech/rateadapt_test.cpp.o.d"
  "rateadapt_test"
  "rateadapt_test.pdb"
  "rateadapt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rateadapt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
