# Empty dependencies file for rateadapt_test.
# This may be replaced when dependencies are built.
