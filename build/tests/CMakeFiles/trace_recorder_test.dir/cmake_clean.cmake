file(REMOVE_RECURSE
  "CMakeFiles/trace_recorder_test.dir/mech/trace_recorder_test.cpp.o"
  "CMakeFiles/trace_recorder_test.dir/mech/trace_recorder_test.cpp.o.d"
  "trace_recorder_test"
  "trace_recorder_test.pdb"
  "trace_recorder_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_recorder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
