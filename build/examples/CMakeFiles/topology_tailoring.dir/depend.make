# Empty dependencies file for topology_tailoring.
# This may be replaced when dependencies are built.
