file(REMOVE_RECURSE
  "CMakeFiles/topology_tailoring.dir/topology_tailoring.cpp.o"
  "CMakeFiles/topology_tailoring.dir/topology_tailoring.cpp.o.d"
  "topology_tailoring"
  "topology_tailoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topology_tailoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
