# Empty dependencies file for whatif_ml_cluster.
# This may be replaced when dependencies are built.
