file(REMOVE_RECURSE
  "CMakeFiles/whatif_ml_cluster.dir/whatif_ml_cluster.cpp.o"
  "CMakeFiles/whatif_ml_cluster.dir/whatif_ml_cluster.cpp.o.d"
  "whatif_ml_cluster"
  "whatif_ml_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whatif_ml_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
