# Empty dependencies file for pipeline_parking_demo.
# This may be replaced when dependencies are built.
