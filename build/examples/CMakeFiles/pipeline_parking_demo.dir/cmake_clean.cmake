file(REMOVE_RECURSE
  "CMakeFiles/pipeline_parking_demo.dir/pipeline_parking_demo.cpp.o"
  "CMakeFiles/pipeline_parking_demo.dir/pipeline_parking_demo.cpp.o.d"
  "pipeline_parking_demo"
  "pipeline_parking_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipeline_parking_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
