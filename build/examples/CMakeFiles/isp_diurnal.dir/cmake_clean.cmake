file(REMOVE_RECURSE
  "CMakeFiles/isp_diurnal.dir/isp_diurnal.cpp.o"
  "CMakeFiles/isp_diurnal.dir/isp_diurnal.cpp.o.d"
  "isp_diurnal"
  "isp_diurnal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isp_diurnal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
