# Empty dependencies file for isp_diurnal.
# This may be replaced when dependencies are built.
