# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;5;add_test;/root/repo/examples/CMakeLists.txt;9;netpp_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_whatif_ml_cluster "/root/repo/build/examples/whatif_ml_cluster")
set_tests_properties(example_whatif_ml_cluster PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;5;add_test;/root/repo/examples/CMakeLists.txt;10;netpp_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_isp_diurnal "/root/repo/build/examples/isp_diurnal")
set_tests_properties(example_isp_diurnal PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;5;add_test;/root/repo/examples/CMakeLists.txt;11;netpp_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_pipeline_parking_demo "/root/repo/build/examples/pipeline_parking_demo")
set_tests_properties(example_pipeline_parking_demo PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;5;add_test;/root/repo/examples/CMakeLists.txt;12;netpp_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_topology_tailoring "/root/repo/build/examples/topology_tailoring")
set_tests_properties(example_topology_tailoring PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;5;add_test;/root/repo/examples/CMakeLists.txt;13;netpp_add_example;/root/repo/examples/CMakeLists.txt;0;")
