// Pipeline parking end-to-end demo (paper §4.4): run ML training traffic
// over a simulated fat tree, record one edge switch's load, and compare
// reactive vs schedule-driven predictive parking including the buffering
// cost of wake latency.
//
//   ./build/examples/pipeline_parking_demo
#include <cstdio>

#include "netpp/mech/parking.h"
#include "netpp/mech/trace_recorder.h"
#include "netpp/topo/builders.h"
#include "netpp/traffic/generators.h"

int main() {
  using namespace netpp;
  using namespace netpp::literals;

  const auto topo = build_fat_tree(4, 100_Gbps);
  SimEngine engine;
  Router router{topo.graph};
  FlowSimulator sim{topo.graph, router, engine};

  MlTrafficConfig traffic_cfg;
  traffic_cfg.compute_time = 0.9_s;
  traffic_cfg.comm_allowance = 0.1_s;
  traffic_cfg.iterations = 6;
  traffic_cfg.volume_per_host = Bits::from_gigabits(2.0);
  const auto traffic = make_ml_training_traffic(topo.hosts, traffic_cfg);

  const NodeId edge = topo.graph.nodes_at_tier(1).front();
  NodeLoadRecorder recorder{sim, {edge}};
  sim.set_load_listener(recorder.listener());
  recorder.sample(0.0_s);
  for (const auto& flow : traffic.flows) sim.submit(flow);
  engine.run();
  const Seconds horizon{6.0};
  engine.run_until(horizon);

  std::printf("ML job: %d iterations, %zu flows, all %zu completed\n\n",
              traffic_cfg.iterations, traffic.flows.size(),
              sim.completed().size());

  const auto trace = recorder.aggregate_trace(edge, horizon);
  std::printf("Edge switch %s load trace (%zu segments):\n",
              topo.graph.node(edge).name.c_str(), trace.loads.size());
  for (std::size_t i = 0; i < trace.times.size() && i < 8; ++i) {
    std::printf("  t=%.3fs  load=%.1f%%\n", trace.times[i].value(),
                100.0 * trace.loads[i]);
  }
  std::printf("  ...\n\n");

  ParkingConfig cfg;
  cfg.model = SwitchPowerModel{};
  cfg.switch_capacity = Gbps{4 * 100.0};  // this edge switch: 4 x 100 G
  std::vector<LoadForecast> forecast;
  for (const auto& w : traffic.schedule) {
    forecast.push_back(LoadForecast{w.compute_begin, 0.0});
    forecast.push_back(LoadForecast{w.comm_begin, 1.0});
  }

  std::printf("%-12s %-10s %-10s %-14s %-12s\n", "wake", "reactive",
              "predictive", "react. buffer", "react. drop");
  for (double wake_ms : {0.1, 1.0, 10.0}) {
    cfg.wake_latency = Seconds::from_milliseconds(wake_ms);
    const auto reactive = simulate_parking_reactive(trace, cfg);
    const auto predictive = simulate_parking_predictive(trace, forecast, cfg);
    std::printf("%8.1f ms  %8.1f%%  %8.1f%%  %11.2f MB  %9.2f MB\n", wake_ms,
                100.0 * reactive.savings_vs_all_on,
                100.0 * predictive.savings_vs_all_on,
                reactive.max_buffered.value() / 8e6,
                reactive.dropped.value() / 8e6);
  }
  std::printf(
      "\nThe predictive policy pre-wakes pipelines from the job schedule,\n"
      "so its buffering and loss stay at zero regardless of wake latency -\n"
      "exactly the predictability argument of paper Sec. 4.4.\n");
  return 0;
}
