// ISP scenario (paper §3.4): "in ISP networks, the benefits from power
// proportionality are even more direct since it is all network and no
// compute ... links are more likely to be underutilized rather than
// completely unused."
//
// Simulates a backbone ring of PoP routers under compressed diurnal
// traffic, then evaluates rate adaptation and pipeline parking on the
// busiest PoP's recorded load trace.
//
//   ./build/examples/isp_diurnal
#include <cstdio>

#include "netpp/mech/parking.h"
#include "netpp/mech/rateadapt.h"
#include "netpp/mech/trace_recorder.h"
#include "netpp/topo/builders.h"
#include "netpp/traffic/generators.h"

int main() {
  using namespace netpp;
  using namespace netpp::literals;

  // 8 PoPs in a ring with 2 chords, 400 G links; one access host per PoP.
  const auto topo = build_backbone_ring(8, 2, 400_Gbps);
  SimEngine engine;
  Router router{topo.graph};
  FlowSimulator sim{topo.graph, router, engine};

  // One compressed "day" = 24 s of simulation; peak in the evening.
  DiurnalTrafficConfig traffic_cfg;
  traffic_cfg.peak_arrivals_per_second = 1500.0;
  traffic_cfg.trough_ratio = 0.2;
  traffic_cfg.peak_hour = 20.0;
  traffic_cfg.day_duration = 24.0_s;
  traffic_cfg.days = 1;
  // Backbone-scale flows: tens to hundreds of megabytes, so the 400 G ring
  // sits partially loaded (underutilized, not unused - Sec. 3.4).
  traffic_cfg.min_size = Bits::from_bytes(10e6);
  traffic_cfg.max_size = Bits::from_gigabits(40.0);
  const auto flows = make_diurnal_traffic(topo.hosts, traffic_cfg);
  std::printf("ISP backbone: %zu PoPs, %zu links; %zu flows over one day\n\n",
              topo.switches.size(), topo.graph.num_links(), flows.size());

  NodeLoadRecorder recorder{sim, topo.switches};
  sim.set_load_listener(recorder.listener());
  recorder.sample(0.0_s);
  for (const auto& flow : flows) sim.submit(flow);
  engine.run();
  const Seconds horizon{24.0};
  engine.run_until(horizon);

  std::printf("Completed flows: %zu | mean FCT: %.3f s\n\n",
              sim.completed().size(), sim.fct_stats().mean());

  // Find the busiest PoP by average load.
  NodeId busiest = topo.switches.front();
  double best = -1.0;
  for (NodeId pop : topo.switches) {
    const auto trace = recorder.aggregate_trace(pop, horizon);
    double integral = 0.0;
    for (std::size_t i = 0; i < trace.times.size(); ++i) {
      const double seg_end = (i + 1 < trace.times.size())
                                 ? trace.times[i + 1].value()
                                 : trace.end.value();
      integral += trace.loads[i] * (seg_end - trace.times[i].value());
    }
    if (integral > best) {
      best = integral;
      busiest = pop;
    }
  }
  std::printf("Busiest PoP: %s (mean load %.1f%%)\n\n",
              topo.graph.node(busiest).name.c_str(),
              100.0 * best / horizon.value());

  // Evaluate the paper's dynamic mechanisms on that router.
  const SwitchPowerModel model;

  RateAdaptConfig ra;
  ra.model = model;
  const auto pipe_trace =
      recorder.pipeline_trace(busiest, model.config().num_pipelines, horizon);
  const auto global =
      simulate_rate_adaptation(pipe_trace, ra, RateAdaptMode::kGlobalAsic);
  const auto per_pipe =
      simulate_rate_adaptation(pipe_trace, ra, RateAdaptMode::kPerPipeline);
  RateAdaptConfig ra_lanes = ra;
  ra_lanes.lane_steps = {0.25, 0.5, 1.0};
  const auto lanes = simulate_rate_adaptation(pipe_trace, ra_lanes,
                                              RateAdaptMode::kPerPipeline);

  ParkingConfig pk;
  pk.model = model;
  // This PoP's capacity: its incident links (degree x 400 G, both ways).
  pk.switch_capacity =
      Gbps{static_cast<double>(topo.graph.degree(busiest)) * 2.0 * 400.0};
  pk.wake_latency = Seconds::from_milliseconds(1.0);
  const auto agg_trace = recorder.aggregate_trace(busiest, horizon);
  const auto parked = simulate_parking_reactive(agg_trace, pk);

  std::printf("Mechanism savings on the busiest PoP router (vs always-on):\n");
  std::printf("  rate adaptation, global clock:   %5.1f%%\n",
              100.0 * global.savings_vs_none);
  std::printf("  rate adaptation, per-pipeline:   %5.1f%%\n",
              100.0 * per_pipe.savings_vs_none);
  std::printf("  + SerDes down-rating:            %5.1f%%\n",
              100.0 * lanes.savings_vs_none);
  std::printf("  pipeline parking (reactive):     %5.1f%%  "
              "(%.2f pipelines active on average, %.2f MB peak buffer)\n",
              100.0 * parked.savings_vs_all_on,
              parked.mean_active_pipelines,
              parked.max_buffered.value() / 8e6);
  std::printf(
      "\nUnlike the ML cluster, the backbone never fully idles - diurnal\n"
      "troughs leave partial load, which favours rate adaptation and\n"
      "partial parking over all-off approaches (paper Sec. 3.4).\n");
  return 0;
}
