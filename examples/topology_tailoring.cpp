// OCS topology tailoring end-to-end (paper §4.2): take a fat tree, describe
// a training job's traffic pattern, power off every switch the job does not
// need, and verify with max-flow that the surviving fabric still carries the
// job — then price the savings in dollars and CO2.
//
//   ./build/examples/topology_tailoring
#include <cstdio>

#include "netpp/analysis/savings.h"
#include "netpp/mech/ocs.h"
#include "netpp/power/switch_model.h"
#include "netpp/topo/maxflow.h"

int main() {
  using namespace netpp;
  using namespace netpp::literals;

  const auto topo = build_fat_tree(6, 100_Gbps);
  const SwitchPowerModel switch_model;
  std::printf("Fabric: %zu hosts, %zu switches (%zu links), "
              "bisection %s\n\n",
              topo.hosts.size(), topo.switches.size(),
              topo.graph.num_links(),
              to_string(bisection_bandwidth(topo)).c_str());

  // The job: ring all-reduce at 20 G per host between neighbouring hosts.
  std::vector<TrafficDemand> demands;
  for (std::size_t i = 0; i < topo.hosts.size(); ++i) {
    demands.push_back(TrafficDemand{
        topo.hosts[i], topo.hosts[(i + 1) % topo.hosts.size()], 20_Gbps});
  }

  const auto result = tailor_topology(topo, demands);
  std::printf("Tailoring: %zu switches stay on, %zu powered off (%.0f%%)\n",
              result.powered_on.size(), result.powered_off.size(),
              100.0 * result.switches_off_fraction);

  // Verify with max-flow that the reduced fabric still carries the job and
  // report what bisection survives for everything else.
  Router router{topo.graph};
  for (NodeId sw : result.powered_off) router.set_node_enabled(sw, false);
  const bool ok = demands_satisfiable(router, demands, TailorConfig{});
  const Gbps surviving = bisection_bandwidth(topo, &router);
  std::printf("Demands still satisfiable: %s | surviving bisection: %s\n\n",
              ok ? "yes" : "NO", to_string(surviving).c_str());

  // Price it: powered-off switches stop drawing their idle power.
  const Watts saved = switch_model.idle_power() *
                      static_cast<double>(result.powered_off.size());
  const OcsOverheadModel ocs;
  const Watts net = ocs.net_power_savings(saved, /*num_ocs_devices=*/6);
  const CostModel cost;
  std::printf("Idle power saved:   %s (net of 6 OCS devices: %s)\n",
              to_string(saved).c_str(), to_string(net).c_str());
  std::printf("Worth per year:     $%.0fk and %.0f t CO2e\n",
              cost.annual_total_savings(net).value() / 1e3,
              cost.annual_co2_savings_tons(net));
  std::printf("Reconfig overhead:  %.6f%% of a 24 h job\n\n",
              100.0 * ocs.time_overhead(Seconds::from_hours(24.0)));

  std::printf(
      "A fat tree is sized for any-to-any traffic; a placement-friendly\n"
      "training job needs a fraction of it. The OCS layer powers the rest\n"
      "off for the duration of the job (paper Sec. 4.2).\n");
  return 0;
}
