// Composed §4 savings end-to-end (the paper's "the optimizations compose"
// claim): run ML training traffic over a simulated fat tree, stack OCS
// topology tailoring, pipeline parking, and rate adaptation on the unified
// power-state engine, and price the combination against each mechanism
// alone — in joules and in sustained dollars per year.
//
//   ./build/examples/composed_savings
#include <cstdio>

#include "netpp/analysis/savings.h"
#include "netpp/mech/composite.h"
#include "netpp/topo/builders.h"
#include "netpp/traffic/generators.h"

int main() {
  using namespace netpp;
  using namespace netpp::literals;

  const auto topo = build_fat_tree(4, 100_Gbps);

  MlTrafficConfig traffic_cfg;
  traffic_cfg.compute_time = 0.9_s;
  traffic_cfg.comm_allowance = 0.1_s;
  traffic_cfg.iterations = 4;
  traffic_cfg.volume_per_host = Bits::from_gigabits(2.0);
  const auto workload = make_ml_training_traffic(topo.hosts, traffic_cfg).flows;

  // The steady-state matrix tailoring must keep satisfiable: a ring
  // all-reduce between adjacent hosts, which mostly stays below the cores.
  std::vector<TrafficDemand> demands;
  for (std::size_t i = 0; i < topo.hosts.size(); ++i) {
    demands.push_back(TrafficDemand{topo.hosts[i],
                                    topo.hosts[(i + 1) % topo.hosts.size()],
                                    5_Gbps});
  }

  CompositeConfig config;
  config.parking.switch_capacity = Gbps{4 * 100.0};  // 4 ports at 100 G
  config.num_ocs_devices = 4;

  const CompositeReport report =
      run_composite(topo, workload, demands, 4.0_s, config);

  std::printf("k=4 fat tree, %zu switches, %.1f s window\n",
              report.switches_total, report.horizon.value());
  std::printf("tailoring powered off %zu switches (OCS draw charged)\n\n",
              report.tailoring.powered_off.size());

  std::printf("%-18s %10s %9s\n", "stage", "energy kJ", "savings");
  std::printf("%-18s %10.2f %9s\n", "all-on baseline",
              report.baseline_energy.value() / 1e3, "-");
  for (const auto& single : report.singles) {
    std::printf("%-18s %10.2f %8.2f%%\n", single.name.c_str(),
                single.energy.value() / 1e3, 100.0 * single.savings);
  }
  std::printf("%-18s %10.2f %8.2f%%\n", "composed stack",
              report.energy.value() / 1e3, 100.0 * report.combined_savings);

  const MechanismValue value =
      mechanism_value(report.baseline_energy, report.energy, report.horizon);
  std::printf(
      "\nThe stack beats the best single mechanism (%.2f%%) by %.2f points\n"
      "and is worth $%.0f/yr and %.2f t CO2e/yr if sustained.\n",
      100.0 * report.best_single_savings,
      100.0 * (report.combined_savings - report.best_single_savings),
      value.annual_savings.value(), value.annual_co2_tons);

  // The acceptance claim, enforced: composition never loses.
  if (report.combined_savings < report.best_single_savings - 1e-9) {
    std::fprintf(stderr, "composition lost to a single mechanism!\n");
    return 1;
  }
  return 0;
}
