// What-if explorer for custom ML clusters: size your own cluster, then
// sweep network bandwidth and power proportionality to see total power,
// savings, and the fixed-power-budget speedup (paper §3.3).
//
// Usage:
//   whatif_ml_cluster [num_gpus] [gbps_per_gpu] [comm_ratio] [--csv]
// e.g.
//   ./build/examples/whatif_ml_cluster 8192 800 0.15
//   ./build/examples/whatif_ml_cluster 8192 800 0.15 --csv > sweep.csv
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "netpp/analysis/report.h"
#include "netpp/analysis/savings.h"
#include "netpp/analysis/speedup.h"
#include "netpp/sim/sweep.h"

int main(int argc, char** argv) {
  using namespace netpp;
  using namespace netpp::literals;

  double num_gpus = 15000.0;
  double gbps = 400.0;
  double ratio = 0.10;
  bool csv = false;
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0) {
      csv = true;
      continue;
    }
    const double value = std::atof(argv[i]);
    if (value <= 0.0) {
      std::fprintf(stderr,
                   "usage: %s [num_gpus] [gbps_per_gpu] [comm_ratio] [--csv]\n",
                   argv[0]);
      return 1;
    }
    switch (positional++) {
      case 0: num_gpus = value; break;
      case 1: gbps = value; break;
      case 2: ratio = value; break;
      default:
        std::fprintf(stderr, "too many arguments\n");
        return 1;
    }
  }

  ClusterConfig config;
  config.num_gpus = num_gpus;
  config.bandwidth_per_gpu = Gbps{gbps};
  config.communication_ratio = ratio;

  const ClusterModel cluster{config};
  if (!csv) {
    std::printf("Cluster: %.0f GPUs, %s/GPU, comm ratio %.0f%%\n", num_gpus,
                to_string(config.bandwidth_per_gpu).c_str(), ratio * 100.0);
    std::printf("Average power: %s | network share: %.1f%% | "
                "network efficiency: %.1f%%\n\n",
                to_string(cluster.average_total_power()).c_str(),
                100.0 * cluster.network_share_of_average(),
                100.0 * cluster.network_energy_efficiency());
  }

  // Proportionality sweep: savings and fixed-budget speedup.
  const WorkloadModel workload{
      IterationProfile{Seconds{1.0 - ratio}, Seconds{ratio}}, num_gpus,
      Gbps{gbps}};
  const BudgetSolver solver{config, workload};

  // The 11 proportionality points are independent; sweep them across a
  // thread pool and assemble the table in point order afterwards. Progress
  // goes to stderr so `--csv > sweep.csv` stays clean.
  SweepRunner runner;
  if (!csv) {
    runner.set_progress_callback([](std::size_t done, std::size_t total) {
      std::fprintf(stderr, "\rsweeping proportionality: %zu/%zu%s", done,
                   total, done == total ? "\n" : "");
    });
  }
  const auto rows = runner.map<std::vector<std::string>>(
      11, [&](std::size_t index, Rng&) {
        const double proportionality = static_cast<double>(index) / 10.0;
        const auto cell =
            savings_at(config, config.bandwidth_per_gpu, proportionality,
                       config.network_proportionality);
        const auto budgeted = solver.solve(config.bandwidth_per_gpu,
                                           proportionality,
                                           BudgetScenario::kFixedCommRatio);
        const auto baseline = solver.solve(config.bandwidth_per_gpu,
                                           config.network_proportionality,
                                           BudgetScenario::kFixedCommRatio);
        const double speedup =
            solver.speedup_vs(budgeted, baseline.iteration.iteration_time());
        const ClusterModel at_p =
            cluster.with_network_proportionality(proportionality);
        return std::vector<std::string>{
            fmt(proportionality, 2),
            fmt(at_p.average_total_power().kilowatts(), 1),
            fmt(100.0 * cell.savings_fraction, 2),
            fmt(budgeted.num_gpus, 0), fmt(100.0 * speedup, 2)};
      });

  Table table{{"proportionality", "cluster_power_kw", "savings_pct",
               "budget_gpus", "speedup_pct"}};
  for (const auto& row : rows) table.add_row(row);

  if (csv) {
    std::printf("%s", table.to_csv().c_str());
  } else {
    std::printf("%s", table.to_ascii().c_str());
    std::printf(
        "\nsavings_pct: total cluster power saved vs today's %.0f%% network\n"
        "proportionality. budget_gpus / speedup_pct: GPUs affordable and\n"
        "iteration speedup under a fixed power budget (Sec. 3.3, fixed\n"
        "communication ratio).\n",
        100.0 * config.network_proportionality);
  }
  return 0;
}
