// Quickstart: model the paper's baseline ML cluster and ask the two
// headline what-if questions (paper §3):
//   1. How much total power does better network proportionality save?
//   2. What does that mean in dollars per year?
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "netpp/analysis/savings.h"
#include "netpp/cluster/cluster.h"

int main() {
  using namespace netpp;
  using namespace netpp::literals;

  // The paper's baseline pod (§2.1): 15k H100 GPUs, 400 G per GPU, a fat
  // tree of 51.2 Tbps switches, 10% communication ratio, and today's ~10%
  // network power proportionality. ClusterConfig's defaults are exactly
  // that; every field can be overridden.
  ClusterConfig config;
  const ClusterModel cluster{config};

  std::printf("=== Baseline cluster (paper Sec. 2.1) ===\n");
  std::printf("GPUs: %.0f at %s per GPU\n", config.num_gpus,
              to_string(config.bandwidth_per_gpu).c_str());
  std::printf("Fat tree: %.0f switches (%d tiers), %.0f transceivers\n",
              cluster.network().tree.switches, cluster.network().tree.tiers,
              cluster.network().transceivers);
  std::printf("Compute envelope: %s max / %s idle\n",
              to_string(cluster.compute_envelope().max_power()).c_str(),
              to_string(cluster.compute_envelope().idle_power()).c_str());
  std::printf("Network envelope: %s max / %s idle\n",
              to_string(cluster.network_envelope().max_power()).c_str(),
              to_string(cluster.network_envelope().idle_power()).c_str());
  std::printf("Average cluster power: %s\n",
              to_string(cluster.average_total_power()).c_str());
  std::printf("Network share of average power: %.1f%% (paper: ~12%%)\n",
              100.0 * cluster.network_share_of_average());
  std::printf("Network energy efficiency: %.1f%% (paper: ~11%%)\n\n",
              100.0 * cluster.network_energy_efficiency());

  std::printf("=== What-if: better network power proportionality ===\n");
  const CostModel cost;
  for (double proportionality : {0.20, 0.50, 0.85, 1.00}) {
    const SavingsCell cell =
        savings_at(config, config.bandwidth_per_gpu, proportionality);
    std::printf(
        "proportionality %3.0f%%: save %4.1f%% of cluster power "
        "(%7.0f kW, $%.0fk/year incl. cooling)\n",
        100.0 * proportionality, 100.0 * cell.savings_fraction,
        cell.absolute_savings.kilowatts(),
        cost.annual_total_savings(cell.absolute_savings).value() / 1e3);
  }
  std::printf(
      "\nThe paper's headline: ~5%% at 50%% proportionality, ~9%% when the\n"
      "network matches the compute's 85%%.\n");
  return 0;
}
