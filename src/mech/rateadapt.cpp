#include "netpp/mech/rateadapt.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace netpp {

void PipelineLoadTrace::validate(int num_pipelines) const {
  if (times.empty() || times.size() != pipeline_loads.size()) {
    throw std::invalid_argument(
        "trace needs matching, non-empty times and loads");
  }
  for (std::size_t i = 0; i < times.size(); ++i) {
    if (i > 0 && times[i] <= times[i - 1]) {
      throw std::invalid_argument("trace times must be strictly increasing");
    }
    if (pipeline_loads[i].size() != static_cast<std::size_t>(num_pipelines)) {
      throw std::invalid_argument("trace arity != pipeline count");
    }
    for (double load : pipeline_loads[i]) {
      if (load < 0.0 || load > 1.0) {
        throw std::invalid_argument("loads must be in [0, 1]");
      }
    }
  }
  if (end <= times.back()) {
    throw std::invalid_argument("trace end must be after the last segment");
  }
}

Seconds PipelineLoadTrace::duration() const {
  return end - times.front();
}

namespace {

double pick_lane_step(const std::vector<double>& steps, double load) {
  // Smallest allowed step >= load; steps are fractions of full lanes.
  double best = 1.0;
  bool found = false;
  for (double s : steps) {
    if (s >= load - 1e-12 && (!found || s < best)) {
      best = s;
      found = true;
    }
  }
  return found ? best : 1.0;
}

}  // namespace

RateAdaptResult simulate_rate_adaptation(const PipelineLoadTrace& trace,
                                         const RateAdaptConfig& config,
                                         RateAdaptMode mode) {
  const auto& model = config.model;
  const int pipes = model.config().num_pipelines;
  trace.validate(pipes);
  if (config.min_frequency <= 0.0 || config.min_frequency > 1.0) {
    throw std::invalid_argument("min_frequency must be in (0, 1]");
  }
  if (config.headroom < 0.0) {
    throw std::invalid_argument("headroom must be non-negative");
  }

  const auto target_frequency = [&](double load) {
    return std::clamp(load * (1.0 + config.headroom), config.min_frequency,
                      1.0);
  };

  std::vector<double> current_freq(pipes, 1.0);
  std::vector<PortState> ports(model.config().num_ports, PortState{});

  RateAdaptResult result;
  double energy_j = 0.0;
  double none_energy_j = 0.0;
  double freq_time = 0.0;  // integral of mean frequency

  for (std::size_t i = 0; i < trace.times.size(); ++i) {
    const Seconds seg_end =
        (i + 1 < trace.times.size()) ? trace.times[i + 1] : trace.end;
    const double dt = (seg_end - trace.times[i]).value();
    const auto& loads = trace.pipeline_loads[i];

    // Decide frequencies for this segment.
    std::vector<double> want(pipes, 1.0);
    switch (mode) {
      case RateAdaptMode::kNone:
        break;
      case RateAdaptMode::kGlobalAsic: {
        const double max_load = *std::max_element(loads.begin(), loads.end());
        std::fill(want.begin(), want.end(), target_frequency(max_load));
        break;
      }
      case RateAdaptMode::kPerPipeline:
        for (int p = 0; p < pipes; ++p) want[p] = target_frequency(loads[p]);
        break;
    }
    if (mode != RateAdaptMode::kNone) {
      for (int p = 0; p < pipes; ++p) {
        if (std::fabs(want[p] - current_freq[p]) > config.hysteresis ||
            want[p] > current_freq[p]) {
          // Always honor upward moves (load must be served); downward moves
          // only beyond the hysteresis band.
          if (want[p] != current_freq[p]) {
            current_freq[p] = want[p];
            ++result.frequency_transitions;
          }
        }
      }
    }

    // Build per-pipeline states; loads are relative to nominal capacity and
    // must be <= frequency (guaranteed: frequency >= load by construction,
    // except kNone where frequency is 1).
    std::vector<PipelineState> states(pipes);
    std::vector<PipelineState> none_states(pipes);
    double freq_sum = 0.0;
    for (int p = 0; p < pipes; ++p) {
      states[p] = PipelineState{true, current_freq[p], loads[p]};
      none_states[p] = PipelineState{true, 1.0, loads[p]};
      freq_sum += current_freq[p];
    }

    // Optional SerDes down-rating: scale every port group's lanes to the
    // switch-wide mean load step (ports are not modeled individually here).
    std::vector<PortState> seg_ports = ports;
    if (!config.lane_steps.empty() && mode != RateAdaptMode::kNone) {
      double mean_load = 0.0;
      for (double l : loads) mean_load += l;
      mean_load /= static_cast<double>(pipes);
      const double lane = pick_lane_step(config.lane_steps, mean_load);
      for (auto& port : seg_ports) port.lane_fraction = lane;
    }

    energy_j += model.total_power(states, seg_ports).value() * dt;
    none_energy_j += model.total_power(none_states, ports).value() * dt;
    freq_time += (freq_sum / static_cast<double>(pipes)) * dt;
  }

  const double duration = trace.duration().value();
  result.energy = Joules{energy_j};
  result.average_power = Watts{energy_j / duration};
  result.savings_vs_none =
      none_energy_j > 0.0 ? 1.0 - energy_j / none_energy_j : 0.0;
  result.mean_frequency = freq_time / duration;
  return result;
}

}  // namespace netpp
