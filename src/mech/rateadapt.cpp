#include "netpp/mech/rateadapt.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace netpp {

namespace detail {

double pick_lane_step(const std::vector<double>& steps, double load) {
  // Smallest allowed step >= load; steps are fractions of full lanes.
  double best = 1.0;
  bool found = false;
  for (double s : steps) {
    if (s >= load - 1e-12 && (!found || s < best)) {
      best = s;
      found = true;
    }
  }
  return found ? best : 1.0;
}

}  // namespace detail

RateAdaptPolicy::RateAdaptPolicy(RateAdaptConfig config, RateAdaptMode mode)
    : config_(std::move(config)),
      mode_(mode),
      pipes_(config_.model.config().num_pipelines),
      ports_(static_cast<std::size_t>(config_.model.config().num_ports),
             PortState{}),
      seg_ports_(ports_) {
  if (config_.min_frequency <= 0.0 || config_.min_frequency > 1.0) {
    throw std::invalid_argument("min_frequency must be in (0, 1]");
  }
  if (config_.headroom < 0.0) {
    throw std::invalid_argument("headroom must be non-negative");
  }
}

std::string_view RateAdaptPolicy::name() const {
  switch (mode_) {
    case RateAdaptMode::kNone:
      return "rate-adapt-none";
    case RateAdaptMode::kGlobalAsic:
      return "rate-adapt-global";
    case RateAdaptMode::kPerPipeline:
      return "rate-adapt-per-pipeline";
  }
  return "rate-adapt";
}

PowerStateTimeline RateAdaptPolicy::make_timeline(const LoadTrace& trace) {
  PowerStateTimeline timeline{
      pipes_, TransitionRules{Seconds{0.0}, Seconds{0.0}, config_.hysteresis},
      trace.times.front()};
  timeline.set_power_model(
      // Loads are relative to nominal capacity and must be <= frequency
      // (guaranteed: frequency >= load by construction, except kNone where
      // frequency is 1).
      [this](std::span<const ComponentTrack> tracks) {
        std::vector<PipelineState> states(static_cast<std::size_t>(pipes_));
        for (int p = 0; p < pipes_; ++p) {
          const auto& track = tracks[static_cast<std::size_t>(p)];
          states[static_cast<std::size_t>(p)] =
              PipelineState{true, track.level, track.load};
        }
        return config_.model.total_power(states, seg_ports_);
      },
      [this](std::span<const ComponentTrack> tracks) {
        std::vector<PipelineState> states(static_cast<std::size_t>(pipes_));
        for (int p = 0; p < pipes_; ++p) {
          states[static_cast<std::size_t>(p)] = PipelineState{
              true, 1.0, tracks[static_cast<std::size_t>(p)].load};
        }
        return config_.model.total_power(states, ports_);
      });
  return timeline;
}

void RateAdaptPolicy::observe(const LoadSegment& seg,
                              PowerStateTimeline& timeline) {
  const auto& loads = seg.loads;
  for (int p = 0; p < pipes_; ++p) {
    timeline.set_load(p, loads[static_cast<std::size_t>(p)]);
  }

  const auto target_frequency = [this](double load) {
    return std::clamp(load * (1.0 + config_.headroom), config_.min_frequency,
                      1.0);
  };

  // Decide frequencies for this segment; the timeline applies hysteresis
  // (upward moves always honored: load must be served).
  switch (mode_) {
    case RateAdaptMode::kNone:
      break;
    case RateAdaptMode::kGlobalAsic: {
      const double max_load = *std::max_element(loads.begin(), loads.end());
      const double want = target_frequency(max_load);
      for (int p = 0; p < pipes_; ++p) timeline.request_level(p, want);
      break;
    }
    case RateAdaptMode::kPerPipeline:
      for (int p = 0; p < pipes_; ++p) {
        timeline.request_level(
            p, target_frequency(loads[static_cast<std::size_t>(p)]));
      }
      break;
  }

  // Optional SerDes down-rating: scale every port group's lanes to the
  // switch-wide mean load step (ports are not modeled individually here).
  seg_ports_ = ports_;
  if (!config_.lane_steps.empty() && mode_ != RateAdaptMode::kNone) {
    double mean_load = 0.0;
    for (double l : loads) mean_load += l;
    mean_load /= static_cast<double>(pipes_);
    const double lane = detail::pick_lane_step(config_.lane_steps, mean_load);
    for (auto& port : seg_ports_) port.lane_fraction = lane;
  }
}

RateAdaptResult simulate_rate_adaptation(const PipelineLoadTrace& trace,
                                         const RateAdaptConfig& config,
                                         RateAdaptMode mode) {
  trace.validate(config.model.config().num_pipelines);
  RateAdaptPolicy policy{config, mode};
  const MechanismReport report =
      run_mechanism(trace.to_load_trace(), policy);

  RateAdaptResult result;
  result.energy = report.energy;
  result.average_power = report.average_power;
  result.savings_vs_none = report.savings;
  result.frequency_transitions = report.level_transitions;
  result.mean_frequency = report.mean_level;
  return result;
}

}  // namespace netpp
