#include "netpp/mech/core_parking.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "netpp/mech/parking.h"

namespace netpp {

CoreParkingPolicy::CoreParkingPolicy(CoreParkingConfig config,
                                     int num_switches, double load_scale)
    : config_(config), switches_(num_switches), load_scale_(load_scale) {
  if (switches_ < 1) {
    throw std::invalid_argument(
        "CoreParkingPolicy: need at least one core switch");
  }
  if (config_.min_active < 1 || config_.min_active > switches_) {
    throw std::invalid_argument(
        "CoreParkingPolicy: min_active must be in [1, num_switches]");
  }
  if (config_.hi_threshold <= 0.0 || config_.hi_threshold > 1.0 ||
      config_.lo_threshold < 0.0 ||
      config_.lo_threshold >= config_.hi_threshold) {
    throw std::invalid_argument(
        "CoreParkingPolicy: need 0 <= lo_threshold < hi_threshold <= 1");
  }
  if (config_.wake_latency.value() < 0.0) {
    throw std::invalid_argument(
        "CoreParkingPolicy: wake latency must be non-negative");
  }
  if (!(std::isfinite(load_scale_) && load_scale_ > 0.0)) {
    throw std::invalid_argument(
        "CoreParkingPolicy: load_scale must be finite and positive");
  }
  if (config_.switch_power.value() < 0.0 ||
      !std::isfinite(config_.switch_power.value())) {
    throw std::invalid_argument(
        "CoreParkingPolicy: switch_power must be finite and non-negative");
  }
}

PowerStateTimeline CoreParkingPolicy::make_timeline(const LoadTrace& trace) {
  if (trace.channels() != 1) {
    throw std::invalid_argument(
        "CoreParkingPolicy: trace must be single-channel aggregate core "
        "load");
  }
  PowerStateTimeline timeline{
      switches_, TransitionRules{config_.wake_latency, Seconds{0.0}, 0.0},
      trace.times.front()};
  const double per_switch = config_.switch_power.value();
  timeline.set_power_model(
      // Flat draw per powered-or-waking switch; parked switches draw
      // nothing (that is the whole mechanism).
      [per_switch](std::span<const ComponentTrack> tracks) {
        double watts = 0.0;
        for (const auto& track : tracks) {
          if (track.state == PowerState::kOn ||
              track.state == PowerState::kWaking) {
            watts += per_switch;
          }
        }
        return Watts{watts};
      },
      // Baseline: every core switch always on.
      [per_switch, this](std::span<const ComponentTrack> /*tracks*/) {
        return Watts{per_switch * switches_};
      });
  return timeline;
}

void CoreParkingPolicy::observe(const LoadSegment& seg,
                                PowerStateTimeline& timeline) {
  const double offered =
      std::min(1.0, seg.loads.front() * load_scale_);

  // The same reactive fixed-point as the pipeline policies, over switches:
  // detail::reactive_parking_target only reads the thresholds, so a shim
  // ParkingConfig keeps one hysteresis implementation for both tiers.
  ParkingConfig shim;
  shim.hi_threshold = config_.hi_threshold;
  shim.lo_threshold = config_.lo_threshold;
  for (int guard = 0; guard <= switches_; ++guard) {
    const int provisioned = timeline.provisioned();
    const int target = std::clamp(
        detail::reactive_parking_target(shim, switches_, offered, provisioned),
        config_.min_active, switches_);
    if (target == provisioned) break;
    if (target > provisioned) {
      for (int k = provisioned; k < target; ++k) timeline.wake_one();
    } else {
      int excess = provisioned - target;
      while (excess > 0 && timeline.cancel_last_wake()) --excess;
      while (excess > 0 &&
             timeline.count(PowerState::kOn) > config_.min_active) {
        timeline.park_one();
        --excess;
      }
    }
  }

  // Load bookkeeping: the powered set carries the offered core load spread
  // evenly (ECMP), concentrated onto fewer switches as others park.
  const int active = timeline.count(PowerState::kOn);
  const double concentrated =
      active > 0 ? std::min(1.0, offered * switches_ / active) : 0.0;
  for (int c = 0; c < switches_; ++c) {
    timeline.set_load(
        c, timeline.track(c).state == PowerState::kOn ? concentrated : 0.0);
  }
}

}  // namespace netpp
