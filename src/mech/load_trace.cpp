#include "netpp/mech/load_trace.h"

#include <cmath>
#include <stdexcept>

#include "netpp/validation.h"

namespace netpp {

namespace detail {

void validate_segment_timing(const char* type_name,
                             const std::vector<Seconds>& times,
                             std::size_t num_segments, Seconds end) {
  validation::require(!times.empty() && times.size() == num_segments,
                      type_name, "needs matching, non-empty times and loads");
  for (std::size_t i = 0; i < times.size(); ++i) {
    validation::require_finite(times[i].value(), type_name,
                               "times must be finite");
    validation::require(i == 0 || times[i] > times[i - 1], type_name,
                        "times must be strictly increasing");
  }
  validation::require(std::isfinite(end.value()) && end > times.back(),
                      type_name,
                      "end must be finite and after the last segment");
}

void validate_load_fraction(const char* type_name, double load) {
  validation::require_fraction(load, type_name,
                               "loads must be finite and in [0, 1]");
}

}  // namespace detail

void LoadTrace::validate() const {
  detail::validate_segment_timing("LoadTrace", times, loads.size(), end);
  const std::size_t arity = loads.front().size();
  if (arity == 0) {
    throw std::invalid_argument("LoadTrace: needs at least one channel");
  }
  for (const auto& segment : loads) {
    if (segment.size() != arity) {
      throw std::invalid_argument(
          "LoadTrace: every segment needs the same channel count");
    }
    for (double load : segment) {
      detail::validate_load_fraction("LoadTrace", load);
    }
  }
}

LoadTrace LoadTrace::resampled(Seconds step) const {
  validate();
  if (!std::isfinite(step.value()) || step.value() <= 0.0) {
    throw std::invalid_argument(
        "LoadTrace: resampling step must be finite and positive");
  }
  LoadTrace out;
  out.end = end;
  const double start = times.front().value();
  std::size_t seg = 0;
  for (double t = start; t < end.value(); t += step.value()) {
    while (seg + 1 < times.size() && times[seg + 1].value() <= t) ++seg;
    out.times.push_back(Seconds{t});
    out.loads.push_back(loads[seg]);
  }
  return out;
}

double LoadTrace::load_at(Seconds t, int channel) const {
  std::size_t seg = 0;
  while (seg + 1 < times.size() && times[seg + 1] <= t) ++seg;
  return loads[seg][static_cast<std::size_t>(channel)];
}

double LoadTrace::aggregate_at(Seconds t) const {
  std::size_t seg = 0;
  while (seg + 1 < times.size() && times[seg + 1] <= t) ++seg;
  double sum = 0.0;
  for (double load : loads[seg]) sum += load;
  return sum / static_cast<double>(loads[seg].size());
}

void AggregateLoadTrace::validate() const {
  detail::validate_segment_timing("AggregateLoadTrace", times, loads.size(),
                                  end);
  for (double load : loads) {
    detail::validate_load_fraction("AggregateLoadTrace", load);
  }
}

LoadTrace AggregateLoadTrace::to_load_trace() const {
  LoadTrace trace;
  trace.times = times;
  trace.end = end;
  trace.loads.reserve(loads.size());
  for (double load : loads) trace.loads.push_back({load});
  return trace;
}

AggregateLoadTrace AggregateLoadTrace::from_load_trace(
    const LoadTrace& trace) {
  trace.validate();
  AggregateLoadTrace out;
  out.times = trace.times;
  out.end = trace.end;
  out.loads.reserve(trace.loads.size());
  for (const auto& segment : trace.loads) {
    double sum = 0.0;
    for (double load : segment) sum += load;
    out.loads.push_back(sum / static_cast<double>(segment.size()));
  }
  return out;
}

void PipelineLoadTrace::validate(int num_pipelines) const {
  detail::validate_segment_timing("PipelineLoadTrace", times,
                                  pipeline_loads.size(), end);
  for (const auto& segment : pipeline_loads) {
    if (segment.size() != static_cast<std::size_t>(num_pipelines)) {
      throw std::invalid_argument(
          "PipelineLoadTrace: segment arity != pipeline count");
    }
    for (double load : segment) {
      detail::validate_load_fraction("PipelineLoadTrace", load);
    }
  }
}

Seconds PipelineLoadTrace::duration() const { return end - times.front(); }

LoadTrace PipelineLoadTrace::to_load_trace() const {
  LoadTrace trace;
  trace.times = times;
  trace.loads = pipeline_loads;
  trace.end = end;
  return trace;
}

PipelineLoadTrace PipelineLoadTrace::from_load_trace(const LoadTrace& trace) {
  trace.validate();
  PipelineLoadTrace out;
  out.times = trace.times;
  out.pipeline_loads = trace.loads;
  out.end = trace.end;
  return out;
}

}  // namespace netpp
