#include "netpp/mech/composite.h"

#include <algorithm>
#include <map>
#include <memory>
#include <stdexcept>
#include <utility>

#include "netpp/mech/trace_recorder.h"
#include "netpp/topo/routing.h"

namespace netpp {

StackedSwitchPolicy::StackedSwitchPolicy(ParkingConfig parking,
                                         RateAdaptConfig rate, Stages stages)
    : parking_(std::move(parking)),
      rate_(std::move(rate)),
      stages_(stages),
      pipes_(parking_.model.config().num_pipelines),
      ports_(static_cast<std::size_t>(parking_.model.config().num_ports),
             PortState{}),
      channel_loads_(static_cast<std::size_t>(pipes_), 0.0) {
  if (parking_.min_active < 1 || parking_.min_active > pipes_) {
    throw std::invalid_argument("min_active must be in [1, num_pipelines]");
  }
  if (parking_.wake_latency.value() < 0.0) {
    throw std::invalid_argument("wake latency must be non-negative");
  }
  if (stages_.park && (parking_.hi_threshold <= 0.0 ||
                       parking_.hi_threshold > 1.0 ||
                       parking_.lo_threshold < 0.0 ||
                       parking_.lo_threshold >= parking_.hi_threshold)) {
    throw std::invalid_argument(
        "ParkingConfig: need 0 <= lo_threshold < hi_threshold <= 1");
  }
  if (stages_.rate_adapt &&
      (rate_.min_frequency <= 0.0 || rate_.min_frequency > 1.0)) {
    throw std::invalid_argument("min_frequency must be in (0, 1]");
  }
  if (stages_.rate_adapt && rate_.headroom < 0.0) {
    throw std::invalid_argument("headroom must be non-negative");
  }
  if (rate_.model.config().num_pipelines != pipes_) {
    throw std::invalid_argument(
        "StackedSwitchPolicy: parking and rate models must agree on the "
        "pipeline count");
  }
}

std::string_view StackedSwitchPolicy::name() const {
  if (stages_.park && stages_.rate_adapt) return "park+rate-adapt";
  if (stages_.park) return "park";
  if (stages_.rate_adapt) return "rate-adapt";
  return "all-on";
}

PowerStateTimeline StackedSwitchPolicy::make_timeline(const LoadTrace& trace) {
  if (trace.channels() != pipes_ && trace.channels() != 1) {
    throw std::invalid_argument(
        "StackedSwitchPolicy: trace needs one channel per pipeline (or a "
        "single aggregate channel)");
  }
  PowerStateTimeline timeline{
      pipes_,
      TransitionRules{stages_.park ? parking_.wake_latency : Seconds{0.0},
                      Seconds{0.0},
                      stages_.rate_adapt ? rate_.hysteresis : 0.0},
      trace.times.front()};
  timeline.set_power_model(
      // Powered pipelines at their (possibly adapted) clock and
      // (possibly concentrated) load; waking pipelines draw idle power;
      // parked pipelines draw nothing. The circuit switch only exists — and
      // only draws — when parking is stacked.
      [this](std::span<const ComponentTrack> tracks) {
        std::vector<PipelineState> states;
        states.reserve(static_cast<std::size_t>(pipes_));
        for (const auto& track : tracks) {
          if (track.state == PowerState::kOn) {
            states.push_back(PipelineState{true, track.level, track.load});
          } else if (track.state == PowerState::kWaking) {
            states.push_back(PipelineState{true, 1.0, 0.0});
          } else {
            states.push_back(PipelineState{false, 1.0, 0.0});
          }
        }
        Watts power = parking_.model.total_power(states, ports_);
        if (stages_.park) power = power + parking_.circuit_switch_power;
        return power;
      },
      // Baseline: every pipeline on at nominal clock and full lanes,
      // carrying its raw channel load.
      [this](std::span<const ComponentTrack> /*tracks*/) {
        std::vector<PipelineState> states;
        states.reserve(static_cast<std::size_t>(pipes_));
        for (int p = 0; p < pipes_; ++p) {
          states.push_back(PipelineState{
              true, 1.0, channel_loads_[static_cast<std::size_t>(p)]});
        }
        return parking_.model.total_power(states, ports_);
      });
  return timeline;
}

void StackedSwitchPolicy::observe(const LoadSegment& seg,
                                  PowerStateTimeline& timeline) {
  const bool per_pipe = static_cast<int>(seg.loads.size()) == pipes_;
  double sum = 0.0;
  for (double load : seg.loads) sum += load;
  offered_ = sum / static_cast<double>(seg.loads.size());
  for (int p = 0; p < pipes_; ++p) {
    channel_loads_[static_cast<std::size_t>(p)] =
        per_pipe ? seg.loads[static_cast<std::size_t>(p)] : offered_;
  }

  // Stage 1 — parking decides the powered set from the aggregate load
  // (same reactive fixed-point as ReactiveParkingPolicy).
  if (stages_.park) {
    for (int guard = 0; guard <= pipes_; ++guard) {
      const int provisioned = timeline.provisioned();
      const int target = std::clamp(
          detail::reactive_parking_target(parking_, pipes_, offered_,
                                          provisioned),
          parking_.min_active, pipes_);
      if (target == provisioned) break;
      if (target > provisioned) {
        for (int k = provisioned; k < target; ++k) timeline.wake_one();
      } else {
        int excess = provisioned - target;
        while (excess > 0 && timeline.cancel_last_wake()) --excess;
        while (excess > 0 &&
               timeline.count(PowerState::kOn) > parking_.min_active) {
          timeline.park_one();
          --excess;
        }
      }
    }
  }

  // Stage 2 — load placement and rate adaptation on the powered set. With
  // parking, the circuit switch concentrates the whole offered load onto
  // the active pipelines; without it, every pipeline carries its own
  // channel.
  const auto target_frequency = [this](double load) {
    return std::clamp(load * (1.0 + rate_.headroom), rate_.min_frequency,
                      1.0);
  };
  if (stages_.park) {
    const int active = timeline.count(PowerState::kOn);
    const double capacity_frac = static_cast<double>(active) / pipes_;
    const double served = std::min(offered_, capacity_frac);
    const double concentrated =
        active > 0 ? std::min(1.0, served * pipes_ / active) : 0.0;
    for (int p = 0; p < pipes_; ++p) {
      if (timeline.track(p).state == PowerState::kOn) {
        timeline.set_load(p, concentrated);
        if (stages_.rate_adapt) {
          timeline.request_level(p, target_frequency(concentrated));
        }
      } else {
        timeline.set_load(p, 0.0);
      }
    }
  } else {
    for (int p = 0; p < pipes_; ++p) {
      const double load = channel_loads_[static_cast<std::size_t>(p)];
      timeline.set_load(p, load);
      if (stages_.rate_adapt) {
        timeline.request_level(p, target_frequency(load));
      }
    }
  }
}

double StackedSwitchPolicy::capacity_fraction(
    const PowerStateTimeline& timeline) const {
  return static_cast<double>(timeline.count(PowerState::kOn)) / pipes_;
}

namespace {

/// One FlowSimulator run of the workload with `disabled` switches off;
/// records every switch's per-pipeline load trace.
struct FabricRun {
  SimEngine engine;
  Router router;
  FlowSimulator sim;
  NodeLoadRecorder recorder;

  FabricRun(const BuiltTopology& topo, const std::vector<FlowSpec>& workload,
            const std::vector<NodeId>& disabled)
      : router(topo.graph),
        sim(topo.graph, router, engine),
        recorder(sim, topo.switches) {
    for (NodeId off : disabled) sim.set_node_enabled(off, false);
    sim.set_load_listener(recorder.listener());
    recorder.sample(Seconds{0.0});
    for (const auto& flow : workload) sim.submit(flow);
    engine.run();
  }

  [[nodiscard]] double makespan() const { return engine.now().value(); }
};

struct StageTotals {
  double energy_j = 0.0;
  double baseline_j = 0.0;
  std::size_t wakes = 0;
  std::size_t parks = 0;
  std::size_t levels = 0;
  double dropped_bits = 0.0;
};

StageTotals run_stage(const std::map<NodeId, LoadTrace>& traces,
                      const std::vector<NodeId>& powered,
                      const CompositeConfig& config, bool park, bool rate,
                      telemetry::Telemetry* telemetry = nullptr) {
  StageTotals totals;
  for (NodeId sw : powered) {
    StackedSwitchPolicy policy{config.parking, config.rate,
                               StackedSwitchPolicy::Stages{park, rate}};
    const MechanismReport report =
        run_mechanism(traces.at(sw), policy, telemetry);
    totals.energy_j += report.energy.value();
    totals.baseline_j += report.baseline_energy.value();
    totals.wakes += report.wake_transitions;
    totals.parks += report.park_transitions;
    totals.levels += report.level_transitions;
    totals.dropped_bits += report.dropped.value();
  }
  return totals;
}

}  // namespace

CompositeReport run_composite(const BuiltTopology& topology,
                              const std::vector<FlowSpec>& workload,
                              const std::vector<TrafficDemand>& demands,
                              Seconds horizon, const CompositeConfig& config) {
  if (horizon.value() <= 0.0) {
    throw std::invalid_argument("run_composite: horizon must be positive");
  }
  if (topology.switches.empty()) {
    throw std::invalid_argument("run_composite: topology has no switches");
  }
  const int pipes = config.parking.model.config().num_pipelines;

  CompositeReport report;
  report.switches_total = topology.switches.size();

  // Static stage first: tailoring decides which switches are powered, and
  // therefore which fabric the dynamic stages observe.
  std::vector<NodeId> powered = topology.switches;
  if (config.tailor) {
    report.tailoring = tailor_topology(topology, demands, config.tailor_config);
    if (!report.tailoring.powered_off.empty()) {
      powered = report.tailoring.powered_on;
    }
  }
  const bool tailored = config.tailor && !report.tailoring.powered_off.empty();

  // Simulate the workload on the full fabric (baseline + dynamic-only
  // stages) and, when tailoring bites, on the tailored fabric (survivors
  // carry the rerouted traffic). Both runs share one energy window.
  const FabricRun full_run{topology, workload, {}};
  std::unique_ptr<FabricRun> tailored_run;
  if (tailored) {
    tailored_run = std::make_unique<FabricRun>(topology, workload,
                                               report.tailoring.powered_off);
  }
  double end_s = std::max(horizon.value(), full_run.makespan() + 1e-9);
  if (tailored_run) {
    end_s = std::max(end_s, tailored_run->makespan() + 1e-9);
  }
  const Seconds end{end_s};
  report.horizon = end;

  std::map<NodeId, LoadTrace> full_traces;
  std::map<NodeId, LoadTrace> tailored_traces;
  for (NodeId sw : topology.switches) {
    full_traces.emplace(sw, full_run.recorder.load_trace(sw, pipes, end));
    if (tailored_run) {
      tailored_traces.emplace(
          sw, tailored_run->recorder.load_trace(sw, pipes, end));
    }
  }
  const auto& stack_traces = tailored ? tailored_traces : full_traces;

  // All-on baseline over the full fabric.
  const StageTotals baseline =
      run_stage(full_traces, topology.switches, config, false, false);
  report.baseline_energy = Joules{baseline.energy_j};

  const double ocs_energy_j =
      tailored ? config.ocs.config().ocs_power.value() * config.num_ocs_devices *
                     end.value()
               : 0.0;

  const auto add_single = [&](std::string name, double energy_j) {
    CompositeStageResult single;
    single.name = std::move(name);
    single.energy = Joules{energy_j};
    single.savings = baseline.energy_j > 0.0
                         ? 1.0 - energy_j / baseline.energy_j
                         : 0.0;
    report.best_single_savings =
        std::max(report.best_single_savings, single.savings);
    report.singles.push_back(std::move(single));
  };

  // Each enabled mechanism alone, against the same baseline.
  if (config.tailor) {
    const StageTotals alone =
        tailored ? run_stage(tailored_traces, powered, config, false, false)
                 : baseline;
    add_single("tailoring", alone.energy_j + ocs_energy_j);
  }
  if (config.park) {
    const StageTotals alone =
        run_stage(full_traces, topology.switches, config, true, false);
    add_single("parking", alone.energy_j);
  }
  if (config.rate_adapt) {
    const StageTotals alone =
        run_stage(full_traces, topology.switches, config, false, true);
    add_single("rate-adaptation", alone.energy_j);
  }

  // The full enabled stack (the only telemetered stage: its per-switch
  // transitions and breakpoints are the events worth tracing).
  const StageTotals stacked =
      run_stage(stack_traces, powered, config, config.park, config.rate_adapt,
                config.telemetry);
  const double combined_j = stacked.energy_j + ocs_energy_j;
  report.energy = Joules{combined_j};
  report.combined_savings = baseline.energy_j > 0.0
                                ? 1.0 - combined_j / baseline.energy_j
                                : 0.0;
  report.wake_transitions = stacked.wakes;
  report.park_transitions = stacked.parks;
  report.level_transitions = stacked.levels;
  report.dropped = Bits{stacked.dropped_bits};
  report.average_power = Watts{combined_j / end.value()};
  report.baseline_average_power = Watts{baseline.energy_j / end.value()};

  if (config.telemetry != nullptr) {
    telemetry::MetricRegistry& m = config.telemetry->metrics();
    m.counter("composite.wakes").set(report.wake_transitions);
    m.counter("composite.parks").set(report.park_transitions);
    m.counter("composite.level_changes").set(report.level_transitions);
    m.gauge("composite.energy_joules", "joules").set(combined_j);
    m.gauge("composite.baseline_joules", "joules").set(baseline.energy_j);
    m.gauge("composite.combined_savings").set(report.combined_savings);
    m.gauge("composite.best_single_savings")
        .set(report.best_single_savings);
    m.gauge("composite.dropped_bits", "bits").set(stacked.dropped_bits);
    m.gauge("composite.horizon_seconds", "seconds").set(end.value());
  }
  return report;
}

}  // namespace netpp
