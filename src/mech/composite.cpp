#include "netpp/mech/composite.h"

#include <algorithm>
#include <cstdio>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <tuple>
#include <utility>

#include "netpp/mech/backend_recorder.h"
#include "netpp/topo/pods.h"

namespace netpp {

StackedSwitchPolicy::StackedSwitchPolicy(ParkingConfig parking,
                                         RateAdaptConfig rate, Stages stages)
    : parking_(std::move(parking)),
      rate_(std::move(rate)),
      stages_(stages),
      pipes_(parking_.model.config().num_pipelines),
      ports_(static_cast<std::size_t>(parking_.model.config().num_ports),
             PortState{}),
      channel_loads_(static_cast<std::size_t>(pipes_), 0.0) {
  if (parking_.min_active < 1 || parking_.min_active > pipes_) {
    throw std::invalid_argument("min_active must be in [1, num_pipelines]");
  }
  if (parking_.wake_latency.value() < 0.0) {
    throw std::invalid_argument("wake latency must be non-negative");
  }
  if (stages_.park && (parking_.hi_threshold <= 0.0 ||
                       parking_.hi_threshold > 1.0 ||
                       parking_.lo_threshold < 0.0 ||
                       parking_.lo_threshold >= parking_.hi_threshold)) {
    throw std::invalid_argument(
        "ParkingConfig: need 0 <= lo_threshold < hi_threshold <= 1");
  }
  if (stages_.rate_adapt &&
      (rate_.min_frequency <= 0.0 || rate_.min_frequency > 1.0)) {
    throw std::invalid_argument("min_frequency must be in (0, 1]");
  }
  if (stages_.rate_adapt && rate_.headroom < 0.0) {
    throw std::invalid_argument("headroom must be non-negative");
  }
  if (rate_.model.config().num_pipelines != pipes_) {
    throw std::invalid_argument(
        "StackedSwitchPolicy: parking and rate models must agree on the "
        "pipeline count");
  }
}

std::string_view StackedSwitchPolicy::name() const {
  if (stages_.park && stages_.rate_adapt) return "park+rate-adapt";
  if (stages_.park) return "park";
  if (stages_.rate_adapt) return "rate-adapt";
  return "all-on";
}

PowerStateTimeline StackedSwitchPolicy::make_timeline(const LoadTrace& trace) {
  if (trace.channels() != pipes_ && trace.channels() != 1) {
    throw std::invalid_argument(
        "StackedSwitchPolicy: trace needs one channel per pipeline (or a "
        "single aggregate channel)");
  }
  PowerStateTimeline timeline{
      pipes_,
      TransitionRules{stages_.park ? parking_.wake_latency : Seconds{0.0},
                      Seconds{0.0},
                      stages_.rate_adapt ? rate_.hysteresis : 0.0},
      trace.times.front()};
  timeline.set_power_model(
      // Powered pipelines at their (possibly adapted) clock and
      // (possibly concentrated) load; waking pipelines draw idle power;
      // parked pipelines draw nothing. The circuit switch only exists — and
      // only draws — when parking is stacked.
      [this](std::span<const ComponentTrack> tracks) {
        std::vector<PipelineState> states;
        states.reserve(static_cast<std::size_t>(pipes_));
        for (const auto& track : tracks) {
          if (track.state == PowerState::kOn) {
            states.push_back(PipelineState{true, track.level, track.load});
          } else if (track.state == PowerState::kWaking) {
            states.push_back(PipelineState{true, 1.0, 0.0});
          } else {
            states.push_back(PipelineState{false, 1.0, 0.0});
          }
        }
        Watts power = parking_.model.total_power(states, ports_);
        if (stages_.park) power = power + parking_.circuit_switch_power;
        return power;
      },
      // Baseline: every pipeline on at nominal clock and full lanes,
      // carrying its raw channel load.
      [this](std::span<const ComponentTrack> /*tracks*/) {
        std::vector<PipelineState> states;
        states.reserve(static_cast<std::size_t>(pipes_));
        for (int p = 0; p < pipes_; ++p) {
          states.push_back(PipelineState{
              true, 1.0, channel_loads_[static_cast<std::size_t>(p)]});
        }
        return parking_.model.total_power(states, ports_);
      });
  return timeline;
}

void StackedSwitchPolicy::observe(const LoadSegment& seg,
                                  PowerStateTimeline& timeline) {
  const bool per_pipe = static_cast<int>(seg.loads.size()) == pipes_;
  double sum = 0.0;
  for (double load : seg.loads) sum += load;
  offered_ = sum / static_cast<double>(seg.loads.size());
  for (int p = 0; p < pipes_; ++p) {
    channel_loads_[static_cast<std::size_t>(p)] =
        per_pipe ? seg.loads[static_cast<std::size_t>(p)] : offered_;
  }

  // Stage 1 — parking decides the powered set from the aggregate load
  // (same reactive fixed-point as ReactiveParkingPolicy).
  if (stages_.park) {
    for (int guard = 0; guard <= pipes_; ++guard) {
      const int provisioned = timeline.provisioned();
      const int target = std::clamp(
          detail::reactive_parking_target(parking_, pipes_, offered_,
                                          provisioned),
          parking_.min_active, pipes_);
      if (target == provisioned) break;
      if (target > provisioned) {
        for (int k = provisioned; k < target; ++k) timeline.wake_one();
      } else {
        int excess = provisioned - target;
        while (excess > 0 && timeline.cancel_last_wake()) --excess;
        while (excess > 0 &&
               timeline.count(PowerState::kOn) > parking_.min_active) {
          timeline.park_one();
          --excess;
        }
      }
    }
  }

  // Stage 2 — load placement and rate adaptation on the powered set. With
  // parking, the circuit switch concentrates the whole offered load onto
  // the active pipelines; without it, every pipeline carries its own
  // channel.
  const auto target_frequency = [this](double load) {
    return std::clamp(load * (1.0 + rate_.headroom), rate_.min_frequency,
                      1.0);
  };
  if (stages_.park) {
    const int active = timeline.count(PowerState::kOn);
    const double capacity_frac = static_cast<double>(active) / pipes_;
    const double served = std::min(offered_, capacity_frac);
    const double concentrated =
        active > 0 ? std::min(1.0, served * pipes_ / active) : 0.0;
    for (int p = 0; p < pipes_; ++p) {
      if (timeline.track(p).state == PowerState::kOn) {
        timeline.set_load(p, concentrated);
        if (stages_.rate_adapt) {
          timeline.request_level(p, target_frequency(concentrated));
        }
      } else {
        timeline.set_load(p, 0.0);
      }
    }
  } else {
    for (int p = 0; p < pipes_; ++p) {
      const double load = channel_loads_[static_cast<std::size_t>(p)];
      timeline.set_load(p, load);
      if (stages_.rate_adapt) {
        timeline.request_level(p, target_frequency(load));
      }
    }
  }
}

double StackedSwitchPolicy::capacity_fraction(
    const PowerStateTimeline& timeline) const {
  return static_cast<double>(timeline.count(PowerState::kOn)) / pipes_;
}

// Named (not anonymous) so CompositeCache::Impl can hold these types without
// tripping GCC's subobject-linkage warning.
namespace composite_impl {

/// One backend run of the workload with `disabled` switches off; records
/// every pod switch's per-pipeline load trace (and, when the backend
/// collapses the core, the aggregate gateway signal). The construction
/// order — recorder built, switches disabled, listeners attached, flows
/// submitted, run drained — is exactly the pre-seam FabricRun sequence, so
/// the single backend's traces are bit-identical to it.
struct BackendRun {
  std::unique_ptr<SimulatorBackend> backend;
  BackendLoadRecorder recorder;

  BackendRun(const BuiltTopology& topo, const std::vector<FlowSpec>& workload,
             const std::vector<NodeId>& disabled, const BackendConfig& config)
      : backend(make_backend(topo.graph, config, FlowSimulator::Config{})),
        recorder(*backend, topo.switches) {
    for (NodeId off : disabled) backend->set_node_enabled(off, false);
    recorder.attach();
    for (const auto& flow : workload) backend->submit(flow);
    backend->run();
  }

  [[nodiscard]] double makespan() const { return backend->now().value(); }
};

struct StageTotals {
  double energy_j = 0.0;
  double baseline_j = 0.0;
  std::size_t wakes = 0;
  std::size_t parks = 0;
  std::size_t levels = 0;
  double dropped_bits = 0.0;
  /// Per-switch shares of energy_j/baseline_j, for domain attribution.
  std::map<NodeId, double> switch_energy_j;
  std::map<NodeId, double> switch_baseline_j;
};

StageTotals run_stage(const std::map<NodeId, LoadTrace>& traces,
                      const std::vector<NodeId>& powered,
                      const CompositeConfig& config, bool park, bool rate,
                      telemetry::Telemetry* telemetry = nullptr) {
  StageTotals totals;
  for (NodeId sw : powered) {
    StackedSwitchPolicy policy{config.parking, config.rate,
                               StackedSwitchPolicy::Stages{park, rate}};
    const MechanismReport report =
        run_mechanism(traces.at(sw), policy, telemetry);
    totals.energy_j += report.energy.value();
    totals.baseline_j += report.baseline_energy.value();
    totals.wakes += report.wake_transitions;
    totals.parks += report.park_transitions;
    totals.levels += report.level_transitions;
    totals.dropped_bits += report.dropped.value();
    totals.switch_energy_j.emplace(sw, report.energy.value());
    totals.switch_baseline_j.emplace(sw, report.baseline_energy.value());
  }
  return totals;
}

/// Fingerprint of the scenario axes the cache memoizes over. Two calls with
/// equal fingerprints that nonetheless differ (hash-collision style) would
/// need identical topology sizes, workload volume, demand matrices, and
/// mechanism knobs — outside what the serve engine (or any sane caller) can
/// construct by accident; the fingerprint is a guard rail, not a key.
std::string scenario_fingerprint(const BuiltTopology& topology,
                                 const std::vector<FlowSpec>& workload,
                                 const std::vector<TrafficDemand>& demands,
                                 const CompositeConfig& config) {
  double flow_bits = 0.0;
  for (const FlowSpec& flow : workload) flow_bits += flow.size.value();
  double demand_bps = 0.0;
  for (const TrafficDemand& demand : demands) {
    demand_bps += demand.rate.bits_per_second();
  }
  char buf[512];
  std::snprintf(
      buf, sizeof buf,
      "nodes=%zu|switches=%zu|hosts=%zu|flows=%zu|bits=%.17g|demands=%zu"
      "|dbps=%.17g|backend=%d|shards=%zu|pipes=%d|cap=%.17g|hi=%.17g"
      "|lo=%.17g|minf=%.17g|rhead=%.17g|tailor_util=%.17g",
      topology.graph.num_nodes(), topology.switches.size(),
      topology.hosts.size(), workload.size(), flow_bits, demands.size(),
      demand_bps, static_cast<int>(config.backend.kind),
      config.backend.num_shards, config.parking.model.config().num_pipelines,
      config.parking.switch_capacity.bits_per_second(),
      config.parking.hi_threshold, config.parking.lo_threshold,
      config.rate.min_frequency, config.rate.headroom,
      config.tailor_config.satisfaction);
  return std::string{buf};
}

}  // namespace composite_impl

using composite_impl::BackendRun;
using composite_impl::StageTotals;
using composite_impl::run_stage;
using composite_impl::scenario_fingerprint;

struct CompositeCache::Impl {
  std::mutex mutex;
  std::string fingerprint;  ///< empty until the first run stamps it
  bool has_tailoring = false;
  TailorResult tailoring;
  /// Backend runs keyed by the disabled-switch set ({} = full fabric).
  std::map<std::vector<NodeId>, std::unique_ptr<BackendRun>> runs;
  /// Extracted pod-switch traces keyed by (disabled set, energy window).
  std::map<std::pair<std::vector<NodeId>, double>, std::map<NodeId, LoadTrace>>
      traces;
  /// Stage totals keyed by (traces' disabled set, window, powered set,
  /// park, rate).
  std::map<std::tuple<std::vector<NodeId>, double, std::vector<NodeId>, bool,
                      bool>,
           StageTotals>
      stages;
  std::size_t sim_reuses = 0;
  std::size_t stage_reuses = 0;
};

CompositeCache::CompositeCache() : impl_(std::make_unique<Impl>()) {}
CompositeCache::~CompositeCache() = default;

std::size_t CompositeCache::sim_reuses() const {
  const std::lock_guard<std::mutex> lock{impl_->mutex};
  return impl_->sim_reuses;
}

std::size_t CompositeCache::stage_reuses() const {
  const std::lock_guard<std::mutex> lock{impl_->mutex};
  return impl_->stage_reuses;
}

CompositeReport run_composite(const BuiltTopology& topology,
                              const std::vector<FlowSpec>& workload,
                              const std::vector<TrafficDemand>& demands,
                              Seconds horizon, const CompositeConfig& config) {
  if (horizon.value() <= 0.0) {
    throw std::invalid_argument("run_composite: horizon must be positive");
  }
  if (topology.switches.empty()) {
    throw std::invalid_argument("run_composite: topology has no switches");
  }
  const int pipes = config.parking.model.config().num_pipelines;

  CompositeReport report;
  report.switches_total = topology.switches.size();

  // Warm-state cache: stamped to one scenario on first use, serializing
  // concurrent callers for the duration of the call. Everything consulted
  // below is a deterministic pure function of the scenario, so hits are
  // bit-identical to recomputation.
  CompositeCache::Impl* cache =
      config.cache != nullptr ? config.cache->impl_.get() : nullptr;
  std::unique_lock<std::mutex> cache_lock;
  if (cache != nullptr) {
    cache_lock = std::unique_lock<std::mutex>{cache->mutex};
    std::string fingerprint =
        scenario_fingerprint(topology, workload, demands, config);
    if (cache->fingerprint.empty()) {
      cache->fingerprint = std::move(fingerprint);
    } else if (cache->fingerprint != fingerprint) {
      throw std::invalid_argument(
          "CompositeCache: cache reused across different scenarios (expected "
          "one cache per topology/workload/backend combination)");
    }
  }

  // Static stage first: tailoring decides which switches are powered, and
  // therefore which fabric the dynamic stages observe.
  std::vector<NodeId> powered = topology.switches;
  if (config.tailor) {
    if (cache != nullptr && cache->has_tailoring) {
      report.tailoring = cache->tailoring;
    } else {
      report.tailoring =
          tailor_topology(topology, demands, config.tailor_config);
      if (cache != nullptr) {
        cache->tailoring = report.tailoring;
        cache->has_tailoring = true;
      }
    }
    if (!report.tailoring.powered_off.empty()) {
      powered = report.tailoring.powered_on;
    }
  }
  const bool tailored = config.tailor && !report.tailoring.powered_off.empty();

  // Simulate the workload on the full fabric (baseline + dynamic-only
  // stages) and, when tailoring bites, on the tailored fabric (survivors
  // carry the rerouted traffic). Both runs share one energy window.
  std::deque<BackendRun> local_runs;
  const auto obtain_run =
      [&](const std::vector<NodeId>& disabled) -> const BackendRun& {
    if (cache != nullptr) {
      const auto it = cache->runs.find(disabled);
      if (it != cache->runs.end()) {
        ++cache->sim_reuses;
        return *it->second;
      }
      auto run = std::make_unique<BackendRun>(topology, workload, disabled,
                                              config.backend);
      return *cache->runs.emplace(disabled, std::move(run)).first->second;
    }
    local_runs.emplace_back(topology, workload, disabled, config.backend);
    return local_runs.back();
  };
  const BackendRun& full_run = obtain_run({});
  const BackendRun* tailored_run =
      tailored ? &obtain_run(report.tailoring.powered_off) : nullptr;
  double end_s = std::max(horizon.value(), full_run.makespan() + 1e-9);
  if (tailored_run) {
    end_s = std::max(end_s, tailored_run->makespan() + 1e-9);
  }
  const Seconds end{end_s};
  report.horizon = end;

  // A collapsed core (multi-shard backend) has no per-core-switch traces:
  // the pod tier keeps the per-switch stacked analysis, the core tier moves
  // to the aggregate-load accounting below.
  const bool collapsed = full_run.backend->core_collapsed();
  std::vector<NodeId> pod_switches;
  std::vector<NodeId> core_switches;
  for (NodeId sw : topology.switches) {
    if (!collapsed || full_run.recorder.has_node(sw)) {
      pod_switches.push_back(sw);
    } else {
      core_switches.push_back(sw);
    }
  }
  std::vector<NodeId> powered_pod;
  std::size_t core_surviving = 0;
  for (NodeId sw : powered) {
    if (!collapsed || full_run.recorder.has_node(sw)) {
      powered_pod.push_back(sw);
    } else {
      ++core_surviving;
    }
  }

  std::deque<std::map<NodeId, LoadTrace>> local_traces;
  const std::vector<NodeId> no_disabled;
  const auto obtain_traces =
      [&](const BackendRun& run, const std::vector<NodeId>& disabled)
      -> const std::map<NodeId, LoadTrace>& {
    const auto build = [&] {
      std::map<NodeId, LoadTrace> traces;
      for (NodeId sw : pod_switches) {
        traces.emplace(sw, run.recorder.node_trace(sw, pipes, end));
      }
      return traces;
    };
    if (cache != nullptr) {
      const auto key = std::make_pair(disabled, end.value());
      const auto it = cache->traces.find(key);
      if (it != cache->traces.end()) return it->second;
      return cache->traces.emplace(key, build()).first->second;
    }
    local_traces.push_back(build());
    return local_traces.back();
  };
  const auto& full_traces = obtain_traces(full_run, no_disabled);
  const std::map<NodeId, LoadTrace> no_traces;
  const auto& tailored_traces =
      tailored_run ? obtain_traces(*tailored_run, report.tailoring.powered_off)
                   : no_traces;
  const auto& stack_traces = tailored ? tailored_traces : full_traces;

  // Per-stage mechanism totals, memoized for un-telemetered stages; a
  // telemetered stage always re-runs so its events/metrics are emitted
  // every call (the recomputed totals are identical by determinism).
  std::deque<StageTotals> local_stages;
  const auto obtain_stage =
      [&](const std::vector<NodeId>& traces_disabled,
          const std::map<NodeId, LoadTrace>& traces,
          const std::vector<NodeId>& stage_powered, bool park, bool rate,
          telemetry::Telemetry* telemetry) -> const StageTotals& {
    if (cache != nullptr) {
      auto key = std::make_tuple(traces_disabled, end.value(), stage_powered,
                                 park, rate);
      if (telemetry == nullptr) {
        const auto it = cache->stages.find(key);
        if (it != cache->stages.end()) {
          ++cache->stage_reuses;
          return it->second;
        }
      }
      StageTotals totals =
          run_stage(traces, stage_powered, config, park, rate, telemetry);
      return cache->stages.insert_or_assign(std::move(key), std::move(totals))
          .first->second;
    }
    local_stages.push_back(
        run_stage(traces, stage_powered, config, park, rate, telemetry));
    return local_stages.back();
  };

  // All-on baseline over the full fabric.
  const StageTotals& baseline = obtain_stage(no_disabled, full_traces,
                                             pod_switches, false, false,
                                             nullptr);

  // Core-layer accounting when the core is collapsed: flat per-switch draw
  // (§2: load-independent terms dominate), parked against the aggregate
  // cross-pod gateway load when parking is enabled. All four terms stay 0.0
  // on a verbatim-core backend, leaving the composition bit-identical.
  double core_all_j = 0.0;            // every core switch on, whole window
  double core_tailored_flat_j = 0.0;  // tailoring survivors on, no parking
  double core_park_alone_j = 0.0;     // parking alone over the full fabric
  double core_stack_j = 0.0;          // the combined stack's core share
  std::size_t core_wakes = 0;
  std::size_t core_parks = 0;
  if (collapsed && !core_switches.empty()) {
    const double per_switch_j =
        config.domains.core.switch_power.value() * end.value();
    const int n_core = static_cast<int>(core_switches.size());
    core_all_j = per_switch_j * n_core;
    core_tailored_flat_j = per_switch_j * static_cast<double>(core_surviving);
    if (config.park) {
      CoreParkingPolicy alone{config.domains.core, n_core};
      core_park_alone_j =
          run_mechanism(full_run.recorder.core_trace(end), alone).energy.value();
    }
    if (config.park && core_surviving > 0) {
      // The stack parks the tailoring survivors; the gateway trace is in
      // total-core-capacity fractions, so rescale to the surviving base.
      const double scale =
          static_cast<double>(n_core) / static_cast<double>(core_surviving);
      CoreParkingPolicy policy{config.domains.core,
                               static_cast<int>(core_surviving), scale};
      const MechanismReport core_report = run_mechanism(
          tailored_run ? tailored_run->recorder.core_trace(end)
                       : full_run.recorder.core_trace(end),
          policy, config.telemetry);
      core_stack_j = core_report.energy.value();
      core_wakes = core_report.wake_transitions;
      core_parks = core_report.park_transitions;
    } else {
      core_stack_j = core_tailored_flat_j;
    }
  }

  const double baseline_total_j = baseline.energy_j + core_all_j;
  report.baseline_energy = Joules{baseline_total_j};

  const double ocs_energy_j =
      tailored ? config.ocs.config().ocs_power.value() * config.num_ocs_devices *
                     end.value()
               : 0.0;

  const auto add_single = [&](std::string name, double energy_j) {
    CompositeStageResult single;
    single.name = std::move(name);
    single.energy = Joules{energy_j};
    single.savings = baseline_total_j > 0.0
                         ? 1.0 - energy_j / baseline_total_j
                         : 0.0;
    report.best_single_savings =
        std::max(report.best_single_savings, single.savings);
    report.singles.push_back(std::move(single));
  };

  // Each enabled mechanism alone, against the same baseline.
  if (config.tailor) {
    const StageTotals& alone =
        tailored ? obtain_stage(report.tailoring.powered_off, tailored_traces,
                                powered_pod, false, false, nullptr)
                 : baseline;
    add_single("tailoring",
               alone.energy_j + core_tailored_flat_j + ocs_energy_j);
  }
  if (config.park) {
    const StageTotals& alone =
        obtain_stage(no_disabled, full_traces, pod_switches, true, false,
                     nullptr);
    add_single("parking", alone.energy_j + core_park_alone_j);
  }
  if (config.rate_adapt) {
    const StageTotals& alone =
        obtain_stage(no_disabled, full_traces, pod_switches, false, true,
                     nullptr);
    add_single("rate-adaptation", alone.energy_j + core_all_j);
  }

  // The full enabled stack (the only telemetered stage: its per-switch
  // transitions and breakpoints are the events worth tracing).
  const StageTotals& stacked =
      obtain_stage(tailored ? report.tailoring.powered_off : no_disabled,
                   stack_traces, powered_pod, config.park, config.rate_adapt,
                   config.telemetry);
  const double combined_j = stacked.energy_j + core_stack_j + ocs_energy_j;
  report.energy = Joules{combined_j};
  report.combined_savings = baseline_total_j > 0.0
                                ? 1.0 - combined_j / baseline_total_j
                                : 0.0;
  report.wake_transitions = stacked.wakes + core_wakes;
  report.park_transitions = stacked.parks + core_parks;
  report.level_transitions = stacked.levels;
  report.dropped = Bits{stacked.dropped_bits};
  report.average_power = Watts{combined_j / end.value()};
  report.baseline_average_power = Watts{baseline_total_j / end.value()};

  // Per-pod + core power-domain attribution of the combined stack. The
  // partition is structural (topo/pods.h); topologies without one (no core
  // tier, or a flat graph) report no domains.
  bool have_partition = true;
  PodPartition partition;
  try {
    partition = make_pod_partition(topology.graph);
  } catch (const std::invalid_argument&) {
    have_partition = false;
  }
  if (have_partition) {
    const auto switch_sum = [](const std::map<NodeId, double>& per_switch,
                               const std::vector<NodeId>& members) {
      // Switches absent from the stage map (tailored off) cost nothing.
      double sum = 0.0;
      for (NodeId sw : members) {
        const auto it = per_switch.find(sw);
        if (it != per_switch.end()) sum += it->second;
      }
      return sum;
    };
    const auto make_domain = [&](std::string name, std::size_t count,
                                 double energy_j, double baseline_j,
                                 Watts budget) {
      DomainReport domain;
      domain.name = std::move(name);
      domain.switches = count;
      domain.energy = Joules{energy_j};
      domain.baseline_energy = Joules{baseline_j};
      domain.savings =
          baseline_j > 0.0 ? 1.0 - energy_j / baseline_j : 0.0;
      domain.average_power = Watts{energy_j / end.value()};
      domain.budget = budget;
      domain.within_budget = budget.value() <= 0.0 ||
                             domain.average_power.value() <= budget.value();
      return domain;
    };

    std::vector<std::vector<NodeId>> pod_members(partition.num_pods);
    std::vector<NodeId> core_members;
    for (NodeId sw : topology.switches) {
      const int pod = partition.pod_of_node.at(sw);
      if (pod == PodPartition::kCore) {
        core_members.push_back(sw);
      } else {
        pod_members[static_cast<std::size_t>(pod)].push_back(sw);
      }
    }
    for (std::size_t p = 0; p < partition.num_pods; ++p) {
      report.domains.push_back(make_domain(
          "pod" + std::to_string(p), pod_members[p].size(),
          switch_sum(stacked.switch_energy_j, pod_members[p]),
          switch_sum(baseline.switch_baseline_j, pod_members[p]),
          config.domains.pod_budget));
    }
    // The core domain also carries the OCS draw: tailoring's stitching
    // hardware lives in the core layer.
    const double core_energy_j =
        (collapsed ? core_stack_j
                   : switch_sum(stacked.switch_energy_j, core_members)) +
        ocs_energy_j;
    const double core_baseline_j =
        collapsed ? core_all_j
                  : switch_sum(baseline.switch_baseline_j, core_members);
    report.domains.push_back(make_domain("core", core_members.size(),
                                         core_energy_j, core_baseline_j,
                                         config.domains.core_budget));
  }

  if (config.telemetry != nullptr) {
    telemetry::MetricRegistry& m = config.telemetry->metrics();
    m.counter("composite.wakes").set(report.wake_transitions);
    m.counter("composite.parks").set(report.park_transitions);
    m.counter("composite.level_changes").set(report.level_transitions);
    m.gauge("composite.energy_joules", "joules").set(combined_j);
    m.gauge("composite.baseline_joules", "joules").set(baseline_total_j);
    m.gauge("composite.combined_savings").set(report.combined_savings);
    m.gauge("composite.best_single_savings")
        .set(report.best_single_savings);
    m.gauge("composite.dropped_bits", "bits").set(stacked.dropped_bits);
    m.gauge("composite.horizon_seconds", "seconds").set(end.value());
    for (const DomainReport& domain : report.domains) {
      const std::string prefix = "composite.domain." + domain.name;
      m.gauge(prefix + ".energy_joules", "joules").set(domain.energy.value());
      m.gauge(prefix + ".savings").set(domain.savings);
      m.gauge(prefix + ".within_budget")
          .set(domain.within_budget ? 1.0 : 0.0);
    }
  }
  return report;
}

}  // namespace netpp
