#include "netpp/mech/redesign.h"

#include <cmath>
#include <stdexcept>

namespace netpp {

GranularPipelineModel::GranularPipelineModel(Config config)
    : config_(config) {
  if (config_.max_power.value() <= 0.0) {
    throw std::invalid_argument("max power must be positive");
  }
  const double top = config_.chassis_fraction + config_.serdes_fraction +
                     config_.pipelines_fraction;
  if (std::fabs(top - 1.0) > 1e-9) {
    throw std::invalid_argument("power fractions must sum to 1");
  }
  if (config_.baseline_pipelines < 1) {
    throw std::invalid_argument("baseline pipeline count must be >= 1");
  }
  if (config_.overhead_per_doubling < 0.0) {
    throw std::invalid_argument("overhead must be non-negative");
  }
}

Watts GranularPipelineModel::pipeline_budget(int n) const {
  if (n < 1) throw std::invalid_argument("pipeline count must be >= 1");
  const Watts base = config_.max_power * config_.pipelines_fraction;
  const double doublings =
      n > config_.baseline_pipelines
          ? std::log2(static_cast<double>(n) / config_.baseline_pipelines)
          : 0.0;
  return base * (1.0 + config_.overhead_per_doubling * doublings);
}

Watts GranularPipelineModel::power_at_load(int n, double load) const {
  if (load < 0.0 || load > 1.0) {
    throw std::invalid_argument("load must be in [0, 1]");
  }
  const Watts fixed = config_.max_power *
                      (config_.chassis_fraction + config_.serdes_fraction);
  const double active = std::ceil(load * n - 1e-12);
  return fixed + pipeline_budget(n) * (active / static_cast<double>(n));
}

double GranularPipelineModel::effective_proportionality(int n) const {
  const Watts full = power_at_load(n, 1.0);
  const Watts idle = power_at_load(n, 0.0);
  return (full - idle) / full;
}

Watts GranularPipelineModel::duty_cycle_average(
    int n, double active, double load_when_active) const {
  if (active < 0.0 || active > 1.0) {
    throw std::invalid_argument("active fraction must be in [0, 1]");
  }
  return power_at_load(n, load_when_active) * active +
         power_at_load(n, 0.0) * (1.0 - active);
}

int GranularPipelineModel::best_granularity(double active,
                                            double load_when_active,
                                            int max_n) const {
  if (max_n < config_.baseline_pipelines) {
    throw std::invalid_argument("max_n must cover the baseline");
  }
  int best = config_.baseline_pipelines;
  Watts best_power = duty_cycle_average(best, active, load_when_active);
  for (int n = config_.baseline_pipelines * 2; n <= max_n; n *= 2) {
    const Watts power = duty_cycle_average(n, active, load_when_active);
    if (power < best_power) {
      best_power = power;
      best = n;
    }
  }
  return best;
}

CpoRetrofit::CpoRetrofit(Config config) : config_(config) {
  if (config_.power_factor <= 0.0) {
    throw std::invalid_argument("power factor must be positive");
  }
  if (config_.optics_proportionality < 0.0 ||
      config_.optics_proportionality > 1.0) {
    throw std::invalid_argument("optics proportionality must be in [0, 1]");
  }
}

Watts CpoRetrofit::average_cluster_power(const ClusterConfig& base) const {
  const ClusterModel cluster{base};
  const double r = base.communication_ratio;
  const auto& inv = cluster.network();

  const auto electronics = PowerEnvelope::from_proportionality(
      inv.switch_power + inv.nic_power, base.network_proportionality);
  const auto optics = PowerEnvelope::from_proportionality(
      inv.transceiver_power * config_.power_factor,
      config_.optics_proportionality);

  return cluster.compute_envelope().duty_cycle_average(1.0 - r) +
         electronics.duty_cycle_average(r) + optics.duty_cycle_average(r);
}

double CpoRetrofit::savings_fraction(const ClusterConfig& base) const {
  const Watts before = ClusterModel{base}.average_total_power();
  const Watts after = average_cluster_power(base);
  return before.value() > 0.0 ? 1.0 - after / before : 0.0;
}

}  // namespace netpp
