#include "netpp/mech/mechanism.h"

#include <algorithm>
#include <functional>

namespace netpp {

namespace {

/// Trace-event name for an applied power-state transition.
const char* transition_event_name(PowerState from, PowerState to) {
  if (to == PowerState::kWaking) return "power.wake_request";
  if (to == PowerState::kOn) {
    return from == PowerState::kWaking ? "power.wake_complete" : "power.on";
  }
  if (from == PowerState::kWaking) return "power.wake_cancel";
  return to == PowerState::kSleep ? "power.sleep" : "power.park";
}

}  // namespace

double MechanismPolicy::offered_fraction(const LoadSegment& seg) const {
  double sum = 0.0;
  for (double load : seg.loads) sum += load;
  return sum / static_cast<double>(seg.loads.size());
}

MechanismReport run_mechanism(SimEngine& engine, const LoadTrace& trace,
                              MechanismPolicy& policy,
                              telemetry::Telemetry* telemetry) {
  trace.validate();
  PowerStateTimeline timeline = policy.make_timeline(trace);

  telemetry::EventLog* events =
      telemetry != nullptr && telemetry->events().enabled()
          ? &telemetry->events()
          : nullptr;
  std::uint64_t run_id = 0;
  if (telemetry != nullptr) {
    telemetry::Counter runs = telemetry->metrics().counter(
        "mech.runs", "runs", "mechanism driver invocations");
    run_id = runs.value();
    runs.inc();
  }
  if (events != nullptr) {
    events->begin_span("mech", "mechanism.run", trace.times.front(), run_id);
    timeline.set_transition_listener(
        [events](int component, PowerState from, PowerState to, Seconds at) {
          events->instant("power", transition_event_name(from, to), at,
                          "component", static_cast<double>(component));
        });
  }

  const double t_end = trace.end.value();
  const bool buffering = policy.models_buffering();
  const double cap_bps = policy.nominal_capacity_bps();

  std::size_t seg = 0;
  double t = trace.times.front().value();
  double buffer_bits = 0.0;

  MechanismReport report;
  report.mechanism = std::string{policy.name()};

  // One self-rearming engine event per integration interval. The interval
  // ends at the nearest of: the next trace boundary, the earliest pending
  // wake completion, the next policy breakpoint, or the buffer draining
  // empty.
  std::function<void()> step = [&] {
    while (seg + 1 < trace.times.size() &&
           trace.times[seg + 1].value() <= t + 1e-15) {
      ++seg;
    }
    const LoadSegment segment{Seconds{t}, trace.times[seg],
                              trace.segment_end(seg), seg, trace.loads[seg]};
    policy.observe(segment, timeline);

    double t_next = t_end;
    if (seg + 1 < trace.times.size()) {
      t_next = std::min(t_next, trace.times[seg + 1].value());
    }
    t_next = std::min(t_next, timeline.next_event());
    const double breakpoint = policy.next_breakpoint(t);
    t_next = std::min(t_next, breakpoint);
    if (events != nullptr && breakpoint <= t_next) {
      events->instant("mech", "mech.breakpoint", Seconds{breakpoint});
    }

    double offered = 0.0;
    double capacity_frac = 1.0;
    double surplus = 0.0;
    if (buffering) {
      offered = policy.offered_fraction(segment);
      capacity_frac = policy.capacity_fraction(timeline);
      surplus = capacity_frac - offered;  // fraction of device capacity
      if (buffer_bits > 0.0 && surplus > 0.0) {
        const double drain_time = buffer_bits / (surplus * cap_bps);
        t_next = std::min(t_next, t + drain_time);
      }
    }
    if (t_next <= t) t_next = std::min(t_end, t + 1e-12);  // fp guard
    const double dt = t_next - t;

    if (buffering) {
      // Evolve the shortfall buffer; overflow is loss.
      if (surplus >= 0.0) {
        const double drained = std::min(buffer_bits, surplus * cap_bps * dt);
        buffer_bits -= drained;
      } else {
        buffer_bits += (-surplus) * cap_bps * dt;
        const double cap = policy.buffer_capacity().value();
        if (buffer_bits > cap) {
          report.dropped += Bits{buffer_bits - cap};
          buffer_bits = cap;
        }
      }
      report.max_buffered = std::max(report.max_buffered, Bits{buffer_bits});
      if (capacity_frac > 0.0 && buffer_bits > 0.0) {
        report.max_added_delay =
            std::max(report.max_added_delay,
                     Seconds{buffer_bits / (capacity_frac * cap_bps)});
      }
    }

    // Integrate [t, t_next) and complete wakes due at t_next.
    timeline.advance_to(Seconds{t_next});
    policy.on_interval(Seconds{t}, Seconds{t_next}, segment, timeline);

    t = t_next;
    if (t < t_end) engine.schedule_at(Seconds{t}, step);
  };

  if (t < t_end) engine.schedule_at(Seconds{t}, step);
  engine.run_until(trace.end);

  const double duration = trace.duration().value();
  const double energy_j = timeline.energy().value();
  const double baseline_j = timeline.baseline_energy().value();
  report.duration = Seconds{duration};
  report.energy = timeline.energy();
  report.baseline_energy = timeline.baseline_energy();
  report.savings = baseline_j > 0.0 ? 1.0 - energy_j / baseline_j : 0.0;
  report.average_power = Watts{energy_j / duration};
  report.wake_transitions = timeline.wake_transitions();
  report.park_transitions = timeline.park_transitions();
  report.level_transitions = timeline.level_transitions();
  for (int s = 0; s < kNumPowerStates; ++s) {
    report.residency[static_cast<std::size_t>(s)] =
        timeline.residency(static_cast<PowerState>(s));
  }
  report.mean_on_components =
      timeline.residency(PowerState::kOn).value() / duration;
  report.mean_level = timeline.mean_level_time() / duration;
  policy.finish(trace, timeline, report);

  if (events != nullptr) {
    events->end_span("mech", "mechanism.run", trace.end, run_id);
  }
  if (telemetry != nullptr) {
    telemetry::MetricRegistry& m = telemetry->metrics();
    const std::string prefix = "mech." + report.mechanism + ".";
    m.counter(prefix + "wakes").inc(report.wake_transitions);
    m.counter(prefix + "parks").inc(report.park_transitions);
    m.counter(prefix + "level_changes").inc(report.level_transitions);
    m.gauge(prefix + "energy_joules", "joules").add(report.energy.value());
    m.gauge(prefix + "baseline_joules", "joules")
        .add(report.baseline_energy.value());
    m.gauge(prefix + "dropped_bits", "bits").add(report.dropped.value());
    m.gauge(prefix + "residency_on_seconds", "seconds")
        .add(report.residency[static_cast<std::size_t>(PowerState::kOn)]
                 .value());
    m.gauge(prefix + "residency_off_seconds", "seconds")
        .add(report.residency[static_cast<std::size_t>(PowerState::kOff)]
                 .value());
    // Last-writer ratios: exact for a single run; for a composite's
    // per-switch runs, recompute from the accumulated energy gauges instead.
    m.gauge(prefix + "savings").set(report.savings);
    m.gauge(prefix + "mean_on_components").set(report.mean_on_components);
    m.gauge(prefix + "mean_level").set(report.mean_level);
  }
  return report;
}

MechanismReport run_mechanism(const LoadTrace& trace, MechanismPolicy& policy,
                              telemetry::Telemetry* telemetry) {
  SimEngine engine;
  return run_mechanism(engine, trace, policy, telemetry);
}

}  // namespace netpp
