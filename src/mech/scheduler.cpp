#include "netpp/mech/scheduler.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <queue>
#include <stdexcept>

#include "netpp/sim/random.h"
#include "netpp/sim/stats.h"

namespace netpp {
namespace {

struct Allocation {
  int rack;
  int gpus;
};

struct RunningJob {
  double end;
  std::vector<Allocation> allocations;
  bool operator>(const RunningJob& other) const { return end > other.end; }
};

}  // namespace

ScheduleResult simulate_schedule(const SchedulerConfig& config,
                                 std::vector<Job> jobs,
                                 PlacementPolicy policy) {
  if (config.racks < 1 || config.gpus_per_rack < 1) {
    throw std::invalid_argument("cluster dimensions must be positive");
  }
  if (config.communication_ratio < 0.0 || config.communication_ratio > 1.0) {
    throw std::invalid_argument("communication ratio must be in [0, 1]");
  }
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (jobs[i].gpus < 1 || jobs[i].duration.value() <= 0.0) {
      throw std::invalid_argument("jobs need positive GPU count and duration");
    }
    if (i > 0 && jobs[i].arrival < jobs[i - 1].arrival) {
      throw std::invalid_argument("jobs must be sorted by arrival");
    }
  }

  const double occupied_power =
      config.tor_envelope.duty_cycle_average(config.communication_ratio)
          .value();
  const double empty_power =
      config.allow_switch_off ? 0.0
                              : config.tor_envelope.idle_power().value();
  const double always_on_empty = config.tor_envelope.idle_power().value();

  std::vector<int> used(config.racks, 0);
  std::vector<TimeWeighted> rack_power(
      config.racks, TimeWeighted{empty_power, Seconds{0.0}});
  TimeWeighted occupied_racks{0.0, Seconds{0.0}};
  TimeWeighted empty_racks{static_cast<double>(config.racks), Seconds{0.0}};

  std::priority_queue<RunningJob, std::vector<RunningJob>, std::greater<>>
      running;
  ScheduleResult result;

  int occupied_count = 0;
  const auto set_rack_state = [&](int rack, bool occupied, double at) {
    rack_power[rack].set(Seconds{at}, occupied ? occupied_power : empty_power);
    occupied_count += occupied ? 1 : -1;
    occupied_racks.set(Seconds{at}, occupied_count);
    empty_racks.set(Seconds{at},
                    static_cast<double>(config.racks - occupied_count));
  };

  const auto drain_until = [&](double t) {
    while (!running.empty() && running.top().end <= t) {
      const RunningJob done = running.top();
      running.pop();
      for (const auto& alloc : done.allocations) {
        used[alloc.rack] -= alloc.gpus;
        if (used[alloc.rack] == 0) {
          set_rack_state(alloc.rack, false, done.end);
        }
      }
    }
  };

  for (const auto& job : jobs) {
    const double at = job.arrival.value();
    drain_until(at);

    const int total_free = std::accumulate(
        used.begin(), used.end(), config.racks * config.gpus_per_rack,
        [&](int acc, int u) { return acc - u; });
    if (job.gpus > total_free) {
      ++result.rejected_jobs;
      continue;
    }

    // Rack visit order per policy.
    std::vector<int> order(config.racks);
    std::iota(order.begin(), order.end(), 0);
    if (policy == PlacementPolicy::kSpread) {
      // Most-free first (load balancing).
      std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
        return used[a] < used[b];
      });
    } else {
      // Concentrate: occupied racks first, fullest (least free) first;
      // empty racks last.
      std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
        const bool a_occ = used[a] > 0, b_occ = used[b] > 0;
        if (a_occ != b_occ) return a_occ;
        return used[a] > used[b];
      });
    }

    RunningJob run;
    int remaining = job.gpus;
    bool woke_any = false;
    for (int rack : order) {
      if (remaining == 0) break;
      const int free = config.gpus_per_rack - used[rack];
      if (free <= 0) continue;
      const int take = std::min(free, remaining);
      if (used[rack] == 0) {
        set_rack_state(rack, true, at);
        if (config.allow_switch_off) {
          woke_any = true;
          ++result.tor_wakeups;
        }
      }
      used[rack] += take;
      remaining -= take;
      run.allocations.push_back(Allocation{rack, take});
    }

    const double delay =
        woke_any ? config.switch_wake_time.value() : 0.0;
    result.total_wake_delay += Seconds{delay};
    run.end = at + delay + job.duration.value();
    running.push(std::move(run));
    ++result.placed_jobs;
  }
  // Drain everything.
  drain_until(std::numeric_limits<double>::infinity());

  // Horizon: the last state change across trackers.
  double horizon = occupied_racks.last_change().value();
  for (const auto& rp : rack_power) {
    horizon = std::max(horizon, rp.last_change().value());
  }
  if (horizon <= 0.0) horizon = 1.0;  // no jobs: any horizon works
  const Seconds end{horizon};

  double energy = 0.0;
  for (const auto& rp : rack_power) energy += rp.integral(end);
  result.tor_energy = Joules{energy};

  // Always-on counterfactual: empty racks draw idle power instead of
  // empty_power.
  const double empty_time = empty_racks.integral(end);
  const double always_on =
      energy + (always_on_empty - empty_power) * empty_time;
  result.always_on_tor_energy = Joules{always_on};
  result.tor_energy_savings =
      always_on > 0.0 ? 1.0 - energy / always_on : 0.0;
  result.mean_occupied_racks = occupied_racks.average(end);
  return result;
}

std::vector<Job> make_job_trace(int count, Seconds mean_interarrival,
                                Seconds mean_duration, int max_gpus_per_job,
                                std::uint64_t seed) {
  if (count < 0 || mean_interarrival.value() <= 0.0 ||
      mean_duration.value() <= 0.0 || max_gpus_per_job < 1) {
    throw std::invalid_argument("invalid job trace parameters");
  }
  Rng rng{seed};
  std::vector<Job> jobs;
  jobs.reserve(static_cast<std::size_t>(count));
  double t = 0.0;
  for (int i = 0; i < count; ++i) {
    t += rng.exponential(1.0 / mean_interarrival.value());
    Job job;
    job.id = static_cast<std::uint64_t>(i);
    job.gpus = static_cast<int>(rng.uniform_int(1, max_gpus_per_job));
    job.arrival = Seconds{t};
    job.duration =
        Seconds{rng.exponential(1.0 / mean_duration.value())};
    jobs.push_back(job);
  }
  return jobs;
}

}  // namespace netpp
