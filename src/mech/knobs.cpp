#include "netpp/mech/knobs.h"

#include <algorithm>
#include <stdexcept>

namespace netpp {

FeatureSet features_for_cstate(SwitchCState state) {
  switch (state) {
    case SwitchCState::kC0FullRouter:
      return {"pipelines", "l3-lookup", "full-routing-table", "deep-buffers",
              "ports", "telemetry"};
    case SwitchCState::kC1LeanRouter:
      // Route-reflector deployment: L3 with a small table, light telemetry.
      return {"pipelines", "l3-lookup", "ports"};
    case SwitchCState::kC2L2Only:
      return {"pipelines", "ports"};
    case SwitchCState::kC3Standby:
      return {};
  }
  throw std::invalid_argument("unknown C-state");
}

RouterComponentModel::RouterComponentModel(
    std::vector<RouterComponent> components)
    : components_(std::move(components)) {
  if (components_.empty()) {
    throw std::invalid_argument("component inventory must not be empty");
  }
  for (const auto& c : components_) {
    if (c.power.value() < 0.0) {
      throw std::invalid_argument("component power must be non-negative");
    }
  }
}

RouterComponentModel RouterComponentModel::reference_router() {
  // 750 W total (paper Table 1), decomposed in line with the
  // SwitchPowerModel fractions: 30% chassis/control, 40% pipelines + lookup
  // + memory, 30% SerDes — further split into gateable functional blocks.
  std::vector<RouterComponent> inventory = {
      {"chassis-fans-psu", Watts{150.0}, "", false},
      {"control-cpu", Watts{75.0}, "", false},
      {"pipeline-0", Watts{45.0}, "pipelines", true},
      {"pipeline-1", Watts{45.0}, "pipelines", true},
      {"pipeline-2", Watts{45.0}, "pipelines", true},
      {"pipeline-3", Watts{45.0}, "pipelines", true},
      {"l3-lookup-engine", Watts{45.0}, "l3-lookup", true},
      {"full-fib-memory", Watts{30.0}, "full-routing-table", true},
      {"deep-buffer-memory", Watts{30.0}, "deep-buffers", true},
      {"serdes-group-0", Watts{52.5}, "ports", true},
      {"serdes-group-1", Watts{52.5}, "ports", true},
      {"serdes-group-2", Watts{52.5}, "ports", true},
      {"serdes-group-3", Watts{52.5}, "ports", true},
      {"telemetry-engine", Watts{30.0}, "telemetry", true},
  };
  return RouterComponentModel{std::move(inventory)};
}

Watts RouterComponentModel::total_power() const {
  Watts total{};
  for (const auto& c : components_) total += c.power;
  return total;
}

Watts RouterComponentModel::power_for_features(const FeatureSet& features,
                                               GatingQuality quality) const {
  const auto needed = [&](const RouterComponent& c) {
    if (c.feature.empty()) return true;  // base component
    return std::find(features.begin(), features.end(), c.feature) !=
           features.end();
  };
  Watts total{};
  for (const auto& c : components_) {
    if (needed(c) || !c.gateable) {
      total += c.power;
      continue;
    }
    switch (quality) {
      case GatingQuality::kFixed:
        break;  // truly off
      case GatingQuality::kBuggy:
        total += c.power;  // off in software, powered in hardware
        break;
      case GatingQuality::kPartial:
        total += c.power * 0.5;
        break;
    }
  }
  return total;
}

Watts RouterComponentModel::savings_for_features(const FeatureSet& features,
                                                 GatingQuality quality) const {
  return total_power() - power_for_features(features, quality);
}

Watts RouterComponentModel::power_in_cstate(SwitchCState state,
                                            GatingQuality quality) const {
  return power_for_features(features_for_cstate(state), quality);
}

double RouterComponentModel::gating_headroom(const FeatureSet& features,
                                             GatingQuality quality) const {
  const Watts total = total_power();
  if (total.value() <= 0.0) return 0.0;
  return savings_for_features(features, quality) / total;
}

}  // namespace netpp
