#include "netpp/mech/eee.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "netpp/power/state_timeline.h"

namespace netpp {
namespace {

/// FIFO departure times for an always-on link (no wake penalties).
std::vector<double> always_on_departures(const std::vector<EeeFrame>& frames,
                                         double rate_bps) {
  std::vector<double> departs(frames.size());
  double t_free = 0.0;
  for (std::size_t i = 0; i < frames.size(); ++i) {
    const double start = std::max(frames[i].arrival.value(), t_free);
    t_free = start + frames[i].size.value() / rate_bps;
    departs[i] = t_free;
  }
  return departs;
}

}  // namespace

EeeResult simulate_eee_link(const EeeConfig& config,
                            const std::vector<EeeFrame>& frames,
                            Seconds horizon) {
  if (config.link_rate.value() <= 0.0) {
    throw std::invalid_argument("link rate must be positive");
  }
  if (config.active_power.value() <= 0.0) {
    throw std::invalid_argument("active power must be positive");
  }
  if (config.lpi_power_fraction < 0.0 || config.lpi_power_fraction > 1.0) {
    throw std::invalid_argument("lpi power fraction must be in [0, 1]");
  }
  if (config.sleep_time.value() < 0.0 || config.wake_time.value() < 0.0 ||
      config.coalescing_timer.value() < 0.0) {
    throw std::invalid_argument("times must be non-negative");
  }
  for (std::size_t i = 0; i < frames.size(); ++i) {
    if (frames[i].size.value() <= 0.0) {
      throw std::invalid_argument("frame sizes must be positive");
    }
    if (i > 0 && frames[i].arrival < frames[i - 1].arrival) {
      throw std::invalid_argument("frames must be sorted by arrival");
    }
  }

  const double rate_bps = config.link_rate.bits_per_second();
  const double ts = config.sleep_time.value();
  const double tw = config.wake_time.value();

  EeeResult result;
  result.frames = frames.size();

  // The link is one timeline component alternating kOn <-> kSleep; the wake
  // time is lumped into the active period (the link draws active power while
  // waking). LPI residency and wake counts come from the timeline.
  PowerStateTimeline link{1, TransitionRules{}};

  double t_free = 0.0;  // link has drained all accepted work
  std::vector<double> departs(frames.size());

  std::size_t i = 0;
  while (i < frames.size()) {
    const double a = frames[i].arrival.value();
    const double sleep_begin = t_free + ts;
    if (a >= sleep_begin) {
      // The link fell asleep before this frame arrived: decide the wake
      // point, possibly coalescing subsequent arrivals.
      double wake_start = a;
      if (config.coalescing_timer.value() > 0.0 ||
          config.coalesce_frames > 1) {
        const double deadline =
            config.coalescing_timer.value() > 0.0
                ? a + config.coalescing_timer.value()
                : std::numeric_limits<double>::infinity();
        std::size_t count = 1;
        std::size_t j = i + 1;
        double trigger = deadline;
        while (j < frames.size() && frames[j].arrival.value() <= deadline) {
          ++count;
          if (config.coalesce_frames > 1 && count >= config.coalesce_frames) {
            trigger = frames[j].arrival.value();
            break;
          }
          ++j;
        }
        wake_start = std::isfinite(trigger) ? trigger : a;
      }
      link.advance_to(Seconds{sleep_begin});
      link.request_off(0, PowerState::kSleep);
      link.advance_to(Seconds{wake_start});
      link.request_on(0);
      t_free = wake_start + tw;
    }
    const double start = std::max(a, t_free);
    t_free = start + frames[i].size.value() / rate_bps;
    departs[i] = t_free;
    ++i;
  }

  // Tail: the link sleeps once the final busy period drains.
  if (horizon.value() < t_free) {
    throw std::invalid_argument("horizon must cover the last departure");
  }
  const double tail_sleep = t_free + ts;
  if (horizon.value() > tail_sleep) {
    link.advance_to(Seconds{tail_sleep});
    link.request_off(0, PowerState::kSleep);
  }
  link.advance_to(horizon);

  const double lpi_time = link.residency(PowerState::kSleep).value();
  result.wake_transitions = link.wake_transitions();

  const double active_time = horizon.value() - lpi_time;
  result.energy =
      Joules{config.active_power.value() *
             (active_time + lpi_time * config.lpi_power_fraction)};
  result.always_on_energy =
      Joules{config.active_power.value() * horizon.value()};
  result.energy_savings_fraction =
      1.0 - result.energy / result.always_on_energy;
  result.lpi_time_fraction = lpi_time / horizon.value();

  const auto baseline = always_on_departures(frames, rate_bps);
  double sum_added = 0.0, max_added = 0.0;
  for (std::size_t k = 0; k < frames.size(); ++k) {
    const double added = departs[k] - baseline[k];
    sum_added += added;
    max_added = std::max(max_added, added);
  }
  result.mean_added_delay =
      frames.empty() ? Seconds{0.0}
                     : Seconds{sum_added / static_cast<double>(frames.size())};
  result.max_added_delay = Seconds{max_added};
  return result;
}

}  // namespace netpp
