#include "netpp/mech/backend_recorder.h"

#include <algorithm>
#include <stdexcept>

namespace netpp {

BackendLoadRecorder::BackendLoadRecorder(SimulatorBackend& backend,
                                         const std::vector<NodeId>& nodes)
    : backend_(backend) {
  owner_.assign(backend_.graph().num_nodes(), kNoShard);
  const std::size_t shard_count = backend_.shard_count();
  shards_.resize(shard_count);
  for (std::size_t s = 0; s < shard_count; ++s) {
    ShardRecorder& rec = shards_[s];
    rec.topo = backend_.shard_topology(s);
    std::vector<NodeId> local_nodes;
    for (const NodeId node : nodes) {
      const NodeId local =
          rec.topo != nullptr ? rec.topo->local_of_global[node] : node;
      if (local == kInvalidNode) continue;
      local_nodes.push_back(local);
      owner_[node] = static_cast<std::uint32_t>(s);
    }
    if (rec.topo != nullptr && !rec.topo->verbatim()) {
      local_nodes.push_back(rec.topo->gateway);
      for (const ShardTopology::GatewayLink& gl : rec.topo->gateway_links) {
        rec.gateway_capacity_bps += gl.total_capacity_bps;
      }
    }
    rec.recorder = std::make_unique<NodeLoadRecorder>(backend_.shard_sim(s),
                                                      std::move(local_nodes));
  }
}

void BackendLoadRecorder::attach() {
  const Seconds now = backend_.now();
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    backend_.shard_sim(s).set_load_listener(shards_[s].recorder->listener());
    shards_[s].recorder->sample(now);
  }
}

bool BackendLoadRecorder::has_node(NodeId node) const {
  return node < owner_.size() && owner_[node] != kNoShard;
}

LoadTrace BackendLoadRecorder::node_trace(NodeId node, int num_channels,
                                          Seconds end) const {
  if (!has_node(node)) {
    throw std::logic_error(
        "BackendLoadRecorder: node has no per-node trace (collapsed core "
        "switch or unknown node)");
  }
  const ShardRecorder& rec = shards_[owner_[node]];
  const NodeId local =
      rec.topo != nullptr ? rec.topo->local_of_global[node] : node;
  return rec.recorder->load_trace(local, num_channels, end);
}

LoadTrace BackendLoadRecorder::core_trace(Seconds end) const {
  if (!backend_.core_collapsed()) {
    throw std::logic_error(
        "BackendLoadRecorder: core_trace requires a collapsed core (sharded "
        "backend with more than one shard)");
  }
  // Per-shard gateway traces, then a capacity-weighted merge over the union
  // of their sample times. Each boundary link is aggregated by exactly one
  // shard's gateway, so the weighted mean is the true fraction of total
  // core-facing capacity carried.
  std::vector<LoadTrace> traces;
  std::vector<double> weights;
  std::vector<Seconds> times;
  for (const ShardRecorder& rec : shards_) {
    LoadTrace trace = rec.recorder->load_trace(rec.topo->gateway, 1, end);
    times.insert(times.end(), trace.times.begin(), trace.times.end());
    traces.push_back(std::move(trace));
    weights.push_back(rec.gateway_capacity_bps);
  }
  std::sort(times.begin(), times.end(),
            [](Seconds a, Seconds b) { return a.value() < b.value(); });
  times.erase(std::unique(times.begin(), times.end(),
                          [](Seconds a, Seconds b) {
                            return a.value() == b.value();
                          }),
              times.end());

  double total_weight = 0.0;
  for (const double w : weights) total_weight += w;

  LoadTrace merged;
  merged.end = end;
  for (const Seconds t : times) {
    double load = 0.0;
    for (std::size_t s = 0; s < traces.size(); ++s) {
      load += weights[s] * traces[s].load_at(t, 0);
    }
    load = total_weight > 0.0 ? load / total_weight : 0.0;
    // Collapse consecutive identical segments, mirroring
    // NodeLoadRecorder::load_trace.
    if (!merged.loads.empty() && merged.loads.back()[0] == load) continue;
    merged.times.push_back(t);
    merged.loads.push_back({load});
  }
  merged.validate();
  return merged;
}

}  // namespace netpp
