#include "netpp/mech/ocs.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

#include "netpp/validation.h"

namespace netpp {
namespace {

/// Routes all demands on the currently-enabled graph and returns per-flow
/// max-min rates (empty if any demand is unroutable). Also accumulates the
/// carried bits/s per switch into `switch_load` when non-null.
std::vector<double> route_and_allocate(
    const Router& router, const std::vector<TrafficDemand>& demands,
    const TailorConfig& config, std::map<NodeId, double>* switch_load,
    std::span<const double> link_capacity_factors = {}) {
  const Graph& g = router.graph();
  std::vector<FairShareFlow> flows;
  std::vector<double> capacities(g.num_links() * 2);
  for (const auto& link : g.links()) {
    const double factor = link.id < link_capacity_factors.size()
                              ? link_capacity_factors[link.id]
                              : 1.0;
    capacities[link.id * 2] = link.capacity.bits_per_second() * factor;
    capacities[link.id * 2 + 1] = link.capacity.bits_per_second() * factor;
  }

  std::vector<std::vector<NodeId>> transit_nodes;
  flows.reserve(demands.size());
  for (std::size_t d = 0; d < demands.size(); ++d) {
    auto paths = router.ecmp_paths(demands[d].src, demands[d].dst,
                                   config.max_ecmp_paths);
    if (paths.empty()) return {};
    // Deterministic spread of demands across their ECMP sets.
    std::uint64_t h = d + 0x9e3779b97f4a7c15ULL;
    h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
    const auto path =
        std::optional<Path>{std::move(paths[h % paths.size()])};
    FairShareFlow flow;
    flow.cap = demands[d].rate.bits_per_second();
    NodeId at = path->src;
    std::vector<NodeId> transits;
    for (LinkId lid : path->links) {
      const Link& link = g.link(lid);
      const int dir = (at == link.a) ? 0 : 1;
      flow.resources.push_back(static_cast<std::size_t>(lid) * 2 + dir);
      at = link.other(at);
      if (at != path->dst && g.node(at).kind != NodeKind::kHost) {
        transits.push_back(at);
      }
    }
    flows.push_back(std::move(flow));
    transit_nodes.push_back(std::move(transits));
  }

  auto rates = max_min_fair_rates(flows, capacities);
  if (switch_load) {
    for (std::size_t d = 0; d < demands.size(); ++d) {
      // First hop switch (the ToR) plus transit switches carry this flow.
      for (NodeId sw : transit_nodes[d]) (*switch_load)[sw] += rates[d];
    }
  }
  return rates;
}

}  // namespace

void TrafficDemand::validate(const Graph& graph) const {
  if (src >= graph.num_nodes() || dst >= graph.num_nodes()) {
    throw std::out_of_range("TrafficDemand: endpoint does not exist");
  }
  validation::require(src != dst, "TrafficDemand", "src must differ from dst");
  validation::require(std::isfinite(rate.value()) && rate.value() > 0.0,
                      "TrafficDemand", "rate must be finite and positive");
}

bool demands_satisfiable(const Router& router,
                         const std::vector<TrafficDemand>& demands,
                         const TailorConfig& config) {
  return demands_satisfiable(router, demands, config, {});
}

bool demands_satisfiable(const Router& router,
                         const std::vector<TrafficDemand>& demands,
                         const TailorConfig& config,
                         std::span<const double> link_capacity_factors) {
  const auto rates = route_and_allocate(router, demands, config, nullptr,
                                        link_capacity_factors);
  if (rates.empty() && !demands.empty()) return false;
  for (std::size_t d = 0; d < demands.size(); ++d) {
    if (rates[d] + 1e-9 <
        config.satisfaction * demands[d].rate.bits_per_second()) {
      return false;
    }
  }
  return true;
}

TailorResult tailor_topology(const BuiltTopology& topology,
                             const std::vector<TrafficDemand>& demands,
                             const TailorConfig& config) {
  return tailor_topology_on(Router{topology.graph}, topology, demands,
                            config);
}

TailorResult tailor_topology_on(const Router& base,
                                const BuiltTopology& topology,
                                const std::vector<TrafficDemand>& demands,
                                const TailorConfig& config) {
  const Graph& g = topology.graph;
  for (const auto& d : demands) d.validate(g);
  Router router = base;  // failed devices stay masked throughout

  // Only switches that survive (enabled in `base`) participate.
  std::vector<NodeId> candidates;
  for (NodeId sw : topology.switches) {
    if (base.node_enabled(sw)) candidates.push_back(sw);
  }

  TailorResult result;
  result.feasible = demands_satisfiable(router, demands, config);
  if (!result.feasible) {
    result.powered_on = candidates;
    return result;
  }

  // Protect pinned switches and every host's sole attachment point.
  std::vector<bool> protected_switch(g.num_nodes(), false);
  for (NodeId pinned : config.pinned) protected_switch.at(pinned) = true;
  for (NodeId host : topology.hosts) {
    if (g.degree(host) == 1) {
      protected_switch[g.neighbors(host)[0].neighbor] = true;
    }
  }

  // Initial load per switch on the surviving topology, for the greedy order
  // (least-loaded switches are the cheapest to lose).
  std::map<NodeId, double> load;
  for (NodeId sw : candidates) load[sw] = 0.0;
  route_and_allocate(router, demands, config, &load);

  std::vector<NodeId> order = candidates;
  std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    if (load[a] != load[b]) return load[a] < load[b];
    return a < b;
  });

  for (NodeId sw : order) {
    if (protected_switch[sw]) continue;
    router.set_node_enabled(sw, false);
    if (demands_satisfiable(router, demands, config)) {
      result.powered_off.push_back(sw);
    } else {
      router.set_node_enabled(sw, true);
    }
  }

  for (NodeId sw : candidates) {
    if (router.node_enabled(sw)) result.powered_on.push_back(sw);
  }
  result.switches_off_fraction =
      candidates.empty()
          ? 0.0
          : static_cast<double>(result.powered_off.size()) /
                static_cast<double>(candidates.size());
  return result;
}

double OcsOverheadModel::time_overhead(Seconds job_duration) const {
  if (job_duration.value() <= 0.0) {
    throw std::invalid_argument("job duration must be positive");
  }
  const double lost = config_.reconfiguration_time.value() *
                      config_.reconfigurations_per_job;
  return lost / (lost + job_duration.value());
}

Watts OcsOverheadModel::net_power_savings(Watts switch_savings,
                                          int num_ocs_devices) const {
  if (num_ocs_devices < 0) {
    throw std::invalid_argument("device count must be non-negative");
  }
  return switch_savings - config_.ocs_power * num_ocs_devices;
}

}  // namespace netpp
