#include "netpp/mech/packet_switch.h"

#include <algorithm>
#include <stdexcept>

namespace netpp {

PacketSwitchSim::PacketSwitchSim(SimEngine& engine, PacketSwitchConfig config)
    : engine_(engine),
      config_(std::move(config)),
      ports_per_group_(0),
      service_rate_bps_(0.0),
      result_(config_.histogram_max) {
  if (config_.num_ports < 1 || config_.num_pipelines < 1) {
    throw std::invalid_argument("need at least one port and one pipeline");
  }
  if (config_.num_ports % config_.num_pipelines != 0) {
    throw std::invalid_argument(
        "ports must divide evenly into pipeline groups");
  }
  if (config_.active_pipelines < 1 ||
      config_.active_pipelines > config_.num_pipelines) {
    throw std::invalid_argument(
        "active_pipelines must be in [1, num_pipelines]");
  }
  if (config_.pipeline_frequency <= 0.0 || config_.pipeline_frequency > 1.0) {
    throw std::invalid_argument("pipeline frequency must be in (0, 1]");
  }
  if (config_.port_rate.value() <= 0.0) {
    throw std::invalid_argument("port rate must be positive");
  }
  if (config_.dwell.value() <= 0.0 || config_.reconfig.value() < 0.0) {
    throw std::invalid_argument("dwell must be positive, reconfig >= 0");
  }

  // Align the power model's component counts with this switch.
  SwitchPowerConfig pcfg = config_.power.config();
  pcfg.num_pipelines = config_.num_pipelines;
  pcfg.num_ports = config_.num_ports;
  config_.power = SwitchPowerModel{pcfg};

  ports_per_group_ = config_.num_ports / config_.num_pipelines;
  service_rate_bps_ = ports_per_group_ *
                      config_.port_rate.bits_per_second() *
                      config_.pipeline_frequency;

  ports_.resize(static_cast<std::size_t>(config_.num_ports));
  pipelines_.resize(static_cast<std::size_t>(config_.active_pipelines));
  const int groups = config_.num_pipelines;
  for (int p = 0; p < config_.active_pipelines; ++p) {
    pipelines_[p].group = p % groups;
    pipelines_[p].busy_tw = TimeWeighted{0.0, engine_.now()};
    if (config_.active_pipelines < groups) {
      // Round-robin over the groups this pipeline covers.
      engine_.schedule_after(config_.dwell, [this, p] { rotate(p); });
    }
  }
}

void PacketSwitchSim::inject(int port, Seconds at, Bits size) {
  if (port < 0 || port >= config_.num_ports) {
    throw std::out_of_range("port index out of range");
  }
  if (size.value() <= 0.0) {
    throw std::invalid_argument("packet size must be positive");
  }
  engine_.schedule_at(at, [this, port, size] { on_arrival(port, size); });
}

void PacketSwitchSim::on_arrival(int port, Bits size) {
  ++result_.injected;
  Port& p = ports_[static_cast<std::size_t>(port)];
  if (p.buffered_bits + size.value() > config_.port_buffer.value()) {
    ++result_.dropped;
    return;
  }
  p.queue.push_back(Packet{engine_.now().value(), size.value()});
  p.buffered_bits += size.value();

  const int group = port / ports_per_group_;
  for (int i = 0; i < config_.active_pipelines; ++i) {
    if (pipelines_[i].group == group && !pipelines_[i].busy &&
        !pipelines_[i].paused) {
      try_serve(i);
      break;
    }
  }
}

int PacketSwitchSim::next_port_with_traffic(int group) const {
  // FIFO across the group's ports: earliest head-of-line arrival wins.
  int best = -1;
  double best_arrival = 0.0;
  for (int k = 0; k < ports_per_group_; ++k) {
    const int port = group * ports_per_group_ + k;
    const auto& queue = ports_[static_cast<std::size_t>(port)].queue;
    if (queue.empty()) continue;
    if (best < 0 || queue.front().arrival < best_arrival) {
      best = port;
      best_arrival = queue.front().arrival;
    }
  }
  return best;
}

void PacketSwitchSim::try_serve(int pipeline) {
  Pipeline& pipe = pipelines_[static_cast<std::size_t>(pipeline)];
  if (pipe.busy || pipe.paused) return;
  const int port = next_port_with_traffic(pipe.group);
  if (port < 0) return;

  Port& src = ports_[static_cast<std::size_t>(port)];
  const Packet packet = src.queue.front();
  src.queue.erase(src.queue.begin());
  src.buffered_bits -= packet.size_bits;

  pipe.busy = true;
  pipe.busy_tw.set(engine_.now(), 1.0);
  const Seconds service{packet.size_bits / service_rate_bps_};
  engine_.schedule_after(service, [this, pipeline, packet] {
    Pipeline& done = pipelines_[static_cast<std::size_t>(pipeline)];
    done.busy = false;
    done.busy_tw.set(engine_.now(), 0.0);
    const double latency = engine_.now().value() - packet.arrival;
    result_.latency.add(latency);
    result_.latency_hist.add(latency);
    ++result_.served;
    if (done.rotate_pending) {
      done.rotate_pending = false;
      do_rotate(pipeline);
    } else {
      try_serve(pipeline);
    }
  });
}

void PacketSwitchSim::rotate(int pipeline) {
  Pipeline& pipe = pipelines_[static_cast<std::size_t>(pipeline)];
  if (pipe.busy) {
    // Non-preemptive: the in-flight packet's completion performs the
    // rotation.
    pipe.rotate_pending = true;
    return;
  }
  do_rotate(pipeline);
}

void PacketSwitchSim::do_rotate(int pipeline) {
  // Reconfiguration pause, then advance to this pipeline's next group.
  pipelines_[static_cast<std::size_t>(pipeline)].paused = true;
  engine_.schedule_after(config_.reconfig, [this, pipeline] {
    Pipeline& p = pipelines_[static_cast<std::size_t>(pipeline)];
    p.paused = false;
    p.group = (p.group + config_.active_pipelines) % config_.num_pipelines;
    try_serve(pipeline);
    engine_.schedule_after(config_.dwell, [this, pipeline] {
      rotate(pipeline);
    });
  });
}

PacketSwitchResult PacketSwitchSim::finish(Seconds horizon) {
  if (finished_) throw std::logic_error("finish() already called");
  finished_ = true;

  double busy_sum = 0.0;
  std::vector<PipelineState> states(
      static_cast<std::size_t>(config_.num_pipelines),
      PipelineState{false, 1.0, 0.0});
  for (int i = 0; i < config_.active_pipelines; ++i) {
    const double busy = pipelines_[static_cast<std::size_t>(i)]
                            .busy_tw.average(horizon);
    busy_sum += busy;
    states[static_cast<std::size_t>(i)] =
        PipelineState{true, config_.pipeline_frequency,
                      config_.pipeline_frequency * busy};
  }
  result_.mean_pipeline_busy =
      busy_sum / static_cast<double>(config_.active_pipelines);

  const std::vector<PortState> port_states(
      static_cast<std::size_t>(config_.num_ports), PortState{});
  const Watts power = config_.power.total_power(states, port_states);
  result_.average_power = power;
  result_.energy = power * horizon;
  return std::move(result_);
}

}  // namespace netpp
