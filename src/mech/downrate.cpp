#include "netpp/mech/downrate.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace netpp {
namespace {

/// Smallest ladder step whose speed covers `needed_gbps`; falls back to the
/// top step.
double pick_step(const std::vector<double>& ladder, double needed_gbps) {
  for (double step : ladder) {
    if (step >= needed_gbps - 1e-12) return step;
  }
  return ladder.back();
}

}  // namespace

DownrateResult simulate_downrating(const AggregateLoadTrace& trace,
                                   const DownrateConfig& config) {
  trace.validate();
  if (config.ladder.empty()) {
    throw std::invalid_argument("speed ladder must not be empty");
  }
  if (!std::is_sorted(config.ladder.begin(), config.ladder.end())) {
    throw std::invalid_argument("speed ladder must be ascending");
  }
  for (double s : config.ladder) {
    if (s <= 0.0) throw std::invalid_argument("ladder speeds must be positive");
  }
  if (std::fabs(config.ladder.back() - config.nominal.value()) > 1e-9) {
    throw std::invalid_argument("ladder must top out at the nominal speed");
  }
  if (config.gating_effectiveness < 0.0 ||
      config.gating_effectiveness > 1.0) {
    throw std::invalid_argument("gating effectiveness must be in [0, 1]");
  }
  if (config.headroom < 0.0) {
    throw std::invalid_argument("headroom must be non-negative");
  }

  // Per-end power at a step, degraded by gating effectiveness: the realized
  // power is nominal_power - effectiveness * (nominal_power - step_power).
  const double nominal_power_w =
      config.end_power.at(config.nominal).value() * 2.0;  // both ends
  const auto power_at = [&](double step) {
    const double ideal = config.end_power.at(Gbps{step}).value() * 2.0;
    return nominal_power_w -
           config.gating_effectiveness * (nominal_power_w - ideal);
  };

  DownrateResult result;
  double speed = config.nominal.value();
  double sufficient_since = trace.times.front().value();  // for down-dwell
  double energy = 0.0;
  double speed_time = 0.0;

  const double t_end = trace.end.value();
  for (std::size_t i = 0; i < trace.times.size(); ++i) {
    const double seg_start = trace.times[i].value();
    const double seg_end =
        (i + 1 < trace.times.size()) ? trace.times[i + 1].value() : t_end;
    const double load_gbps = trace.loads[i] * config.nominal.value();
    const double wanted =
        pick_step(config.ladder, load_gbps * (1.0 + config.headroom));

    if (wanted > speed + 1e-12) {
      // Step up immediately (load must be served).
      speed = wanted;
      ++result.transitions;
      result.outage_time += config.transition_outage;
      sufficient_since = seg_start;
    } else if (wanted < speed - 1e-12) {
      // Step down only after the dwell at a sufficient lower step.
      if (seg_start - sufficient_since >= config.down_dwell.value()) {
        speed = wanted;
        ++result.transitions;
        result.outage_time += config.transition_outage;
        sufficient_since = seg_start;
      }
    } else {
      sufficient_since = seg_start;
    }

    const double dt = seg_end - seg_start;
    energy += power_at(speed) * dt;
    speed_time += speed * dt;
    if (load_gbps > speed + 1e-9) {
      result.violation_time += Seconds{dt};
    }
  }

  const double duration = trace.duration().value();
  result.energy = Joules{energy};
  result.nominal_energy = Joules{nominal_power_w * duration};
  result.savings_fraction =
      result.nominal_energy.value() > 0.0
          ? 1.0 - energy / result.nominal_energy.value()
          : 0.0;
  result.mean_speed = Gbps{speed_time / duration};
  return result;
}

}  // namespace netpp
