#include "netpp/mech/downrate.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace netpp {
namespace {

/// Smallest ladder step whose speed covers `needed_gbps`; falls back to the
/// top step.
double pick_step(const std::vector<double>& ladder, double needed_gbps) {
  for (double step : ladder) {
    if (step >= needed_gbps - 1e-12) return step;
  }
  return ladder.back();
}

}  // namespace

DownratePolicy::DownratePolicy(DownrateConfig config)
    : config_(std::move(config)) {
  if (config_.ladder.empty()) {
    throw std::invalid_argument("speed ladder must not be empty");
  }
  if (!std::is_sorted(config_.ladder.begin(), config_.ladder.end())) {
    throw std::invalid_argument("speed ladder must be ascending");
  }
  for (double s : config_.ladder) {
    if (s <= 0.0) throw std::invalid_argument("ladder speeds must be positive");
  }
  if (std::fabs(config_.ladder.back() - config_.nominal.value()) > 1e-9) {
    throw std::invalid_argument("ladder must top out at the nominal speed");
  }
  if (config_.gating_effectiveness < 0.0 ||
      config_.gating_effectiveness > 1.0) {
    throw std::invalid_argument("gating effectiveness must be in [0, 1]");
  }
  if (config_.headroom < 0.0) {
    throw std::invalid_argument("headroom must be non-negative");
  }
  nominal_power_w_ =
      config_.end_power.at(config_.nominal).value() * 2.0;  // both ends
}

PowerStateTimeline DownratePolicy::make_timeline(const LoadTrace& trace) {
  PowerStateTimeline timeline{
      1, TransitionRules{Seconds{0.0}, config_.down_dwell, 0.0},
      trace.times.front()};
  timeline.set_level(0, config_.nominal.value());
  // Per-end power at a step, degraded by gating effectiveness: the realized
  // power is nominal_power - effectiveness * (nominal_power - step_power).
  timeline.set_power_model([this](std::span<const ComponentTrack> tracks) {
    const double ideal =
        config_.end_power.at(Gbps{tracks[0].level}).value() * 2.0;
    return Watts{nominal_power_w_ -
                 config_.gating_effectiveness * (nominal_power_w_ - ideal)};
  });
  return timeline;
}

void DownratePolicy::observe(const LoadSegment& seg,
                             PowerStateTimeline& timeline) {
  const double load_gbps = seg.loads[0] * config_.nominal.value();
  const double wanted =
      pick_step(config_.ladder, load_gbps * (1.0 + config_.headroom));
  // Upward steps apply immediately (load must be served); downward steps
  // wait out the dwell — both are the timeline's rules. Every applied step
  // costs a renegotiation outage.
  if (timeline.request_level(0, wanted)) {
    outage_time_ += config_.transition_outage.value();
  }
  timeline.set_load(0, seg.loads[0]);
}

void DownratePolicy::on_interval(Seconds t0, Seconds t1,
                                 const LoadSegment& seg,
                                 const PowerStateTimeline& timeline) {
  const double load_gbps = seg.loads[0] * config_.nominal.value();
  if (load_gbps > timeline.track(0).level + 1e-9) {
    violation_time_ += (t1 - t0).value();
  }
}

void DownratePolicy::finish(const LoadTrace& trace,
                            const PowerStateTimeline& /*timeline*/,
                            MechanismReport& report) {
  // The do-nothing baseline is the nominal draw for the whole duration
  // (one-shot, not integrated, so it is exact).
  const double duration = trace.duration().value();
  report.baseline_energy = Joules{nominal_power_w_ * duration};
  report.savings =
      report.baseline_energy.value() > 0.0
          ? 1.0 - report.energy.value() / report.baseline_energy.value()
          : 0.0;
}

DownrateResult simulate_downrating(const AggregateLoadTrace& trace,
                                   const DownrateConfig& config) {
  trace.validate();
  DownratePolicy policy{config};
  const MechanismReport report = run_mechanism(trace.to_load_trace(), policy);

  DownrateResult result;
  result.energy = report.energy;
  result.nominal_energy = report.baseline_energy;
  result.savings_fraction = report.savings;
  result.transitions = report.level_transitions;
  result.violation_time = policy.violation_time();
  result.outage_time = policy.outage_time();
  result.mean_speed = Gbps{report.mean_level};
  return result;
}

}  // namespace netpp
