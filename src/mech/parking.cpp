#include "netpp/mech/parking.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <stdexcept>
#include <vector>

namespace netpp {

void AggregateLoadTrace::validate() const {
  if (times.empty() || times.size() != loads.size()) {
    throw std::invalid_argument(
        "AggregateLoadTrace: needs matching, non-empty times and loads");
  }
  for (std::size_t i = 0; i < times.size(); ++i) {
    if (!std::isfinite(times[i].value())) {
      throw std::invalid_argument("AggregateLoadTrace: times must be finite");
    }
    if (i > 0 && times[i] <= times[i - 1]) {
      throw std::invalid_argument(
          "AggregateLoadTrace: times must be strictly increasing");
    }
    // isfinite guards NaN, which would sail through the range comparison.
    if (!std::isfinite(loads[i]) || loads[i] < 0.0 || loads[i] > 1.0) {
      throw std::invalid_argument(
          "AggregateLoadTrace: loads must be finite and in [0, 1]");
    }
  }
  if (!std::isfinite(end.value()) || end <= times.back()) {
    throw std::invalid_argument(
        "AggregateLoadTrace: end must be finite and after the last segment");
  }
}

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Shared engine: a policy maps (time, offered load) to a desired pipeline
/// count; the engine handles wake latencies, buffering, loss, and energy.
ParkingResult run_parking(
    const AggregateLoadTrace& trace, const ParkingConfig& config,
    const std::function<int(double t, double offered, int active_or_waking)>&
        desired_count,
    const std::vector<double>& policy_breakpoints = {}) {
  trace.validate();
  const auto& model = config.model;
  const int pipes = model.config().num_pipelines;
  if (config.min_active < 1 || config.min_active > pipes) {
    throw std::invalid_argument("min_active must be in [1, num_pipelines]");
  }
  if (config.wake_latency.value() < 0.0) {
    throw std::invalid_argument("wake latency must be non-negative");
  }

  const double cap_bps = config.switch_capacity.bits_per_second();
  const std::vector<PortState> ports(model.config().num_ports, PortState{});

  ParkingResult result;
  int active = pipes;                 // start fully powered
  std::vector<double> wakes;          // completion times of pending wakes
  double buffer_bits = 0.0;
  double energy_j = 0.0;
  double all_on_energy_j = 0.0;
  double active_time = 0.0;  // integral of active pipeline count

  std::size_t seg = 0;
  double t = trace.times.front().value();
  const double t_end = trace.end.value();

  const auto segment_load = [&](double at) {
    while (seg + 1 < trace.times.size() &&
           trace.times[seg + 1].value() <= at + 1e-15) {
      ++seg;
    }
    return trace.loads[seg];
  };

  while (t < t_end) {
    const double offered = segment_load(t);

    // Let the policy steer, iterating to a fixed point so that policies
    // that adjust one pipeline per decision (hysteresis-style) converge
    // within a single breakpoint.
    for (int guard = 0; guard <= pipes; ++guard) {
      const int provisioned = active + static_cast<int>(wakes.size());
      const int target = std::clamp(desired_count(t, offered, provisioned),
                                    config.min_active, pipes);
      if (target == provisioned) break;
      if (target > provisioned) {
        for (int k = provisioned; k < target; ++k) {
          wakes.push_back(t + config.wake_latency.value());
          ++result.wake_transitions;
        }
        if (config.wake_latency.value() == 0.0) {
          active += static_cast<int>(wakes.size());
          wakes.clear();
        }
      } else {
        // Cancel pending wakes first, then park active pipelines (instant).
        int excess = provisioned - target;
        while (excess > 0 && !wakes.empty()) {
          wakes.pop_back();
          --excess;
          --result.wake_transitions;  // never happened
        }
        while (excess > 0 && active > config.min_active) {
          --active;
          --excess;
          ++result.park_transitions;
        }
      }
    }

    // Next breakpoint: trace boundary, earliest wake completion, or the
    // buffer draining to empty.
    double t_next = t_end;
    if (seg + 1 < trace.times.size()) {
      t_next = std::min(t_next, trace.times[seg + 1].value());
    }
    for (double w : wakes) t_next = std::min(t_next, w);
    for (double b : policy_breakpoints) {
      if (b > t + 1e-15) {
        t_next = std::min(t_next, b);
        break;  // breakpoints are sorted
      }
    }

    const double capacity_frac = static_cast<double>(active) / pipes;
    const double surplus = capacity_frac - offered;  // fraction of switch cap
    if (buffer_bits > 0.0 && surplus > 0.0) {
      const double drain_time = buffer_bits / (surplus * cap_bps);
      t_next = std::min(t_next, t + drain_time);
    }
    if (t_next <= t) t_next = std::min(t_end, t + 1e-12);  // fp guard
    const double dt = t_next - t;

    // Evolve the buffer.
    if (surplus >= 0.0) {
      const double drained = std::min(buffer_bits, surplus * cap_bps * dt);
      buffer_bits -= drained;
    } else {
      buffer_bits += (-surplus) * cap_bps * dt;
      const double cap = config.buffer_capacity.value();
      if (buffer_bits > cap) {
        result.dropped += Bits{buffer_bits - cap};
        buffer_bits = cap;
      }
    }
    result.max_buffered =
        std::max(result.max_buffered, Bits{buffer_bits});
    if (capacity_frac > 0.0 && buffer_bits > 0.0) {
      result.max_added_delay =
          std::max(result.max_added_delay,
                   Seconds{buffer_bits / (capacity_frac * cap_bps)});
    }

    // Energy over [t, t_next): `active` pipelines serve min(offered+drain,
    // capacity); waking pipelines draw idle power (leakage + clock, no
    // load); parked pipelines draw nothing.
    const double served_frac = std::min(offered, capacity_frac);
    std::vector<PipelineState> states;
    states.reserve(pipes);
    for (int p = 0; p < pipes; ++p) {
      if (p < active) {
        const double pipe_load =
            active > 0 ? std::min(1.0, served_frac * pipes / active) : 0.0;
        states.push_back(PipelineState{true, 1.0, pipe_load});
      } else if (p < active + static_cast<int>(wakes.size())) {
        states.push_back(PipelineState{true, 1.0, 0.0});  // waking: idle draw
      } else {
        states.push_back(PipelineState{false, 1.0, 0.0});  // parked
      }
    }
    energy_j += (model.total_power(states, ports) +
                 config.circuit_switch_power)
                    .value() *
                dt;

    std::vector<PipelineState> all_on(pipes,
                                      PipelineState{true, 1.0, offered});
    all_on_energy_j += model.total_power(all_on, ports).value() * dt;
    active_time += active * dt;

    // Complete wakes due at t_next.
    t = t_next;
    for (auto it = wakes.begin(); it != wakes.end();) {
      if (*it <= t + 1e-15) {
        ++active;
        it = wakes.erase(it);
      } else {
        ++it;
      }
    }
  }

  const double duration = trace.duration().value();
  result.energy = Joules{energy_j};
  result.average_power = Watts{energy_j / duration};
  result.savings_vs_all_on =
      all_on_energy_j > 0.0 ? 1.0 - energy_j / all_on_energy_j : 0.0;
  result.mean_active_pipelines = active_time / duration;
  return result;
}

void validate_thresholds(const ParkingConfig& config) {
  if (config.hi_threshold <= 0.0 || config.hi_threshold > 1.0 ||
      config.lo_threshold < 0.0 || config.lo_threshold >= config.hi_threshold) {
    throw std::invalid_argument(
        "ParkingConfig: need 0 <= lo_threshold < hi_threshold <= 1");
  }
}

/// Reactive hysteresis step: wake when the load exceeds hi of provisioned
/// capacity; park when it would fit under lo of one fewer pipeline.
int reactive_target(const ParkingConfig& config, int pipes, double offered,
                    int provisioned) {
  const double provisioned_frac = static_cast<double>(provisioned) / pipes;
  if (offered > config.hi_threshold * provisioned_frac) {
    // Provision enough to bring utilization under hi.
    return static_cast<int>(std::ceil(offered * pipes / config.hi_threshold));
  }
  const double smaller_frac = static_cast<double>(provisioned - 1) / pipes;
  if (provisioned > 1 && offered < config.lo_threshold * smaller_frac) {
    return provisioned - 1;
  }
  return provisioned;
}

}  // namespace

ParkingResult simulate_parking_reactive(const AggregateLoadTrace& trace,
                                        const ParkingConfig& config) {
  validate_thresholds(config);
  const int pipes = config.model.config().num_pipelines;
  return run_parking(
      trace, config,
      [&, pipes](double /*t*/, double offered, int provisioned) {
        return reactive_target(config, pipes, offered, provisioned);
      });
}

ParkingResult simulate_parking_reactive_resilient(
    const AggregateLoadTrace& trace,
    const std::vector<EmergencyRecall>& recalls,
    const ParkingConfig& config) {
  validate_thresholds(config);
  trace.validate();
  for (const auto& r : recalls) {
    if (!std::isfinite(r.at.value()) || !std::isfinite(r.until.value()) ||
        r.until <= r.at) {
      throw std::invalid_argument(
          "EmergencyRecall: window needs finite until > at");
    }
    if (!std::isfinite(r.extra_load) || r.extra_load < 0.0) {
      throw std::invalid_argument(
          "EmergencyRecall: extra_load must be finite and >= 0");
    }
  }
  if (recalls.empty()) return simulate_parking_reactive(trace, config);

  // Splice the recall windows into the trace: extra segment boundaries at
  // window edges, and the rerouted load added (clamped to 1) inside them.
  const double t0 = trace.times.front().value();
  const double t_end = trace.end.value();
  std::vector<double> cuts;
  cuts.reserve(trace.times.size() + recalls.size() * 2);
  for (const auto& tt : trace.times) cuts.push_back(tt.value());
  for (const auto& r : recalls) {
    for (double b : {r.at.value(), r.until.value()}) {
      if (b > t0 && b < t_end) cuts.push_back(b);
    }
  }
  std::sort(cuts.begin(), cuts.end());
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());

  const auto base_load = [&trace](double at) {
    std::size_t seg = 0;
    while (seg + 1 < trace.times.size() &&
           trace.times[seg + 1].value() <= at + 1e-15) {
      ++seg;
    }
    return trace.loads[seg];
  };
  const auto in_window = [&recalls](double at) {
    for (const auto& r : recalls) {
      if (at >= r.at.value() - 1e-15 && at < r.until.value() - 1e-15) {
        return true;
      }
    }
    return false;
  };

  AggregateLoadTrace spliced;
  spliced.end = trace.end;
  for (double c : cuts) {
    double load = base_load(c);
    for (const auto& r : recalls) {
      if (c >= r.at.value() - 1e-15 && c < r.until.value() - 1e-15) {
        load += r.extra_load;
      }
    }
    spliced.times.push_back(Seconds{c});
    spliced.loads.push_back(std::min(1.0, load));
  }

  const int pipes = config.model.config().num_pipelines;
  std::size_t emergency = 0;
  ParkingResult result = run_parking(
      spliced, config,
      [&, pipes](double t, double offered, int provisioned) {
        if (in_window(t)) {
          // Fault mode: every pipeline is recalled for the window so parked
          // capacity cannot amplify the failure.
          if (provisioned < pipes) {
            emergency += static_cast<std::size_t>(pipes - provisioned);
          }
          return pipes;
        }
        return reactive_target(config, pipes, offered, provisioned);
      });
  result.emergency_wakes = emergency;
  return result;
}

ParkingResult simulate_parking_predictive(
    const AggregateLoadTrace& trace, const std::vector<LoadForecast>& forecast,
    const ParkingConfig& config) {
  for (std::size_t i = 1; i < forecast.size(); ++i) {
    if (forecast[i].at <= forecast[i - 1].at) {
      throw std::invalid_argument("forecast must be sorted by time");
    }
  }
  const int pipes = config.model.config().num_pipelines;
  const double wake = config.wake_latency.value();

  // Convert the forecast into a step function of desired counts, shifting
  // capacity *increases* earlier by the wake latency.
  struct Command {
    double at;
    int count;
  };
  std::vector<Command> commands;
  int prev = pipes;
  for (const auto& f : forecast) {
    const int count = std::clamp(
        static_cast<int>(std::ceil(f.required_load * pipes /
                                   std::max(config.hi_threshold, 1e-9))),
        config.min_active, pipes);
    const double at =
        count > prev ? std::max(trace.times.front().value(), f.at.value() - wake)
                     : f.at.value();
    commands.push_back(Command{at, count});
    prev = count;
  }
  std::sort(commands.begin(), commands.end(),
            [](const Command& a, const Command& b) { return a.at < b.at; });
  std::vector<double> breakpoints;
  breakpoints.reserve(commands.size());
  for (const auto& c : commands) breakpoints.push_back(c.at);

  return run_parking(trace, config,
                     [&commands, pipes](double t, double /*offered*/,
                                        int provisioned) {
                       int want = pipes;  // before the first command: all on
                       for (const auto& c : commands) {
                         if (c.at <= t + 1e-15) {
                           want = c.count;
                         } else {
                           break;
                         }
                       }
                       (void)provisioned;
                       return want;
                     },
                     breakpoints);
}

}  // namespace netpp
