#include "netpp/mech/parking.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>
#include <vector>

namespace netpp {

namespace detail {

int reactive_parking_target(const ParkingConfig& config, int pipes,
                            double offered, int provisioned) {
  const double provisioned_frac = static_cast<double>(provisioned) / pipes;
  if (offered > config.hi_threshold * provisioned_frac) {
    // Provision enough to bring utilization under hi.
    return static_cast<int>(std::ceil(offered * pipes / config.hi_threshold));
  }
  const double smaller_frac = static_cast<double>(provisioned - 1) / pipes;
  if (provisioned > 1 && offered < config.lo_threshold * smaller_frac) {
    return provisioned - 1;
  }
  return provisioned;
}

}  // namespace detail

namespace {

void validate_thresholds(const ParkingConfig& config) {
  if (config.hi_threshold <= 0.0 || config.hi_threshold > 1.0 ||
      config.lo_threshold < 0.0 || config.lo_threshold >= config.hi_threshold) {
    throw std::invalid_argument(
        "ParkingConfig: need 0 <= lo_threshold < hi_threshold <= 1");
  }
}

ParkingResult to_parking_result(const MechanismReport& report) {
  ParkingResult result;
  result.energy = report.energy;
  result.average_power = report.average_power;
  result.savings_vs_all_on = report.savings;
  result.mean_active_pipelines = report.mean_on_components;
  result.wake_transitions = report.wake_transitions;
  result.park_transitions = report.park_transitions;
  result.max_buffered = report.max_buffered;
  result.dropped = report.dropped;
  result.max_added_delay = report.max_added_delay;
  return result;
}

/// Reactive policy that force-recalls every pipeline inside fault windows
/// (the rerouted extra load is spliced into the trace by the caller).
class ResilientParkingPolicy : public ReactiveParkingPolicy {
 public:
  ResilientParkingPolicy(ParkingConfig config,
                         std::vector<EmergencyRecall> recalls)
      : ReactiveParkingPolicy(std::move(config)),
        recalls_(std::move(recalls)) {}

  [[nodiscard]] std::string_view name() const override {
    return "parking-reactive-resilient";
  }
  [[nodiscard]] std::size_t emergency_wakes() const { return emergency_; }

 protected:
  [[nodiscard]] int desired_count(double t, double offered,
                                  int provisioned) override {
    for (const auto& r : recalls_) {
      if (t >= r.at.value() - 1e-15 && t < r.until.value() - 1e-15) {
        // Fault mode: every pipeline is recalled for the window so parked
        // capacity cannot amplify the failure.
        if (provisioned < pipes_) {
          emergency_ += static_cast<std::size_t>(pipes_ - provisioned);
        }
        return pipes_;
      }
    }
    return ReactiveParkingPolicy::desired_count(t, offered, provisioned);
  }

 private:
  std::vector<EmergencyRecall> recalls_;
  std::size_t emergency_ = 0;
};

}  // namespace

ParkingPolicy::ParkingPolicy(ParkingConfig config)
    : config_(std::move(config)),
      pipes_(config_.model.config().num_pipelines),
      ports_(static_cast<std::size_t>(config_.model.config().num_ports),
             PortState{}) {
  if (config_.min_active < 1 || config_.min_active > pipes_) {
    throw std::invalid_argument("min_active must be in [1, num_pipelines]");
  }
  if (config_.wake_latency.value() < 0.0) {
    throw std::invalid_argument("wake latency must be non-negative");
  }
}

PowerStateTimeline ParkingPolicy::make_timeline(const LoadTrace& trace) {
  PowerStateTimeline timeline{
      pipes_, TransitionRules{config_.wake_latency, Seconds{0.0}, 0.0},
      trace.times.front()};
  timeline.set_power_model(
      // Powered pipelines serve the concentrated load; waking pipelines draw
      // idle power (leakage + clock, no load); parked pipelines draw nothing.
      // The circuit switch's own overhead is always on.
      [this](std::span<const ComponentTrack> tracks) {
        int active = 0;
        for (const auto& track : tracks) {
          active += track.state == PowerState::kOn ? 1 : 0;
        }
        const double capacity_frac = static_cast<double>(active) / pipes_;
        const double served_frac = std::min(offered_, capacity_frac);
        std::vector<PipelineState> states;
        states.reserve(static_cast<std::size_t>(pipes_));
        for (const auto& track : tracks) {
          if (track.state == PowerState::kOn) {
            const double pipe_load =
                active > 0 ? std::min(1.0, served_frac * pipes_ / active)
                           : 0.0;
            states.push_back(PipelineState{true, 1.0, pipe_load});
          } else if (track.state == PowerState::kWaking) {
            states.push_back(PipelineState{true, 1.0, 0.0});
          } else {
            states.push_back(PipelineState{false, 1.0, 0.0});
          }
        }
        return config_.model.total_power(states, ports_) +
               config_.circuit_switch_power;
      },
      // Baseline: every pipeline always on at the offered load, no circuit
      // switch.
      [this](std::span<const ComponentTrack> /*tracks*/) {
        const std::vector<PipelineState> all_on(
            static_cast<std::size_t>(pipes_),
            PipelineState{true, 1.0, offered_});
        return config_.model.total_power(all_on, ports_);
      });
  return timeline;
}

void ParkingPolicy::observe(const LoadSegment& seg,
                            PowerStateTimeline& timeline) {
  offered_ = seg.loads[0];

  // Let the policy steer, iterating to a fixed point so that policies that
  // adjust one pipeline per decision (hysteresis-style) converge within a
  // single breakpoint.
  for (int guard = 0; guard <= pipes_; ++guard) {
    const int provisioned = timeline.provisioned();
    const int target =
        std::clamp(desired_count(seg.at.value(), offered_, provisioned),
                   config_.min_active, pipes_);
    if (target == provisioned) break;
    if (target > provisioned) {
      for (int k = provisioned; k < target; ++k) timeline.wake_one();
    } else {
      // Cancel pending wakes first, then park active pipelines (instant).
      int excess = provisioned - target;
      while (excess > 0 && timeline.cancel_last_wake()) --excess;
      while (excess > 0 &&
             timeline.count(PowerState::kOn) > config_.min_active) {
        timeline.park_one();
        --excess;
      }
    }
  }
}

double ParkingPolicy::capacity_fraction(
    const PowerStateTimeline& timeline) const {
  return static_cast<double>(timeline.count(PowerState::kOn)) / pipes_;
}

int ReactiveParkingPolicy::desired_count(double /*t*/, double offered,
                                         int provisioned) {
  return detail::reactive_parking_target(config_, pipes_, offered,
                                         provisioned);
}

PredictiveParkingPolicy::PredictiveParkingPolicy(
    ParkingConfig config, std::vector<LoadForecast> forecast)
    : ParkingPolicy(std::move(config)), forecast_(std::move(forecast)) {
  for (std::size_t i = 1; i < forecast_.size(); ++i) {
    if (forecast_[i].at <= forecast_[i - 1].at) {
      throw std::invalid_argument("forecast must be sorted by time");
    }
  }
}

PowerStateTimeline PredictiveParkingPolicy::make_timeline(
    const LoadTrace& trace) {
  // Convert the forecast into a step function of desired counts, shifting
  // capacity *increases* earlier by the wake latency.
  const double wake = config_.wake_latency.value();
  commands_.clear();
  commands_.reserve(forecast_.size());
  int prev = pipes_;
  for (const auto& f : forecast_) {
    const int count = std::clamp(
        static_cast<int>(std::ceil(f.required_load * pipes_ /
                                   std::max(config_.hi_threshold, 1e-9))),
        config_.min_active, pipes_);
    const double at =
        count > prev
            ? std::max(trace.times.front().value(), f.at.value() - wake)
            : f.at.value();
    commands_.push_back(Command{at, count});
    prev = count;
  }
  std::sort(commands_.begin(), commands_.end(),
            [](const Command& a, const Command& b) { return a.at < b.at; });
  return ParkingPolicy::make_timeline(trace);
}

double PredictiveParkingPolicy::next_breakpoint(double t) const {
  for (const auto& c : commands_) {
    if (c.at > t + 1e-15) return c.at;  // commands are sorted
  }
  return std::numeric_limits<double>::infinity();
}

int PredictiveParkingPolicy::desired_count(double t, double /*offered*/,
                                           int /*provisioned*/) {
  int want = pipes_;  // before the first command: all on
  for (const auto& c : commands_) {
    if (c.at <= t + 1e-15) {
      want = c.count;
    } else {
      break;
    }
  }
  return want;
}

ParkingResult simulate_parking_reactive(const AggregateLoadTrace& trace,
                                        const ParkingConfig& config) {
  validate_thresholds(config);
  trace.validate();
  ReactiveParkingPolicy policy{config};
  return to_parking_result(run_mechanism(trace.to_load_trace(), policy));
}

ParkingResult simulate_parking_reactive_resilient(
    const AggregateLoadTrace& trace,
    const std::vector<EmergencyRecall>& recalls,
    const ParkingConfig& config) {
  validate_thresholds(config);
  trace.validate();
  for (const auto& r : recalls) {
    if (!std::isfinite(r.at.value()) || !std::isfinite(r.until.value()) ||
        r.until <= r.at) {
      throw std::invalid_argument(
          "EmergencyRecall: window needs finite until > at");
    }
    if (!std::isfinite(r.extra_load) || r.extra_load < 0.0) {
      throw std::invalid_argument(
          "EmergencyRecall: extra_load must be finite and >= 0");
    }
  }
  if (recalls.empty()) return simulate_parking_reactive(trace, config);

  // Splice the recall windows into the trace: extra segment boundaries at
  // window edges, and the rerouted load added (clamped to 1) inside them.
  const double t0 = trace.times.front().value();
  const double t_end = trace.end.value();
  std::vector<double> cuts;
  cuts.reserve(trace.times.size() + recalls.size() * 2);
  for (const auto& tt : trace.times) cuts.push_back(tt.value());
  for (const auto& r : recalls) {
    for (double b : {r.at.value(), r.until.value()}) {
      if (b > t0 && b < t_end) cuts.push_back(b);
    }
  }
  std::sort(cuts.begin(), cuts.end());
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());

  const auto base_load = [&trace](double at) {
    std::size_t seg = 0;
    while (seg + 1 < trace.times.size() &&
           trace.times[seg + 1].value() <= at + 1e-15) {
      ++seg;
    }
    return trace.loads[seg];
  };

  AggregateLoadTrace spliced;
  spliced.end = trace.end;
  for (double c : cuts) {
    double load = base_load(c);
    for (const auto& r : recalls) {
      if (c >= r.at.value() - 1e-15 && c < r.until.value() - 1e-15) {
        load += r.extra_load;
      }
    }
    spliced.times.push_back(Seconds{c});
    spliced.loads.push_back(std::min(1.0, load));
  }

  ResilientParkingPolicy policy{config, recalls};
  ParkingResult result =
      to_parking_result(run_mechanism(spliced.to_load_trace(), policy));
  result.emergency_wakes = policy.emergency_wakes();
  return result;
}

ParkingResult simulate_parking_predictive(
    const AggregateLoadTrace& trace, const std::vector<LoadForecast>& forecast,
    const ParkingConfig& config) {
  for (std::size_t i = 1; i < forecast.size(); ++i) {
    if (forecast[i].at <= forecast[i - 1].at) {
      throw std::invalid_argument("forecast must be sorted by time");
    }
  }
  trace.validate();
  PredictiveParkingPolicy policy{config, forecast};
  return to_parking_result(run_mechanism(trace.to_load_trace(), policy));
}

}  // namespace netpp
