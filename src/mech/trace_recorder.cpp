#include "netpp/mech/trace_recorder.h"

#include <algorithm>
#include <stdexcept>

namespace netpp {

NodeLoadRecorder::NodeLoadRecorder(const FlowSimulator& sim,
                                   std::vector<NodeId> nodes)
    : sim_(sim), nodes_(std::move(nodes)) {
  if (nodes_.empty()) {
    throw std::invalid_argument("recorder needs at least one node");
  }
  const Graph& g = sim_.graph();
  for (NodeId node : nodes_) {
    NodeInfo info;
    for (const auto& adj : g.neighbors(node)) {
      for (int dir = 0; dir < 2; ++dir) {
        info.directed_indices.push_back(DirectedLink{adj.link, dir}.index());
        info.capacities_bps.push_back(
            g.link(adj.link).capacity.bits_per_second());
      }
    }
    info_[node] = std::move(info);
    samples_[node] = {};
  }
}

void NodeLoadRecorder::sample(Seconds now) {
  const bool overwrite = !times_.empty() && times_.back() == now;
  if (!overwrite && !times_.empty() && now < times_.back()) {
    throw std::invalid_argument("samples must be taken in time order");
  }
  if (!overwrite) times_.push_back(now);

  for (NodeId node : nodes_) {
    const auto& info = info_.at(node);
    std::vector<double> carried(info.directed_indices.size());
    for (std::size_t i = 0; i < info.directed_indices.size(); ++i) {
      const auto idx = info.directed_indices[i];
      const DirectedLink dl{static_cast<LinkId>(idx / 2),
                            static_cast<int>(idx % 2)};
      carried[i] = sim_.directed_link_rate(dl).bits_per_second();
    }
    auto& series = samples_.at(node);
    if (overwrite) {
      series.back() = std::move(carried);
    } else {
      series.push_back(std::move(carried));
    }
  }
}

FlowSimulator::LoadListener NodeLoadRecorder::listener() {
  return [this](Seconds now) { sample(now); };
}

AggregateLoadTrace NodeLoadRecorder::aggregate_trace(NodeId node,
                                                     Seconds end) const {
  const auto it = samples_.find(node);
  if (it == samples_.end()) {
    throw std::out_of_range("node is not tracked by this recorder");
  }
  if (times_.empty()) {
    throw std::logic_error("no samples recorded");
  }
  const auto& info = info_.at(node);
  double total_capacity = 0.0;
  for (double c : info.capacities_bps) total_capacity += c;

  AggregateLoadTrace trace;
  trace.end = end;
  for (std::size_t s = 0; s < times_.size(); ++s) {
    double carried = 0.0;
    for (double rate : it->second[s]) carried += rate;
    const double load =
        total_capacity > 0.0 ? std::min(1.0, carried / total_capacity) : 0.0;
    // Collapse repeated values to keep the trace compact.
    if (!trace.loads.empty() && trace.loads.back() == load) continue;
    trace.times.push_back(times_[s]);
    trace.loads.push_back(load);
  }
  return trace;
}

PipelineLoadTrace NodeLoadRecorder::pipeline_trace(NodeId node,
                                                   int num_pipelines,
                                                   Seconds end) const {
  if (num_pipelines < 1) {
    throw std::invalid_argument("need at least one pipeline");
  }
  const auto it = samples_.find(node);
  if (it == samples_.end()) {
    throw std::out_of_range("node is not tracked by this recorder");
  }
  if (times_.empty()) {
    throw std::logic_error("no samples recorded");
  }
  const auto& info = info_.at(node);

  // Round-robin assignment of directed links to pipelines.
  std::vector<double> pipe_capacity(num_pipelines, 0.0);
  for (std::size_t i = 0; i < info.capacities_bps.size(); ++i) {
    pipe_capacity[i % num_pipelines] += info.capacities_bps[i];
  }

  PipelineLoadTrace trace;
  trace.end = end;
  for (std::size_t s = 0; s < times_.size(); ++s) {
    std::vector<double> loads(num_pipelines, 0.0);
    for (std::size_t i = 0; i < it->second[s].size(); ++i) {
      loads[i % num_pipelines] += it->second[s][i];
    }
    for (int p = 0; p < num_pipelines; ++p) {
      loads[p] = pipe_capacity[p] > 0.0
                     ? std::min(1.0, loads[p] / pipe_capacity[p])
                     : 0.0;
    }
    if (!trace.pipeline_loads.empty() && trace.pipeline_loads.back() == loads) {
      continue;
    }
    trace.times.push_back(times_[s]);
    trace.pipeline_loads.push_back(std::move(loads));
  }
  return trace;
}

}  // namespace netpp
