#include "netpp/mech/trace_recorder.h"

#include <algorithm>
#include <stdexcept>

namespace netpp {

NodeLoadRecorder::NodeLoadRecorder(const FlowSimulator& sim,
                                   std::vector<NodeId> nodes)
    : sim_(sim), nodes_(std::move(nodes)) {
  if (nodes_.empty()) {
    throw std::invalid_argument("recorder needs at least one node");
  }
  const Graph& g = sim_.graph();
  for (NodeId node : nodes_) {
    NodeInfo info;
    for (const auto& adj : g.neighbors(node)) {
      for (int dir = 0; dir < 2; ++dir) {
        info.directed_indices.push_back(DirectedLink{adj.link, dir}.index());
        info.capacities_bps.push_back(
            g.link(adj.link).capacity.bits_per_second());
      }
    }
    info_[node] = std::move(info);
    samples_[node] = {};
  }
}

void NodeLoadRecorder::sample(Seconds now) {
  const bool overwrite = !times_.empty() && times_.back() == now;
  if (!overwrite && !times_.empty() && now < times_.back()) {
    throw std::invalid_argument("samples must be taken in time order");
  }
  if (!overwrite) times_.push_back(now);

  for (NodeId node : nodes_) {
    const auto& info = info_.at(node);
    std::vector<double> carried(info.directed_indices.size());
    for (std::size_t i = 0; i < info.directed_indices.size(); ++i) {
      const auto idx = info.directed_indices[i];
      const DirectedLink dl{static_cast<LinkId>(idx / 2),
                            static_cast<int>(idx % 2)};
      carried[i] = sim_.directed_link_rate(dl).bits_per_second();
    }
    auto& series = samples_.at(node);
    if (overwrite) {
      series.back() = std::move(carried);
    } else {
      series.push_back(std::move(carried));
    }
  }
}

FlowSimulator::LoadListener NodeLoadRecorder::listener() {
  return [this](Seconds now) { sample(now); };
}

LoadTrace NodeLoadRecorder::load_trace(NodeId node, int num_channels,
                                       Seconds end) const {
  if (num_channels < 1) {
    throw std::invalid_argument("NodeLoadRecorder: need at least one channel");
  }
  const auto it = samples_.find(node);
  if (it == samples_.end()) {
    throw std::out_of_range("node is not tracked by this recorder");
  }
  if (times_.empty()) {
    throw std::logic_error("no samples recorded");
  }
  if (end < times_.back()) {
    throw std::invalid_argument(
        "NodeLoadRecorder: end must not precede the last sample");
  }
  // A recording that ends exactly on the last sample's boundary drops that
  // sample instead of emitting a zero-width final segment (which the trace
  // validation rejects as a non-increasing segment start).
  std::size_t usable = times_.size();
  if (end == times_.back()) {
    --usable;
    if (usable == 0) {
      throw std::invalid_argument(
          "NodeLoadRecorder: end must be after the first sample");
    }
  }
  const auto& info = info_.at(node);

  // Round-robin assignment of directed links to channels (1 channel ==
  // every link, i.e. the whole-node aggregate).
  const auto channels = static_cast<std::size_t>(num_channels);
  std::vector<double> channel_capacity(channels, 0.0);
  for (std::size_t i = 0; i < info.capacities_bps.size(); ++i) {
    channel_capacity[i % channels] += info.capacities_bps[i];
  }

  LoadTrace trace;
  trace.end = end;
  for (std::size_t s = 0; s < usable; ++s) {
    std::vector<double> loads(channels, 0.0);
    for (std::size_t i = 0; i < it->second[s].size(); ++i) {
      loads[i % channels] += it->second[s][i];
    }
    for (std::size_t c = 0; c < channels; ++c) {
      loads[c] = channel_capacity[c] > 0.0
                     ? std::min(1.0, loads[c] / channel_capacity[c])
                     : 0.0;
    }
    // Collapse repeated values to keep the trace compact.
    if (!trace.loads.empty() && trace.loads.back() == loads) continue;
    trace.times.push_back(times_[s]);
    trace.loads.push_back(std::move(loads));
  }
  return trace;
}

AggregateLoadTrace NodeLoadRecorder::aggregate_trace(NodeId node,
                                                     Seconds end) const {
  return AggregateLoadTrace::from_load_trace(load_trace(node, 1, end));
}

PipelineLoadTrace NodeLoadRecorder::pipeline_trace(NodeId node,
                                                   int num_pipelines,
                                                   Seconds end) const {
  return PipelineLoadTrace::from_load_trace(
      load_trace(node, num_pipelines, end));
}

}  // namespace netpp
