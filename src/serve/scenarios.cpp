#include "netpp/serve/scenarios.h"

#include "netpp/analysis/savings.h"
#include "netpp/traffic/generators.h"

namespace netpp::serve {

using namespace netpp::literals;

CannedFaultScenario make_canned_fault_scenario(const ScenarioOptions& opt,
                                               telemetry::Telemetry* tel) {
  // The sharded backend needs a pod-partitionable fabric (tier-3 core), so
  // it swaps the canned leaf-spine for the k=4 fat tree `mech` runs on.
  CannedFaultScenario s{opt.backend.kind == BackendKind::kSharded
                            ? build_fat_tree(4, 100_Gbps)
                            : build_leaf_spine(4, 4, 4, 100_Gbps, 100_Gbps),
                        {}, {}, {}, Seconds{5.0}};
  s.config.backend = opt.backend;
  MlTrafficConfig traffic;
  traffic.compute_time = Seconds{0.3};
  traffic.comm_allowance = Seconds{0.5};
  traffic.volume_per_host = Bits::from_gigabits(12.0);
  traffic.iterations = 6;
  s.workload = make_ml_training_traffic(s.topo.hosts, traffic).flows;

  s.config.tailor = true;
  s.config.degraded.policy = opt.policy;
  s.config.degraded.min_headroom = opt.headroom;
  s.config.telemetry = tel;
  for (std::size_t i = 0; i < s.topo.hosts.size(); ++i) {
    s.config.demands.push_back(TrafficDemand{
        s.topo.hosts[i], s.topo.hosts[(i + 1) % s.topo.hosts.size()],
        30_Gbps});
  }

  if (opt.mtbf_s > 0.0) {
    FaultGeneratorConfig faults;
    faults.switches =
        DeviceReliability{Seconds{opt.mtbf_s}, Seconds{opt.mttr_s}};
    faults.links =
        DeviceReliability{Seconds{opt.mtbf_s * 2.0}, Seconds{opt.mttr_s}};
    faults.degraded_fraction = 0.25;
    faults.horizon = s.fault_horizon;
    faults.seed = opt.fault_seed;
    s.schedule = FaultGenerator{faults}.generate(s.topo.graph);
  }
  return s;
}

CannedMechScenario make_canned_mech_scenario(const ScenarioOptions& opt) {
  // Canned scenario: k=4 fat tree at 100 G running phase-structured ML
  // training, with a ring all-reduce demand matrix that tailoring must keep
  // satisfiable. The composed stack (tailoring -> parking -> rate
  // adaptation) is priced against the all-on baseline and against each
  // mechanism alone.
  CannedMechScenario s{build_fat_tree(4, 100_Gbps),
                       {},
                       {},
                       {},
                       Seconds{opt.mech_horizon_s}};
  MlTrafficConfig traffic;
  traffic.compute_time = Seconds{0.9};
  traffic.comm_allowance = Seconds{0.1};
  traffic.iterations = opt.mech_iterations;
  traffic.volume_per_host = Bits::from_gigabits(opt.mech_volume_gbit);
  s.workload = make_ml_training_traffic(s.topo.hosts, traffic).flows;

  s.config.tailor = opt.stack == "all" || opt.stack == "tailor";
  s.config.park =
      opt.stack == "all" || opt.stack == "dynamic" || opt.stack == "park";
  s.config.rate_adapt =
      opt.stack == "all" || opt.stack == "dynamic" || opt.stack == "rate";
  s.config.parking.switch_capacity = Gbps{4 * 100.0};  // 4 ports at 100 G
  s.config.num_ocs_devices = opt.mech_ocs_devices;
  s.config.backend = opt.backend;
  s.config.domains.pod_budget = Watts{opt.pod_budget_w};
  s.config.domains.core_budget = Watts{opt.core_budget_w};

  for (std::size_t i = 0; i < s.topo.hosts.size(); ++i) {
    s.demands.push_back(TrafficDemand{
        s.topo.hosts[i], s.topo.hosts[(i + 1) % s.topo.hosts.size()],
        5_Gbps});
  }
  return s;
}

Table cluster_summary_table(const ClusterConfig& config) {
  const ClusterModel cluster{config};
  Table table{{"metric", "value"}};
  table.add_row({"GPUs", fmt(config.num_gpus, 0)});
  table.add_row({"bandwidth/GPU", to_string(config.bandwidth_per_gpu)});
  table.add_row({"switches", fmt(cluster.network().tree.switches, 1)});
  table.add_row({"transceivers", fmt(cluster.network().transceivers, 0)});
  table.add_row(
      {"compute max (MW)",
       fmt(cluster.compute_envelope().max_power().megawatts(), 3)});
  table.add_row(
      {"network max (MW)",
       fmt(cluster.network_envelope().max_power().megawatts(), 3)});
  table.add_row(
      {"average power (MW)", fmt(cluster.average_total_power().megawatts(), 3)});
  table.add_row({"peak power (MW)",
                 fmt(cluster.peak_total_power().megawatts(), 3)});
  table.add_row(
      {"network share", fmt_percent(cluster.network_share_of_average())});
  table.add_row({"network efficiency",
                 fmt_percent(cluster.network_energy_efficiency())});
  return table;
}

Table savings_cell_table(const ClusterConfig& config, double prop) {
  const auto cell = savings_at(config, config.bandwidth_per_gpu, prop,
                               config.network_proportionality);
  const CostModel cost;
  Table table{{"metric", "value"}};
  table.add_row({"proportionality", fmt(prop, 2)});
  table.add_row({"savings", fmt_percent(cell.savings_fraction)});
  table.add_row(
      {"absolute (kW)", fmt(cell.absolute_savings.kilowatts(), 1)});
  table.add_row(
      {"electricity ($/yr)",
       fmt(cost.annual_electricity_savings(cell.absolute_savings).value(),
           0)});
  table.add_row(
      {"with cooling ($/yr)",
       fmt(cost.annual_total_savings(cell.absolute_savings).value(), 0)});
  return table;
}

Table faults_summary_table(const FaultExperimentResult& result) {
  Table table{{"metric", "value"}};
  table.add_row({"switches parked initially",
                 std::to_string(result.tailoring.powered_off.size())});
  table.add_row({"faults injected",
                 std::to_string(result.report.faults_injected)});
  table.add_row(
      {"flows rerouted", std::to_string(result.report.flows_rerouted)});
  table.add_row(
      {"strand events", std::to_string(result.report.strand_events)});
  table.add_row({"availability", fmt_percent(result.report.availability, 2)});
  table.add_row({"stranded demand (Gbit*s)",
                 fmt(result.report.stranded_demand_gbit_seconds, 3)});
  table.add_row(
      {"mean recovery", to_string(result.report.mean_recovery)});
  table.add_row({"p99 recovery", to_string(result.report.p99_recovery)});
  table.add_row(
      {"completion rate", fmt_percent(result.report.completion_rate, 2)});
  table.add_row({"emergency wakes", std::to_string(result.emergency_wakes)});
  table.add_row({"re-tailor passes", std::to_string(result.retailor_passes)});
  table.add_row(
      {"energy vs all-on", fmt_percent(result.report.energy_delta, 1)});
  const RouteCacheStats& rc = result.realloc.route_cache;
  table.add_row({"route-cache hits", std::to_string(rc.hits)});
  table.add_row({"route-cache misses", std::to_string(rc.misses)});
  table.add_row(
      {"route-cache epoch flushes", std::to_string(rc.epoch_flushes)});
  table.add_row({"route-cache entries", std::to_string(rc.entries)});
  table.add_row({"route-cache resident KiB",
                 fmt(static_cast<double>(rc.pool_bytes) / 1024.0, 1)});
  return table;
}

Table mech_summary_table(const std::string& stack,
                         const CompositeReport& report) {
  const MechanismValue value = mechanism_value(
      report.baseline_energy, report.energy, report.horizon);
  Table table{{"metric", "value"}};
  table.add_row({"stack", stack});
  table.add_row({"switches", std::to_string(report.switches_total)});
  table.add_row({"switches tailored off",
                 std::to_string(report.tailoring.powered_off.size())});
  table.add_row({"horizon (s)", fmt(report.horizon.value(), 3)});
  table.add_row(
      {"baseline power (W)", fmt(report.baseline_average_power.value(), 1)});
  table.add_row({"stack power (W)", fmt(report.average_power.value(), 1)});
  table.add_row({"baseline energy (kJ)",
                 fmt(report.baseline_energy.value() / 1e3, 3)});
  table.add_row({"stack energy (kJ)", fmt(report.energy.value() / 1e3, 3)});
  for (const auto& single : report.singles) {
    table.add_row({single.name + " savings", fmt_percent(single.savings, 2)});
  }
  table.add_row(
      {"best single savings", fmt_percent(report.best_single_savings, 2)});
  table.add_row({"combined savings", fmt_percent(report.combined_savings, 2)});
  table.add_row({"wake transitions", std::to_string(report.wake_transitions)});
  table.add_row({"park transitions", std::to_string(report.park_transitions)});
  table.add_row(
      {"level transitions", std::to_string(report.level_transitions)});
  table.add_row({"dropped (Mbit)", fmt(report.dropped.value() / 1e6, 3)});
  for (const auto& d : report.domains) {
    table.add_row({"domain " + d.name + " savings",
                   fmt_percent(d.savings, 2) + " (" +
                       fmt(d.average_power.value(), 1) + " W)"});
    if (d.budget.value() > 0.0) {
      table.add_row({"domain " + d.name + " within budget",
                     d.within_budget ? "yes" : "no"});
    }
  }
  table.add_row(
      {"sustained value ($/yr)", fmt(value.annual_savings.value(), 0)});
  table.add_row({"avoided CO2 (t/yr)", fmt(value.annual_co2_tons, 3)});
  return table;
}

}  // namespace netpp::serve
