#include "netpp/serve/protocol.h"

#include <cerrno>
#include <cstring>

#include <unistd.h>

namespace netpp::serve {

const char* to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::kBadFrame: return "bad_frame";
    case ErrorCode::kBadJson: return "bad_json";
    case ErrorCode::kBadRequest: return "bad_request";
    case ErrorCode::kUnknownCommand: return "unknown_command";
    case ErrorCode::kUnknownField: return "unknown_field";
    case ErrorCode::kBadValue: return "bad_value";
    case ErrorCode::kOutOfRange: return "out_of_range";
    case ErrorCode::kBackendMismatch: return "backend_mismatch";
    case ErrorCode::kCorruptBaseline: return "corrupt_baseline";
    case ErrorCode::kInternal: return "internal";
  }
  return "internal";
}

JsonValue make_ok_response(const JsonValue& id, JsonValue result) {
  JsonValue response = JsonValue::make_object();
  response.set("ok", JsonValue::make_bool(true));
  response.set("id", id);
  response.set("result", std::move(result));
  return response;
}

JsonValue make_error_response(const JsonValue& id, ErrorCode code,
                              std::string_view field,
                              std::string_view message) {
  JsonValue error = JsonValue::make_object();
  error.set("code", JsonValue::make_string(to_string(code)));
  if (!field.empty()) {
    error.set("field", JsonValue::make_string(std::string{field}));
  }
  error.set("message", JsonValue::make_string(std::string{message}));
  JsonValue response = JsonValue::make_object();
  response.set("ok", JsonValue::make_bool(false));
  response.set("id", id);
  response.set("error", std::move(error));
  return response;
}

std::string encode_frame(std::string_view payload) {
  const auto n = static_cast<std::uint32_t>(payload.size());
  std::string frame;
  frame.reserve(4 + payload.size());
  for (int i = 0; i < 4; ++i) {
    frame.push_back(static_cast<char>((n >> (8 * i)) & 0xff));
  }
  frame.append(payload);
  return frame;
}

namespace {

/// Reads exactly `n` bytes. Returns the count read (short only at EOF).
std::size_t read_fully(int fd, char* buf, std::size_t n) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, buf + got, n - got);
    if (r < 0) {
      if (errno == EINTR) continue;
      throw ServeError{ErrorCode::kBadFrame, "",
                       std::string{"read failed: "} + std::strerror(errno)};
    }
    if (r == 0) break;
    got += static_cast<std::size_t>(r);
  }
  return got;
}

}  // namespace

bool read_frame(int fd, std::string& payload) {
  char header[4];
  const std::size_t header_got = read_fully(fd, header, sizeof header);
  if (header_got == 0) return false;  // clean EOF between frames
  if (header_got < sizeof header) {
    throw ServeError{ErrorCode::kBadFrame, "",
                     "connection closed inside a frame header"};
  }
  std::uint32_t n = 0;
  for (int i = 0; i < 4; ++i) {
    n |= static_cast<std::uint32_t>(static_cast<unsigned char>(header[i]))
         << (8 * i);
  }
  if (n > kMaxFrameBytes) {
    throw ServeError{ErrorCode::kBadFrame, "",
                     "frame length " + std::to_string(n) +
                         " exceeds the " + std::to_string(kMaxFrameBytes) +
                         "-byte limit"};
  }
  payload.resize(n);
  if (n > 0 && read_fully(fd, payload.data(), n) < n) {
    throw ServeError{ErrorCode::kBadFrame, "",
                     "connection closed inside a frame payload"};
  }
  return true;
}

void write_frame(int fd, std::string_view payload) {
  const std::string frame = encode_frame(payload);
  std::size_t sent = 0;
  while (sent < frame.size()) {
    const ssize_t w = ::write(fd, frame.data() + sent, frame.size() - sent);
    if (w < 0) {
      if (errno == EINTR) continue;
      throw ServeError{ErrorCode::kInternal, "",
                       std::string{"write failed: "} + std::strerror(errno)};
    }
    sent += static_cast<std::size_t>(w);
  }
}

}  // namespace netpp::serve
