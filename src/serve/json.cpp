#include "netpp/serve/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "netpp/validation.h"

namespace netpp::serve {

const char* to_string(JsonKind kind) {
  switch (kind) {
    case JsonKind::kNull: return "null";
    case JsonKind::kBool: return "boolean";
    case JsonKind::kNumber: return "number";
    case JsonKind::kString: return "string";
    case JsonKind::kArray: return "array";
    case JsonKind::kObject: return "object";
  }
  return "unknown";
}

JsonValue JsonValue::make_bool(bool v) {
  JsonValue j;
  j.kind_ = JsonKind::kBool;
  j.bool_ = v;
  return j;
}

JsonValue JsonValue::make_number(double v) {
  JsonValue j;
  j.kind_ = JsonKind::kNumber;
  j.number_ = v;
  return j;
}

JsonValue JsonValue::make_string(std::string v) {
  JsonValue j;
  j.kind_ = JsonKind::kString;
  j.string_ = std::move(v);
  return j;
}

JsonValue JsonValue::make_array() {
  JsonValue j;
  j.kind_ = JsonKind::kArray;
  return j;
}

JsonValue JsonValue::make_object() {
  JsonValue j;
  j.kind_ = JsonKind::kObject;
  return j;
}

bool JsonValue::as_bool() const {
  if (kind_ != JsonKind::kBool) {
    throw std::logic_error("JsonValue: not a boolean");
  }
  return bool_;
}

double JsonValue::as_number() const {
  if (kind_ != JsonKind::kNumber) {
    throw std::logic_error("JsonValue: not a number");
  }
  return number_;
}

const std::string& JsonValue::as_string() const {
  if (kind_ != JsonKind::kString) {
    throw std::logic_error("JsonValue: not a string");
  }
  return string_;
}

const std::vector<JsonValue>& JsonValue::as_array() const {
  if (kind_ != JsonKind::kArray) {
    throw std::logic_error("JsonValue: not an array");
  }
  return array_;
}

const std::vector<JsonValue::Member>& JsonValue::as_object() const {
  if (kind_ != JsonKind::kObject) {
    throw std::logic_error("JsonValue: not an object");
  }
  return object_;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind_ != JsonKind::kObject) return nullptr;
  for (const Member& m : object_) {
    if (m.first == key) return &m.second;
  }
  return nullptr;
}

void JsonValue::push_back(JsonValue v) {
  if (kind_ != JsonKind::kArray) {
    throw std::logic_error("JsonValue: push_back on a non-array");
  }
  array_.push_back(std::move(v));
}

void JsonValue::set(std::string key, JsonValue v) {
  if (kind_ != JsonKind::kObject) {
    throw std::logic_error("JsonValue: set on a non-object");
  }
  object_.emplace_back(std::move(key), std::move(v));
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

namespace {

void append_number(std::string& out, double v) {
  if (!std::isfinite(v)) {
    // JSON has no Infinity/NaN; the protocol never emits them, but a
    // defensive null beats invalid output.
    out += "null";
    return;
  }
  char buf[40];
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      std::fabs(v) < 9.007199254740992e15) {
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
    out += buf;
    return;
  }
  // Shortest round-trip: try increasing precision until re-parse matches.
  for (int precision = 15; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof buf, "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  out += buf;
}

void dump_value(const JsonValue& v, std::string& out) {
  switch (v.kind()) {
    case JsonKind::kNull:
      out += "null";
      return;
    case JsonKind::kBool:
      out += v.as_bool() ? "true" : "false";
      return;
    case JsonKind::kNumber:
      append_number(out, v.as_number());
      return;
    case JsonKind::kString:
      out += json_escape(v.as_string());
      return;
    case JsonKind::kArray: {
      out.push_back('[');
      bool first = true;
      for (const JsonValue& item : v.as_array()) {
        if (!first) out.push_back(',');
        first = false;
        dump_value(item, out);
      }
      out.push_back(']');
      return;
    }
    case JsonKind::kObject: {
      out.push_back('{');
      bool first = true;
      for (const auto& [key, value] : v.as_object()) {
        if (!first) out.push_back(',');
        first = false;
        out += json_escape(key);
        out.push_back(':');
        dump_value(value, out);
      }
      out.push_back('}');
      return;
    }
  }
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    skip_ws();
    JsonValue v = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after the value");
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  [[noreturn]] void fail(const std::string& constraint) const {
    validation::fail("Json",
                     constraint + " at byte " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  [[nodiscard]] char peek() const {
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  void expect(char c) {
    if (pos_ >= text_.size() || text_[pos_] != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value(int depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    switch (peek()) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': return JsonValue::make_string(parse_string());
      case 't':
        if (consume_literal("true")) return JsonValue::make_bool(true);
        fail("bad literal");
      case 'f':
        if (consume_literal("false")) return JsonValue::make_bool(false);
        fail("bad literal");
      case 'n':
        if (consume_literal("null")) return JsonValue{};
        fail("bad literal");
      default: return parse_number();
    }
  }

  JsonValue parse_object(int depth) {
    expect('{');
    JsonValue obj = JsonValue::make_object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      skip_ws();
      if (peek() != '"') fail("expected an object key string");
      std::string key = parse_string();
      if (obj.find(key) != nullptr) fail("duplicate object key '" + key + "'");
      skip_ws();
      expect(':');
      skip_ws();
      obj.set(std::move(key), parse_value(depth + 1));
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return obj;
    }
  }

  JsonValue parse_array(int depth) {
    expect('[');
    JsonValue arr = JsonValue::make_array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      skip_ws();
      arr.push_back(parse_value(depth + 1));
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return arr;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad \\u escape digit");
            }
          }
          // UTF-8 encode the BMP code point (surrogate pairs unsupported:
          // the protocol is ASCII in practice; reject rather than mangle).
          if (code >= 0xd800 && code <= 0xdfff) {
            fail("surrogate \\u escapes are not supported");
          }
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xc0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
          } else {
            out.push_back(static_cast<char>(0xe0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
          }
          break;
        }
        default: fail("bad escape character");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (peek() < '0' || peek() > '9') fail("expected a value");
    while (peek() >= '0' && peek() <= '9') ++pos_;
    if (peek() == '.') {
      ++pos_;
      if (peek() < '0' || peek() > '9') fail("bad number: lone decimal point");
      while (peek() >= '0' && peek() <= '9') ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (peek() < '0' || peek() > '9') fail("bad number: empty exponent");
      while (peek() >= '0' && peek() <= '9') ++pos_;
    }
    const std::string lexeme{text_.substr(start, pos_ - start)};
    char* end = nullptr;
    const double v = std::strtod(lexeme.c_str(), &end);
    if (end != lexeme.c_str() + lexeme.size()) fail("bad number");
    return JsonValue::make_number(v);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string JsonValue::dump() const {
  std::string out;
  dump_value(*this, out);
  return out;
}

JsonValue parse_json(std::string_view text) {
  return Parser{text}.parse_document();
}

}  // namespace netpp::serve
