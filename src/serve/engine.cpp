#include "netpp/serve/engine.h"

#include <cstdio>
#include <map>
#include <mutex>
#include <stdexcept>
#include <utility>
#include <vector>

#include "netpp/analysis/report.h"
#include "netpp/faults/experiment.h"
#include "netpp/mech/composite.h"
#include "netpp/serve/protocol.h"
#include "netpp/serve/scenarios.h"
#include "netpp/sim/sweep.h"
#include "netpp/state/image.h"
#include "netpp/telemetry/export.h"
#include "netpp/telemetry/telemetry.h"

namespace netpp::serve {

namespace {

/// Telemetry bundle mirroring the CLI's make_cli_telemetry wiring exactly:
/// faults runs sample (period from the query), mech runs don't. Matching
/// the wiring is part of byte-identity — the metrics JSON must list the
/// same series as the one-shot run's --metrics-out file.
std::unique_ptr<telemetry::Telemetry> make_query_telemetry(bool sampled,
                                                           double period_s) {
  telemetry::TelemetryConfig config;
  config.events = true;
  config.sample_period = Seconds{sampled ? period_s : 0.0};
  return std::make_unique<telemetry::Telemetry>(config);
}

std::string render_table(const Table& table, QueryOutput output) {
  return output == QueryOutput::kCsv ? table.to_csv() : table.to_ascii();
}

/// Key of the warm fault baseline a query forks. The image bakes in
/// everything the fresh constructor consumed: the fabric and schedule
/// (backend, mtbf/mttr/seed), the initial tailoring and degraded-mode
/// config (policy, headroom), and the telemetry attachment the snapshot
/// echo-validates on restore (attached? sampler period?).
std::string fault_baseline_key(const ScenarioOptions& o, bool telemetered) {
  char buf[192];
  std::snprintf(buf, sizeof buf,
                "backend=%d|shards=%zu|mtbf=%.17g|mttr=%.17g|seed=%llu"
                "|policy=%d|head=%.17g|tel=%d|sp=%.17g",
                static_cast<int>(o.backend.kind), o.backend.num_shards,
                o.mtbf_s, o.mttr_s,
                static_cast<unsigned long long>(o.fault_seed),
                static_cast<int>(o.policy), o.headroom,
                telemetered ? 1 : 0, telemetered ? o.sample_period_s : 0.0);
  return std::string{buf};
}

/// Key of the shared CompositeCache a mech query runs against: the axes
/// that change the scenario fingerprint (fabric via the backend, workload
/// via iters/volume). Stack composition, OCS count, horizon, and budgets
/// are the what-if axes the cache absorbs.
std::string mech_cache_key(const ScenarioOptions& o) {
  char buf[96];
  std::snprintf(buf, sizeof buf, "backend=%d|shards=%zu|iters=%d|vol=%.17g",
                static_cast<int>(o.backend.kind), o.backend.num_shards,
                o.mech_iterations, o.mech_volume_gbit);
  return std::string{buf};
}

/// The query's "id" member when it is present and scalar, for echoing in
/// error envelopes produced before parse_query could run to completion.
JsonValue echo_id(const JsonValue& request) {
  const JsonValue* id = request.find("id");
  if (id == nullptr || id->kind() == JsonKind::kArray ||
      id->kind() == JsonKind::kObject) {
    return JsonValue{};
  }
  return *id;
}

}  // namespace

struct QueryEngine::Impl {
  EngineConfig config;

  std::mutex mutex;
  /// Rendered payloads keyed by cache_key(query) — identical queries are
  /// answered without touching the simulator.
  std::map<std::string, std::string> results;
  /// Warm fault baselines keyed by fault_baseline_key. unique_ptr keeps
  /// image addresses stable while new baselines are inserted; fork() on a
  /// const image is safe concurrently.
  std::map<std::string, std::unique_ptr<state::StateImage>> fault_baselines;
  /// One CompositeCache per mech scenario (mech_cache_key). Each cache
  /// serializes its callers internally.
  std::map<std::string, std::unique_ptr<CompositeCache>> mech_caches;
  EngineStats stats;

  /// Looks up or builds the warm baseline for the query's faults tuple.
  const state::StateImage& obtain_fault_baseline(const ScenarioOptions& opt,
                                                 bool telemetered) {
    const std::string key = fault_baseline_key(opt, telemetered);
    const std::lock_guard<std::mutex> lock{mutex};
    const auto it = fault_baselines.find(key);
    if (it != fault_baselines.end()) return *it->second;
    // Build the baseline the way the CLI starts a one-shot run: fresh
    // construction tailors the fabric and arms the injector; the image
    // captures that instant (t = 0) so forks skip straight past setup.
    const auto tel =
        telemetered ? make_query_telemetry(true, opt.sample_period_s)
                    : nullptr;
    const CannedFaultScenario s = make_canned_fault_scenario(opt, tel.get());
    const FaultExperimentRun run{s.topo, s.workload, s.schedule, s.config};
    auto image = std::make_unique<state::StateImage>(state::StateImage::capture(
        [&](state::SnapshotWriter& w) { run.save_state(w); }));
    ++stats.baselines_built;
    return *fault_baselines.emplace(key, std::move(image)).first->second;
  }

  CompositeCache& obtain_mech_cache(const ScenarioOptions& opt) {
    const std::lock_guard<std::mutex> lock{mutex};
    auto& slot = mech_caches[mech_cache_key(opt)];
    if (slot == nullptr) slot = std::make_unique<CompositeCache>();
    return *slot;
  }

  std::string compute_faults(const Query& query) {
    const bool metrics = query.output == QueryOutput::kMetrics;
    const auto tel =
        metrics ? make_query_telemetry(true, query.opt.sample_period_s)
                : nullptr;
    const state::StateImage& baseline =
        obtain_fault_baseline(query.opt, metrics);
    const CannedFaultScenario s =
        make_canned_fault_scenario(query.opt, tel.get());
    FaultExperimentResult result;
    try {
      auto reader = baseline.fork();
      FaultExperimentRun run{s.topo, s.workload, s.schedule, s.config,
                             reader};
      if (!reader.at_end()) {
        throw std::invalid_argument(
            "SnapshotReader: trailing bytes after the experiment snapshot");
      }
      run.run();
      result = run.finish();
    } catch (const std::invalid_argument& e) {
      // A damaged (or mismatched) baseline image fails snapshot validation
      // inside the restoring constructor; reject the query, keep serving.
      throw ServeError{ErrorCode::kCorruptBaseline, "", e.what()};
    }
    {
      const std::lock_guard<std::mutex> lock{mutex};
      ++stats.baseline_forks;
    }
    if (metrics) return telemetry::to_metrics_json(tel->metrics());
    return render_table(faults_summary_table(result), query.output);
  }

  std::string compute_mech(const Query& query) {
    const bool metrics = query.output == QueryOutput::kMetrics;
    const auto tel = metrics ? make_query_telemetry(false, 0.0) : nullptr;
    CannedMechScenario s = make_canned_mech_scenario(query.opt);
    s.config.telemetry = tel.get();
    s.config.cache = &obtain_mech_cache(query.opt);
    const CompositeReport report =
        run_composite(s.topo, s.workload, s.demands, s.horizon, s.config);
    if (metrics) return telemetry::to_metrics_json(tel->metrics());
    return render_table(mech_summary_table(query.opt.stack, report),
                        query.output);
  }

  std::string compute(const Query& query) {
    switch (query.kind) {
      case QueryKind::kCluster:
        return render_table(cluster_summary_table(query.opt.cluster),
                            query.output);
      case QueryKind::kSavings:
        return render_table(savings_cell_table(query.opt.cluster,
                                               query.opt.prop),
                            query.output);
      case QueryKind::kFaults:
        return compute_faults(query);
      case QueryKind::kMech:
        return compute_mech(query);
    }
    throw ServeError{ErrorCode::kInternal, "", "unreachable query kind"};
  }

  std::string payload_for(const Query& query) {
    const std::string key = cache_key(query);
    if (config.result_cache) {
      const std::lock_guard<std::mutex> lock{mutex};
      const auto it = results.find(key);
      if (it != results.end()) {
        ++stats.result_reuses;
        return it->second;
      }
    }
    std::string payload = compute(query);
    if (config.result_cache) {
      const std::lock_guard<std::mutex> lock{mutex};
      results.emplace(key, payload);
    }
    return payload;
  }
};

QueryEngine::QueryEngine(EngineConfig config)
    : impl_(std::make_unique<Impl>()) {
  impl_->config = config;
}

QueryEngine::~QueryEngine() = default;

JsonValue QueryEngine::answer(const Query& query) {
  {
    const std::lock_guard<std::mutex> lock{impl_->mutex};
    ++impl_->stats.queries;
  }
  try {
    std::string payload = impl_->payload_for(query);
    JsonValue result = JsonValue::make_object();
    result.set("command", JsonValue::make_string(to_string(query.kind)));
    result.set("output", JsonValue::make_string(to_string(query.output)));
    result.set("payload", JsonValue::make_string(std::move(payload)));
    return make_ok_response(query.id, std::move(result));
  } catch (const ServeError& e) {
    return make_error_response(query.id, e.code(), e.field(), e.what());
  } catch (const std::exception& e) {
    return make_error_response(query.id, ErrorCode::kInternal, "", e.what());
  }
}

JsonValue QueryEngine::handle(const JsonValue& request) {
  const auto handle_one = [this](const JsonValue& item) -> JsonValue {
    try {
      return answer(parse_query(item));
    } catch (const ServeError& e) {
      return make_error_response(echo_id(item), e.code(), e.field(),
                                 e.what());
    }
  };
  if (request.kind() != JsonKind::kArray) return handle_one(request);

  const std::vector<JsonValue>& items = request.as_array();
  std::vector<JsonValue> responses(items.size());
  SweepConfig sweep;
  sweep.num_threads = impl_->config.num_threads;
  SweepRunner runner{sweep};
  runner.run_indexed(items.size(), [&](std::size_t index) {
    responses[index] = handle_one(items[index]);
  });
  JsonValue batch = JsonValue::make_array();
  for (JsonValue& response : responses) batch.push_back(std::move(response));
  return batch;
}

std::string QueryEngine::handle_text(const std::string& text) {
  JsonValue request;
  try {
    request = parse_json(text);
  } catch (const std::invalid_argument& e) {
    return make_error_response(JsonValue{}, ErrorCode::kBadJson, "", e.what())
        .dump();
  }
  return handle(request).dump();
}

void QueryEngine::warm_default_baseline() {
  impl_->obtain_fault_baseline(ScenarioOptions{}, /*telemetered=*/false);
}

void QueryEngine::save_baseline(const std::string& path) {
  warm_default_baseline();
  const std::lock_guard<std::mutex> lock{impl_->mutex};
  impl_->fault_baselines
      .at(fault_baseline_key(ScenarioOptions{}, /*telemetered=*/false))
      ->write_file(path);
}

void QueryEngine::load_baseline(const std::string& path) {
  auto image =
      std::make_unique<state::StateImage>(state::StateImage::from_file(path));
  const std::lock_guard<std::mutex> lock{impl_->mutex};
  impl_->fault_baselines.insert_or_assign(
      fault_baseline_key(ScenarioOptions{}, /*telemetered=*/false),
      std::move(image));
}

EngineStats QueryEngine::stats() const {
  EngineStats out;
  {
    const std::lock_guard<std::mutex> lock{impl_->mutex};
    out = impl_->stats;
    for (const auto& [key, cache] : impl_->mech_caches) {
      (void)key;
      out.sim_reuses += cache->sim_reuses();
      out.stage_reuses += cache->stage_reuses();
    }
  }
  return out;
}

}  // namespace netpp::serve
