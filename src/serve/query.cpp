#include "netpp/serve/query.h"

#include <cmath>
#include <cstdio>

namespace netpp::serve {

const char* to_string(QueryKind kind) {
  switch (kind) {
    case QueryKind::kCluster: return "cluster";
    case QueryKind::kSavings: return "savings";
    case QueryKind::kFaults: return "faults";
    case QueryKind::kMech: return "mech";
  }
  return "cluster";
}

const char* to_string(QueryOutput output) {
  switch (output) {
    case QueryOutput::kCsv: return "csv";
    case QueryOutput::kTable: return "table";
    case QueryOutput::kMetrics: return "metrics";
  }
  return "csv";
}

namespace {

double require_number(const JsonValue& value, const std::string& field) {
  if (value.kind() != JsonKind::kNumber) {
    throw ServeError{ErrorCode::kBadValue, field,
                     "\"" + field + "\" must be a number, got " +
                         to_string(value.kind())};
  }
  return value.as_number();
}

const std::string& require_string(const JsonValue& value,
                                  const std::string& field) {
  if (value.kind() != JsonKind::kString) {
    throw ServeError{ErrorCode::kBadValue, field,
                     "\"" + field + "\" must be a string, got " +
                         to_string(value.kind())};
  }
  return value.as_string();
}

void require_range(bool ok, const std::string& field,
                   const std::string& constraint) {
  if (!ok) {
    throw ServeError{ErrorCode::kOutOfRange, field,
                     "\"" + field + "\" " + constraint};
  }
}

long long require_integer(const JsonValue& value, const std::string& field) {
  const double v = require_number(value, field);
  if (v != std::floor(v) || std::fabs(v) > 9.007199254740992e15) {
    throw ServeError{ErrorCode::kBadValue, field,
                     "\"" + field + "\" must be an integer"};
  }
  return static_cast<long long>(v);
}

[[noreturn]] void unknown_field(QueryKind kind, const std::string& field) {
  throw ServeError{ErrorCode::kUnknownField, field,
                   std::string{"\""} + to_string(kind) +
                       "\" queries have no field \"" + field + "\""};
}

}  // namespace

Query parse_query(const JsonValue& request) {
  if (request.kind() != JsonKind::kObject) {
    throw ServeError{ErrorCode::kBadRequest, "",
                     std::string{"a query must be a JSON object, got "} +
                         to_string(request.kind())};
  }
  Query query;
  const JsonValue* command = request.find("command");
  if (command == nullptr) {
    throw ServeError{ErrorCode::kBadRequest, "command",
                     "query needs a \"command\" member"};
  }
  const std::string& name = require_string(*command, "command");
  if (name == "cluster") {
    query.kind = QueryKind::kCluster;
  } else if (name == "savings") {
    query.kind = QueryKind::kSavings;
  } else if (name == "faults") {
    query.kind = QueryKind::kFaults;
  } else if (name == "mech") {
    query.kind = QueryKind::kMech;
  } else {
    throw ServeError{ErrorCode::kUnknownCommand, "command",
                     "unknown command \"" + name +
                         "\" (expected cluster|savings|faults|mech)"};
  }

  const bool simulated =
      query.kind == QueryKind::kFaults || query.kind == QueryKind::kMech;
  ScenarioOptions& opt = query.opt;
  for (const auto& [key, value] : request.as_object()) {
    if (key == "command") continue;
    if (key == "id") {
      if (value.kind() == JsonKind::kArray ||
          value.kind() == JsonKind::kObject) {
        throw ServeError{ErrorCode::kBadValue, "id",
                         std::string{"\"id\" must be a scalar, got "} +
                             to_string(value.kind())};
      }
      query.id = value;
      continue;
    }
    if (key == "output") {
      const std::string& out = require_string(value, "output");
      if (out == "csv") {
        query.output = QueryOutput::kCsv;
      } else if (out == "table") {
        query.output = QueryOutput::kTable;
      } else if (out == "metrics") {
        if (!simulated) {
          throw ServeError{
              ErrorCode::kBadValue, "output",
              "output \"metrics\" is only available for faults and mech "
              "queries"};
        }
        query.output = QueryOutput::kMetrics;
      } else {
        throw ServeError{ErrorCode::kBadValue, "output",
                         "unknown output \"" + out +
                             "\" (expected csv|table|metrics)"};
      }
      continue;
    }
    // Backend selection, shared by the simulated commands.
    if (simulated && key == "backend") {
      const std::string& backend = require_string(value, "backend");
      if (backend == "single") {
        opt.backend.kind = BackendKind::kSingle;
      } else if (backend == "sharded") {
        opt.backend.kind = BackendKind::kSharded;
      } else {
        throw ServeError{ErrorCode::kBadValue, "backend",
                         "unknown backend \"" + backend +
                             "\" (expected single|sharded)"};
      }
      continue;
    }
    if (simulated && key == "shards") {
      const long long shards = require_integer(value, "shards");
      require_range(shards >= 1, "shards", "must be >= 1");
      opt.backend.num_shards = static_cast<std::size_t>(shards);
      continue;
    }
    // Analytics knobs (cluster / savings).
    if (query.kind == QueryKind::kCluster ||
        query.kind == QueryKind::kSavings) {
      if (key == "gpus") {
        const double gpus = require_number(value, key);
        require_range(gpus > 0.0, key, "must be > 0");
        opt.cluster.num_gpus = gpus;
        continue;
      }
      if (key == "gbps") {
        const double gbps = require_number(value, key);
        require_range(gbps > 0.0, key, "must be > 0");
        opt.cluster.bandwidth_per_gpu = Gbps{gbps};
        continue;
      }
      if (key == "ratio") {
        const double ratio = require_number(value, key);
        require_range(ratio >= 0.0 && ratio <= 1.0, key,
                      "must be in [0, 1]");
        opt.cluster.communication_ratio = ratio;
        continue;
      }
      if (query.kind == QueryKind::kSavings && key == "prop") {
        const double prop = require_number(value, key);
        require_range(prop >= 0.0 && prop <= 1.0, key, "must be in [0, 1]");
        opt.prop = prop;
        continue;
      }
      unknown_field(query.kind, key);
    }
    if (query.kind == QueryKind::kFaults) {
      if (key == "mtbf_s") {
        const double mtbf = require_number(value, key);
        require_range(mtbf >= 0.0, key, "must be >= 0");
        opt.mtbf_s = mtbf;
        continue;
      }
      if (key == "mttr_s") {
        const double mttr = require_number(value, key);
        require_range(mttr > 0.0, key, "must be > 0");
        opt.mttr_s = mttr;
        continue;
      }
      if (key == "headroom") {
        const double headroom = require_number(value, key);
        require_range(headroom >= 0.0, key, "must be >= 0");
        opt.headroom = headroom;
        continue;
      }
      if (key == "seed") {
        const long long seed = require_integer(value, key);
        require_range(seed >= 0, key, "must be >= 0");
        opt.fault_seed = static_cast<std::uint64_t>(seed);
        continue;
      }
      if (key == "policy") {
        const std::string& policy = require_string(value, key);
        if (policy == "none") {
          opt.policy = DegradedPolicy::kNone;
        } else if (policy == "wake-all") {
          opt.policy = DegradedPolicy::kEmergencyWakeAll;
        } else if (policy == "re-tailor") {
          opt.policy = DegradedPolicy::kRetailor;
        } else {
          throw ServeError{ErrorCode::kBadValue, key,
                           "unknown policy \"" + policy +
                               "\" (expected none|wake-all|re-tailor)"};
        }
        continue;
      }
      if (key == "sample_period_s") {
        const double period = require_number(value, key);
        require_range(period >= 0.0, key, "must be >= 0");
        opt.sample_period_s = period;
        continue;
      }
      unknown_field(query.kind, key);
    }
    if (query.kind == QueryKind::kMech) {
      if (key == "stack") {
        const std::string& stack = require_string(value, key);
        if (stack != "all" && stack != "dynamic" && stack != "tailor" &&
            stack != "park" && stack != "rate") {
          throw ServeError{
              ErrorCode::kBadValue, key,
              "unknown stack \"" + stack +
                  "\" (expected all|dynamic|tailor|park|rate)"};
        }
        opt.stack = stack;
        continue;
      }
      if (key == "iters") {
        const long long iters = require_integer(value, key);
        require_range(iters > 0, key, "must be > 0");
        opt.mech_iterations = static_cast<int>(iters);
        continue;
      }
      if (key == "volume_gbit") {
        const double volume = require_number(value, key);
        require_range(volume > 0.0, key, "must be > 0");
        opt.mech_volume_gbit = volume;
        continue;
      }
      if (key == "horizon_s") {
        const double horizon = require_number(value, key);
        require_range(horizon > 0.0, key, "must be > 0");
        opt.mech_horizon_s = horizon;
        continue;
      }
      if (key == "ocs") {
        const long long ocs = require_integer(value, key);
        require_range(ocs >= 0, key, "must be >= 0");
        opt.mech_ocs_devices = static_cast<int>(ocs);
        continue;
      }
      if (key == "pod_budget_w") {
        const double budget = require_number(value, key);
        require_range(budget >= 0.0, key, "must be >= 0");
        opt.pod_budget_w = budget;
        continue;
      }
      if (key == "core_budget_w") {
        const double budget = require_number(value, key);
        require_range(budget >= 0.0, key, "must be >= 0");
        opt.core_budget_w = budget;
        continue;
      }
      unknown_field(query.kind, key);
    }
  }

  if (opt.backend.kind == BackendKind::kSingle && opt.backend.num_shards > 1) {
    throw ServeError{ErrorCode::kBackendMismatch, "shards",
                     "shards " + std::to_string(opt.backend.num_shards) +
                         " requires backend \"sharded\""};
  }
  return query;
}

std::string cache_key(const Query& query) {
  char buf[512];
  const ScenarioOptions& o = query.opt;
  std::snprintf(
      buf, sizeof buf,
      "%s|%s|gpus=%.17g|gbps=%.17g|ratio=%.17g|prop=%.17g"
      "|mtbf=%.17g|mttr=%.17g|head=%.17g|seed=%llu|policy=%d|sp=%.17g"
      "|stack=%s|iters=%d|vol=%.17g|hor=%.17g|ocs=%d|podb=%.17g|coreb=%.17g"
      "|backend=%d|shards=%zu",
      to_string(query.kind), to_string(query.output), o.cluster.num_gpus,
      o.cluster.bandwidth_per_gpu.value(), o.cluster.communication_ratio,
      o.prop, o.mtbf_s, o.mttr_s, o.headroom,
      static_cast<unsigned long long>(o.fault_seed),
      static_cast<int>(o.policy), o.sample_period_s, o.stack.c_str(),
      o.mech_iterations, o.mech_volume_gbit, o.mech_horizon_s,
      o.mech_ocs_devices, o.pod_budget_w, o.core_budget_w,
      static_cast<int>(o.backend.kind), o.backend.num_shards);
  return std::string{buf};
}

}  // namespace netpp::serve
