#include "netpp/state/image.h"

#include <fstream>
#include <stdexcept>

#include "netpp/validation.h"

namespace netpp::state {

StateImage StateImage::from_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) {
    validation::fail("SnapshotReader", "cannot open " + path);
  }
  const std::streamsize size = in.tellg();
  in.seekg(0);
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  if (size > 0) {
    in.read(reinterpret_cast<char*>(bytes.data()), size);
    if (!in) {
      validation::fail("SnapshotReader", "short read from " + path);
    }
  }
  return StateImage{std::move(bytes)};
}

void StateImage::write_file(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("StateImage: cannot open " + path);
  }
  out.write(reinterpret_cast<const char*>(bytes_.data()),
            static_cast<std::streamsize>(bytes_.size()));
  if (!out) {
    throw std::runtime_error("StateImage: short write to " + path);
  }
}

}  // namespace netpp::state
