#include "netpp/state/auditor.h"

#include <stdexcept>
#include <utility>

#include "netpp/faults/degraded_mode.h"
#include "netpp/faults/experiment.h"
#include "netpp/netsim/flowsim.h"
#include "netpp/power/state_timeline.h"

namespace netpp::state {

void InvariantAuditor::add(std::string name, std::function<void()> check) {
  if (!check) {
    throw std::invalid_argument("InvariantAuditor: check must be callable");
  }
  checks_.push_back(Check{std::move(name), std::move(check)});
}

void InvariantAuditor::watch(const FlowSimulator& sim) {
  add("FlowSimulator", [&sim] { sim.check_invariants(); });
}

void InvariantAuditor::watch(const DegradedModeController& controller) {
  add("DegradedModeController", [&controller] { controller.check_invariants(); });
}

void InvariantAuditor::watch(const FaultExperimentRun& run) {
  add("FaultExperimentRun", [&run] { run.check_invariants(); });
}

void InvariantAuditor::watch(const PowerStateTimeline& timeline) {
  add("PowerStateTimeline", [&timeline] { timeline.check_invariants(); });
}

void InvariantAuditor::audit() {
  for (const Check& check : checks_) check.fn();
  ++audits_passed_;
}

std::vector<std::string> InvariantAuditor::check_names() const {
  std::vector<std::string> names;
  names.reserve(checks_.size());
  for (const Check& check : checks_) names.push_back(check.name);
  return names;
}

}  // namespace netpp::state
