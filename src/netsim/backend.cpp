#include "netpp/netsim/backend.h"

#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

#include "netpp/validation.h"

namespace netpp {

namespace {

constexpr const char* kName = "SimulatorBackend";

/// The pre-seam wiring: one SimEngine shared by the fabric and the control
/// plane, so control events interleave with flow events in exactly the
/// order the drivers produced before the seam existed (bit-identity pinned
/// by tests/integration/backend_equivalence_test.cpp).
class SingleSimBackend final : public SimulatorBackend {
 public:
  SingleSimBackend(const Graph& graph, const FlowSimulator::Config& config)
      : router_(graph), sim_(graph, router_, engine_, config) {}

  [[nodiscard]] BackendKind kind() const override {
    return BackendKind::kSingle;
  }
  [[nodiscard]] const Graph& graph() const override { return sim_.graph(); }

  [[nodiscard]] Seconds now() const override { return engine_.now(); }
  void run_until(Seconds until) override { engine_.run_until(until); }
  void run() override { engine_.run(); }

  ControlId schedule_control_at(Seconds at, ControlFn fn) override {
    return engine_.schedule_at(at, std::move(fn));
  }
  ControlId schedule_control_after(Seconds delay, ControlFn fn) override {
    return engine_.schedule_after(delay, std::move(fn));
  }
  bool cancel_control(ControlId id) override { return engine_.cancel(id); }
  [[nodiscard]] Seconds control_time(ControlId id) const override {
    return engine_.event_time(id);
  }
  [[nodiscard]] std::uint64_t control_seq(ControlId id) const override {
    return engine_.event_seq(id);
  }
  [[nodiscard]] std::uint64_t control_next_seq() const override {
    return engine_.next_seq();
  }
  ControlId restore_control_at(Seconds at, std::uint64_t seq,
                               ControlFn fn) override {
    return engine_.restore_event_at(at, seq, std::move(fn));
  }

  FlowId submit(const FlowSpec& spec) override { return sim_.submit(spec); }

  void set_node_enabled(NodeId id, bool enabled) override {
    sim_.set_node_enabled(id, enabled);
  }
  void set_link_enabled(LinkId id, bool enabled) override {
    sim_.set_link_enabled(id, enabled);
  }
  void set_link_capacity_factor(LinkId id, double factor) override {
    sim_.set_link_capacity_factor(id, factor);
  }
  [[nodiscard]] bool node_enabled(NodeId id) const override {
    return sim_.router().node_enabled(id);
  }
  [[nodiscard]] bool link_enabled(LinkId id) const override {
    return sim_.router().link_enabled(id);
  }
  [[nodiscard]] double link_capacity_factor(LinkId id) const override {
    return sim_.link_capacity_factor(id);
  }

  [[nodiscard]] const std::vector<FlowRecord>& completed() const override {
    return sim_.completed();
  }
  [[nodiscard]] const SummaryStat& fct_stats() const override {
    return sim_.fct_stats();
  }
  [[nodiscard]] std::size_t active_flows() const override {
    return sim_.active_flows();
  }
  [[nodiscard]] std::size_t stranded_flows() const override {
    return sim_.stranded_flows();
  }
  [[nodiscard]] std::size_t unroutable_flows() const override {
    return sim_.unroutable_flows();
  }
  [[nodiscard]] FlowSimulator::ReallocStats realloc_stats() const override {
    return sim_.realloc_stats();
  }
  [[nodiscard]] double stranded_bit_seconds(Seconds now) const override {
    return sim_.stranded_bit_seconds(now);
  }
  [[nodiscard]] std::vector<double> strand_durations() const override {
    return sim_.strand_durations();
  }
  [[nodiscard]] double current_mean_utilization() const override {
    return sim_.current_mean_utilization();
  }
  void flush_metrics() override { sim_.flush_metrics(); }
  [[nodiscard]] std::vector<telemetry::MetricSample> sim_metrics()
      const override {
    return {};  // the simulator writes straight into Config::telemetry
  }

  void set_load_listener(LoadListener listener) override {
    sim_.set_load_listener(std::move(listener));
  }

  [[nodiscard]] std::size_t shard_count() const override { return 1; }
  [[nodiscard]] FlowSimulator& shard_sim(std::size_t s) override {
    validation::require(s == 0, kName, "single backend has one shard");
    return sim_;
  }
  [[nodiscard]] const ShardTopology* shard_topology(
      std::size_t s) const override {
    validation::require(s == 0, kName, "single backend has one shard");
    return nullptr;
  }
  [[nodiscard]] bool core_collapsed() const override { return false; }

  void save_sim(state::SnapshotWriter& w) const override {
    sim_.save_state(w);
  }
  void restore_sim(state::SnapshotReader& r) override { sim_.restore_state(r); }
  void restore_clock(Seconds now, std::uint64_t control_next_seq) override {
    engine_.restore_clock(now, control_next_seq);
  }
  void check_invariants() const override { sim_.check_invariants(); }

 private:
  SimEngine engine_;
  Router router_;
  FlowSimulator sim_;
};

/// ShardedFlowSimulator plus a driver-side control engine. The fabric
/// advances to each control time in bounded-lag windows; due control
/// callbacks then fire in (time, seq) order at the barrier, where topology
/// mutation and submission are legal. The control engine's clock shadows
/// the sharded clock, so schedule_control_after() and validation behave
/// exactly like the single backend's shared engine.
class ShardedSimBackend final : public SimulatorBackend {
 public:
  ShardedSimBackend(const Graph& graph, const BackendConfig& config,
                    const FlowSimulator::Config& sim_config)
      : graph_(graph) {
    validation::require(sim_config.telemetry == nullptr, kName,
                        "sharded backend requires a null telemetry handle "
                        "(read sim_metrics() instead)");
    ShardedFlowSimulator::Config scfg;
    scfg.num_shards = config.num_shards;
    scfg.num_threads = config.num_threads;
    scfg.barrier_interval = config.barrier_interval;
    scfg.shard = sim_config;
    sharded_ = std::make_unique<ShardedFlowSimulator>(graph, scfg);
  }

  [[nodiscard]] BackendKind kind() const override {
    return BackendKind::kSharded;
  }
  [[nodiscard]] const Graph& graph() const override { return graph_; }

  [[nodiscard]] Seconds now() const override { return sharded_->now(); }

  void run_until(Seconds until) override {
    for (;;) {
      const double next_ctrl = control_.next_event_time();
      if (next_ctrl > until.value()) break;
      if (next_ctrl > sharded_->now().value()) {
        sharded_->run_until(Seconds{next_ctrl});
      }
      // Fires every control due at the barrier, in (time, seq) order;
      // callbacks may enqueue same-time follow-ups, which fire in the same
      // batch.
      control_.run_until(sharded_->now());
    }
    if (until.value() > sharded_->now().value()) sharded_->run_until(until);
    control_.run_until(until);
  }

  void run() override {
    // Advance only to control times, then let the fabric drain on its own
    // barrier grid. Targeting fabric event times here would insert barriers
    // an interrupted run (run_until to the cut, then resume) never sees,
    // making the straight-line and resumed trajectories diverge.
    for (;;) {
      const double next_ctrl = control_.next_event_time();
      if (std::isfinite(next_ctrl)) {
        run_until(Seconds{next_ctrl});
        continue;
      }
      if (!std::isfinite(sharded_->next_event_time())) break;
      sharded_->run();
    }
  }

  ControlId schedule_control_at(Seconds at, ControlFn fn) override {
    return control_.schedule_at(at, std::move(fn));
  }
  ControlId schedule_control_after(Seconds delay, ControlFn fn) override {
    return control_.schedule_after(delay, std::move(fn));
  }
  bool cancel_control(ControlId id) override { return control_.cancel(id); }
  [[nodiscard]] Seconds control_time(ControlId id) const override {
    return control_.event_time(id);
  }
  [[nodiscard]] std::uint64_t control_seq(ControlId id) const override {
    return control_.event_seq(id);
  }
  [[nodiscard]] std::uint64_t control_next_seq() const override {
    return control_.next_seq();
  }
  ControlId restore_control_at(Seconds at, std::uint64_t seq,
                               ControlFn fn) override {
    return control_.restore_event_at(at, seq, std::move(fn));
  }

  FlowId submit(const FlowSpec& spec) override { return sharded_->submit(spec); }

  void set_node_enabled(NodeId id, bool enabled) override {
    sharded_->set_node_enabled(id, enabled);
  }
  void set_link_enabled(LinkId id, bool enabled) override {
    sharded_->set_link_enabled(id, enabled);
  }
  void set_link_capacity_factor(LinkId id, double factor) override {
    sharded_->set_link_capacity_factor(id, factor);
  }
  [[nodiscard]] bool node_enabled(NodeId id) const override {
    return sharded_->node_enabled(id);
  }
  [[nodiscard]] bool link_enabled(LinkId id) const override {
    return sharded_->link_enabled(id);
  }
  [[nodiscard]] double link_capacity_factor(LinkId id) const override {
    return sharded_->link_capacity_factor(id);
  }

  [[nodiscard]] const std::vector<FlowRecord>& completed() const override {
    return sharded_->completed();
  }
  [[nodiscard]] const SummaryStat& fct_stats() const override {
    return sharded_->fct_stats();
  }
  [[nodiscard]] std::size_t active_flows() const override {
    return sharded_->active_flows();
  }
  [[nodiscard]] std::size_t stranded_flows() const override {
    return sharded_->stranded_flows();
  }
  [[nodiscard]] std::size_t unroutable_flows() const override {
    return sharded_->unroutable_flows();
  }
  [[nodiscard]] FlowSimulator::ReallocStats realloc_stats() const override {
    return sharded_->realloc_stats();
  }
  [[nodiscard]] double stranded_bit_seconds(Seconds now) const override {
    return sharded_->stranded_bit_seconds(now);
  }
  [[nodiscard]] std::vector<double> strand_durations() const override {
    return sharded_->strand_durations();
  }
  [[nodiscard]] double current_mean_utilization() const override {
    return sharded_->current_mean_utilization();
  }
  void flush_metrics() override {
    for (std::size_t s = 0; s < sharded_->num_shards(); ++s) {
      sharded_->shard_mutable(s).flush_metrics();
    }
  }
  [[nodiscard]] std::vector<telemetry::MetricSample> sim_metrics()
      const override {
    return sharded_->merged_metrics();
  }

  void set_load_listener(LoadListener listener) override {
    sharded_->set_barrier_listener(std::move(listener));
  }

  [[nodiscard]] std::size_t shard_count() const override {
    return sharded_->num_shards();
  }
  [[nodiscard]] FlowSimulator& shard_sim(std::size_t s) override {
    return sharded_->shard_mutable(s);
  }
  [[nodiscard]] const ShardTopology* shard_topology(
      std::size_t s) const override {
    return &sharded_->shard_topology(s);
  }
  [[nodiscard]] bool core_collapsed() const override {
    return sharded_->num_shards() > 1;
  }

  void save_sim(state::SnapshotWriter& w) const override {
    sharded_->save_state(w);
  }
  void restore_sim(state::SnapshotReader& r) override {
    sharded_->restore_state(r);
  }
  void restore_clock(Seconds now, std::uint64_t control_next_seq) override {
    control_.restore_clock(now, control_next_seq);
  }
  void check_invariants() const override { sharded_->check_invariants(); }

 private:
  const Graph& graph_;
  std::unique_ptr<ShardedFlowSimulator> sharded_;
  SimEngine control_;
};

}  // namespace

const char* to_string(BackendKind kind) {
  switch (kind) {
    case BackendKind::kSingle:
      return "single";
    case BackendKind::kSharded:
      return "sharded";
  }
  return "?";
}

std::unique_ptr<SimulatorBackend> make_backend(
    const Graph& graph, const BackendConfig& config,
    const FlowSimulator::Config& sim_config) {
  switch (config.kind) {
    case BackendKind::kSingle:
      validation::require(config.num_shards == 1, kName,
                          "single backend requires num_shards == 1");
      return std::make_unique<SingleSimBackend>(graph, sim_config);
    case BackendKind::kSharded:
      return std::make_unique<ShardedSimBackend>(graph, config, sim_config);
  }
  throw std::invalid_argument("SimulatorBackend: unknown backend kind");
}

}  // namespace netpp
