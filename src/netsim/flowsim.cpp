#include "netpp/netsim/flowsim.h"

#include <cmath>

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "netpp/netsim/fairshare.h"

namespace netpp {

namespace {
constexpr double kEpsBits = 1.0;  // flows within 1 bit of done are done
}

FlowSimulator::FlowSimulator(const Graph& graph, Router& router,
                             SimEngine& engine, Config config)
    : graph_(graph), router_(router), engine_(engine), config_(config) {
  directed_capacity_bps_.reserve(graph.num_links() * 2);
  directed_rate_bps_.reserve(graph.num_links() * 2);
  for (const auto& link : graph.links()) {
    for (int dir = 0; dir < 2; ++dir) {
      directed_capacity_bps_.push_back(link.capacity.bits_per_second());
      directed_rate_bps_.emplace_back(0.0, engine.now());
    }
  }
}

FlowSimulator::FlowSimulator(const Graph& graph, Router& router,
                             SimEngine& engine)
    : FlowSimulator(graph, router, engine, Config{}) {}

FlowId FlowSimulator::submit(const FlowSpec& spec) {
  if (spec.src >= graph_.num_nodes() || spec.dst >= graph_.num_nodes()) {
    throw std::out_of_range("flow endpoint does not exist");
  }
  if (spec.src == spec.dst) {
    throw std::invalid_argument("flow src == dst");
  }
  if (spec.size.value() <= 0.0) {
    throw std::invalid_argument("flow size must be positive");
  }
  const FlowId id = next_id_++;
  engine_.schedule_at(spec.start, [this, spec, id] { admit(spec, id); });
  return id;
}

void FlowSimulator::admit(FlowSpec spec, FlowId id) {
  const Seconds now = engine_.now();
  const auto path = router_.ecmp_route(spec.src, spec.dst, id);
  if (!path) {
    ++unroutable_;
    return;
  }

  ActiveFlow flow;
  flow.id = id;
  flow.spec = spec;
  flow.remaining_bits = spec.size.value();
  flow.admitted = now;
  NodeId at = path->src;
  for (LinkId lid : path->links) {
    const Link& link = graph_.link(lid);
    const int dir = (at == link.a) ? 0 : 1;
    flow.directed_indices.push_back(DirectedLink{lid, dir}.index());
    at = link.other(at);
  }

  settle_progress(now);
  active_.push_back(std::move(flow));
  reallocate(now);
}

void FlowSimulator::settle_progress(Seconds now) {
  const double dt = (now - last_settle_).value();
  if (dt > 0.0) {
    for (auto& flow : active_) {
      flow.remaining_bits -= flow.rate_bps * dt;
      if (flow.remaining_bits < 0.0) flow.remaining_bits = 0.0;
    }
  }
  last_settle_ = now;
}

void FlowSimulator::reallocate(Seconds now) {
  // Build the fair-share problem over directed links.
  std::vector<FairShareFlow> problem;
  problem.reserve(active_.size());
  const double cap_bps = config_.flow_rate_cap.bits_per_second();
  for (const auto& flow : active_) {
    FairShareFlow f;
    f.resources = flow.directed_indices;
    f.cap = cap_bps > 0.0 ? cap_bps : 0.0;
    problem.push_back(std::move(f));
  }
  const auto rates = max_min_fair_rates(problem, directed_capacity_bps_);

  std::vector<double> carried(directed_capacity_bps_.size(), 0.0);
  for (std::size_t i = 0; i < active_.size(); ++i) {
    active_[i].rate_bps = rates[i];
    for (std::size_t r : active_[i].directed_indices) {
      carried[r] += rates[i];
    }
  }
  for (std::size_t r = 0; r < carried.size(); ++r) {
    directed_rate_bps_[r].set(now, carried[r]);
  }

  schedule_next_completion();
  if (listener_) listener_(now);
}

void FlowSimulator::schedule_next_completion() {
  if (completion_event_) {
    engine_.cancel(*completion_event_);
    completion_event_.reset();
  }
  double earliest = std::numeric_limits<double>::infinity();
  for (const auto& flow : active_) {
    if (flow.rate_bps <= 0.0) continue;  // stalled (fully contended/disabled)
    const double t = flow.remaining_bits / flow.rate_bps;
    earliest = std::min(earliest, t);
  }
  if (!std::isfinite(earliest)) return;
  completion_event_ = engine_.schedule_after(
      Seconds{earliest}, [this] { complete_due_flows(engine_.now()); });
}

void FlowSimulator::complete_due_flows(Seconds now) {
  completion_event_.reset();
  settle_progress(now);
  bool any = false;
  for (auto it = active_.begin(); it != active_.end();) {
    if (it->remaining_bits <= kEpsBits) {
      FlowRecord record;
      record.id = it->id;
      record.spec = it->spec;
      record.finished = now;
      fct_.add(record.fct().value());
      completed_.push_back(record);
      it = active_.erase(it);
      any = true;
      if (completion_listener_) completion_listener_(completed_.back());
    } else {
      ++it;
    }
  }
  if (any) {
    reallocate(now);
  } else {
    // Numerical guard: nothing finished (should not happen); reschedule.
    schedule_next_completion();
  }
}

Gbps FlowSimulator::directed_link_rate(DirectedLink dl) const {
  return Gbps{directed_rate_bps_.at(dl.index()).current() / 1e9};
}

double FlowSimulator::directed_link_utilization(DirectedLink dl) const {
  const auto idx = dl.index();
  return directed_rate_bps_.at(idx).current() / directed_capacity_bps_.at(idx);
}

double FlowSimulator::node_load(NodeId id) const {
  double carried = 0.0;
  double capacity = 0.0;
  for (const auto& adj : graph_.neighbors(id)) {
    for (int dir = 0; dir < 2; ++dir) {
      const auto idx = DirectedLink{adj.link, dir}.index();
      carried += directed_rate_bps_.at(idx).current();
      capacity += directed_capacity_bps_.at(idx);
    }
  }
  return capacity > 0.0 ? carried / capacity : 0.0;
}

double FlowSimulator::average_link_utilization(DirectedLink dl) const {
  const auto idx = dl.index();
  return directed_rate_bps_.at(idx).average(engine_.now()) /
         directed_capacity_bps_.at(idx);
}

}  // namespace netpp
