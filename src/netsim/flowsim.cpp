#include "netpp/netsim/flowsim.h"

#include <cmath>

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace netpp {

namespace {
constexpr double kEpsBits = 1.0;  // flows within 1 bit of done are done
// A link counts as strictly unsaturated only below this fraction of its
// capacity; the margin absorbs the tiny float drift the incremental
// carried-rate bookkeeping can accumulate between full solves.
constexpr double kUnsaturatedFraction = 1.0 - 1e-9;
}  // namespace

FlowSimulator::FlowSimulator(const Graph& graph, Router& router,
                             SimEngine& engine, Config config)
    : graph_(graph), router_(router), engine_(engine), config_(config) {
  directed_capacity_bps_.reserve(graph.num_links() * 2);
  directed_rate_bps_.reserve(graph.num_links() * 2);
  for (const auto& link : graph.links()) {
    for (int dir = 0; dir < 2; ++dir) {
      directed_capacity_bps_.push_back(link.capacity.bits_per_second());
      directed_rate_bps_.emplace_back(0.0, engine.now());
    }
  }
  carried_bps_.assign(directed_capacity_bps_.size(), 0.0);
  link_factor_.assign(graph.num_links(), 1.0);
}

FlowSimulator::FlowSimulator(const Graph& graph, Router& router,
                             SimEngine& engine)
    : FlowSimulator(graph, router, engine, Config{}) {}

FlowId FlowSimulator::submit(const FlowSpec& spec) {
  if (spec.src >= graph_.num_nodes() || spec.dst >= graph_.num_nodes()) {
    throw std::out_of_range("FlowSpec: flow endpoint does not exist");
  }
  if (spec.src == spec.dst) {
    throw std::invalid_argument("FlowSpec: src must differ from dst");
  }
  if (!std::isfinite(spec.size.value()) || spec.size.value() <= 0.0) {
    throw std::invalid_argument("FlowSpec: size must be finite and positive");
  }
  if (!std::isfinite(spec.start.value())) {
    throw std::invalid_argument("FlowSpec: start time must be finite");
  }
  const FlowId id = next_id_++;
  engine_.schedule_at(spec.start, [this, spec, id] { admit(spec, id); });
  return id;
}

void FlowSimulator::admit(FlowSpec spec, FlowId id) {
  const Seconds now = engine_.now();
  const auto path = router_.ecmp_route(spec.src, spec.dst, id);
  if (!path) {
    if (config_.strand_unroutable) {
      ++realloc_stats_.stranded;
      stranded_.push_back(StrandedFlow{id, spec, spec.size.value(), now});
    } else {
      ++unroutable_;
    }
    return;
  }

  ActiveFlow flow;
  flow.id = id;
  flow.spec = spec;
  flow.remaining_bits = spec.size.value();
  flow.admitted = now;
  flow.directed_indices = directed_indices_of(*path);

  settle_progress(now);
  active_.push_back(std::move(flow));
  if (try_fast_arrival(now, active_.back())) {
    schedule_next_completion();
    if (listener_) listener_(now);
  } else {
    reallocate(now);
  }
}

void FlowSimulator::settle_progress(Seconds now) {
  const double dt = (now - last_settle_).value();
  if (dt > 0.0) {
    for (auto& flow : active_) {
      flow.remaining_bits -= flow.rate_bps * dt;
      if (flow.remaining_bits < 0.0) flow.remaining_bits = 0.0;
    }
  }
  last_settle_ = now;
}

void FlowSimulator::set_directed_rate(Seconds now, std::size_t index,
                                      double value) {
  carried_bps_[index] = value;
  directed_rate_bps_[index].set(now, value);
}

std::vector<std::size_t> FlowSimulator::directed_indices_of(
    const Path& path) const {
  std::vector<std::size_t> indices;
  indices.reserve(path.links.size());
  NodeId at = path.src;
  for (LinkId lid : path.links) {
    const Link& link = graph_.link(lid);
    const int dir = (at == link.a) ? 0 : 1;
    indices.push_back(DirectedLink{lid, dir}.index());
    at = link.other(at);
  }
  return indices;
}

bool FlowSimulator::path_alive(const ActiveFlow& flow) const {
  for (std::size_t idx : flow.directed_indices) {
    const auto lid = static_cast<LinkId>(idx / 2);
    if (!router_.link_enabled(lid)) return false;
    const Link& link = graph_.link(lid);
    // Direction 0 traverses a->b, so the node entered is b (and vice
    // versa); intermediate nodes must be enabled, the destination is exempt.
    const NodeId entered = (idx % 2 == 0) ? link.b : link.a;
    if (entered != flow.spec.dst && !router_.node_enabled(entered)) {
      return false;
    }
  }
  return true;
}

void FlowSimulator::set_node_enabled(NodeId id, bool enabled) {
  if (id >= graph_.num_nodes()) {
    throw std::out_of_range("topology change: node does not exist");
  }
  if (router_.node_enabled(id) == enabled) return;
  router_.set_node_enabled(id, enabled);
  apply_topology_change();
}

void FlowSimulator::set_link_enabled(LinkId id, bool enabled) {
  if (id >= graph_.num_links()) {
    throw std::out_of_range("topology change: link does not exist");
  }
  if (router_.link_enabled(id) == enabled) return;
  router_.set_link_enabled(id, enabled);
  apply_topology_change();
}

void FlowSimulator::set_link_capacity_factor(LinkId id, double factor) {
  if (id >= graph_.num_links()) {
    throw std::out_of_range("topology change: link does not exist");
  }
  if (!std::isfinite(factor) || factor <= 0.0 || factor > 1.0) {
    throw std::invalid_argument(
        "topology change: capacity factor must be in (0, 1]");
  }
  if (link_factor_[id] == factor) return;
  link_factor_[id] = factor;
  const double base = graph_.link(id).capacity.bits_per_second();
  directed_capacity_bps_[static_cast<std::size_t>(id) * 2] = base * factor;
  directed_capacity_bps_[static_cast<std::size_t>(id) * 2 + 1] =
      base * factor;
  apply_topology_change();
}

void FlowSimulator::apply_topology_change() {
  const Seconds now = engine_.now();
  ++realloc_stats_.topology_changes;
  settle_progress(now);
  // Re-validate every active flow's path; move broken ones to a surviving
  // ECMP path or park them on the stranded list.
  for (std::size_t i = 0; i < active_.size();) {
    ActiveFlow& flow = active_[i];
    if (path_alive(flow)) {
      ++i;
      continue;
    }
    const auto path = router_.ecmp_route(flow.spec.src, flow.spec.dst,
                                         flow.id);
    if (path) {
      flow.directed_indices = directed_indices_of(*path);
      ++realloc_stats_.reroutes;
      ++i;
    } else {
      ++realloc_stats_.stranded;
      stranded_.push_back(
          StrandedFlow{flow.id, flow.spec, flow.remaining_bits, now});
      if (i + 1 != active_.size()) std::swap(active_[i], active_.back());
      active_.pop_back();
    }
  }
  // A recovery may have reconnected previously stranded flows.
  retry_stranded(now);
  reallocate(now);
}

void FlowSimulator::retry_stranded(Seconds now) {
  for (std::size_t i = 0; i < stranded_.size();) {
    StrandedFlow& parked = stranded_[i];
    const auto path =
        router_.ecmp_route(parked.spec.src, parked.spec.dst, parked.id);
    if (!path) {
      ++i;
      continue;
    }
    ActiveFlow flow;
    flow.id = parked.id;
    flow.spec = parked.spec;
    flow.remaining_bits = parked.remaining_bits;
    flow.admitted = now;
    flow.directed_indices = directed_indices_of(*path);
    const double stranded_for = (now - parked.stranded_at).value();
    strand_durations_.push_back(stranded_for);
    stranded_bit_seconds_done_ += stranded_for * parked.remaining_bits;
    ++realloc_stats_.resumed;
    if (i + 1 != stranded_.size()) std::swap(stranded_[i], stranded_.back());
    stranded_.pop_back();
    active_.push_back(std::move(flow));
  }
}

double FlowSimulator::stranded_bit_seconds(Seconds now) const {
  double total = stranded_bit_seconds_done_;
  for (const auto& parked : stranded_) {
    total += (now - parked.stranded_at).value() * parked.remaining_bits;
  }
  return total;
}

bool FlowSimulator::try_fast_arrival(Seconds now, ActiveFlow& flow) {
  if (!config_.incremental_reallocation) return false;
  const double cap_bps = config_.flow_rate_cap.bits_per_second();
  if (cap_bps <= 0.0) return false;
  for (std::size_t r : flow.directed_indices) {
    if (carried_bps_[r] + cap_bps >
        directed_capacity_bps_[r] * kUnsaturatedFraction) {
      return false;
    }
  }
  // Every link the flow crosses keeps headroom at the cap, so the flow's
  // max-min rate is its cap and nobody else's bottleneck moves.
  flow.rate_bps = cap_bps;
  for (std::size_t r : flow.directed_indices) {
    set_directed_rate(now, r, carried_bps_[r] + cap_bps);
  }
  ++realloc_stats_.fast_arrivals;
  return true;
}

bool FlowSimulator::try_fast_departure(Seconds now, const ActiveFlow& flow) {
  if (!config_.incremental_reallocation) return false;
  for (std::size_t r : flow.directed_indices) {
    if (carried_bps_[r] >= directed_capacity_bps_[r] * kUnsaturatedFraction) {
      return false;
    }
  }
  // None of the flow's links was a bottleneck (saturated), so removing it
  // hands no other flow extra bandwidth.
  for (std::size_t r : flow.directed_indices) {
    set_directed_rate(now, r, std::max(0.0, carried_bps_[r] - flow.rate_bps));
  }
  ++realloc_stats_.fast_departures;
  return true;
}

void FlowSimulator::reallocate(Seconds now) {
  ++realloc_stats_.full_solves;
  // Assemble the fair-share problem as views over the flows' own resource
  // arrays — no copies, and the solver reuses its workspace.
  problem_.clear();
  problem_.reserve(active_.size());
  const double cap_bps = config_.flow_rate_cap.bits_per_second();
  for (const auto& flow : active_) {
    problem_.push_back({std::span<const std::size_t>(flow.directed_indices),
                        cap_bps > 0.0 ? cap_bps : 0.0});
  }
  const auto& rates = solver_.solve(problem_, directed_capacity_bps_);

  carried_scratch_.assign(directed_capacity_bps_.size(), 0.0);
  for (std::size_t i = 0; i < active_.size(); ++i) {
    active_[i].rate_bps = rates[i];
    for (std::size_t r : active_[i].directed_indices) {
      carried_scratch_[r] += rates[i];
    }
  }
  for (std::size_t r = 0; r < carried_scratch_.size(); ++r) {
    if (carried_scratch_[r] != carried_bps_[r]) {
      set_directed_rate(now, r, carried_scratch_[r]);
    }
  }

  schedule_next_completion();
  if (listener_) listener_(now);
}

void FlowSimulator::schedule_next_completion() {
  if (completion_event_) {
    engine_.cancel(*completion_event_);
    completion_event_.reset();
  }
  double earliest = std::numeric_limits<double>::infinity();
  for (const auto& flow : active_) {
    if (flow.rate_bps <= 0.0) continue;  // stalled (fully contended/disabled)
    const double t = flow.remaining_bits / flow.rate_bps;
    earliest = std::min(earliest, t);
  }
  if (!std::isfinite(earliest)) return;
  completion_event_ = engine_.schedule_after(
      Seconds{earliest}, [this] { complete_due_flows(engine_.now()); });
}

void FlowSimulator::complete_due_flows(Seconds now) {
  completion_event_.reset();
  settle_progress(now);
  bool any = false;
  bool all_fast = true;
  for (std::size_t i = 0; i < active_.size();) {
    if (active_[i].remaining_bits > kEpsBits) {
      ++i;
      continue;
    }
    FlowRecord record;
    record.id = active_[i].id;
    record.spec = active_[i].spec;
    record.finished = now;
    fct_.add(record.fct().value());
    completed_.push_back(record);
    any = true;
    all_fast = all_fast && try_fast_departure(now, active_[i]);
    // Swap-and-pop: active-flow order carries no meaning (records and
    // listeners are per-flow), and mid-vector erase is O(n).
    if (i + 1 != active_.size()) {
      std::swap(active_[i], active_.back());
    }
    active_.pop_back();
    if (completion_listener_) completion_listener_(completed_.back());
  }
  if (!any) {
    // Numerical guard: nothing finished (should not happen); reschedule.
    schedule_next_completion();
  } else if (all_fast) {
    schedule_next_completion();
    if (listener_) listener_(now);
  } else {
    reallocate(now);
  }
}

Gbps FlowSimulator::directed_link_rate(DirectedLink dl) const {
  return Gbps{directed_rate_bps_.at(dl.index()).current() / 1e9};
}

double FlowSimulator::directed_link_utilization(DirectedLink dl) const {
  const auto idx = dl.index();
  return directed_rate_bps_.at(idx).current() / directed_capacity_bps_.at(idx);
}

double FlowSimulator::node_load(NodeId id) const {
  double carried = 0.0;
  double capacity = 0.0;
  for (const auto& adj : graph_.neighbors(id)) {
    for (int dir = 0; dir < 2; ++dir) {
      const auto idx = DirectedLink{adj.link, dir}.index();
      carried += directed_rate_bps_.at(idx).current();
      capacity += directed_capacity_bps_.at(idx);
    }
  }
  return capacity > 0.0 ? carried / capacity : 0.0;
}

double FlowSimulator::average_link_utilization(DirectedLink dl) const {
  const auto idx = dl.index();
  return directed_rate_bps_.at(idx).average(engine_.now()) /
         directed_capacity_bps_.at(idx);
}

}  // namespace netpp
