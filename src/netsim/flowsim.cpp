#include "netpp/netsim/flowsim.h"

#include <cassert>
#include <cmath>
#include <cstring>

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "netpp/validation.h"

namespace netpp {

namespace {
constexpr double kEpsBits = 1.0;  // flows within 1 bit of done are done
// A link counts as strictly unsaturated only below this fraction of its
// capacity; the margin absorbs the tiny float drift the incremental
// carried-rate bookkeeping can accumulate between full solves.
constexpr double kUnsaturatedFraction = 1.0 - 1e-9;
}  // namespace

void FlowSimulator::LinkFlowPool::repack() {
  // Rewrite every block front to back with ~50% headroom, dropping the dead
  // space abandoned by earlier relocations. Arena size lands near 1.5x the
  // live membership, so the next repack is at least ~0.5*live pushes away:
  // amortized O(1) per push.
  std::size_t total = 0;
  for (Block& b : blocks_) {
    b.cap = b.count == 0 ? 0 : b.count + (b.count >> 1) + 2;
    total += b.cap;
  }
  soa::AlignedVec<std::uint32_t> new_flow;
  soa::AlignedVec<std::uint32_t> new_slot;
  new_flow.resize(total);  // uninitialized; every live run is copied below
  new_slot.resize(total);
  std::uint32_t at = 0;
  for (Block& b : blocks_) {
    if (b.count != 0) {
      std::memcpy(new_flow.data() + at, flow_of_.data() + b.begin,
                  b.count * sizeof(std::uint32_t));
      std::memcpy(new_slot.data() + at, slot_of_.data() + b.begin,
                  b.count * sizeof(std::uint32_t));
    }
    b.begin = at;
    at += b.cap;
  }
  flow_of_ = std::move(new_flow);
  slot_of_ = std::move(new_slot);
}

void FlowSimulator::LinkFlowPool::grow_block(std::size_t r) {
  if (flow_of_.size() > live_ * 2 + 4096) {
    repack();
    if (blocks_[r].count < blocks_[r].cap) return;
  }
  const std::uint32_t new_cap = blocks_[r].cap == 0 ? 4 : blocks_[r].cap * 2;
  const auto new_begin = static_cast<std::uint32_t>(flow_of_.size());
  // AlignedVec preserves contents across growth, so the old block can be
  // copied from within the (possibly reallocated) arena afterwards.
  flow_of_.resize(flow_of_.size() + new_cap);
  slot_of_.resize(slot_of_.size() + new_cap);
  Block& b = blocks_[r];
  if (b.count != 0) {
    std::memcpy(flow_of_.data() + new_begin, flow_of_.data() + b.begin,
                b.count * sizeof(std::uint32_t));
    std::memcpy(slot_of_.data() + new_begin, slot_of_.data() + b.begin,
                b.count * sizeof(std::uint32_t));
  }
  b.begin = new_begin;
  b.cap = new_cap;
}

FlowSimulator::FlowSimulator(const Graph& graph, Router& router,
                             SimEngine& engine, Config config)
    : graph_(graph),
      router_(router),
      engine_(engine),
      config_(config),
      route_cache_(router, RouteCache::Config{config.max_ecmp_paths, true}) {
  validate_config();
  directed_capacity_bps_.reserve(graph.num_links() * 2);
  directed_rate_bps_.reserve(graph.num_links() * 2);
  for (const auto& link : graph.links()) {
    for (int dir = 0; dir < 2; ++dir) {
      directed_capacity_bps_.push_back(link.capacity.bits_per_second());
      directed_rate_bps_.emplace_back(0.0, engine.now());
    }
  }
  carried_bps_.assign(directed_capacity_bps_.size(), 0.0);
  link_factor_.assign(graph.num_links(), 1.0);
  if (config_.telemetry != nullptr) {
    init_instruments(config_.telemetry->metrics());
    events_ = &config_.telemetry->events();
  } else {
    // Detached: the counters still need slots (realloc_stats() reads them
    // back), so park them in a simulator-private registry.
    local_metrics_ = std::make_unique<telemetry::MetricRegistry>();
    init_instruments(*local_metrics_);
  }
}

FlowSimulator::FlowSimulator(const Graph& graph, Router& router,
                             SimEngine& engine)
    : FlowSimulator(graph, router, engine, Config{}) {}

void FlowSimulator::validate_config() const {
  validation::require(config_.max_ecmp_paths >= 1, "FlowSimulator::Config",
                      "max_ecmp_paths must be at least 1");
  const double cap = config_.flow_rate_cap.value();
  validation::require(std::isfinite(cap) && cap >= 0.0,
                      "FlowSimulator::Config",
                      "flow_rate_cap must be finite and non-negative "
                      "(0 disables the cap)");
  // The Graph constructor rejects non-positive capacities, but a simulator
  // over a zero-capacity link would divide by zero in the share seeding;
  // keep the guard local too.
  for (const auto& link : graph_.links()) {
    validation::require(std::isfinite(link.capacity.value()) &&
                            link.capacity.value() > 0.0,
                        "FlowSimulator::Config",
                        "every link capacity must be finite and positive");
  }
}

FlowSimulator::~FlowSimulator() { flush_metrics(); }

void FlowSimulator::init_instruments(telemetry::MetricRegistry& registry) {
  inst_.full_solves = registry.counter("netsim.realloc.full_solves", "solves",
                                       "reallocations that ran the solver");
  inst_.fast_arrivals =
      registry.counter("netsim.realloc.fast_arrivals", "events",
                       "arrivals admitted at cap without a re-solve");
  inst_.fast_departures =
      registry.counter("netsim.realloc.fast_departures", "events",
                       "departures absorbed without a re-solve");
  inst_.binding_solves =
      registry.counter("netsim.realloc.binding_solves", "solves",
                       "reallocations resolved on the binding subset");
  inst_.binding_subset_flows =
      registry.counter("netsim.realloc.binding_subset_flows", "flows",
                       "total flows handed to the solver by binding solves");
  inst_.topology_changes =
      registry.counter("netsim.realloc.topology_changes", "events",
                       "node/link enable, disable, and degrade events");
  inst_.reroutes = registry.counter("netsim.realloc.reroutes", "flows",
                                    "flows moved to a surviving path");
  inst_.stranded = registry.counter("netsim.realloc.stranded", "flows",
                                    "flows parked with no surviving path");
  inst_.resumed = registry.counter("netsim.realloc.resumed", "flows",
                                   "stranded flows re-admitted");
  inst_.cache_hits =
      registry.counter("netsim.route_cache.hits", "lookups",
                       "route lookups served from the cache");
  inst_.cache_misses = registry.counter("netsim.route_cache.misses", "lookups",
                                        "route lookups that ran the BFS");
  inst_.cache_epoch_flushes =
      registry.counter("netsim.route_cache.epoch_flushes", "flushes",
                       "whole-cache drops on topology epoch change");
  inst_.solver_solves = registry.counter("netsim.solver.solves", "solves",
                                         "max-min solver invocations");
  inst_.solver_flows =
      registry.counter("netsim.solver.flows_solved", "flows",
                       "total flows across solver invocations");
  inst_.active_flows = registry.gauge("netsim.active_flows", "flows",
                                      "flows currently in flight");
  inst_.completed_flows =
      registry.gauge("netsim.completed_flows", "flows", "flows finished");
  inst_.stranded_flows = registry.gauge("netsim.stranded_flows", "flows",
                                        "flows parked without a path");
  inst_.unroutable_flows =
      registry.gauge("netsim.unroutable_flows", "flows",
                     "flows dropped as permanently unroutable");
  inst_.cache_entries = registry.gauge("netsim.route_cache.entries", "paths",
                                       "resident route-cache entries");
  inst_.cache_pool_bytes = registry.gauge("netsim.route_cache.pool_bytes",
                                          "bytes", "resident cache bytes");
  inst_.fct = registry.histogram(
      "netsim.fct_seconds",
      {1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 0.1, 0.3, 1.0, 3.0, 10.0, 30.0},
      "seconds", "flow completion times");
}

void FlowSimulator::update_flow_gauges() {
  inst_.active_flows.set(static_cast<double>(active_.size()));
  inst_.completed_flows.set(static_cast<double>(completed_.size()));
  inst_.stranded_flows.set(static_cast<double>(stranded_.size()));
}

void FlowSimulator::flush_metrics() {
  const RouteCacheStats cache = route_cache_.stats();
  inst_.cache_hits.set(cache.hits);
  inst_.cache_misses.set(cache.misses);
  inst_.cache_epoch_flushes.set(cache.epoch_flushes);
  inst_.cache_entries.set(static_cast<double>(cache.entries));
  inst_.cache_pool_bytes.set(static_cast<double>(cache.pool_bytes));
  inst_.solver_solves.set(solver_.stats().solves);
  inst_.solver_flows.set(solver_.stats().flows_solved);
  inst_.unroutable_flows.set(static_cast<double>(unroutable_));
  update_flow_gauges();
}

const FlowSimulator::ReallocStats& FlowSimulator::realloc_stats() const {
  realloc_stats_.full_solves = inst_.full_solves.value();
  realloc_stats_.fast_arrivals = inst_.fast_arrivals.value();
  realloc_stats_.fast_departures = inst_.fast_departures.value();
  realloc_stats_.binding_solves = inst_.binding_solves.value();
  realloc_stats_.binding_subset_flows = inst_.binding_subset_flows.value();
  realloc_stats_.topology_changes = inst_.topology_changes.value();
  realloc_stats_.reroutes = inst_.reroutes.value();
  realloc_stats_.stranded = inst_.stranded.value();
  realloc_stats_.resumed = inst_.resumed.value();
  realloc_stats_.route_cache = route_cache_.stats();
  return realloc_stats_;
}

double FlowSimulator::current_mean_utilization() const {
  const UtilizationTotals t = utilization_totals();
  return t.capacity_bps > 0.0 ? t.carried_bps / t.capacity_bps : 0.0;
}

FlowSimulator::UtilizationTotals FlowSimulator::utilization_totals() const {
  UtilizationTotals t;
  for (std::size_t r = 0; r < directed_capacity_bps_.size(); ++r) {
    t.carried_bps += carried_bps_[r];
    t.capacity_bps += directed_capacity_bps_[r];
  }
  return t;
}

FlowId FlowSimulator::submit(const FlowSpec& spec) {
  if (spec.src >= graph_.num_nodes() || spec.dst >= graph_.num_nodes()) {
    throw std::out_of_range("FlowSpec: flow endpoint does not exist");
  }
  validation::require(spec.src != spec.dst, "FlowSpec",
                      "src must differ from dst");
  validation::require(
      std::isfinite(spec.size.value()) && spec.size.value() > 0.0, "FlowSpec",
      "size must be finite and positive");
  validation::require_finite(spec.start.value(), "FlowSpec",
                             "start time must be finite");
  const FlowId id = next_id_++;
  const SimEngine::EventId event =
      engine_.schedule_at(spec.start, [this, id] { admit_pending(id); });
  pending_submits_.emplace(id, PendingSubmit{spec, event});
  return id;
}

void FlowSimulator::admit_pending(FlowId id) {
  const auto it = pending_submits_.find(id);
  assert(it != pending_submits_.end());
  const FlowSpec spec = it->second.spec;
  pending_submits_.erase(it);
  admit(spec, id);
}

void FlowSimulator::admit(FlowSpec spec, FlowId id) {
  const Seconds now = engine_.now();
  maybe_compact_links();
  if (!route_flow(spec.src, spec.dst, id, route_scratch_)) {
    if (config_.strand_unroutable) {
      inst_.stranded.inc();
      stranded_.push_back(StrandedFlow{id, spec, spec.size.value(), now});
      if (events_) events_->begin_span("stranded", "flow.stranded", now, id);
    } else {
      ++unroutable_;
      if (events_) events_->instant("flows", "flow.unroutable", now);
    }
    update_flow_gauges();
    return;
  }
  if (events_) {
    events_->begin_span("flows", "flow", now, id, "bits", spec.size.value());
  }

  // Settle first (the new flow is not in active_ yet — it has made no
  // progress), then append it and enroll its links. Settling before the
  // append is equivalent to the other way around: the new flow's rate is
  // zero until the reallocation below.
  settle_progress(now);
  push_active(id, spec, spec.size.value(), now);
  const std::size_t index = active_.size() - 1;
  store_flow_links(static_cast<std::uint32_t>(index), route_scratch_);
  if (try_fast_arrival(now, index)) {
    schedule_completion_for_cap_arrival(index);
    update_flow_gauges();
    if (listener_) listener_(now);
  } else {
    // Only the new flow's links gained a flow; seed the binding-subset
    // closure there.
    const auto links = flow_links(index);
    seed_links_.assign(links.begin(), links.end());
    seed_valid_ = true;
    reallocate(now);
  }
}

void FlowSimulator::push_active(FlowId id, const FlowSpec& spec,
                                double remaining_bits, Seconds now) {
  active_.push_back(ActiveFlow{id, spec, now});
  flow_rate_bps_.push_back(0.0);
  flow_remaining_.push_back(remaining_bits);
  flow_lbegin_.push_back(0);
  flow_lcount_.push_back(0);
  filt_begin_.push_back(0);
  filt_count_.push_back(0);
  filt_cap_.push_back(0);
}

void FlowSimulator::swap_remove_active(std::size_t i) {
  const std::size_t last = active_.size() - 1;
  if (i != last) {
    std::swap(active_[i], active_[last]);
    flow_rate_bps_[i] = flow_rate_bps_[last];
    flow_remaining_[i] = flow_remaining_[last];
    flow_lbegin_[i] = flow_lbegin_[last];
    flow_lcount_[i] = flow_lcount_[last];
    filt_begin_[i] = filt_begin_[last];
    filt_count_[i] = filt_count_[last];
    filt_cap_[i] = filt_cap_[last];
    renumber_flow_links(static_cast<std::uint32_t>(i));
  }
  active_.pop_back();
  flow_rate_bps_.pop_back();
  flow_remaining_.pop_back();
  flow_lbegin_.pop_back();
  flow_lcount_.pop_back();
  filt_begin_.pop_back();
  filt_count_.pop_back();
  filt_cap_.pop_back();
}

void FlowSimulator::store_flow_links(std::uint32_t index,
                                     const std::vector<std::uint32_t>& links) {
  if (link_flows_.num_links() < directed_capacity_bps_.size()) {
    link_flows_.ensure_links(directed_capacity_bps_.size());
    touched_pos_.resize(directed_capacity_bps_.size(), 0);
    flag_lt_cap_.resize(directed_capacity_bps_.size(), 0);
  }
  flow_lbegin_[index] = static_cast<std::uint32_t>(flow_links_.size());
  flow_lcount_[index] = static_cast<std::uint32_t>(links.size());
  for (std::uint32_t r : links) {
    const auto slot = static_cast<std::uint32_t>(flow_links_.size());
    flow_links_.push_back(r);
    if (link_flows_.empty(r)) {
      touched_pos_[r] = static_cast<std::uint32_t>(touched_links_.size());
      touched_links_.push_back(r);
    }
    flow_adj_pos_.push_back(link_flows_.push(r, index, slot));
  }
  live_hops_ += links.size();
  // Membership is enrolled, so later flag flips reach this flow; snapshot
  // the current flags into its filtered list.
  filt_build(index);
}

void FlowSimulator::release_flow_links(std::size_t i) {
  const std::size_t end = flow_lbegin_[i] + flow_lcount_[i];
  for (std::size_t s = flow_lbegin_[i]; s < end; ++s) {
    const std::uint32_t r = flow_links_[s];
    const std::uint32_t moved = link_flows_.remove(r, flow_adj_pos_[s]);
    if (moved != LinkFlowPool::kNone) flow_adj_pos_[moved] = flow_adj_pos_[s];
    if (link_flows_.empty(r)) {
      const std::uint32_t last = touched_links_.back();
      touched_links_[touched_pos_[r]] = last;
      touched_pos_[last] = touched_pos_[r];
      touched_links_.pop_back();
    }
  }
  live_hops_ -= flow_lcount_[i];
  // Abandon the filtered block too (space reclaimed by maybe_compact_filt);
  // the flow is out of every member list, so no flip will touch it again.
  filt_live_ -= filt_count_[i];
  filt_count_[i] = 0;
  filt_cap_[i] = 0;
}

void FlowSimulator::renumber_flow_links(std::uint32_t index) {
  const std::size_t end = flow_lbegin_[index] + flow_lcount_[index];
  for (std::size_t s = flow_lbegin_[index]; s < end; ++s) {
    link_flows_.set_flow(flow_links_[s], flow_adj_pos_[s], index);
  }
}

void FlowSimulator::set_share_flag(std::uint32_t r, std::uint8_t v) {
  if (flag_lt_cap_[r] == v) return;
  flag_lt_cap_[r] = v;
  // Flip: splice r into / out of every member flow's filtered list. Member
  // lists are tiny (a flow crosses a handful of links), and flips are rare
  // relative to events (a link's equal share has to cross the cap), so this
  // is far cheaper than re-filtering every closure flow's full link list on
  // every solve.
  if (v != 0) {
    for (std::uint32_t f : link_flows_.flows(r)) filt_append(f, r);
  } else {
    for (std::uint32_t f : link_flows_.flows(r)) filt_remove(f, r);
  }
}

void FlowSimulator::filt_append(std::uint32_t f, std::uint32_t l) {
  if (filt_count_[f] == filt_cap_[f]) {
    const std::uint32_t new_cap = filt_cap_[f] == 0 ? 2 : filt_cap_[f] * 2;
    const auto new_begin = static_cast<std::uint32_t>(filt_arena_.size());
    // AlignedVec preserves contents across growth, so the old block can be
    // copied from within the (possibly reallocated) arena afterwards.
    filt_arena_.resize(filt_arena_.size() + new_cap);
    if (filt_count_[f] != 0) {
      std::memcpy(filt_arena_.data() + new_begin,
                  filt_arena_.data() + filt_begin_[f],
                  filt_count_[f] * sizeof(std::uint32_t));
    }
    filt_begin_[f] = new_begin;
    filt_cap_[f] = new_cap;
  }
  filt_arena_[filt_begin_[f] + filt_count_[f]++] = l;
  ++filt_live_;
}

void FlowSimulator::filt_remove(std::uint32_t f, std::uint32_t l) {
  const std::uint32_t begin = filt_begin_[f];
  const std::uint32_t count = filt_count_[f];
  for (std::uint32_t k = 0; k < count; ++k) {
    if (filt_arena_[begin + k] == l) {
      filt_arena_[begin + k] = filt_arena_[begin + count - 1];
      --filt_count_[f];
      --filt_live_;
      return;
    }
  }
  // Unreachable while the pointwise list == flags invariant holds: a 1->0
  // flip only happens on a link every member's list already contains.
  assert(false && "filtered-list invariant violated");
}

void FlowSimulator::filt_build(std::uint32_t index) {
  const auto links = flow_links(index);
  const auto begin = static_cast<std::uint32_t>(filt_arena_.size());
  // Tight block (cap == filtered count): flips are rare, and the first
  // append just relocates the block with headroom.
  std::uint32_t count = 0;
  for (std::uint32_t l : links) {
    if (flag_lt_cap_[l] != 0) {
      filt_arena_.push_back(l);
      ++count;
    }
  }
  filt_begin_[index] = begin;
  filt_count_[index] = count;
  filt_cap_[index] = count;
  filt_live_ += count;
}

void FlowSimulator::maybe_compact_filt() {
  if (filt_arena_.size() < 1024 || filt_arena_.size() < filt_live_ * 2) {
    return;
  }
  // Rewrite every live block into a fresh arena (keeping tight caps);
  // abandoned blocks from departures and relocations are dropped. Blocks sit
  // at arbitrary offsets (relocations append at the tail in flip order), so
  // an in-place slide could overwrite a block not yet copied — same reason
  // the membership pool's repack builds a new arena. Amortized O(1) per
  // mutation.
  soa::AlignedVec<std::uint32_t> packed;
  packed.resize(filt_live_);  // uninitialized; every live block copied below
  std::uint32_t at = 0;
  for (std::size_t i = 0; i < active_.size(); ++i) {
    const std::uint32_t count = filt_count_[i];
    if (count != 0) {
      std::memcpy(packed.data() + at, filt_arena_.data() + filt_begin_[i],
                  count * sizeof(std::uint32_t));
    }
    filt_begin_[i] = at;
    filt_cap_[i] = count;
    at += count;
  }
  filt_arena_ = std::move(packed);
}

void FlowSimulator::maybe_compact_links() {
  maybe_compact_filt();
  // Repack once dead blocks outweigh live data. Offsets (not pointers)
  // reference the arena, so moving blocks means rewriting link_begin and
  // the membership entries' slot back-references.
  if (flow_links_.size() < 1024 || flow_links_.size() < live_hops_ * 2) {
    return;
  }
  flow_links_scratch_.clear();
  flow_links_scratch_.reserve(live_hops_);
  adj_pos_scratch_.clear();
  adj_pos_scratch_.reserve(live_hops_);
  for (std::size_t i = 0; i < active_.size(); ++i) {
    const auto begin = static_cast<std::uint32_t>(flow_links_scratch_.size());
    const std::size_t end = flow_lbegin_[i] + flow_lcount_[i];
    for (std::size_t s = flow_lbegin_[i]; s < end; ++s) {
      const std::uint32_t r = flow_links_[s];
      const std::uint32_t pos = flow_adj_pos_[s];
      link_flows_.set_slot(r, pos,
                           static_cast<std::uint32_t>(flow_links_scratch_.size()));
      flow_links_scratch_.push_back(r);
      adj_pos_scratch_.push_back(pos);
    }
    flow_lbegin_[i] = begin;
  }
  flow_links_.swap(flow_links_scratch_);
  flow_adj_pos_.swap(adj_pos_scratch_);
}

void FlowSimulator::settle_progress(Seconds now) {
  const double dt = (now - last_settle_).value();
  if (dt > 0.0) {
    soa::settle(flow_remaining_.data(), flow_rate_bps_.data(), dt,
                active_.size());
  }
  last_settle_ = now;
}

void FlowSimulator::set_directed_rate(Seconds now, std::size_t index,
                                      double value) {
  carried_bps_[index] = value;
  directed_rate_bps_[index].set(now, value);
}

void FlowSimulator::directed_indices_of(const Path& path,
                                        std::vector<std::uint32_t>& out) const {
  out.clear();
  out.reserve(path.links.size());
  NodeId at = path.src;
  for (LinkId lid : path.links) {
    const Link& link = graph_.link(lid);
    const int dir = (at == link.a) ? 0 : 1;
    out.push_back(static_cast<std::uint32_t>(DirectedLink{lid, dir}.index()));
    at = link.other(at);
  }
}

bool FlowSimulator::route_flow(NodeId src, NodeId dst, FlowId id,
                               std::vector<std::uint32_t>& out) {
  if (config_.use_route_cache) {
    const bool record = events_ != nullptr && events_->enabled();
    const std::uint64_t misses_before =
        record ? route_cache_.stats().misses : 0;
    const auto selected = route_cache_.route(src, dst, id);
    if (record && route_cache_.stats().misses != misses_before) {
      events_->instant("route_cache", "miss", engine_.now());
    }
    if (!selected) return false;
    const std::size_t hops = selected->hops();
    out.clear();
    out.reserve(hops);
    NodeId at = src;
    for (std::size_t i = 0; i < hops; ++i) {
      const LinkId lid = selected->link(i);
      const Link& link = graph_.link(lid);
      const int dir = (at == link.a) ? 0 : 1;
      out.push_back(static_cast<std::uint32_t>(DirectedLink{lid, dir}.index()));
      at = link.other(at);
    }
    return true;
  }
  const auto path = router_.ecmp_route(src, dst, id, config_.max_ecmp_paths);
  if (!path) return false;
  directed_indices_of(*path, out);
  return true;
}

bool FlowSimulator::path_alive(std::size_t i) const {
  const NodeId dst = active_[i].spec.dst;
  for (std::uint32_t idx : flow_links(i)) {
    const auto lid = static_cast<LinkId>(idx / 2);
    if (!router_.link_enabled_unchecked(lid)) return false;
    const Link& link = graph_.link(lid);
    // Direction 0 traverses a->b, so the node entered is b (and vice
    // versa); intermediate nodes must be enabled, the destination is exempt.
    const NodeId entered = (idx % 2 == 0) ? link.b : link.a;
    if (entered != dst && !router_.node_enabled_unchecked(entered)) {
      return false;
    }
  }
  return true;
}

void FlowSimulator::set_node_enabled(NodeId id, bool enabled) {
  if (id >= graph_.num_nodes()) {
    throw std::out_of_range("topology change: node does not exist");
  }
  if (router_.node_enabled(id) == enabled) return;
  if (events_) {
    events_->instant("topology", enabled ? "node.up" : "node.down",
                     engine_.now(), "node", static_cast<double>(id));
  }
  router_.set_node_enabled(id, enabled);
  apply_topology_change();
}

void FlowSimulator::set_link_enabled(LinkId id, bool enabled) {
  if (id >= graph_.num_links()) {
    throw std::out_of_range("topology change: link does not exist");
  }
  if (router_.link_enabled(id) == enabled) return;
  if (events_) {
    events_->instant("topology", enabled ? "link.up" : "link.down",
                     engine_.now(), "link", static_cast<double>(id));
  }
  router_.set_link_enabled(id, enabled);
  apply_topology_change();
}

void FlowSimulator::set_link_capacity_factor(LinkId id, double factor) {
  if (id >= graph_.num_links()) {
    throw std::out_of_range("topology change: link does not exist");
  }
  if (!std::isfinite(factor) || factor <= 0.0 || factor > 1.0) {
    throw std::invalid_argument(
        "topology change: capacity factor must be in (0, 1]");
  }
  if (link_factor_[id] == factor) return;
  if (events_) {
    events_->instant("topology", "link.capacity_factor", engine_.now(),
                     "factor", factor);
  }
  link_factor_[id] = factor;
  const double base = graph_.link(id).capacity.bits_per_second();
  directed_capacity_bps_[static_cast<std::size_t>(id) * 2] = base * factor;
  directed_capacity_bps_[static_cast<std::size_t>(id) * 2 + 1] =
      base * factor;
  apply_topology_change();
}

void FlowSimulator::apply_topology_change() {
  const Seconds now = engine_.now();
  inst_.topology_changes.inc();
  const std::uint64_t flushes_before = route_cache_.stats().epoch_flushes;
  settle_progress(now);
  if (config_.use_route_cache) {
    // Warm the cache index for the whole reroute burst up front: the grouped
    // per-flow lookups below then land on resident lines instead of
    // serializing one table miss each. Strictly read-only, so the reroute /
    // strand processing order (and with it the solver's tie-breaking) is
    // exactly what it was without the pre-pass.
    for (std::size_t i = 0; i < active_.size(); ++i) {
      if (!path_alive(i)) {
        route_cache_.prefetch(active_[i].spec.src, active_[i].spec.dst);
      }
    }
  }
  // Re-validate every active flow's path; move broken ones to a surviving
  // ECMP path or park them on the stranded list.
  for (std::size_t i = 0; i < active_.size();) {
    if (path_alive(i)) {
      ++i;
      continue;
    }
    const ActiveFlow& flow = active_[i];
    if (route_flow(flow.spec.src, flow.spec.dst, flow.id, route_scratch_)) {
      release_flow_links(i);
      store_flow_links(static_cast<std::uint32_t>(i), route_scratch_);
      inst_.reroutes.inc();
      if (events_) {
        events_->instant("topology", "flow.reroute", now, "flow",
                         static_cast<double>(flow.id));
      }
      ++i;
    } else {
      release_flow_links(i);
      inst_.stranded.inc();
      if (events_) {
        // Close the in-flight span; a strand span runs until resume.
        events_->end_span("flows", "flow", now, flow.id);
        events_->begin_span("stranded", "flow.stranded", now, flow.id);
      }
      stranded_.push_back(
          StrandedFlow{flow.id, flow.spec, flow_remaining_[i], now});
      swap_remove_active(i);
    }
  }
  // A recovery may have reconnected previously stranded flows.
  retry_stranded(now);
  if (events_ != nullptr &&
      route_cache_.stats().epoch_flushes != flushes_before) {
    events_->instant("route_cache", "flush", now);
  }
  reallocate(now);
}

void FlowSimulator::retry_stranded(Seconds now) {
  if (config_.use_route_cache) {
    // Same batching as apply_topology_change: sweep the whole parked list
    // through the cache index before the routing loop.
    for (const StrandedFlow& parked : stranded_) {
      route_cache_.prefetch(parked.spec.src, parked.spec.dst);
    }
  }
  for (std::size_t i = 0; i < stranded_.size();) {
    StrandedFlow& parked = stranded_[i];
    if (!route_flow(parked.spec.src, parked.spec.dst, parked.id,
                    route_scratch_)) {
      ++i;
      continue;
    }
    push_active(parked.id, parked.spec, parked.remaining_bits, now);
    store_flow_links(static_cast<std::uint32_t>(active_.size() - 1),
                     route_scratch_);
    const double stranded_for = (now - parked.stranded_at).value();
    strand_durations_.push_back(stranded_for);
    stranded_bit_seconds_done_ += stranded_for * parked.remaining_bits;
    inst_.resumed.inc();
    if (events_) {
      events_->end_span("stranded", "flow.stranded", now, parked.id);
      events_->begin_span("flows", "flow", now, parked.id, "bits",
                          parked.remaining_bits);
    }
    if (i + 1 != stranded_.size()) std::swap(stranded_[i], stranded_.back());
    stranded_.pop_back();
  }
}

double FlowSimulator::stranded_bit_seconds(Seconds now) const {
  double total = stranded_bit_seconds_done_;
  for (const auto& parked : stranded_) {
    total += (now - parked.stranded_at).value() * parked.remaining_bits;
  }
  return total;
}

bool FlowSimulator::try_fast_arrival(Seconds now, std::size_t i) {
  if (!config_.incremental_reallocation) return false;
  const double cap_bps = config_.flow_rate_cap.bits_per_second();
  if (cap_bps <= 0.0) return false;
  for (std::uint32_t r : flow_links(i)) {
    if (carried_bps_[r] + cap_bps >
        directed_capacity_bps_[r] * kUnsaturatedFraction) {
      return false;
    }
  }
  // Every link the flow crosses keeps headroom at the cap, so the flow's
  // max-min rate is its cap and nobody else's bottleneck moves. Membership
  // changed here, so refresh the persistent binding flags (the member lists
  // already include this flow).
  flow_rate_bps_[i] = cap_bps;
  for (std::uint32_t r : flow_links(i)) {
    set_directed_rate(now, r, carried_bps_[r] + cap_bps);
    set_share_flag(r, directed_capacity_bps_[r] /
                               static_cast<double>(link_flows_.count(r)) <
                           cap_bps
                       ? 1
                       : 0);
  }
  inst_.fast_arrivals.inc();
  return true;
}

bool FlowSimulator::try_fast_departure(Seconds now, std::size_t i) {
  if (!config_.incremental_reallocation) return false;
  for (std::uint32_t r : flow_links(i)) {
    if (carried_bps_[r] >= directed_capacity_bps_[r] * kUnsaturatedFraction) {
      return false;
    }
  }
  // None of the flow's links was a bottleneck (saturated), so removing it
  // hands no other flow extra bandwidth. Refresh the persistent binding
  // flags with the post-departure counts (the caller releases the flow's
  // membership right after this, so exclude it here).
  const double cap_bps = config_.flow_rate_cap.bits_per_second();
  const double rate = flow_rate_bps_[i];
  for (std::uint32_t r : flow_links(i)) {
    set_directed_rate(now, r, std::max(0.0, carried_bps_[r] - rate));
    if (cap_bps > 0.0) {
      const std::uint32_t n = link_flows_.count(r) - 1;
      set_share_flag(
          r, n != 0 && directed_capacity_bps_[r] / static_cast<double>(n) <
                           cap_bps
                 ? 1
                 : 0);
    }
  }
  inst_.fast_departures.inc();
  return true;
}

void FlowSimulator::reallocate(Seconds now) {
  inst_.full_solves.inc();
  maybe_compact_links();
  const double cap_bps = config_.flow_rate_cap.bits_per_second();
  bool targeted = false;
  if (config_.incremental_reallocation && cap_bps > 0.0) {
    // Uniform cap: progressive filling can only freeze a flow below the cap
    // at a link whose equal share starts below the cap (shares never
    // decrease as filling proceeds, and a link with capacity/count >= cap
    // keeps its share >= cap through every freeze). So the global solution
    // is: flows crossing a binding link get their max-min rate from the
    // subproblem over just those flows (shared non-binding links cannot
    // constrain them either), and every other flow gets exactly the cap —
    // the same doubles the full solve produces, at the cost of the crowded
    // neighborhood instead of the whole fabric.
    targeted = reallocate_binding_subset(cap_bps);
  } else {
    // Assemble the fair-share problem as views over the flows' own resource
    // arrays — no copies, and the solver reuses its workspace.
    problem_.clear();
    problem_.reserve(active_.size());
    for (std::size_t i = 0; i < active_.size(); ++i) {
      problem_.push_back({flow_links(i), cap_bps > 0.0 ? cap_bps : 0.0});
    }
    const auto rates = solver_.solve(problem_, directed_capacity_bps_);
    if (!active_.empty()) {
      std::memcpy(flow_rate_bps_.data(), rates.data(),
                  active_.size() * sizeof(double));
    }
  }

  if (targeted) {
    // Seeded solve: a carried sum moves only where a member flow's rate
    // changed or the membership itself did, and bind_sub_links_ lists
    // exactly those links — recompute them from the membership lists —
    // plus seed links whose last flow departed, which drop to zero.
    for (std::uint32_t r : bind_sub_links_) {
      double sum = 0.0;
      for (std::uint32_t f : link_flows_.flows(r)) {
        sum += flow_rate_bps_[f];
      }
      if (sum != carried_bps_[r]) set_directed_rate(now, r, sum);
    }
    for (std::uint32_t r : seed_links_) {
      if (link_flows_.empty(r) && carried_bps_[r] != 0.0) {
        set_directed_rate(now, r, 0.0);
      }
    }
  } else {
    carried_scratch_.assign(directed_capacity_bps_.size(), 0.0);
    for (std::size_t i = 0; i < active_.size(); ++i) {
      const double rate = flow_rate_bps_[i];
      for (std::uint32_t r : flow_links(i)) {
        carried_scratch_[r] += rate;
      }
    }
    for (std::size_t r = 0; r < carried_scratch_.size(); ++r) {
      if (carried_scratch_[r] != carried_bps_[r]) {
        set_directed_rate(now, r, carried_scratch_[r]);
      }
    }
  }

  seed_valid_ = false;
  if (events_ != nullptr && events_->enabled()) {
    const bool binding = config_.incremental_reallocation && cap_bps > 0.0;
    events_->instant(
        "solver", targeted ? "solve.seeded" : "solve.full", now, "flows",
        static_cast<double>(binding ? bind_discovered_ : active_.size()));
  }
  schedule_next_completion();
  update_flow_gauges();
  if (listener_) listener_(now);
}

bool FlowSimulator::reallocate_binding_subset(double cap_bps) {
  if (bind_flag_.size() < directed_capacity_bps_.size()) {
    bind_flag_.resize(directed_capacity_bps_.size(), 0);
    bind_link_seen_.resize(directed_capacity_bps_.size(), 0);
    bind_sub_seen_.resize(directed_capacity_bps_.size(), 0);
  }
  if (bind_flow_seen_.size() < active_.size()) {
    bind_flow_seen_.resize(active_.size(), 0);
  }
  if (++bind_gen_ == 0) {
    // Stamp wrapped: invalidate everything once and restart at 1.
    std::fill(bind_link_seen_.begin(), bind_link_seen_.end(), 0);
    std::fill(bind_flow_seen_.begin(), bind_flow_seen_.end(), 0);
    std::fill(bind_sub_seen_.begin(), bind_sub_seen_.end(), 0);
    bind_gen_ = 1;
  }

  bind_flows_.clear();
  std::size_t capped_direct = 0;  // closure flows assigned the cap directly
  if (!seed_valid_) {
    // Full evaluation with a tight-candidate refinement. A link can freeze
    // flows (and thus couple them) only if its capacity can actually be
    // consumed: with lb(f) a lower bound on every flow's final rate (rates
    // never fall below the smallest initial equal share they see, nor above
    // the cap) and ub(f) = min(cap, capacity - sum of the other flows' lb)
    // an upper bound, a link with sum(ub) < capacity keeps slack through
    // the whole filling and never constrains anyone. The 1e-9 relative
    // margins make the bounds robust to the float dust the solver's
    // residual chains can accumulate (same spirit as kUnsaturatedFraction).
    // The extra O(hops) passes are worth it only here: full evaluations
    // (startup, topology changes) solve the whole fabric, while the seeded
    // path below already starts from a small neighborhood.
    constexpr double kDown = 1.0 - 1e-9;
    constexpr double kUp = 1.0 + 1e-9;
    if (bind_share0_.size() < directed_capacity_bps_.size()) {
      bind_share0_.resize(directed_capacity_bps_.size(), 0.0);
      bind_slb_.resize(directed_capacity_bps_.size(), 0.0);
      bind_sub_.resize(directed_capacity_bps_.size(), 0.0);
    }
    if (bind_lb_.size() < active_.size()) {
      bind_lb_.resize(active_.size(), 0.0);
    }
    for (std::uint32_t r : touched_links_) {
      bind_share0_[r] =
          directed_capacity_bps_[r] /
          static_cast<double>(link_flows_.count(r));
      bind_slb_[r] = 0.0;
      bind_sub_[r] = 0.0;
    }
    for (std::size_t i = 0; i < active_.size(); ++i) {
      double lb = cap_bps;
      for (std::uint32_t r : flow_links(i)) {
        lb = std::min(lb, bind_share0_[r]);
      }
      lb *= kDown;
      bind_lb_[i] = lb;
      for (std::uint32_t r : flow_links(i)) bind_slb_[r] += lb;
    }
    for (std::size_t i = 0; i < active_.size(); ++i) {
      const double lb = bind_lb_[i];
      double ub = cap_bps;
      for (std::uint32_t r : flow_links(i)) {
        ub = std::min(ub,
                      directed_capacity_bps_[r] - (bind_slb_[r] - lb) * kDown);
      }
      ub = std::max(ub, 0.0) * kUp;
      for (std::uint32_t r : flow_links(i)) bind_sub_[r] += ub;
    }
    for (std::uint32_t r : touched_links_) {
      bind_flag_[r] = directed_capacity_bps_[r] <= bind_sub_[r] * kUp ? 1 : 0;
      // Rebuild the persistent share flags too: a full evaluation is the
      // one place capacities may have changed under them (topology events
      // land here), and it visits every populated link anyway. Flips
      // propagate into the filtered lists, so those survive capacity
      // changes without a rebuild.
      set_share_flag(r, bind_share0_[r] < cap_bps ? 1 : 0);
    }
    // Every flow crossing a binding candidate goes to the solver, everyone
    // else gets the cap.
    for (std::size_t i = 0; i < active_.size(); ++i) {
      bool crosses = false;
      for (std::uint32_t r : flow_links(i)) {
        if (bind_flag_[r] != 0) {
          crosses = true;
          break;
        }
      }
      if (crosses) bind_flows_.push_back(static_cast<std::uint32_t>(i));
    }
    std::fill_n(flow_rate_bps_.data(), active_.size(), cap_bps);
  } else {
    // Seeded walk: the cheap share0 < cap flag suffices. It covers every
    // link that can freeze below the cap in the NEW state (freezing below
    // the cap needs an initial equal share below the cap), and every link
    // that froze flows in the OLD state too: since the last solve, counts
    // changed only on this event's seed links (walked unconditionally) and
    // on links fast-path events touched — and fast-path flows are
    // cap-frozen flows crossing only unsaturated links, never a link that
    // froze anyone, so those refreshes cannot unflag an old freezing link.
    // The persistent flags are refreshed at every membership change, so
    // only this event's seeds need new divisions here (the same division
    // the solver uses to seed its heap, so the comparison sees the exact
    // doubles the filling starts from).
    for (std::uint32_t r : seed_links_) {
      if (link_flows_.empty(r)) continue;
      set_share_flag(r, directed_capacity_bps_[r] /
                                static_cast<double>(link_flows_.count(r)) <
                            cap_bps
                        ? 1
                        : 0);
    }
    // Seeded closure: the event changed flow counts only on the seed links,
    // so only flows reachable from them — across a seed link directly, or
    // transitively through binding links (non-binding links never constrain
    // anyone, so they carry no coupling) — can see a different max-min
    // rate. Everything outside the closure keeps its cached rate: its
    // subproblem inputs are unchanged, so a fresh solve would reproduce the
    // same doubles.
    // The walk doubles as the problem build: each flow is discovered exactly
    // once, so its solver row — the flow's incrementally-maintained filtered
    // link list (see filt_links / set_share_flag), streamed into the solver
    // CSR arena — is laid down on the spot, alongside the deduplicated link
    // lists. Filtering is exact in seeded mode: the flag is
    // "full-population equal share below the cap", and the subproblem share
    // of an unflagged link is at least its full share (fewer flows, same
    // capacity), so its heap key never drops below the cap: the cap branch
    // beats it in every round (ties included via the gate's >= and the
    // exact branch's <=), it never becomes the tight link, and its residual
    // bookkeeping is write-only. Dropping it changes no decision and no
    // computed double — but shrinks the solver's counting, CSR, heap, and
    // freeze work to the contended core. A closure flow with an empty
    // filtered list would freeze at exactly the cap with zero link
    // interaction, so it bypasses the solver and takes the cap directly.
    // Discovery order (and with it solver row order) follows the filtered
    // lists' internal order, which is arbitrary; the solution is row-order
    // independent because every freeze in one filling round subtracts the
    // same value. (The full-mode candidate flag has no such share bound, so
    // full solves keep the unfiltered lists.)
    bind_sub_links_.clear();
    bind_solver_links_.clear();
    bind_solver_arena_.clear();
    bind_solver_start_.clear();
    bind_solver_start_.push_back(0);
    bind_stack_.clear();
    for (std::uint32_t r : seed_links_) {
      // Seed links with no remaining flows (e.g. a departed flow's last
      // link) have nothing to walk.
      if (link_flows_.empty(r)) continue;
      if (bind_link_seen_[r] == bind_gen_) continue;
      bind_link_seen_[r] = bind_gen_;
      if (flag_lt_cap_[r] != 0) bind_solver_links_.push_back(r);
      bind_stack_.push_back(r);
    }
    while (!bind_stack_.empty()) {
      const std::uint32_t r = bind_stack_.back();
      bind_stack_.pop_back();
      for (std::uint32_t f : link_flows_.flows(r)) {
        if (bind_flow_seen_[f] == bind_gen_) continue;
        bind_flow_seen_[f] = bind_gen_;
        const auto filtered = filt_links(f);
        if (filtered.empty()) {
          // No binding candidate on the path: the max-min rate is the cap.
          // If that changes the cached rate, the flow's links join the
          // writeback list exactly as a solver-row rate change would.
          ++capped_direct;
          if (flow_rate_bps_[f] != cap_bps) {
            flow_rate_bps_[f] = cap_bps;
            for (std::uint32_t l : flow_links(f)) {
              if (bind_sub_seen_[l] != bind_gen_) {
                bind_sub_seen_[l] = bind_gen_;
                bind_sub_links_.push_back(l);
              }
            }
          }
          continue;
        }
        bind_flows_.push_back(f);
        for (std::uint32_t l : filtered) {
          bind_solver_arena_.push_back(l);
          if (bind_link_seen_[l] != bind_gen_) {
            bind_link_seen_[l] = bind_gen_;
            bind_solver_links_.push_back(l);
            bind_stack_.push_back(l);
          }
        }
        bind_solver_start_.push_back(
            static_cast<std::uint32_t>(bind_solver_arena_.size()));
      }
    }
    // Live seed links changed membership (the event's own flow arrived or
    // departed there), so their sums move even if every member keeps its
    // rate. Dead seed links are zeroed by the writeback directly.
    for (std::uint32_t r : seed_links_) {
      if (link_flows_.empty(r)) continue;
      if (bind_sub_seen_[r] != bind_gen_) {
        bind_sub_seen_[r] = bind_gen_;
        bind_sub_links_.push_back(r);
      }
    }
  }

  bind_discovered_ = bind_flows_.size() + capped_direct;
  if (!bind_flows_.empty()) {
    if (!seed_valid_) {
      problem_.clear();
      for (std::uint32_t f : bind_flows_) {
        problem_.push_back({flow_links(f), cap_bps});
      }
    }
    // Sparse solve: only the links the subproblem crosses are reset in the
    // solver's resource-indexed workspace. The seeded path hands the solver
    // its pre-flattened CSR directly (zero-copy, no per-row views).
    const auto rates =
        seed_valid_
            ? solver_.solve_arena(bind_solver_arena_, bind_solver_start_,
                                  directed_capacity_bps_, bind_solver_links_,
                                  cap_bps)
            : solver_.solve_on(problem_, directed_capacity_bps_,
                               std::span<const std::uint32_t>(touched_links_),
                               cap_bps);
    if (seed_valid_) {
      // Collect the links whose carried sums can have moved: a sum changes
      // only when a member flow's rate changed or the membership itself did
      // (the seed links, added below). Links that keep both keep their sum
      // bit-for-bit, so skipping them equals the recompute-and-compare the
      // writeback would have done.
      for (std::size_t j = 0; j < bind_flows_.size(); ++j) {
        const std::uint32_t f = bind_flows_[j];
        if (flow_rate_bps_[f] == rates[j]) continue;
        flow_rate_bps_[f] = rates[j];
        for (std::uint32_t r : flow_links(f)) {
          if (bind_sub_seen_[r] != bind_gen_) {
            bind_sub_seen_[r] = bind_gen_;
            bind_sub_links_.push_back(r);
          }
        }
      }
    } else {
      for (std::size_t j = 0; j < bind_flows_.size(); ++j) {
        flow_rate_bps_[bind_flows_[j]] = rates[j];
      }
    }
  }
  if (bind_discovered_ != 0) {
    inst_.binding_subset_flows.inc(bind_discovered_);
  }
  inst_.binding_solves.inc();
  return seed_valid_;
}

void FlowSimulator::schedule_next_completion() {
  if (completion_event_) {
    engine_.cancel(*completion_event_);
    completion_event_.reset();
  }
  // Most flows run at the uniform cap; for them one division after a
  // min-scan of remaining bits gives exactly min(remaining / cap), because
  // correctly-rounded division by a positive constant is monotone — the
  // same double the per-flow divisions would produce. The scan itself is a
  // dense pass over the rate/remaining SoA columns (vectorized kernel).
  const double cap_bps = config_.flow_rate_cap.bits_per_second();
  double earliest;
  double capped_bits;
  soa::completion_scan(flow_remaining_.data(), flow_rate_bps_.data(), cap_bps,
                       active_.size(), &earliest, &capped_bits);
  if (std::isfinite(capped_bits)) {
    earliest = std::min(earliest, capped_bits / cap_bps);
  }
  if (!std::isfinite(earliest)) return;
  completion_event_ = engine_.schedule_after(
      Seconds{earliest}, [this] { complete_due_flows(engine_.now()); });
}

void FlowSimulator::schedule_completion_for_cap_arrival(std::size_t index) {
  // try_fast_arrival only succeeds with a positive uniform cap, and it just
  // set this flow's rate to exactly that cap — the same division the
  // completion scan's capped-flow path would perform.
  const double cap_bps = config_.flow_rate_cap.bits_per_second();
  const double delay = flow_remaining_[index] / cap_bps;
  if (!std::isfinite(delay)) return;
  if (completion_event_.has_value()) {
    if (engine_.event_time(*completion_event_).value() <=
        engine_.now().value() + delay) {
      // An earlier (or equal) completion is already scheduled; the new
      // flow cannot beat it, and nobody else's estimate moved.
      return;
    }
    engine_.cancel(*completion_event_);
    completion_event_.reset();
  }
  completion_event_ = engine_.schedule_after(
      Seconds{delay}, [this] { complete_due_flows(engine_.now()); });
}

void FlowSimulator::set_remaining_bits(std::size_t index, double bits) {
  validation::require(index < active_.size(), "FlowSimulator",
                      "set_remaining_bits index must name an active flow");
  validation::require(
      std::isfinite(bits) && bits + kEpsBits >= flow_remaining_[index] &&
          bits <= active_[index].spec.size.value() + kEpsBits,
      "FlowSimulator",
      "set_remaining_bits may only raise remaining within [current, size]");
  flow_remaining_[index] = bits;
}

void FlowSimulator::complete_due_flows(Seconds now) {
  completion_event_.reset();
  settle_progress(now);
  bool any = false;
  bool all_fast = true;
  seed_links_.clear();
  for (std::size_t i = 0; i < active_.size();) {
    if (flow_remaining_[i] > kEpsBits) {
      ++i;
      continue;
    }
    FlowRecord record;
    record.id = active_[i].id;
    record.spec = active_[i].spec;
    record.finished = now;
    fct_.add(record.fct().value());
    inst_.fct.observe(record.fct().value());
    if (events_) events_->end_span("flows", "flow", now, record.id);
    completed_.push_back(record);
    any = true;
    // Departures free capacity only on their own links; remember them as
    // binding-subset seeds in case this event needs a re-solve.
    const auto links = flow_links(i);
    seed_links_.insert(seed_links_.end(), links.begin(), links.end());
    all_fast = all_fast && try_fast_departure(now, i);
    release_flow_links(i);
    // Swap-and-pop: active-flow order carries no meaning (records and
    // listeners are per-flow), and mid-vector erase is O(n).
    swap_remove_active(i);
    if (completion_listener_) completion_listener_(completed_.back());
  }
  if (!any) {
    // Numerical guard: nothing finished (should not happen); reschedule.
    schedule_next_completion();
  } else if (all_fast) {
    schedule_next_completion();
    update_flow_gauges();
    if (listener_) listener_(now);
  } else {
    seed_valid_ = true;
    reallocate(now);
  }
}

Gbps FlowSimulator::directed_link_rate(DirectedLink dl) const {
  return Gbps{directed_rate_bps_.at(dl.index()).current() / 1e9};
}

double FlowSimulator::directed_link_utilization(DirectedLink dl) const {
  const auto idx = dl.index();
  return directed_rate_bps_.at(idx).current() / directed_capacity_bps_.at(idx);
}

double FlowSimulator::node_load(NodeId id) const {
  double carried = 0.0;
  double capacity = 0.0;
  for (const auto& adj : graph_.neighbors(id)) {
    for (int dir = 0; dir < 2; ++dir) {
      const auto idx = DirectedLink{adj.link, dir}.index();
      carried += directed_rate_bps_.at(idx).current();
      capacity += directed_capacity_bps_.at(idx);
    }
  }
  return capacity > 0.0 ? carried / capacity : 0.0;
}

double FlowSimulator::average_link_utilization(DirectedLink dl) const {
  const auto idx = dl.index();
  return directed_rate_bps_.at(idx).average(engine_.now()) /
         directed_capacity_bps_.at(idx);
}

}  // namespace netpp
