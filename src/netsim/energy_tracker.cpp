#include "netpp/netsim/energy_tracker.h"

#include <algorithm>
#include <stdexcept>

namespace netpp {

FabricEnergyTracker::FabricEnergyTracker(const FlowSimulator& sim,
                                         Config config)
    : sim_(sim),
      config_(config),
      switch_env_(PowerEnvelope::from_proportionality(
          config.switch_max, config.network_proportionality)),
      nic_env_(PowerEnvelope::from_proportionality(
          config.nic_max, config.network_proportionality)),
      transceiver_env_(PowerEnvelope::from_proportionality(
          config.transceiver_max, config.network_proportionality)) {
  const Graph& g = sim.graph();
  const Seconds start = Seconds{0.0};

  for (const auto& node : g.nodes()) {
    if (node.kind == NodeKind::kHost) {
      devices_.push_back(Device{Device::Kind::kNic, node.id, kInvalidLink,
                                EnergyMeter{config_.nic_max,
                                            nic_env_.idle_power(), start}});
    } else if (node.kind == NodeKind::kSwitch) {
      const Watts max = config_.mode == DevicePowerMode::kComponent
                            ? config_.component_model.max_power()
                            : config_.switch_max;
      const Watts idle = config_.mode == DevicePowerMode::kComponent
                             ? config_.component_model.idle_power()
                             : switch_env_.idle_power();
      devices_.push_back(Device{Device::Kind::kSwitch, node.id, kInvalidLink,
                                EnergyMeter{max, idle, start}});
    }
  }
  for (const auto& link : g.links()) {
    if (!link.optical) continue;
    for (int end = 0; end < 2; ++end) {
      devices_.push_back(
          Device{Device::Kind::kTransceiver, kInvalidNode, link.id,
                 EnergyMeter{config_.transceiver_max,
                             transceiver_env_.idle_power(), start}});
    }
  }
}

double FabricEnergyTracker::device_load(const Device& device) const {
  switch (device.kind) {
    case Device::Kind::kSwitch:
      return sim_.node_load(device.node);
    case Device::Kind::kNic: {
      // A NIC is loaded by its host's access-link traffic (either way).
      double carried = 0.0, capacity = 0.0;
      for (const auto& adj : sim_.graph().neighbors(device.node)) {
        for (int dir = 0; dir < 2; ++dir) {
          const DirectedLink dl{adj.link, dir};
          carried += sim_.directed_link_rate(dl).bits_per_second();
          capacity +=
              sim_.graph().link(adj.link).capacity.bits_per_second();
        }
      }
      return capacity > 0.0 ? std::min(1.0, carried / capacity) : 0.0;
    }
    case Device::Kind::kTransceiver: {
      const double u0 =
          sim_.directed_link_utilization(DirectedLink{device.link, 0});
      const double u1 =
          sim_.directed_link_utilization(DirectedLink{device.link, 1});
      return std::min(1.0, std::max(u0, u1));
    }
  }
  return 0.0;
}

Watts FabricEnergyTracker::device_power(const Device& device,
                                        double load) const {
  const bool active = load > 0.0;
  switch (device.kind) {
    case Device::Kind::kSwitch:
      if (config_.mode == DevicePowerMode::kComponent) {
        return config_.component_model.at_uniform_load(load);
      }
      return active ? switch_env_.max_power() : switch_env_.idle_power();
    case Device::Kind::kNic:
      return active ? nic_env_.max_power() : nic_env_.idle_power();
    case Device::Kind::kTransceiver:
      return active ? transceiver_env_.max_power()
                    : transceiver_env_.idle_power();
  }
  return Watts{};
}

void FabricEnergyTracker::on_load_change(Seconds now) {
  for (auto& device : devices_) {
    const double load = device_load(device);
    device.meter.set_power(now, device_power(device, load));
    // In the paper's two-state model a device is either idle or "working at
    // full speed", so the ideal-proportional reference follows activity,
    // not utilization; component mode uses real utilization.
    const double useful = config_.mode == DevicePowerMode::kTwoState
                              ? (load > 0.0 ? 1.0 : 0.0)
                              : std::clamp(load, 0.0, 1.0);
    device.meter.set_load(now, useful);
  }
}

FlowSimulator::LoadListener FabricEnergyTracker::listener() {
  return [this](Seconds now) { on_load_change(now); };
}

Joules FabricEnergyTracker::energy_of_kind(Device::Kind kind,
                                           Seconds until) const {
  Joules total{};
  for (const auto& device : devices_) {
    if (device.kind == kind) total += device.meter.energy(until);
  }
  return total;
}

Joules FabricEnergyTracker::network_energy(Seconds until) const {
  Joules total{};
  for (const auto& device : devices_) total += device.meter.energy(until);
  return total;
}

Watts FabricEnergyTracker::average_network_power(Seconds until) const {
  if (until.value() <= 0.0) {
    throw std::invalid_argument("need a positive horizon");
  }
  return network_energy(until) / until;
}

Joules FabricEnergyTracker::switch_energy(Seconds until) const {
  return energy_of_kind(Device::Kind::kSwitch, until);
}

Joules FabricEnergyTracker::nic_energy(Seconds until) const {
  return energy_of_kind(Device::Kind::kNic, until);
}

Joules FabricEnergyTracker::transceiver_energy(Seconds until) const {
  return energy_of_kind(Device::Kind::kTransceiver, until);
}

double FabricEnergyTracker::network_energy_efficiency(Seconds until) const {
  const double actual = network_energy(until).value();
  if (actual <= 0.0) return 1.0;
  double ideal = 0.0;
  for (const auto& device : devices_) {
    // Ideal: max power exactly while loaded (load-weighted), zero otherwise.
    ideal += device.meter.max_power().value() *
             device.meter.average_load(until) * until.value();
  }
  return ideal / actual;
}

Watts FabricEnergyTracker::max_network_power() const {
  Watts total{};
  for (const auto& device : devices_) total += device.meter.max_power();
  return total;
}

MechanismReport FabricEnergyTracker::report(Seconds until) const {
  if (until.value() <= 0.0) {
    throw std::invalid_argument("need a positive horizon");
  }
  MechanismReport report;
  report.mechanism = "fabric";
  report.duration = until;
  report.energy = network_energy(until);
  report.baseline_energy = Joules{max_network_power().value() * until.value()};
  report.savings =
      report.baseline_energy.value() > 0.0
          ? 1.0 - report.energy.value() / report.baseline_energy.value()
          : 0.0;
  report.average_power = average_network_power(until);
  return report;
}

}  // namespace netpp
