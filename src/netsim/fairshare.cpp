#include "netpp/netsim/fairshare.h"

#include <cmath>
#include <cstring>

#include <algorithm>
#include <cassert>
#include <limits>
#include <stdexcept>

namespace netpp {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Every index and count stays below 2^31 so uint32 never overflows and the
// SIMD int->double conversions are exact.
constexpr std::size_t kMaxProblem = (std::size_t{1} << 31) - 1;

// Min-heap on (key, idx): smallest key first, ties toward the smallest
// index. This reproduces the reference solver's first-hit linear scan
// (strict '<' keeps the lowest index among equal candidates).
struct EntryGreater {
  template <typename E>
  bool operator()(const E& a, const E& b) const {
    if (a.key != b.key) return a.key > b.key;
    return a.idx > b.idx;
  }
};

// Uniform-cap detection for dense solves: when every flow carries the same
// positive cap (the simulator's NIC-cap regime), the general cap heap
// degenerates — all keys equal, so it pops in ascending flow index, which a
// cursor reproduces with zero heap maintenance. Returns the common cap, or
// -1.0 when caps are absent or mixed.
template <typename ViewT>
double detect_uniform_cap(std::span<const ViewT> flows) {
  if (flows.empty()) return -1.0;
  const double cap = flows.front().cap;
  if (!(cap > 0.0)) return -1.0;
  for (const auto& flow : flows) {
    if (flow.cap != cap) return -1.0;
  }
  return cap;
}

// Restores the min-heap property after h[0] was replaced in place. One
// root-to-leaf sift instead of the pop_heap + push_heap round trip the
// standard library would take for the same replace-the-top update. The heap
// LAYOUT this produces can differ from std::push_heap's, but the entry
// multiset is identical, and the solver only ever reads the front — the
// unique minimum under the strict (key, idx) total order — so every
// decision (and every computed double) is unchanged.
template <typename E>
void sift_down_root(soa::AlignedVec<E>& h) {
  const std::size_t n = h.size();
  const E e = h[0];
  std::size_t i = 0;
  for (;;) {
    std::size_t c = 2 * i + 1;
    if (c >= n) break;
    if (c + 1 < n && EntryGreater{}(h[c], h[c + 1])) ++c;  // smaller child
    if (!EntryGreater{}(e, h[c])) break;
    h[i] = h[c];
    i = c;
  }
  h[i] = e;
}

}  // namespace

void MaxMinSolver::freeze(std::uint32_t f, double value) {
  frozen_[f] = 1;
  rate_[f] = value;
  const std::uint32_t* res = fres_;
  const std::uint32_t end = fstart_[f + 1];
  for (std::uint32_t i = fstart_[f]; i < end; ++i) {
    const std::uint32_t r = res[i];
    const double left = residual_[r] - value;
    residual_[r] = left > 0.0 ? left : 0.0;  // branchless (maxsd) clamp
    --active_on_[r];
    ++res_ver_[r];  // invalidates the link's heap entry fast-accept path
    // No heap update here: freezing at the current fill level v only raises
    // a touched link's share ((residual - v) / (n - 1) >= residual / n
    // whenever residual / n >= v, which progressive filling guarantees), so
    // the link's existing heap entry is a valid lower bound. run() fixes
    // it up lazily when it reaches the top.
  }
}

template <typename ViewT>
void MaxMinSolver::ingest(std::span<const ViewT> flows, std::size_t num_res,
                          bool uniform,
                          [[maybe_unused]] double uniform_cap) {
  const std::size_t num_flows = flows.size();
  if (num_flows > kMaxProblem || num_res > kMaxProblem) {
    throw std::length_error("max-min problem exceeds 2^31 flows/resources");
  }
  flow_start_.resize(num_flows + 1);
  if (!uniform) flow_cap_.resize(num_flows);
  std::size_t total = 0;
  for (const auto& flow : flows) total += flow.resources.size();
  if (total > kMaxProblem) {
    throw std::length_error("max-min problem exceeds 2^31 incidences");
  }
  flow_res_.resize(total);
  std::uint32_t* dst = flow_res_.data();
  std::size_t pos = 0;
  for (std::size_t f = 0; f < num_flows; ++f) {
    flow_start_[f] = static_cast<std::uint32_t>(pos);
    const auto& flow = flows[f];
    assert(!uniform || flow.cap == uniform_cap);
    if (!uniform) flow_cap_[f] = flow.cap;
    for (const auto r : flow.resources) {
      if (static_cast<std::size_t>(r) >= num_res) {
        throw std::out_of_range("resource index out of range");
      }
      ++active_on_[r];
      dst[pos++] = static_cast<std::uint32_t>(r);
    }
  }
  flow_start_[num_flows] = static_cast<std::uint32_t>(total);
  fres_ = flow_res_.data();
  fstart_ = flow_start_.data();
}

std::span<const double> MaxMinSolver::solve(
    std::span<const FairShareFlowView> flows,
    std::span<const double> capacities) {
  return solve_dense(flows, capacities);
}

std::span<const double> MaxMinSolver::solve(
    std::span<const FairShareFlowView32> flows,
    std::span<const double> capacities) {
  return solve_dense(flows, capacities);
}

std::span<const double> MaxMinSolver::solve(
    std::span<const FairShareFlow> flows, std::span<const double> capacities) {
  return solve_dense(flows, capacities);
}

template <typename ViewT>
std::span<const double> MaxMinSolver::solve_dense(
    std::span<const ViewT> flows, std::span<const double> capacities) {
  for (double c : capacities) {
    // Zero is allowed: a dead (disabled or fully degraded) link pins its
    // flows to rate 0 via the normal progressive-filling path.
    if (std::isnan(c) || c < 0.0) {
      throw std::invalid_argument("capacities must be non-negative");
    }
  }
  const std::size_t num_res = capacities.size();
  residual_.resize(num_res);
  active_on_.resize(num_res);
  res_ver_.resize(num_res);
  csr_start_.resize(num_res);
  csr_cursor_.resize(num_res);
  if (num_res != 0) {
    std::memcpy(residual_.data(), capacities.data(),
                num_res * sizeof(double));
    std::memset(active_on_.data(), 0, num_res * sizeof(std::uint32_t));
    std::memset(res_ver_.data(), 0, num_res * sizeof(std::uint32_t));
  }
  const double uniform_cap = detect_uniform_cap(flows);
  ingest(flows, num_res, uniform_cap > 0.0, uniform_cap);
  return run(flows.size(), capacities, {}, /*dense=*/true, uniform_cap);
}

std::span<const double> MaxMinSolver::solve_on(
    std::span<const FairShareFlowView> flows,
    std::span<const double> capacities, std::span<const std::size_t> touched,
    double uniform_cap) {
  // Legacy size_t touched list: convert once into the solver's native index
  // width (touched lists are tiny relative to the solve itself).
  touched_u32_.resize(touched.size());
  for (std::size_t i = 0; i < touched.size(); ++i) {
    touched_u32_[i] = static_cast<std::uint32_t>(touched[i]);
  }
  return solve_sparse(flows, capacities,
                      std::span<const std::uint32_t>(touched_u32_.data(),
                                                     touched_u32_.size()),
                      uniform_cap);
}

std::span<const double> MaxMinSolver::solve_on(
    std::span<const FairShareFlowView32> flows,
    std::span<const double> capacities,
    std::span<const std::uint32_t> touched, double uniform_cap) {
  return solve_sparse(flows, capacities, touched, uniform_cap);
}

template <typename ViewT>
std::span<const double> MaxMinSolver::solve_sparse(
    std::span<const ViewT> flows, std::span<const double> capacities,
    std::span<const std::uint32_t> touched, double uniform_cap) {
  assert(uniform_cap > 0.0);
  const std::size_t num_res = capacities.size();
  // Resource-indexed workspace is grow-only and reset sparsely: only the
  // touched entries are (re)initialized, so a small subproblem over a big
  // fabric costs nothing per untouched link.
  if (residual_.size() < num_res) {
    residual_.resize(num_res);
    active_on_.resize(num_res);
    res_ver_.resize(num_res);
    csr_start_.resize(num_res);
    csr_cursor_.resize(num_res);
  }
  for (std::uint32_t r : touched) {
    residual_[r] = capacities[r];
    active_on_[r] = 0;
    res_ver_[r] = 0;
  }
  ingest(flows, num_res, /*uniform=*/true, uniform_cap);
  return run(flows.size(), capacities, touched, /*dense=*/false, uniform_cap);
}

std::span<const double> MaxMinSolver::solve_arena(
    std::span<const std::uint32_t> arena, std::span<const std::uint32_t> start,
    std::span<const double> capacities, std::span<const std::uint32_t> touched,
    double uniform_cap) {
  assert(uniform_cap > 0.0);
  assert(!start.empty() && start.front() == 0 && start.back() == arena.size());
  const std::size_t num_flows = start.size() - 1;
  const std::size_t num_res = capacities.size();
  if (num_flows > kMaxProblem || num_res > kMaxProblem ||
      arena.size() > kMaxProblem) {
    throw std::length_error("max-min problem exceeds 2^31 flows/resources");
  }
  if (residual_.size() < num_res) {
    residual_.resize(num_res);
    active_on_.resize(num_res);
    res_ver_.resize(num_res);
    csr_start_.resize(num_res);
    csr_cursor_.resize(num_res);
  }
  for (std::uint32_t r : touched) {
    residual_[r] = capacities[r];
    active_on_[r] = 0;
    res_ver_[r] = 0;
  }
  // The whole ingest step collapses to one sequential counting pass: the
  // caller's arena IS the flow->resource CSR.
  for (std::uint32_t r : arena) {
    if (r >= num_res) throw std::out_of_range("resource index out of range");
    ++active_on_[r];
  }
  fres_ = arena.data();
  fstart_ = start.data();
  return run(num_flows, capacities, touched, /*dense=*/false, uniform_cap);
}

std::span<const double> MaxMinSolver::run(
    std::size_t num_flows, std::span<const double> capacities,
    std::span<const std::uint32_t> touched, bool dense, double uniform_cap) {
  const std::size_t num_res = capacities.size();
  const bool uniform = uniform_cap > 0.0;
  ++stats_.solves;
  stats_.flows_solved += num_flows;

  rate_.assign(num_flows, 0.0);
  frozen_.assign(num_flows, 0);

  // Reverse CSR (resource -> flows): prefix-sum the counts ingest()
  // accumulated, then fill by streaming the flattened flow->resource array.
  // Grouping per resource preserves flow order, matching the reference's
  // adjacency lists. csr_cursor_ doubles as the fill cursor and lands
  // exactly on the group end.
  std::uint32_t cum = 0;
  if (dense) {
    for (std::size_t r = 0; r < num_res; ++r) {
      csr_start_[r] = cum;
      csr_cursor_[r] = cum;
      cum += active_on_[r];
    }
  } else {
    for (std::uint32_t r : touched) {
      csr_start_[r] = cum;
      csr_cursor_[r] = cum;
      cum += active_on_[r];
    }
  }
  csr_flows_.resize(cum);
  {
    const std::uint32_t* fres = fres_;
    const std::uint32_t* fstart = fstart_;
    const std::uint32_t n32 = static_cast<std::uint32_t>(num_flows);
    for (std::uint32_t f = 0; f < n32; ++f) {
      const std::uint32_t end = fstart[f + 1];
      for (std::uint32_t i = fstart[f]; i < end; ++i) {
        csr_flows_[csr_cursor_[fres[i]]++] = f;
      }
    }
  }

  // Seed the link heap: every populated resource's initial share. Dense
  // solves compute the whole share array with one branch-free vector kernel
  // first. The heap's internal layout depends on the seeding order, but
  // every decision below reads only the front — the minimum under a strict
  // total (key, idx) order — so the freeze sequence (and every computed
  // double) is independent of the order `touched` lists the resources in.
  link_heap_.clear();
  if (dense) {
    share_.resize(num_res);
    soa::div_shares(residual_.data(), active_on_.data(), share_.data(),
                    num_res);
    for (std::size_t r = 0; r < num_res; ++r) {
      if (active_on_[r] > 0) {
        link_heap_.push_back({share_[r], static_cast<std::uint32_t>(r), 0});
      }
    }
  } else {
    for (std::uint32_t r : touched) {
      if (active_on_[r] > 0) {
        link_heap_.push_back(
            {residual_[r] / static_cast<double>(active_on_[r]), r, 0});
      }
    }
  }
  std::make_heap(link_heap_.begin(), link_heap_.end(), EntryGreater{});

  // Cap bookkeeping: a heap of (cap, flow) in the general case; with a
  // uniform cap every entry has the same key, so the heap's pop order is
  // exactly ascending flow index — a cursor over the flow array reproduces
  // it without any heap maintenance.
  std::size_t cap_cursor = 0;
  if (!uniform) {
    cap_heap_.clear();
    for (std::uint32_t f = 0; f < num_flows; ++f) {
      if (flow_cap_[f] > 0.0) cap_heap_.push_back({flow_cap_[f], f, 0});
    }
    std::make_heap(cap_heap_.begin(), cap_heap_.end(), EntryGreater{});
  }

  std::size_t remaining = num_flows;
  while (remaining > 0) {
    // Smallest unfrozen cap.
    double cap_level = kInf;
    std::size_t capped_flow = num_flows;
    if (uniform) {
      while (cap_cursor < num_flows && frozen_[cap_cursor]) ++cap_cursor;
      if (cap_cursor < num_flows) {
        cap_level = uniform_cap;
        capped_flow = cap_cursor;
      }
    } else {
      while (!cap_heap_.empty()) {
        const HeapEntry top = cap_heap_[0];
        if (!frozen_[top.idx]) {
          cap_level = top.key;
          capped_flow = top.idx;
          break;
        }
        std::pop_heap(cap_heap_.begin(), cap_heap_.end(), EntryGreater{});
        cap_heap_.pop_back();
      }
    }

    // Lower-bound gate: every link's current share is >= its own heap key,
    // and the front key is the minimum key, so the true minimum share is
    // >= link_heap_.front().key. When that lower bound already clears the
    // cap level, the cap freeze wins the round without touching the link
    // heap — the exact comparison below would have picked the same branch,
    // the same flow, and the same value, so the freeze sequence (and thus
    // every computed double) is unchanged. In cap-dominated rounds this
    // skips the whole stale-entry fixup walk.
    if (capped_flow != num_flows &&
        (link_heap_.empty() || link_heap_[0].key >= cap_level)) {
      if (uniform) {
        // Once the heap's lower bound clears the uniform cap it clears it
        // forever: keys and shares only rise, and the cap level is fixed.
        // Every remaining round would be this same cap freeze — in cursor
        // order, i.e. ascending flow index — and the residual bookkeeping
        // those freezes would do is dead (the workspace is reset before the
        // next solve). Freeze them all at once with the blend kernel.
        soa::fill_unfrozen(rate_.data() + cap_cursor,
                           frozen_.data() + cap_cursor, uniform_cap,
                           num_flows - cap_cursor);
        break;
      }
      std::pop_heap(cap_heap_.begin(), cap_heap_.end(), EntryGreater{});
      cap_heap_.pop_back();
      freeze(static_cast<std::uint32_t>(capped_flow), cap_level);
      --remaining;
      continue;
    }

    // Tightest link. Heap entries are lower bounds on the links' current
    // shares (shares only grow as filling proceeds): drop entries for
    // emptied links, re-push stale entries at their current share, and stop
    // when the top is current — it is then the true minimum, with ties
    // broken toward the lowest index exactly like the reference scan (any
    // other link with an equal current share still has its entry key pinned
    // between the front key and its share, i.e. equal, so the heap's
    // (key, idx) order resolves the tie by index).
    double link_share = kInf;
    std::size_t tight_link = num_res;
    while (!link_heap_.empty()) {
      const HeapEntry top = link_heap_[0];
      const std::uint32_t n_active = active_on_[top.idx];
      if (n_active != 0) {
        // Fast accept: no freeze has touched this link since its entry was
        // pushed, so the stored key is bit-for-bit the current share and the
        // (serialized, ~20-cycle) division below is provably redundant.
        if (top.ver == res_ver_[top.idx]) {
          link_share = top.key;
          tight_link = top.idx;
          break;
        }
        const double current =
            residual_[top.idx] / static_cast<double>(n_active);
        if (top.key == current) {
          link_share = current;
          tight_link = top.idx;
          break;
        }
        link_heap_[0].key = current;
        link_heap_[0].ver = res_ver_[top.idx];
        sift_down_root(link_heap_);
        continue;
      }
      link_heap_[0] = link_heap_.back();
      link_heap_.pop_back();
      if (!link_heap_.empty()) sift_down_root(link_heap_);
    }

    if (tight_link == num_res && capped_flow == num_flows) {
      // Remaining flows are uncapped and cross no capacitated resource:
      // conventionally give them zero (callers treat empty paths specially).
      break;
    }

    if (cap_level <= link_share) {
      // Freeze the capped flow at its cap and release its share.
      if (!uniform) {
        std::pop_heap(cap_heap_.begin(), cap_heap_.end(), EntryGreater{});
        cap_heap_.pop_back();
      }
      freeze(static_cast<std::uint32_t>(capped_flow), cap_level);
      --remaining;
      continue;
    }

    // Freeze every unfrozen flow on the tightest link at the link share.
    // (freeze() drains the link's active count, so the heap entry consumed
    // here goes stale on its own.)
    for (std::uint32_t i = csr_start_[tight_link]; i < csr_cursor_[tight_link];
         ++i) {
      const std::uint32_t f = csr_flows_[i];
      if (frozen_[f]) continue;
      freeze(f, link_share);
      --remaining;
    }
  }

  return {rate_.data(), num_flows};
}

std::vector<double> max_min_fair_rates(
    const std::vector<FairShareFlow>& flows,
    const std::vector<double>& capacities) {
  MaxMinSolver solver;
  const auto rates = solver.solve(
      std::span<const FairShareFlow>(flows.data(), flows.size()), capacities);
  return {rates.begin(), rates.end()};
}

}  // namespace netpp
