#include "netpp/netsim/fairshare.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace netpp {

std::vector<double> max_min_fair_rates(
    const std::vector<FairShareFlow>& flows,
    const std::vector<double>& capacities) {
  for (double c : capacities) {
    if (c <= 0.0) throw std::invalid_argument("capacities must be positive");
  }
  const std::size_t num_flows = flows.size();
  const std::size_t num_res = capacities.size();

  std::vector<double> rate(num_flows, 0.0);
  std::vector<bool> frozen(num_flows, false);
  std::vector<double> residual = capacities;
  std::vector<std::size_t> active_on(num_res, 0);

  std::vector<std::vector<std::size_t>> flows_on(num_res);
  for (std::size_t f = 0; f < num_flows; ++f) {
    for (std::size_t r : flows[f].resources) {
      if (r >= num_res) throw std::out_of_range("resource index out of range");
      flows_on[r].push_back(f);
      ++active_on[r];
    }
  }

  // Flows with a cap participate in filling until the fill level reaches
  // their cap, at which point they freeze at the cap. Iterate: the next
  // binding constraint is either the tightest link's equal share or the
  // smallest unfrozen cap.
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::size_t remaining = num_flows;

  // Unconstrained, uncapped flows never freeze via links; give them inf-like
  // treatment by freezing them at the end. Track them now.
  while (remaining > 0) {
    // Fill level candidate from links.
    double link_share = kInf;
    std::size_t tight_link = num_res;
    for (std::size_t r = 0; r < num_res; ++r) {
      if (active_on[r] == 0) continue;
      const double share = residual[r] / static_cast<double>(active_on[r]);
      if (share < link_share) {
        link_share = share;
        tight_link = r;
      }
    }
    // Fill level candidate from caps.
    double cap_level = kInf;
    std::size_t capped_flow = num_flows;
    for (std::size_t f = 0; f < num_flows; ++f) {
      if (frozen[f]) continue;
      if (flows[f].cap > 0.0 && flows[f].cap < cap_level) {
        cap_level = flows[f].cap;
        capped_flow = f;
      }
    }

    if (tight_link == num_res && capped_flow == num_flows) {
      // Remaining flows are uncapped and cross no capacitated resource:
      // conventionally give them zero (callers treat empty paths specially).
      break;
    }

    if (cap_level <= link_share) {
      // Freeze the capped flow at its cap and release its share.
      frozen[capped_flow] = true;
      rate[capped_flow] = cap_level;
      --remaining;
      for (std::size_t r : flows[capped_flow].resources) {
        residual[r] -= cap_level;
        if (residual[r] < 0.0) residual[r] = 0.0;
        --active_on[r];
      }
      continue;
    }

    // Freeze every unfrozen flow on the tightest link at the link share.
    for (std::size_t f : flows_on[tight_link]) {
      if (frozen[f]) continue;
      frozen[f] = true;
      rate[f] = link_share;
      --remaining;
      for (std::size_t r : flows[f].resources) {
        residual[r] -= link_share;
        if (residual[r] < 0.0) residual[r] = 0.0;
        --active_on[r];
      }
    }
  }

  return rate;
}

}  // namespace netpp
