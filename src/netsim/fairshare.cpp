#include "netpp/netsim/fairshare.h"

#include <cmath>

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace netpp {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Min-heap on (key, idx): smallest key first, ties toward the smallest
// index. This reproduces the reference solver's first-hit linear scan
// (strict '<' keeps the lowest index among equal candidates).
struct EntryGreater {
  template <typename E>
  bool operator()(const E& a, const E& b) const {
    if (a.key != b.key) return a.key > b.key;
    return a.idx > b.idx;
  }
};

}  // namespace

void MaxMinSolver::freeze(std::span<const FairShareFlowView> flows,
                          std::size_t f, double value) {
  frozen_[f] = 1;
  rate_[f] = value;
  for (std::size_t r : flows[f].resources) {
    residual_[r] -= value;
    if (residual_[r] < 0.0) residual_[r] = 0.0;
    --active_on_[r];
    // No heap update here: freezing at the current fill level v only raises
    // a touched link's share ((residual - v) / (n - 1) >= residual / n
    // whenever residual / n >= v, which progressive filling guarantees), so
    // the link's existing heap entry is a valid lower bound. solve() fixes
    // it up lazily when it reaches the top.
  }
}

const std::vector<double>& MaxMinSolver::solve(
    std::span<const FairShareFlowView> flows,
    std::span<const double> capacities) {
  for (double c : capacities) {
    // Zero is allowed: a dead (disabled or fully degraded) link pins its
    // flows to rate 0 via the normal progressive-filling path.
    if (std::isnan(c) || c < 0.0) {
      throw std::invalid_argument("capacities must be non-negative");
    }
  }
  const std::size_t num_flows = flows.size();
  const std::size_t num_res = capacities.size();

  rate_.assign(num_flows, 0.0);
  frozen_.assign(num_flows, 0);
  residual_.assign(capacities.begin(), capacities.end());
  active_on_.assign(num_res, 0);

  // Flat CSR flow->resource incidence: count, prefix-sum, fill. Grouping per
  // resource preserves flow order, matching the reference's adjacency lists.
  std::size_t total = 0;
  for (const auto& flow : flows) {
    for (std::size_t r : flow.resources) {
      if (r >= num_res) throw std::out_of_range("resource index out of range");
      ++active_on_[r];
    }
    total += flow.resources.size();
  }
  csr_offsets_.assign(num_res + 1, 0);
  for (std::size_t r = 0; r < num_res; ++r) {
    csr_offsets_[r + 1] = csr_offsets_[r] + active_on_[r];
  }
  csr_flows_.resize(total);
  csr_cursor_.assign(csr_offsets_.begin(), csr_offsets_.end() - 1);
  for (std::size_t f = 0; f < num_flows; ++f) {
    for (std::size_t r : flows[f].resources) {
      csr_flows_[csr_cursor_[r]++] = f;
    }
  }

  // Seed the heaps: every populated resource's initial share, every cap.
  link_heap_.clear();
  for (std::size_t r = 0; r < num_res; ++r) {
    if (active_on_[r] > 0) {
      link_heap_.push_back(
          {residual_[r] / static_cast<double>(active_on_[r]), r});
    }
  }
  std::make_heap(link_heap_.begin(), link_heap_.end(), EntryGreater{});
  cap_heap_.clear();
  for (std::size_t f = 0; f < num_flows; ++f) {
    if (flows[f].cap > 0.0) cap_heap_.push_back({flows[f].cap, f});
  }
  std::make_heap(cap_heap_.begin(), cap_heap_.end(), EntryGreater{});

  std::size_t remaining = num_flows;
  while (remaining > 0) {
    // Tightest link. Heap entries are lower bounds on the links' current
    // shares (shares only grow as filling proceeds): drop entries for
    // emptied links, re-push stale entries at their current share, and stop
    // when the top is current — it is then the true minimum, with ties
    // broken toward the lowest index exactly like the reference scan.
    double link_share = kInf;
    std::size_t tight_link = num_res;
    while (!link_heap_.empty()) {
      const HeapEntry top = link_heap_.front();
      if (active_on_[top.idx] != 0) {
        const double current =
            residual_[top.idx] / static_cast<double>(active_on_[top.idx]);
        if (top.key == current) {
          link_share = current;
          tight_link = top.idx;
          break;
        }
        std::pop_heap(link_heap_.begin(), link_heap_.end(), EntryGreater{});
        link_heap_.back().key = current;
        std::push_heap(link_heap_.begin(), link_heap_.end(), EntryGreater{});
        continue;
      }
      std::pop_heap(link_heap_.begin(), link_heap_.end(), EntryGreater{});
      link_heap_.pop_back();
    }

    // Smallest unfrozen cap.
    double cap_level = kInf;
    std::size_t capped_flow = num_flows;
    while (!cap_heap_.empty()) {
      const HeapEntry top = cap_heap_.front();
      if (!frozen_[top.idx]) {
        cap_level = top.key;
        capped_flow = top.idx;
        break;
      }
      std::pop_heap(cap_heap_.begin(), cap_heap_.end(), EntryGreater{});
      cap_heap_.pop_back();
    }

    if (tight_link == num_res && capped_flow == num_flows) {
      // Remaining flows are uncapped and cross no capacitated resource:
      // conventionally give them zero (callers treat empty paths specially).
      break;
    }

    if (cap_level <= link_share) {
      // Freeze the capped flow at its cap and release its share.
      std::pop_heap(cap_heap_.begin(), cap_heap_.end(), EntryGreater{});
      cap_heap_.pop_back();
      freeze(flows, capped_flow, cap_level);
      --remaining;
      continue;
    }

    // Freeze every unfrozen flow on the tightest link at the link share.
    // (freeze() drains the link's active count, so the heap entry consumed
    // here goes stale on its own.)
    for (std::size_t i = csr_offsets_[tight_link];
         i < csr_offsets_[tight_link + 1]; ++i) {
      const std::size_t f = csr_flows_[i];
      if (frozen_[f]) continue;
      freeze(flows, f, link_share);
      --remaining;
    }
  }

  return rate_;
}

std::vector<double> max_min_fair_rates(
    const std::vector<FairShareFlow>& flows,
    const std::vector<double>& capacities) {
  std::vector<FairShareFlowView> views;
  views.reserve(flows.size());
  for (const auto& flow : flows) {
    views.push_back({std::span<const std::size_t>(flow.resources), flow.cap});
  }
  MaxMinSolver solver;
  return solver.solve(views, capacities);
}

}  // namespace netpp
