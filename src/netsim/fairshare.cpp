#include "netpp/netsim/fairshare.h"

#include <cmath>

#include <algorithm>
#include <cassert>
#include <limits>
#include <stdexcept>

namespace netpp {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Min-heap on (key, idx): smallest key first, ties toward the smallest
// index. This reproduces the reference solver's first-hit linear scan
// (strict '<' keeps the lowest index among equal candidates).
struct EntryGreater {
  template <typename E>
  bool operator()(const E& a, const E& b) const {
    if (a.key != b.key) return a.key > b.key;
    return a.idx > b.idx;
  }
};

}  // namespace

void MaxMinSolver::freeze(std::span<const FairShareFlowView> flows,
                          std::size_t f, double value) {
  frozen_[f] = 1;
  rate_[f] = value;
  for (std::size_t r : flows[f].resources) {
    residual_[r] -= value;
    if (residual_[r] < 0.0) residual_[r] = 0.0;
    --active_on_[r];
    // No heap update here: freezing at the current fill level v only raises
    // a touched link's share ((residual - v) / (n - 1) >= residual / n
    // whenever residual / n >= v, which progressive filling guarantees), so
    // the link's existing heap entry is a valid lower bound. solve() fixes
    // it up lazily when it reaches the top.
  }
}

const std::vector<double>& MaxMinSolver::solve(
    std::span<const FairShareFlowView> flows,
    std::span<const double> capacities) {
  for (double c : capacities) {
    // Zero is allowed: a dead (disabled or fully degraded) link pins its
    // flows to rate 0 via the normal progressive-filling path.
    if (std::isnan(c) || c < 0.0) {
      throw std::invalid_argument("capacities must be non-negative");
    }
  }
  touched_all_.resize(capacities.size());
  for (std::size_t r = 0; r < capacities.size(); ++r) touched_all_[r] = r;
  return run(flows, capacities, touched_all_, -1.0);
}

const std::vector<double>& MaxMinSolver::solve_on(
    std::span<const FairShareFlowView> flows,
    std::span<const double> capacities, std::span<const std::size_t> touched,
    double uniform_cap) {
  assert(uniform_cap > 0.0);
  return run(flows, capacities, touched, uniform_cap);
}

const std::vector<double>& MaxMinSolver::run(
    std::span<const FairShareFlowView> flows,
    std::span<const double> capacities, std::span<const std::size_t> touched,
    double uniform_cap) {
  const std::size_t num_flows = flows.size();
  const std::size_t num_res = capacities.size();
  const bool uniform = uniform_cap > 0.0;
  ++stats_.solves;
  stats_.flows_solved += num_flows;

  rate_.assign(num_flows, 0.0);
  frozen_.assign(num_flows, 0);
  // Resource-indexed workspace is grow-only and reset sparsely: only the
  // touched entries are (re)initialized, so a small subproblem over a big
  // fabric costs nothing per untouched link.
  if (residual_.size() < num_res) {
    residual_.resize(num_res);
    active_on_.resize(num_res);
    csr_start_.resize(num_res);
    csr_end_.resize(num_res);
  }
  for (std::size_t r : touched) {
    residual_[r] = capacities[r];
    active_on_[r] = 0;
  }

  // Flat CSR flow->resource incidence: count, prefix-sum over the touched
  // list, fill. Grouping per resource preserves flow order, matching the
  // reference's adjacency lists. csr_end_ doubles as the fill cursor and
  // lands exactly on the group end.
  std::size_t total = 0;
  for (const auto& flow : flows) {
    assert(!uniform || flow.cap == uniform_cap);
    for (std::size_t r : flow.resources) {
      if (r >= num_res) throw std::out_of_range("resource index out of range");
      ++active_on_[r];
    }
    total += flow.resources.size();
  }
  std::size_t cum = 0;
  for (std::size_t r : touched) {
    csr_start_[r] = cum;
    csr_end_[r] = cum;
    cum += active_on_[r];
  }
  csr_flows_.resize(total);
  for (std::size_t f = 0; f < num_flows; ++f) {
    for (std::size_t r : flows[f].resources) {
      csr_flows_[csr_end_[r]++] = f;
    }
  }

  // Seed the link heap: every populated resource's initial share. The heap's
  // internal layout depends on the seeding order, but every decision below
  // reads only the front — the minimum under a strict total (key, idx)
  // order — so the freeze sequence (and every computed double) is
  // independent of the order `touched` lists the resources in.
  link_heap_.clear();
  for (std::size_t r : touched) {
    if (active_on_[r] > 0) {
      link_heap_.push_back(
          {residual_[r] / static_cast<double>(active_on_[r]), r});
    }
  }
  std::make_heap(link_heap_.begin(), link_heap_.end(), EntryGreater{});

  // Cap bookkeeping: a heap of (cap, flow) in the general case; with a
  // uniform cap every entry has the same key, so the heap's pop order is
  // exactly ascending flow index — a cursor over the flow array reproduces
  // it without any heap maintenance.
  std::size_t cap_cursor = 0;
  if (!uniform) {
    cap_heap_.clear();
    for (std::size_t f = 0; f < num_flows; ++f) {
      if (flows[f].cap > 0.0) cap_heap_.push_back({flows[f].cap, f});
    }
    std::make_heap(cap_heap_.begin(), cap_heap_.end(), EntryGreater{});
  }

  std::size_t remaining = num_flows;
  while (remaining > 0) {
    // Smallest unfrozen cap.
    double cap_level = kInf;
    std::size_t capped_flow = num_flows;
    if (uniform) {
      while (cap_cursor < num_flows && frozen_[cap_cursor]) ++cap_cursor;
      if (cap_cursor < num_flows) {
        cap_level = uniform_cap;
        capped_flow = cap_cursor;
      }
    } else {
      while (!cap_heap_.empty()) {
        const HeapEntry top = cap_heap_.front();
        if (!frozen_[top.idx]) {
          cap_level = top.key;
          capped_flow = top.idx;
          break;
        }
        std::pop_heap(cap_heap_.begin(), cap_heap_.end(), EntryGreater{});
        cap_heap_.pop_back();
      }
    }

    // Lower-bound gate: every link's current share is >= its own heap key,
    // and the front key is the minimum key, so the true minimum share is
    // >= link_heap_.front().key. When that lower bound already clears the
    // cap level, the cap freeze wins the round without touching the link
    // heap — the exact comparison below would have picked the same branch,
    // the same flow, and the same value, so the freeze sequence (and thus
    // every computed double) is unchanged. In cap-dominated rounds this
    // skips the whole stale-entry fixup walk.
    if (capped_flow != num_flows &&
        (link_heap_.empty() || link_heap_.front().key >= cap_level)) {
      if (uniform) {
        // Once the heap's lower bound clears the uniform cap it clears it
        // forever: keys and shares only rise, and the cap level is fixed.
        // Every remaining round would be this same cap freeze — in cursor
        // order, i.e. ascending flow index — and the residual bookkeeping
        // those freezes would do is dead (the workspace is reset before the
        // next solve). Freeze them all at once.
        for (std::size_t f = cap_cursor; f < num_flows; ++f) {
          if (frozen_[f]) continue;
          frozen_[f] = 1;
          rate_[f] = uniform_cap;
        }
        break;
      }
      std::pop_heap(cap_heap_.begin(), cap_heap_.end(), EntryGreater{});
      cap_heap_.pop_back();
      freeze(flows, capped_flow, cap_level);
      --remaining;
      continue;
    }

    // Tightest link. Heap entries are lower bounds on the links' current
    // shares (shares only grow as filling proceeds): drop entries for
    // emptied links, re-push stale entries at their current share, and stop
    // when the top is current — it is then the true minimum, with ties
    // broken toward the lowest index exactly like the reference scan (any
    // other link with an equal current share still has its entry key pinned
    // between the front key and its share, i.e. equal, so the heap's
    // (key, idx) order resolves the tie by index).
    double link_share = kInf;
    std::size_t tight_link = num_res;
    while (!link_heap_.empty()) {
      const HeapEntry top = link_heap_.front();
      if (active_on_[top.idx] != 0) {
        const double current =
            residual_[top.idx] / static_cast<double>(active_on_[top.idx]);
        if (top.key == current) {
          link_share = current;
          tight_link = top.idx;
          break;
        }
        std::pop_heap(link_heap_.begin(), link_heap_.end(), EntryGreater{});
        link_heap_.back().key = current;
        std::push_heap(link_heap_.begin(), link_heap_.end(), EntryGreater{});
        continue;
      }
      std::pop_heap(link_heap_.begin(), link_heap_.end(), EntryGreater{});
      link_heap_.pop_back();
    }

    if (tight_link == num_res && capped_flow == num_flows) {
      // Remaining flows are uncapped and cross no capacitated resource:
      // conventionally give them zero (callers treat empty paths specially).
      break;
    }

    if (cap_level <= link_share) {
      // Freeze the capped flow at its cap and release its share.
      if (!uniform) {
        std::pop_heap(cap_heap_.begin(), cap_heap_.end(), EntryGreater{});
        cap_heap_.pop_back();
      }
      freeze(flows, capped_flow, cap_level);
      --remaining;
      continue;
    }

    // Freeze every unfrozen flow on the tightest link at the link share.
    // (freeze() drains the link's active count, so the heap entry consumed
    // here goes stale on its own.)
    for (std::size_t i = csr_start_[tight_link]; i < csr_end_[tight_link];
         ++i) {
      const std::size_t f = csr_flows_[i];
      if (frozen_[f]) continue;
      freeze(flows, f, link_share);
      --remaining;
    }
  }

  return rate_;
}

std::vector<double> max_min_fair_rates(
    const std::vector<FairShareFlow>& flows,
    const std::vector<double>& capacities) {
  std::vector<FairShareFlowView> views;
  views.reserve(flows.size());
  for (const auto& flow : flows) {
    views.push_back({std::span<const std::size_t>(flow.resources), flow.cap});
  }
  MaxMinSolver solver;
  return solver.solve(views, capacities);
}

}  // namespace netpp
