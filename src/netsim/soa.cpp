#include "netpp/netsim/soa.h"

#include <atomic>
#include <limits>

#if defined(NETPP_SIMD) && defined(__x86_64__) && \
    (defined(__GNUC__) || defined(__clang__))
#define NETPP_SIMD_X86 1
#include <immintrin.h>
#else
#define NETPP_SIMD_X86 0
#endif

namespace netpp::soa {

namespace {

// force_simd_level cap; values above any real level mean "no cap". Atomic so
// the TSan job can run solver tests concurrently with a forced level.
std::atomic<int> g_forced_level{1 << 20};

void div_shares_scalar(const double* residual, const std::uint32_t* active,
                       double* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = residual[i] / static_cast<double>(active[i]);
  }
}

void fill_unfrozen_scalar(double* rate, std::uint8_t* frozen, double value,
                          std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    if (frozen[i] == 0) {
      rate[i] = value;
      frozen[i] = 1;
    }
  }
}

void settle_scalar(double* remaining, const double* rate, double dt,
                   std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const double next = remaining[i] - rate[i] * dt;
    remaining[i] = next > 0.0 ? next : 0.0;
  }
}

void completion_scan_scalar(const double* remaining, const double* rate,
                            double cap, std::size_t n, double* min_quotient,
                            double* min_capped) {
  double q = std::numeric_limits<double>::infinity();
  double c = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < n; ++i) {
    const double r = rate[i];
    if (r <= 0.0) continue;  // stalled lane (fully contended/disabled)
    if (r == cap) {
      if (remaining[i] < c) c = remaining[i];
    } else {
      const double t = remaining[i] / r;
      if (t < q) q = t;
    }
  }
  *min_quotient = q;
  *min_capped = c;
}

#if NETPP_SIMD_X86

// The 2^31 problem-size bound (enforced by MaxMinSolver) makes the signed
// epi32 -> double conversions below exact for every count that can occur.

void div_shares_sse2(const double* residual, const std::uint32_t* active,
                     double* out, std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128i counts = _mm_loadl_epi64(
        reinterpret_cast<const __m128i*>(active + i));  // two uint32 lanes
    const __m128d denom = _mm_cvtepi32_pd(counts);
    const __m128d numer = _mm_loadu_pd(residual + i);
    _mm_storeu_pd(out + i, _mm_div_pd(numer, denom));
  }
  div_shares_scalar(residual + i, active + i, out + i, n - i);
}

void fill_unfrozen_sse2(double* rate, std::uint8_t* frozen, double value,
                        std::size_t n) {
  const __m128d fill = _mm_set1_pd(value);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128i mask = _mm_set_epi64x(frozen[i + 1] == 0 ? -1 : 0,
                                        frozen[i] == 0 ? -1 : 0);
    const __m128d maskd = _mm_castsi128_pd(mask);
    const __m128d cur = _mm_loadu_pd(rate + i);
    const __m128d res =
        _mm_or_pd(_mm_andnot_pd(maskd, cur), _mm_and_pd(maskd, fill));
    _mm_storeu_pd(rate + i, res);
    frozen[i] = 1;
    frozen[i + 1] = 1;
  }
  fill_unfrozen_scalar(rate + i, frozen + i, value, n - i);
}

__attribute__((target("avx2"))) void div_shares_avx2(
    const double* residual, const std::uint32_t* active, double* out,
    std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i counts =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(active + i));
    const __m256d denom = _mm256_cvtepi32_pd(counts);
    const __m256d numer = _mm256_loadu_pd(residual + i);
    _mm256_storeu_pd(out + i, _mm256_div_pd(numer, denom));
  }
  div_shares_scalar(residual + i, active + i, out + i, n - i);
}

__attribute__((target("avx2"))) void fill_unfrozen_avx2(double* rate,
                                                        std::uint8_t* frozen,
                                                        double value,
                                                        std::size_t n) {
  const __m256d fill = _mm256_set1_pd(value);
  const __m256i zero = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    std::uint32_t packed;
    std::memcpy(&packed, frozen + i, sizeof(packed));
    const __m256i lanes = _mm256_cvtepi8_epi64(
        _mm_cvtsi32_si128(static_cast<int>(packed)));  // 4 flag bytes -> i64
    const __m256d mask =
        _mm256_castsi256_pd(_mm256_cmpeq_epi64(lanes, zero));
    const __m256d cur = _mm256_loadu_pd(rate + i);
    _mm256_storeu_pd(rate + i, _mm256_blendv_pd(cur, fill, mask));
    packed = 0x01010101U;
    std::memcpy(frozen + i, &packed, sizeof(packed));
  }
  fill_unfrozen_scalar(rate + i, frozen + i, value, n - i);
}

void settle_sse2(double* remaining, const double* rate, double dt,
                 std::size_t n) {
  const __m128d vdt = _mm_set1_pd(dt);
  const __m128d zero = _mm_setzero_pd();
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128d rem = _mm_loadu_pd(remaining + i);
    const __m128d next =
        _mm_sub_pd(rem, _mm_mul_pd(_mm_loadu_pd(rate + i), vdt));
    // maxpd(next, 0) returns the second operand on NaN and on equal zeros —
    // exactly the scalar `next > 0.0 ? next : 0.0`.
    _mm_storeu_pd(remaining + i, _mm_max_pd(next, zero));
  }
  settle_scalar(remaining + i, rate + i, dt, n - i);
}

__attribute__((target("avx2"))) void settle_avx2(double* remaining,
                                                 const double* rate, double dt,
                                                 std::size_t n) {
  const __m256d vdt = _mm256_set1_pd(dt);
  const __m256d zero = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d rem = _mm256_loadu_pd(remaining + i);
    const __m256d next =
        _mm256_sub_pd(rem, _mm256_mul_pd(_mm256_loadu_pd(rate + i), vdt));
    _mm256_storeu_pd(remaining + i, _mm256_max_pd(next, zero));
  }
  settle_scalar(remaining + i, rate + i, dt, n - i);
}

void completion_scan_sse2(const double* remaining, const double* rate,
                          double cap, std::size_t n, double* min_quotient,
                          double* min_capped) {
  const double inf = std::numeric_limits<double>::infinity();
  const __m128d vcap = _mm_set1_pd(cap);
  const __m128d zero = _mm_setzero_pd();
  const __m128d vinf = _mm_set1_pd(inf);
  __m128d qacc = vinf;
  __m128d cacc = vinf;
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128d r = _mm_loadu_pd(rate + i);
    const __m128d rem = _mm_loadu_pd(remaining + i);
    const __m128d pos = _mm_cmpgt_pd(r, zero);
    const __m128d at_cap = _mm_and_pd(pos, _mm_cmpeq_pd(r, vcap));
    const __m128d below = _mm_andnot_pd(_mm_cmpeq_pd(r, vcap), pos);
    // The division runs on every lane; non-qualifying lanes (which may hold
    // 0/0 = NaN) are blended to +inf before they can reach the min.
    const __m128d quo = _mm_div_pd(rem, r);
    const __m128d qlane =
        _mm_or_pd(_mm_and_pd(below, quo), _mm_andnot_pd(below, vinf));
    const __m128d clane =
        _mm_or_pd(_mm_and_pd(at_cap, rem), _mm_andnot_pd(at_cap, vinf));
    qacc = _mm_min_pd(qacc, qlane);
    cacc = _mm_min_pd(cacc, clane);
  }
  double lanes[2];
  _mm_storeu_pd(lanes, qacc);
  double q = lanes[0] < lanes[1] ? lanes[0] : lanes[1];
  _mm_storeu_pd(lanes, cacc);
  double c = lanes[0] < lanes[1] ? lanes[0] : lanes[1];
  double qt;
  double ct;
  completion_scan_scalar(remaining + i, rate + i, cap, n - i, &qt, &ct);
  *min_quotient = qt < q ? qt : q;
  *min_capped = ct < c ? ct : c;
}

__attribute__((target("avx2"))) void completion_scan_avx2(
    const double* remaining, const double* rate, double cap, std::size_t n,
    double* min_quotient, double* min_capped) {
  const double inf = std::numeric_limits<double>::infinity();
  const __m256d vcap = _mm256_set1_pd(cap);
  const __m256d zero = _mm256_setzero_pd();
  const __m256d vinf = _mm256_set1_pd(inf);
  __m256d qacc = vinf;
  __m256d cacc = vinf;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d r = _mm256_loadu_pd(rate + i);
    const __m256d rem = _mm256_loadu_pd(remaining + i);
    const __m256d pos = _mm256_cmp_pd(r, zero, _CMP_GT_OQ);
    const __m256d eq_cap = _mm256_cmp_pd(r, vcap, _CMP_EQ_OQ);
    const __m256d at_cap = _mm256_and_pd(pos, eq_cap);
    const __m256d below = _mm256_andnot_pd(eq_cap, pos);
    const __m256d quo = _mm256_div_pd(rem, r);
    qacc = _mm256_min_pd(qacc, _mm256_blendv_pd(vinf, quo, below));
    cacc = _mm256_min_pd(cacc, _mm256_blendv_pd(vinf, rem, at_cap));
  }
  double lanes[4];
  _mm256_storeu_pd(lanes, qacc);
  double q = lanes[0];
  for (int l = 1; l < 4; ++l) q = lanes[l] < q ? lanes[l] : q;
  _mm256_storeu_pd(lanes, cacc);
  double c = lanes[0];
  for (int l = 1; l < 4; ++l) c = lanes[l] < c ? lanes[l] : c;
  double qt;
  double ct;
  completion_scan_scalar(remaining + i, rate + i, cap, n - i, &qt, &ct);
  *min_quotient = qt < q ? qt : q;
  *min_capped = ct < c ? ct : c;
}

#endif  // NETPP_SIMD_X86

}  // namespace

const char* to_string(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kSse2:
      return "sse2";
    case SimdLevel::kAvx2:
      return "avx2";
  }
  return "unknown";
}

SimdLevel detected_simd_level() {
#if NETPP_SIMD_X86
  static const SimdLevel detected =
      __builtin_cpu_supports("avx2") ? SimdLevel::kAvx2 : SimdLevel::kSse2;
  return detected;
#else
  return SimdLevel::kScalar;
#endif
}

SimdLevel active_simd_level() {
  const int forced = g_forced_level.load(std::memory_order_relaxed);
  const SimdLevel detected = detected_simd_level();
  return static_cast<int>(detected) <= forced ? detected
                                              : static_cast<SimdLevel>(forced);
}

SimdLevel force_simd_level(SimdLevel level) {
  g_forced_level.store(static_cast<int>(level), std::memory_order_relaxed);
  return active_simd_level();
}

void div_shares(const double* residual, const std::uint32_t* active,
                double* out, std::size_t n) {
  switch (active_simd_level()) {
#if NETPP_SIMD_X86
    case SimdLevel::kAvx2:
      div_shares_avx2(residual, active, out, n);
      return;
    case SimdLevel::kSse2:
      div_shares_sse2(residual, active, out, n);
      return;
#endif
    default:
      div_shares_scalar(residual, active, out, n);
      return;
  }
}

void fill_unfrozen(double* rate, std::uint8_t* frozen, double value,
                   std::size_t n) {
  switch (active_simd_level()) {
#if NETPP_SIMD_X86
    case SimdLevel::kAvx2:
      fill_unfrozen_avx2(rate, frozen, value, n);
      return;
    case SimdLevel::kSse2:
      fill_unfrozen_sse2(rate, frozen, value, n);
      return;
#endif
    default:
      fill_unfrozen_scalar(rate, frozen, value, n);
      return;
  }
}

void settle(double* remaining, const double* rate, double dt, std::size_t n) {
  switch (active_simd_level()) {
#if NETPP_SIMD_X86
    case SimdLevel::kAvx2:
      settle_avx2(remaining, rate, dt, n);
      return;
    case SimdLevel::kSse2:
      settle_sse2(remaining, rate, dt, n);
      return;
#endif
    default:
      settle_scalar(remaining, rate, dt, n);
      return;
  }
}

void completion_scan(const double* remaining, const double* rate, double cap,
                     std::size_t n, double* min_quotient, double* min_capped) {
  switch (active_simd_level()) {
#if NETPP_SIMD_X86
    case SimdLevel::kAvx2:
      completion_scan_avx2(remaining, rate, cap, n, min_quotient, min_capped);
      return;
    case SimdLevel::kSse2:
      completion_scan_sse2(remaining, rate, cap, n, min_quotient, min_capped);
      return;
#endif
    default:
      completion_scan_scalar(remaining, rate, cap, n, min_quotient,
                             min_capped);
      return;
  }
}

}  // namespace netpp::soa
