#include "netpp/netsim/sharded.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <exception>
#include <limits>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "netpp/sim/thread_budget.h"
#include "netpp/validation.h"

namespace netpp {

namespace {

constexpr const char* kName = "ShardedFlowSimulator";

/// Verbatim single-shard topology: the global graph copied with identical
/// node and link ids and no gateway. Built directly (not through
/// build_shard_topology) so one-shard operation works on any graph the
/// plain FlowSimulator accepts, partitionable or not.
ShardTopology make_verbatim_topology(const Graph& graph) {
  ShardTopology topo;
  for (const Node& n : graph.nodes()) topo.graph.add_node(n.kind, n.tier, n.name);
  for (const Link& l : graph.links())
    topo.graph.add_link(l.a, l.b, l.capacity, l.optical);
  topo.local_of_global.resize(graph.num_nodes());
  topo.global_of_local.resize(graph.num_nodes());
  for (NodeId n = 0; n < graph.num_nodes(); ++n) {
    topo.local_of_global[n] = n;
    topo.global_of_local[n] = n;
  }
  topo.local_link_of_global.resize(graph.num_links());
  for (LinkId l = 0; l < graph.num_links(); ++l)
    topo.local_link_of_global[l] = l;
  return topo;
}

/// All-in-one-pod fallback partition for single-shard operation on graphs
/// make_pod_partition rejects (no core layer, multi-stage core).
PodPartition make_trivial_partition(const Graph& graph) {
  PodPartition p;
  p.pod_of_node.assign(graph.num_nodes(), 0);
  p.num_pods = 1;
  p.pod_nodes.resize(1);
  p.pod_nodes[0].resize(graph.num_nodes());
  for (NodeId n = 0; n < graph.num_nodes(); ++n) p.pod_nodes[0][n] = n;
  return p;
}

}  // namespace

ShardedFlowSimulator::ShardedFlowSimulator(const Graph& graph, Config config)
    : graph_(graph), config_(std::move(config)) {
  validation::require(config_.num_shards >= 1, kName,
                      "num_shards must be at least 1");
  validation::require(
      std::isfinite(config_.barrier_interval.value()) &&
          config_.barrier_interval.value() > 0.0,
      kName, "barrier_interval must be finite and positive");
  validation::require(config_.shard.telemetry == nullptr, kName,
                      "shard config must not carry a telemetry bundle (each "
                      "shard owns a private registry; see merged_metrics)");
  validation::require(graph_.num_nodes() > 0, kName,
                      "graph must not be empty");

  std::vector<ShardTopology> topologies;
  if (config_.num_shards == 1) {
    try {
      partition_ = make_pod_partition(graph_);
    } catch (const std::invalid_argument&) {
      partition_ = make_trivial_partition(graph_);
    }
    shard_of_pod_.assign(partition_.num_pods, 0);
    topologies.push_back(make_verbatim_topology(graph_));
  } else {
    partition_ = make_pod_partition(graph_);
    shard_of_pod_ =
        assign_pods_contiguous(partition_.num_pods, config_.num_shards);
    topologies.reserve(config_.num_shards);
    for (std::size_t s = 0; s < config_.num_shards; ++s) {
      topologies.push_back(build_shard_topology(
          graph_, partition_, shard_of_pod_, static_cast<int>(s)));
    }
  }

  shards_.reserve(topologies.size());
  for (std::size_t s = 0; s < topologies.size(); ++s) {
    auto shard = std::make_unique<Shard>();
    shard->topo = std::move(topologies[s]);
    shard->router = std::make_unique<Router>(shard->topo.graph);
    shard->engine = std::make_unique<SimEngine>();
    telemetry::TelemetryConfig tcfg;
    tcfg.events = false;
    tcfg.sample_period = Seconds{0.0};
    shard->telemetry = std::make_unique<telemetry::Telemetry>(tcfg);
    FlowSimulator::Config scfg = config_.shard;
    scfg.telemetry = shard->telemetry.get();
    shard->sim = std::make_unique<FlowSimulator>(
        shard->topo.graph, *shard->router, *shard->engine, scfg);
    for (std::size_t g = 0; g < shard->topo.gateway_links.size(); ++g) {
      for (const LinkId l : shard->topo.gateway_links[g].global_links) {
        gateway_of_boundary_.emplace(
            l, std::make_pair(static_cast<std::uint32_t>(s),
                              static_cast<std::uint32_t>(g)));
      }
    }
    shards_.push_back(std::move(shard));
  }
}

std::uint32_t ShardedFlowSimulator::shard_of_node(NodeId global) const {
  validation::require(global < graph_.num_nodes(), kName,
                      "flow endpoint must be a node of the graph");
  const int pod = partition_.pod_of_node[global];
  validation::require(pod != PodPartition::kCore, kName,
                      "flow endpoints must be pod-local nodes, not core");
  return static_cast<std::uint32_t>(shard_of_pod_[static_cast<std::size_t>(pod)]);
}

FlowId ShardedFlowSimulator::submit(const FlowSpec& spec) {
  validation::require(spec.start.value() + 1e-15 >= now_.value(), kName,
                      "flow start must not precede the current barrier time");
  FlowEntry entry;
  entry.spec = spec;
  entry.id = next_id_++;
  entry.src_shard = shard_of_node(spec.src);
  entry.dst_shard = shard_of_node(spec.dst);
  const std::uint64_t f = flows_.size();

  if (entry.src_shard == entry.dst_shard) {
    Shard& s = *shards_[entry.src_shard];
    FlowSpec local = spec;
    local.src = s.topo.local_of_global[spec.src];
    local.dst = s.topo.local_of_global[spec.dst];
    local.tag = 2 * f;
    s.sim->submit(local);
  } else {
    Shard& src = *shards_[entry.src_shard];
    Shard& dst = *shards_[entry.dst_shard];
    FlowSpec ingress = spec;
    ingress.src = src.topo.local_of_global[spec.src];
    ingress.dst = src.topo.gateway;
    ingress.tag = 2 * f + 1;
    src.sim->submit(ingress);
    ++src.live_cross_halves;
    FlowSpec egress = spec;
    egress.src = dst.topo.gateway;
    egress.dst = dst.topo.local_of_global[spec.dst];
    egress.tag = 2 * f + 1;
    dst.sim->submit(egress);
    ++dst.live_cross_halves;
  }
  flows_.push_back(entry);
  return entry.id;
}

void ShardedFlowSimulator::run_until(Seconds until) {
  validation::require(
      std::isfinite(until.value()) && until.value() + 1e-15 >= now_.value(),
      kName, "run_until target must be finite and not precede now");
  const double interval = config_.barrier_interval.value();
  while (now_.value() < until.value()) {
    // Barriers sit on the fixed grid cursor * interval (recomputed by
    // multiplication, never accumulated) plus the caller's boundary, so the
    // window sequence — and with it every cross-shard exchange — is the
    // same no matter how the caller slices its run_until calls.
    const double next_grid =
        static_cast<double>(grid_cursor_ + 1) * interval;
    const bool grid_hit = next_grid <= until.value();
    const Seconds target{grid_hit ? next_grid : until.value()};
    advance_shards(target);
    now_ = target;
    barrier_sync();
    if (barrier_listener_) barrier_listener_(now_);
    if (grid_hit) ++grid_cursor_;
  }
}

void ShardedFlowSimulator::run() {
  const double interval = config_.barrier_interval.value();
  if (shards_.size() == 1) {
    // No cross-shard windows to respect: run the engine dry so now() lands
    // exactly on the last event, as the plain FlowSimulator would.
    shards_[0]->engine->run();
    now_ = shards_[0]->engine->now();
    while (static_cast<double>(grid_cursor_ + 1) * interval <= now_.value()) {
      ++grid_cursor_;
    }
    barrier_sync();
    if (barrier_listener_) barrier_listener_(now_);
    return;
  }
  // Draining window by window keeps every barrier on the fixed grid: the
  // barrier sequence stays a pure function of the grid and the caller's
  // explicit run_until boundaries, never of event times, so an interrupted
  // run replays the straight-line run exactly.
  while (std::isfinite(next_event_time())) {
    run_until(Seconds{static_cast<double>(grid_cursor_ + 1) * interval});
  }
}

void ShardedFlowSimulator::advance_shards(Seconds target) {
  const std::size_t n = shards_.size();
  const std::size_t requested =
      config_.num_threads != 0 ? config_.num_threads : thread_budget::pool_size();
  const thread_budget::ThreadLease lease{std::min(requested, n)};
  const std::size_t workers = std::min(lease.granted(), n);

  if (workers <= 1 || n == 1) {
    for (auto& shard : shards_) shard->engine->run_until(target);
    return;
  }

  // Workers claim whole shards; two workers never touch the same shard, and
  // nothing cross-shard happens until the serial barrier phase, so the only
  // shared state is the claim counter.
  std::atomic<std::size_t> next{0};
  std::mutex error_mutex;
  std::exception_ptr first_error;
  std::size_t first_error_shard = std::numeric_limits<std::size_t>::max();
  auto worker = [&] {
    for (;;) {
      const std::size_t s = next.fetch_add(1, std::memory_order_relaxed);
      if (s >= shards_.size()) return;
      try {
        shards_[s]->engine->run_until(target);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (s < first_error_shard) {
          first_error_shard = s;
          first_error = std::current_exception();
        }
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t t = 0; t < workers; ++t) pool.emplace_back(worker);
  for (auto& thread : pool) thread.join();
  if (first_error) std::rethrow_exception(first_error);
}

void ShardedFlowSimulator::barrier_sync() {
  drain_completions();
  reconcile_cross_flows();
}

void ShardedFlowSimulator::drain_completions() {
  // Every completion is drained at the first barrier at or after its finish
  // time, but callers may add extra barriers anywhere by splitting their
  // run_until windows, which changes how completions batch per barrier. The
  // drain therefore collects first and applies in (finish time, flow id)
  // order: batches partition completions into time intervals, so sorted
  // batches concatenate to the same global sequence no matter where the
  // windows were cut, keeping completed_ — and the FctAccumulator's fold
  // order — a pure function of the flow dynamics.
  struct Pending {
    std::size_t flow;
    double finished;
  };
  std::vector<Pending> ready;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    Shard& shard = *shards_[s];
    const auto& records = shard.sim->completed();
    for (std::size_t i = shard.completed_cursor; i < records.size(); ++i) {
      const FlowRecord& rec = records[i];
      const std::size_t flow = rec.spec.tag >> 1;
      FlowEntry& entry = flows_[flow];
      if ((rec.spec.tag & 1) == 0) {
        ready.push_back({flow, rec.finished.value()});
        continue;
      }
      if (static_cast<std::uint32_t>(s) == entry.src_shard) {
        entry.finished_src = rec.finished.value();
      } else {
        entry.finished_dst = rec.finished.value();
      }
      --shard.live_cross_halves;
      if (entry.finished_src >= 0.0 && entry.finished_dst >= 0.0) {
        ready.push_back(
            {flow, std::max(entry.finished_src, entry.finished_dst)});
      }
    }
    shard.completed_cursor = records.size();
  }
  if (shards_.size() > 1) {
    // A lone shard's records are already in the host sim's event order;
    // re-sorting same-time ties there would break bit-identity with the
    // plain FlowSimulator.
    std::sort(ready.begin(), ready.end(),
              [this](const Pending& a, const Pending& b) {
                if (a.finished != b.finished) return a.finished < b.finished;
                return flows_[a.flow].id < flows_[b.flow].id;
              });
  }
  for (const Pending& p : ready) complete_entry(flows_[p.flow], p.finished);
}

void ShardedFlowSimulator::complete_entry(FlowEntry& entry, double finished) {
  entry.completed = true;
  FlowRecord record;
  record.id = entry.id;
  record.spec = entry.spec;
  record.finished = Seconds{finished};
  fct_.add(record.fct().value());
  completed_.push_back(record);
}

void ShardedFlowSimulator::reconcile_cross_flows() {
  bool any = false;
  for (const auto& shard : shards_) any = any || shard->live_cross_halves > 0;
  if (!any) return;

  const std::uint32_t gen = ++barrier_gen_;
  std::vector<std::uint32_t> touched;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    Shard& shard = *shards_[s];
    if (shard.live_cross_halves == 0) continue;
    shard.sim->settle_to_now();
    const auto remaining = shard.sim->remaining_bits();
    const std::size_t active = shard.sim->active_flows();
    for (std::size_t i = 0; i < active; ++i) {
      const std::uint64_t tag = shard.sim->active_flow_tag(i);
      if ((tag & 1) == 0) continue;
      const std::uint32_t f = static_cast<std::uint32_t>(tag >> 1);
      FlowEntry& entry = flows_[f];
      if (entry.seen_src != gen && entry.seen_dst != gen) touched.push_back(f);
      if (static_cast<std::uint32_t>(s) == entry.src_shard) {
        entry.seen_src = gen;
        entry.index_src = static_cast<std::uint32_t>(i);
        entry.remaining_src = remaining[i];
      } else {
        entry.seen_dst = gen;
        entry.index_dst = static_cast<std::uint32_t>(i);
        entry.remaining_dst = remaining[i];
      }
    }
  }

  // Raise the faster half of every live pair to the slower half's remaining
  // volume: the end-to-end rate is min(halves) at window granularity.
  // Halves whose partner is pending, stranded, or already finished run
  // unconstrained this window. Raises leave rates untouched, so per-link
  // feasibility is preserved; dirty shards re-derive their completion event
  // once at the end.
  std::vector<std::uint8_t> dirty(shards_.size(), 0);
  for (const std::uint32_t f : touched) {
    FlowEntry& entry = flows_[f];
    if (entry.seen_src != gen || entry.seen_dst != gen) continue;
    const double r = std::max(entry.remaining_src, entry.remaining_dst);
    if (entry.remaining_src < r) {
      shards_[entry.src_shard]->sim->set_remaining_bits(entry.index_src, r);
      dirty[entry.src_shard] = 1;
    } else if (entry.remaining_dst < r) {
      shards_[entry.dst_shard]->sim->set_remaining_bits(entry.index_dst, r);
      dirty[entry.dst_shard] = 1;
    }
  }
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (dirty[s]) shards_[s]->sim->reschedule_completion();
  }
}

// --- Faults ---

void ShardedFlowSimulator::set_node_enabled(NodeId id, bool enabled) {
  validation::require(id < graph_.num_nodes(), kName,
                      "node id out of range");
  if (shards_.size() == 1) {
    shards_[0]->sim->set_node_enabled(id, enabled);
    return;
  }
  const int pod = partition_.pod_of_node[id];
  if (pod == PodPartition::kCore) {
    core_enabled_[id] = enabled;
    for (const Adjacency& adj : graph_.neighbors(id)) {
      refresh_agg_of_boundary_link(adj.link);
    }
    return;
  }
  Shard& shard = *shards_[static_cast<std::size_t>(shard_of_pod_[pod])];
  shard.sim->set_node_enabled(shard.topo.local_of_global[id], enabled);
}

void ShardedFlowSimulator::set_link_enabled(LinkId id, bool enabled) {
  validation::require(id < graph_.num_links(), kName,
                      "link id out of range");
  if (shards_.size() == 1) {
    shards_[0]->sim->set_link_enabled(id, enabled);
    return;
  }
  const auto boundary = gateway_of_boundary_.find(id);
  if (boundary != gateway_of_boundary_.end()) {
    boundary_state_[id].enabled = enabled;
    refresh_gateway_link(boundary->second.first, boundary->second.second);
    return;
  }
  const int pod = partition_.pod_of_node[graph_.link(id).a];
  Shard& shard = *shards_[static_cast<std::size_t>(shard_of_pod_[pod])];
  shard.sim->set_link_enabled(shard.topo.local_link_of_global[id], enabled);
}

void ShardedFlowSimulator::set_link_capacity_factor(LinkId id, double factor) {
  validation::require(id < graph_.num_links(), kName,
                      "link id out of range");
  validation::require(std::isfinite(factor) && factor > 0.0 && factor <= 1.0,
                      kName, "capacity factor must be in (0, 1]");
  if (shards_.size() == 1) {
    shards_[0]->sim->set_link_capacity_factor(id, factor);
    return;
  }
  const auto boundary = gateway_of_boundary_.find(id);
  if (boundary != gateway_of_boundary_.end()) {
    boundary_state_[id].factor = factor;
    refresh_gateway_link(boundary->second.first, boundary->second.second);
    return;
  }
  const int pod = partition_.pod_of_node[graph_.link(id).a];
  Shard& shard = *shards_[static_cast<std::size_t>(shard_of_pod_[pod])];
  shard.sim->set_link_capacity_factor(shard.topo.local_link_of_global[id],
                                      factor);
}

bool ShardedFlowSimulator::node_enabled(NodeId id) const {
  validation::require(id < graph_.num_nodes(), kName, "node id out of range");
  if (shards_.size() == 1) return shards_[0]->sim->router().node_enabled(id);
  const int pod = partition_.pod_of_node[id];
  if (pod == PodPartition::kCore) {
    const auto it = core_enabled_.find(id);
    return it == core_enabled_.end() || it->second;
  }
  const Shard& shard = *shards_[static_cast<std::size_t>(shard_of_pod_[pod])];
  return shard.sim->router().node_enabled(shard.topo.local_of_global[id]);
}

bool ShardedFlowSimulator::link_enabled(LinkId id) const {
  validation::require(id < graph_.num_links(), kName, "link id out of range");
  if (shards_.size() == 1) return shards_[0]->sim->router().link_enabled(id);
  const auto boundary = boundary_state_.find(id);
  if (boundary != boundary_state_.end()) return boundary->second.enabled;
  if (gateway_of_boundary_.count(id) != 0) return true;  // untouched boundary
  const int pod = partition_.pod_of_node[graph_.link(id).a];
  const Shard& shard = *shards_[static_cast<std::size_t>(shard_of_pod_[pod])];
  return shard.sim->router().link_enabled(shard.topo.local_link_of_global[id]);
}

double ShardedFlowSimulator::link_capacity_factor(LinkId id) const {
  validation::require(id < graph_.num_links(), kName, "link id out of range");
  if (shards_.size() == 1) return shards_[0]->sim->link_capacity_factor(id);
  const auto boundary = boundary_state_.find(id);
  if (boundary != boundary_state_.end()) return boundary->second.factor;
  if (gateway_of_boundary_.count(id) != 0) return 1.0;  // untouched boundary
  const int pod = partition_.pod_of_node[graph_.link(id).a];
  const Shard& shard = *shards_[static_cast<std::size_t>(shard_of_pod_[pod])];
  return shard.sim->link_capacity_factor(shard.topo.local_link_of_global[id]);
}

void ShardedFlowSimulator::refresh_agg_of_boundary_link(LinkId global_link) {
  const auto it = gateway_of_boundary_.find(global_link);
  if (it == gateway_of_boundary_.end()) return;
  refresh_gateway_link(it->second.first, it->second.second);
}

void ShardedFlowSimulator::refresh_gateway_link(std::size_t shard,
                                                std::size_t gl_index) {
  Shard& s = *shards_[shard];
  const ShardTopology::GatewayLink& gl = s.topo.gateway_links[gl_index];
  double effective = 0.0;
  for (const LinkId l : gl.global_links) {
    const Link& link = graph_.link(l);
    const NodeId core = partition_.is_core(link.a) ? link.a : link.b;
    const auto ce = core_enabled_.find(core);
    if (ce != core_enabled_.end() && !ce->second) continue;
    const auto bs = boundary_state_.find(l);
    if (bs != boundary_state_.end()) {
      if (!bs->second.enabled) continue;
      effective += link.capacity.bits_per_second() * bs->second.factor;
    } else {
      effective += link.capacity.bits_per_second();
    }
  }
  const std::uint64_t key =
      (static_cast<std::uint64_t>(shard) << 32) | gl_index;
  const bool was_disabled = gateway_link_disabled_.count(key) != 0;
  if (effective <= 0.0) {
    if (!was_disabled) {
      s.sim->set_link_enabled(gl.local_link, false);
      gateway_link_disabled_.emplace(key, true);
    }
    return;
  }
  const double factor = effective / gl.total_capacity_bps;
  s.sim->set_link_capacity_factor(gl.local_link, factor);
  if (was_disabled) {
    s.sim->set_link_enabled(gl.local_link, true);
    gateway_link_disabled_.erase(key);
  }
}

// --- Results ---

std::size_t ShardedFlowSimulator::active_flows() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) total += shard->sim->active_flows();
  return total;
}

std::size_t ShardedFlowSimulator::stranded_flows() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) total += shard->sim->stranded_flows();
  return total;
}

std::size_t ShardedFlowSimulator::unroutable_flows() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) total += shard->sim->unroutable_flows();
  return total;
}

FlowSimulator::ReallocStats ShardedFlowSimulator::realloc_stats() const {
  FlowSimulator::ReallocStats total;
  for (const auto& shard : shards_) {
    const FlowSimulator::ReallocStats& s = shard->sim->realloc_stats();
    total.full_solves += s.full_solves;
    total.fast_arrivals += s.fast_arrivals;
    total.fast_departures += s.fast_departures;
    total.binding_solves += s.binding_solves;
    total.binding_subset_flows += s.binding_subset_flows;
    total.topology_changes += s.topology_changes;
    total.reroutes += s.reroutes;
    total.stranded += s.stranded;
    total.resumed += s.resumed;
    total.route_cache.hits += s.route_cache.hits;
    total.route_cache.misses += s.route_cache.misses;
    total.route_cache.epoch_flushes += s.route_cache.epoch_flushes;
    total.route_cache.entries += s.route_cache.entries;
    total.route_cache.pool_bytes += s.route_cache.pool_bytes;
  }
  return total;
}

double ShardedFlowSimulator::stranded_bit_seconds(Seconds now) const {
  double total = 0.0;
  for (const auto& shard : shards_) {
    total += shard->sim->stranded_bit_seconds(now);
  }
  return total;
}

std::vector<double> ShardedFlowSimulator::strand_durations() const {
  std::vector<double> all;
  for (const auto& shard : shards_) {
    const std::vector<double>& d = shard->sim->strand_durations();
    all.insert(all.end(), d.begin(), d.end());
  }
  return all;
}

double ShardedFlowSimulator::current_mean_utilization() const {
  FlowSimulator::UtilizationTotals total;
  for (const auto& shard : shards_) {
    const FlowSimulator::UtilizationTotals t =
        shard->sim->utilization_totals();
    total.carried_bps += t.carried_bps;
    total.capacity_bps += t.capacity_bps;
  }
  return total.capacity_bps > 0.0 ? total.carried_bps / total.capacity_bps
                                  : 0.0;
}

double ShardedFlowSimulator::next_event_time() {
  double next = std::numeric_limits<double>::infinity();
  for (const auto& shard : shards_) {
    next = std::min(next, shard->engine->next_event_time());
  }
  return next;
}

std::vector<telemetry::MetricSample> ShardedFlowSimulator::merged_metrics()
    const {
  std::vector<telemetry::MetricSample> merged;
  std::unordered_map<std::string, std::size_t> index;
  for (const auto& shard : shards_) {
    shard->sim->flush_metrics();
    for (telemetry::MetricSample& sample :
         shard->telemetry->metrics().snapshot()) {
      const auto it = index.find(sample.name);
      if (it == index.end()) {
        index.emplace(sample.name, merged.size());
        merged.push_back(std::move(sample));
        continue;
      }
      telemetry::MetricSample& into = merged[it->second];
      validation::require(into.kind == sample.kind, kName,
                          "merged metric kinds must agree across shards");
      into.value += sample.value;
      into.count += sample.count;
      if (sample.count > 0) {
        if (into.count == sample.count || sample.min < into.min)
          into.min = sample.min;
        if (into.count == sample.count || sample.max > into.max)
          into.max = sample.max;
      }
      if (!sample.buckets.empty()) {
        validation::require(into.bounds == sample.bounds, kName,
                            "merged histogram bounds must agree across shards");
        for (std::size_t b = 0; b < sample.buckets.size(); ++b)
          into.buckets[b] += sample.buckets[b];
      }
    }
  }
  // Counters accumulate exactly in the integer `count`; the double `value`
  // must mirror it rather than a shard-order-dependent double sum. Name
  // order (not shard-0 registration order) keeps the export byte-stable
  // across shard counts.
  for (telemetry::MetricSample& sample : merged) {
    if (sample.kind == telemetry::MetricKind::kCounter) {
      sample.value = static_cast<double>(sample.count);
    }
  }
  std::sort(merged.begin(), merged.end(),
            [](const telemetry::MetricSample& a,
               const telemetry::MetricSample& b) { return a.name < b.name; });
  return merged;
}

// --- Snapshot / restore ---

void ShardedFlowSimulator::save_state(state::SnapshotWriter& w) const {
  w.begin_section("sharded");
  // Config echo: restore targets must be built identically.
  w.put_u64(config_.num_shards);
  w.put_f64(config_.barrier_interval.value());
  w.put_u64(config_.shard.max_ecmp_paths);
  w.put_f64(config_.shard.flow_rate_cap.value());
  w.put_bool(config_.shard.use_route_cache);
  w.put_bool(config_.shard.incremental_reallocation);
  w.put_bool(config_.shard.strand_unroutable);

  w.put_f64(now_.value());
  w.put_u64(grid_cursor_);
  w.put_u64(next_id_);
  w.put_u64(fct_.count());
  w.put_f64(fct_.mean());
  w.put_f64(fct_.m2());
  w.put_f64(fct_.sum());
  w.put_f64(fct_.raw_min());
  w.put_f64(fct_.raw_max());

  w.put_u64(flows_.size());
  for (const FlowEntry& e : flows_) {
    w.put_u32(e.spec.src);
    w.put_u32(e.spec.dst);
    w.put_f64(e.spec.size.value());
    w.put_f64(e.spec.start.value());
    w.put_u64(e.spec.tag);
    w.put_u64(e.id);
    w.put_u32(e.src_shard);
    w.put_u32(e.dst_shard);
    w.put_f64(e.finished_src);
    w.put_f64(e.finished_dst);
    w.put_bool(e.completed);
  }
  // Records rebuild their specs from the flow table: driver ids are
  // assigned sequentially from 1, so id - 1 indexes flows_.
  w.put_u64(completed_.size());
  for (const FlowRecord& r : completed_) {
    w.put_u64(r.id);
    w.put_f64(r.finished.value());
  }

  // Fault state, sorted by id for a canonical image.
  std::vector<std::pair<LinkId, BoundaryState>> boundary(
      boundary_state_.begin(), boundary_state_.end());
  std::sort(boundary.begin(), boundary.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  w.put_u64(boundary.size());
  for (const auto& [link, bs] : boundary) {
    w.put_u32(link);
    w.put_bool(bs.enabled);
    w.put_f64(bs.factor);
  }
  std::vector<std::pair<NodeId, bool>> cores(core_enabled_.begin(),
                                             core_enabled_.end());
  std::sort(cores.begin(), cores.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  w.put_u64(cores.size());
  for (const auto& [node, enabled] : cores) {
    w.put_u32(node);
    w.put_bool(enabled);
  }
  std::vector<std::uint64_t> disabled;
  disabled.reserve(gateway_link_disabled_.size());
  for (const auto& [key, value] : gateway_link_disabled_) {
    (void)value;
    disabled.push_back(key);
  }
  std::sort(disabled.begin(), disabled.end());
  w.put_u64_vec(disabled);

  for (const auto& shard : shards_) {
    w.put_u64(shard->completed_cursor);
    w.put_u64(shard->live_cross_halves);
    w.put_f64(shard->engine->now().value());
    w.put_u64(shard->engine->next_seq());
  }
  w.end_section();

  for (const auto& shard : shards_) {
    shard->sim->save_state(w);
    // Attached shard sims keep their counters (realloc stats, solver
    // stats) in the shard's private registry, which the attached-sim
    // snapshot skips — the orchestrator owns it, so serialize it here.
    shard->sim->flush_metrics();
    shard->telemetry->metrics().save_state(w);
  }
}

void ShardedFlowSimulator::restore_state(state::SnapshotReader& r) {
  r.open_section("sharded");
  validation::require(r.get_u64() == config_.num_shards, kName,
                      "restored num_shards must match");
  validation::require(r.get_f64() == config_.barrier_interval.value(), kName,
                      "restored barrier_interval must match");
  validation::require(r.get_u64() == config_.shard.max_ecmp_paths, kName,
                      "restored max_ecmp_paths must match");
  validation::require(r.get_f64() == config_.shard.flow_rate_cap.value(),
                      kName, "restored flow_rate_cap must match");
  validation::require(r.get_bool() == config_.shard.use_route_cache, kName,
                      "restored use_route_cache must match");
  validation::require(
      r.get_bool() == config_.shard.incremental_reallocation, kName,
      "restored incremental_reallocation must match");
  validation::require(r.get_bool() == config_.shard.strand_unroutable, kName,
                      "restored strand_unroutable must match");

  now_ = Seconds{r.get_f64()};
  grid_cursor_ = r.get_u64();
  next_id_ = r.get_u64();
  {
    const std::uint64_t n = r.get_u64();
    const double mean = r.get_f64();
    const double m2 = r.get_f64();
    const double sum = r.get_f64();
    const double min = r.get_f64();
    const double max = r.get_f64();
    fct_ = SummaryStat{};
    fct_.restore(n, mean, m2, sum, min, max);
  }

  flows_.clear();
  flows_.resize(r.get_u64());
  for (FlowEntry& e : flows_) {
    e.spec.src = r.get_u32();
    e.spec.dst = r.get_u32();
    e.spec.size = Bits{r.get_f64()};
    e.spec.start = Seconds{r.get_f64()};
    e.spec.tag = r.get_u64();
    e.id = r.get_u64();
    e.src_shard = r.get_u32();
    e.dst_shard = r.get_u32();
    e.finished_src = r.get_f64();
    e.finished_dst = r.get_f64();
    e.completed = r.get_bool();
  }
  completed_.clear();
  completed_.resize(r.get_u64());
  for (FlowRecord& rec : completed_) {
    rec.id = r.get_u64();
    validation::require(rec.id >= 1 && rec.id <= flows_.size(), kName,
                        "restored completion references an unknown flow");
    rec.spec = flows_[rec.id - 1].spec;
    rec.finished = Seconds{r.get_f64()};
  }

  boundary_state_.clear();
  for (std::uint64_t i = 0, n = r.get_u64(); i < n; ++i) {
    const LinkId link = r.get_u32();
    BoundaryState bs;
    bs.enabled = r.get_bool();
    bs.factor = r.get_f64();
    boundary_state_.emplace(link, bs);
  }
  core_enabled_.clear();
  for (std::uint64_t i = 0, n = r.get_u64(); i < n; ++i) {
    const NodeId node = r.get_u32();
    core_enabled_[node] = r.get_bool();
  }
  gateway_link_disabled_.clear();
  for (const std::uint64_t key : r.get_u64_vec()) {
    gateway_link_disabled_.emplace(key, true);
  }

  struct Clock {
    double now;
    std::uint64_t seq;
  };
  std::vector<Clock> clocks(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    shards_[s]->completed_cursor = r.get_u64();
    shards_[s]->live_cross_halves = r.get_u64();
    clocks[s].now = r.get_f64();
    clocks[s].seq = r.get_u64();
  }
  r.close_section();

  barrier_gen_ = 0;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    shards_[s]->engine->restore_clock(Seconds{clocks[s].now}, clocks[s].seq);
    shards_[s]->sim->restore_state(r);
    shards_[s]->telemetry->metrics().restore_state(r);
  }
  check_invariants();
}

void ShardedFlowSimulator::check_invariants() const {
  for (const auto& shard : shards_) shard->sim->check_invariants();
  validation::require(completed_.size() <= flows_.size(), kName,
                      "completed count must not exceed submissions");
  validation::require(fct_.count() == completed_.size(), kName,
                      "fct stats must count exactly the completed flows");
  std::vector<std::size_t> live(shards_.size(), 0);
  std::size_t done = 0;
  for (const FlowEntry& e : flows_) {
    if (e.completed) ++done;
    if (!e.cross()) continue;
    validation::require(e.completed == (e.finished_src >= 0.0 &&
                                        e.finished_dst >= 0.0),
                        kName,
                        "a cross flow completes exactly when both halves do");
    if (e.finished_src < 0.0) ++live[e.src_shard];
    if (e.finished_dst < 0.0) ++live[e.dst_shard];
  }
  validation::require(done == completed_.size(), kName,
                      "completed flags must agree with the record list");
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    validation::require(live[s] == shards_[s]->live_cross_halves, kName,
                        "live cross-half counters must match the flow table");
    validation::require(
        shards_[s]->completed_cursor == shards_[s]->sim->completed().size(),
        kName, "barrier cursors must be fully drained at a barrier");
  }
}

}  // namespace netpp
