// FlowSimulator snapshot/restore and the structural invariant audit.
//
// Split out of flowsim.cpp: the hot-path simulator code and the (cold)
// serialization code evolve independently, but both are member code of
// FlowSimulator so the snapshot can reach every arena verbatim.
//
// Bit-identity contract: everything whose *order* can influence a
// floating-point sum or an event tie-break is serialized exactly as it sits
// in memory — the link->flow membership arenas including dead blocks, the
// per-flow SoA columns, carried-rate sums, the route-cache table, and the
// (time, FIFO seq) pair of every pending event. A restored simulator
// therefore replays the same IEEE operations in the same order as the
// uninterrupted run. The only reset state is the binding-walk generation
// stamps (restarted at zero; behaviorally identical until the 2^32-solve
// wrap, which the walk already handles by refilling the stamp arrays).
#include <cmath>
#include <cstring>

#include <algorithm>

#include "netpp/netsim/flowsim.h"
#include "netpp/validation.h"

namespace netpp {

namespace {

/// Shared tolerance for the carried-sum and feasibility audits: the
/// incremental bookkeeping is designed to stay within ~1e-9 relative of the
/// exact sums (kUnsaturatedFraction margin); 1e-6 relative leaves headroom
/// without masking real corruption.
constexpr double kAuditRelTol = 1e-6;

void put_spec(state::SnapshotWriter& w, const FlowSpec& spec) {
  w.put_u32(spec.src);
  w.put_u32(spec.dst);
  w.put_f64(spec.size.value());
  w.put_f64(spec.start.value());
  w.put_u64(spec.tag);
}

FlowSpec get_spec(state::SnapshotReader& r) {
  FlowSpec spec;
  spec.src = r.get_u32();
  spec.dst = r.get_u32();
  spec.size = Bits{r.get_f64()};
  spec.start = Seconds{r.get_f64()};
  spec.tag = r.get_u64();
  return spec;
}

void put_time_weighted(state::SnapshotWriter& w, const TimeWeighted& tw) {
  w.put_f64(tw.start().value());
  w.put_f64(tw.last_change().value());
  w.put_f64(tw.current());
  w.put_f64(tw.accumulated());
}

void get_time_weighted(state::SnapshotReader& r, TimeWeighted& tw) {
  const double start = r.get_f64();
  const double last = r.get_f64();
  const double value = r.get_f64();
  const double integral = r.get_f64();
  tw.restore(Seconds{start}, Seconds{last}, value, integral);
}

}  // namespace

// ---------------------------------------------------------------------------
// LinkFlowPool

void FlowSimulator::LinkFlowPool::save_state(state::SnapshotWriter& w) const {
  w.put_u64(blocks_.size());
  for (const Block& b : blocks_) {
    w.put_u32(b.begin);
    w.put_u32(b.count);
    w.put_u32(b.cap);
  }
  // Canonicalize the arenas: only each block's live prefix [begin,
  // begin+count) is ever read, but the AlignedVec growth path leaves heap
  // garbage in the dead slots, which would differ between two otherwise
  // bit-identical simulators. Serialize dead slots as zero so equal
  // simulated states produce equal snapshots.
  std::vector<std::uint32_t> flow_of(flow_of_.size(), 0);
  std::vector<std::uint32_t> slot_of(slot_of_.size(), 0);
  for (const Block& b : blocks_) {
    for (std::uint32_t s = 0; s < b.count; ++s) {
      flow_of[b.begin + s] = flow_of_[b.begin + s];
      slot_of[b.begin + s] = slot_of_[b.begin + s];
    }
  }
  w.put_u32_array(flow_of.data(), flow_of.size());
  w.put_u32_array(slot_of.data(), slot_of.size());
  w.put_u64(flow_of_.size());  // arena size (flow_of_/slot_of_ share it)
  w.put_u64(live_);
}

void FlowSimulator::LinkFlowPool::restore_state(state::SnapshotReader& r) {
  const std::uint64_t num_blocks = r.get_u64();
  std::vector<Block> blocks(static_cast<std::size_t>(num_blocks));
  for (Block& b : blocks) {
    b.begin = r.get_u32();
    b.count = r.get_u32();
    b.cap = r.get_u32();
  }
  // The arena size is written after the columns; peek it by reading the
  // columns into scratch first is avoided by writing the columns with their
  // own length prefixes (put_u32_array) — read them as sized arrays.
  // put_u32_array stores its own count, so a plain vector read works:
  std::vector<std::uint32_t> flow_of = r.get_u32_vec();
  std::vector<std::uint32_t> slot_of = r.get_u32_vec();
  const std::uint64_t arena_size = r.get_u64();
  const std::uint64_t live = r.get_u64();
  if (flow_of.size() != arena_size || slot_of.size() != arena_size) {
    validation::fail("FlowSimulator",
                     "snapshot link-membership arenas have mismatched sizes");
  }
  std::uint64_t counted = 0;
  for (const Block& b : blocks) {
    if (b.count > b.cap ||
        static_cast<std::uint64_t>(b.begin) + b.cap > arena_size) {
      validation::fail("FlowSimulator",
                       "snapshot link-membership block exceeds its arena");
    }
    counted += b.count;
  }
  if (counted != live) {
    validation::fail("FlowSimulator",
                     "snapshot link-membership live count is inconsistent");
  }
  blocks_ = std::move(blocks);
  flow_of_.resize(flow_of.size());
  slot_of_.resize(slot_of.size());
  if (!flow_of.empty()) {
    std::memcpy(flow_of_.data(), flow_of.data(),
                flow_of.size() * sizeof(std::uint32_t));
    std::memcpy(slot_of_.data(), slot_of.data(),
                slot_of.size() * sizeof(std::uint32_t));
  }
  live_ = static_cast<std::size_t>(live);
}

// ---------------------------------------------------------------------------
// FlowSimulator

void FlowSimulator::save_state(state::SnapshotWriter& w) const {
  w.begin_section("flowsim");

  // Config + shape echo: a restore into a differently-configured simulator
  // would silently diverge, so reject it up front.
  w.put_u64(config_.max_ecmp_paths);
  w.put_f64(config_.flow_rate_cap.value());
  w.put_bool(config_.use_route_cache);
  w.put_bool(config_.incremental_reallocation);
  w.put_bool(config_.strand_unroutable);
  w.put_bool(config_.telemetry != nullptr);
  w.put_u64(graph_.num_nodes());
  w.put_u64(graph_.num_links());

  // Active flows + the parallel SoA columns, verbatim.
  const std::size_t n = active_.size();
  w.put_u64(n);
  for (const ActiveFlow& f : active_) {
    w.put_u64(f.id);
    put_spec(w, f.spec);
    w.put_f64(f.admitted.value());
  }
  w.put_f64_array(flow_rate_bps_.data(), n);
  w.put_f64_array(flow_remaining_.data(), n);
  w.put_u32_array(flow_lbegin_.data(), n);
  w.put_u32_array(flow_lcount_.data(), n);
  w.put_u32_array(filt_begin_.data(), n);
  w.put_u32_array(filt_count_.data(), n);
  w.put_u32_array(filt_cap_.data(), n);

  // Arenas — layout preserved exactly (block begins/caps and dead blocks),
  // so post-restore growth, relocation, and compaction fire at the same
  // events as the uninterrupted run (compaction rewrites membership order,
  // which changes summation order, so its timing is part of the
  // deterministic state). Contents are canonicalized: only each flow's live
  // prefix is copied, dead slots serialize as zero — they are never read,
  // and the AlignedVec growth path leaves instance-specific heap garbage in
  // them that would break snapshot-bytes equality between equal states.
  {
    std::vector<std::uint32_t> filt(filt_arena_.size(), 0);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::uint32_t s = 0; s < filt_count_[i]; ++s) {
        filt[filt_begin_[i] + s] = filt_arena_[filt_begin_[i] + s];
      }
    }
    w.put_u32_array(filt.data(), filt.size());
  }
  w.put_u64(filt_live_);
  w.put_u32_vec(flow_links_);
  w.put_u32_vec(flow_adj_pos_);
  w.put_u64(live_hops_);
  link_flows_.save_state(w);
  w.put_u32_vec(touched_links_);
  w.put_u32_vec(touched_pos_);
  w.put_u8_vec(flag_lt_cap_);

  // Completion / strand history (feeds results and resilience metrics).
  w.put_u64(completed_.size());
  for (const FlowRecord& rec : completed_) {
    w.put_u64(rec.id);
    put_spec(w, rec.spec);
    w.put_f64(rec.finished.value());
  }
  w.put_u64(stranded_.size());
  for (const StrandedFlow& s : stranded_) {
    w.put_u64(s.id);
    put_spec(w, s.spec);
    w.put_f64(s.remaining_bits);
    w.put_f64(s.stranded_at.value());
  }
  w.put_f64_vec(strand_durations_);
  w.put_f64(stranded_bit_seconds_done_);

  // Per-directed-link capacity/rate state.
  w.put_f64_vec(directed_capacity_bps_);
  w.put_f64_vec(link_factor_);
  w.put_f64_vec(carried_bps_);
  w.put_u64(directed_rate_bps_.size());
  for (const TimeWeighted& tw : directed_rate_bps_) put_time_weighted(w, tw);

  // Solver + seed state.
  w.put_u64(solver_.stats().solves);
  w.put_u64(solver_.stats().flows_solved);
  w.put_u32_vec(seed_links_);
  w.put_bool(seed_valid_);

  // Scalars.
  w.put_u64(fct_.count());
  w.put_f64(fct_.mean());
  w.put_f64(fct_.m2());
  w.put_f64(fct_.sum());
  w.put_f64(fct_.raw_min());
  w.put_f64(fct_.raw_max());
  w.put_u64(unroutable_);
  w.put_u64(next_id_);
  w.put_f64(last_settle_.value());

  // Pending events, as (time, FIFO seq) pairs the restore re-registers.
  w.put_bool(completion_event_.has_value());
  if (completion_event_.has_value()) {
    w.put_f64(engine_.event_time(*completion_event_).value());
    w.put_u64(engine_.event_seq(*completion_event_));
  }
  std::vector<const std::pair<const FlowId, PendingSubmit>*> pending;
  pending.reserve(pending_submits_.size());
  for (const auto& kv : pending_submits_) pending.push_back(&kv);
  std::sort(pending.begin(), pending.end(), [this](const auto* a, const auto* b) {
    return engine_.event_seq(a->second.event) <
           engine_.event_seq(b->second.event);
  });
  w.put_u64(pending.size());
  for (const auto* kv : pending) {
    w.put_u64(kv->first);
    put_spec(w, kv->second.spec);
    w.put_f64(engine_.event_time(kv->second.event).value());
    w.put_u64(engine_.event_seq(kv->second.event));
  }

  // Shared router enablement + epoch (the simulator is its primary mutator).
  w.put_u8_vec(router_.node_mask());
  w.put_u8_vec(router_.link_mask());
  w.put_u64(router_.topology_epoch());

  w.end_section();

  route_cache_.save_state(w);
  // Detached simulators own their counter registry; serialize it inline so
  // realloc_stats() and metric exports match bitwise after restore. Attached
  // simulators share the orchestrator's registry, which the orchestrator
  // snapshots itself.
  if (local_metrics_ != nullptr) local_metrics_->save_state(w);
}

void FlowSimulator::restore_state(state::SnapshotReader& r) {
  r.open_section("flowsim");

  if (r.get_u64() != config_.max_ecmp_paths ||
      std::bit_cast<std::uint64_t>(r.get_f64()) !=
          std::bit_cast<std::uint64_t>(config_.flow_rate_cap.value()) ||
      r.get_bool() != config_.use_route_cache ||
      r.get_bool() != config_.incremental_reallocation ||
      r.get_bool() != config_.strand_unroutable) {
    validation::fail("FlowSimulator",
                     "snapshot config does not match this simulator's config");
  }
  if (r.get_bool() != (config_.telemetry != nullptr)) {
    validation::fail(
        "FlowSimulator",
        "snapshot telemetry attachment does not match this simulator");
  }
  if (r.get_u64() != graph_.num_nodes() || r.get_u64() != graph_.num_links()) {
    validation::fail("FlowSimulator",
                     "snapshot graph shape does not match this simulator");
  }

  const auto n = static_cast<std::size_t>(r.get_u64());
  std::vector<ActiveFlow> active(n);
  for (ActiveFlow& f : active) {
    f.id = r.get_u64();
    f.spec = get_spec(r);
    f.admitted = Seconds{r.get_f64()};
  }
  active_ = std::move(active);
  flow_rate_bps_.resize(n);
  flow_remaining_.resize(n);
  flow_lbegin_.resize(n);
  flow_lcount_.resize(n);
  filt_begin_.resize(n);
  filt_count_.resize(n);
  filt_cap_.resize(n);
  r.get_f64_array(flow_rate_bps_.data(), n);
  r.get_f64_array(flow_remaining_.data(), n);
  r.get_u32_array(flow_lbegin_.data(), n);
  r.get_u32_array(flow_lcount_.data(), n);
  r.get_u32_array(filt_begin_.data(), n);
  r.get_u32_array(filt_count_.data(), n);
  r.get_u32_array(filt_cap_.data(), n);

  {
    std::vector<std::uint32_t> filt = r.get_u32_vec();
    filt_arena_.resize(filt.size());
    if (!filt.empty()) {
      std::memcpy(filt_arena_.data(), filt.data(),
                  filt.size() * sizeof(std::uint32_t));
    }
  }
  filt_live_ = static_cast<std::size_t>(r.get_u64());
  flow_links_ = r.get_u32_vec();
  flow_adj_pos_ = r.get_u32_vec();
  live_hops_ = static_cast<std::size_t>(r.get_u64());
  link_flows_.restore_state(r);
  touched_links_ = r.get_u32_vec();
  touched_pos_ = r.get_u32_vec();
  flag_lt_cap_ = r.get_u8_vec();

  const auto num_completed = static_cast<std::size_t>(r.get_u64());
  completed_.clear();
  completed_.reserve(num_completed);
  for (std::size_t i = 0; i < num_completed; ++i) {
    FlowRecord rec;
    rec.id = r.get_u64();
    rec.spec = get_spec(r);
    rec.finished = Seconds{r.get_f64()};
    completed_.push_back(rec);
  }
  const auto num_stranded = static_cast<std::size_t>(r.get_u64());
  stranded_.clear();
  stranded_.reserve(num_stranded);
  for (std::size_t i = 0; i < num_stranded; ++i) {
    StrandedFlow s;
    s.id = r.get_u64();
    s.spec = get_spec(r);
    s.remaining_bits = r.get_f64();
    s.stranded_at = Seconds{r.get_f64()};
    stranded_.push_back(s);
  }
  strand_durations_ = r.get_f64_vec();
  stranded_bit_seconds_done_ = r.get_f64();

  directed_capacity_bps_ = r.get_f64_vec();
  link_factor_ = r.get_f64_vec();
  carried_bps_ = r.get_f64_vec();
  const std::size_t directed = graph_.num_links() * 2;
  if (directed_capacity_bps_.size() != directed ||
      carried_bps_.size() != directed ||
      link_factor_.size() != graph_.num_links()) {
    validation::fail("FlowSimulator",
                     "snapshot link arrays do not match the graph");
  }
  const auto num_tw = static_cast<std::size_t>(r.get_u64());
  if (num_tw != directed) {
    validation::fail("FlowSimulator",
                     "snapshot rate histories do not match the graph");
  }
  for (TimeWeighted& tw : directed_rate_bps_) get_time_weighted(r, tw);

  MaxMinSolver::SolveStats solver_stats;
  solver_stats.solves = r.get_u64();
  solver_stats.flows_solved = r.get_u64();
  solver_.restore_stats(solver_stats);
  seed_links_ = r.get_u32_vec();
  seed_valid_ = r.get_bool();

  const std::uint64_t fct_n = r.get_u64();
  const double fct_mean = r.get_f64();
  const double fct_m2 = r.get_f64();
  const double fct_sum = r.get_f64();
  const double fct_min = r.get_f64();
  const double fct_max = r.get_f64();
  fct_.restore(fct_n, fct_mean, fct_m2, fct_sum, fct_min, fct_max);
  unroutable_ = static_cast<std::size_t>(r.get_u64());
  next_id_ = r.get_u64();
  last_settle_ = Seconds{r.get_f64()};

  // Re-register the pending events with their original FIFO sequence
  // numbers. The engine clock must already be restored; restore_event_at
  // validates both the time and the sequence bound.
  completion_event_.reset();
  if (r.get_bool()) {
    const Seconds at{r.get_f64()};
    const std::uint64_t seq = r.get_u64();
    completion_event_ = engine_.restore_event_at(
        at, seq, [this] { complete_due_flows(engine_.now()); });
  }
  pending_submits_.clear();
  const auto num_pending = static_cast<std::size_t>(r.get_u64());
  for (std::size_t i = 0; i < num_pending; ++i) {
    const FlowId id = r.get_u64();
    const FlowSpec spec = get_spec(r);
    const Seconds at{r.get_f64()};
    const std::uint64_t seq = r.get_u64();
    if (id >= next_id_) {
      validation::fail("FlowSimulator",
                       "snapshot pending submission postdates the id counter");
    }
    const SimEngine::EventId event =
        engine_.restore_event_at(at, seq, [this, id] { admit_pending(id); });
    if (!pending_submits_.emplace(id, PendingSubmit{spec, event}).second) {
      validation::fail("FlowSimulator",
                       "snapshot holds a duplicate pending submission");
    }
  }

  {
    const std::vector<std::uint8_t> nodes = r.get_u8_vec();
    const std::vector<std::uint8_t> links = r.get_u8_vec();
    const std::uint64_t epoch = r.get_u64();
    router_.restore_enablement(nodes, links, epoch);
  }

  r.close_section();

  route_cache_.restore_state(r);
  if (local_metrics_ != nullptr) local_metrics_->restore_state(r);

  // Binding-walk generation stamps restart from scratch (see file comment):
  // clearing makes the lazily-resized stamp arrays re-zero themselves.
  bind_gen_ = 0;
  bind_link_seen_.clear();
  bind_flow_seen_.clear();
  bind_sub_seen_.clear();

  check_invariants();
}

void FlowSimulator::check_invariants() const {
  const std::size_t n = active_.size();
  const std::size_t directed = directed_capacity_bps_.size();
  validation::require(
      flow_rate_bps_.size() == n && flow_remaining_.size() == n &&
          flow_lbegin_.size() == n && flow_lcount_.size() == n &&
          filt_begin_.size() == n && filt_count_.size() == n &&
          filt_cap_.size() == n,
      "FlowSimulator", "SoA columns must stay in lockstep with active flows");
  validation::require(flow_links_.size() == flow_adj_pos_.size(),
                      "FlowSimulator",
                      "adjacency back-pointers must parallel the link arena");

  // Conservation of remaining bits: every active flow still has between
  // zero (one completion epsilon of slack) and its submitted volume left.
  constexpr double kEpsBits = 1.0;  // matches the completion threshold
  for (std::size_t i = 0; i < n; ++i) {
    const double remaining = flow_remaining_[i];
    const double size = active_[i].spec.size.value();
    validation::require(std::isfinite(remaining) && remaining >= -kEpsBits &&
                            remaining <= size + kEpsBits,
                        "FlowSimulator",
                        "remaining bits must stay within [0, size]");
    validation::require(
        std::isfinite(flow_rate_bps_[i]) && flow_rate_bps_[i] >= 0.0,
        "FlowSimulator", "flow rates must be finite and non-negative");
  }

  // Membership / back-pointer agreement, and per-link carried-sum and
  // feasibility audits over the exact membership iteration order.
  std::uint64_t hops = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t begin = flow_lbegin_[i];
    const std::size_t count = flow_lcount_[i];
    validation::require(begin + count <= flow_links_.size(), "FlowSimulator",
                        "flow link block must lie inside the arena");
    for (std::size_t s = begin; s < begin + count; ++s) {
      const std::uint32_t link = flow_links_[s];
      validation::require(link < directed, "FlowSimulator",
                          "flow link index must name a directed link");
      const std::uint32_t pos = flow_adj_pos_[s];
      validation::require(
          link_flows_.num_links() > link && pos < link_flows_.count(link),
          "FlowSimulator", "membership back-pointer must be in range");
      validation::require(
          link_flows_.flows(link)[pos] == i &&
              link_flows_.slot_at(link, pos) == s,
          "FlowSimulator",
          "membership entry and back-pointer must agree on (flow, slot)");
    }
    hops += count;
  }
  validation::require(hops == live_hops_ && live_hops_ == link_flows_.live(),
                      "FlowSimulator",
                      "live hop totals must agree across the arenas");

  // Rate feasibility per link: the carried sum matches the member rates and
  // never exceeds the (possibly degraded) capacity.
  std::size_t populated = 0;
  for (std::size_t r = 0; r < link_flows_.num_links(); ++r) {
    const std::uint32_t members = link_flows_.count(r);
    if (members == 0) continue;
    ++populated;
    validation::require(
        touched_pos_.size() > r && touched_pos_[r] < touched_links_.size() &&
            touched_links_[touched_pos_[r]] == r,
        "FlowSimulator", "populated links must be on the touched list");
    double sum = 0.0;
    for (const std::uint32_t f : link_flows_.flows(r)) {
      validation::require(f < n, "FlowSimulator",
                          "membership lists must reference active flows");
      sum += flow_rate_bps_[f];
    }
    const double cap = directed_capacity_bps_[r];
    const double tol = kAuditRelTol * std::max(cap, 1.0);
    validation::require(std::abs(sum - carried_bps_[r]) <= tol,
                        "FlowSimulator",
                        "carried rate must equal the sum of member rates");
    validation::require(carried_bps_[r] <= cap + tol, "FlowSimulator",
                        "carried rate must not exceed link capacity");
  }
  validation::require(populated == touched_links_.size(), "FlowSimulator",
                      "touched list must hold exactly the populated links");
  for (std::size_t r = 0; r < directed; ++r) {
    validation::require(
        std::isfinite(carried_bps_[r]) && carried_bps_[r] >= 0.0,
        "FlowSimulator", "carried rates must be finite and non-negative");
    validation::require(
        std::bit_cast<std::uint64_t>(directed_rate_bps_[r].current()) ==
            std::bit_cast<std::uint64_t>(carried_bps_[r]),
        "FlowSimulator",
        "rate history and carried sum must agree bitwise");
  }

  // Filtered lists == {flagged links of each flow's path}, entry by entry.
  std::size_t filt_total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    validation::require(filt_count_[i] <= filt_cap_[i] &&
                            filt_begin_[i] + filt_cap_[i] <= filt_arena_.size(),
                        "FlowSimulator",
                        "filtered block must lie inside its arena");
    const std::span<const std::uint32_t> links = flow_links(i);
    std::size_t flagged = 0;
    for (const std::uint32_t l : links) {
      if (l < flag_lt_cap_.size() && flag_lt_cap_[l] != 0) ++flagged;
    }
    validation::require(flagged == filt_count_[i], "FlowSimulator",
                        "filtered list must hold every flagged path link");
    for (std::size_t s = filt_begin_[i]; s < filt_begin_[i] + filt_count_[i];
         ++s) {
      const std::uint32_t l = filt_arena_[s];
      validation::require(
          l < flag_lt_cap_.size() && flag_lt_cap_[l] != 0 &&
              std::find(links.begin(), links.end(), l) != links.end(),
          "FlowSimulator",
          "filtered entries must be flagged links of the flow's path");
    }
    filt_total += filt_count_[i];
  }
  validation::require(filt_total == filt_live_, "FlowSimulator",
                      "filtered live total must match the per-flow counts");

  // Stranded flows carry a positive remaining volume from a past instant.
  for (const StrandedFlow& s : stranded_) {
    validation::require(
        std::isfinite(s.remaining_bits) && s.remaining_bits > 0.0 &&
            s.stranded_at.value() <= engine_.now().value(),
        "FlowSimulator", "stranded flows must hold future work from the past");
  }

  // Cache-vs-router agreement (no-op when the cache is stale or disabled).
  route_cache_.check_agreement();
}

}  // namespace netpp
