#include "netpp/workload/phase_model.h"

namespace netpp {

WorkloadModel::WorkloadModel(IterationProfile reference, double reference_gpus,
                             Gbps reference_bandwidth)
    : reference_(reference),
      reference_gpus_(reference_gpus),
      reference_bandwidth_(reference_bandwidth) {
  if (reference_gpus <= 0.0) {
    throw std::invalid_argument("reference GPU count must be positive");
  }
  if (reference_bandwidth.value() <= 0.0) {
    throw std::invalid_argument("reference bandwidth must be positive");
  }
  if (reference.computation.value() < 0.0 ||
      reference.communication.value() < 0.0) {
    throw std::invalid_argument("phase durations must be non-negative");
  }
}

WorkloadModel WorkloadModel::paper_baseline() {
  using namespace literals;
  return WorkloadModel{IterationProfile{0.9_s, 0.1_s}, 15000.0, 400.0_Gbps};
}

IterationProfile WorkloadModel::scaled(double gpus, Gbps bandwidth) const {
  if (gpus <= 0.0) throw std::invalid_argument("GPU count must be positive");
  if (bandwidth.value() <= 0.0) {
    throw std::invalid_argument("bandwidth must be positive");
  }
  return IterationProfile{
      reference_.computation * (reference_gpus_ / gpus),
      reference_.communication * (reference_bandwidth_ / bandwidth)};
}

IterationProfile WorkloadModel::scaled_fixed_ratio(double gpus) const {
  if (gpus <= 0.0) throw std::invalid_argument("GPU count must be positive");
  const double ratio = reference_.communication_ratio();
  const Seconds comp = reference_.computation * (reference_gpus_ / gpus);
  // ratio = comm / (comp + comm)  =>  comm = comp * ratio / (1 - ratio).
  if (ratio >= 1.0) {
    throw std::logic_error("fixed-ratio scaling requires ratio < 1");
  }
  return IterationProfile{comp, comp * (ratio / (1.0 - ratio))};
}

}  // namespace netpp
