#include "netpp/units.h"

#include <cmath>
#include <cstdio>

namespace netpp {
namespace {

// Scales `v` into an SI-prefixed string with 3 significant-ish digits.
std::string si_format(double v, const char* unit) {
  struct Scale {
    double factor;
    const char* prefix;
  };
  static constexpr Scale kScales[] = {
      {1e9, "G"}, {1e6, "M"}, {1e3, "k"}, {1.0, ""}, {1e-3, "m"}, {1e-6, "u"},
  };
  const double mag = std::fabs(v);
  for (const auto& s : kScales) {
    if (mag >= s.factor || (&s == &kScales[5])) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.3g %s%s", v / s.factor, s.prefix,
                    unit);
      return buf;
    }
  }
  return "0 " + std::string(unit);
}

}  // namespace

std::string to_string(Watts p) { return si_format(p.value(), "W"); }

std::string to_string(Gbps r) {
  if (r.value() >= 1e3) return si_format(r.value() * 1e9, "bps");
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3g Gbps", r.value());
  return buf;
}

std::string to_string(Seconds t) { return si_format(t.value(), "s"); }

std::string to_string(Joules e) { return si_format(e.value(), "J"); }

std::string to_string(Dollars d) { return si_format(d.value(), "$"); }

}  // namespace netpp
