#include "netpp/validation.h"

#include <cmath>
#include <stdexcept>
#include <string>

namespace netpp::validation {

void fail(std::string_view type_name, std::string_view constraint) {
  std::string message;
  message.reserve(type_name.size() + constraint.size() + 2);
  message.append(type_name);
  message.append(": ");
  message.append(constraint);
  throw std::invalid_argument(message);
}

void require_finite(double value, std::string_view type_name,
                    std::string_view constraint) {
  if (!std::isfinite(value)) fail(type_name, constraint);
}

void require_finite_non_negative(double value, std::string_view type_name,
                                 std::string_view constraint) {
  if (!std::isfinite(value) || value < 0.0) fail(type_name, constraint);
}

void require_fraction(double value, std::string_view type_name,
                      std::string_view constraint) {
  if (!std::isfinite(value) || value < 0.0 || value > 1.0) {
    fail(type_name, constraint);
  }
}

}  // namespace netpp::validation
