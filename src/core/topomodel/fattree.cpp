#include "netpp/topomodel/fattree.h"

#include <cmath>
#include <stdexcept>

namespace netpp {

FatTreeModel::FatTreeModel(int radix) : radix_(radix), half_(radix / 2.0) {
  if (radix < 2 || radix % 2 != 0) {
    throw std::invalid_argument("fat-tree radix must be an even number >= 2");
  }
}

double FatTreeModel::hosts_at_tier(int n) const {
  if (n < 1) throw std::invalid_argument("tier count must be >= 1");
  return 2.0 * std::pow(half_, n);
}

double FatTreeModel::switches_at_tier(int n) const {
  if (n < 1) throw std::invalid_argument("tier count must be >= 1");
  return (2.0 * n - 1.0) * std::pow(half_, n - 1);
}

int FatTreeModel::tiers_for_hosts(double hosts) const {
  if (hosts < 1.0) throw std::invalid_argument("host count must be >= 1");
  int n = 1;
  while (hosts_at_tier(n) < hosts) {
    ++n;
    if (n > 64) throw std::invalid_argument("host count out of range");
  }
  return n;
}

FatTreeSize FatTreeModel::size_for_hosts(double hosts) const {
  const int n = tiers_for_hosts(hosts);

  FatTreeSize out;
  out.tiers = n;
  if (hosts == hosts_at_tier(n) || n == 1) {
    // Exact fit, or within a single switch: scale the single-tier "tree"
    // (one switch) as-is; a 1-tier tree is one switch regardless of fill.
    out.switches = (n == 1) ? 1.0
                            : switches_at_tier(n);
  } else {
    // Geometric (log-space) interpolation between the bracketing tiers:
    // tier capacities grow geometrically (factor R/2 per tier), so the
    // natural interpolant is linear in (log hosts, log switches). This
    // reproduces the paper's Table 3 almost exactly (see EXPERIMENTS.md).
    const double h_lo = hosts_at_tier(n - 1);
    const double h_hi = hosts_at_tier(n);
    const double s_lo = switches_at_tier(n - 1);
    const double s_hi = switches_at_tier(n);
    const double t = std::log(hosts / h_lo) / std::log(h_hi / h_lo);
    out.switches = s_lo * std::pow(s_hi / s_lo, t);
  }

  out.total_ports = out.switches * radix_;
  out.host_ports = hosts;
  if (n == 1) {
    // A single switch: leftover ports are simply unused, not links.
    out.inter_switch_links = 0.0;
  } else {
    out.inter_switch_links = (out.total_ports - out.host_ports) / 2.0;
    if (out.inter_switch_links < 0.0) out.inter_switch_links = 0.0;
  }
  out.transceivers = 2.0 * out.inter_switch_links;
  return out;
}

}  // namespace netpp
