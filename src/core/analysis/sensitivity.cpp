#include "netpp/analysis/sensitivity.h"

#include <memory>

#include "netpp/analysis/savings.h"

namespace netpp {

HeadlineMetrics headline_metrics(const ClusterConfig& config) {
  const ClusterModel cluster{config};
  HeadlineMetrics out;
  out.network_share = cluster.network_share_of_average();
  out.network_efficiency = cluster.network_energy_efficiency();
  out.savings_at_50 = savings_at(config, config.bandwidth_per_gpu, 0.50,
                                 config.network_proportionality)
                          .savings_fraction;
  out.savings_at_85 = savings_at(config, config.bandwidth_per_gpu, 0.85,
                                 config.network_proportionality)
                          .savings_fraction;
  return out;
}

std::vector<SensitivityPoint> run_sensitivity(
    const std::vector<SensitivityParameter>& suite) {
  std::vector<SensitivityPoint> out;
  for (const auto& param : suite) {
    for (double value : param.values) {
      SensitivityPoint point;
      point.parameter = param.name;
      point.value = value;
      point.metrics = headline_metrics(param.configure(value));
      out.push_back(std::move(point));
    }
  }
  return out;
}

namespace {

/// Keeps catalogs created during a sweep alive for the suite's lifetime.
using CatalogCache = std::vector<std::unique_ptr<DeviceCatalog>>;

const DeviceCatalog* cache_catalog(const std::shared_ptr<CatalogCache>& cache,
                                   DeviceCatalog::Config cfg) {
  cache->push_back(std::make_unique<DeviceCatalog>(std::move(cfg)));
  return cache->back().get();
}

}  // namespace

std::vector<SensitivityParameter> make_paper_sensitivity_suite() {
  std::vector<SensitivityParameter> suite;

  suite.push_back(SensitivityParameter{
      "compute proportionality",
      {0.70, 0.75, 0.80, 0.85, 0.90, 0.95},
      [cache = std::make_shared<CatalogCache>()](double v) {
        DeviceCatalog::Config cat;
        cat.compute_proportionality = v;
        ClusterConfig config;
        config.catalog = cache_catalog(cache, std::move(cat));
        return config;
      }});

  suite.push_back(SensitivityParameter{
      "communication ratio",
      {0.05, 0.10, 0.15, 0.20, 0.30},
      [](double v) {
        ClusterConfig config;
        config.communication_ratio = v;
        return config;
      }});

  suite.push_back(SensitivityParameter{
      "switch max power (W)",
      {525.0, 650.0, 750.0, 850.0, 975.0},
      [cache = std::make_shared<CatalogCache>()](double v) {
        DeviceCatalog::Config cat;
        cat.switch_max = Watts{v};
        ClusterConfig config;
        config.catalog = cache_catalog(cache, std::move(cat));
        return config;
      }});

  suite.push_back(SensitivityParameter{
      "NIC power scale",
      {0.7, 0.85, 1.0, 1.15, 1.3},
      [cache = std::make_shared<CatalogCache>()](double v) {
        DeviceCatalog::Config cat;
        for (auto& [speed, watts] : cat.nic_watts) watts *= v;
        ClusterConfig config;
        config.catalog = cache_catalog(cache, std::move(cat));
        return config;
      }});

  suite.push_back(SensitivityParameter{
      "transceiver power scale",
      {0.7, 0.85, 1.0, 1.15, 1.3},
      [cache = std::make_shared<CatalogCache>()](double v) {
        DeviceCatalog::Config cat;
        for (auto& [speed, watts] : cat.transceiver_watts) watts *= v;
        ClusterConfig config;
        config.catalog = cache_catalog(cache, std::move(cat));
        return config;
      }});

  return suite;
}

}  // namespace netpp
