#include "netpp/analysis/overlap.h"

#include <stdexcept>

namespace netpp {

OverlapModel::OverlapModel(IterationProfile profile, double overlap_fraction)
    : profile_(profile), overlap_(overlap_fraction) {
  if (overlap_fraction < 0.0 || overlap_fraction > 1.0) {
    throw std::invalid_argument("overlap fraction must be in [0, 1]");
  }
  const Seconds hidden = profile.communication * overlap_fraction;
  if (hidden > profile.computation + Seconds{1e-15}) {
    throw std::invalid_argument(
        "cannot hide more communication than there is computation");
  }
  iteration_.compute_only = profile.computation - hidden;
  iteration_.overlap = hidden;
  iteration_.comm_only = profile.communication - hidden;
}

double OverlapModel::iteration_speedup() const {
  const double t = iteration_.iteration_time().value();
  if (t <= 0.0) throw std::logic_error("iteration time must be positive");
  return profile_.iteration_time().value() / t - 1.0;
}

Watts OverlapModel::average_power(const ClusterModel& cluster) const {
  const double t = iteration_.iteration_time().value();
  if (t <= 0.0) throw std::logic_error("iteration time must be positive");
  const auto& gpu = cluster.compute_envelope();
  const auto& net = cluster.network_envelope();

  const double e =
      (gpu.max_power() + net.idle_power()).value() *
          iteration_.compute_only.value() +
      (gpu.max_power() + net.max_power()).value() *
          iteration_.overlap.value() +
      (gpu.idle_power() + net.max_power()).value() *
          iteration_.comm_only.value();
  return Watts{e / t};
}

double OverlapModel::network_efficiency(const ClusterModel& cluster) const {
  const auto& net = cluster.network_envelope();
  const double active = iteration_.network_active_fraction();
  return energy_efficiency(net, active);
}

double OverlapModel::savings_fraction(const ClusterModel& cluster,
                                      double proportionality) const {
  const Watts before = average_power(cluster);
  const ClusterModel improved =
      cluster.with_network_proportionality(proportionality);
  const Watts after = average_power(improved);
  return before.value() > 0.0 ? 1.0 - after / before : 0.0;
}

}  // namespace netpp
