#include "netpp/analysis/report.h"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace netpp {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) {
    throw std::invalid_argument("table header must not be empty");
  }
}

void Table::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("row arity does not match header");
  }
  rows_.push_back(std::move(row));
}

std::string Table::to_ascii() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream os;
  const auto rule = [&] {
    os << '+';
    for (auto w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  const auto emit = [&](const std::vector<std::string>& row) {
    os << '|';
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << row[c] << std::string(widths[c] - row[c].size(), ' ')
         << " |";
    }
    os << '\n';
  };

  rule();
  emit(header_);
  rule();
  for (const auto& row : rows_) emit(row);
  rule();
  return os.str();
}

namespace {

std::string csv_escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char ch : field) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

}  // namespace

std::string Table::to_csv() const {
  std::ostringstream os;
  write_csv(os);
  return os.str();
}

void Table::write_csv(std::ostream& os) const {
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << csv_escape(row[c]);
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

std::string fmt(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

std::string fmt_percent(double fraction, int digits) {
  return fmt(fraction * 100.0, digits) + "%";
}

}  // namespace netpp
