#include "netpp/analysis/speedup.h"

#include <cmath>
#include <stdexcept>

namespace netpp {

BudgetSolver::BudgetSolver(ClusterConfig base, WorkloadModel workload)
    : base_(base), workload_(std::move(workload)) {
  budget_ = ClusterModel{base_}.average_total_power();
}

BudgetSolver BudgetSolver::paper_baseline() {
  return BudgetSolver{ClusterConfig{}, WorkloadModel::paper_baseline()};
}

Watts BudgetSolver::average_power(double gpus, Gbps bandwidth,
                                  double proportionality,
                                  BudgetScenario scenario) const {
  const IterationProfile profile =
      scenario == BudgetScenario::kFixedWorkload
          ? workload_.scaled(gpus, bandwidth)
          : workload_.scaled_fixed_ratio(gpus);

  ClusterConfig cfg = base_;
  cfg.num_gpus = gpus;
  cfg.bandwidth_per_gpu = bandwidth;
  cfg.network_proportionality = proportionality;
  cfg.communication_ratio = profile.communication_ratio();
  return ClusterModel{cfg}.average_total_power();
}

BudgetedCluster BudgetSolver::solve(Gbps bandwidth, double proportionality,
                                    BudgetScenario scenario) const {
  // Cluster average power is monotone increasing in the GPU count (more
  // GPUs means more compute power, more NICs, and a larger fat tree), so
  // bisection on the GPU count converges. Bracket: [1, hi], expanding hi
  // until the budget is exceeded.
  const auto power = [&](double gpus) {
    return average_power(gpus, bandwidth, proportionality, scenario);
  };

  double lo = 1.0;
  if (power(lo) > budget_) {
    throw std::runtime_error(
        "power budget too small for even a single GPU at this bandwidth");
  }
  double hi = base_.num_gpus;
  int expansions = 0;
  while (power(hi) < budget_) {
    hi *= 2.0;
    if (++expansions > 40) {
      throw std::runtime_error("budget bracket expansion did not converge");
    }
  }

  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (power(mid) < budget_) {
      lo = mid;
    } else {
      hi = mid;
    }
    if (hi - lo < 1e-6 * hi) break;
  }

  BudgetedCluster out;
  out.num_gpus = 0.5 * (lo + hi);
  out.bandwidth = bandwidth;
  out.network_proportionality = proportionality;
  out.iteration = scenario == BudgetScenario::kFixedWorkload
                      ? workload_.scaled(out.num_gpus, bandwidth)
                      : workload_.scaled_fixed_ratio(out.num_gpus);
  out.average_power = power(out.num_gpus);
  return out;
}

double BudgetSolver::speedup_vs(const BudgetedCluster& cluster,
                                Seconds reference_iteration_time) const {
  const double t = cluster.iteration.iteration_time().value();
  if (t <= 0.0) throw std::logic_error("iteration time must be positive");
  return reference_iteration_time.value() / t - 1.0;
}

std::vector<SpeedupSeries> fixed_workload_speedup(
    const BudgetSolver& solver, const std::vector<Gbps>& bandwidths,
    const std::vector<double>& proportionalities) {
  // Reference: the baseline cluster's iteration time. By construction the
  // baseline exactly consumes the budget, so its speedup is zero; solving it
  // through the same numerics keeps that exact.
  const BudgetedCluster baseline = solver.solve(
      solver.base_config().bandwidth_per_gpu,
      solver.base_config().network_proportionality,
      BudgetScenario::kFixedWorkload);
  const Seconds reference_time = baseline.iteration.iteration_time();

  std::vector<SpeedupSeries> series;
  series.reserve(bandwidths.size());
  for (Gbps bw : bandwidths) {
    SpeedupSeries s;
    s.bandwidth = bw;
    s.points.reserve(proportionalities.size());
    for (double p : proportionalities) {
      const BudgetedCluster c =
          solver.solve(bw, p, BudgetScenario::kFixedWorkload);
      SpeedupPoint point;
      point.proportionality = p;
      point.num_gpus = c.num_gpus;
      point.speedup = solver.speedup_vs(c, reference_time);
      s.points.push_back(point);
    }
    series.push_back(std::move(s));
  }
  return series;
}

std::vector<SpeedupSeries> fixed_ratio_speedup(
    const BudgetSolver& solver, const std::vector<Gbps>& bandwidths,
    const std::vector<double>& proportionalities) {
  std::vector<SpeedupSeries> series;
  series.reserve(bandwidths.size());
  for (Gbps bw : bandwidths) {
    const BudgetedCluster reference =
        solver.solve(bw, 0.0, BudgetScenario::kFixedCommRatio);
    SpeedupSeries s;
    s.bandwidth = bw;
    s.points.reserve(proportionalities.size());
    for (double p : proportionalities) {
      const BudgetedCluster c =
          solver.solve(bw, p, BudgetScenario::kFixedCommRatio);
      SpeedupPoint point;
      point.proportionality = p;
      point.num_gpus = c.num_gpus;
      point.speedup =
          solver.speedup_vs(c, reference.iteration.iteration_time());
      s.points.push_back(point);
    }
    series.push_back(std::move(s));
  }
  return series;
}

std::optional<double> proportionality_to_match_baseline(
    const BudgetSolver& solver, Gbps bandwidth) {
  const BudgetedCluster baseline = solver.solve(
      solver.base_config().bandwidth_per_gpu,
      solver.base_config().network_proportionality,
      BudgetScenario::kFixedWorkload);
  const Seconds reference = baseline.iteration.iteration_time();

  const auto speedup_at = [&](double p) {
    const auto c = solver.solve(bandwidth, p, BudgetScenario::kFixedWorkload);
    return solver.speedup_vs(c, reference);
  };

  // Speedup is monotone increasing in proportionality (more budget for
  // GPUs), so bisection on the sign of the speedup finds the crossover.
  if (speedup_at(0.0) >= 0.0) return 0.0;
  if (speedup_at(1.0) < 0.0) return std::nullopt;
  double lo = 0.0, hi = 1.0;
  for (int i = 0; i < 60; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (speedup_at(mid) < 0.0) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace netpp
