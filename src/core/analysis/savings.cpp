#include "netpp/analysis/savings.h"

#include <stdexcept>

namespace netpp {

SavingsCell savings_at(const ClusterConfig& base, Gbps bandwidth,
                       double proportionality,
                       double baseline_proportionality) {
  ClusterConfig cfg = base;
  cfg.bandwidth_per_gpu = bandwidth;

  cfg.network_proportionality = baseline_proportionality;
  const ClusterModel baseline{cfg};
  cfg.network_proportionality = proportionality;
  const ClusterModel improved{cfg};

  const Watts before = baseline.average_total_power();
  const Watts after = improved.average_total_power();

  SavingsCell cell;
  cell.bandwidth = bandwidth;
  cell.proportionality = proportionality;
  cell.absolute_savings = before - after;
  cell.savings_fraction = before.value() > 0.0 ? (before - after) / before : 0.0;
  return cell;
}

std::vector<SavingsRow> savings_table(
    const ClusterConfig& base, const std::vector<Gbps>& bandwidths,
    const std::vector<double>& proportionalities,
    double baseline_proportionality) {
  std::vector<SavingsRow> rows;
  rows.reserve(bandwidths.size());
  for (Gbps bw : bandwidths) {
    SavingsRow row;
    row.bandwidth = bw;
    row.cells.reserve(proportionalities.size());
    for (double p : proportionalities) {
      row.cells.push_back(savings_at(base, bw, p, baseline_proportionality));
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

MechanismValue mechanism_value(Joules baseline, Joules actual,
                               Seconds duration, const CostModel& cost) {
  if (duration.value() <= 0.0) {
    throw std::invalid_argument("mechanism_value: duration must be positive");
  }
  MechanismValue value;
  value.average_reduction =
      Watts{(baseline.value() - actual.value()) / duration.value()};
  value.savings_fraction =
      baseline.value() > 0.0 ? 1.0 - actual.value() / baseline.value() : 0.0;
  value.annual_savings = cost.annual_total_savings(value.average_reduction);
  value.annual_co2_tons =
      cost.annual_co2_savings_tons(value.average_reduction);
  return value;
}

Dollars CostModel::annual_electricity_savings(Watts reduction) const {
  const double kwh =
      reduction.kilowatts() * config_.hours_per_year;
  return Dollars{kwh * config_.usd_per_kwh};
}

Dollars CostModel::annual_cooling_savings(Watts reduction) const {
  return annual_electricity_savings(reduction * config_.cooling_overhead);
}

Dollars CostModel::annual_total_savings(Watts reduction) const {
  return annual_electricity_savings(reduction) +
         annual_cooling_savings(reduction);
}

double CostModel::annual_co2_savings_tons(Watts reduction) const {
  const double kwh = reduction.kilowatts() *
                     (1.0 + config_.cooling_overhead) *
                     config_.hours_per_year;
  return kwh * config_.grams_co2_per_kwh / 1e6;
}

}  // namespace netpp
