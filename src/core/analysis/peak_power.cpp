#include "netpp/analysis/peak_power.h"

#include <stdexcept>

namespace netpp {

std::vector<PeakPowerPoint> peak_power_sweep(
    const ClusterConfig& base, const std::vector<double>& proportionalities) {
  const ClusterModel baseline{base};
  const Watts base_peak = baseline.peak_total_power();

  std::vector<PeakPowerPoint> out;
  out.reserve(proportionalities.size());
  for (double p : proportionalities) {
    const ClusterModel cluster = baseline.with_network_proportionality(p);
    PeakPowerPoint point;
    point.proportionality = p;
    point.peak = cluster.peak_total_power();
    point.average = cluster.average_total_power();
    point.peak_to_average =
        point.average.value() > 0.0 ? point.peak / point.average : 0.0;
    point.peak_reduction =
        base_peak.value() > 0.0 ? 1.0 - point.peak / base_peak : 0.0;
    out.push_back(point);
  }
  return out;
}

double extra_gpus_from_peak_headroom(const ClusterConfig& base,
                                     double proportionality) {
  const ClusterModel baseline{base};
  const Watts budget = baseline.peak_total_power();

  // Bisection on GPU count: the improved-proportionality cluster (network
  // re-sized per GPU count) whose peak equals the baseline peak.
  const auto peak_at = [&](double gpus) {
    ClusterConfig cfg = base;
    cfg.num_gpus = gpus;
    cfg.network_proportionality = proportionality;
    return ClusterModel{cfg}.peak_total_power();
  };

  double lo = base.num_gpus;
  if (peak_at(lo) > budget) return 0.0;  // worse proportionality: no headroom
  double hi = base.num_gpus * 2.0;
  int expansions = 0;
  while (peak_at(hi) < budget) {
    hi *= 2.0;
    if (++expansions > 20) {
      throw std::runtime_error("peak headroom search did not converge");
    }
  }
  for (int i = 0; i < 100; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (peak_at(mid) < budget) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi) - base.num_gpus;
}

}  // namespace netpp
