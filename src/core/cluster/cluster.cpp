#include "netpp/cluster/cluster.h"

#include <stdexcept>

namespace netpp {

ClusterModel::ClusterModel(ClusterConfig config)
    : config_(config),
      catalog_(config.catalog ? config.catalog
                              : &DeviceCatalog::paper_baseline()) {
  if (config_.num_gpus < 1.0) {
    throw std::invalid_argument("cluster needs at least one GPU");
  }
  if (config_.bandwidth_per_gpu.value() <= 0.0) {
    throw std::invalid_argument("per-GPU bandwidth must be positive");
  }
  if (config_.communication_ratio < 0.0 ||
      config_.communication_ratio > 1.0) {
    throw std::invalid_argument("communication ratio must be in [0, 1]");
  }
  if (config_.network_proportionality < 0.0 ||
      config_.network_proportionality > 1.0) {
    throw std::invalid_argument("network proportionality must be in [0, 1]");
  }

  const int radix = catalog_->switch_radix(config_.bandwidth_per_gpu);
  const FatTreeModel tree_model{radix};
  inventory_.tree = tree_model.size_for_hosts(config_.num_gpus);
  inventory_.nics = config_.num_gpus;  // one NIC port per GPU (§2.1)
  inventory_.transceivers = inventory_.tree.transceivers;

  inventory_.switch_power =
      catalog_->switch_max_power() * inventory_.tree.switches;
  inventory_.nic_power =
      catalog_->nic_power(config_.bandwidth_per_gpu) * inventory_.nics;
  inventory_.transceiver_power =
      catalog_->transceiver_power(config_.bandwidth_per_gpu) *
      inventory_.transceivers;

  network_env_ = PowerEnvelope::from_proportionality(
      inventory_.max_power(), config_.network_proportionality);
  compute_env_ = catalog_->gpu_envelope().scaled(config_.num_gpus);
}

PowerBreakdown ClusterModel::phase_power(Phase phase) const {
  PowerBreakdown out;
  if (phase == Phase::kComputation) {
    out.gpu = compute_env_.max_power();
    out.idle = network_env_.idle_power();
  } else {
    // Network components all run at max; attribute per component class.
    out.switches = inventory_.switch_power;
    out.nics = inventory_.nic_power;
    out.transceivers = inventory_.transceiver_power;
    out.idle = compute_env_.idle_power();
  }
  return out;
}

PowerBreakdown ClusterModel::average_power() const {
  const double r = config_.communication_ratio;
  const PowerBreakdown comp = phase_power(Phase::kComputation);
  const PowerBreakdown comm = phase_power(Phase::kCommunication);
  PowerBreakdown out;
  out.gpu = comp.gpu * (1.0 - r) + comm.gpu * r;
  out.switches = comp.switches * (1.0 - r) + comm.switches * r;
  out.nics = comp.nics * (1.0 - r) + comm.nics * r;
  out.transceivers = comp.transceivers * (1.0 - r) + comm.transceivers * r;
  out.idle = comp.idle * (1.0 - r) + comm.idle * r;
  return out;
}

Watts ClusterModel::average_total_power() const {
  const double r = config_.communication_ratio;
  return compute_env_.duty_cycle_average(1.0 - r) +
         network_env_.duty_cycle_average(r);
}

Watts ClusterModel::peak_total_power() const {
  const Watts comp = phase_power(Phase::kComputation).total();
  const Watts comm = phase_power(Phase::kCommunication).total();
  return comp > comm ? comp : comm;
}

double ClusterModel::network_share_of_average() const {
  const double r = config_.communication_ratio;
  const Watts net = network_env_.duty_cycle_average(r);
  const Watts total = average_total_power();
  return total.value() > 0.0 ? net / total : 0.0;
}

double ClusterModel::network_energy_efficiency() const {
  return energy_efficiency(network_env_, config_.communication_ratio);
}

double ClusterModel::compute_energy_efficiency() const {
  return energy_efficiency(compute_env_, 1.0 - config_.communication_ratio);
}

ClusterModel ClusterModel::with_network_proportionality(double p) const {
  ClusterConfig cfg = config_;
  cfg.network_proportionality = p;
  cfg.catalog = catalog_;
  return ClusterModel{cfg};
}

}  // namespace netpp
