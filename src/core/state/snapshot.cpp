#include "netpp/state/snapshot.h"

#include <array>
#include <fstream>
#include <stdexcept>

#include "netpp/validation.h"

namespace netpp::state {

namespace {

constexpr std::array<char, 8> kMagic = {'N', 'P', 'P', 'S', 'N', 'A', 'P', '1'};

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? (0xedb88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

const std::array<std::uint32_t, 256>& crc_table() {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  return table;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t len, std::uint32_t seed) {
  const auto& table = crc_table();
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  std::uint32_t c = seed ^ 0xffffffffu;
  for (std::size_t i = 0; i < len; ++i) {
    c = table[(c ^ bytes[i]) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

// ---------------------------------------------------------------------------
// SnapshotWriter

SnapshotWriter::SnapshotWriter() {
  buffer_.insert(buffer_.end(), kMagic.begin(), kMagic.end());
  for (int shift = 0; shift < 32; shift += 8) {
    buffer_.push_back(
        static_cast<std::uint8_t>((kSnapshotVersion >> shift) & 0xffu));
  }
}

void SnapshotWriter::raw(const void* data, std::size_t len) {
  if (!section_open_) {
    throw std::logic_error("SnapshotWriter: put outside a section");
  }
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  payload_.insert(payload_.end(), bytes, bytes + len);
}

void SnapshotWriter::put_u32(std::uint32_t v) {
  std::uint8_t le[4];
  for (int i = 0; i < 4; ++i) {
    le[i] = static_cast<std::uint8_t>((v >> (8 * i)) & 0xffu);
  }
  raw(le, sizeof(le));
}

void SnapshotWriter::put_u64(std::uint64_t v) {
  std::uint8_t le[8];
  for (int i = 0; i < 8; ++i) {
    le[i] = static_cast<std::uint8_t>((v >> (8 * i)) & 0xffu);
  }
  raw(le, sizeof(le));
}

void SnapshotWriter::put_string(std::string_view s) {
  put_u64(s.size());
  raw(s.data(), s.size());
}

void SnapshotWriter::put_u8_vec(const std::vector<std::uint8_t>& v) {
  put_u64(v.size());
  raw(v.data(), v.size());
}

void SnapshotWriter::put_u32_vec(const std::vector<std::uint32_t>& v) {
  put_u64(v.size());
  for (std::uint32_t x : v) put_u32(x);
}

void SnapshotWriter::put_u64_vec(const std::vector<std::uint64_t>& v) {
  put_u64(v.size());
  for (std::uint64_t x : v) put_u64(x);
}

void SnapshotWriter::put_f64_array(const double* data, std::size_t count) {
  put_u64(count);
  for (std::size_t i = 0; i < count; ++i) put_f64(data[i]);
}

void SnapshotWriter::put_u32_array(const std::uint32_t* data,
                                   std::size_t count) {
  put_u64(count);
  for (std::size_t i = 0; i < count; ++i) put_u32(data[i]);
}

void SnapshotWriter::put_u8_array(const std::uint8_t* data, std::size_t count) {
  put_u64(count);
  raw(data, count);
}

void SnapshotWriter::begin_section(std::string_view name) {
  if (section_open_) {
    throw std::logic_error("SnapshotWriter: section already open");
  }
  if (name.empty() || name.size() > 255) {
    throw std::logic_error("SnapshotWriter: section name must be 1..255 bytes");
  }
  section_name_.assign(name);
  payload_.clear();
  section_open_ = true;
}

void SnapshotWriter::end_section() {
  if (!section_open_) {
    throw std::logic_error("SnapshotWriter: no section open");
  }
  // Section framing: u32 name length, name bytes, u64 payload length,
  // u32 CRC32(payload), payload bytes.
  const auto emit_u32 = [this](std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      buffer_.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xffu));
    }
  };
  const auto emit_u64 = [this](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      buffer_.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xffu));
    }
  };
  emit_u32(static_cast<std::uint32_t>(section_name_.size()));
  buffer_.insert(buffer_.end(), section_name_.begin(), section_name_.end());
  emit_u64(payload_.size());
  emit_u32(crc32(payload_.data(), payload_.size()));
  buffer_.insert(buffer_.end(), payload_.begin(), payload_.end());
  payload_.clear();
  section_open_ = false;
}

const std::vector<std::uint8_t>& SnapshotWriter::buffer() const {
  if (section_open_) {
    throw std::logic_error("SnapshotWriter: buffer() with a section open");
  }
  return buffer_;
}

void SnapshotWriter::write_file(const std::string& path) const {
  const auto& bytes = buffer();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("SnapshotWriter: cannot open " + path);
  }
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) {
    throw std::runtime_error("SnapshotWriter: short write to " + path);
  }
}

// ---------------------------------------------------------------------------
// SnapshotReader

void SnapshotReader::fail(std::string_view constraint) const {
  validation::fail("SnapshotReader", constraint);
}

SnapshotReader::SnapshotReader(std::vector<std::uint8_t> buffer)
    : buffer_(std::move(buffer)) {
  if (buffer_.size() < kMagic.size() + 4) {
    fail("buffer shorter than the snapshot header");
  }
  if (std::memcmp(buffer_.data(), kMagic.data(), kMagic.size()) != 0) {
    fail("bad magic, not a netpp snapshot");
  }
  const std::uint32_t version = read_u32_at(kMagic.size());
  if (version != kSnapshotVersion) {
    fail("unsupported snapshot version " + std::to_string(version) +
         " (expected " + std::to_string(kSnapshotVersion) + ")");
  }
  pos_ = kMagic.size() + 4;
}

SnapshotReader SnapshotReader::from_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) {
    validation::fail("SnapshotReader", "cannot open " + path);
  }
  const std::streamsize size = in.tellg();
  in.seekg(0);
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  if (size > 0) {
    in.read(reinterpret_cast<char*>(bytes.data()), size);
    if (!in) {
      validation::fail("SnapshotReader", "short read from " + path);
    }
  }
  return SnapshotReader(std::move(bytes));
}

std::uint32_t SnapshotReader::read_u32_at(std::size_t pos) const {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(buffer_[pos + static_cast<std::size_t>(i)])
         << (8 * i);
  }
  return v;
}

std::uint64_t SnapshotReader::read_u64_at(std::size_t pos) const {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(buffer_[pos + static_cast<std::size_t>(i)])
         << (8 * i);
  }
  return v;
}

void SnapshotReader::need(std::size_t n, std::string_view what) {
  const std::size_t limit = section_open_ ? section_end_ : buffer_.size();
  if (n > limit - pos_) {
    fail("truncated snapshot reading " + std::string(what) +
         (section_open_ ? " in section '" + section_name_ + "'" : ""));
  }
}

void SnapshotReader::open_section(std::string_view expected) {
  if (section_open_) {
    throw std::logic_error("SnapshotReader: section already open");
  }
  // Frame header: u32 name length + name + u64 payload length + u32 CRC.
  if (buffer_.size() - pos_ < 4) fail("truncated section header");
  const std::uint32_t name_len = read_u32_at(pos_);
  if (name_len == 0 || name_len > 255 ||
      buffer_.size() - pos_ - 4 < name_len) {
    fail("corrupt section name length");
  }
  std::string name(reinterpret_cast<const char*>(buffer_.data() + pos_ + 4),
                   name_len);
  if (name != expected) {
    fail("expected section '" + std::string(expected) + "', found '" + name +
         "'");
  }
  std::size_t p = pos_ + 4 + name_len;
  if (buffer_.size() - p < 12) fail("truncated section frame of '" + name + "'");
  const std::uint64_t payload_len = read_u64_at(p);
  const std::uint32_t expected_crc = read_u32_at(p + 8);
  p += 12;
  if (payload_len > buffer_.size() - p) {
    fail("truncated payload of section '" + name + "'");
  }
  const std::uint32_t actual_crc =
      crc32(buffer_.data() + p, static_cast<std::size_t>(payload_len));
  if (actual_crc != expected_crc) {
    fail("CRC mismatch in section '" + name + "'");
  }
  pos_ = p;
  section_end_ = p + static_cast<std::size_t>(payload_len);
  section_name_ = std::move(name);
  section_open_ = true;
}

void SnapshotReader::close_section() {
  if (!section_open_) {
    throw std::logic_error("SnapshotReader: no section open");
  }
  if (pos_ != section_end_) {
    fail("trailing bytes in section '" + section_name_ + "'");
  }
  section_open_ = false;
  section_name_.clear();
}

std::uint8_t SnapshotReader::get_u8() {
  need(1, "u8");
  return buffer_[pos_++];
}

std::uint32_t SnapshotReader::get_u32() {
  need(4, "u32");
  const std::uint32_t v = read_u32_at(pos_);
  pos_ += 4;
  return v;
}

std::uint64_t SnapshotReader::get_u64() {
  need(8, "u64");
  const std::uint64_t v = read_u64_at(pos_);
  pos_ += 8;
  return v;
}

std::string SnapshotReader::get_string() {
  const std::uint64_t len = get_u64();
  need(static_cast<std::size_t>(len), "string payload");
  std::string s(reinterpret_cast<const char*>(buffer_.data() + pos_),
                static_cast<std::size_t>(len));
  pos_ += static_cast<std::size_t>(len);
  return s;
}

std::vector<std::uint8_t> SnapshotReader::get_u8_vec() {
  const std::uint64_t count = get_u64();
  need(static_cast<std::size_t>(count), "u8 vector payload");
  std::vector<std::uint8_t> v(buffer_.begin() + static_cast<std::ptrdiff_t>(pos_),
                              buffer_.begin() +
                                  static_cast<std::ptrdiff_t>(pos_ + count));
  pos_ += static_cast<std::size_t>(count);
  return v;
}

std::vector<std::uint32_t> SnapshotReader::get_u32_vec() {
  const std::uint64_t count = get_u64();
  need(static_cast<std::size_t>(count) * 4, "u32 vector payload");
  std::vector<std::uint32_t> v(static_cast<std::size_t>(count));
  for (auto& x : v) {
    x = read_u32_at(pos_);
    pos_ += 4;
  }
  return v;
}

std::vector<std::uint64_t> SnapshotReader::get_u64_vec() {
  const std::uint64_t count = get_u64();
  need(static_cast<std::size_t>(count) * 8, "u64 vector payload");
  std::vector<std::uint64_t> v(static_cast<std::size_t>(count));
  for (auto& x : v) {
    x = read_u64_at(pos_);
    pos_ += 8;
  }
  return v;
}

void SnapshotReader::get_f64_array(double* out, std::size_t count) {
  const std::uint64_t stored = get_u64();
  if (stored != count) {
    fail("f64 array count mismatch in section '" + section_name_ + "'");
  }
  need(count * 8, "f64 array payload");
  for (std::size_t i = 0; i < count; ++i) {
    out[i] = std::bit_cast<double>(read_u64_at(pos_));
    pos_ += 8;
  }
}

void SnapshotReader::get_u32_array(std::uint32_t* out, std::size_t count) {
  const std::uint64_t stored = get_u64();
  if (stored != count) {
    fail("u32 array count mismatch in section '" + section_name_ + "'");
  }
  need(count * 4, "u32 array payload");
  for (std::size_t i = 0; i < count; ++i) {
    out[i] = read_u32_at(pos_);
    pos_ += 4;
  }
}

void SnapshotReader::get_u8_array(std::uint8_t* out, std::size_t count) {
  const std::uint64_t stored = get_u64();
  if (stored != count) {
    fail("u8 array count mismatch in section '" + section_name_ + "'");
  }
  need(count, "u8 array payload");
  if (count > 0) std::memcpy(out, buffer_.data() + pos_, count);
  pos_ += count;
}

std::vector<double> SnapshotReader::get_f64_vec() {
  const std::uint64_t count = get_u64();
  need(static_cast<std::size_t>(count) * 8, "f64 vector payload");
  std::vector<double> v(static_cast<std::size_t>(count));
  for (auto& x : v) {
    x = std::bit_cast<double>(read_u64_at(pos_));
    pos_ += 8;
  }
  return v;
}

}  // namespace netpp::state
