#include "netpp/power/switch_model.h"

#include <cmath>

namespace netpp {

SwitchPowerModel::SwitchPowerModel(SwitchPowerConfig config)
    : config_(config) {
  if (config_.max_power.value() <= 0.0) {
    throw std::invalid_argument("switch max power must be positive");
  }
  if (config_.num_pipelines < 1 || config_.num_ports < 1) {
    throw std::invalid_argument("need at least one pipeline and one port");
  }
  const double top = config_.chassis_fraction + config_.pipelines_fraction +
                     config_.serdes_fraction;
  if (std::fabs(top - 1.0) > 1e-9) {
    throw std::invalid_argument("top-level power fractions must sum to 1");
  }
  const double pipe = config_.pipeline_leakage_fraction +
                      config_.pipeline_clock_fraction +
                      config_.pipeline_switching_fraction;
  if (std::fabs(pipe - 1.0) > 1e-9) {
    throw std::invalid_argument("pipeline power fractions must sum to 1");
  }
  per_pipeline_max_ = config_.max_power * config_.pipelines_fraction /
                      static_cast<double>(config_.num_pipelines);
  per_port_max_ = config_.max_power * config_.serdes_fraction /
                  static_cast<double>(config_.num_ports);
}

Watts SwitchPowerModel::chassis_power() const {
  return config_.max_power * config_.chassis_fraction;
}

Watts SwitchPowerModel::pipeline_power(const PipelineState& state) const {
  if (!state.powered) return Watts{0.0};
  if (state.frequency <= 0.0 || state.frequency > 1.0) {
    throw std::invalid_argument("pipeline frequency must be in (0, 1]");
  }
  if (state.load < 0.0 || state.load > state.frequency + 1e-12) {
    throw std::invalid_argument(
        "pipeline load must be in [0, frequency] (clock limits throughput)");
  }
  const double fraction = config_.pipeline_leakage_fraction +
                          config_.pipeline_clock_fraction * state.frequency +
                          config_.pipeline_switching_fraction * state.load;
  return per_pipeline_max_ * fraction;
}

Watts SwitchPowerModel::port_power(const PortState& state) const {
  if (!state.powered) return Watts{0.0};
  if (state.lane_fraction <= 0.0 || state.lane_fraction > 1.0) {
    throw std::invalid_argument("lane fraction must be in (0, 1]");
  }
  return per_port_max_ * state.lane_fraction;
}

Watts SwitchPowerModel::total_power(
    const std::vector<PipelineState>& pipelines,
    const std::vector<PortState>& ports) const {
  if (pipelines.size() != static_cast<std::size_t>(config_.num_pipelines) ||
      ports.size() != static_cast<std::size_t>(config_.num_ports)) {
    throw std::invalid_argument("state vector sizes must match the config");
  }
  Watts total = chassis_power();
  for (const auto& p : pipelines) total += pipeline_power(p);
  for (const auto& p : ports) total += port_power(p);
  return total;
}

Watts SwitchPowerModel::at_uniform_load(double load) const {
  if (load < 0.0 || load > 1.0) {
    throw std::invalid_argument("load must be in [0, 1]");
  }
  const std::vector<PipelineState> pipelines(
      config_.num_pipelines, PipelineState{true, 1.0, load});
  const std::vector<PortState> ports(config_.num_ports, PortState{});
  return total_power(pipelines, ports);
}

double SwitchPowerModel::proportionality() const {
  const Watts max = max_power();
  return (max - idle_power()) / max;
}

}  // namespace netpp
