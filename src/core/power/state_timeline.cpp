#include "netpp/power/state_timeline.h"

#include <limits>
#include <stdexcept>

namespace netpp {

PowerStateTimeline::PowerStateTimeline(int num_components,
                                       TransitionRules rules, Seconds start)
    : rules_(rules), now_(start.value()) {
  if (num_components < 1) {
    throw std::invalid_argument(
        "PowerStateTimeline: needs at least one component");
  }
  if (rules_.wake_latency.value() < 0.0) {
    throw std::invalid_argument(
        "PowerStateTimeline: wake latency must be non-negative");
  }
  if (rules_.min_dwell.value() < 0.0) {
    throw std::invalid_argument(
        "PowerStateTimeline: min dwell must be non-negative");
  }
  if (rules_.level_hysteresis < 0.0) {
    throw std::invalid_argument(
        "PowerStateTimeline: level hysteresis must be non-negative");
  }
  tracks_.resize(static_cast<std::size_t>(num_components));
  dwell_anchor_.assign(static_cast<std::size_t>(num_components), now_);
}

void PowerStateTimeline::set_power_model(PowerFn actual, PowerFn baseline) {
  power_fn_ = std::move(actual);
  baseline_fn_ = std::move(baseline);
}

int PowerStateTimeline::count(PowerState state) const {
  int n = 0;
  for (const auto& t : tracks_) n += t.state == state ? 1 : 0;
  return n;
}

int PowerStateTimeline::provisioned() const {
  return count(PowerState::kOn) + static_cast<int>(pending_.size());
}

void PowerStateTimeline::set_load(int component, double load) {
  tracks_[static_cast<std::size_t>(component)].load = load;
}

void PowerStateTimeline::set_level(int component, double level) {
  tracks_[static_cast<std::size_t>(component)].level = level;
  dwell_anchor_[static_cast<std::size_t>(component)] = now_;
}

void PowerStateTimeline::request_on(int component) {
  auto& track = tracks_[static_cast<std::size_t>(component)];
  if (track.state == PowerState::kOn || track.state == PowerState::kWaking) {
    return;
  }
  ++wakes_;
  const PowerState from = track.state;
  if (rules_.wake_latency.value() == 0.0) {
    track.state = PowerState::kOn;
  } else {
    track.state = PowerState::kWaking;
    pending_.push_back(
        PendingWake{component, now_ + rules_.wake_latency.value()});
  }
  if (transition_listener_) {
    transition_listener_(component, from, track.state, Seconds{now_});
  }
}

int PowerStateTimeline::wake_one() {
  for (std::size_t c = 0; c < tracks_.size(); ++c) {
    if (tracks_[c].state == PowerState::kOff ||
        tracks_[c].state == PowerState::kSleep) {
      request_on(static_cast<int>(c));
      return static_cast<int>(c);
    }
  }
  return -1;
}

void PowerStateTimeline::request_off(int component, PowerState target) {
  auto& track = tracks_[static_cast<std::size_t>(component)];
  if (track.state == target) return;
  if (track.state == PowerState::kWaking) {
    throw std::logic_error(
        "PowerStateTimeline: cancel the pending wake before parking a "
        "waking component");
  }
  const PowerState from = track.state;
  track.state = target;
  ++parks_;
  if (transition_listener_) {
    transition_listener_(component, from, target, Seconds{now_});
  }
}

int PowerStateTimeline::park_one() {
  for (std::size_t c = tracks_.size(); c-- > 0;) {
    if (tracks_[c].state == PowerState::kOn) {
      request_off(static_cast<int>(c));
      return static_cast<int>(c);
    }
  }
  return -1;
}

bool PowerStateTimeline::cancel_last_wake() {
  if (pending_.empty()) return false;
  const PendingWake wake = pending_.back();
  pending_.pop_back();
  tracks_[static_cast<std::size_t>(wake.component)].state = PowerState::kOff;
  --wakes_;  // never happened
  if (transition_listener_) {
    transition_listener_(wake.component, PowerState::kWaking, PowerState::kOff,
                         Seconds{now_});
  }
  return true;
}

bool PowerStateTimeline::request_level(int component, double level) {
  auto& track = tracks_[static_cast<std::size_t>(component)];
  auto& anchor = dwell_anchor_[static_cast<std::size_t>(component)];
  if (level == track.level) {
    anchor = now_;  // the current level is exactly sufficient
    return false;
  }
  if (level > track.level) {
    // Upward moves always apply: load must be served.
    track.level = level;
    anchor = now_;
    ++level_changes_;
    return true;
  }
  // Downward: honor the hysteresis band, then the dwell.
  if (rules_.level_hysteresis > 0.0 &&
      !(track.level - level > rules_.level_hysteresis)) {
    return false;
  }
  if (rules_.min_dwell.value() > 0.0 &&
      now_ - anchor < rules_.min_dwell.value()) {
    return false;
  }
  track.level = level;
  anchor = now_;
  ++level_changes_;
  return true;
}

double PowerStateTimeline::next_event() const {
  double earliest = std::numeric_limits<double>::infinity();
  for (const auto& wake : pending_) {
    earliest = earliest < wake.deadline ? earliest : wake.deadline;
  }
  return earliest;
}

void PowerStateTimeline::advance_to(Seconds t) {
  const double target = t.value();
  if (target < now_) {
    throw std::invalid_argument("PowerStateTimeline: time must be monotone");
  }
  const double dt = target - now_;

  if (power_fn_) energy_j_ += power_fn_(tracks_).value() * dt;
  if (baseline_fn_) baseline_j_ += baseline_fn_(tracks_).value() * dt;

  std::array<int, kNumPowerStates> counts{};
  double level_sum = 0.0;
  for (const auto& track : tracks_) {
    ++counts[static_cast<std::size_t>(track.state)];
    level_sum += track.level;
  }
  for (std::size_t s = 0; s < kNumPowerStates; ++s) {
    residency_[s] += counts[s] * dt;
  }
  level_time_ += (level_sum / static_cast<double>(tracks_.size())) * dt;

  now_ = target;

  // Complete wakes due at (or epsilon-before) the new time, in request
  // order. Completion is not a counted transition — the wake was counted
  // when requested.
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (it->deadline <= now_ + 1e-15) {
      tracks_[static_cast<std::size_t>(it->component)].state = PowerState::kOn;
      if (transition_listener_) {
        transition_listener_(it->component, PowerState::kWaking,
                             PowerState::kOn, Seconds{now_});
      }
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace netpp
