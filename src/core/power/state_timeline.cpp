#include "netpp/power/state_timeline.h"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "netpp/validation.h"

namespace netpp {

PowerStateTimeline::PowerStateTimeline(int num_components,
                                       TransitionRules rules, Seconds start)
    : rules_(rules), start_(start.value()), now_(start.value()) {
  if (num_components < 1) {
    throw std::invalid_argument(
        "PowerStateTimeline: needs at least one component");
  }
  if (rules_.wake_latency.value() < 0.0) {
    throw std::invalid_argument(
        "PowerStateTimeline: wake latency must be non-negative");
  }
  if (rules_.min_dwell.value() < 0.0) {
    throw std::invalid_argument(
        "PowerStateTimeline: min dwell must be non-negative");
  }
  if (rules_.level_hysteresis < 0.0) {
    throw std::invalid_argument(
        "PowerStateTimeline: level hysteresis must be non-negative");
  }
  tracks_.resize(static_cast<std::size_t>(num_components));
  dwell_anchor_.assign(static_cast<std::size_t>(num_components), now_);
}

void PowerStateTimeline::set_power_model(PowerFn actual, PowerFn baseline) {
  power_fn_ = std::move(actual);
  baseline_fn_ = std::move(baseline);
}

int PowerStateTimeline::count(PowerState state) const {
  int n = 0;
  for (const auto& t : tracks_) n += t.state == state ? 1 : 0;
  return n;
}

int PowerStateTimeline::provisioned() const {
  return count(PowerState::kOn) + static_cast<int>(pending_.size());
}

void PowerStateTimeline::set_load(int component, double load) {
  tracks_[static_cast<std::size_t>(component)].load = load;
}

void PowerStateTimeline::set_level(int component, double level) {
  tracks_[static_cast<std::size_t>(component)].level = level;
  dwell_anchor_[static_cast<std::size_t>(component)] = now_;
}

void PowerStateTimeline::request_on(int component) {
  auto& track = tracks_[static_cast<std::size_t>(component)];
  if (track.state == PowerState::kOn || track.state == PowerState::kWaking) {
    return;
  }
  ++wakes_;
  const PowerState from = track.state;
  if (rules_.wake_latency.value() == 0.0) {
    track.state = PowerState::kOn;
  } else {
    track.state = PowerState::kWaking;
    pending_.push_back(
        PendingWake{component, now_ + rules_.wake_latency.value()});
  }
  if (transition_listener_) {
    transition_listener_(component, from, track.state, Seconds{now_});
  }
}

int PowerStateTimeline::wake_one() {
  for (std::size_t c = 0; c < tracks_.size(); ++c) {
    if (tracks_[c].state == PowerState::kOff ||
        tracks_[c].state == PowerState::kSleep) {
      request_on(static_cast<int>(c));
      return static_cast<int>(c);
    }
  }
  return -1;
}

void PowerStateTimeline::request_off(int component, PowerState target) {
  auto& track = tracks_[static_cast<std::size_t>(component)];
  if (track.state == target) return;
  if (track.state == PowerState::kWaking) {
    throw std::logic_error(
        "PowerStateTimeline: cancel the pending wake before parking a "
        "waking component");
  }
  const PowerState from = track.state;
  track.state = target;
  ++parks_;
  if (transition_listener_) {
    transition_listener_(component, from, target, Seconds{now_});
  }
}

int PowerStateTimeline::park_one() {
  for (std::size_t c = tracks_.size(); c-- > 0;) {
    if (tracks_[c].state == PowerState::kOn) {
      request_off(static_cast<int>(c));
      return static_cast<int>(c);
    }
  }
  return -1;
}

bool PowerStateTimeline::cancel_last_wake() {
  if (pending_.empty()) return false;
  const PendingWake wake = pending_.back();
  pending_.pop_back();
  tracks_[static_cast<std::size_t>(wake.component)].state = PowerState::kOff;
  --wakes_;  // never happened
  if (transition_listener_) {
    transition_listener_(wake.component, PowerState::kWaking, PowerState::kOff,
                         Seconds{now_});
  }
  return true;
}

bool PowerStateTimeline::request_level(int component, double level) {
  auto& track = tracks_[static_cast<std::size_t>(component)];
  auto& anchor = dwell_anchor_[static_cast<std::size_t>(component)];
  if (level == track.level) {
    anchor = now_;  // the current level is exactly sufficient
    return false;
  }
  if (level > track.level) {
    // Upward moves always apply: load must be served.
    track.level = level;
    anchor = now_;
    ++level_changes_;
    return true;
  }
  // Downward: honor the hysteresis band, then the dwell.
  if (rules_.level_hysteresis > 0.0 &&
      !(track.level - level > rules_.level_hysteresis)) {
    return false;
  }
  if (rules_.min_dwell.value() > 0.0 &&
      now_ - anchor < rules_.min_dwell.value()) {
    return false;
  }
  track.level = level;
  anchor = now_;
  ++level_changes_;
  return true;
}

double PowerStateTimeline::next_event() const {
  double earliest = std::numeric_limits<double>::infinity();
  for (const auto& wake : pending_) {
    earliest = earliest < wake.deadline ? earliest : wake.deadline;
  }
  return earliest;
}

void PowerStateTimeline::save_state(state::SnapshotWriter& w) const {
  w.begin_section("power_timeline");
  w.put_f64(rules_.wake_latency.value());
  w.put_f64(rules_.min_dwell.value());
  w.put_f64(rules_.level_hysteresis);
  w.put_u64(tracks_.size());
  for (const auto& t : tracks_) {
    w.put_u8(static_cast<std::uint8_t>(t.state));
    w.put_f64(t.level);
    w.put_f64(t.load);
  }
  w.put_f64_vec(dwell_anchor_);
  w.put_u64(pending_.size());
  for (const auto& p : pending_) {
    w.put_u32(static_cast<std::uint32_t>(p.component));
    w.put_f64(p.deadline);
  }
  w.put_f64(start_);
  w.put_f64(now_);
  w.put_f64(energy_j_);
  w.put_f64(baseline_j_);
  for (double r : residency_) w.put_f64(r);
  w.put_f64(level_time_);
  w.put_u64(wakes_);
  w.put_u64(parks_);
  w.put_u64(level_changes_);
  w.end_section();
}

void PowerStateTimeline::restore_state(state::SnapshotReader& r) {
  r.open_section("power_timeline");
  const double wake_latency = r.get_f64();
  const double min_dwell = r.get_f64();
  const double hysteresis = r.get_f64();
  validation::require(wake_latency == rules_.wake_latency.value() &&
                          min_dwell == rules_.min_dwell.value() &&
                          hysteresis == rules_.level_hysteresis,
                      "PowerStateTimeline",
                      "snapshot transition rules do not match this timeline");
  const std::uint64_t n = r.get_u64();
  validation::require(n == tracks_.size(), "PowerStateTimeline",
                      "snapshot component count does not match this timeline");
  std::vector<ComponentTrack> tracks(tracks_.size());
  for (auto& t : tracks) {
    const std::uint8_t s = r.get_u8();
    validation::require(s < kNumPowerStates, "PowerStateTimeline",
                        "snapshot holds an invalid power state");
    t.state = static_cast<PowerState>(s);
    t.level = r.get_f64();
    t.load = r.get_f64();
  }
  std::vector<double> anchors(tracks_.size());
  r.get_f64_array(anchors.data(), anchors.size());
  const std::uint64_t num_pending = r.get_u64();
  validation::require(num_pending <= tracks_.size(), "PowerStateTimeline",
                      "snapshot has more pending wakes than components");
  std::vector<PendingWake> pending(static_cast<std::size_t>(num_pending));
  for (auto& p : pending) {
    const std::uint32_t component = r.get_u32();
    validation::require(component < tracks_.size(), "PowerStateTimeline",
                        "snapshot pending wake references a bad component");
    p.component = static_cast<int>(component);
    p.deadline = r.get_f64();
  }
  tracks_ = std::move(tracks);
  dwell_anchor_ = std::move(anchors);
  pending_ = std::move(pending);
  start_ = r.get_f64();
  now_ = r.get_f64();
  energy_j_ = r.get_f64();
  baseline_j_ = r.get_f64();
  for (double& res : residency_) res = r.get_f64();
  level_time_ = r.get_f64();
  wakes_ = static_cast<std::size_t>(r.get_u64());
  parks_ = static_cast<std::size_t>(r.get_u64());
  level_changes_ = static_cast<std::size_t>(r.get_u64());
  r.close_section();
  check_invariants();
}

void PowerStateTimeline::check_invariants() const {
  const auto req = [](bool ok, std::string_view constraint) {
    validation::require(ok, "PowerStateTimeline", constraint);
  };
  req(std::isfinite(start_) && std::isfinite(now_) && now_ >= start_,
      "clock must be finite and at or after the trace start");
  req(std::isfinite(energy_j_) && energy_j_ >= 0.0,
      "energy integral must be finite and non-negative");
  req(std::isfinite(baseline_j_) && baseline_j_ >= 0.0,
      "baseline energy integral must be finite and non-negative");
  for (const auto& t : tracks_) {
    req(std::isfinite(t.level) && std::isfinite(t.load),
        "track level and load must be finite");
  }
  std::size_t waking = 0;
  for (const auto& t : tracks_) {
    waking += t.state == PowerState::kWaking ? 1 : 0;
  }
  req(pending_.size() == waking,
      "every pending wake must pair with exactly one waking component");
  for (const auto& p : pending_) {
    req(tracks_[static_cast<std::size_t>(p.component)].state ==
            PowerState::kWaking,
        "pending wake must reference a waking component");
    req(std::isfinite(p.deadline), "pending wake deadline must be finite");
  }
  // Residency sums: every component contributes dt to exactly one state per
  // advance, so the total must cover [start, now] x components.
  double total = 0.0;
  for (double res : residency_) {
    req(std::isfinite(res) && res >= 0.0,
        "residency must be finite and non-negative");
    total += res;
  }
  const double expected = (now_ - start_) * static_cast<double>(tracks_.size());
  const double tol = 1e-9 * (expected > 1.0 ? expected : 1.0);
  req(std::abs(total - expected) <= tol,
      "residency totals must cover [start, now] across all components");
}

void PowerStateTimeline::advance_to(Seconds t) {
  const double target = t.value();
  if (target < now_) {
    throw std::invalid_argument("PowerStateTimeline: time must be monotone");
  }
  const double dt = target - now_;

  if (power_fn_) energy_j_ += power_fn_(tracks_).value() * dt;
  if (baseline_fn_) baseline_j_ += baseline_fn_(tracks_).value() * dt;

  std::array<int, kNumPowerStates> counts{};
  double level_sum = 0.0;
  for (const auto& track : tracks_) {
    ++counts[static_cast<std::size_t>(track.state)];
    level_sum += track.level;
  }
  for (std::size_t s = 0; s < kNumPowerStates; ++s) {
    residency_[s] += counts[s] * dt;
  }
  level_time_ += (level_sum / static_cast<double>(tracks_.size())) * dt;

  now_ = target;

  // Complete wakes due at (or epsilon-before) the new time, in request
  // order. Completion is not a counted transition — the wake was counted
  // when requested.
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (it->deadline <= now_ + 1e-15) {
      tracks_[static_cast<std::size_t>(it->component)].state = PowerState::kOn;
      if (transition_listener_) {
        transition_listener_(it->component, PowerState::kWaking,
                             PowerState::kOn, Seconds{now_});
      }
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace netpp
