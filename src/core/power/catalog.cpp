#include "netpp/power/catalog.h"

#include <cmath>
#include <stdexcept>

namespace netpp {

PowerTable::PowerTable(std::map<double, double> gbps_to_watts)
    : points_(std::move(gbps_to_watts)) {
  if (points_.empty()) {
    throw std::invalid_argument("PowerTable requires at least one point");
  }
  for (const auto& [speed, watts] : points_) {
    if (speed <= 0.0) {
      throw std::invalid_argument("PowerTable speeds must be positive");
    }
    if (watts < 0.0) {
      throw std::invalid_argument("PowerTable powers must be non-negative");
    }
  }
}

Watts PowerTable::at(Gbps speed) const {
  const double s = speed.value();
  if (s <= 0.0) throw std::invalid_argument("speed must be positive");

  auto it = points_.lower_bound(s);
  if (it != points_.end() && it->first == s) return Watts{it->second};

  // Geometric interpolation / continuation: power is modelled as
  // p(s) = a * s^b on each segment, i.e. linear in (log s, log p). For
  // queries outside the table the nearest segment's exponent is reused; a
  // single-entry table degenerates to proportional scaling (b = 1).
  auto segment = [&](std::map<double, double>::const_iterator lo,
                     std::map<double, double>::const_iterator hi) -> Watts {
    const double s0 = lo->first, p0 = lo->second;
    const double s1 = hi->first, p1 = hi->second;
    if (p0 <= 0.0 || p1 <= 0.0) {
      // Degenerate zero-power entries: fall back to linear interpolation.
      const double t = (s - s0) / (s1 - s0);
      return Watts{p0 + (p1 - p0) * t};
    }
    const double b = std::log(p1 / p0) / std::log(s1 / s0);
    return Watts{p0 * std::pow(s / s0, b)};
  };

  if (points_.size() == 1) {
    const auto& [s0, p0] = *points_.begin();
    return Watts{p0 * (s / s0)};
  }
  if (it == points_.end()) {
    // Above the table: continue the last segment.
    auto hi = std::prev(points_.end());
    auto lo = std::prev(hi);
    return segment(lo, hi);
  }
  if (it == points_.begin()) {
    // Below the table: continue the first segment.
    auto lo = points_.begin();
    auto hi = std::next(lo);
    return segment(lo, hi);
  }
  return segment(std::prev(it), it);
}

std::optional<Watts> PowerTable::exact(Gbps speed) const {
  auto it = points_.find(speed.value());
  if (it == points_.end()) return std::nullopt;
  return Watts{it->second};
}

DeviceCatalog::DeviceCatalog(Config config)
    : config_(std::move(config)),
      nics_(config_.nic_watts),
      transceivers_(config_.transceiver_watts) {
  if (config_.gpus_per_server <= 0) {
    throw std::invalid_argument("gpus_per_server must be positive");
  }
  gpu_max_ = config_.gpu_max +
             config_.server_overhead / double(config_.gpus_per_server);
  gpu_envelope_ = PowerEnvelope::from_proportionality(
      gpu_max_, config_.compute_proportionality);
}

const DeviceCatalog& DeviceCatalog::paper_baseline() {
  static const DeviceCatalog catalog{Config{}};
  return catalog;
}

int DeviceCatalog::switch_radix(Gbps port_speed) const {
  if (port_speed.value() <= 0.0) {
    throw std::invalid_argument("port speed must be positive");
  }
  return static_cast<int>(config_.switch_capacity / port_speed);
}

}  // namespace netpp
