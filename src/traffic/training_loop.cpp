#include "netpp/traffic/training_loop.h"

#include <stdexcept>

namespace netpp {

TrainingLoopSim::TrainingLoopSim(FlowSimulator& sim, std::vector<NodeId> hosts,
                                 TrainingLoopConfig config)
    : sim_(sim), hosts_(std::move(hosts)), config_(config) {
  if (hosts_.size() < 2) {
    throw std::invalid_argument("training loop needs at least 2 hosts");
  }
  if (config_.iterations < 1) {
    throw std::invalid_argument("need at least one iteration");
  }
  if (config_.compute_time.value() < 0.0) {
    throw std::invalid_argument("compute time must be non-negative");
  }
  if (config_.volume_per_host.value() <= 0.0) {
    throw std::invalid_argument("volume per host must be positive");
  }
  sim_.set_completion_listener(
      [this](const FlowRecord& record) { on_flow_complete(record); });
}

void TrainingLoopSim::start() {
  current_iteration_ = 0;
  begin_compute();
}

void TrainingLoopSim::begin_compute() {
  current_ = IterationRecord{};
  current_.iteration = current_iteration_;
  current_.compute_begin = sim_.engine().now();
  sim_.engine().schedule_after(config_.compute_time,
                               [this] { begin_communication(); });
}

void TrainingLoopSim::begin_communication() {
  current_.comm_begin = sim_.engine().now();

  // Reuse the open-loop generator for one iteration's flow set, starting
  // right now.
  MlTrafficConfig gen;
  gen.compute_time = Seconds{0.0};
  gen.comm_allowance = Seconds{1.0};  // unused (single iteration)
  gen.iterations = 1;
  gen.volume_per_host = config_.volume_per_host;
  gen.collective = config_.collective;
  gen.start = sim_.engine().now();
  const auto traffic = make_ml_training_traffic(hosts_, gen);

  const std::size_t unroutable_before = sim_.unroutable_flows();
  outstanding_flows_ = traffic.flows.size();
  for (auto flow : traffic.flows) {
    flow.tag = static_cast<std::uint64_t>(current_iteration_);
    sim_.submit(flow);
  }
  // Admission happens via engine events at the same timestamp; schedule a
  // zero-delay check for unroutable flows so a deadlock becomes an error.
  sim_.engine().schedule_after(Seconds{0.0}, [this, unroutable_before] {
    if (sim_.unroutable_flows() != unroutable_before) {
      throw std::runtime_error(
          "training collective has unroutable flows; topology disconnected");
    }
  });
}

void TrainingLoopSim::on_flow_complete(const FlowRecord& record) {
  if (record.spec.tag != static_cast<std::uint64_t>(current_iteration_)) {
    return;  // stale flow from another source sharing the simulator
  }
  if (outstanding_flows_ == 0) return;
  if (--outstanding_flows_ > 0) return;

  current_.comm_end = sim_.engine().now();
  records_.push_back(current_);
  ++current_iteration_;
  if (current_iteration_ < config_.iterations) {
    begin_compute();
  }
}

Seconds TrainingLoopSim::mean_communication_time() const {
  if (records_.empty()) return Seconds{0.0};
  Seconds total{};
  for (const auto& r : records_) total += r.communication_time();
  return total / static_cast<double>(records_.size());
}

}  // namespace netpp
