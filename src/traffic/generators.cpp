#include "netpp/traffic/generators.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace netpp {

MlTraffic make_ml_training_traffic(const std::vector<NodeId>& hosts,
                                   const MlTrafficConfig& config) {
  if (hosts.size() < 2) {
    throw std::invalid_argument("ML traffic needs at least 2 hosts");
  }
  if (config.iterations < 1) {
    throw std::invalid_argument("need at least one iteration");
  }
  if (config.compute_time.value() < 0.0) {
    throw std::invalid_argument("compute time must be non-negative");
  }
  if (config.volume_per_host.value() <= 0.0) {
    throw std::invalid_argument("volume per host must be positive");
  }

  const auto n = static_cast<double>(hosts.size());
  // Every collective moves the same total per host: 2(n-1)/n * V (the
  // bandwidth-optimal all-reduce volume).
  const Bits total_per_host = config.volume_per_host * (2.0 * (n - 1.0) / n);
  if (config.collective == CollectiveKind::kHalvingDoubling &&
      (hosts.size() & (hosts.size() - 1)) != 0) {
    throw std::invalid_argument(
        "halving/doubling requires a power-of-two host count");
  }

  MlTraffic out;
  out.flows.reserve(hosts.size() * static_cast<std::size_t>(config.iterations));
  out.schedule.reserve(static_cast<std::size_t>(config.iterations));

  // Iterations follow a fixed schedule: the generator cannot know the
  // achieved communication duration (it depends on network speed), so the
  // caller provisions a communication window (comm_allowance) and flows are
  // tagged with their iteration so analysis can recover achieved comm times.
  Seconds t = config.start;
  for (int k = 0; k < config.iterations; ++k) {
    PhaseWindow window;
    window.iteration = k;
    window.compute_begin = t;
    window.comm_begin = t + config.compute_time;
    out.schedule.push_back(window);

    const auto emit = [&](NodeId src, NodeId dst, Bits size) {
      FlowSpec flow;
      flow.src = src;
      flow.dst = dst;
      flow.size = size;
      flow.start = window.comm_begin;
      flow.tag = static_cast<std::uint64_t>(k);
      out.flows.push_back(flow);
    };

    switch (config.collective) {
      case CollectiveKind::kRing:
        for (std::size_t i = 0; i < hosts.size(); ++i) {
          emit(hosts[i], hosts[(i + 1) % hosts.size()], total_per_host);
        }
        break;
      case CollectiveKind::kHalvingDoubling: {
        // log2(n) rounds; reduce-scatter round r exchanges V/2^(r+1) with
        // partner i XOR 2^r, and the all-gather mirrors it, so we emit one
        // flow of 2 * V/2^(r+1) per round. Per-host total:
        // 2V * (1 - 1/n) = 2(n-1)/n * V — identical to the ring.
        std::size_t rounds = 0;
        for (std::size_t m = hosts.size(); m > 1; m >>= 1) ++rounds;
        for (std::size_t r = 0; r < rounds; ++r) {
          const Bits round_size =
              config.volume_per_host *
              (1.0 / static_cast<double>(std::size_t{2} << r));
          const std::size_t stride = std::size_t{1} << r;
          for (std::size_t i = 0; i < hosts.size(); ++i) {
            emit(hosts[i], hosts[i ^ stride], round_size * 2.0);
          }
        }
        break;
      }
      case CollectiveKind::kAllToAll:
        for (std::size_t i = 0; i < hosts.size(); ++i) {
          for (std::size_t j = 0; j < hosts.size(); ++j) {
            if (i == j) continue;
            emit(hosts[i], hosts[j], total_per_host / (n - 1.0));
          }
        }
        break;
    }
    t = window.comm_begin + config.comm_allowance;
  }
  return out;
}

std::vector<FlowSpec> make_poisson_traffic(const std::vector<NodeId>& hosts,
                                           const PoissonTrafficConfig& config) {
  if (hosts.size() < 2) {
    throw std::invalid_argument("traffic needs at least 2 hosts");
  }
  if (config.arrivals_per_second <= 0.0 || config.duration.value() <= 0.0) {
    throw std::invalid_argument("need positive rate and duration");
  }
  Rng rng{config.seed};
  std::vector<FlowSpec> out;
  double t = 0.0;
  const double end = config.duration.value();
  while (true) {
    t += rng.exponential(config.arrivals_per_second);
    if (t >= end) break;
    FlowSpec flow;
    const auto src_idx = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(hosts.size()) - 1));
    auto dst_idx = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(hosts.size()) - 2));
    if (dst_idx >= src_idx) ++dst_idx;
    flow.src = hosts[src_idx];
    flow.dst = hosts[dst_idx];
    flow.size = Bits{rng.bounded_pareto(config.pareto_alpha,
                                        config.min_size.value(),
                                        config.max_size.value())};
    flow.start = Seconds{t};
    out.push_back(flow);
  }
  return out;
}

std::vector<FlowSpec> make_diurnal_traffic(const std::vector<NodeId>& hosts,
                                           const DiurnalTrafficConfig& config) {
  if (hosts.size() < 2) {
    throw std::invalid_argument("traffic needs at least 2 hosts");
  }
  if (config.peak_arrivals_per_second <= 0.0 ||
      config.day_duration.value() <= 0.0 || config.days < 1) {
    throw std::invalid_argument("need positive rate, day length, and days");
  }
  if (config.trough_ratio <= 0.0 || config.trough_ratio > 1.0) {
    throw std::invalid_argument("trough_ratio must be in (0, 1]");
  }

  Rng rng{config.seed};
  std::vector<FlowSpec> out;
  const double day = config.day_duration.value();
  const double end = day * config.days;
  const double peak = config.peak_arrivals_per_second;
  const double trough = peak * config.trough_ratio;
  const double mid = 0.5 * (peak + trough);
  const double amp = 0.5 * (peak - trough);

  const auto rate_at = [&](double t) {
    const double hour = std::fmod(t, day) / day * 24.0;
    return mid +
           amp * std::cos(2.0 * std::numbers::pi * (hour - config.peak_hour) /
                          24.0);
  };

  // Thinning (Lewis-Shedler): sample at the peak rate, accept with
  // probability rate(t)/peak.
  double t = 0.0;
  while (true) {
    t += rng.exponential(peak);
    if (t >= end) break;
    if (!rng.bernoulli(rate_at(t) / peak)) continue;
    FlowSpec flow;
    const auto src_idx = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(hosts.size()) - 1));
    auto dst_idx = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(hosts.size()) - 2));
    if (dst_idx >= src_idx) ++dst_idx;
    flow.src = hosts[src_idx];
    flow.dst = hosts[dst_idx];
    flow.size = Bits{rng.bounded_pareto(config.pareto_alpha,
                                        config.min_size.value(),
                                        config.max_size.value())};
    flow.start = Seconds{t};
    flow.tag = static_cast<std::uint64_t>(t / day);  // day index
    out.push_back(flow);
  }
  return out;
}

}  // namespace netpp
