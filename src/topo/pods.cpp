#include "netpp/topo/pods.h"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace netpp {

PodPartition make_pod_partition(const Graph& graph, int core_tier) {
  const std::size_t n = graph.num_nodes();
  PodPartition out;
  out.core_tier = core_tier;
  out.pod_of_node.assign(n, PodPartition::kCore);

  std::size_t non_core = 0;
  for (const Node& node : graph.nodes()) {
    if (node.tier < core_tier) ++non_core;
  }
  if (non_core == 0) {
    throw std::invalid_argument(
        "PodPartition: graph has no nodes below the core tier");
  }

  // Flood-fill the non-core subgraph. Seeds are visited in ascending node
  // id, so pod numbering is reproducible: pod k has the k-th smallest
  // unvisited seed as its smallest member.
  std::vector<NodeId> queue;
  for (NodeId seed = 0; seed < n; ++seed) {
    if (graph.node(seed).tier >= core_tier ||
        out.pod_of_node[seed] != PodPartition::kCore) {
      continue;
    }
    const int pod = static_cast<int>(out.num_pods++);
    out.pod_nodes.emplace_back();
    queue.clear();
    queue.push_back(seed);
    out.pod_of_node[seed] = pod;
    while (!queue.empty()) {
      const NodeId at = queue.back();
      queue.pop_back();
      out.pod_nodes[pod].push_back(at);
      for (const Adjacency& adj : graph.neighbors(at)) {
        if (graph.node(adj.neighbor).tier >= core_tier) continue;
        if (out.pod_of_node[adj.neighbor] != PodPartition::kCore) continue;
        out.pod_of_node[adj.neighbor] = pod;
        queue.push_back(adj.neighbor);
      }
    }
    std::sort(out.pod_nodes[pod].begin(), out.pod_nodes[pod].end());
  }

  for (const Link& link : graph.links()) {
    const bool a_core = graph.node(link.a).tier >= core_tier;
    const bool b_core = graph.node(link.b).tier >= core_tier;
    if (a_core && b_core) {
      throw std::invalid_argument(
          "PodPartition: core-to-core links are not supported (link " +
          std::to_string(link.id) + ")");
    }
    if (a_core != b_core) out.boundary_links.push_back(link.id);
  }
  return out;
}

std::vector<int> assign_pods_contiguous(std::size_t num_pods,
                                        std::size_t num_shards) {
  if (num_shards == 0 || num_shards > num_pods) {
    throw std::invalid_argument(
        "PodPartition: num_shards must be in [1, num_pods]");
  }
  std::vector<int> shard_of_pod(num_pods);
  const std::size_t base = num_pods / num_shards;
  const std::size_t extra = num_pods % num_shards;
  std::size_t pod = 0;
  for (std::size_t s = 0; s < num_shards; ++s) {
    const std::size_t count = base + (s < extra ? 1 : 0);
    for (std::size_t i = 0; i < count; ++i) {
      shard_of_pod[pod++] = static_cast<int>(s);
    }
  }
  return shard_of_pod;
}

ShardTopology build_shard_topology(const Graph& graph,
                                   const PodPartition& partition,
                                   const std::vector<int>& shard_of_pod,
                                   int shard) {
  if (shard_of_pod.size() != partition.num_pods) {
    throw std::invalid_argument(
        "PodPartition: shard assignment size does not match the pod count");
  }
  const bool whole = std::all_of(shard_of_pod.begin(), shard_of_pod.end(),
                                 [shard](int s) { return s == shard; });

  ShardTopology out;
  out.local_of_global.assign(graph.num_nodes(), kInvalidNode);
  out.global_of_local.clear();
  out.local_link_of_global.assign(graph.num_links(), kInvalidLink);

  if (whole) {
    // Verbatim copy: same node and link ids, core included, no gateway.
    // This is the single-shard configuration that stays bit-identical to
    // the plain FlowSimulator over the original graph.
    for (const Node& node : graph.nodes()) {
      const NodeId local = out.graph.add_node(node.kind, node.tier, node.name);
      out.local_of_global[node.id] = local;
      out.global_of_local.push_back(node.id);
    }
    for (const Link& link : graph.links()) {
      out.local_link_of_global[link.id] = out.graph.add_link(
          link.a, link.b, link.capacity, link.optical);
    }
    return out;
  }

  const auto in_shard = [&](NodeId n) {
    const int pod = partition.pod_of_node[n];
    return pod != PodPartition::kCore && shard_of_pod[pod] == shard;
  };

  // Nodes in ascending global id order, then the gateway last: local ids
  // are a pure function of the partition, independent of shard count.
  for (const Node& node : graph.nodes()) {
    if (!in_shard(node.id)) continue;
    const NodeId local = out.graph.add_node(node.kind, node.tier, node.name);
    out.local_of_global[node.id] = local;
    out.global_of_local.push_back(node.id);
  }
  if (out.global_of_local.empty()) {
    throw std::invalid_argument("PodPartition: shard has no pods");
  }
  out.gateway =
      out.graph.add_node(NodeKind::kSwitch, partition.core_tier, "gateway");
  out.global_of_local.push_back(kInvalidNode);

  // Intra-shard links in ascending global link id order.
  for (const Link& link : graph.links()) {
    if (!in_shard(link.a) || !in_shard(link.b)) continue;
    out.local_link_of_global[link.id] =
        out.graph.add_link(out.local_of_global[link.a],
                           out.local_of_global[link.b], link.capacity,
                           link.optical);
  }

  // Collapse each member agg's core uplinks into one gateway link. Boundary
  // links are ascending by construction, and each switch's links group by
  // the non-core endpoint in first-appearance order — which is ascending
  // agg id because graph builders add a switch's uplinks consecutively; to
  // stay robust for hand-built graphs, gather per agg first, then emit in
  // ascending agg id order.
  std::vector<std::vector<LinkId>> uplinks_of_local(
      out.graph.num_nodes());
  for (const LinkId lid : partition.boundary_links) {
    const Link& link = graph.link(lid);
    const NodeId side = partition.is_core(link.a) ? link.b : link.a;
    if (!in_shard(side)) continue;
    uplinks_of_local[out.local_of_global[side]].push_back(lid);
  }
  for (NodeId local = 0; local < uplinks_of_local.size(); ++local) {
    const auto& uplinks = uplinks_of_local[local];
    if (uplinks.empty()) continue;
    ShardTopology::GatewayLink gl;
    gl.global_agg = out.global_of_local[local];
    gl.global_links = uplinks;
    for (const LinkId lid : uplinks) {
      gl.total_capacity_bps += graph.link(lid).capacity.bits_per_second();
    }
    const bool optical = graph.link(uplinks.front()).optical;
    gl.local_link = out.graph.add_link(
        local, out.gateway, Gbps{gl.total_capacity_bps / 1e9}, optical);
    out.gateway_links.push_back(std::move(gl));
  }
  return out;
}

}  // namespace netpp
