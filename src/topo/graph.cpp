#include "netpp/topo/graph.h"

#include <stdexcept>

namespace netpp {

NodeId Graph::add_node(NodeKind kind, int tier, std::string name) {
  const auto id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(Node{id, kind, tier, std::move(name)});
  adjacency_.emplace_back();
  return id;
}

LinkId Graph::add_link(NodeId a, NodeId b, Gbps capacity, bool optical) {
  if (a >= nodes_.size() || b >= nodes_.size()) {
    throw std::out_of_range("link endpoint does not exist");
  }
  if (a == b) throw std::invalid_argument("self-links are not allowed");
  if (capacity.value() <= 0.0) {
    throw std::invalid_argument("link capacity must be positive");
  }
  const auto id = static_cast<LinkId>(links_.size());
  links_.push_back(Link{id, a, b, capacity, optical});
  adjacency_[a].push_back(Adjacency{id, b});
  adjacency_[b].push_back(Adjacency{id, a});
  return id;
}

std::vector<NodeId> Graph::nodes_of_kind(NodeKind kind) const {
  std::vector<NodeId> out;
  for (const auto& node : nodes_) {
    if (node.kind == kind) out.push_back(node.id);
  }
  return out;
}

std::vector<NodeId> Graph::nodes_at_tier(int tier) const {
  std::vector<NodeId> out;
  for (const auto& node : nodes_) {
    if (node.tier == tier) out.push_back(node.id);
  }
  return out;
}

}  // namespace netpp
