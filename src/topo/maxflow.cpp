#include "netpp/topo/maxflow.h"

#include <algorithm>
#include <deque>
#include <limits>
#include <stdexcept>

namespace netpp {
namespace {

/// Compact arc-based residual graph for Edmonds-Karp.
class ResidualGraph {
 public:
  explicit ResidualGraph(std::size_t nodes) : head_(nodes) {}

  void add_edge(std::size_t from, std::size_t to, double capacity) {
    head_[from].push_back(arcs_.size());
    arcs_.push_back(Arc{to, capacity});
    head_[to].push_back(arcs_.size());
    arcs_.push_back(Arc{from, 0.0});  // residual
  }

  double run(std::size_t source, std::size_t sink) {
    double total = 0.0;
    while (true) {
      // BFS for a shortest augmenting path.
      std::vector<std::size_t> via(head_.size(),
                                   std::numeric_limits<std::size_t>::max());
      std::vector<bool> seen(head_.size(), false);
      std::deque<std::size_t> queue;
      seen[source] = true;
      queue.push_back(source);
      while (!queue.empty() && !seen[sink]) {
        const std::size_t at = queue.front();
        queue.pop_front();
        for (std::size_t arc : head_[at]) {
          if (arcs_[arc].capacity <= 1e-12) continue;
          const std::size_t next = arcs_[arc].to;
          if (seen[next]) continue;
          seen[next] = true;
          via[next] = arc;
          queue.push_back(next);
        }
      }
      if (!seen[sink]) break;

      // Bottleneck along the path.
      double bottleneck = std::numeric_limits<double>::infinity();
      for (std::size_t at = sink; at != source;) {
        const std::size_t arc = via[at];
        bottleneck = std::min(bottleneck, arcs_[arc].capacity);
        at = arcs_[arc ^ 1].to;
      }
      for (std::size_t at = sink; at != source;) {
        const std::size_t arc = via[at];
        arcs_[arc].capacity -= bottleneck;
        arcs_[arc ^ 1].capacity += bottleneck;
        at = arcs_[arc ^ 1].to;
      }
      total += bottleneck;
    }
    return total;
  }

 private:
  struct Arc {
    std::size_t to;
    double capacity;
  };
  std::vector<Arc> arcs_;
  std::vector<std::vector<std::size_t>> head_;
};

constexpr double kInfiniteCapacity = 1e18;

ResidualGraph build_residual(const Graph& graph, const Router* router,
                             const std::vector<NodeId>& endpoints,
                             std::size_t extra_nodes) {
  ResidualGraph residual{graph.num_nodes() + extra_nodes};
  const auto endpoint = [&](NodeId id) {
    return std::find(endpoints.begin(), endpoints.end(), id) !=
           endpoints.end();
  };
  for (const auto& link : graph.links()) {
    if (router && !router->link_enabled(link.id)) continue;
    // Transit through disabled nodes is blocked by zeroing their incident
    // arcs unless the node is an endpoint.
    const bool a_ok = !router || router->node_enabled(link.a) ||
                      endpoint(link.a);
    const bool b_ok = !router || router->node_enabled(link.b) ||
                      endpoint(link.b);
    if (!a_ok || !b_ok) continue;
    residual.add_edge(link.a, link.b, link.capacity.value());
    residual.add_edge(link.b, link.a, link.capacity.value());
  }
  return residual;
}

}  // namespace

Gbps max_flow(const Graph& graph, NodeId src, NodeId dst,
              const Router* router) {
  if (src >= graph.num_nodes() || dst >= graph.num_nodes()) {
    throw std::out_of_range("max_flow endpoint does not exist");
  }
  if (src == dst) throw std::invalid_argument("max_flow: src == dst");
  auto residual = build_residual(graph, router, {src, dst}, 0);
  return Gbps{residual.run(src, dst)};
}

Gbps max_flow(const Graph& graph, const std::vector<NodeId>& sources,
              const std::vector<NodeId>& sinks, const Router* router) {
  if (sources.empty() || sinks.empty()) {
    throw std::invalid_argument("max_flow: empty endpoint set");
  }
  for (NodeId s : sources) {
    if (std::find(sinks.begin(), sinks.end(), s) != sinks.end()) {
      throw std::invalid_argument("max_flow: sets must be disjoint");
    }
  }
  std::vector<NodeId> endpoints = sources;
  endpoints.insert(endpoints.end(), sinks.begin(), sinks.end());
  auto residual = build_residual(graph, router, endpoints, 2);
  const std::size_t super_source = graph.num_nodes();
  const std::size_t super_sink = graph.num_nodes() + 1;
  for (NodeId s : sources) {
    residual.add_edge(super_source, s, kInfiniteCapacity);
  }
  for (NodeId t : sinks) {
    residual.add_edge(t, super_sink, kInfiniteCapacity);
  }
  return Gbps{residual.run(super_source, super_sink)};
}

Gbps bisection_bandwidth(const BuiltTopology& topology,
                         const Router* router) {
  const auto& hosts = topology.hosts;
  if (hosts.size() < 2) {
    throw std::invalid_argument("bisection needs at least 2 hosts");
  }
  const std::size_t half = hosts.size() / 2;
  const std::vector<NodeId> left(hosts.begin(), hosts.begin() + half);
  const std::vector<NodeId> right(hosts.begin() + half, hosts.end());
  return max_flow(topology.graph, left, right, router);
}

}  // namespace netpp
