#include "netpp/topo/route_cache.h"

#include <algorithm>

#include "netpp/validation.h"

namespace netpp {

namespace {

constexpr std::uint64_t kEmptyKey = ~0ULL;  // (kInvalidNode, kInvalidNode)
constexpr std::size_t kInitialTable = 1024;  // power of two

[[nodiscard]] std::uint64_t pair_key(NodeId a, NodeId b) {
  return (static_cast<std::uint64_t>(a) << 32) | b;
}

[[nodiscard]] std::size_t key_slot(std::uint64_t key, std::size_t mask) {
  // Fibonacci hashing: the keys are structured (two small ids), so mix
  // before masking.
  return static_cast<std::size_t>((key * 0x9e3779b97f4a7c15ULL) >> 32) & mask;
}

}  // namespace

RouteCache::RouteCache(const Router& router, Config config)
    : router_(router), config_(config) {
  assert(config_.max_paths > 0);
  const Graph& graph = router.graph();
  attach_node_.assign(graph.num_nodes(), kInvalidNode);
  attach_link_.assign(graph.num_nodes(), kInvalidLink);
  if (config_.symmetry) {
    for (NodeId n = 0; n < graph.num_nodes(); ++n) {
      const auto adj = graph.neighbors(n);
      if (adj.size() == 1) {
        attach_node_[n] = adj[0].neighbor;
        attach_link_[n] = adj[0].link;
      }
    }
  }
  keys_.assign(kInitialTable, kEmptyKey);
  slots_.assign(kInitialTable, 0);
  epoch_ = router.topology_epoch();
}

void RouteCache::flush_if_stale() {
  const std::uint64_t current = router_.topology_epoch();
  if (current == epoch_) return;
  epoch_ = current;
  if (occupied_ > 0) {
    ++epoch_flushes_;
    std::fill(keys_.begin(), keys_.end(), kEmptyKey);
    occupied_ = 0;
    entries_.clear();
    pool_.clear();
  }
}

RouteCache::CanonicalKey RouteCache::canonicalize(NodeId src,
                                                  NodeId dst) const {
  CanonicalKey key{src, dst, kInvalidLink, kInvalidLink};
  // A single-homed endpoint's first/last hop is forced, so the rest of the
  // set is exactly the attachment pair's set — but only while the forced hop
  // is usable and the attachment switch can be transited; otherwise fall
  // back to the direct key (the Router query then reports disconnection with
  // endpoint-exemption semantics intact). Masks are epoch-stable, so these
  // checks cannot go stale between flush and lookup.
  const NodeId src_at = attach_node_[src];
  if (src_at != kInvalidNode && src_at != dst &&
      router_.link_enabled_unchecked(attach_link_[src]) &&
      router_.node_enabled_unchecked(src_at)) {
    key.a = src_at;
    key.prefix = attach_link_[src];
  }
  const NodeId dst_at = attach_node_[dst];
  if (dst_at != kInvalidNode && dst_at != src &&
      router_.link_enabled_unchecked(attach_link_[dst]) &&
      router_.node_enabled_unchecked(dst_at)) {
    key.b = dst_at;
    key.suffix = attach_link_[dst];
  }
  return key;
}

void RouteCache::grow_table() {
  std::vector<std::uint64_t> old_keys = std::move(keys_);
  std::vector<std::uint32_t> old_slots = std::move(slots_);
  keys_.assign(old_keys.size() * 2, kEmptyKey);
  slots_.assign(old_slots.size() * 2, 0);
  occupied_ = 0;
  for (std::size_t i = 0; i < old_keys.size(); ++i) {
    if (old_keys[i] != kEmptyKey) insert_key(old_keys[i], old_slots[i]);
  }
}

void RouteCache::insert_key(std::uint64_t key, std::uint32_t entry_index) {
  const std::size_t mask = keys_.size() - 1;
  std::size_t slot = key_slot(key, mask);
  while (keys_[slot] != kEmptyKey) slot = (slot + 1) & mask;
  keys_[slot] = key;
  slots_[slot] = entry_index;
  ++occupied_;
}

std::uint32_t RouteCache::lookup(NodeId a, NodeId b) {
  const std::uint64_t key = pair_key(a, b);
  const std::size_t mask = keys_.size() - 1;
  std::size_t slot = key_slot(key, mask);
  while (keys_[slot] != kEmptyKey) {
    if (keys_[slot] == key) {
      ++hits_;
      return slots_[slot];
    }
    slot = (slot + 1) & mask;
  }

  // Miss: run the real enumeration and append the set to the pool.
  ++misses_;
  auto result = router_.find_paths(a, b, config_.max_paths);
  Entry entry;
  entry.status = result.status;
  entry.begin = static_cast<std::uint32_t>(pool_.size());
  entry.num_paths = static_cast<std::uint32_t>(result.paths.size());
  entry.hops = result.paths.empty()
                   ? 0
                   : static_cast<std::uint32_t>(result.paths.front().hops());
  for (const Path& p : result.paths) {
    assert(p.hops() == entry.hops);  // ECMP sets are equal-cost
    pool_.insert(pool_.end(), p.links.begin(), p.links.end());
  }
  const auto index = static_cast<std::uint32_t>(entries_.size());
  entries_.push_back(entry);
  if ((occupied_ + 1) * 4 >= keys_.size() * 3) grow_table();
  insert_key(key, index);
  return index;
}

RouteCache::PathSetView RouteCache::find_paths(NodeId src, NodeId dst) {
  const Graph& graph = router_.graph();
  if (src >= graph.num_nodes() || dst >= graph.num_nodes()) {
    return PathSetView{RouteStatus::kInvalidEndpoint, nullptr, 0, 0,
                       kInvalidLink, kInvalidLink};
  }
  if (src == dst) {
    // One trivial empty path, like Router::find_paths.
    return PathSetView{RouteStatus::kOk, nullptr, 1, 0, kInvalidLink,
                       kInvalidLink};
  }
  flush_if_stale();
  const CanonicalKey key = canonicalize(src, dst);
  const Entry& entry = entries_[lookup(key.a, key.b)];
  return PathSetView{entry.status, pool_.data() + entry.begin,
                     entry.num_paths, entry.hops, key.prefix, key.suffix};
}

std::optional<RouteCache::PathRef> RouteCache::route(NodeId src, NodeId dst,
                                                     std::uint64_t flow_id) {
  const PathSetView view = find_paths(src, dst);
  if (!view.ok() || view.size() == 0) return std::nullopt;
  const std::uint64_t h = ecmp_flow_hash(src, dst, flow_id);
  return view.path(h % view.size());
}

void RouteCache::prefetch(NodeId src, NodeId dst) const {
  const Graph& graph = router_.graph();
  if (src >= graph.num_nodes() || dst >= graph.num_nodes() || src == dst) {
    return;
  }
  const CanonicalKey key = canonicalize(src, dst);
  const std::size_t mask = keys_.size() - 1;
  const std::size_t slot = key_slot(pair_key(key.a, key.b), mask);
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(keys_.data() + slot, 0, 1);
  __builtin_prefetch(slots_.data() + slot, 0, 1);
#else
  (void)slot;
#endif
}

RouteResult RouteCache::find_paths_copy(NodeId src, NodeId dst) {
  const PathSetView view = find_paths(src, dst);
  RouteResult out;
  out.status = view.status();
  out.paths.reserve(view.size());
  for (std::size_t i = 0; i < view.size(); ++i) {
    out.paths.push_back(Path{src, dst, view.path(i).links()});
  }
  return out;
}

void RouteCache::save_state(state::SnapshotWriter& w) const {
  w.begin_section("route_cache");
  w.put_u64(static_cast<std::uint64_t>(config_.max_paths));
  w.put_bool(config_.symmetry);
  w.put_u64_vec(keys_);
  w.put_u32_vec(slots_);
  w.put_u64(occupied_);
  w.put_u64(entries_.size());
  for (const Entry& e : entries_) {
    w.put_u32(e.begin);
    w.put_u32(e.num_paths);
    w.put_u32(e.hops);
    w.put_u8(static_cast<std::uint8_t>(e.status));
  }
  w.put_u32_vec(pool_);
  w.put_u64(epoch_);
  w.put_u64(hits_);
  w.put_u64(misses_);
  w.put_u64(epoch_flushes_);
  w.end_section();
}

void RouteCache::restore_state(state::SnapshotReader& r) {
  r.open_section("route_cache");
  const auto max_paths = static_cast<std::size_t>(r.get_u64());
  const bool symmetry = r.get_bool();
  if (max_paths != config_.max_paths || symmetry != config_.symmetry) {
    validation::fail("RouteCache",
                     "snapshot config does not match this cache's config");
  }
  auto keys = r.get_u64_vec();
  auto slots = r.get_u32_vec();
  const std::uint64_t occupied = r.get_u64();
  if (keys.empty() || (keys.size() & (keys.size() - 1)) != 0 ||
      keys.size() != slots.size() || occupied > keys.size()) {
    validation::fail("RouteCache", "corrupt snapshot hash table");
  }
  const std::uint64_t num_entries = r.get_u64();
  std::vector<Entry> entries(static_cast<std::size_t>(num_entries));
  for (Entry& e : entries) {
    e.begin = r.get_u32();
    e.num_paths = r.get_u32();
    e.hops = r.get_u32();
    const std::uint8_t status = r.get_u8();
    if (status > static_cast<std::uint8_t>(RouteStatus::kDisconnected)) {
      validation::fail("RouteCache", "corrupt snapshot route status");
    }
    e.status = static_cast<RouteStatus>(status);
  }
  auto pool = r.get_u32_vec();
  for (const Entry& e : entries) {
    const std::uint64_t span =
        static_cast<std::uint64_t>(e.num_paths) * e.hops;
    if (e.begin > pool.size() || span > pool.size() - e.begin) {
      validation::fail("RouteCache", "snapshot entry spans past the path pool");
    }
  }
  for (std::size_t i = 0; i < keys.size(); ++i) {
    if (keys[i] != kEmptyKey && slots[i] >= entries.size()) {
      validation::fail("RouteCache", "snapshot slot points past the entries");
    }
  }
  keys_ = std::move(keys);
  slots_ = std::move(slots);
  occupied_ = static_cast<std::size_t>(occupied);
  entries_ = std::move(entries);
  pool_ = std::move(pool);
  epoch_ = r.get_u64();
  hits_ = r.get_u64();
  misses_ = r.get_u64();
  epoch_flushes_ = r.get_u64();
  r.close_section();
}

void RouteCache::check_agreement() const {
  if (epoch_ != router_.topology_epoch()) return;  // stale: flushes lazily
  const Graph& graph = router_.graph();
  for (std::size_t slot = 0; slot < keys_.size(); ++slot) {
    if (keys_[slot] == kEmptyKey) continue;
    const auto a = static_cast<NodeId>(keys_[slot] >> 32);
    const auto b = static_cast<NodeId>(keys_[slot] & 0xffffffffu);
    const Entry& e = entries_[slots_[slot]];
    if (e.status != RouteStatus::kOk) continue;
    for (std::uint32_t p = 0; p < e.num_paths; ++p) {
      NodeId at = a;
      for (std::uint32_t h = 0; h < e.hops; ++h) {
        const LinkId l = pool_[e.begin + p * e.hops + h];
        if (l >= graph.num_links()) {
          validation::fail("RouteCache",
                           "cached path references a link outside the graph");
        }
        const Link& link = graph.link(l);
        if (link.a != at && link.b != at) {
          validation::fail("RouteCache",
                           "cached path links do not form a walk");
        }
        if (!router_.link_enabled(l)) {
          validation::fail("RouteCache",
                           "current-epoch cached path crosses a disabled link");
        }
        at = link.other(at);
        if (h + 1 < e.hops && at != b && !router_.node_enabled(at)) {
          validation::fail(
              "RouteCache",
              "current-epoch cached path transits a disabled node");
        }
      }
      if (at != b) {
        validation::fail("RouteCache",
                         "cached path does not reach the canonical endpoint");
      }
    }
  }
}

RouteCacheStats RouteCache::stats() const {
  RouteCacheStats s;
  s.hits = hits_;
  s.misses = misses_;
  s.epoch_flushes = epoch_flushes_;
  s.entries = entries_.size();
  s.pool_bytes = pool_.size() * sizeof(LinkId) +
                 entries_.size() * sizeof(Entry) +
                 keys_.size() * (sizeof(std::uint64_t) + sizeof(std::uint32_t));
  return s;
}

}  // namespace netpp
