#include "netpp/topo/routing.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace netpp {

namespace {
constexpr auto kInf = std::numeric_limits<std::uint32_t>::max();
}  // namespace

std::vector<NodeId> Path::nodes(const Graph& g) const {
  std::vector<NodeId> out;
  out.reserve(links.size() + 1);
  out.push_back(src);
  NodeId at = src;
  for (LinkId lid : links) {
    at = g.link(lid).other(at);
    out.push_back(at);
  }
  return out;
}

Router::Router(const Graph& graph)
    : graph_(graph),
      node_enabled_(graph.num_nodes(), 1),
      link_enabled_(graph.num_links(), 1) {}

void Router::set_node_enabled(NodeId id, bool enabled) {
  auto& slot = node_enabled_.at(id);
  const std::uint8_t value = enabled ? 1 : 0;
  if (slot == value) return;
  slot = value;
  ++epoch_;
}

void Router::set_link_enabled(LinkId id, bool enabled) {
  auto& slot = link_enabled_.at(id);
  const std::uint8_t value = enabled ? 1 : 0;
  if (slot == value) return;
  slot = value;
  ++epoch_;
}

bool Router::bfs(NodeId src, NodeId dst, bool stop_at_dst) const {
  dist_.assign(graph_.num_nodes(), kInf);
  queue_.clear();
  dist_[src] = 0;
  queue_.push_back(src);
  std::size_t head = 0;
  std::uint32_t best = kInf;  // dist of dst once labeled
  while (head < queue_.size()) {
    const NodeId at = queue_[head++];
    // BFS pops in nondecreasing distance order; once the frontier reaches
    // dst's level, every node that could sit on a shortest path (distance
    // < best) is already fully labeled.
    if (dist_[at] >= best) break;
    if (at == dst) continue;  // no need to expand beyond the target
    for (const auto& adj : graph_.neighbors(at)) {
      if (!link_enabled_[adj.link]) continue;
      const NodeId next = adj.neighbor;
      if (next != dst && !node_enabled_[next]) continue;
      if (dist_[next] != kInf) continue;
      dist_[next] = dist_[at] + 1;
      if (next == dst) {
        best = dist_[next];
        if (stop_at_dst) return true;
      }
      queue_.push_back(next);
    }
  }
  return dist_[dst] != kInf;
}

std::optional<Path> Router::shortest_path(NodeId src, NodeId dst) const {
  if (src >= graph_.num_nodes() || dst >= graph_.num_nodes()) {
    throw std::out_of_range("routing endpoint does not exist");
  }
  if (src == dst) return Path{src, dst, {}};
  if (!bfs(src, dst, /*stop_at_dst=*/true)) return std::nullopt;

  // Greedy walkback from dst: at each node take the first neighbor (in
  // adjacency order) one level closer to src — exactly the first path the
  // shortest-path-DAG DFS would emit, without the DAG bookkeeping.
  Path path{src, dst, {}};
  path.links.reserve(dist_[dst]);
  NodeId at = dst;
  while (at != src) {
    for (const auto& adj : graph_.neighbors(at)) {
      if (!link_enabled_[adj.link]) continue;
      const NodeId prev = adj.neighbor;
      if (prev != src && !node_enabled_[prev]) continue;
      if (dist_[prev] == kInf || dist_[prev] + 1 != dist_[at]) continue;
      path.links.push_back(adj.link);
      at = prev;
      break;
    }
  }
  std::reverse(path.links.begin(), path.links.end());
  return path;
}

std::vector<Path> Router::ecmp_paths(NodeId src, NodeId dst,
                                     std::size_t max_paths) const {
  auto result = find_paths(src, dst, max_paths);
  if (result.status == RouteStatus::kInvalidEndpoint) {
    throw std::out_of_range("routing endpoint does not exist");
  }
  return std::move(result.paths);
}

RouteResult Router::find_paths(NodeId src, NodeId dst,
                               std::size_t max_paths) const {
  if (src >= graph_.num_nodes() || dst >= graph_.num_nodes()) {
    return RouteResult{RouteStatus::kInvalidEndpoint, {}};
  }
  if (src == dst) return RouteResult{RouteStatus::kOk, {Path{src, dst, {}}}};
  if (max_paths == 0) return RouteResult{RouteStatus::kOk, {}};

  // BFS from src recording hop distances; transit through disabled nodes or
  // links is forbidden, but src/dst themselves are always usable.
  if (!bfs(src, dst, /*stop_at_dst=*/false)) {
    return RouteResult{RouteStatus::kDisconnected, {}};
  }

  // Enumerate shortest paths by DFS along strictly-decreasing distances
  // from dst back to src; deterministic by adjacency order.
  std::vector<Path> out;
  stack_.clear();
  // Depth-first from dst towards src over predecessors.
  auto dfs = [&](auto&& self, NodeId at) -> void {
    if (out.size() >= max_paths) return;
    if (at == src) {
      Path p{src, dst, {}};
      p.links.assign(stack_.rbegin(), stack_.rend());
      out.push_back(std::move(p));
      return;
    }
    for (const auto& adj : graph_.neighbors(at)) {
      if (!link_enabled_[adj.link]) continue;
      const NodeId prev = adj.neighbor;
      if (prev != src && !node_enabled_[prev]) continue;
      if (dist_[prev] == kInf || dist_[prev] + 1 != dist_[at]) continue;
      stack_.push_back(adj.link);
      self(self, prev);
      stack_.pop_back();
      if (out.size() >= max_paths) return;
    }
  };
  dfs(dfs, dst);
  return RouteResult{RouteStatus::kOk, std::move(out)};
}

bool Router::connected(NodeId src, NodeId dst) const {
  if (src >= graph_.num_nodes() || dst >= graph_.num_nodes()) return false;
  if (src == dst) return true;
  return bfs(src, dst, /*stop_at_dst=*/true);
}

std::optional<Path> Router::ecmp_route(NodeId src, NodeId dst,
                                       std::uint64_t flow_id,
                                       std::size_t max_paths) const {
  auto paths = ecmp_paths(src, dst, max_paths);
  if (paths.empty()) return std::nullopt;
  const std::uint64_t h = ecmp_flow_hash(src, dst, flow_id);
  return std::move(paths[h % paths.size()]);
}

}  // namespace netpp
