#include "netpp/topo/routing.h"

#include <algorithm>
#include <deque>
#include <limits>
#include <stdexcept>

namespace netpp {

std::vector<NodeId> Path::nodes(const Graph& g) const {
  std::vector<NodeId> out;
  out.reserve(links.size() + 1);
  out.push_back(src);
  NodeId at = src;
  for (LinkId lid : links) {
    at = g.link(lid).other(at);
    out.push_back(at);
  }
  return out;
}

Router::Router(const Graph& graph)
    : graph_(graph),
      node_enabled_(graph.num_nodes(), true),
      link_enabled_(graph.num_links(), true) {}

void Router::set_node_enabled(NodeId id, bool enabled) {
  node_enabled_.at(id) = enabled;
}

void Router::set_link_enabled(LinkId id, bool enabled) {
  link_enabled_.at(id) = enabled;
}

std::optional<Path> Router::shortest_path(NodeId src, NodeId dst) const {
  auto paths = ecmp_paths(src, dst, 1);
  if (paths.empty()) return std::nullopt;
  return std::move(paths.front());
}

std::vector<Path> Router::ecmp_paths(NodeId src, NodeId dst,
                                     std::size_t max_paths) const {
  auto result = find_paths(src, dst, max_paths);
  if (result.status == RouteStatus::kInvalidEndpoint) {
    throw std::out_of_range("routing endpoint does not exist");
  }
  return std::move(result.paths);
}

RouteResult Router::find_paths(NodeId src, NodeId dst,
                               std::size_t max_paths) const {
  if (src >= graph_.num_nodes() || dst >= graph_.num_nodes()) {
    return RouteResult{RouteStatus::kInvalidEndpoint, {}};
  }
  if (src == dst) return RouteResult{RouteStatus::kOk, {Path{src, dst, {}}}};
  if (max_paths == 0) return RouteResult{RouteStatus::kOk, {}};

  // BFS from src recording hop distances; transit through disabled nodes or
  // links is forbidden, but src/dst themselves are always usable.
  constexpr auto kInf = std::numeric_limits<std::uint32_t>::max();
  std::vector<std::uint32_t> dist(graph_.num_nodes(), kInf);
  std::deque<NodeId> queue;
  dist[src] = 0;
  queue.push_back(src);
  while (!queue.empty()) {
    const NodeId at = queue.front();
    queue.pop_front();
    if (at == dst) continue;  // no need to expand beyond the target
    for (const auto& adj : graph_.neighbors(at)) {
      if (!link_enabled_[adj.link]) continue;
      const NodeId next = adj.neighbor;
      if (next != dst && !node_enabled_[next]) continue;
      if (dist[next] != kInf) continue;
      dist[next] = dist[at] + 1;
      queue.push_back(next);
    }
  }
  if (dist[dst] == kInf) return RouteResult{RouteStatus::kDisconnected, {}};

  // Enumerate shortest paths by DFS along strictly-decreasing distances
  // from dst back to src; deterministic by adjacency order.
  std::vector<Path> out;
  std::vector<LinkId> stack;
  // Depth-first from dst towards src over predecessors.
  auto dfs = [&](auto&& self, NodeId at) -> void {
    if (out.size() >= max_paths) return;
    if (at == src) {
      Path p{src, dst, {}};
      p.links.assign(stack.rbegin(), stack.rend());
      out.push_back(std::move(p));
      return;
    }
    for (const auto& adj : graph_.neighbors(at)) {
      if (!link_enabled_[adj.link]) continue;
      const NodeId prev = adj.neighbor;
      if (prev != src && !node_enabled_[prev]) continue;
      if (dist[prev] == kInf || dist[prev] + 1 != dist[at]) continue;
      stack.push_back(adj.link);
      self(self, prev);
      stack.pop_back();
      if (out.size() >= max_paths) return;
    }
  };
  dfs(dfs, dst);
  return RouteResult{RouteStatus::kOk, std::move(out)};
}

bool Router::connected(NodeId src, NodeId dst) const {
  return find_paths(src, dst, 1).ok();
}

std::optional<Path> Router::ecmp_route(NodeId src, NodeId dst,
                                       std::uint64_t flow_id) const {
  auto paths = ecmp_paths(src, dst);
  if (paths.empty()) return std::nullopt;
  // SplitMix-style avalanche over (src, dst, flow_id).
  std::uint64_t h = flow_id;
  h ^= (static_cast<std::uint64_t>(src) << 32) | dst;
  h += 0x9e3779b97f4a7c15ULL;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return std::move(paths[h % paths.size()]);
}

}  // namespace netpp
