#include "netpp/topo/builders.h"

#include <stdexcept>
#include <string>

namespace netpp {

BuiltTopology build_fat_tree(int k, Gbps host_speed, Gbps fabric_speed) {
  if (k < 2 || k % 2 != 0) {
    throw std::invalid_argument("fat-tree k must be even and >= 2");
  }
  BuiltTopology out;
  Graph& g = out.graph;
  const int half = k / 2;

  // Core switches: (k/2)^2, tier 3.
  std::vector<NodeId> core;
  core.reserve(half * half);
  for (int i = 0; i < half * half; ++i) {
    core.push_back(
        g.add_node(NodeKind::kSwitch, 3, "core-" + std::to_string(i)));
  }

  for (int pod = 0; pod < k; ++pod) {
    std::vector<NodeId> aggs, edges;
    for (int a = 0; a < half; ++a) {
      aggs.push_back(g.add_node(
          NodeKind::kSwitch, 2,
          "agg-" + std::to_string(pod) + "-" + std::to_string(a)));
    }
    for (int e = 0; e < half; ++e) {
      edges.push_back(g.add_node(
          NodeKind::kSwitch, 1,
          "edge-" + std::to_string(pod) + "-" + std::to_string(e)));
    }
    // Edge <-> agg: full bipartite within the pod.
    for (NodeId edge : edges) {
      for (NodeId agg : aggs) {
        g.add_link(edge, agg, fabric_speed, /*optical=*/true);
      }
    }
    // Agg <-> core: agg j connects to core group j.
    for (int a = 0; a < half; ++a) {
      for (int c = 0; c < half; ++c) {
        g.add_link(aggs[a], core[a * half + c], fabric_speed,
                   /*optical=*/true);
      }
    }
    // Hosts.
    for (int e = 0; e < half; ++e) {
      for (int h = 0; h < half; ++h) {
        const NodeId host = g.add_node(
            NodeKind::kHost, 0,
            "host-" + std::to_string(pod) + "-" + std::to_string(e) + "-" +
                std::to_string(h));
        g.add_link(edges[e], host, host_speed, /*optical=*/false);
        out.hosts.push_back(host);
      }
    }
  }

  for (const auto& node : g.nodes()) {
    if (node.kind == NodeKind::kSwitch) out.switches.push_back(node.id);
  }
  return out;
}

BuiltTopology build_fat_tree(int k, Gbps speed) {
  return build_fat_tree(k, speed, speed);
}

BuiltTopology build_leaf_spine(int leaves, int spines, int hosts_per_leaf,
                               Gbps host_speed, Gbps fabric_speed) {
  if (leaves < 1 || spines < 1 || hosts_per_leaf < 0) {
    throw std::invalid_argument("leaf-spine dimensions must be positive");
  }
  BuiltTopology out;
  Graph& g = out.graph;

  std::vector<NodeId> spine_ids, leaf_ids;
  for (int s = 0; s < spines; ++s) {
    spine_ids.push_back(
        g.add_node(NodeKind::kSwitch, 2, "spine-" + std::to_string(s)));
  }
  for (int l = 0; l < leaves; ++l) {
    leaf_ids.push_back(
        g.add_node(NodeKind::kSwitch, 1, "leaf-" + std::to_string(l)));
    for (NodeId spine : spine_ids) {
      g.add_link(leaf_ids.back(), spine, fabric_speed, /*optical=*/true);
    }
    for (int h = 0; h < hosts_per_leaf; ++h) {
      const NodeId host =
          g.add_node(NodeKind::kHost, 0,
                     "host-" + std::to_string(l) + "-" + std::to_string(h));
      g.add_link(leaf_ids[l], host, host_speed, /*optical=*/false);
      out.hosts.push_back(host);
    }
  }
  for (const auto& node : g.nodes()) {
    if (node.kind == NodeKind::kSwitch) out.switches.push_back(node.id);
  }
  return out;
}

BuiltTopology build_backbone_ring(int pops, int chords, Gbps link_speed) {
  if (pops < 3) throw std::invalid_argument("backbone needs >= 3 PoPs");
  if (chords < 0) throw std::invalid_argument("chords must be >= 0");
  BuiltTopology out;
  Graph& g = out.graph;

  std::vector<NodeId> routers;
  for (int i = 0; i < pops; ++i) {
    routers.push_back(
        g.add_node(NodeKind::kSwitch, 1, "pop-" + std::to_string(i)));
  }
  for (int i = 0; i < pops; ++i) {
    g.add_link(routers[i], routers[(i + 1) % pops], link_speed,
               /*optical=*/true);
  }
  // Deterministic chords: spread start points around the ring, each jumping
  // roughly half way (avoiding duplicates of ring edges).
  for (int c = 0; c < chords; ++c) {
    const int from = (c * pops) / std::max(chords, 1) % pops;
    const int to = (from + pops / 2) % pops;
    if (to != from && (to + 1) % pops != from && (from + 1) % pops != to) {
      g.add_link(routers[from], routers[to], link_speed, /*optical=*/true);
    }
  }
  // One access host per PoP.
  for (int i = 0; i < pops; ++i) {
    const NodeId host =
        g.add_node(NodeKind::kHost, 0, "access-" + std::to_string(i));
    g.add_link(routers[i], host, link_speed, /*optical=*/false);
    out.hosts.push_back(host);
  }
  out.switches = routers;
  return out;
}

}  // namespace netpp
