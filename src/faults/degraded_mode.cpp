#include "netpp/faults/degraded_mode.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "netpp/validation.h"

namespace netpp {

DegradedModeController::DegradedModeController(
    SimulatorBackend& backend, const BuiltTopology& topology,
    std::vector<TrafficDemand> demands, DegradedModeConfig config)
    : backend_(backend),
      topology_(topology),
      demands_(std::move(demands)),
      config_(config),
      failed_node_(topology.graph.num_nodes(), false),
      failed_link_(topology.graph.num_links(), false),
      desired_on_(topology.graph.num_nodes(), true),
      wake_pending_(topology.graph.num_nodes(), false),
      powered_count_(static_cast<double>(topology.switches.size()),
                     backend.now()) {
  if (!std::isfinite(config_.min_headroom) || config_.min_headroom < 0.0) {
    throw std::invalid_argument(
        "DegradedModeConfig: min_headroom must be finite and >= 0");
  }
  if (config_.wake_latency.value() < 0.0) {
    throw std::invalid_argument(
        "DegradedModeConfig: wake_latency must be non-negative");
  }
  for (const auto& d : demands_) d.validate(topology.graph);
}

std::vector<TrafficDemand> DegradedModeController::inflated_demands() const {
  std::vector<TrafficDemand> inflated = demands_;
  for (auto& d : inflated) d.rate *= 1.0 + config_.min_headroom;
  return inflated;
}

Router DegradedModeController::surviving_router() const {
  Router router{topology_.graph};
  for (NodeId n = 0; n < topology_.graph.num_nodes(); ++n) {
    if (failed_node_[n]) router.set_node_enabled(n, false);
  }
  for (LinkId l = 0; l < topology_.graph.num_links(); ++l) {
    if (failed_link_[l]) router.set_link_enabled(l, false);
  }
  return router;
}

Router DegradedModeController::live_router() const {
  Router router{topology_.graph};
  for (NodeId n = 0; n < topology_.graph.num_nodes(); ++n) {
    if (!backend_.node_enabled(n)) router.set_node_enabled(n, false);
  }
  for (LinkId l = 0; l < topology_.graph.num_links(); ++l) {
    if (!backend_.link_enabled(l)) router.set_link_enabled(l, false);
  }
  return router;
}

bool DegradedModeController::live_fabric_satisfiable() const {
  std::vector<double> factors;
  factors.reserve(topology_.graph.num_links());
  for (LinkId l = 0; l < topology_.graph.num_links(); ++l) {
    factors.push_back(backend_.link_capacity_factor(l));
  }
  return demands_satisfiable(live_router(), inflated_demands(),
                             config_.tailor, factors);
}

TailorResult DegradedModeController::tailor_initial() {
  const TailorResult tailored = tailor_topology_on(
      surviving_router(), topology_, inflated_demands(), config_.tailor);
  if (tailored.feasible) {
    for (NodeId sw : tailored.powered_off) park_now(sw);
  }
  note_power_change();
  return tailored;
}

FaultInjector::Listener DegradedModeController::listener() {
  return [this](const FaultSpec& fault, bool recovery) {
    on_event(fault, recovery);
  };
}

void DegradedModeController::on_event(const FaultSpec& fault, bool recovery) {
  // Track the failed-hardware sets first; everything else keys off them.
  switch (fault.kind) {
    case FaultKind::kSwitchDown:
      failed_node_[fault.node] = !recovery;
      break;
    case FaultKind::kLinkDown:
      failed_link_[fault.link] = !recovery;
      break;
    case FaultKind::kLinkDegraded:
      break;  // degraded links stay routable; capacity is in the simulator
  }

  if (config_.policy == DegradedPolicy::kNone) {
    note_power_change();
    return;
  }

  if (recovery) {
    if (fault.kind == FaultKind::kSwitchDown) {
      // The injector restored the switch's pre-fault enablement; reconcile
      // with what this controller wants now.
      const bool enabled = backend_.node_enabled(fault.node);
      if (!desired_on_[fault.node] && enabled) {
        backend_.set_node_enabled(fault.node, false);
      } else if (desired_on_[fault.node] && !enabled) {
        wake_later(fault.node);
      }
    }
    if (config_.retailor_on_recovery) retailor_and_apply();
    note_power_change();
    return;
  }

  // Failure: recall parked capacity only if the surviving powered fabric no
  // longer satisfies the (headroom-inflated) demands.
  if (!live_fabric_satisfiable()) {
    if (config_.policy == DegradedPolicy::kEmergencyWakeAll) {
      wake_all_parked();
    } else {
      retailor_and_apply();
    }
  }
  note_power_change();
}

void DegradedModeController::retailor_and_apply() {
  ++retailor_passes_;
  if (events_) {
    events_->instant("degraded_mode", "retailor", backend_.now());
  }
  const TailorResult tailored = tailor_topology_on(
      surviving_router(), topology_, inflated_demands(), config_.tailor);
  if (!tailored.feasible) {
    // The surviving fabric cannot satisfy the demands even fully powered:
    // wake everything we have (best effort).
    wake_all_parked();
    return;
  }
  for (NodeId sw : tailored.powered_off) {
    if (desired_on_[sw]) park_now(sw);
  }
  for (NodeId sw : tailored.powered_on) {
    if (!desired_on_[sw]) wake_later(sw);
  }
}

void DegradedModeController::wake_all_parked() {
  for (NodeId sw : topology_.switches) {
    if (!desired_on_[sw] && !failed_node_[sw]) wake_later(sw);
  }
}

void DegradedModeController::park_now(NodeId sw) {
  desired_on_[sw] = false;
  if (!failed_node_[sw] && backend_.node_enabled(sw)) {
    backend_.set_node_enabled(sw, false);
    note_power_change();
  }
}

void DegradedModeController::wake_later(NodeId sw) {
  desired_on_[sw] = true;
  if (failed_node_[sw] || wake_pending_[sw] || backend_.node_enabled(sw)) {
    return;
  }
  wake_pending_[sw] = true;
  ++emergency_wakes_;
  if (events_) {
    events_->instant("degraded_mode", "emergency_wake", backend_.now(),
                     "switch", static_cast<double>(sw));
  }
  const SimulatorBackend::ControlId event = backend_.schedule_control_after(
      config_.wake_latency, [this, sw] { complete_wake(sw); });
  pending_wakes_.push_back(PendingWake{sw, event});
}

void DegradedModeController::complete_wake(NodeId sw) {
  wake_pending_[sw] = false;
  for (std::size_t i = 0; i < pending_wakes_.size(); ++i) {
    if (pending_wakes_[i].sw == sw) {
      pending_wakes_.erase(pending_wakes_.begin() +
                           static_cast<std::ptrdiff_t>(i));
      break;
    }
  }
  // The wake may have been overtaken by a re-park decision or a failure
  // of the switch itself while it was booting.
  if (!desired_on_[sw] || failed_node_[sw]) return;
  if (!backend_.node_enabled(sw)) {
    backend_.set_node_enabled(sw, true);
    note_power_change();
  }
}

std::size_t DegradedModeController::powered_switches() const {
  std::size_t powered = 0;
  for (NodeId sw : topology_.switches) {
    if (backend_.node_enabled(sw)) ++powered;
  }
  return powered;
}

void DegradedModeController::note_power_change() {
  const double powered = static_cast<double>(powered_switches());
  powered_count_.set(backend_.now(), powered);
  powered_gauge_.set(powered);
}

double DegradedModeController::powered_switch_seconds(Seconds until) const {
  return powered_count_.integral(until);
}

namespace {

void put_bool_vec(state::SnapshotWriter& w, const std::vector<bool>& v) {
  w.put_u64(v.size());
  for (const bool b : v) w.put_bool(b);
}

void get_bool_vec(state::SnapshotReader& r, std::vector<bool>& v,
                  std::size_t expected, const char* what) {
  if (static_cast<std::size_t>(r.get_u64()) != expected) {
    validation::fail("DegradedModeController",
                     std::string("snapshot ") + what +
                         " mask does not match the topology");
  }
  v.assign(expected, false);
  for (std::size_t i = 0; i < expected; ++i) v[i] = r.get_bool();
}

}  // namespace

void DegradedModeController::save_state(state::SnapshotWriter& w) const {
  w.begin_section("degraded_mode");
  put_bool_vec(w, failed_node_);
  put_bool_vec(w, failed_link_);
  put_bool_vec(w, desired_on_);
  put_bool_vec(w, wake_pending_);
  w.put_u64(pending_wakes_.size());
  for (const PendingWake& p : pending_wakes_) {
    w.put_u32(p.sw);
    w.put_f64(backend_.control_time(p.event).value());
    w.put_u64(backend_.control_seq(p.event));
  }
  w.put_f64(powered_count_.start().value());
  w.put_f64(powered_count_.last_change().value());
  w.put_f64(powered_count_.current());
  w.put_f64(powered_count_.accumulated());
  w.put_u64(emergency_wakes_);
  w.put_u64(retailor_passes_);
  w.end_section();
}

void DegradedModeController::restore_state(state::SnapshotReader& r) {
  r.open_section("degraded_mode");
  const std::size_t num_nodes = topology_.graph.num_nodes();
  get_bool_vec(r, failed_node_, num_nodes, "failed-node");
  get_bool_vec(r, failed_link_, topology_.graph.num_links(), "failed-link");
  get_bool_vec(r, desired_on_, num_nodes, "desired-power");
  get_bool_vec(r, wake_pending_, num_nodes, "wake-pending");
  const auto num_wakes = static_cast<std::size_t>(r.get_u64());
  pending_wakes_.clear();
  pending_wakes_.reserve(num_wakes);
  for (std::size_t i = 0; i < num_wakes; ++i) {
    const NodeId sw = r.get_u32();
    if (sw >= num_nodes || !wake_pending_[sw]) {
      validation::fail("DegradedModeController",
                       "snapshot wake event lacks a matching pending flag");
    }
    const Seconds at{r.get_f64()};
    const std::uint64_t seq = r.get_u64();
    const SimulatorBackend::ControlId event =
        backend_.restore_control_at(at, seq, [this, sw] { complete_wake(sw); });
    pending_wakes_.push_back(PendingWake{sw, event});
  }
  const double start = r.get_f64();
  const double last = r.get_f64();
  const double value = r.get_f64();
  const double integral = r.get_f64();
  powered_count_.restore(Seconds{start}, Seconds{last}, value, integral);
  emergency_wakes_ = static_cast<std::size_t>(r.get_u64());
  retailor_passes_ = static_cast<std::size_t>(r.get_u64());
  r.close_section();
  check_invariants();
}

void DegradedModeController::check_invariants() const {
  std::size_t flagged = 0;
  for (const bool pending : wake_pending_) {
    if (pending) ++flagged;
  }
  validation::require(
      flagged == pending_wakes_.size(), "DegradedModeController",
      "every pending wake flag must pair with exactly one scheduled wake");
  for (const PendingWake& p : pending_wakes_) {
    validation::require(p.sw < wake_pending_.size() && wake_pending_[p.sw],
                        "DegradedModeController",
                        "scheduled wakes must reference pending switches");
  }
  const double powered = static_cast<double>(powered_switches());
  validation::require(
      powered_count_.current() == powered, "DegradedModeController",
      "the powered-count integrator must track the live enablement");
}

}  // namespace netpp
