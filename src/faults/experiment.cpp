#include "netpp/faults/experiment.h"

#include "netpp/sim/engine.h"
#include "netpp/topo/routing.h"

namespace netpp {

FaultExperimentResult run_fault_experiment(
    const BuiltTopology& topology, const std::vector<FlowSpec>& workload,
    const FaultSchedule& schedule, const FaultExperimentConfig& config) {
  SimEngine engine;
  Router router{topology.graph};
  FlowSimulator::Config sim_config = config.sim;
  sim_config.strand_unroutable = true;
  sim_config.telemetry = config.telemetry;
  FlowSimulator sim{topology.graph, router, engine, sim_config};

  DegradedModeController controller{sim, topology, config.demands,
                                    config.degraded};
  FaultInjector injector{sim, schedule};
  injector.set_listener(controller.listener());

  telemetry::Telemetry* tel = config.telemetry;
  if (tel != nullptr) {
    injector.set_event_log(&tel->events());
    controller.set_event_log(&tel->events());
    controller.set_powered_gauge(
        tel->metrics().gauge("faults.powered_switches"));
    if (tel->sampler().enabled()) {
      telemetry::TimeSeriesSampler& sampler = tel->sampler();
      sampler.track("netsim.active_flows");
      sampler.track("netsim.stranded_flows");
      sampler.track("netsim.mean_link_utilization");
      sampler.track("faults.powered_switches");
      sampler.track("faults.fabric_watts");
      // The expensive gauges (O(links) utilization scan) are refreshed only
      // when a row is actually due, then the row is taken. Sampling rides on
      // reallocation events, so it never extends the event horizon.
      sim.set_load_listener([&sim, &controller, tel,
                             switch_power = config.switch_power](Seconds now) {
        telemetry::TimeSeriesSampler& s = tel->sampler();
        if (!s.due(now)) return;
        telemetry::MetricRegistry& m = tel->metrics();
        m.gauge("netsim.mean_link_utilization")
            .set(sim.current_mean_utilization());
        const double powered =
            static_cast<double>(controller.powered_switches());
        m.gauge("faults.powered_switches").set(powered);
        m.gauge("faults.fabric_watts").set(powered * switch_power.value());
        s.sample(now);
      });
    }
  }

  FaultExperimentResult result;
  if (config.tailor) result.tailoring = controller.tailor_initial();
  injector.arm();
  for (const FlowSpec& spec : workload) sim.submit(spec);
  engine.run();

  const Seconds end = engine.now();
  result.realloc = sim.realloc_stats();
  result.emergency_wakes = controller.emergency_wakes();
  result.retailor_passes = controller.retailor_passes();
  result.powered_at_end = controller.powered_switches();
  result.end = end;
  result.fct = sim.fct_stats();

  ResilienceInput input;
  input.flows_submitted = workload.size();
  input.flows_completed = sim.completed().size();
  input.flows_stranded_at_end = sim.stranded_flows();
  input.faults_injected = injector.faults_applied();
  input.flows_rerouted = sim.realloc_stats().reroutes;
  input.strand_events = sim.realloc_stats().stranded;
  input.stranded_bit_seconds = sim.stranded_bit_seconds(end);
  for (const FlowRecord& record : sim.completed()) {
    input.flow_seconds += record.fct().value();
  }
  input.strand_durations = sim.strand_durations();
  input.powered_switch_seconds = controller.powered_switch_seconds(end);
  input.all_on_switch_seconds =
      static_cast<double>(topology.switches.size()) * end.value();
  input.switch_power = config.switch_power;
  input.duration = end;
  result.report = build_resilience_report(input);

  if (tel != nullptr) {
    sim.flush_metrics();
    telemetry::MetricRegistry& m = tel->metrics();
    m.counter("faults.injected").set(injector.faults_applied());
    m.counter("faults.emergency_wakes").set(result.emergency_wakes);
    m.counter("faults.retailor_passes").set(result.retailor_passes);
    m.gauge("faults.powered_switches")
        .set(static_cast<double>(result.powered_at_end));
    m.gauge("faults.fabric_watts")
        .set(static_cast<double>(result.powered_at_end) *
             config.switch_power.value());
    m.gauge("faults.powered_switch_seconds")
        .set(input.powered_switch_seconds);
    m.gauge("faults.all_on_switch_seconds").set(input.all_on_switch_seconds);
    m.gauge("faults.energy_vs_baseline")
        .set(input.all_on_switch_seconds > 0.0
                 ? input.powered_switch_seconds / input.all_on_switch_seconds
                 : 1.0);
    m.gauge("faults.stranded_bit_seconds").set(input.stranded_bit_seconds);
  }
  return result;
}

}  // namespace netpp
