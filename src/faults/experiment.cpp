#include "netpp/faults/experiment.h"

#include <cstdint>

#include "netpp/sim/engine.h"
#include "netpp/topo/routing.h"
#include "netpp/validation.h"

namespace netpp {

namespace {

FlowSimulator::Config effective_sim_config(
    const FaultExperimentConfig& config) {
  FlowSimulator::Config sim_config = config.sim;
  sim_config.strand_unroutable = true;
  // The sharded backend's per-shard simulators keep private registries (the
  // backend merges them in sim_metrics()); only the single backend writes
  // its netsim.* metrics straight into the experiment bundle.
  sim_config.telemetry =
      config.backend.kind == BackendKind::kSingle ? config.telemetry : nullptr;
  return sim_config;
}

}  // namespace

FaultExperimentRun::FaultExperimentRun(const BuiltTopology& topology,
                                       const std::vector<FlowSpec>& workload,
                                       const FaultSchedule& schedule,
                                       const FaultExperimentConfig& config,
                                       bool fresh)
    : topology_(topology),
      config_(config),
      flows_submitted_(workload.size()),
      backend_(make_backend(topology.graph, config.backend,
                            effective_sim_config(config))),
      controller_(*backend_, topology, config.demands, config.degraded),
      injector_(*backend_, schedule) {
  injector_.set_listener(controller_.listener());
  wire_telemetry();
  if (fresh) {
    if (config_.tailor) tailoring_ = controller_.tailor_initial();
    injector_.arm();
    for (const FlowSpec& spec : workload) backend_->submit(spec);
  }
}

FaultExperimentRun::FaultExperimentRun(const BuiltTopology& topology,
                                       const std::vector<FlowSpec>& workload,
                                       const FaultSchedule& schedule,
                                       const FaultExperimentConfig& config)
    : FaultExperimentRun(topology, workload, schedule, config,
                         /*fresh=*/true) {}

FaultExperimentRun::FaultExperimentRun(const BuiltTopology& topology,
                                       const std::vector<FlowSpec>& workload,
                                       const FaultSchedule& schedule,
                                       const FaultExperimentConfig& config,
                                       state::SnapshotReader& r)
    : FaultExperimentRun(topology, workload, schedule, config,
                         /*fresh=*/false) {
  r.open_section("fault_experiment");
  if (r.get_bool() != config_.tailor) {
    validation::fail("FaultExperimentRun",
                     "snapshot tailoring mode does not match the config");
  }
  if (static_cast<BackendKind>(r.get_u8()) != config_.backend.kind ||
      static_cast<std::size_t>(r.get_u64()) != config_.backend.num_shards) {
    validation::fail("FaultExperimentRun",
                     "snapshot backend does not match the config");
  }
  if (static_cast<std::size_t>(r.get_u64()) != flows_submitted_) {
    validation::fail("FaultExperimentRun",
                     "snapshot workload size does not match");
  }
  const bool has_telemetry = r.get_bool();
  if (has_telemetry != (config_.telemetry != nullptr)) {
    validation::fail("FaultExperimentRun",
                     "snapshot telemetry attachment does not match");
  }
  const bool has_sampler = r.get_bool();
  const bool live_sampler =
      config_.telemetry != nullptr && config_.telemetry->sampler().enabled();
  if (has_sampler != live_sampler) {
    validation::fail("FaultExperimentRun",
                     "snapshot sampler attachment does not match");
  }
  const Seconds now{r.get_f64()};
  const std::uint64_t next_seq = r.get_u64();
  tailoring_.feasible = r.get_bool();
  tailoring_.switches_off_fraction = r.get_f64();
  tailoring_.powered_on = r.get_u32_vec();
  tailoring_.powered_off = r.get_u32_vec();
  r.close_section();

  // Clock first: every component re-registers its pending control events
  // against the restored (now, next_seq) bounds.
  backend_->restore_clock(now, next_seq);
  backend_->restore_sim(r);
  injector_.restore_state(r);
  controller_.restore_state(r);
  if (config_.telemetry != nullptr) {
    config_.telemetry->metrics().restore_state(r);
    if (has_sampler) config_.telemetry->sampler().restore_state(r);
  }
  check_invariants();
}

void FaultExperimentRun::save_state(state::SnapshotWriter& w) const {
  const bool has_sampler =
      config_.telemetry != nullptr && config_.telemetry->sampler().enabled();
  w.begin_section("fault_experiment");
  w.put_bool(config_.tailor);
  w.put_u8(static_cast<std::uint8_t>(config_.backend.kind));
  w.put_u64(config_.backend.num_shards);
  w.put_u64(flows_submitted_);
  w.put_bool(config_.telemetry != nullptr);
  w.put_bool(has_sampler);
  w.put_f64(backend_->now().value());
  w.put_u64(backend_->control_next_seq());
  w.put_bool(tailoring_.feasible);
  w.put_f64(tailoring_.switches_off_fraction);
  w.put_u32_vec(tailoring_.powered_on);
  w.put_u32_vec(tailoring_.powered_off);
  w.end_section();
  backend_->save_sim(w);
  injector_.save_state(w);
  controller_.save_state(w);
  if (config_.telemetry != nullptr) {
    config_.telemetry->metrics().save_state(w);
    if (has_sampler) config_.telemetry->sampler().save_state(w);
  }
}

void FaultExperimentRun::check_invariants() const {
  backend_->check_invariants();
  controller_.check_invariants();
}

void FaultExperimentRun::wire_telemetry() {
  telemetry::Telemetry* tel = config_.telemetry;
  if (tel == nullptr) return;
  injector_.set_event_log(&tel->events());
  controller_.set_event_log(&tel->events());
  controller_.set_powered_gauge(
      tel->metrics().gauge("faults.powered_switches"));
  if (tel->sampler().enabled()) {
    telemetry::TimeSeriesSampler& sampler = tel->sampler();
    sampler.track("netsim.active_flows");
    sampler.track("netsim.stranded_flows");
    sampler.track("netsim.mean_link_utilization");
    sampler.track("faults.powered_switches");
    sampler.track("faults.fabric_watts");
    // The expensive gauges (O(links) utilization scan) are refreshed only
    // when a row is actually due, then the row is taken. Sampling rides on
    // reallocation events, so it never extends the event horizon.
    backend_->set_load_listener(
        [this, tel, switch_power = config_.switch_power](Seconds now) {
          telemetry::TimeSeriesSampler& s = tel->sampler();
          if (!s.due(now)) return;
          telemetry::MetricRegistry& m = tel->metrics();
          m.gauge("netsim.mean_link_utilization")
              .set(backend_->current_mean_utilization());
          const double powered =
              static_cast<double>(controller_.powered_switches());
          m.gauge("faults.powered_switches").set(powered);
          m.gauge("faults.fabric_watts").set(powered * switch_power.value());
          s.sample(now);
        });
  }
}

FaultExperimentResult FaultExperimentRun::finish() {
  const Seconds end = backend_->now();
  FaultExperimentResult result;
  result.tailoring = tailoring_;
  result.realloc = backend_->realloc_stats();
  result.emergency_wakes = controller_.emergency_wakes();
  result.retailor_passes = controller_.retailor_passes();
  result.powered_at_end = controller_.powered_switches();
  result.end = end;
  result.fct = backend_->fct_stats();

  ResilienceInput input;
  input.flows_submitted = flows_submitted_;
  input.flows_completed = backend_->completed().size();
  input.flows_stranded_at_end = backend_->stranded_flows();
  input.faults_injected = injector_.faults_applied();
  input.flows_rerouted = backend_->realloc_stats().reroutes;
  input.strand_events = backend_->realloc_stats().stranded;
  input.stranded_bit_seconds = backend_->stranded_bit_seconds(end);
  for (const FlowRecord& record : backend_->completed()) {
    input.flow_seconds += record.fct().value();
  }
  input.strand_durations = backend_->strand_durations();
  input.powered_switch_seconds = controller_.powered_switch_seconds(end);
  input.all_on_switch_seconds =
      static_cast<double>(topology_.switches.size()) * end.value();
  input.switch_power = config_.switch_power;
  input.duration = end;
  result.report = build_resilience_report(input);

  telemetry::Telemetry* tel = config_.telemetry;
  if (tel != nullptr) {
    backend_->flush_metrics();
    telemetry::MetricRegistry& m = tel->metrics();
    m.counter("faults.injected").set(injector_.faults_applied());
    m.counter("faults.emergency_wakes").set(result.emergency_wakes);
    m.counter("faults.retailor_passes").set(result.retailor_passes);
    m.gauge("faults.powered_switches")
        .set(static_cast<double>(result.powered_at_end));
    m.gauge("faults.fabric_watts")
        .set(static_cast<double>(result.powered_at_end) *
             config_.switch_power.value());
    m.gauge("faults.powered_switch_seconds")
        .set(input.powered_switch_seconds);
    m.gauge("faults.all_on_switch_seconds").set(input.all_on_switch_seconds);
    m.gauge("faults.energy_vs_baseline")
        .set(input.all_on_switch_seconds > 0.0
                 ? input.powered_switch_seconds / input.all_on_switch_seconds
                 : 1.0);
    m.gauge("faults.stranded_bit_seconds").set(input.stranded_bit_seconds);
  }
  return result;
}

FaultExperimentResult run_fault_experiment(
    const BuiltTopology& topology, const std::vector<FlowSpec>& workload,
    const FaultSchedule& schedule, const FaultExperimentConfig& config) {
  FaultExperimentRun run{topology, workload, schedule, config};
  run.run();
  return run.finish();
}

}  // namespace netpp
