#include "netpp/faults/experiment.h"

#include "netpp/sim/engine.h"
#include "netpp/topo/routing.h"

namespace netpp {

FaultExperimentResult run_fault_experiment(
    const BuiltTopology& topology, const std::vector<FlowSpec>& workload,
    const FaultSchedule& schedule, const FaultExperimentConfig& config) {
  SimEngine engine;
  Router router{topology.graph};
  FlowSimulator::Config sim_config = config.sim;
  sim_config.strand_unroutable = true;
  FlowSimulator sim{topology.graph, router, engine, sim_config};

  DegradedModeController controller{sim, topology, config.demands,
                                    config.degraded};
  FaultInjector injector{sim, schedule};
  injector.set_listener(controller.listener());

  FaultExperimentResult result;
  if (config.tailor) result.tailoring = controller.tailor_initial();
  injector.arm();
  for (const FlowSpec& spec : workload) sim.submit(spec);
  engine.run();

  const Seconds end = engine.now();
  result.realloc = sim.realloc_stats();
  result.emergency_wakes = controller.emergency_wakes();
  result.retailor_passes = controller.retailor_passes();
  result.powered_at_end = controller.powered_switches();
  result.end = end;
  result.fct = sim.fct_stats();

  ResilienceInput input;
  input.flows_submitted = workload.size();
  input.flows_completed = sim.completed().size();
  input.flows_stranded_at_end = sim.stranded_flows();
  input.faults_injected = injector.faults_applied();
  input.flows_rerouted = sim.realloc_stats().reroutes;
  input.strand_events = sim.realloc_stats().stranded;
  input.stranded_bit_seconds = sim.stranded_bit_seconds(end);
  for (const FlowRecord& record : sim.completed()) {
    input.flow_seconds += record.fct().value();
  }
  input.strand_durations = sim.strand_durations();
  input.powered_switch_seconds = controller.powered_switch_seconds(end);
  input.all_on_switch_seconds =
      static_cast<double>(topology.switches.size()) * end.value();
  input.switch_power = config.switch_power;
  input.duration = end;
  result.report = build_resilience_report(input);
  return result;
}

}  // namespace netpp
