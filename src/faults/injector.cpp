#include "netpp/faults/injector.h"

#include <stdexcept>

#include "netpp/validation.h"

namespace netpp {

namespace {

const char* fault_event_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kSwitchDown:
      return "fault.switch_down";
    case FaultKind::kLinkDown:
      return "fault.link_down";
    case FaultKind::kLinkDegraded:
      return "fault.link_degraded";
  }
  return "fault";
}

}  // namespace

FaultInjector::FaultInjector(SimulatorBackend& backend, FaultSchedule schedule)
    : backend_(backend), schedule_(std::move(schedule)) {
  schedule_.validate(backend_.graph());
  was_enabled_.assign(schedule_.faults.size(), true);
  prior_factor_.assign(schedule_.faults.size(), 1.0);
}

void FaultInjector::arm() {
  if (armed_) throw std::logic_error("FaultInjector: already armed");
  armed_ = true;
  scheduled_.resize(schedule_.faults.size());
  for (std::size_t i = 0; i < schedule_.faults.size(); ++i) {
    scheduled_[i].apply_event = backend_.schedule_control_at(
        schedule_.faults[i].at, [this, i] { apply(i); });
    scheduled_[i].repair_event = backend_.schedule_control_at(
        schedule_.faults[i].recover_at, [this, i] { repair(i); });
  }
}

void FaultInjector::apply(std::size_t index) {
  scheduled_[index].applied = true;
  const FaultSpec& f = schedule_.faults[index];
  if (events_) {
    const bool on_node = f.kind == FaultKind::kSwitchDown;
    events_->begin_span(
        "faults", fault_event_name(f.kind), backend_.now(), index,
        on_node ? "node" : "link",
        static_cast<double>(on_node ? f.node : f.link));
  }
  const auto before = backend_.realloc_stats();
  switch (f.kind) {
    case FaultKind::kSwitchDown:
      was_enabled_[index] = backend_.node_enabled(f.node);
      backend_.set_node_enabled(f.node, false);
      break;
    case FaultKind::kLinkDown:
      was_enabled_[index] = backend_.link_enabled(f.link);
      backend_.set_link_enabled(f.link, false);
      break;
    case FaultKind::kLinkDegraded:
      prior_factor_[index] = backend_.link_capacity_factor(f.link);
      backend_.set_link_capacity_factor(
          f.link, f.capacity_factor * prior_factor_[index]);
      break;
  }
  const auto after = backend_.realloc_stats();
  Outcome outcome;
  outcome.spec = f;
  outcome.flows_rerouted = after.reroutes - before.reroutes;
  outcome.flows_stranded = after.stranded - before.stranded;
  log_.push_back(outcome);
  if (listener_) listener_(f, /*recovery=*/false);
}

void FaultInjector::repair(std::size_t index) {
  scheduled_[index].repaired = true;
  const FaultSpec& f = schedule_.faults[index];
  if (events_) {
    events_->end_span("faults", fault_event_name(f.kind), backend_.now(),
                      index);
  }
  switch (f.kind) {
    case FaultKind::kSwitchDown:
      // Restore the pre-fault state: a parked switch stays parked.
      backend_.set_node_enabled(f.node, was_enabled_[index]);
      break;
    case FaultKind::kLinkDown:
      backend_.set_link_enabled(f.link, was_enabled_[index]);
      break;
    case FaultKind::kLinkDegraded:
      backend_.set_link_capacity_factor(f.link, prior_factor_[index]);
      break;
  }
  if (listener_) listener_(f, /*recovery=*/true);
}

void FaultInjector::save_state(state::SnapshotWriter& w) const {
  if (!armed_) {
    throw std::logic_error("FaultInjector: save_state before arm()");
  }
  w.begin_section("fault_injector");
  w.put_u64(schedule_.faults.size());
  for (std::size_t i = 0; i < schedule_.faults.size(); ++i) {
    const Scheduled& s = scheduled_[i];
    w.put_bool(s.applied);
    w.put_bool(s.repaired);
    if (!s.applied) {
      w.put_f64(backend_.control_time(s.apply_event).value());
      w.put_u64(backend_.control_seq(s.apply_event));
    }
    if (!s.repaired) {
      w.put_f64(backend_.control_time(s.repair_event).value());
      w.put_u64(backend_.control_seq(s.repair_event));
    }
    w.put_bool(was_enabled_[i]);
    w.put_f64(prior_factor_[i]);
  }
  w.put_u64(log_.size());
  for (const Outcome& o : log_) {
    w.put_u8(static_cast<std::uint8_t>(o.spec.kind));
    w.put_u32(o.spec.node);
    w.put_u32(o.spec.link);
    w.put_f64(o.spec.at.value());
    w.put_f64(o.spec.recover_at.value());
    w.put_f64(o.spec.capacity_factor);
    w.put_u64(o.flows_rerouted);
    w.put_u64(o.flows_stranded);
  }
  w.end_section();
}

void FaultInjector::restore_state(state::SnapshotReader& r) {
  validation::require(!armed_, "FaultInjector",
                      "restore must target a freshly constructed injector");
  r.open_section("fault_injector");
  if (static_cast<std::size_t>(r.get_u64()) != schedule_.faults.size()) {
    validation::fail("FaultInjector",
                     "snapshot fault count does not match the schedule");
  }
  scheduled_.assign(schedule_.faults.size(), Scheduled{});
  for (std::size_t i = 0; i < schedule_.faults.size(); ++i) {
    Scheduled& s = scheduled_[i];
    s.applied = r.get_bool();
    s.repaired = r.get_bool();
    if (s.repaired && !s.applied) {
      validation::fail("FaultInjector",
                       "snapshot marks a fault repaired before it applied");
    }
    if (!s.applied) {
      const Seconds at{r.get_f64()};
      const std::uint64_t seq = r.get_u64();
      s.apply_event =
          backend_.restore_control_at(at, seq, [this, i] { apply(i); });
    }
    if (!s.repaired) {
      const Seconds at{r.get_f64()};
      const std::uint64_t seq = r.get_u64();
      s.repair_event =
          backend_.restore_control_at(at, seq, [this, i] { repair(i); });
    }
    was_enabled_[i] = r.get_bool();
    prior_factor_[i] = r.get_f64();
  }
  const auto num_log = static_cast<std::size_t>(r.get_u64());
  std::size_t applied_count = 0;
  for (const Scheduled& s : scheduled_) {
    if (s.applied) ++applied_count;
  }
  if (num_log != applied_count) {
    validation::fail("FaultInjector",
                     "snapshot log length must match the applied faults");
  }
  log_.clear();
  log_.reserve(num_log);
  for (std::size_t i = 0; i < num_log; ++i) {
    Outcome o;
    const std::uint8_t kind = r.get_u8();
    if (kind > static_cast<std::uint8_t>(FaultKind::kLinkDegraded)) {
      validation::fail("FaultInjector", "snapshot holds an invalid fault kind");
    }
    o.spec.kind = static_cast<FaultKind>(kind);
    o.spec.node = r.get_u32();
    o.spec.link = r.get_u32();
    o.spec.at = Seconds{r.get_f64()};
    o.spec.recover_at = Seconds{r.get_f64()};
    o.spec.capacity_factor = r.get_f64();
    o.flows_rerouted = r.get_u64();
    o.flows_stranded = r.get_u64();
    log_.push_back(o);
  }
  r.close_section();
  armed_ = true;
}

}  // namespace netpp
