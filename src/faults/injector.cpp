#include "netpp/faults/injector.h"

#include <stdexcept>

namespace netpp {

namespace {

const char* fault_event_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kSwitchDown:
      return "fault.switch_down";
    case FaultKind::kLinkDown:
      return "fault.link_down";
    case FaultKind::kLinkDegraded:
      return "fault.link_degraded";
  }
  return "fault";
}

}  // namespace

FaultInjector::FaultInjector(FlowSimulator& sim, FaultSchedule schedule)
    : sim_(sim), schedule_(std::move(schedule)) {
  schedule_.validate(sim_.graph());
  was_enabled_.assign(schedule_.faults.size(), true);
  prior_factor_.assign(schedule_.faults.size(), 1.0);
}

void FaultInjector::arm() {
  if (armed_) throw std::logic_error("FaultInjector: already armed");
  armed_ = true;
  SimEngine& engine = sim_.engine();
  for (std::size_t i = 0; i < schedule_.faults.size(); ++i) {
    engine.schedule_at(schedule_.faults[i].at, [this, i] { apply(i); });
    engine.schedule_at(schedule_.faults[i].recover_at,
                       [this, i] { repair(i); });
  }
}

void FaultInjector::apply(std::size_t index) {
  const FaultSpec& f = schedule_.faults[index];
  if (events_) {
    const bool on_node = f.kind == FaultKind::kSwitchDown;
    events_->begin_span(
        "faults", fault_event_name(f.kind), sim_.engine().now(), index,
        on_node ? "node" : "link",
        static_cast<double>(on_node ? f.node : f.link));
  }
  const auto before = sim_.realloc_stats();
  switch (f.kind) {
    case FaultKind::kSwitchDown:
      was_enabled_[index] = sim_.router().node_enabled(f.node);
      sim_.set_node_enabled(f.node, false);
      break;
    case FaultKind::kLinkDown:
      was_enabled_[index] = sim_.router().link_enabled(f.link);
      sim_.set_link_enabled(f.link, false);
      break;
    case FaultKind::kLinkDegraded:
      prior_factor_[index] = sim_.link_capacity_factor(f.link);
      sim_.set_link_capacity_factor(
          f.link, f.capacity_factor * prior_factor_[index]);
      break;
  }
  const auto after = sim_.realloc_stats();
  Outcome outcome;
  outcome.spec = f;
  outcome.flows_rerouted = after.reroutes - before.reroutes;
  outcome.flows_stranded = after.stranded - before.stranded;
  log_.push_back(outcome);
  if (listener_) listener_(f, /*recovery=*/false);
}

void FaultInjector::repair(std::size_t index) {
  const FaultSpec& f = schedule_.faults[index];
  if (events_) {
    events_->end_span("faults", fault_event_name(f.kind), sim_.engine().now(),
                      index);
  }
  switch (f.kind) {
    case FaultKind::kSwitchDown:
      // Restore the pre-fault state: a parked switch stays parked.
      sim_.set_node_enabled(f.node, was_enabled_[index]);
      break;
    case FaultKind::kLinkDown:
      sim_.set_link_enabled(f.link, was_enabled_[index]);
      break;
    case FaultKind::kLinkDegraded:
      sim_.set_link_capacity_factor(f.link, prior_factor_[index]);
      break;
  }
  if (listener_) listener_(f, /*recovery=*/true);
}

}  // namespace netpp
