#include "netpp/analysis/resilience.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace netpp {

double sample_quantile(std::vector<double> values, double q) {
  if (!std::isfinite(q) || q < 0.0 || q > 1.0) {
    throw std::invalid_argument("sample_quantile: q must be in [0, 1]");
  }
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

ResilienceReport build_resilience_report(const ResilienceInput& input) {
  ResilienceReport report;
  report.faults_injected = input.faults_injected;
  report.flows_rerouted = input.flows_rerouted;
  report.strand_events = input.strand_events;

  // Availability: progress-capable fraction of flow-lifetime. Stranded time
  // is the sum of strand durations (each resume recorded one) — weight by
  // count, not bits, so it matches the flow_seconds denominator.
  double stranded_seconds = 0.0;
  for (double d : input.strand_durations) stranded_seconds += d;
  if (input.flow_seconds > 0.0) {
    report.availability =
        std::clamp(1.0 - stranded_seconds / input.flow_seconds, 0.0, 1.0);
  }

  report.stranded_demand_gbit_seconds = input.stranded_bit_seconds / 1e9;

  if (!input.strand_durations.empty()) {
    report.mean_recovery = Seconds{
        stranded_seconds / static_cast<double>(input.strand_durations.size())};
    report.p99_recovery = Seconds{sample_quantile(input.strand_durations, 0.99)};
  }

  if (input.flows_submitted > 0) {
    report.completion_rate = static_cast<double>(input.flows_completed) /
                             static_cast<double>(input.flows_submitted);
  }

  report.energy = Joules{input.powered_switch_seconds *
                         input.switch_power.value()};
  report.all_on_energy = Joules{input.all_on_switch_seconds *
                                input.switch_power.value()};
  if (report.all_on_energy.value() > 0.0) {
    report.energy_delta =
        report.energy.value() / report.all_on_energy.value() - 1.0;
  }
  return report;
}

}  // namespace netpp
