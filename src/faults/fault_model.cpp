#include "netpp/faults/fault_model.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "netpp/sim/random.h"
#include "netpp/validation.h"

namespace netpp {

void FaultSchedule::validate(const Graph& graph) const {
  constexpr const char* kType = "FaultSchedule";
  for (std::size_t i = 0; i < faults.size(); ++i) {
    const FaultSpec& f = faults[i];
    validation::require(i == 0 || f.at >= faults[i - 1].at, kType,
                        "faults must be sorted by failure time");
    validation::require_finite_non_negative(
        f.at.value(), kType, "failure time must be finite and non-negative");
    validation::require(
        std::isfinite(f.recover_at.value()) && f.recover_at > f.at, kType,
        "recovery must be finite and after the failure");
    switch (f.kind) {
      case FaultKind::kSwitchDown:
        if (f.node >= graph.num_nodes()) {
          throw std::out_of_range(
              "FaultSchedule: failed switch does not exist");
        }
        validation::require(graph.node(f.node).kind != NodeKind::kHost, kType,
                            "hosts cannot fail (they are endpoints)");
        break;
      case FaultKind::kLinkDown:
      case FaultKind::kLinkDegraded:
        if (f.link >= graph.num_links()) {
          throw std::out_of_range(
              "FaultSchedule: failed link does not exist");
        }
        if (f.kind == FaultKind::kLinkDegraded) {
          validation::require(std::isfinite(f.capacity_factor) &&
                                  f.capacity_factor > 0.0 &&
                                  f.capacity_factor < 1.0,
                              kType,
                              "degraded capacity factor must be in (0, 1)");
        }
        break;
    }
  }
}

namespace {

/// SplitMix64-style mix of (seed, class tag, device id) into a stream seed.
std::uint64_t device_seed(std::uint64_t seed, std::uint64_t tag,
                          std::uint64_t id) {
  std::uint64_t h = seed + 0x9e3779b97f4a7c15ULL * (tag * 0x10001ULL + id + 1);
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
  return h ^ (h >> 31);
}

}  // namespace

FaultGenerator::FaultGenerator(FaultGeneratorConfig config)
    : config_(config) {
  constexpr const char* kType = "FaultGenerator";
  const auto check_class = [&](const DeviceReliability& r, const char* what) {
    validation::require(
        r.mtbf.value() <= 0.0 || r.mttr.value() > 0.0, kType,
        std::string(what) + " mttr must be positive when mtbf is set");
  };
  check_class(config_.switches, "switch");
  check_class(config_.links, "link");
  validation::require(config_.degraded_fraction >= 0.0 &&
                          config_.degraded_fraction <= 1.0,
                      kType, "degraded_fraction must be in [0, 1]");
  validation::require(config_.degraded_capacity_factor > 0.0 &&
                          config_.degraded_capacity_factor < 1.0,
                      kType, "degraded_capacity_factor must be in (0, 1)");
  validation::require(config_.horizon.value() >= 0.0, kType,
                      "horizon must be non-negative");
}

FaultSchedule FaultGenerator::generate(const Graph& graph) const {
  FaultSchedule schedule;
  const double horizon = config_.horizon.value();

  // Renewal process per device: up-time ~ Exp(1/mtbf), down-time ~
  // Exp(1/mttr), repeated until the horizon.
  const auto draw_device = [&](const DeviceReliability& rel,
                               std::uint64_t tag, std::uint64_t id,
                               auto&& emit) {
    if (rel.mtbf.value() <= 0.0) return;
    Rng rng{device_seed(config_.seed, tag, id)};
    double t = 0.0;
    while (true) {
      t += rng.exponential(1.0 / rel.mtbf.value());
      if (t >= horizon) break;
      const double down = rng.exponential(1.0 / rel.mttr.value());
      emit(Seconds{t}, Seconds{t + down}, rng);
      t += down;
    }
  };

  for (const Node& node : graph.nodes()) {
    if (node.kind == NodeKind::kHost) continue;
    draw_device(config_.switches, /*tag=*/1, node.id,
                [&](Seconds at, Seconds up, Rng&) {
                  FaultSpec f;
                  f.kind = FaultKind::kSwitchDown;
                  f.node = node.id;
                  f.at = at;
                  f.recover_at = up;
                  schedule.faults.push_back(f);
                });
  }
  for (const Link& link : graph.links()) {
    draw_device(config_.links, /*tag=*/2, link.id,
                [&](Seconds at, Seconds up, Rng& rng) {
                  FaultSpec f;
                  f.link = link.id;
                  f.at = at;
                  f.recover_at = up;
                  if (rng.bernoulli(config_.degraded_fraction)) {
                    f.kind = FaultKind::kLinkDegraded;
                    f.capacity_factor = config_.degraded_capacity_factor;
                  } else {
                    f.kind = FaultKind::kLinkDown;
                  }
                  schedule.faults.push_back(f);
                });
  }

  std::sort(schedule.faults.begin(), schedule.faults.end(),
            [](const FaultSpec& a, const FaultSpec& b) {
              if (a.at != b.at) return a.at < b.at;
              if (a.kind != b.kind) return a.kind < b.kind;
              if (a.node != b.node) return a.node < b.node;
              return a.link < b.link;
            });
  return schedule;
}

}  // namespace netpp
