#include "netpp/telemetry/metrics.h"

#include <cmath>
#include <stdexcept>

#include "netpp/validation.h"

namespace netpp::telemetry {

const char* to_string(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "unknown";
}

MetricRegistry::Entry& MetricRegistry::find_or_create(const std::string& name,
                                                      MetricKind kind,
                                                      const std::string& unit,
                                                      const std::string& help) {
  validation::require(!name.empty(), "MetricRegistry",
                      "metric name must be non-empty");
  auto it = index_.find(name);
  if (it != index_.end()) {
    validation::require(it->second->kind == kind, "MetricRegistry",
                        "metric '" + name + "' already registered as " +
                            to_string(it->second->kind));
    return *it->second;
  }
  Entry& entry = entries_.emplace_back();
  entry.name = name;
  entry.unit = unit;
  entry.help = help;
  entry.kind = kind;
  index_.emplace(name, &entry);
  return entry;
}

const MetricRegistry::Entry& MetricRegistry::find(const std::string& name,
                                                  MetricKind kind) const {
  auto it = index_.find(name);
  if (it == index_.end() || it->second->kind != kind) {
    throw std::out_of_range("MetricRegistry: no " +
                            std::string(to_string(kind)) + " named '" + name +
                            "'");
  }
  return *it->second;
}

Counter MetricRegistry::counter(const std::string& name,
                                const std::string& unit,
                                const std::string& help) {
  return Counter{&find_or_create(name, MetricKind::kCounter, unit, help)
                      .counter};
}

Gauge MetricRegistry::gauge(const std::string& name, const std::string& unit,
                            const std::string& help) {
  return Gauge{&find_or_create(name, MetricKind::kGauge, unit, help).gauge};
}

Histogram MetricRegistry::histogram(const std::string& name,
                                    std::vector<double> bounds,
                                    const std::string& unit,
                                    const std::string& help) {
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    validation::require(std::isfinite(bounds[i]) &&
                            (i == 0 || bounds[i] > bounds[i - 1]),
                        "MetricRegistry",
                        "histogram bounds must be finite and strictly "
                        "increasing");
  }
  Entry& entry = find_or_create(name, MetricKind::kHistogram, unit, help);
  if (entry.histogram.buckets.empty()) {
    entry.histogram.bounds = std::move(bounds);
    entry.histogram.buckets.assign(entry.histogram.bounds.size() + 1, 0);
  } else {
    validation::require(entry.histogram.bounds == bounds, "MetricRegistry",
                        "histogram '" + name +
                            "' re-registered with different bounds");
  }
  return Histogram{&entry.histogram};
}

std::vector<MetricSample> MetricRegistry::snapshot() const {
  std::vector<MetricSample> out;
  out.reserve(entries_.size());
  for (const Entry& entry : entries_) {
    MetricSample sample;
    sample.name = entry.name;
    sample.unit = entry.unit;
    sample.help = entry.help;
    sample.kind = entry.kind;
    switch (entry.kind) {
      case MetricKind::kCounter:
        sample.value = static_cast<double>(entry.counter.value);
        sample.count = entry.counter.value;  // exact integer for exporters
        break;
      case MetricKind::kGauge:
        sample.value = entry.gauge.value;
        break;
      case MetricKind::kHistogram:
        sample.value = entry.histogram.sum;
        sample.count = entry.histogram.count;
        sample.min = entry.histogram.min;
        sample.max = entry.histogram.max;
        sample.bounds = entry.histogram.bounds;
        sample.buckets = entry.histogram.buckets;
        break;
    }
    out.push_back(std::move(sample));
  }
  return out;
}

void MetricRegistry::save_state(state::SnapshotWriter& w) const {
  w.begin_section("metrics");
  w.put_u64(entries_.size());
  for (const Entry& entry : entries_) {
    w.put_string(entry.name);
    w.put_string(entry.unit);
    w.put_string(entry.help);
    w.put_u8(static_cast<std::uint8_t>(entry.kind));
    switch (entry.kind) {
      case MetricKind::kCounter:
        w.put_u64(entry.counter.value);
        break;
      case MetricKind::kGauge:
        w.put_f64(entry.gauge.value);
        break;
      case MetricKind::kHistogram:
        w.put_f64_vec(entry.histogram.bounds);
        w.put_u64_vec(entry.histogram.buckets);
        w.put_u64(entry.histogram.count);
        w.put_f64(entry.histogram.sum);
        w.put_f64(entry.histogram.min);
        w.put_f64(entry.histogram.max);
        break;
    }
  }
  w.end_section();
}

void MetricRegistry::restore_state(state::SnapshotReader& r) {
  r.open_section("metrics");
  const std::uint64_t n = r.get_u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::string name = r.get_string();
    const std::string unit = r.get_string();
    const std::string help = r.get_string();
    const std::uint8_t kind = r.get_u8();
    validation::require(
        kind <= static_cast<std::uint8_t>(MetricKind::kHistogram),
        "MetricRegistry", "snapshot holds an invalid metric kind");
    switch (static_cast<MetricKind>(kind)) {
      case MetricKind::kCounter: {
        Entry& entry = find_or_create(name, MetricKind::kCounter, unit, help);
        entry.counter.value = r.get_u64();
        break;
      }
      case MetricKind::kGauge: {
        Entry& entry = find_or_create(name, MetricKind::kGauge, unit, help);
        entry.gauge.value = r.get_f64();
        break;
      }
      case MetricKind::kHistogram: {
        auto bounds = r.get_f64_vec();
        // Route through histogram() so bound validation and the
        // re-registration mismatch check both apply.
        (void)histogram(name, bounds, unit, help);
        Entry& entry = find_or_create(name, MetricKind::kHistogram, unit, help);
        auto buckets = r.get_u64_vec();
        validation::require(buckets.size() == entry.histogram.buckets.size(),
                            "MetricRegistry",
                            "snapshot histogram bucket count mismatch");
        entry.histogram.buckets = std::move(buckets);
        entry.histogram.count = r.get_u64();
        entry.histogram.sum = r.get_f64();
        entry.histogram.min = r.get_f64();
        entry.histogram.max = r.get_f64();
        break;
      }
    }
  }
  r.close_section();
}

std::uint64_t MetricRegistry::counter_value(const std::string& name) const {
  return find(name, MetricKind::kCounter).counter.value;
}

double MetricRegistry::gauge_value(const std::string& name) const {
  return find(name, MetricKind::kGauge).gauge.value;
}

}  // namespace netpp::telemetry
