#include "netpp/telemetry/telemetry.h"

#include <cmath>

#include "netpp/validation.h"

namespace netpp::telemetry {

void TelemetryConfig::validate() const {
  validation::require(
      std::isfinite(sample_period.value()) && sample_period.value() >= 0.0,
      "TelemetryConfig", "sample_period must be finite and non-negative");
}

Telemetry::Telemetry(TelemetryConfig config)
    : config_(config), sampler_(metrics_) {
  config_.validate();
  events_.set_enabled(config_.events);
  sampler_.set_period(config_.sample_period);
}

}  // namespace netpp::telemetry
