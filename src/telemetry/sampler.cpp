#include "netpp/telemetry/sampler.h"

#include <cmath>

#include "netpp/validation.h"

namespace netpp::telemetry {

void TimeSeriesSampler::set_period(Seconds period) {
  validation::require(
      std::isfinite(period.value()) && period.value() >= 0.0,
      "TimeSeriesSampler", "period must be finite and non-negative");
  validation::require(times_.empty(), "TimeSeriesSampler",
                      "period cannot change after sampling started");
  period_ = period;
}

void TimeSeriesSampler::track(const std::string& gauge_name,
                              const std::string& unit,
                              const std::string& help) {
  for (const Series& s : series_) {
    if (s.name == gauge_name) return;
  }
  validation::require(times_.empty(), "TimeSeriesSampler",
                      "cannot add series after sampling started");
  Series series;
  series.name = gauge_name;
  series.gauge = registry_.gauge(gauge_name, unit, help);
  series_.push_back(std::move(series));
}

void TimeSeriesSampler::sample(Seconds now) {
  times_.push_back(now);
  for (Series& s : series_) {
    s.values.push_back(s.gauge.value());
  }
  next_due_ = now.value() + period_.value();
}

void TimeSeriesSampler::arm(SimEngine& engine, Seconds until) {
  validation::require(period_.value() > 0.0, "TimeSeriesSampler",
                      "arm() needs a positive period");
  const Seconds start = engine.now();
  // One self-rearming closure; stops past `until`.
  struct Rearm {
    TimeSeriesSampler* sampler;
    SimEngine* engine;
    double until;
    void operator()() const {
      sampler->sample(engine->now());
      const Seconds next{engine->now().value() + sampler->period_.value()};
      if (next.value() <= until) {
        engine->schedule_at(next, Rearm{*this});
      }
    }
  };
  engine.schedule_at(start, Rearm{this, &engine, until.value()});
}

}  // namespace netpp::telemetry
