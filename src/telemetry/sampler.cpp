#include "netpp/telemetry/sampler.h"

#include <cmath>

#include "netpp/validation.h"

namespace netpp::telemetry {

void TimeSeriesSampler::set_period(Seconds period) {
  validation::require(
      std::isfinite(period.value()) && period.value() >= 0.0,
      "TimeSeriesSampler", "period must be finite and non-negative");
  validation::require(times_.empty(), "TimeSeriesSampler",
                      "period cannot change after sampling started");
  period_ = period;
}

void TimeSeriesSampler::track(const std::string& gauge_name,
                              const std::string& unit,
                              const std::string& help) {
  for (const Series& s : series_) {
    if (s.name == gauge_name) return;
  }
  validation::require(times_.empty(), "TimeSeriesSampler",
                      "cannot add series after sampling started");
  Series series;
  series.name = gauge_name;
  series.gauge = registry_.gauge(gauge_name, unit, help);
  series_.push_back(std::move(series));
}

void TimeSeriesSampler::sample(Seconds now) {
  times_.push_back(now);
  for (Series& s : series_) {
    s.values.push_back(s.gauge.value());
  }
  next_due_ = now.value() + period_.value();
}

void TimeSeriesSampler::save_state(state::SnapshotWriter& w) const {
  w.begin_section("sampler");
  w.put_f64(period_.value());
  w.put_f64(next_due_);
  w.put_u64(times_.size());
  for (Seconds t : times_) w.put_f64(t.value());
  w.put_u64(series_.size());
  for (const Series& s : series_) {
    w.put_string(s.name);
    w.put_f64_vec(s.values);
  }
  w.end_section();
}

void TimeSeriesSampler::restore_state(state::SnapshotReader& r) {
  r.open_section("sampler");
  const double period = r.get_f64();
  validation::require(std::isfinite(period) && period >= 0.0,
                      "TimeSeriesSampler",
                      "snapshot period must be finite and non-negative");
  const double next_due = r.get_f64();
  const std::uint64_t num_times = r.get_u64();
  std::vector<Seconds> times;
  times.reserve(static_cast<std::size_t>(num_times));
  for (std::uint64_t i = 0; i < num_times; ++i) {
    times.emplace_back(r.get_f64());
  }
  const std::uint64_t num_series = r.get_u64();
  std::vector<Series> series;
  series.reserve(static_cast<std::size_t>(num_series));
  for (std::uint64_t i = 0; i < num_series; ++i) {
    Series s;
    s.name = r.get_string();
    s.gauge = registry_.gauge(s.name);
    s.values = r.get_f64_vec();
    validation::require(s.values.size() == times.size(), "TimeSeriesSampler",
                        "snapshot series rows must align with the time axis");
    series.push_back(std::move(s));
  }
  period_ = Seconds{period};
  next_due_ = next_due;
  times_ = std::move(times);
  series_ = std::move(series);
  r.close_section();
}

void TimeSeriesSampler::arm(SimEngine& engine, Seconds until) {
  validation::require(period_.value() > 0.0, "TimeSeriesSampler",
                      "arm() needs a positive period");
  const Seconds start = engine.now();
  // One self-rearming closure; stops past `until`.
  struct Rearm {
    TimeSeriesSampler* sampler;
    SimEngine* engine;
    double until;
    void operator()() const {
      sampler->sample(engine->now());
      const Seconds next{engine->now().value() + sampler->period_.value()};
      if (next.value() <= until) {
        engine->schedule_at(next, Rearm{*this});
      }
    }
  };
  engine.schedule_at(start, Rearm{this, &engine, until.value()});
}

}  // namespace netpp::telemetry
