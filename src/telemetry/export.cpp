#include "netpp/telemetry/export.h"

#include <charconv>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace netpp::telemetry {

namespace {

void append_escaped(std::string& out, std::string_view text) {
  out.push_back('"');
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

/// Shortest round-trip decimal; non-finite values become null (JSON has no
/// inf/nan literals).
void append_double(std::string& out, double value) {
  if (!std::isfinite(value)) {
    out += "null";
    return;
  }
  char buf[32];
  const auto result = std::to_chars(buf, buf + sizeof(buf), value);
  out.append(buf, result.ptr);
}

void append_u64(std::string& out, std::uint64_t value) {
  char buf[24];
  const auto result = std::to_chars(buf, buf + sizeof(buf), value);
  out.append(buf, result.ptr);
}

/// Sim-time seconds -> trace microseconds.
void append_trace_ts(std::string& out, Seconds at) {
  append_double(out, at.value() * 1e6);
}

}  // namespace

std::string to_chrome_trace_json(const EventLog& log,
                                 const TimeSeriesSampler* sampler) {
  std::string out;
  out.reserve(256 + log.size() * 96);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  out += "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\","
         "\"args\":{\"name\":\"netpp\"}}";

  // One named thread track per category, in order of first appearance.
  std::unordered_map<std::string_view, int> tids;
  const auto tid_of = [&](const char* category) {
    auto [it, inserted] =
        tids.emplace(category, static_cast<int>(tids.size()) + 1);
    if (inserted) {
      out += ",\n{\"ph\":\"M\",\"pid\":1,\"tid\":";
      append_u64(out, static_cast<std::uint64_t>(it->second));
      out += ",\"name\":\"thread_name\",\"args\":{\"name\":";
      append_escaped(out, category);
      out += "}}";
    }
    return it->second;
  };
  // Assign tids up front so metadata precedes the first real event of each
  // category (purely cosmetic: Perfetto sorts tracks by first record).
  for (const TraceEvent& event : log.events()) tid_of(event.category);

  for (const TraceEvent& event : log.events()) {
    out += ",\n{\"cat\":";
    append_escaped(out, event.category);
    out += ",\"name\":";
    append_escaped(out, event.name);
    out += ",\"ph\":\"";
    out.push_back(event.phase);
    out += "\",\"pid\":1,\"tid\":";
    append_u64(out, static_cast<std::uint64_t>(tid_of(event.category)));
    out += ",\"ts\":";
    append_trace_ts(out, event.at);
    if (event.phase == 'b' || event.phase == 'e') {
      out += ",\"id\":";
      append_u64(out, event.id);
    }
    if (event.arg_name != nullptr) {
      out += ",\"args\":{";
      append_escaped(out, event.arg_name);
      out += ":";
      append_double(out, event.arg_value);
      out += "}";
    }
    out += "}";
  }

  if (sampler != nullptr) {
    for (std::size_t s = 0; s < sampler->num_series(); ++s) {
      const auto& values = sampler->series_values(s);
      for (std::size_t i = 0; i < values.size(); ++i) {
        out += ",\n{\"cat\":\"sampler\",\"name\":";
        append_escaped(out, sampler->series_name(s));
        out += ",\"ph\":\"C\",\"pid\":1,\"tid\":0,\"ts\":";
        append_trace_ts(out, sampler->times()[i]);
        out += ",\"args\":{\"value\":";
        append_double(out, values[i]);
        out += "}}";
      }
    }
  }

  out += "\n]}\n";
  return out;
}

std::string to_metrics_json(const MetricRegistry& registry) {
  return to_metrics_json(registry.snapshot());
}

std::string to_metrics_json(const std::vector<MetricSample>& samples) {
  std::string out;
  out += "{\"netpp_metrics_version\":1,\"metrics\":[\n";
  bool first = true;
  for (const MetricSample& m : samples) {
    if (!first) out += ",\n";
    first = false;
    out += "{\"name\":";
    append_escaped(out, m.name);
    out += ",\"kind\":\"";
    out += to_string(m.kind);
    out += "\",\"unit\":";
    append_escaped(out, m.unit);
    out += ",\"help\":";
    append_escaped(out, m.help);
    switch (m.kind) {
      case MetricKind::kCounter:
        out += ",\"value\":";
        append_u64(out, m.count);  // exact integer
        break;
      case MetricKind::kGauge:
        out += ",\"value\":";
        append_double(out, m.value);
        break;
      case MetricKind::kHistogram:
        out += ",\"count\":";
        append_u64(out, m.count);
        out += ",\"sum\":";
        append_double(out, m.value);
        if (m.count > 0) {
          out += ",\"min\":";
          append_double(out, m.min);
          out += ",\"max\":";
          append_double(out, m.max);
        }
        out += ",\"bounds\":[";
        for (std::size_t i = 0; i < m.bounds.size(); ++i) {
          if (i > 0) out += ",";
          append_double(out, m.bounds[i]);
        }
        out += "],\"buckets\":[";
        for (std::size_t i = 0; i < m.buckets.size(); ++i) {
          if (i > 0) out += ",";
          append_u64(out, m.buckets[i]);
        }
        out += "]";
        break;
    }
    out += "}";
  }
  out += "\n]}\n";
  return out;
}

std::string to_csv(const TimeSeriesSampler& sampler) {
  std::string out = "time_s";
  for (std::size_t s = 0; s < sampler.num_series(); ++s) {
    out += ",";
    out += sampler.series_name(s);
  }
  out += "\n";
  for (std::size_t i = 0; i < sampler.times().size(); ++i) {
    append_double(out, sampler.times()[i].value());
    for (std::size_t s = 0; s < sampler.num_series(); ++s) {
      out += ",";
      append_double(out, sampler.series_values(s)[i]);
    }
    out += "\n";
  }
  return out;
}

bool write_file(const std::string& path, const std::string& contents,
                std::string& error) {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) {
    error = "cannot open '" + path + "' for writing";
    return false;
  }
  file.write(contents.data(),
             static_cast<std::streamsize>(contents.size()));
  file.flush();
  if (!file) {
    error = "failed while writing '" + path + "'";
    return false;
  }
  return true;
}

}  // namespace netpp::telemetry
