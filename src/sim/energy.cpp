#include "netpp/sim/energy.h"

#include <stdexcept>

namespace netpp {

EnergyMeter::EnergyMeter(Watts max_power, Watts initial_power, Seconds start)
    : max_power_(max_power),
      power_(initial_power.value(), start),
      load_(0.0, start) {
  if (max_power.value() < 0.0 || initial_power.value() < 0.0) {
    throw std::invalid_argument("powers must be non-negative");
  }
}

void EnergyMeter::set_power(Seconds at, Watts power) {
  if (power.value() < 0.0) {
    throw std::invalid_argument("power must be non-negative");
  }
  power_.set(at, power.value());
}

void EnergyMeter::set_load(Seconds at, double load) {
  if (load < 0.0 || load > 1.0) {
    throw std::invalid_argument("load must be in [0, 1]");
  }
  load_.set(at, load);
}

Joules EnergyMeter::energy(Seconds until) const {
  return Joules{power_.integral(until)};
}

Watts EnergyMeter::average_power(Seconds until) const {
  return Watts{power_.average(until)};
}

double EnergyMeter::average_load(Seconds until) const {
  return load_.average(until);
}

double EnergyMeter::efficiency(Seconds until) const {
  const double actual = power_.integral(until);
  if (actual <= 0.0) return 1.0;
  const double ideal = max_power_.value() * load_.integral(until);
  return ideal / actual;
}

std::size_t EnergyLedger::add(std::string name, Watts max_power,
                              Watts initial_power, Seconds start) {
  meters_.push_back(
      Entry{std::move(name), EnergyMeter{max_power, initial_power, start}});
  return meters_.size() - 1;
}

Joules EnergyLedger::total_energy(Seconds until) const {
  Joules total{};
  for (const auto& entry : meters_) total += entry.meter.energy(until);
  return total;
}

Watts EnergyLedger::total_average_power(Seconds until) const {
  Watts total{};
  for (const auto& entry : meters_) {
    total += entry.meter.average_power(until);
  }
  return total;
}

}  // namespace netpp
