#include "netpp/sim/sweep.h"

#include <atomic>
#include <exception>
#include <limits>
#include <mutex>
#include <thread>

#include "netpp/sim/thread_budget.h"

namespace netpp {

namespace {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

SweepRunner::SweepRunner(SweepConfig config)
    : num_threads_(config.num_threads != 0 ? config.num_threads
                                           : thread_budget::pool_size()),
      base_seed_(config.base_seed) {}

std::uint64_t SweepRunner::scenario_seed(std::size_t index) const {
  // Two SplitMix64 rounds decorrelate consecutive indices; the constant
  // offsets base_seed so that index 0 does not reproduce the raw seed.
  return splitmix64(splitmix64(base_seed_) +
                    static_cast<std::uint64_t>(index));
}

void SweepRunner::run_indexed(std::size_t n,
                              const std::function<void(std::size_t)>& task) {
  if (n == 0) return;
  // Lease workers from the shared budget so a sweep whose scenarios spin up
  // their own pools (sharded simulations) does not oversubscribe the
  // machine. The grant only sizes the pool; per-scenario seeding and
  // pre-sized result slots keep results independent of it.
  const thread_budget::ThreadLease lease{std::min(num_threads_, n)};
  const std::size_t workers = std::min(lease.granted(), n);

  std::atomic<std::size_t> next{0};
  std::mutex error_mutex;
  std::exception_ptr first_error;
  std::size_t first_error_index = std::numeric_limits<std::size_t>::max();
  std::mutex progress_mutex;
  std::size_t done = 0;

  auto worker = [&] {
    for (;;) {
      const std::size_t index = next.fetch_add(1, std::memory_order_relaxed);
      if (index >= n) return;
      try {
        task(index);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (index < first_error_index) {
          first_error_index = index;
          first_error = std::current_exception();
        }
      }
      // Failed scenarios count as done too: the callback tracks sweep
      // progress, not success (the first error is rethrown after the drain).
      if (progress_) {
        const std::lock_guard<std::mutex> lock(progress_mutex);
        progress_(++done, n);
      }
    }
  };

  if (workers == 1) {
    // Degenerate pool: run inline (keeps single-core hosts and
    // num_threads=1 debugging free of thread overhead).
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t t = 0; t < workers; ++t) pool.emplace_back(worker);
    for (auto& thread : pool) thread.join();
  }

  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace netpp
