#include "netpp/sim/engine.h"

#include <stdexcept>

namespace netpp {

SimEngine::EventId SimEngine::schedule_at(Seconds at, Callback fn) {
  if (at < now_) {
    throw std::invalid_argument("cannot schedule an event in the past");
  }
  if (!fn) throw std::invalid_argument("event callback must not be empty");
  const EventId id = next_seq_++;
  queue_.push(Entry{at.value(), id, std::move(fn)});
  pending_.insert(id);
  return id;
}

SimEngine::EventId SimEngine::schedule_after(Seconds delay, Callback fn) {
  if (delay.value() < 0.0) {
    throw std::invalid_argument("delay must be non-negative");
  }
  return schedule_at(now_ + delay, std::move(fn));
}

bool SimEngine::cancel(EventId id) {
  // Lazy cancellation: the queue entry is skipped when popped.
  return pending_.erase(id) > 0;
}

bool SimEngine::pop_and_run() {
  while (!queue_.empty()) {
    Entry top = std::move(const_cast<Entry&>(queue_.top()));
    queue_.pop();
    if (pending_.erase(top.seq) == 0) continue;  // was cancelled
    now_ = Seconds{top.at};
    top.fn();
    return true;
  }
  return false;
}

std::size_t SimEngine::run() {
  std::size_t executed = 0;
  while (pop_and_run()) ++executed;
  return executed;
}

std::size_t SimEngine::run_until(Seconds until) {
  if (until < now_) {
    throw std::invalid_argument("cannot run to a time in the past");
  }
  std::size_t executed = 0;
  while (!queue_.empty()) {
    const Entry& top = queue_.top();
    if (pending_.find(top.seq) == pending_.end()) {
      queue_.pop();  // cancelled entry; discard
      continue;
    }
    if (top.at > until.value()) break;
    pop_and_run();
    ++executed;
  }
  now_ = until;
  return executed;
}

bool SimEngine::step() { return pop_and_run(); }

}  // namespace netpp
