#include "netpp/sim/engine.h"

#include <limits>
#include <stdexcept>
#include <utility>

namespace netpp {

namespace {

constexpr std::uint64_t kSlotMask = 0xffffffffull;

}  // namespace

SimEngine::EventId SimEngine::push_event(double at, std::uint64_t seq,
                                         Callback fn) {
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[slot];
  ++s.gen;  // stale handles and queue entries for this slot die here
  s.live = true;
  s.fn = std::move(fn);
  s.at = at;
  s.seq = seq;
  queue_.push(Entry{at, seq, slot, s.gen});
  ++live_;
  return (static_cast<EventId>(s.gen) << 32) | slot;
}

SimEngine::EventId SimEngine::schedule_at(Seconds at, Callback fn) {
  if (at < now_) {
    throw std::invalid_argument("cannot schedule an event in the past");
  }
  if (!fn) throw std::invalid_argument("event callback must not be empty");
  return push_event(at.value(), next_seq_++, std::move(fn));
}

SimEngine::EventId SimEngine::schedule_after(Seconds delay, Callback fn) {
  if (delay.value() < 0.0) {
    throw std::invalid_argument("delay must be non-negative");
  }
  return schedule_at(now_ + delay, std::move(fn));
}

bool SimEngine::cancel(EventId id) {
  const auto slot = static_cast<std::uint32_t>(id & kSlotMask);
  const auto gen = static_cast<std::uint32_t>(id >> 32);
  if (slot >= slots_.size()) return false;
  Slot& s = slots_[slot];
  if (!s.live || s.gen != gen) return false;  // already fired or cancelled
  s.live = false;
  s.fn = nullptr;  // release captured state eagerly
  free_slots_.push_back(slot);
  --live_;
  // The queue entry stays behind (lazy deletion): its generation no longer
  // matches once the slot is reused, and a dead slot fails the live check.
  return true;
}

const SimEngine::Slot& SimEngine::checked_slot(EventId id) const {
  const auto slot = static_cast<std::uint32_t>(id & kSlotMask);
  const auto gen = static_cast<std::uint32_t>(id >> 32);
  if (slot >= slots_.size() || !slots_[slot].live || slots_[slot].gen != gen) {
    throw std::logic_error("SimEngine: stale event handle");
  }
  return slots_[slot];
}

Seconds SimEngine::event_time(EventId id) const {
  return Seconds{checked_slot(id).at};
}

std::uint64_t SimEngine::event_seq(EventId id) const {
  return checked_slot(id).seq;
}

void SimEngine::restore_clock(Seconds now, std::uint64_t next_seq) {
  queue_ = {};
  slots_.clear();
  free_slots_.clear();
  live_ = 0;
  now_ = now;
  next_seq_ = next_seq;
}

SimEngine::EventId SimEngine::restore_event_at(Seconds at, std::uint64_t seq,
                                               Callback fn) {
  if (at < now_) {
    throw std::invalid_argument("cannot schedule an event in the past");
  }
  if (seq >= next_seq_) {
    throw std::invalid_argument(
        "restored event seq must predate the restored FIFO counter");
  }
  if (!fn) throw std::invalid_argument("event callback must not be empty");
  return push_event(at.value(), seq, std::move(fn));
}

bool SimEngine::pop_and_run() {
  while (!queue_.empty()) {
    const Entry top = queue_.top();
    queue_.pop();
    Slot& s = slots_[top.slot];
    if (!s.live || s.gen != top.gen) continue;  // was cancelled
    Callback fn = std::move(s.fn);
    s.fn = nullptr;
    s.live = false;
    free_slots_.push_back(top.slot);
    --live_;
    now_ = Seconds{top.at};
    fn();
    return true;
  }
  return false;
}

std::size_t SimEngine::run() {
  std::size_t executed = 0;
  while (pop_and_run()) ++executed;
  return executed;
}

std::size_t SimEngine::run_until(Seconds until) {
  if (until < now_) {
    throw std::invalid_argument("cannot run to a time in the past");
  }
  std::size_t executed = 0;
  while (!queue_.empty()) {
    const Entry& top = queue_.top();
    const Slot& s = slots_[top.slot];
    if (!s.live || s.gen != top.gen) {
      queue_.pop();  // cancelled entry; discard
      continue;
    }
    if (top.at > until.value()) break;
    pop_and_run();
    ++executed;
  }
  now_ = until;
  return executed;
}

bool SimEngine::step() { return pop_and_run(); }

double SimEngine::next_event_time() {
  while (!queue_.empty()) {
    const Entry& top = queue_.top();
    const Slot& s = slots_[top.slot];
    if (s.live && s.gen == top.gen) return top.at;
    queue_.pop();  // cancelled entry; discard
  }
  return std::numeric_limits<double>::infinity();
}

}  // namespace netpp
