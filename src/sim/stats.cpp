#include "netpp/sim/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace netpp {

void SummaryStat::add(double x) {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double SummaryStat::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double SummaryStat::stddev() const { return std::sqrt(variance()); }

TimeWeighted::TimeWeighted(double initial, Seconds start)
    : start_(start), last_(start), value_(initial) {}

void TimeWeighted::set(Seconds at, double value) {
  if (at < last_) {
    throw std::invalid_argument("TimeWeighted: time went backwards");
  }
  integral_ += value_ * (at - last_).value();
  last_ = at;
  value_ = value;
}

double TimeWeighted::integral(Seconds until) const {
  if (until < last_) {
    throw std::invalid_argument("TimeWeighted: query before last change");
  }
  return integral_ + value_ * (until - last_).value();
}

double TimeWeighted::average(Seconds until) const {
  const double span = (until - start_).value();
  return span > 0.0 ? integral(until) / span : value_;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      bins_(bins, 0) {
  if (!(hi > lo) || bins == 0) {
    throw std::invalid_argument("Histogram: need hi > lo and bins > 0");
  }
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
  } else if (x >= hi_) {
    ++overflow_;
  } else {
    auto idx = static_cast<std::size_t>((x - lo_) / width_);
    if (idx >= bins_.size()) idx = bins_.size() - 1;  // fp edge case
    ++bins_[idx];
  }
}

void Histogram::restore(const std::vector<std::uint64_t>& bins,
                        std::uint64_t underflow, std::uint64_t overflow,
                        std::uint64_t total) {
  if (bins.size() != bins_.size()) {
    throw std::invalid_argument("Histogram: restore bin count mismatch");
  }
  bins_ = bins;
  underflow_ = underflow;
  overflow_ = overflow;
  total_ = total;
}

double Histogram::quantile(double q) const {
  if (q < 0.0 || q > 1.0) {
    throw std::invalid_argument("Histogram: quantile q not in [0,1]");
  }
  if (total_ == 0) return lo_;
  const double target = q * static_cast<double>(total_);
  double cumulative = static_cast<double>(underflow_);
  if (target <= cumulative) return lo_;
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    const double next = cumulative + static_cast<double>(bins_[i]);
    if (target <= next && bins_[i] > 0) {
      const double frac = (target - cumulative) / static_cast<double>(bins_[i]);
      return lo_ + (static_cast<double>(i) + frac) * width_;
    }
    cumulative = next;
  }
  return hi_;
}

}  // namespace netpp
