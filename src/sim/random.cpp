#include "netpp/sim/random.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace netpp {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  for (auto& word : s_) word = splitmix64(seed);
  // Avoid the all-zero state (xoshiro's single fixed point).
  if (s_[0] == 0 && s_[1] == 0 && s_[2] == 0 && s_[3] == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  if (hi < lo) throw std::invalid_argument("uniform: hi < lo");
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (hi < lo) throw std::invalid_argument("uniform_int: hi < lo");
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % range);
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return lo + static_cast<std::int64_t>(v % range);
}

double Rng::exponential(double rate) {
  if (rate <= 0.0) throw std::invalid_argument("exponential: rate <= 0");
  double u = uniform();
  while (u == 0.0) u = uniform();
  return -std::log(u) / rate;
}

double Rng::normal(double mean, double stddev) {
  double u1 = uniform();
  while (u1 == 0.0) u1 = uniform();
  const double u2 = uniform();
  const double z =
      std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
  return mean + stddev * z;
}

double Rng::bounded_pareto(double alpha, double lo, double hi) {
  if (alpha <= 0.0 || lo <= 0.0 || hi <= lo) {
    throw std::invalid_argument("bounded_pareto: need alpha>0, 0<lo<hi");
  }
  const double u = uniform();
  const double la = std::pow(lo, alpha);
  const double ha = std::pow(hi, alpha);
  return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
}

std::uint64_t Rng::poisson(double mean) {
  if (mean < 0.0) throw std::invalid_argument("poisson: mean < 0");
  if (mean == 0.0) return 0;
  if (mean < 64.0) {
    const double limit = std::exp(-mean);
    std::uint64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= uniform();
    } while (p > limit);
    return k - 1;
  }
  const double v = normal(mean, std::sqrt(mean));
  return v <= 0.0 ? 0 : static_cast<std::uint64_t>(v + 0.5);
}

bool Rng::bernoulli(double p) {
  if (p < 0.0 || p > 1.0) throw std::invalid_argument("bernoulli: p not in [0,1]");
  return uniform() < p;
}

Rng Rng::split() { return Rng{next_u64()}; }

}  // namespace netpp
