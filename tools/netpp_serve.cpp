// netpp_serve: the warm-state what-if query server over the simulator.
//
//   netpp_serve --socket PATH [--threads N] [--warm] [--baseline F] [--stats]
//   netpp_serve --stdin      [--threads N] [--warm] [--baseline F] [--stats]
//   netpp_serve --oneshot JSON [--baseline F]
//   netpp_serve --save-baseline F
//
// One process loads the scenario machinery once and answers batched what-if
// queries against warm state (see docs/SERVING.md for the protocol and the
// query schema). Three front ends share the one QueryEngine:
//
//   --socket PATH  length-prefixed JSON frames on a unix domain socket, one
//                  response frame per request frame, one thread per client.
//   --stdin        newline-delimited JSON on stdin/stdout (pipe mode, for
//                  tests and CI: no socket cleanup to get wrong).
//   --oneshot Q    answer a single query and exit: the ok payload goes to
//                  stdout verbatim (byte-identical to the equivalent
//                  netpp_cli run), a typed error becomes one
//                  `netpp_serve: error: <code>: <message>` line and exit 2.
//
// --save-baseline captures the default faults warm baseline to a file;
// --baseline installs such a file (or any faults snapshot) instead of
// building the baseline in-process. A damaged baseline file does not take
// the server down: queries that fork it are answered with typed
// corrupt_baseline errors.
#include <csignal>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "netpp/serve/engine.h"
#include "netpp/serve/protocol.h"

namespace {

using namespace netpp;

struct Options {
  std::string socket_path;
  std::string oneshot;
  std::string baseline;
  std::string save_baseline;
  bool stdin_mode = false;
  bool warm = false;
  bool stats = false;
  std::size_t threads = 0;
};

int error_out(const std::string& message) {
  std::fprintf(stderr, "netpp_serve: error: %s\n", message.c_str());
  return 2;
}

int usage(std::FILE* out) {
  std::fprintf(
      out,
      "usage: netpp_serve (--socket PATH | --stdin | --oneshot JSON |\n"
      "                    --save-baseline FILE) [flags]\n"
      "\n"
      "modes (exactly one):\n"
      "  --socket PATH        serve length-prefixed JSON frames on a unix\n"
      "                       domain socket (one thread per client)\n"
      "  --stdin              newline-delimited JSON on stdin/stdout\n"
      "  --oneshot JSON       answer one query: payload to stdout, typed\n"
      "                       errors as 'netpp_serve: error: ...' + exit 2\n"
      "  --save-baseline F    capture the default faults warm baseline\n"
      "\n"
      "flags:\n"
      "  --baseline FILE      install a warm-baseline image from FILE\n"
      "  --threads N          batch worker ceiling (0 = thread budget)\n"
      "  --warm               build the default baseline before serving\n"
      "  --stats              print engine stats to stderr on exit\n"
      "  --help               this text\n");
  return out == stdout ? 0 : 2;
}

bool parse(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    std::string inline_value;
    bool has_inline_value = false;
    if (const auto eq = flag.find('='); eq != std::string::npos) {
      inline_value = flag.substr(eq + 1);
      flag = flag.substr(0, eq);
      has_inline_value = true;
    }
    if (flag == "--stdin" || flag == "--warm" || flag == "--stats") {
      if (has_inline_value) {
        error_out("flag '" + flag + "' takes no value");
        return false;
      }
      if (flag == "--stdin") opt.stdin_mode = true;
      if (flag == "--warm") opt.warm = true;
      if (flag == "--stats") opt.stats = true;
      continue;
    }
    const bool known_flag = flag == "--socket" || flag == "--oneshot" ||
                            flag == "--baseline" ||
                            flag == "--save-baseline" || flag == "--threads";
    if (!known_flag) {
      error_out("unknown flag '" + flag + "' (see 'netpp_serve --help')");
      return false;
    }
    if (!has_inline_value && i + 1 >= argc) {
      error_out("flag '" + flag + "' needs a value");
      return false;
    }
    const std::string value =
        has_inline_value ? inline_value : std::string{argv[++i]};
    if (flag == "--socket") {
      opt.socket_path = value;
    } else if (flag == "--oneshot") {
      opt.oneshot = value;
    } else if (flag == "--baseline") {
      opt.baseline = value;
    } else if (flag == "--save-baseline") {
      opt.save_baseline = value;
    } else {
      char* parse_end = nullptr;
      const double threads = std::strtod(value.c_str(), &parse_end);
      if (parse_end == value.c_str() || *parse_end != '\0' || threads < 0 ||
          threads != static_cast<double>(static_cast<std::size_t>(threads))) {
        error_out("bad value '" + value + "' for flag '--threads'");
        return false;
      }
      opt.threads = static_cast<std::size_t>(threads);
    }
  }
  const int modes = (!opt.socket_path.empty() ? 1 : 0) +
                    (opt.stdin_mode ? 1 : 0) + (!opt.oneshot.empty() ? 1 : 0) +
                    (!opt.save_baseline.empty() ? 1 : 0);
  if (modes != 1) {
    error_out(
        "pick exactly one mode: --socket, --stdin, --oneshot, or "
        "--save-baseline");
    return false;
  }
  return true;
}

/// --oneshot: the ok payload goes to stdout verbatim so the output is
/// byte-comparable against the equivalent netpp_cli run; typed errors keep
/// the CLI's one-line stderr contract with the machine-readable code first.
int run_oneshot(serve::QueryEngine& engine, const std::string& text) {
  serve::JsonValue request;
  try {
    request = serve::parse_json(text);
  } catch (const std::exception& e) {
    return error_out(std::string{"bad_json: "} + e.what());
  }
  const serve::JsonValue response = engine.handle(request);
  if (response.kind() == serve::JsonKind::kArray) {
    std::printf("%s\n", response.dump().c_str());
    return 0;
  }
  const serve::JsonValue* ok = response.find("ok");
  if (ok != nullptr && ok->kind() == serve::JsonKind::kBool &&
      ok->as_bool()) {
    const serve::JsonValue* result = response.find("result");
    const serve::JsonValue* payload =
        result != nullptr ? result->find("payload") : nullptr;
    if (payload != nullptr) {
      std::fputs(payload->as_string().c_str(), stdout);
      return 0;
    }
  }
  const serve::JsonValue* error = response.find("error");
  if (error != nullptr) {
    const serve::JsonValue* code = error->find("code");
    const serve::JsonValue* message = error->find("message");
    return error_out((code != nullptr ? code->as_string() : "internal") +
                     ": " +
                     (message != nullptr ? message->as_string() : ""));
  }
  return error_out("internal: malformed response envelope");
}

int run_stdin(serve::QueryEngine& engine) {
  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.empty()) continue;
    const std::string response = engine.handle_text(line);
    std::fwrite(response.data(), 1, response.size(), stdout);
    std::fputc('\n', stdout);
    std::fflush(stdout);
  }
  return 0;
}

void serve_connection(serve::QueryEngine& engine, int fd) {
  std::string payload;
  try {
    while (serve::read_frame(fd, payload)) {
      serve::write_frame(fd, engine.handle_text(payload));
    }
  } catch (const serve::ServeError& e) {
    // Unreadable framing (or a vanished peer): try to say why, then drop
    // the connection — one broken client must not take the server down.
    try {
      serve::write_frame(
          fd, serve::make_error_response(serve::JsonValue{}, e.code(),
                                         e.field(), e.what())
                  .dump());
    } catch (...) {
    }
  }
  ::close(fd);
}

int run_socket(serve::QueryEngine& engine, const std::string& path) {
  if (path.size() >= sizeof(sockaddr_un{}.sun_path)) {
    return error_out("socket path too long: " + path);
  }
  const int listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    return error_out(std::string{"socket: "} + std::strerror(errno));
  }
  ::unlink(path.c_str());
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::bind(listen_fd, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return error_out("bind " + path + ": " + std::strerror(errno));
  }
  if (::listen(listen_fd, 64) != 0) {
    return error_out(std::string{"listen: "} + std::strerror(errno));
  }
  std::fprintf(stderr, "netpp_serve: listening on %s\n", path.c_str());
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return error_out(std::string{"accept: "} + std::strerror(errno));
    }
    std::thread{[&engine, fd] { serve_connection(engine, fd); }}.detach();
  }
}

void print_stats(const serve::QueryEngine& engine) {
  const serve::EngineStats s = engine.stats();
  std::fprintf(stderr,
               "netpp_serve: stats: queries=%zu result_reuses=%zu "
               "baselines_built=%zu baseline_forks=%zu sim_reuses=%zu "
               "stage_reuses=%zu\n",
               s.queries, s.result_reuses, s.baselines_built,
               s.baseline_forks, s.sim_reuses, s.stage_reuses);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && (std::strcmp(argv[1], "--help") == 0 ||
                    std::strcmp(argv[1], "help") == 0)) {
    return usage(stdout);
  }
  Options opt;
  if (!parse(argc, argv, opt)) return 2;
  // A client closing mid-response must surface as a write error, not kill
  // the process.
  std::signal(SIGPIPE, SIG_IGN);

  serve::EngineConfig config;
  config.num_threads = opt.threads;
  serve::QueryEngine engine{config};
  try {
    if (!opt.save_baseline.empty()) {
      engine.save_baseline(opt.save_baseline);
      std::printf("saved baseline to %s\n", opt.save_baseline.c_str());
      return 0;
    }
    if (!opt.baseline.empty()) {
      engine.load_baseline(opt.baseline);
    } else if (opt.warm) {
      engine.warm_default_baseline();
    }
  } catch (const std::exception& e) {
    return error_out(e.what());
  }

  int status = 0;
  if (!opt.oneshot.empty()) {
    status = run_oneshot(engine, opt.oneshot);
  } else if (opt.stdin_mode) {
    status = run_stdin(engine);
  } else {
    status = run_socket(engine, opt.socket_path);
  }
  if (opt.stats) print_stats(engine);
  return status;
}
