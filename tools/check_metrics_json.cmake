# Round-trips `netpp_cli faults` telemetry exports through a JSON shape
# check: the metrics dump must be a self-describing document whose entries
# carry name/kind/value, and the trace must be a Chrome trace_event JSON
# object with a traceEvents array.
#
# Usage: cmake -DCLI=<path> -DOUT_DIR=<dir> -P check_metrics_json.cmake
if(NOT DEFINED CLI OR NOT DEFINED OUT_DIR)
  message(FATAL_ERROR "check_metrics_json.cmake needs CLI, OUT_DIR")
endif()

set(metrics_file "${OUT_DIR}/cli_roundtrip.metrics.json")
set(trace_file "${OUT_DIR}/cli_roundtrip.trace.json")
execute_process(
  COMMAND ${CLI} faults --seed 7
          --metrics-out=${metrics_file} --trace-out=${trace_file}
  RESULT_VARIABLE exit_code
  OUTPUT_QUIET
  ERROR_VARIABLE stderr_text
)
if(NOT exit_code EQUAL 0)
  message(FATAL_ERROR "netpp_cli faults failed (${exit_code}): ${stderr_text}")
endif()

file(READ "${metrics_file}" metrics_json)
string(JSON version GET "${metrics_json}" netpp_metrics_version)
if(NOT version EQUAL 1)
  message(FATAL_ERROR "unexpected netpp_metrics_version: ${version}")
endif()
string(JSON num_metrics LENGTH "${metrics_json}" metrics)
if(num_metrics LESS 10)
  message(FATAL_ERROR "expected a populated metrics array, got ${num_metrics}")
endif()
math(EXPR last "${num_metrics} - 1")
foreach(i RANGE ${last})
  string(JSON name GET "${metrics_json}" metrics ${i} name)
  string(JSON kind GET "${metrics_json}" metrics ${i} kind)
  if(name STREQUAL "")
    message(FATAL_ERROR "metric ${i} has an empty name")
  endif()
  if(kind MATCHES "^(counter|gauge)$")
    string(JSON value GET "${metrics_json}" metrics ${i} value)
  elseif(kind STREQUAL "histogram")
    string(JSON count GET "${metrics_json}" metrics ${i} count)
    string(JSON sum GET "${metrics_json}" metrics ${i} sum)
    string(JSON num_buckets LENGTH "${metrics_json}" metrics ${i} buckets)
    string(JSON num_bounds LENGTH "${metrics_json}" metrics ${i} bounds)
    math(EXPR expected_buckets "${num_bounds} + 1")
    if(NOT num_buckets EQUAL expected_buckets)
      message(FATAL_ERROR
        "histogram '${name}' has ${num_buckets} buckets for ${num_bounds} bounds")
    endif()
  else()
    message(FATAL_ERROR "metric '${name}' has unknown kind '${kind}'")
  endif()
endforeach()
# The instrumented layers must show up.
foreach(required
    "netsim.route_cache.hits" "netsim.realloc.full_solves"
    "faults.injected" "netsim.fct_seconds")
  string(FIND "${metrics_json}" "\"${required}\"" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR "metrics dump is missing '${required}'")
  endif()
endforeach()

file(READ "${trace_file}" trace_json)
string(JSON num_events LENGTH "${trace_json}" traceEvents)
if(num_events LESS 10)
  message(FATAL_ERROR "expected a populated traceEvents array, got ${num_events}")
endif()
string(JSON ph GET "${trace_json}" traceEvents 0 ph)
if(NOT ph MATCHES "^(M|i|b|e|C)$")
  message(FATAL_ERROR "unexpected first trace event phase '${ph}'")
endif()
