# Runs the perf scoreboard gate: records same-machine reference scores with
# `bench_scoreboard --write-reference`, then scores the fixed scenario suite
# against them with the same binary, which exits non-zero in Release builds
# on a >10% regression of any scored row.
#
# Reference and measurement MUST come from the same binary: two binaries
# running the identical source loop differ by up to ~20% from code layout
# and link order alone (far past the 10% gate), and regenerating on the
# current machine is equally load-bearing — the checked-in
# BENCH_flowsim.json was recorded elsewhere, so raw-ratio gating against it
# would measure the CI runner, not the code. A pre-recorded reference (e.g.
# an earlier bench_scoreboard run on this machine) can be passed instead.
#
# The gate retries up to ATTEMPTS times, regenerating the reference fresh
# each attempt so both sides of the ratio are sampled close together; a
# real regression fails every attempt, scheduler noise does not.
#
# Usage:
#   cmake -DBENCH_DIR=<dir with bench binaries> [-DREFERENCE=<json>]
#         [-DROUNDS=3] [-DATTEMPTS=3] -P check_scoreboard.cmake
if(NOT DEFINED BENCH_DIR)
  message(FATAL_ERROR "check_scoreboard.cmake needs BENCH_DIR")
endif()
if(NOT DEFINED ROUNDS)
  set(ROUNDS 3)
endif()
if(NOT DEFINED ATTEMPTS)
  set(ATTEMPTS 3)
endif()

set(regenerate FALSE)
if(NOT DEFINED REFERENCE)
  set(regenerate TRUE)
  set(REFERENCE "${BENCH_DIR}/scoreboard_reference.json")
endif()

foreach(attempt RANGE 1 ${ATTEMPTS})
  if(regenerate)
    execute_process(
      COMMAND ${BENCH_DIR}/bench_scoreboard
              --write-reference=${REFERENCE} --rounds=${ROUNDS}
      RESULT_VARIABLE exit_code
      ERROR_VARIABLE stderr_text
    )
    if(NOT exit_code EQUAL 0)
      message(FATAL_ERROR
        "reference regeneration failed (${exit_code}): ${stderr_text}")
    endif()
  endif()

  execute_process(
    COMMAND ${BENCH_DIR}/bench_scoreboard
            --reference=${REFERENCE} --rounds=${ROUNDS}
    RESULT_VARIABLE exit_code
  )
  if(exit_code EQUAL 0)
    if(attempt GREATER 1)
      message(STATUS
        "perf scoreboard gate passed on attempt ${attempt}/${ATTEMPTS}")
    endif()
    return()
  endif()
  message(STATUS
    "perf scoreboard attempt ${attempt}/${ATTEMPTS} failed (${exit_code})")
endforeach()

message(FATAL_ERROR
  "perf scoreboard gate failed on all ${ATTEMPTS} attempts")
