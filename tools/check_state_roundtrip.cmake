# Snapshot round-trip smoke test for the netpp_cli --save-state/--load-state
# flags, and fixture setup for the snapshot error-path tests.
#
#   faults: the straight-line run's report must match the save-then-restore
#           run's report byte for byte (the bit-identity contract, observed
#           through the CSV table).
#   mech:   the metrics JSON re-exported from a restored registry must match
#           the JSON exported by the live run.
#
# Also writes truncated/corrupted copies of the faults snapshot (via the
# snapcorrupt helper) for the cli_error_snapshot_* tests that follow.
#
# Usage: cmake -DCLI=<netpp_cli> -DCORRUPT=<snapcorrupt> -DOUT_DIR=<dir>
#              -P check_state_roundtrip.cmake
if(NOT DEFINED CLI OR NOT DEFINED CORRUPT OR NOT DEFINED OUT_DIR)
  message(FATAL_ERROR "check_state_roundtrip.cmake needs CLI, CORRUPT, OUT_DIR")
endif()

function(run_cli out_var)
  execute_process(
    COMMAND ${CLI} ${ARGN}
    RESULT_VARIABLE exit_code
    OUTPUT_VARIABLE stdout_text
    ERROR_VARIABLE stderr_text
  )
  if(NOT exit_code EQUAL 0)
    message(FATAL_ERROR
      "netpp_cli ${ARGN} failed (${exit_code}): ${stderr_text}")
  endif()
  set(${out_var} "${stdout_text}" PARENT_SCOPE)
endfunction()

set(snap "${OUT_DIR}/faults.snap")

# --- faults: straight-line vs save-at-2.5s-then-restore ----------------------
run_cli(straight faults --seed 7 --csv)
run_cli(ignored faults --seed 7 --save-state ${snap})
run_cli(resumed faults --seed 7 --load-state ${snap} --csv)
if(NOT straight STREQUAL resumed)
  message(FATAL_ERROR
    "faults restore diverged from the straight-line run\n"
    "--- straight ---\n${straight}\n--- resumed ---\n${resumed}")
endif()

# --- mech: live metrics export vs restored-registry re-export ---------------
run_cli(ignored mech --iters 2 --save-state ${OUT_DIR}/mech.snap
  --metrics-out ${OUT_DIR}/mech_live.json)
run_cli(ignored mech --load-state ${OUT_DIR}/mech.snap
  --metrics-out ${OUT_DIR}/mech_restored.json)
file(READ ${OUT_DIR}/mech_live.json live_json)
file(READ ${OUT_DIR}/mech_restored.json restored_json)
if(NOT live_json STREQUAL restored_json)
  message(FATAL_ERROR
    "mech metrics JSON diverged after registry restore\n"
    "--- live ---\n${live_json}\n--- restored ---\n${restored_json}")
endif()

# --- damaged-snapshot fixtures for the cli_error_snapshot_* tests -----------
foreach(damage "truncate;100;faults_truncated.snap" "flip;40;faults_corrupt.snap")
  list(GET damage 0 mode)
  list(GET damage 1 arg)
  list(GET damage 2 name)
  execute_process(
    COMMAND ${CORRUPT} ${snap} ${OUT_DIR}/${name} ${mode} ${arg}
    RESULT_VARIABLE exit_code
    ERROR_VARIABLE stderr_text
  )
  if(NOT exit_code EQUAL 0)
    message(FATAL_ERROR "snapcorrupt ${mode} failed: ${stderr_text}")
  endif()
endforeach()
