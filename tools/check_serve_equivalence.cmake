# The serve <-> CLI byte-identity contract, pinned at the process level.
#
# For every canned analysis (and both simulator backends) the payload a
# netpp_serve query returns must be byte-identical to the stdout of the
# equivalent one-shot netpp_cli run — the two front ends share scenario
# construction and rendering (netpp/serve/scenarios.h), and the serve
# engine's warm-state forks restore bit-exact state, so any divergence is a
# regression in one of those guarantees.
#
# Two angles:
#   * --oneshot: the cold path. Payload printed verbatim, compared with
#     STREQUAL against the CLI stdout (csv, table, and metrics outputs).
#   * --stdin: the warm path. One process answers a table query (which
#     builds the warm baseline / composite cache) and then the csv query of
#     the same scenario — a different result-cache key, so the second
#     answer is produced by forking warm state. Its JSON-escaped payload
#     must embed the CLI's csv bytes exactly.
#
# Usage: cmake -DCLI=<netpp_cli> -DSERVE=<netpp_serve> -DOUT_DIR=<dir>
#              -P check_serve_equivalence.cmake
if(NOT DEFINED CLI OR NOT DEFINED SERVE OR NOT DEFINED OUT_DIR)
  message(FATAL_ERROR "check_serve_equivalence.cmake needs CLI, SERVE, OUT_DIR")
endif()

function(run_tool out_var)
  execute_process(
    COMMAND ${ARGN}
    RESULT_VARIABLE exit_code
    OUTPUT_VARIABLE stdout_text
    ERROR_VARIABLE stderr_text
  )
  if(NOT exit_code EQUAL 0)
    message(FATAL_ERROR "${ARGN} failed (${exit_code}): ${stderr_text}")
  endif()
  set(${out_var} "${stdout_text}" PARENT_SCOPE)
endfunction()

# One query payload vs one CLI stdout, byte for byte.
function(check_pair name query)
  run_tool(serve_out ${SERVE} --oneshot ${query})
  run_tool(cli_out ${CLI} ${ARGN})
  if(NOT serve_out STREQUAL cli_out)
    message(FATAL_ERROR
      "${name}: serve payload != cli stdout\n--- serve ---\n${serve_out}\n"
      "--- cli ---\n${cli_out}")
  endif()
endfunction()

check_pair(cluster_table "{\"command\":\"cluster\",\"output\":\"table\"}"
  cluster)
check_pair(cluster_csv
  "{\"command\":\"cluster\",\"gpus\":8192,\"gbps\":800,\"output\":\"csv\"}"
  cluster --gpus 8192 --gbps 800 --csv)
check_pair(savings_csv
  "{\"command\":\"savings\",\"prop\":0.85,\"output\":\"csv\"}"
  savings --prop 0.85 --csv)
check_pair(faults_csv "{\"command\":\"faults\",\"seed\":7,\"output\":\"csv\"}"
  faults --seed 7 --csv)
check_pair(faults_policy_csv
  "{\"command\":\"faults\",\"seed\":7,\"policy\":\"wake-all\",\"headroom\":0.1,\"output\":\"csv\"}"
  faults --seed 7 --policy wake-all --headroom 0.1 --csv)
check_pair(faults_sharded_csv
  "{\"command\":\"faults\",\"seed\":7,\"backend\":\"sharded\",\"shards\":2,\"output\":\"csv\"}"
  faults --seed 7 --backend sharded --shards 2 --csv)
check_pair(mech_csv "{\"command\":\"mech\",\"iters\":2,\"output\":\"csv\"}"
  mech --iters 2 --csv)
check_pair(mech_dynamic_csv
  "{\"command\":\"mech\",\"stack\":\"dynamic\",\"iters\":2,\"output\":\"csv\"}"
  mech --stack dynamic --iters 2 --csv)
check_pair(mech_sharded_budget_csv
  "{\"command\":\"mech\",\"iters\":2,\"backend\":\"sharded\",\"shards\":4,\"pod_budget_w\":500,\"core_budget_w\":200,\"output\":\"csv\"}"
  mech --iters 2 --backend sharded --shards 4
  --pod-budget 500 --core-budget 200 --csv)

# Metrics output: the serve payload vs the CLI's --metrics-out file.
run_tool(ignored ${CLI} faults --seed 7
  --metrics-out ${OUT_DIR}/serve_eq_faults.metrics.json)
file(READ ${OUT_DIR}/serve_eq_faults.metrics.json cli_metrics)
run_tool(serve_metrics ${SERVE} --oneshot
  "{\"command\":\"faults\",\"seed\":7,\"output\":\"metrics\"}")
if(NOT serve_metrics STREQUAL cli_metrics)
  message(FATAL_ERROR
    "faults metrics: serve payload != cli --metrics-out file\n"
    "--- serve ---\n${serve_metrics}\n--- cli ---\n${cli_metrics}")
endif()

run_tool(ignored ${CLI} mech --iters 2
  --metrics-out ${OUT_DIR}/serve_eq_mech.metrics.json)
file(READ ${OUT_DIR}/serve_eq_mech.metrics.json cli_metrics)
run_tool(serve_metrics ${SERVE} --oneshot
  "{\"command\":\"mech\",\"iters\":2,\"output\":\"metrics\"}")
if(NOT serve_metrics STREQUAL cli_metrics)
  message(FATAL_ERROR
    "mech metrics: serve payload != cli --metrics-out file\n"
    "--- serve ---\n${serve_metrics}\n--- cli ---\n${cli_metrics}")
endif()

# Warm path: table first (builds the warm state), csv second (forks it).
# The csv answer must embed the CLI's csv bytes, JSON-escaped.
function(check_warm name table_query csv_query)
  file(WRITE ${OUT_DIR}/serve_eq_${name}.ndjson
    "${table_query}\n${csv_query}\n")
  execute_process(
    COMMAND ${SERVE} --stdin
    INPUT_FILE ${OUT_DIR}/serve_eq_${name}.ndjson
    RESULT_VARIABLE exit_code
    OUTPUT_VARIABLE serve_out
    ERROR_VARIABLE stderr_text
  )
  if(NOT exit_code EQUAL 0)
    message(FATAL_ERROR
      "${name}: netpp_serve --stdin failed (${exit_code}): ${stderr_text}")
  endif()
  run_tool(cli_out ${CLI} ${ARGN})
  string(REPLACE "\\" "\\\\" escaped "${cli_out}")
  string(REPLACE "\"" "\\\"" escaped "${escaped}")
  string(REPLACE "\n" "\\n" escaped "${escaped}")
  string(FIND "${serve_out}" "\"payload\":\"${escaped}\"" found_at)
  if(found_at EQUAL -1)
    message(FATAL_ERROR
      "${name}: warm csv answer does not embed the CLI csv bytes\n"
      "--- serve ---\n${serve_out}\n--- cli (escaped) ---\n${escaped}")
  endif()
endfunction()

check_warm(faults
  "{\"command\":\"faults\",\"seed\":7,\"output\":\"table\"}"
  "{\"command\":\"faults\",\"seed\":7,\"output\":\"csv\"}"
  faults --seed 7 --csv)
check_warm(mech
  "{\"command\":\"mech\",\"iters\":2,\"output\":\"table\"}"
  "{\"command\":\"mech\",\"iters\":2,\"output\":\"csv\"}"
  mech --iters 2 --csv)
check_warm(faults_sharded
  "{\"command\":\"faults\",\"seed\":7,\"backend\":\"sharded\",\"shards\":2,\"output\":\"table\"}"
  "{\"command\":\"faults\",\"seed\":7,\"backend\":\"sharded\",\"shards\":2,\"output\":\"csv\"}"
  faults --seed 7 --backend sharded --shards 2 --csv)
