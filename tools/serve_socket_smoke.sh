#!/bin/sh
# Socket-mode smoke test: start netpp_serve on a unix socket, run the
# concurrent-client stress driver against it, shut the server down, and
# propagate the driver's status. CI reuses this under ASan/UBSan.
#
# Usage: serve_socket_smoke.sh <netpp_serve> <serve_stress> <socket-path>
#                               [clients] [rounds]
set -u

if [ "$#" -lt 3 ] || [ "$#" -gt 5 ]; then
  echo "usage: $0 <netpp_serve> <serve_stress> <socket-path> [clients] [rounds]" >&2
  exit 2
fi
SERVE=$1
STRESS=$2
SOCKET=$3
CLIENTS=${4:-4}
ROUNDS=${5:-3}

rm -f "$SOCKET"
"$SERVE" --socket "$SOCKET" --stats &
SERVER_PID=$!
trap 'kill "$SERVER_PID" 2>/dev/null; wait "$SERVER_PID" 2>/dev/null' EXIT

# Wait for the listener (the server unlinks + binds before accepting).
tries=0
while [ ! -S "$SOCKET" ]; do
  if ! kill -0 "$SERVER_PID" 2>/dev/null; then
    echo "serve_socket_smoke: server exited before binding $SOCKET" >&2
    exit 1
  fi
  tries=$((tries + 1))
  if [ "$tries" -gt 300 ]; then
    echo "serve_socket_smoke: timed out waiting for $SOCKET" >&2
    exit 1
  fi
  sleep 0.1
done

"$STRESS" --socket "$SOCKET" --clients "$CLIENTS" --rounds "$ROUNDS"
STATUS=$?

kill "$SERVER_PID" 2>/dev/null
wait "$SERVER_PID" 2>/dev/null
trap - EXIT
rm -f "$SOCKET"
exit "$STATUS"
