// Seeded chaos harness for the snapshot/restore subsystem.
//
// Each seed composes a randomized scenario — Poisson traffic over a
// leaf-spine fabric, a generated fault storm, a degraded-mode policy, and
// (sometimes) an attached telemetry bundle — then runs it three ways:
//
//   1. straight-line: run to the end, hash the final state snapshot;
//   2. chaos: interrupt the run at 1-3 random event boundaries, snapshot,
//      restore into a fresh object (sometimes forking twice from the same
//      bytes and checking the forks agree), continue, hash the final state;
//   3. sabotage: flip one random byte of a mid-run snapshot and require the
//      typed "SnapshotReader:"/component rejection instead of UB.
//
// A separate stage drives a PowerStateTimeline through a pseudorandom
// transition sequence with a mid-drive save/restore and compares energy
// integrals bitwise.
//
// A sharded stage runs randomized Poisson traffic through a 2-shard
// ShardedFlowSimulator on a small multi-pod fat tree with a mid-run link
// outage, interrupts it at a random barrier, restores into a fresh
// simulator, and requires the resumed run's final snapshot to match the
// straight-line run's bytes exactly (plus the same one-flipped-byte typed
// rejection as the fault-experiment stage).
//
// A sharded-backend stage runs the full fault-experiment driver (injector,
// degraded-mode controller, control-plane events) over the 2-shard backend
// on a fat tree, resumes from a mid-run snapshot, and additionally requires
// the snapshot's backend echo to reject a restore under a different shard
// count.
//
// Any divergence between the chaos run's final hash and the straight-line
// hash — or any non-typed failure on damaged input — is a determinism bug;
// the tool prints it and exits non-zero. The CI chaos job runs this under
// ASan/UBSan.
//
//   chaos_replay [--seeds N] [--verbose]
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "netpp/faults/experiment.h"
#include "netpp/netsim/sharded.h"
#include "netpp/power/state_timeline.h"
#include "netpp/state/snapshot.h"
#include "netpp/telemetry/telemetry.h"
#include "netpp/topo/builders.h"
#include "netpp/traffic/generators.h"

namespace {

using namespace netpp;
using namespace netpp::literals;

/// splitmix64: tiny deterministic PRNG for scenario composition. Kept local
/// so the harness never depends on ambient randomness.
struct Rng {
  std::uint64_t state;
  std::uint64_t next() {
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
  /// Uniform in [0, n).
  std::uint64_t below(std::uint64_t n) { return next() % n; }
  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) {
    const double u =
        static_cast<double>(next() >> 11) * 0x1.0p-53;  // [0, 1)
    return lo + (hi - lo) * u;
  }
  bool chance(double p) { return uniform(0.0, 1.0) < p; }
};

struct Scenario {
  BuiltTopology topo;
  std::vector<FlowSpec> workload;
  FaultSchedule schedule;
  FaultExperimentConfig config;
  bool telemetry = false;
  bool sampler = false;
};

Scenario make_scenario(Rng& rng) {
  const int leaves = 2 + static_cast<int>(rng.below(3));
  Scenario s{build_leaf_spine(leaves, 2, 2, 100_Gbps, 100_Gbps),
             {}, {}, {}, false, false};

  PoissonTrafficConfig traffic;
  traffic.arrivals_per_second = rng.uniform(30.0, 90.0);
  traffic.max_size = Bits::from_gigabits(rng.uniform(1.0, 3.0));
  traffic.duration = Seconds{1.0};
  traffic.seed = rng.next();
  s.workload = make_poisson_traffic(s.topo.hosts, traffic);

  // Fault storm: seeded generator over both device classes, short MTBF so
  // several faults land inside the run.
  FaultGeneratorConfig faults;
  faults.switches = DeviceReliability{Seconds{rng.uniform(0.8, 2.5)},
                                      Seconds{rng.uniform(0.2, 0.6)}};
  faults.links = DeviceReliability{Seconds{rng.uniform(1.5, 4.0)},
                                   Seconds{rng.uniform(0.2, 0.6)}};
  faults.degraded_fraction = 0.25;
  faults.horizon = Seconds{2.0};
  faults.seed = rng.next();
  s.schedule = FaultGenerator{faults}.generate(s.topo.graph);

  s.config.tailor = rng.chance(0.5);
  const std::uint64_t policy = rng.below(3);
  s.config.degraded.policy = policy == 0   ? DegradedPolicy::kNone
                             : policy == 1 ? DegradedPolicy::kEmergencyWakeAll
                                           : DegradedPolicy::kRetailor;
  s.config.degraded.wake_latency = Seconds::from_milliseconds(30.0);
  s.config.degraded.min_headroom = rng.chance(0.5) ? 0.0 : 0.1;
  for (std::size_t i = 0; i < s.topo.hosts.size(); ++i) {
    s.config.demands.push_back(TrafficDemand{
        s.topo.hosts[i], s.topo.hosts[(i + 1) % s.topo.hosts.size()],
        15_Gbps});
  }
  s.telemetry = rng.chance(0.5);
  s.sampler = s.telemetry && rng.chance(0.5);
  return s;
}

std::unique_ptr<telemetry::Telemetry> make_bundle(const Scenario& s) {
  if (!s.telemetry) return nullptr;
  telemetry::TelemetryConfig config;
  config.events = true;
  config.sample_period = Seconds{s.sampler ? 0.05 : 0.0};
  return std::make_unique<telemetry::Telemetry>(config);
}

std::uint32_t snapshot_hash(const FaultExperimentRun& run) {
  state::SnapshotWriter w;
  run.save_state(w);
  return state::crc32(w.buffer().data(), w.buffer().size());
}

bool verbose = false;

/// One seed's fault-experiment chaos cycle. Returns false on divergence.
bool chaos_fault_experiment(std::uint64_t seed) {
  Rng rng{0x700d0000u + seed};
  const Scenario s = make_scenario(rng);

  // Straight-line reference.
  auto tel_a = make_bundle(s);
  FaultExperimentConfig config_a = s.config;
  config_a.telemetry = tel_a.get();
  FaultExperimentRun a{s.topo, s.workload, s.schedule, config_a};
  a.run();
  (void)a.finish();
  const std::uint32_t want = snapshot_hash(a);

  // Chaos run: random interrupt/restore cycles, occasionally forked.
  auto tel = make_bundle(s);
  FaultExperimentConfig config_b = s.config;
  config_b.telemetry = tel.get();
  auto run = std::make_unique<FaultExperimentRun>(s.topo, s.workload,
                                                  s.schedule, config_b);
  const int cuts = 1 + static_cast<int>(rng.below(3));
  double at = 0.0;
  std::vector<std::uint8_t> sabotage_bytes;
  for (int c = 0; c < cuts; ++c) {
    at += rng.uniform(0.1, 0.6);
    run->run_until(Seconds{at});
    run->check_invariants();
    state::SnapshotWriter w;
    run->save_state(w);
    if (sabotage_bytes.empty()) sabotage_bytes = w.buffer();

    if (rng.chance(0.4)) {
      // Fork: two restores from the same bytes must agree with each other.
      auto tel_f1 = make_bundle(s);
      auto tel_f2 = make_bundle(s);
      FaultExperimentConfig cf1 = s.config;
      cf1.telemetry = tel_f1.get();
      FaultExperimentConfig cf2 = s.config;
      cf2.telemetry = tel_f2.get();
      state::SnapshotReader r1{w.buffer()};
      state::SnapshotReader r2{w.buffer()};
      FaultExperimentRun f1{s.topo, s.workload, s.schedule, cf1, r1};
      FaultExperimentRun f2{s.topo, s.workload, s.schedule, cf2, r2};
      f1.run();
      f2.run();
      if (snapshot_hash(f1) != snapshot_hash(f2)) {
        std::fprintf(stderr, "seed %llu: forks diverged at cut %d\n",
                     static_cast<unsigned long long>(seed), c);
        return false;
      }
    }

    // Continue from the snapshot in a fresh object (drop the old one).
    auto tel_next = make_bundle(s);
    FaultExperimentConfig config_c = s.config;
    config_c.telemetry = tel_next.get();
    state::SnapshotReader r{w.buffer()};
    run = std::make_unique<FaultExperimentRun>(s.topo, s.workload, s.schedule,
                                               config_c, r);
    tel = std::move(tel_next);
  }
  run->run();
  (void)run->finish();
  const std::uint32_t got = snapshot_hash(*run);
  if (got != want) {
    std::fprintf(stderr,
                 "seed %llu: chaos run hash %08x != straight-line %08x\n",
                 static_cast<unsigned long long>(seed), got, want);
    return false;
  }

  // Sabotage: one flipped byte (past the header) must be rejected with a
  // typed error — never accepted, never UB.
  if (sabotage_bytes.size() > 16) {
    const std::size_t pos = 12 + rng.below(sabotage_bytes.size() - 12);
    sabotage_bytes[pos] ^= 0x01;
    try {
      auto tel_x = make_bundle(s);
      FaultExperimentConfig config_x = s.config;
      config_x.telemetry = tel_x.get();
      state::SnapshotReader r{sabotage_bytes};
      FaultExperimentRun x{s.topo, s.workload, s.schedule, config_x, r};
      std::fprintf(stderr,
                   "seed %llu: corrupted snapshot (byte %zu) was accepted\n",
                   static_cast<unsigned long long>(seed), pos);
      return false;
    } catch (const std::invalid_argument&) {
      // expected: typed rejection
    }
  }
  return true;
}

/// One seed's PowerStateTimeline drive with a mid-drive save/restore fork.
bool chaos_timeline(std::uint64_t seed) {
  Rng rng{0x11e11e00u + seed};
  const int components = 4 + static_cast<int>(rng.below(13));
  TransitionRules rules;
  rules.wake_latency = Seconds{rng.uniform(0.0, 0.05)};
  rules.min_dwell = Seconds{rng.uniform(0.0, 0.1)};
  rules.level_hysteresis = rng.chance(0.5) ? 0.0 : 0.1;

  const auto power = [](std::span<const ComponentTrack> tracks) {
    double watts = 0.0;
    for (const auto& t : tracks) {
      if (t.state == PowerState::kOn) watts += 50.0 + 250.0 * t.level;
      if (t.state == PowerState::kWaking || t.state == PowerState::kSleep)
        watts += 50.0;
    }
    return Watts{watts};
  };
  const auto baseline = [](std::span<const ComponentTrack> tracks) {
    return Watts{300.0 * static_cast<double>(tracks.size())};
  };

  // The same pseudorandom op tape drives both the reference and the resumed
  // timeline; replay determinism comes from sharing the tape, not the RNG.
  struct Op {
    int kind;  // 0 wake_one, 1 park_one, 2 request_level, 3 advance
    int component;
    double value;
  };
  std::vector<Op> tape;
  double t = 0.0;
  for (int i = 0; i < 200; ++i) {
    const int kind = static_cast<int>(rng.below(4));
    Op op{kind, static_cast<int>(rng.below(
                    static_cast<std::uint64_t>(components))),
          0.0};
    if (kind == 2) op.value = rng.uniform(0.2, 1.0);
    if (kind == 3) {
      t += rng.uniform(0.001, 0.05);
      op.value = t;
    }
    tape.push_back(op);
  }

  const auto drive = [&](PowerStateTimeline& tl, std::size_t from,
                         std::size_t to) {
    for (std::size_t i = from; i < to; ++i) {
      const Op& op = tape[i];
      switch (op.kind) {
        case 0: (void)tl.wake_one(); break;
        case 1: (void)tl.park_one(); break;
        case 2: (void)tl.request_level(op.component, op.value); break;
        default: tl.advance_to(Seconds{op.value}); break;
      }
    }
  };

  PowerStateTimeline ref{components, rules};
  ref.set_power_model(power, baseline);
  drive(ref, 0, tape.size());
  state::SnapshotWriter end_ref;
  ref.save_state(end_ref);

  const std::size_t cut = tape.size() / 2 + rng.below(tape.size() / 4);
  PowerStateTimeline half{components, rules};
  half.set_power_model(power, baseline);
  drive(half, 0, cut);
  state::SnapshotWriter mid;
  half.save_state(mid);

  PowerStateTimeline resumed{components, rules};
  state::SnapshotReader r{mid.buffer()};
  resumed.restore_state(r);
  resumed.set_power_model(power, baseline);
  drive(resumed, cut, tape.size());
  state::SnapshotWriter end_resumed;
  resumed.save_state(end_resumed);

  if (end_ref.buffer() != end_resumed.buffer()) {
    std::fprintf(stderr, "seed %llu: timeline resume diverged at op %zu\n",
                 static_cast<unsigned long long>(seed), cut);
    return false;
  }
  return true;
}

/// One seed's sharded-simulator resume cycle: straight-line vs
/// interrupt/restore/continue on a 2-shard multi-pod run, compared by final
/// snapshot bytes. Returns false on divergence.
bool chaos_sharded(std::uint64_t seed) {
  Rng rng{0x54a6dead0000u + seed};
  const BuiltTopology topo = build_fat_tree(4, 100_Gbps);

  PoissonTrafficConfig traffic;
  traffic.arrivals_per_second = rng.uniform(150.0, 400.0);
  traffic.max_size = Bits::from_gigabits(rng.uniform(1.0, 3.0));
  traffic.duration = Seconds{1.5};
  traffic.seed = rng.next();
  const std::vector<FlowSpec> flows =
      make_poisson_traffic(topo.hosts, traffic);

  ShardedFlowSimulator::Config cfg;
  cfg.num_shards = 2;
  cfg.shard.flow_rate_cap = 25_Gbps;

  // One mid-run outage window on a random link at fixed times, so the
  // interrupted run replays the same fault tape after its restore.
  const LinkId faulted =
      static_cast<LinkId>(rng.below(topo.graph.num_links()));
  constexpr double kHorizon = 2.0;
  const auto drive = [&](ShardedFlowSimulator& sim, double from, double to) {
    const struct { double at; bool enabled; } ops[] = {{0.6, false},
                                                       {1.2, true}};
    for (const auto& op : ops) {
      if (op.at <= from || op.at > to) continue;
      sim.run_until(Seconds{op.at});
      sim.set_link_enabled(faulted, op.enabled);
    }
    sim.run_until(Seconds{to});
  };
  const auto sharded_hash = [](const ShardedFlowSimulator& sim) {
    state::SnapshotWriter w;
    sim.save_state(w);
    return state::crc32(w.buffer().data(), w.buffer().size());
  };

  // Straight-line reference.
  ShardedFlowSimulator a{topo.graph, cfg};
  for (const auto& f : flows) a.submit(f);
  drive(a, 0.0, kHorizon);
  const std::uint32_t want = sharded_hash(a);

  // Interrupted run: cut at a random barrier, restore into a fresh
  // simulator, and continue over the rest of the tape.
  const double at = rng.uniform(0.1, 1.9);
  ShardedFlowSimulator b{topo.graph, cfg};
  for (const auto& f : flows) b.submit(f);
  drive(b, 0.0, at);
  b.check_invariants();
  state::SnapshotWriter mid;
  b.save_state(mid);

  ShardedFlowSimulator c{topo.graph, cfg};
  state::SnapshotReader r{mid.buffer()};
  c.restore_state(r);
  drive(c, at, kHorizon);
  const std::uint32_t got = sharded_hash(c);
  if (got != want) {
    std::fprintf(stderr,
                 "seed %llu: sharded resume hash %08x != straight-line %08x "
                 "(cut at %.3f)\n",
                 static_cast<unsigned long long>(seed), got, want, at);
    return false;
  }

  // Sabotage: one flipped byte past the header must be rejected typed.
  std::vector<std::uint8_t> bytes = mid.buffer();
  if (bytes.size() > 16) {
    const std::size_t pos = 12 + rng.below(bytes.size() - 12);
    bytes[pos] ^= 0x01;
    try {
      ShardedFlowSimulator x{topo.graph, cfg};
      state::SnapshotReader rx{bytes};
      x.restore_state(rx);
      std::fprintf(
          stderr,
          "seed %llu: corrupted sharded snapshot (byte %zu) was accepted\n",
          static_cast<unsigned long long>(seed), pos);
      return false;
    } catch (const std::invalid_argument&) {
      // expected: typed rejection
    }
  }
  return true;
}

/// One seed's sharded-BACKEND experiment cycle: the full fault-experiment
/// driver (injector + degraded-mode controller) over the 2-shard backend,
/// interrupted at a random time and resumed from its snapshot. The resumed
/// run must hash identically to the straight-line run, and the snapshot's
/// backend echo must reject a restore under a different shard count.
bool chaos_sharded_experiment(std::uint64_t seed) {
  Rng rng{0xbac0de0000u + seed};
  Scenario s = make_scenario(rng);
  // Swap the leaf-spine for a pod-partitionable fabric and rebuild the
  // pieces that depend on it; the rest of the random scenario carries over.
  s.topo = build_fat_tree(4, 100_Gbps);
  PoissonTrafficConfig traffic;
  traffic.arrivals_per_second = rng.uniform(60.0, 150.0);
  traffic.max_size = Bits::from_gigabits(rng.uniform(1.0, 3.0));
  traffic.duration = Seconds{1.0};
  traffic.seed = rng.next();
  s.workload = make_poisson_traffic(s.topo.hosts, traffic);
  FaultGeneratorConfig faults;
  faults.switches = DeviceReliability{Seconds{rng.uniform(0.8, 2.5)},
                                      Seconds{rng.uniform(0.2, 0.6)}};
  faults.links = DeviceReliability{Seconds{rng.uniform(1.5, 4.0)},
                                   Seconds{rng.uniform(0.2, 0.6)}};
  faults.degraded_fraction = 0.25;
  faults.horizon = Seconds{2.0};
  faults.seed = rng.next();
  s.schedule = FaultGenerator{faults}.generate(s.topo.graph);
  s.config.demands.clear();
  for (std::size_t i = 0; i < s.topo.hosts.size(); ++i) {
    s.config.demands.push_back(TrafficDemand{
        s.topo.hosts[i], s.topo.hosts[(i + 1) % s.topo.hosts.size()],
        15_Gbps});
  }
  s.config.telemetry = nullptr;
  s.config.backend.kind = BackendKind::kSharded;
  s.config.backend.num_shards = 2;

  // Straight-line reference.
  FaultExperimentRun a{s.topo, s.workload, s.schedule, s.config};
  a.run();
  (void)a.finish();
  const std::uint32_t want = snapshot_hash(a);

  // Interrupted run: cut once, restore into a fresh backend, continue.
  FaultExperimentRun b{s.topo, s.workload, s.schedule, s.config};
  b.run_until(Seconds{rng.uniform(0.2, 1.5)});
  b.check_invariants();
  state::SnapshotWriter mid;
  b.save_state(mid);

  state::SnapshotReader r{mid.buffer()};
  FaultExperimentRun c{s.topo, s.workload, s.schedule, s.config, r};
  c.run();
  (void)c.finish();
  const std::uint32_t got = snapshot_hash(c);
  if (got != want) {
    std::fprintf(
        stderr,
        "seed %llu: sharded experiment resume hash %08x != straight %08x\n",
        static_cast<unsigned long long>(seed), got, want);
    return false;
  }

  // The snapshot embeds its backend: restoring under a different shard
  // count must be a typed rejection, not a silent mismatch.
  try {
    FaultExperimentConfig wrong = s.config;
    wrong.backend.num_shards = 1;
    state::SnapshotReader rw{mid.buffer()};
    FaultExperimentRun x{s.topo, s.workload, s.schedule, wrong, rw};
    std::fprintf(stderr,
                 "seed %llu: shard-count-mismatched snapshot was accepted\n",
                 static_cast<unsigned long long>(seed));
    return false;
  } catch (const std::invalid_argument&) {
    // expected: typed rejection
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seeds = 16;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seeds") == 0 && i + 1 < argc) {
      seeds = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--verbose") == 0) {
      verbose = true;
    } else {
      std::fprintf(stderr, "usage: chaos_replay [--seeds N] [--verbose]\n");
      return 2;
    }
  }

  std::uint64_t failures = 0;
  for (std::uint64_t seed = 0; seed < seeds; ++seed) {
    bool ok = true;
    try {
      ok = chaos_fault_experiment(seed) && chaos_timeline(seed) &&
           chaos_sharded(seed) && chaos_sharded_experiment(seed);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "seed %llu: unexpected exception: %s\n",
                   static_cast<unsigned long long>(seed), e.what());
      ok = false;
    }
    if (!ok) ++failures;
    if (verbose || !ok) {
      std::printf("seed %llu: %s\n", static_cast<unsigned long long>(seed),
                  ok ? "ok" : "FAILED");
    }
  }
  if (failures > 0) {
    std::fprintf(stderr, "chaos_replay: %llu of %llu seeds failed\n",
                 static_cast<unsigned long long>(failures),
                 static_cast<unsigned long long>(seeds));
    return 1;
  }
  std::printf("chaos_replay: %llu seeds ok\n",
              static_cast<unsigned long long>(seeds));
  return 0;
}
