// netpp command-line interface: the paper's analyses as a shell tool, with
// ASCII or CSV output for scripting and plotting.
//
//   netpp_cli cluster [--gpus N] [--gbps B] [--ratio R] [--prop P]
//   netpp_cli table3 [--csv]
//   netpp_cli fig3 [--csv]
//   netpp_cli fig4 [--csv]
//   netpp_cli savings --prop P [--gbps B] [cluster flags]
//   netpp_cli sensitivity [--csv]
//   netpp_cli faults [--mtbf S] [--mttr S] [--seed N]
//                    [--policy none|wake-all|re-tailor] [--headroom H] [--csv]
//                    [--trace-out F] [--metrics-out F] [--sample-period S]
//                    [--save-state F [--save-at T]] [--load-state F]
//   netpp_cli mech [--stack all|dynamic|tailor|park|rate] [--iters N]
//                  [--volume GBIT] [--horizon S] [--ocs N] [--csv]
//                  [--pod-budget W] [--core-budget W]
//                  [--trace-out F] [--metrics-out F]
//                  [--save-state F] [--load-state F]
//   netpp_cli telemetry [faults flags] [--trace-out F] [--metrics-out F]
//   netpp_cli help
//
// Flags accept both `--flag value` and `--flag=value`. Every error path
// prints a single `netpp_cli: error: ...` line to stderr and exits non-zero.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "netpp/analysis/report.h"
#include "netpp/analysis/savings.h"
#include "netpp/analysis/sensitivity.h"
#include "netpp/analysis/speedup.h"
#include "netpp/cluster/cluster.h"
#include "netpp/faults/experiment.h"
#include "netpp/mech/composite.h"
#include "netpp/serve/scenarios.h"
#include "netpp/state/snapshot.h"
#include "netpp/telemetry/export.h"
#include "netpp/telemetry/telemetry.h"

namespace {

using namespace netpp;
using namespace netpp::literals;

/// The scenario knobs live in serve::ScenarioOptions — the single struct
/// both this CLI and netpp_serve parse into, so a serve query and the
/// equivalent one-shot run are the same scenario by construction.
struct Options {
  serve::ScenarioOptions scenario;
  bool csv = false;
  // simulator backend (faults / mech subcommands); validated into
  // scenario.backend by make_backend_config.
  std::string backend = "single";
  std::size_t shards = 1;
  // telemetry outputs (faults / mech / telemetry subcommands)
  std::string trace_out;
  std::string metrics_out;
  // snapshot save/restore (faults / mech subcommands)
  std::string save_state;
  std::string load_state;
  double save_at_s = -1.0;  ///< <0 means the subcommand default
};

int error_out(const std::string& message) {
  std::fprintf(stderr, "netpp_cli: error: %s\n", message.c_str());
  return 2;
}

void print_table(const Table& table, bool csv) {
  std::printf("%s", csv ? table.to_csv().c_str() : table.to_ascii().c_str());
}

int usage(std::FILE* out) {
  std::fprintf(
      out,
      "usage: netpp_cli <command> [flags]\n"
      "\n"
      "commands:\n"
      "  cluster      baseline (or custom) cluster power summary\n"
      "  table3       paper Table 3: savings vs proportionality/bandwidth\n"
      "  fig3         paper Figure 3: fixed-workload speedup series\n"
      "  fig4         paper Figure 4: fixed-ratio speedup series\n"
      "  savings      one savings cell: --prop P [--gbps B]\n"
      "  sensitivity  headline metrics vs modeling assumptions\n"
      "  faults       fault-injection resilience run on a tailored fabric\n"
      "  mech         composed Sec. 4 mechanism stack on an ML fat tree\n"
      "  telemetry    faults scenario with full tracing/sampling, summarized\n"
      "\n"
      "flags: --gpus N --gbps B --ratio R --prop P --csv\n"
      "faults flags: --mtbf S --mttr S --seed N --headroom H\n"
      "              --policy none|wake-all|re-tailor\n"
      "mech flags:   --stack all|dynamic|tailor|park|rate --iters N\n"
      "              --volume GBIT --horizon S --ocs N\n"
      "              --pod-budget W --core-budget W   per-domain average-\n"
      "                                       power budgets (0 = unbudgeted)\n"
      "backend (faults/mech):\n"
      "              --backend single|sharded simulator backend (sharded\n"
      "                                       faults runs the k=4 fat tree;\n"
      "                                       the default is leaf-spine)\n"
      "              --shards N               sharded pod shards (>= 1)\n"
      "telemetry outputs (faults/mech/telemetry):\n"
      "              --trace-out FILE.json    Chrome trace (Perfetto)\n"
      "              --metrics-out FILE.json  metrics dump\n"
      "              --sample-period S        time-series cadence\n"
      "snapshots (faults/mech):\n"
      "              --save-state FILE        faults: run to --save-at (default\n"
      "                                       half the fault horizon), snapshot,\n"
      "                                       stop; mech: snapshot the final\n"
      "                                       metric registry after the run\n"
      "              --load-state FILE        faults: restore and continue to\n"
      "                                       the end; mech: restore the metric\n"
      "                                       registry and re-export it\n"
      "              --save-at T              faults snapshot time (seconds)\n");
  return out == stdout ? 0 : 2;
}

bool parse(int argc, char** argv, Options& opt) {
  for (int i = 2; i < argc; ++i) {
    std::string flag = argv[i];
    std::string inline_value;
    bool has_inline_value = false;
    if (const auto eq = flag.find('='); eq != std::string::npos) {
      inline_value = flag.substr(eq + 1);
      flag = flag.substr(0, eq);
      has_inline_value = true;
    }
    if (flag == "--csv") {
      if (has_inline_value) {
        error_out("flag '--csv' takes no value");
        return false;
      }
      opt.csv = true;
      continue;
    }
    // Every other flag takes one value: either inline (--flag=value) or the
    // next argument (--flag value).
    const bool known_flag =
        flag == "--stack" || flag == "--policy" || flag == "--trace-out" ||
        flag == "--metrics-out" || flag == "--gpus" || flag == "--gbps" ||
        flag == "--ratio" || flag == "--prop" || flag == "--mtbf" ||
        flag == "--mttr" || flag == "--headroom" || flag == "--seed" ||
        flag == "--iters" || flag == "--volume" || flag == "--horizon" ||
        flag == "--ocs" || flag == "--pod-budget" ||
        flag == "--core-budget" || flag == "--sample-period" ||
        flag == "--save-state" || flag == "--load-state" ||
        flag == "--save-at" || flag == "--backend" || flag == "--shards";
    if (!known_flag) {
      error_out("unknown flag '" + flag + "' (see 'netpp_cli help')");
      return false;
    }
    if (!has_inline_value && i + 1 >= argc) {
      error_out("flag '" + flag + "' needs a value");
      return false;
    }
    const std::string value_str =
        has_inline_value ? inline_value : std::string{argv[++i]};
    if (flag == "--stack") {
      if (value_str != "all" && value_str != "dynamic" &&
          value_str != "tailor" && value_str != "park" &&
          value_str != "rate") {
        error_out("unknown stack '" + value_str + "'");
        return false;
      }
      opt.scenario.stack = value_str;
      continue;
    }
    if (flag == "--policy") {
      if (value_str == "none") {
        opt.scenario.policy = DegradedPolicy::kNone;
      } else if (value_str == "wake-all") {
        opt.scenario.policy = DegradedPolicy::kEmergencyWakeAll;
      } else if (value_str == "re-tailor") {
        opt.scenario.policy = DegradedPolicy::kRetailor;
      } else {
        error_out("unknown policy '" + value_str + "'");
        return false;
      }
      continue;
    }
    if (flag == "--backend") {
      if (value_str != "single" && value_str != "sharded") {
        error_out("unknown backend '" + value_str +
                  "' (expected single|sharded)");
        return false;
      }
      opt.backend = value_str;
      continue;
    }
    if (flag == "--trace-out") {
      opt.trace_out = value_str;
      continue;
    }
    if (flag == "--metrics-out") {
      opt.metrics_out = value_str;
      continue;
    }
    if (flag == "--save-state") {
      opt.save_state = value_str;
      continue;
    }
    if (flag == "--load-state") {
      opt.load_state = value_str;
      continue;
    }
    char* parse_end = nullptr;
    const double value = std::strtod(value_str.c_str(), &parse_end);
    if (parse_end == value_str.c_str() || *parse_end != '\0') {
      error_out("bad value '" + value_str + "' for flag '" + flag + "'");
      return false;
    }
    if (flag == "--gpus" && value > 0) {
      opt.scenario.cluster.num_gpus = value;
    } else if (flag == "--gbps" && value > 0) {
      opt.scenario.cluster.bandwidth_per_gpu = Gbps{value};
    } else if (flag == "--ratio" && value >= 0 && value <= 1) {
      opt.scenario.cluster.communication_ratio = value;
    } else if (flag == "--prop" && value >= 0 && value <= 1) {
      opt.scenario.prop = value;
    } else if (flag == "--mtbf" && value >= 0) {
      opt.scenario.mtbf_s = value;
    } else if (flag == "--mttr" && value > 0) {
      opt.scenario.mttr_s = value;
    } else if (flag == "--headroom" && value >= 0) {
      opt.scenario.headroom = value;
    } else if (flag == "--seed" && value >= 0) {
      opt.scenario.fault_seed = static_cast<std::uint64_t>(value);
    } else if (flag == "--iters" && value > 0) {
      opt.scenario.mech_iterations = static_cast<int>(value);
    } else if (flag == "--volume" && value > 0) {
      opt.scenario.mech_volume_gbit = value;
    } else if (flag == "--horizon" && value > 0) {
      opt.scenario.mech_horizon_s = value;
    } else if (flag == "--ocs" && value >= 0) {
      opt.scenario.mech_ocs_devices = static_cast<int>(value);
    } else if (flag == "--pod-budget" && value >= 0) {
      opt.scenario.pod_budget_w = value;
    } else if (flag == "--core-budget" && value >= 0) {
      opt.scenario.core_budget_w = value;
    } else if (flag == "--shards" && value >= 1 &&
               value == static_cast<double>(static_cast<std::size_t>(value))) {
      opt.shards = static_cast<std::size_t>(value);
    } else if (flag == "--sample-period" && value >= 0) {
      opt.scenario.sample_period_s = value;
    } else if (flag == "--save-at" && value >= 0) {
      opt.save_at_s = value;
    } else {
      error_out("bad value '" + value_str + "' for flag '" + flag + "'");
      return false;
    }
  }
  return true;
}

/// Validates --backend/--shards into opt.scenario.backend. Returns false
/// (after the one-line diagnostic) on an inconsistent combination.
bool make_backend_config(Options& opt) {
  if (opt.backend == "single" && opt.shards > 1) {
    error_out("--shards " + std::to_string(opt.shards) +
              " requires --backend sharded");
    return false;
  }
  opt.scenario.backend.kind = opt.backend == "sharded" ? BackendKind::kSharded
                                                       : BackendKind::kSingle;
  opt.scenario.backend.num_shards = opt.shards;
  return true;
}

/// Writes the requested trace/metrics files; returns 0, or 1 after printing
/// a one-line diagnostic on the first failing write.
int write_telemetry_outputs(const Options& opt,
                            const telemetry::Telemetry& tel) {
  std::string error;
  if (!opt.trace_out.empty()) {
    const telemetry::TimeSeriesSampler* sampler =
        tel.sampler().enabled() ? &tel.sampler() : nullptr;
    const std::string json = telemetry::to_chrome_trace_json(tel.events(),
                                                             sampler);
    if (!telemetry::write_file(opt.trace_out, json, error)) {
      error_out(error);
      return 1;
    }
  }
  if (!opt.metrics_out.empty()) {
    const std::string json = telemetry::to_metrics_json(tel.metrics());
    if (!telemetry::write_file(opt.metrics_out, json, error)) {
      error_out(error);
      return 1;
    }
  }
  return 0;
}

/// Telemetry bundle for subcommands that honor --trace-out/--metrics-out:
/// null when neither output (nor `force`) was requested.
std::unique_ptr<telemetry::Telemetry> make_cli_telemetry(const Options& opt,
                                                         bool sampled,
                                                         bool force = false) {
  if (!force && opt.trace_out.empty() && opt.metrics_out.empty()) {
    return nullptr;
  }
  telemetry::TelemetryConfig config;
  config.events = true;
  config.sample_period =
      Seconds{sampled ? opt.scenario.sample_period_s : 0.0};
  return std::make_unique<telemetry::Telemetry>(config);
}

int cmd_cluster(const Options& opt) {
  print_table(serve::cluster_summary_table(opt.scenario.cluster), opt.csv);
  return 0;
}

int cmd_table3(const Options& opt) {
  const std::vector<Gbps> bws = {100_Gbps, 200_Gbps, 400_Gbps, 800_Gbps,
                                 1600_Gbps};
  const std::vector<double> props = {0.10, 0.20, 0.50, 0.85, 1.00};
  const auto rows = savings_table(opt.scenario.cluster, bws, props);
  Table table{{"bandwidth_gbps", "p10", "p20", "p50", "p85", "p100"}};
  for (const auto& row : rows) {
    std::vector<std::string> cells{fmt(row.bandwidth.value(), 0)};
    for (const auto& cell : row.cells) {
      cells.push_back(fmt(100.0 * cell.savings_fraction, 2));
    }
    table.add_row(std::move(cells));
  }
  print_table(table, opt.csv);
  return 0;
}

int cmd_fig(const Options& opt, BudgetScenario scenario) {
  const BudgetSolver solver = BudgetSolver::paper_baseline();
  const std::vector<Gbps> bws = {100_Gbps, 200_Gbps, 400_Gbps, 800_Gbps,
                                 1600_Gbps};
  std::vector<double> props;
  for (int i = 0; i <= 20; ++i) props.push_back(i * 0.05);
  const auto series = scenario == BudgetScenario::kFixedWorkload
                          ? fixed_workload_speedup(solver, bws, props)
                          : fixed_ratio_speedup(solver, bws, props);
  Table table{
      {"proportionality", "s100", "s200", "s400", "s800", "s1600"}};
  for (std::size_t i = 0; i < props.size(); ++i) {
    std::vector<std::string> row{fmt(props[i], 2)};
    for (const auto& s : series) {
      row.push_back(fmt(100.0 * s.points[i].speedup, 2));
    }
    table.add_row(std::move(row));
  }
  print_table(table, opt.csv);
  return 0;
}

int cmd_savings(const Options& opt) {
  print_table(
      serve::savings_cell_table(opt.scenario.cluster, opt.scenario.prop),
      opt.csv);
  return 0;
}

int cmd_sensitivity(const Options& opt) {
  Table table{{"parameter", "value", "net_share_pct", "efficiency_pct",
               "savings50_pct", "savings85_pct"}};
  for (const auto& p : run_sensitivity(make_paper_sensitivity_suite())) {
    table.add_row({p.parameter, fmt(p.value, 2),
                   fmt(100.0 * p.metrics.network_share, 2),
                   fmt(100.0 * p.metrics.network_efficiency, 2),
                   fmt(100.0 * p.metrics.savings_at_50, 2),
                   fmt(100.0 * p.metrics.savings_at_85, 2)});
  }
  print_table(table, opt.csv);
  return 0;
}

FaultExperimentResult run_canned_fault_scenario(const Options& opt,
                                                telemetry::Telemetry* tel) {
  const serve::CannedFaultScenario s =
      serve::make_canned_fault_scenario(opt.scenario, tel);
  return run_fault_experiment(s.topo, s.workload, s.schedule, s.config);
}

int cmd_faults(Options& opt) {
  if (!opt.save_state.empty() && !opt.load_state.empty()) {
    return error_out("--save-state and --load-state are mutually exclusive");
  }
  if (!make_backend_config(opt)) return 2;
  const auto tel = make_cli_telemetry(opt, /*sampled=*/true);
  FaultExperimentResult result;
  try {
    if (!opt.save_state.empty()) {
      // Run the canned scenario to the snapshot point, serialize everything,
      // and stop: a later --load-state continues bit-identically.
      const serve::CannedFaultScenario s =
          serve::make_canned_fault_scenario(opt.scenario, tel.get());
      const Seconds save_at{opt.save_at_s >= 0.0
                                ? opt.save_at_s
                                : s.fault_horizon.value() / 2.0};
      FaultExperimentRun run{s.topo, s.workload, s.schedule, s.config};
      run.run_until(save_at);
      state::SnapshotWriter w;
      run.save_state(w);
      w.write_file(opt.save_state);
      std::printf("saved state at t=%s to %s\n", to_string(save_at).c_str(),
                  opt.save_state.c_str());
      return 0;
    }
    if (!opt.load_state.empty()) {
      const serve::CannedFaultScenario s =
          serve::make_canned_fault_scenario(opt.scenario, tel.get());
      auto r = state::SnapshotReader::from_file(opt.load_state);
      FaultExperimentRun run{s.topo, s.workload, s.schedule, s.config, r};
      if (!r.at_end()) {
        throw std::invalid_argument(
            "SnapshotReader: trailing bytes after the experiment snapshot");
      }
      run.run();
      result = run.finish();
    } else {
      result = run_canned_fault_scenario(opt, tel.get());
    }
  } catch (const std::exception& e) {
    return error_out(e.what());
  }
  print_table(serve::faults_summary_table(result), opt.csv);
  if (tel != nullptr) return write_telemetry_outputs(opt, *tel);
  return 0;
}

int cmd_telemetry(const Options& opt) {
  // Telemetry demo: the faults scenario with every instrument attached,
  // summarized. --trace-out / --metrics-out save the artifacts. The sharded
  // backend keeps the netsim registry per shard, so this demo (which reads
  // the shared registry) is single-backend only.
  if (opt.backend != "single" || opt.shards != 1) {
    return error_out("'telemetry' supports only --backend single");
  }
  const auto tel =
      make_cli_telemetry(opt, /*sampled=*/true, /*force=*/true);
  const auto result = run_canned_fault_scenario(opt, tel.get());
  const telemetry::MetricRegistry& m = tel->metrics();

  Table table{{"metric", "value"}};
  table.add_row({"events recorded", std::to_string(tel->events().size())});
  table.add_row({"metrics registered", std::to_string(m.size())});
  table.add_row(
      {"samples taken", std::to_string(tel->sampler().times().size())});
  table.add_row({"sampled series", std::to_string(tel->sampler().num_series())});
  table.add_row({"faults injected",
                 std::to_string(m.counter_value("faults.injected"))});
  table.add_row({"solver full solves",
                 std::to_string(m.counter_value("netsim.realloc.full_solves"))});
  table.add_row({"route-cache hits",
                 std::to_string(m.counter_value("netsim.route_cache.hits"))});
  table.add_row({"route-cache misses",
                 std::to_string(m.counter_value("netsim.route_cache.misses"))});
  table.add_row({"flows completed",
                 fmt(m.gauge_value("netsim.completed_flows"), 0)});
  table.add_row({"energy vs all-on",
                 fmt_percent(m.gauge_value("faults.energy_vs_baseline"), 1)});
  table.add_row({"availability", fmt_percent(result.report.availability, 2)});
  print_table(table, opt.csv);
  return write_telemetry_outputs(opt, *tel);
}

int cmd_mech(Options& opt) {
  if (!opt.save_state.empty() && !opt.load_state.empty()) {
    return error_out("--save-state and --load-state are mutually exclusive");
  }
  if (!make_backend_config(opt)) return 2;
  if (!opt.load_state.empty()) {
    // Offline restore: load a saved metric registry into a fresh bundle and
    // re-export it, without re-running the simulation.
    try {
      telemetry::MetricRegistry metrics;
      auto r = state::SnapshotReader::from_file(opt.load_state);
      metrics.restore_state(r);
      if (!r.at_end()) {
        throw std::invalid_argument(
            "SnapshotReader: trailing bytes after the metrics snapshot");
      }
      Table table{{"metric", "value"}};
      table.add_row({"metrics restored", std::to_string(metrics.size())});
      table.add_row(
          {"combined savings",
           fmt_percent(metrics.gauge_value("composite.combined_savings"), 2)});
      print_table(table, opt.csv);
      if (!opt.metrics_out.empty()) {
        std::string error;
        const std::string json = telemetry::to_metrics_json(metrics);
        if (!telemetry::write_file(opt.metrics_out, json, error)) {
          return error_out(error);
        }
      }
      return 0;
    } catch (const std::exception& e) {
      return error_out(e.what());
    }
  }
  // The canned scenario (and the summary rendering below) are shared with
  // netpp_serve — serve/scenarios.h is the single definition of both.
  serve::CannedMechScenario s = serve::make_canned_mech_scenario(opt.scenario);
  // --save-state needs a registry to snapshot even without --metrics-out.
  const auto tel = make_cli_telemetry(opt, /*sampled=*/false,
                                      /*force=*/!opt.save_state.empty());
  s.config.telemetry = tel.get();

  CompositeReport report;
  try {
    report = run_composite(s.topo, s.workload, s.demands, s.horizon,
                           s.config);
  } catch (const std::exception& e) {
    return error_out(e.what());
  }
  print_table(serve::mech_summary_table(opt.scenario.stack, report), opt.csv);
  if (!opt.save_state.empty()) {
    try {
      state::SnapshotWriter w;
      tel->metrics().save_state(w);
      w.write_file(opt.save_state);
    } catch (const std::exception& e) {
      return error_out(e.what());
    }
    std::printf("saved metric registry to %s\n", opt.save_state.c_str());
  }
  if (tel != nullptr) return write_telemetry_outputs(opt, *tel);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return error_out("missing command (see 'netpp_cli help')");
  const std::string command = argv[1];
  if (command == "help" || command == "--help" || command == "-h") {
    return usage(stdout);
  }
  Options opt;
  if (!parse(argc, argv, opt)) return 2;

  if (command == "cluster") return cmd_cluster(opt);
  if (command == "table3") return cmd_table3(opt);
  if (command == "fig3") return cmd_fig(opt, BudgetScenario::kFixedWorkload);
  if (command == "fig4") return cmd_fig(opt, BudgetScenario::kFixedCommRatio);
  if (command == "savings") return cmd_savings(opt);
  if (command == "sensitivity") return cmd_sensitivity(opt);
  if (command == "faults") return cmd_faults(opt);
  if (command == "mech") return cmd_mech(opt);
  if (command == "telemetry") return cmd_telemetry(opt);
  return error_out("unknown command '" + command + "' (see 'netpp_cli help')");
}
