// netpp command-line interface: the paper's analyses as a shell tool, with
// ASCII or CSV output for scripting and plotting.
//
//   netpp_cli cluster [--gpus N] [--gbps B] [--ratio R] [--prop P]
//   netpp_cli table3 [--csv]
//   netpp_cli fig3 [--csv]
//   netpp_cli fig4 [--csv]
//   netpp_cli savings --prop P [--gbps B] [cluster flags]
//   netpp_cli sensitivity [--csv]
//   netpp_cli faults [--mtbf S] [--mttr S] [--seed N]
//                    [--policy none|wake-all|re-tailor] [--headroom H] [--csv]
//                    [--trace-out F] [--metrics-out F] [--sample-period S]
//                    [--save-state F [--save-at T]] [--load-state F]
//   netpp_cli mech [--stack all|dynamic|tailor|park|rate] [--iters N]
//                  [--volume GBIT] [--horizon S] [--ocs N] [--csv]
//                  [--trace-out F] [--metrics-out F]
//                  [--save-state F] [--load-state F]
//   netpp_cli telemetry [faults flags] [--trace-out F] [--metrics-out F]
//   netpp_cli help
//
// Flags accept both `--flag value` and `--flag=value`. Every error path
// prints a single `netpp_cli: error: ...` line to stderr and exits non-zero.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "netpp/analysis/report.h"
#include "netpp/analysis/savings.h"
#include "netpp/analysis/sensitivity.h"
#include "netpp/analysis/speedup.h"
#include "netpp/cluster/cluster.h"
#include "netpp/faults/experiment.h"
#include "netpp/mech/composite.h"
#include "netpp/state/snapshot.h"
#include "netpp/telemetry/export.h"
#include "netpp/telemetry/telemetry.h"
#include "netpp/traffic/generators.h"

namespace {

using namespace netpp;
using namespace netpp::literals;

struct Options {
  ClusterConfig cluster;
  double prop = 0.5;
  bool csv = false;
  // faults subcommand
  double mtbf_s = 10.0;  ///< 0 disables fault injection
  double mttr_s = 0.5;
  double headroom = 0.0;
  std::uint64_t fault_seed = 1;
  DegradedPolicy policy = DegradedPolicy::kRetailor;
  // mech subcommand
  std::string stack = "all";
  int mech_iterations = 4;
  double mech_volume_gbit = 2.0;
  double mech_horizon_s = 4.0;
  int mech_ocs_devices = 4;
  // simulator backend (faults / mech subcommands)
  std::string backend = "single";
  std::size_t shards = 1;
  // telemetry outputs (faults / mech / telemetry subcommands)
  std::string trace_out;
  std::string metrics_out;
  double sample_period_s = 0.02;
  // snapshot save/restore (faults / mech subcommands)
  std::string save_state;
  std::string load_state;
  double save_at_s = -1.0;  ///< <0 means the subcommand default
};

int error_out(const std::string& message) {
  std::fprintf(stderr, "netpp_cli: error: %s\n", message.c_str());
  return 2;
}

void print_table(const Table& table, bool csv) {
  std::printf("%s", csv ? table.to_csv().c_str() : table.to_ascii().c_str());
}

int usage(std::FILE* out) {
  std::fprintf(
      out,
      "usage: netpp_cli <command> [flags]\n"
      "\n"
      "commands:\n"
      "  cluster      baseline (or custom) cluster power summary\n"
      "  table3       paper Table 3: savings vs proportionality/bandwidth\n"
      "  fig3         paper Figure 3: fixed-workload speedup series\n"
      "  fig4         paper Figure 4: fixed-ratio speedup series\n"
      "  savings      one savings cell: --prop P [--gbps B]\n"
      "  sensitivity  headline metrics vs modeling assumptions\n"
      "  faults       fault-injection resilience run on a tailored fabric\n"
      "  mech         composed Sec. 4 mechanism stack on an ML fat tree\n"
      "  telemetry    faults scenario with full tracing/sampling, summarized\n"
      "\n"
      "flags: --gpus N --gbps B --ratio R --prop P --csv\n"
      "faults flags: --mtbf S --mttr S --seed N --headroom H\n"
      "              --policy none|wake-all|re-tailor\n"
      "mech flags:   --stack all|dynamic|tailor|park|rate --iters N\n"
      "              --volume GBIT --horizon S --ocs N\n"
      "backend (faults/mech):\n"
      "              --backend single|sharded simulator backend (sharded\n"
      "                                       faults runs the k=4 fat tree;\n"
      "                                       the default is leaf-spine)\n"
      "              --shards N               sharded pod shards (>= 1)\n"
      "telemetry outputs (faults/mech/telemetry):\n"
      "              --trace-out FILE.json    Chrome trace (Perfetto)\n"
      "              --metrics-out FILE.json  metrics dump\n"
      "              --sample-period S        time-series cadence\n"
      "snapshots (faults/mech):\n"
      "              --save-state FILE        faults: run to --save-at (default\n"
      "                                       half the fault horizon), snapshot,\n"
      "                                       stop; mech: snapshot the final\n"
      "                                       metric registry after the run\n"
      "              --load-state FILE        faults: restore and continue to\n"
      "                                       the end; mech: restore the metric\n"
      "                                       registry and re-export it\n"
      "              --save-at T              faults snapshot time (seconds)\n");
  return out == stdout ? 0 : 2;
}

bool parse(int argc, char** argv, Options& opt) {
  for (int i = 2; i < argc; ++i) {
    std::string flag = argv[i];
    std::string inline_value;
    bool has_inline_value = false;
    if (const auto eq = flag.find('='); eq != std::string::npos) {
      inline_value = flag.substr(eq + 1);
      flag = flag.substr(0, eq);
      has_inline_value = true;
    }
    if (flag == "--csv") {
      if (has_inline_value) {
        error_out("flag '--csv' takes no value");
        return false;
      }
      opt.csv = true;
      continue;
    }
    // Every other flag takes one value: either inline (--flag=value) or the
    // next argument (--flag value).
    const bool known_flag =
        flag == "--stack" || flag == "--policy" || flag == "--trace-out" ||
        flag == "--metrics-out" || flag == "--gpus" || flag == "--gbps" ||
        flag == "--ratio" || flag == "--prop" || flag == "--mtbf" ||
        flag == "--mttr" || flag == "--headroom" || flag == "--seed" ||
        flag == "--iters" || flag == "--volume" || flag == "--horizon" ||
        flag == "--ocs" || flag == "--sample-period" ||
        flag == "--save-state" || flag == "--load-state" ||
        flag == "--save-at" || flag == "--backend" || flag == "--shards";
    if (!known_flag) {
      error_out("unknown flag '" + flag + "' (see 'netpp_cli help')");
      return false;
    }
    if (!has_inline_value && i + 1 >= argc) {
      error_out("flag '" + flag + "' needs a value");
      return false;
    }
    const std::string value_str =
        has_inline_value ? inline_value : std::string{argv[++i]};
    if (flag == "--stack") {
      if (value_str != "all" && value_str != "dynamic" &&
          value_str != "tailor" && value_str != "park" &&
          value_str != "rate") {
        error_out("unknown stack '" + value_str + "'");
        return false;
      }
      opt.stack = value_str;
      continue;
    }
    if (flag == "--policy") {
      if (value_str == "none") {
        opt.policy = DegradedPolicy::kNone;
      } else if (value_str == "wake-all") {
        opt.policy = DegradedPolicy::kEmergencyWakeAll;
      } else if (value_str == "re-tailor") {
        opt.policy = DegradedPolicy::kRetailor;
      } else {
        error_out("unknown policy '" + value_str + "'");
        return false;
      }
      continue;
    }
    if (flag == "--backend") {
      if (value_str != "single" && value_str != "sharded") {
        error_out("unknown backend '" + value_str +
                  "' (expected single|sharded)");
        return false;
      }
      opt.backend = value_str;
      continue;
    }
    if (flag == "--trace-out") {
      opt.trace_out = value_str;
      continue;
    }
    if (flag == "--metrics-out") {
      opt.metrics_out = value_str;
      continue;
    }
    if (flag == "--save-state") {
      opt.save_state = value_str;
      continue;
    }
    if (flag == "--load-state") {
      opt.load_state = value_str;
      continue;
    }
    char* parse_end = nullptr;
    const double value = std::strtod(value_str.c_str(), &parse_end);
    if (parse_end == value_str.c_str() || *parse_end != '\0') {
      error_out("bad value '" + value_str + "' for flag '" + flag + "'");
      return false;
    }
    if (flag == "--gpus" && value > 0) {
      opt.cluster.num_gpus = value;
    } else if (flag == "--gbps" && value > 0) {
      opt.cluster.bandwidth_per_gpu = Gbps{value};
    } else if (flag == "--ratio" && value >= 0 && value <= 1) {
      opt.cluster.communication_ratio = value;
    } else if (flag == "--prop" && value >= 0 && value <= 1) {
      opt.prop = value;
    } else if (flag == "--mtbf" && value >= 0) {
      opt.mtbf_s = value;
    } else if (flag == "--mttr" && value > 0) {
      opt.mttr_s = value;
    } else if (flag == "--headroom" && value >= 0) {
      opt.headroom = value;
    } else if (flag == "--seed" && value >= 0) {
      opt.fault_seed = static_cast<std::uint64_t>(value);
    } else if (flag == "--iters" && value > 0) {
      opt.mech_iterations = static_cast<int>(value);
    } else if (flag == "--volume" && value > 0) {
      opt.mech_volume_gbit = value;
    } else if (flag == "--horizon" && value > 0) {
      opt.mech_horizon_s = value;
    } else if (flag == "--ocs" && value >= 0) {
      opt.mech_ocs_devices = static_cast<int>(value);
    } else if (flag == "--shards" && value >= 1 &&
               value == static_cast<double>(static_cast<std::size_t>(value))) {
      opt.shards = static_cast<std::size_t>(value);
    } else if (flag == "--sample-period" && value >= 0) {
      opt.sample_period_s = value;
    } else if (flag == "--save-at" && value >= 0) {
      opt.save_at_s = value;
    } else {
      error_out("bad value '" + value_str + "' for flag '" + flag + "'");
      return false;
    }
  }
  return true;
}

/// Builds the experiment backend from --backend/--shards. Returns false
/// (after the one-line diagnostic) on an inconsistent combination.
bool make_backend_config(const Options& opt, BackendConfig& backend) {
  if (opt.backend == "single" && opt.shards > 1) {
    error_out("--shards " + std::to_string(opt.shards) +
              " requires --backend sharded");
    return false;
  }
  backend.kind = opt.backend == "sharded" ? BackendKind::kSharded
                                          : BackendKind::kSingle;
  backend.num_shards = opt.shards;
  return true;
}

/// Writes the requested trace/metrics files; returns 0, or 1 after printing
/// a one-line diagnostic on the first failing write.
int write_telemetry_outputs(const Options& opt,
                            const telemetry::Telemetry& tel) {
  std::string error;
  if (!opt.trace_out.empty()) {
    const telemetry::TimeSeriesSampler* sampler =
        tel.sampler().enabled() ? &tel.sampler() : nullptr;
    const std::string json = telemetry::to_chrome_trace_json(tel.events(),
                                                             sampler);
    if (!telemetry::write_file(opt.trace_out, json, error)) {
      error_out(error);
      return 1;
    }
  }
  if (!opt.metrics_out.empty()) {
    const std::string json = telemetry::to_metrics_json(tel.metrics());
    if (!telemetry::write_file(opt.metrics_out, json, error)) {
      error_out(error);
      return 1;
    }
  }
  return 0;
}

/// Telemetry bundle for subcommands that honor --trace-out/--metrics-out:
/// null when neither output (nor `force`) was requested.
std::unique_ptr<telemetry::Telemetry> make_cli_telemetry(const Options& opt,
                                                         bool sampled,
                                                         bool force = false) {
  if (!force && opt.trace_out.empty() && opt.metrics_out.empty()) {
    return nullptr;
  }
  telemetry::TelemetryConfig config;
  config.events = true;
  config.sample_period = Seconds{sampled ? opt.sample_period_s : 0.0};
  return std::make_unique<telemetry::Telemetry>(config);
}

int cmd_cluster(const Options& opt) {
  const ClusterModel cluster{opt.cluster};
  Table table{{"metric", "value"}};
  table.add_row({"GPUs", fmt(opt.cluster.num_gpus, 0)});
  table.add_row(
      {"bandwidth/GPU", to_string(opt.cluster.bandwidth_per_gpu)});
  table.add_row({"switches", fmt(cluster.network().tree.switches, 1)});
  table.add_row({"transceivers", fmt(cluster.network().transceivers, 0)});
  table.add_row(
      {"compute max (MW)",
       fmt(cluster.compute_envelope().max_power().megawatts(), 3)});
  table.add_row(
      {"network max (MW)",
       fmt(cluster.network_envelope().max_power().megawatts(), 3)});
  table.add_row(
      {"average power (MW)", fmt(cluster.average_total_power().megawatts(), 3)});
  table.add_row({"peak power (MW)",
                 fmt(cluster.peak_total_power().megawatts(), 3)});
  table.add_row(
      {"network share", fmt_percent(cluster.network_share_of_average())});
  table.add_row({"network efficiency",
                 fmt_percent(cluster.network_energy_efficiency())});
  print_table(table, opt.csv);
  return 0;
}

int cmd_table3(const Options& opt) {
  const std::vector<Gbps> bws = {100_Gbps, 200_Gbps, 400_Gbps, 800_Gbps,
                                 1600_Gbps};
  const std::vector<double> props = {0.10, 0.20, 0.50, 0.85, 1.00};
  const auto rows = savings_table(opt.cluster, bws, props);
  Table table{{"bandwidth_gbps", "p10", "p20", "p50", "p85", "p100"}};
  for (const auto& row : rows) {
    std::vector<std::string> cells{fmt(row.bandwidth.value(), 0)};
    for (const auto& cell : row.cells) {
      cells.push_back(fmt(100.0 * cell.savings_fraction, 2));
    }
    table.add_row(std::move(cells));
  }
  print_table(table, opt.csv);
  return 0;
}

int cmd_fig(const Options& opt, BudgetScenario scenario) {
  const BudgetSolver solver = BudgetSolver::paper_baseline();
  const std::vector<Gbps> bws = {100_Gbps, 200_Gbps, 400_Gbps, 800_Gbps,
                                 1600_Gbps};
  std::vector<double> props;
  for (int i = 0; i <= 20; ++i) props.push_back(i * 0.05);
  const auto series = scenario == BudgetScenario::kFixedWorkload
                          ? fixed_workload_speedup(solver, bws, props)
                          : fixed_ratio_speedup(solver, bws, props);
  Table table{
      {"proportionality", "s100", "s200", "s400", "s800", "s1600"}};
  for (std::size_t i = 0; i < props.size(); ++i) {
    std::vector<std::string> row{fmt(props[i], 2)};
    for (const auto& s : series) {
      row.push_back(fmt(100.0 * s.points[i].speedup, 2));
    }
    table.add_row(std::move(row));
  }
  print_table(table, opt.csv);
  return 0;
}

int cmd_savings(const Options& opt) {
  const auto cell = savings_at(opt.cluster, opt.cluster.bandwidth_per_gpu,
                               opt.prop,
                               opt.cluster.network_proportionality);
  const CostModel cost;
  Table table{{"metric", "value"}};
  table.add_row({"proportionality", fmt(opt.prop, 2)});
  table.add_row({"savings", fmt_percent(cell.savings_fraction)});
  table.add_row(
      {"absolute (kW)", fmt(cell.absolute_savings.kilowatts(), 1)});
  table.add_row(
      {"electricity ($/yr)",
       fmt(cost.annual_electricity_savings(cell.absolute_savings).value(),
           0)});
  table.add_row(
      {"with cooling ($/yr)",
       fmt(cost.annual_total_savings(cell.absolute_savings).value(), 0)});
  print_table(table, opt.csv);
  return 0;
}

int cmd_sensitivity(const Options& opt) {
  Table table{{"parameter", "value", "net_share_pct", "efficiency_pct",
               "savings50_pct", "savings85_pct"}};
  for (const auto& p : run_sensitivity(make_paper_sensitivity_suite())) {
    table.add_row({p.parameter, fmt(p.value, 2),
                   fmt(100.0 * p.metrics.network_share, 2),
                   fmt(100.0 * p.metrics.network_efficiency, 2),
                   fmt(100.0 * p.metrics.savings_at_50, 2),
                   fmt(100.0 * p.metrics.savings_at_85, 2)});
  }
  print_table(table, opt.csv);
  return 0;
}

/// The canned `faults` scenario pieces: 4x4 leaf-spine fabric, ring
/// all-reduce training traffic, topology tailored to the ring demand before
/// the run (the power-proportional operating point the paper argues for).
/// Kept as data so --save-state/--load-state can rebuild the identical shell
/// around a snapshot.
struct CannedFaultScenario {
  BuiltTopology topo;
  std::vector<FlowSpec> workload;
  FaultSchedule schedule;
  FaultExperimentConfig config;
  Seconds fault_horizon{5.0};
};

CannedFaultScenario make_canned_fault_scenario(const Options& opt,
                                               const BackendConfig& backend,
                                               telemetry::Telemetry* tel) {
  // The sharded backend needs a pod-partitionable fabric (tier-3 core), so
  // it swaps the canned leaf-spine for the k=4 fat tree `mech` runs on.
  CannedFaultScenario s{backend.kind == BackendKind::kSharded
                            ? build_fat_tree(4, 100_Gbps)
                            : build_leaf_spine(4, 4, 4, 100_Gbps, 100_Gbps),
                        {}, {}, {}, Seconds{5.0}};
  s.config.backend = backend;
  MlTrafficConfig traffic;
  traffic.compute_time = Seconds{0.3};
  traffic.comm_allowance = Seconds{0.5};
  traffic.volume_per_host = Bits::from_gigabits(12.0);
  traffic.iterations = 6;
  s.workload = make_ml_training_traffic(s.topo.hosts, traffic).flows;

  s.config.tailor = true;
  s.config.degraded.policy = opt.policy;
  s.config.degraded.min_headroom = opt.headroom;
  s.config.telemetry = tel;
  for (std::size_t i = 0; i < s.topo.hosts.size(); ++i) {
    s.config.demands.push_back(TrafficDemand{
        s.topo.hosts[i], s.topo.hosts[(i + 1) % s.topo.hosts.size()],
        30_Gbps});
  }

  if (opt.mtbf_s > 0.0) {
    FaultGeneratorConfig faults;
    faults.switches =
        DeviceReliability{Seconds{opt.mtbf_s}, Seconds{opt.mttr_s}};
    faults.links =
        DeviceReliability{Seconds{opt.mtbf_s * 2.0}, Seconds{opt.mttr_s}};
    faults.degraded_fraction = 0.25;
    faults.horizon = s.fault_horizon;
    faults.seed = opt.fault_seed;
    s.schedule = FaultGenerator{faults}.generate(s.topo.graph);
  }
  return s;
}

FaultExperimentResult run_canned_fault_scenario(const Options& opt,
                                                const BackendConfig& backend,
                                                telemetry::Telemetry* tel) {
  const CannedFaultScenario s = make_canned_fault_scenario(opt, backend, tel);
  return run_fault_experiment(s.topo, s.workload, s.schedule, s.config);
}

int cmd_faults(const Options& opt) {
  if (!opt.save_state.empty() && !opt.load_state.empty()) {
    return error_out("--save-state and --load-state are mutually exclusive");
  }
  BackendConfig backend;
  if (!make_backend_config(opt, backend)) return 2;
  const auto tel = make_cli_telemetry(opt, /*sampled=*/true);
  FaultExperimentResult result;
  try {
    if (!opt.save_state.empty()) {
      // Run the canned scenario to the snapshot point, serialize everything,
      // and stop: a later --load-state continues bit-identically.
      const CannedFaultScenario s =
          make_canned_fault_scenario(opt, backend, tel.get());
      const Seconds save_at{opt.save_at_s >= 0.0
                                ? opt.save_at_s
                                : s.fault_horizon.value() / 2.0};
      FaultExperimentRun run{s.topo, s.workload, s.schedule, s.config};
      run.run_until(save_at);
      state::SnapshotWriter w;
      run.save_state(w);
      w.write_file(opt.save_state);
      std::printf("saved state at t=%s to %s\n", to_string(save_at).c_str(),
                  opt.save_state.c_str());
      return 0;
    }
    if (!opt.load_state.empty()) {
      const CannedFaultScenario s =
          make_canned_fault_scenario(opt, backend, tel.get());
      auto r = state::SnapshotReader::from_file(opt.load_state);
      FaultExperimentRun run{s.topo, s.workload, s.schedule, s.config, r};
      if (!r.at_end()) {
        throw std::invalid_argument(
            "SnapshotReader: trailing bytes after the experiment snapshot");
      }
      run.run();
      result = run.finish();
    } else {
      result = run_canned_fault_scenario(opt, backend, tel.get());
    }
  } catch (const std::exception& e) {
    return error_out(e.what());
  }
  Table table{{"metric", "value"}};
  table.add_row({"switches parked initially",
                 std::to_string(result.tailoring.powered_off.size())});
  table.add_row({"faults injected",
                 std::to_string(result.report.faults_injected)});
  table.add_row(
      {"flows rerouted", std::to_string(result.report.flows_rerouted)});
  table.add_row(
      {"strand events", std::to_string(result.report.strand_events)});
  table.add_row({"availability", fmt_percent(result.report.availability, 2)});
  table.add_row({"stranded demand (Gbit*s)",
                 fmt(result.report.stranded_demand_gbit_seconds, 3)});
  table.add_row(
      {"mean recovery", to_string(result.report.mean_recovery)});
  table.add_row({"p99 recovery", to_string(result.report.p99_recovery)});
  table.add_row(
      {"completion rate", fmt_percent(result.report.completion_rate, 2)});
  table.add_row({"emergency wakes", std::to_string(result.emergency_wakes)});
  table.add_row({"re-tailor passes", std::to_string(result.retailor_passes)});
  table.add_row(
      {"energy vs all-on", fmt_percent(result.report.energy_delta, 1)});
  const RouteCacheStats& rc = result.realloc.route_cache;
  table.add_row({"route-cache hits", std::to_string(rc.hits)});
  table.add_row({"route-cache misses", std::to_string(rc.misses)});
  table.add_row(
      {"route-cache epoch flushes", std::to_string(rc.epoch_flushes)});
  table.add_row({"route-cache entries", std::to_string(rc.entries)});
  table.add_row({"route-cache resident KiB",
                 fmt(static_cast<double>(rc.pool_bytes) / 1024.0, 1)});
  print_table(table, opt.csv);
  if (tel != nullptr) return write_telemetry_outputs(opt, *tel);
  return 0;
}

int cmd_telemetry(const Options& opt) {
  // Telemetry demo: the faults scenario with every instrument attached,
  // summarized. --trace-out / --metrics-out save the artifacts. The sharded
  // backend keeps the netsim registry per shard, so this demo (which reads
  // the shared registry) is single-backend only.
  if (opt.backend != "single" || opt.shards != 1) {
    return error_out("'telemetry' supports only --backend single");
  }
  const auto tel =
      make_cli_telemetry(opt, /*sampled=*/true, /*force=*/true);
  const auto result = run_canned_fault_scenario(opt, BackendConfig{}, tel.get());
  const telemetry::MetricRegistry& m = tel->metrics();

  Table table{{"metric", "value"}};
  table.add_row({"events recorded", std::to_string(tel->events().size())});
  table.add_row({"metrics registered", std::to_string(m.size())});
  table.add_row(
      {"samples taken", std::to_string(tel->sampler().times().size())});
  table.add_row({"sampled series", std::to_string(tel->sampler().num_series())});
  table.add_row({"faults injected",
                 std::to_string(m.counter_value("faults.injected"))});
  table.add_row({"solver full solves",
                 std::to_string(m.counter_value("netsim.realloc.full_solves"))});
  table.add_row({"route-cache hits",
                 std::to_string(m.counter_value("netsim.route_cache.hits"))});
  table.add_row({"route-cache misses",
                 std::to_string(m.counter_value("netsim.route_cache.misses"))});
  table.add_row({"flows completed",
                 fmt(m.gauge_value("netsim.completed_flows"), 0)});
  table.add_row({"energy vs all-on",
                 fmt_percent(m.gauge_value("faults.energy_vs_baseline"), 1)});
  table.add_row({"availability", fmt_percent(result.report.availability, 2)});
  print_table(table, opt.csv);
  return write_telemetry_outputs(opt, *tel);
}

int cmd_mech(const Options& opt) {
  if (!opt.save_state.empty() && !opt.load_state.empty()) {
    return error_out("--save-state and --load-state are mutually exclusive");
  }
  BackendConfig backend;
  if (!make_backend_config(opt, backend)) return 2;
  if (!opt.load_state.empty()) {
    // Offline restore: load a saved metric registry into a fresh bundle and
    // re-export it, without re-running the simulation.
    try {
      telemetry::MetricRegistry metrics;
      auto r = state::SnapshotReader::from_file(opt.load_state);
      metrics.restore_state(r);
      if (!r.at_end()) {
        throw std::invalid_argument(
            "SnapshotReader: trailing bytes after the metrics snapshot");
      }
      Table table{{"metric", "value"}};
      table.add_row({"metrics restored", std::to_string(metrics.size())});
      table.add_row(
          {"combined savings",
           fmt_percent(metrics.gauge_value("composite.combined_savings"), 2)});
      print_table(table, opt.csv);
      if (!opt.metrics_out.empty()) {
        std::string error;
        const std::string json = telemetry::to_metrics_json(metrics);
        if (!telemetry::write_file(opt.metrics_out, json, error)) {
          return error_out(error);
        }
      }
      return 0;
    } catch (const std::exception& e) {
      return error_out(e.what());
    }
  }
  // Canned scenario: k=4 fat tree at 100 G running phase-structured ML
  // training, with a ring all-reduce demand matrix that tailoring must keep
  // satisfiable. The composed stack (tailoring -> parking -> rate
  // adaptation) is priced against the all-on baseline and against each
  // mechanism alone.
  const BuiltTopology topo = build_fat_tree(4, 100_Gbps);
  MlTrafficConfig traffic;
  traffic.compute_time = Seconds{0.9};
  traffic.comm_allowance = Seconds{0.1};
  traffic.iterations = opt.mech_iterations;
  traffic.volume_per_host = Bits::from_gigabits(opt.mech_volume_gbit);
  const auto workload = make_ml_training_traffic(topo.hosts, traffic).flows;

  CompositeConfig config;
  config.tailor = opt.stack == "all" || opt.stack == "tailor";
  config.park =
      opt.stack == "all" || opt.stack == "dynamic" || opt.stack == "park";
  config.rate_adapt =
      opt.stack == "all" || opt.stack == "dynamic" || opt.stack == "rate";
  config.parking.switch_capacity = Gbps{4 * 100.0};  // 4 ports at 100 G
  config.num_ocs_devices = opt.mech_ocs_devices;
  config.backend = backend;
  // --save-state needs a registry to snapshot even without --metrics-out.
  const auto tel = make_cli_telemetry(opt, /*sampled=*/false,
                                      /*force=*/!opt.save_state.empty());
  config.telemetry = tel.get();

  std::vector<TrafficDemand> demands;
  for (std::size_t i = 0; i < topo.hosts.size(); ++i) {
    demands.push_back(TrafficDemand{topo.hosts[i],
                                    topo.hosts[(i + 1) % topo.hosts.size()],
                                    5_Gbps});
  }

  CompositeReport report;
  try {
    report = run_composite(topo, workload, demands,
                           Seconds{opt.mech_horizon_s}, config);
  } catch (const std::exception& e) {
    return error_out(e.what());
  }
  const MechanismValue value = mechanism_value(
      report.baseline_energy, report.energy, report.horizon);

  Table table{{"metric", "value"}};
  table.add_row({"stack", opt.stack});
  table.add_row({"switches", std::to_string(report.switches_total)});
  table.add_row({"switches tailored off",
                 std::to_string(report.tailoring.powered_off.size())});
  table.add_row({"horizon (s)", fmt(report.horizon.value(), 3)});
  table.add_row(
      {"baseline power (W)", fmt(report.baseline_average_power.value(), 1)});
  table.add_row({"stack power (W)", fmt(report.average_power.value(), 1)});
  table.add_row({"baseline energy (kJ)",
                 fmt(report.baseline_energy.value() / 1e3, 3)});
  table.add_row({"stack energy (kJ)", fmt(report.energy.value() / 1e3, 3)});
  for (const auto& single : report.singles) {
    table.add_row({single.name + " savings", fmt_percent(single.savings, 2)});
  }
  table.add_row(
      {"best single savings", fmt_percent(report.best_single_savings, 2)});
  table.add_row({"combined savings", fmt_percent(report.combined_savings, 2)});
  table.add_row({"wake transitions", std::to_string(report.wake_transitions)});
  table.add_row({"park transitions", std::to_string(report.park_transitions)});
  table.add_row(
      {"level transitions", std::to_string(report.level_transitions)});
  table.add_row({"dropped (Mbit)", fmt(report.dropped.value() / 1e6, 3)});
  for (const auto& d : report.domains) {
    table.add_row({"domain " + d.name + " savings",
                   fmt_percent(d.savings, 2) + " (" +
                       fmt(d.average_power.value(), 1) + " W)"});
  }
  table.add_row(
      {"sustained value ($/yr)", fmt(value.annual_savings.value(), 0)});
  table.add_row({"avoided CO2 (t/yr)", fmt(value.annual_co2_tons, 3)});
  print_table(table, opt.csv);
  if (!opt.save_state.empty()) {
    try {
      state::SnapshotWriter w;
      tel->metrics().save_state(w);
      w.write_file(opt.save_state);
    } catch (const std::exception& e) {
      return error_out(e.what());
    }
    std::printf("saved metric registry to %s\n", opt.save_state.c_str());
  }
  if (tel != nullptr) return write_telemetry_outputs(opt, *tel);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return error_out("missing command (see 'netpp_cli help')");
  const std::string command = argv[1];
  if (command == "help" || command == "--help" || command == "-h") {
    return usage(stdout);
  }
  Options opt;
  if (!parse(argc, argv, opt)) return 2;

  if (command == "cluster") return cmd_cluster(opt);
  if (command == "table3") return cmd_table3(opt);
  if (command == "fig3") return cmd_fig(opt, BudgetScenario::kFixedWorkload);
  if (command == "fig4") return cmd_fig(opt, BudgetScenario::kFixedCommRatio);
  if (command == "savings") return cmd_savings(opt);
  if (command == "sensitivity") return cmd_sensitivity(opt);
  if (command == "faults") return cmd_faults(opt);
  if (command == "mech") return cmd_mech(opt);
  if (command == "telemetry") return cmd_telemetry(opt);
  return error_out("unknown command '" + command + "' (see 'netpp_cli help')");
}
