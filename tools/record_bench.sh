#!/usr/bin/env sh
# One-step regeneration of the checked-in perf reference BENCH_flowsim.json:
# configures a Release build (Google Benchmark built from source so
# library_build_type records "release"), builds the gate binaries, then
# records the scale-gate timings plus every scoreboard suite row
# (scoreboard_*_ms, measured by bench_scoreboard itself so later
# bench_scoreboard runs score against numbers from the same binary), the
# sharded 1M-flow gate (sharded_1m_*, measured by bench_flowsim_sharded
# --record), and the telemetry idle overhead as context fields.
#
# The recorded JSON is verified before it is kept: a reference whose
# library_build_type is not "release" (a Debug system libbenchmark crept in)
# is deleted and the script fails, rather than silently checking in numbers
# timed through a Debug harness.
#
# Usage: tools/record_bench.sh [build-dir]   (default: <repo>/build-record)
# Env:   NETPP_RECORD_MIN_TIME  --benchmark_min_time for the record run
#                               (default 0.5 — long enough for stable means)
#        NETPP_RECORD_ALLOW_DEBUG_LIB=1
#                               keep a recording made through a Debug
#                               libbenchmark harness anyway. Only for
#                               machines where the from-source Release build
#                               is unobtainable (FetchContent needs network
#                               access); the JSON stays self-describing via
#                               its library_build_type field.
set -eu

root=$(cd "$(dirname "$0")/.." && pwd)
build=${1:-"$root/build-record"}
min_time=${NETPP_RECORD_MIN_TIME:-0.5}

# NETPP_BENCHMARK_FROM_SOURCE=ON needs network access at configure time;
# fall back to the system package (AUTO) when the fetch fails. The fallback
# can only produce a valid record if the system library happens to be a
# Release build — the library_build_type check below enforces that.
if ! cmake -S "$root" -B "$build" -DCMAKE_BUILD_TYPE=Release \
    -DNETPP_BENCHMARK_FROM_SOURCE=ON; then
  echo "record_bench.sh: from-source benchmark fetch failed;" \
    "falling back to the system library" >&2
  cmake -S "$root" -B "$build" -DCMAKE_BUILD_TYPE=Release \
    -DNETPP_BENCHMARK_FROM_SOURCE=AUTO
fi
cmake --build "$build" -j "$(nproc)" \
  --target bench_flowsim_scale bench_flowsim_sharded \
  bench_telemetry_overhead bench_scoreboard

echo "record_bench.sh: measuring telemetry idle overhead..." >&2
pct=$("$build/bench/bench_telemetry_overhead" --gate-only)

echo "record_bench.sh: measuring scoreboard context rows..." >&2
context_args=""
for kv in $("$build/bench/bench_scoreboard" --record); do
  context_args="$context_args --benchmark_context=$kv"
done

echo "record_bench.sh: measuring sharded 1M gate (1 vs 4 shards)..." >&2
for kv in $("$build/bench/bench_flowsim_sharded" --record); do
  context_args="$context_args --benchmark_context=$kv"
done

echo "record_bench.sh: recording BENCH_flowsim.json..." >&2
# shellcheck disable=SC2086  # context_args is a deliberate word list
"$build/bench/bench_flowsim_scale" \
  --benchmark_format=json \
  --benchmark_out="$root/BENCH_flowsim.json" \
  --benchmark_min_time="$min_time" \
  --benchmark_context=telemetry_idle_overhead_pct="$pct" \
  --benchmark_context=num_threads="$(nproc)" \
  --benchmark_context=num_shards=4 \
  $context_args

# A Debug libbenchmark times every loop through a Debug harness; numbers
# recorded that way are not comparable to Release references. Refuse them
# (NETPP_RECORD_ALLOW_DEBUG_LIB=1 keeps the file, loudly, for machines that
# cannot build the library from source).
if ! grep -q '"library_build_type": "release"' "$root/BENCH_flowsim.json"; then
  if [ "${NETPP_RECORD_ALLOW_DEBUG_LIB:-0}" = "1" ]; then
    echo "record_bench.sh: WARNING - libbenchmark harness is a Debug build;" \
      "keeping the recording because NETPP_RECORD_ALLOW_DEBUG_LIB=1." >&2
  else
    rm -f "$root/BENCH_flowsim.json"
    echo "record_bench.sh: FAIL - libbenchmark was not built Release" \
      "(library_build_type != \"release\"); discarded the recording." >&2
    echo "record_bench.sh: rerun with network access so" \
      "NETPP_BENCHMARK_FROM_SOURCE=ON can fetch and build it from source." >&2
    exit 1
  fi
fi

echo "record_bench.sh: wrote $root/BENCH_flowsim.json" >&2
