#!/usr/bin/env sh
# One-step regeneration of the checked-in perf reference BENCH_flowsim.json:
# configures a Release build (Google Benchmark built from source so
# library_build_type records "release"), builds the gate binaries, then
# records the scale-gate timings plus every scoreboard suite row
# (scoreboard_*_ms, measured by bench_scoreboard itself so later
# bench_scoreboard runs score against numbers from the same binary) and the
# telemetry idle overhead as context fields.
#
# Usage: tools/record_bench.sh [build-dir]   (default: <repo>/build-record)
# Env:   NETPP_RECORD_MIN_TIME  --benchmark_min_time for the record run
#                               (default 0.5 — long enough for stable means)
set -eu

root=$(cd "$(dirname "$0")/.." && pwd)
build=${1:-"$root/build-record"}
min_time=${NETPP_RECORD_MIN_TIME:-0.5}

# NETPP_BENCHMARK_FROM_SOURCE=ON needs network access at configure time;
# fall back to the system package (AUTO) when the fetch fails, since the
# netpp_build_type context field stays the authoritative cross-check.
if ! cmake -S "$root" -B "$build" -DCMAKE_BUILD_TYPE=Release \
    -DNETPP_BENCHMARK_FROM_SOURCE=ON; then
  echo "record_bench.sh: from-source benchmark fetch failed;" \
    "falling back to the system library" >&2
  cmake -S "$root" -B "$build" -DCMAKE_BUILD_TYPE=Release \
    -DNETPP_BENCHMARK_FROM_SOURCE=AUTO
fi
cmake --build "$build" -j "$(nproc)" \
  --target bench_flowsim_scale bench_telemetry_overhead bench_scoreboard

echo "record_bench.sh: measuring telemetry idle overhead..." >&2
pct=$("$build/bench/bench_telemetry_overhead" --gate-only)

echo "record_bench.sh: measuring scoreboard context rows..." >&2
context_args=""
for kv in $("$build/bench/bench_scoreboard" --record); do
  context_args="$context_args --benchmark_context=$kv"
done

echo "record_bench.sh: recording BENCH_flowsim.json..." >&2
# shellcheck disable=SC2086  # context_args is a deliberate word list
"$build/bench/bench_flowsim_scale" \
  --benchmark_format=json \
  --benchmark_out="$root/BENCH_flowsim.json" \
  --benchmark_min_time="$min_time" \
  --benchmark_context=telemetry_idle_overhead_pct="$pct" \
  $context_args

echo "record_bench.sh: wrote $root/BENCH_flowsim.json" >&2
