// Test helper: damages a snapshot file in a controlled way so the CLI error
// tests can feed truncated / corrupted snapshots to netpp_cli and assert the
// one-line "SnapshotReader: ..." rejection contract.
//
//   snapcorrupt <in> <out> truncate <byte-count>
//   snapcorrupt <in> <out> flip <byte-offset>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

int main(int argc, char** argv) {
  if (argc != 5) {
    std::fprintf(stderr,
                 "usage: snapcorrupt <in> <out> truncate <n> | flip <pos>\n");
    return 2;
  }
  std::ifstream in{argv[1], std::ios::binary};
  if (!in) {
    std::fprintf(stderr, "snapcorrupt: cannot read %s\n", argv[1]);
    return 2;
  }
  std::vector<char> bytes{std::istreambuf_iterator<char>{in},
                          std::istreambuf_iterator<char>{}};
  const std::string mode = argv[3];
  const auto arg = static_cast<std::size_t>(std::strtoull(argv[4], nullptr, 10));
  if (mode == "truncate") {
    if (arg > bytes.size()) {
      std::fprintf(stderr, "snapcorrupt: truncation beyond end of file\n");
      return 2;
    }
    bytes.resize(arg);
  } else if (mode == "flip") {
    if (arg >= bytes.size()) {
      std::fprintf(stderr, "snapcorrupt: flip offset beyond end of file\n");
      return 2;
    }
    bytes[arg] = static_cast<char>(bytes[arg] ^ 0x20);
  } else {
    std::fprintf(stderr, "snapcorrupt: unknown mode '%s'\n", mode.c_str());
    return 2;
  }
  std::ofstream out{argv[2], std::ios::binary | std::ios::trunc};
  if (!out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()))) {
    std::fprintf(stderr, "snapcorrupt: cannot write %s\n", argv[2]);
    return 2;
  }
  return 0;
}
