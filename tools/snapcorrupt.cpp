// Test helper: damages a snapshot file in a controlled way so the CLI and
// serve error tests can feed truncated / corrupted snapshots to netpp_cli /
// netpp_serve and assert the one-line "SnapshotReader: ..." rejection
// contract.
//
//   snapcorrupt <in> <out> truncate <byte-count>
//   snapcorrupt <in> <out> flip <byte-offset>
//   snapcorrupt <in> <out> flip-section <section-name>
//
// flip-section walks the snapshot's section framing (u32 name length, name,
// u64 payload length, u32 CRC, payload) and flips the middle payload byte of
// the named section — the targeted way to damage one component of a warm
// baseline image (say, the simulator workspaces) while leaving the header
// and every other section intact, so the reader's per-section CRC check is
// what must catch it.
#include <cstdio>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

namespace {

std::uint32_t read_u32(const std::vector<char>& b, std::size_t pos) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(b[pos + i]))
         << (8 * i);
  }
  return v;
}

std::uint64_t read_u64(const std::vector<char>& b, std::size_t pos) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(b[pos + i]))
         << (8 * i);
  }
  return v;
}

/// Finds the payload range of the first section named `name`. Returns false
/// (with a diagnostic) when the framing is unwalkable or the name is absent.
bool find_section_payload(const std::vector<char>& bytes,
                          const std::string& name, std::size_t& begin,
                          std::size_t& length) {
  constexpr std::size_t kHeader = 8 + 4;  // magic + version
  std::size_t pos = kHeader;
  while (pos + 4 <= bytes.size()) {
    const std::uint32_t name_len = read_u32(bytes, pos);
    if (name_len == 0 || name_len > 255 ||
        pos + 4 + name_len + 12 > bytes.size()) {
      break;
    }
    const std::string section{bytes.data() + pos + 4, name_len};
    const std::uint64_t payload_len = read_u64(bytes, pos + 4 + name_len);
    const std::size_t payload_begin = pos + 4 + name_len + 12;
    if (payload_len > bytes.size() - payload_begin) break;
    if (section == name) {
      begin = payload_begin;
      length = static_cast<std::size_t>(payload_len);
      return true;
    }
    pos = payload_begin + static_cast<std::size_t>(payload_len);
  }
  std::fprintf(stderr, "snapcorrupt: no section named '%s'\n", name.c_str());
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 5) {
    std::fprintf(stderr,
                 "usage: snapcorrupt <in> <out> truncate <n> | flip <pos> |"
                 " flip-section <name>\n");
    return 2;
  }
  std::ifstream in{argv[1], std::ios::binary};
  if (!in) {
    std::fprintf(stderr, "snapcorrupt: cannot read %s\n", argv[1]);
    return 2;
  }
  std::vector<char> bytes{std::istreambuf_iterator<char>{in},
                          std::istreambuf_iterator<char>{}};
  const std::string mode = argv[3];
  if (mode == "truncate") {
    const auto arg =
        static_cast<std::size_t>(std::strtoull(argv[4], nullptr, 10));
    if (arg > bytes.size()) {
      std::fprintf(stderr, "snapcorrupt: truncation beyond end of file\n");
      return 2;
    }
    bytes.resize(arg);
  } else if (mode == "flip") {
    const auto arg =
        static_cast<std::size_t>(std::strtoull(argv[4], nullptr, 10));
    if (arg >= bytes.size()) {
      std::fprintf(stderr, "snapcorrupt: flip offset beyond end of file\n");
      return 2;
    }
    bytes[arg] = static_cast<char>(bytes[arg] ^ 0x20);
  } else if (mode == "flip-section") {
    std::size_t begin = 0;
    std::size_t length = 0;
    if (!find_section_payload(bytes, argv[4], begin, length)) return 2;
    if (length == 0) {
      std::fprintf(stderr, "snapcorrupt: section '%s' has an empty payload\n",
                   argv[4]);
      return 2;
    }
    const std::size_t target = begin + length / 2;
    bytes[target] = static_cast<char>(bytes[target] ^ 0x20);
  } else {
    std::fprintf(stderr, "snapcorrupt: unknown mode '%s'\n", mode.c_str());
    return 2;
  }
  std::ofstream out{argv[2], std::ios::binary | std::ios::trunc};
  if (!out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()))) {
    std::fprintf(stderr, "snapcorrupt: cannot write %s\n", argv[2]);
    return 2;
  }
  return 0;
}
