# netpp_serve --stdin smoke: one process, a mixed NDJSON session covering ok
# envelopes, id echoing, a batch array, typed errors, and malformed JSON —
# one response line per request line, in order.
#
# Usage: cmake -DSERVE=<netpp_serve> -DOUT_DIR=<dir> -P check_serve_stdin.cmake
if(NOT DEFINED SERVE OR NOT DEFINED OUT_DIR)
  message(FATAL_ERROR "check_serve_stdin.cmake needs SERVE, OUT_DIR")
endif()

set(input ${OUT_DIR}/serve_stdin_session.ndjson)
file(WRITE ${input} "\
{\"command\":\"cluster\",\"output\":\"csv\",\"id\":1}
[{\"command\":\"savings\",\"prop\":0.5,\"id\":2},{\"command\":\"mech\",\"iters\":2,\"id\":3}]
{\"command\":\"faults\",\"mttr_s\":0,\"id\":4}
{\"command\":\"warp\",\"id\":5}
{\"command\":\"mech\",\"frobnicate\":1,\"id\":6}
{\"command\":\"faults\",\"backend\":\"single\",\"shards\":4,\"id\":7}
this is not json
{\"command\":\"faults\",\"seed\":\"7\",\"id\":8}
")

execute_process(
  COMMAND ${SERVE} --stdin --stats
  INPUT_FILE ${input}
  RESULT_VARIABLE exit_code
  OUTPUT_VARIABLE stdout_text
  ERROR_VARIABLE stderr_text
)
if(NOT exit_code EQUAL 0)
  message(FATAL_ERROR
    "netpp_serve --stdin failed (${exit_code}): ${stderr_text}")
endif()

# One response line per request line.
string(REGEX REPLACE "\n$" "" trimmed "${stdout_text}")
string(REPLACE "\n" ";" lines "${trimmed}")
list(LENGTH lines num_lines)
if(NOT num_lines EQUAL 8)
  message(FATAL_ERROR
    "expected 8 response lines, got ${num_lines}:\n${stdout_text}")
endif()

# (line index, must-contain literal) pairs pinning the wire contract.
function(expect_line index)
  list(GET lines ${index} line)
  foreach(needle IN LISTS ARGN)
    string(FIND "${line}" "${needle}" found_at)
    if(found_at EQUAL -1)
      message(FATAL_ERROR
        "response ${index} does not contain '${needle}': ${line}")
    endif()
  endforeach()
endfunction()

expect_line(0 "\"ok\":true" "\"id\":1" "\"command\":\"cluster\"")
expect_line(1 "\"id\":2" "\"id\":3" "\"command\":\"savings\""
  "\"command\":\"mech\"")
expect_line(2 "\"ok\":false" "\"id\":4" "\"code\":\"out_of_range\""
  "\"field\":\"mttr_s\"")
expect_line(3 "\"ok\":false" "\"id\":5" "\"code\":\"unknown_command\"")
expect_line(4 "\"ok\":false" "\"id\":6" "\"code\":\"unknown_field\""
  "\"field\":\"frobnicate\"")
expect_line(5 "\"ok\":false" "\"id\":7" "\"code\":\"backend_mismatch\"")
expect_line(6 "\"ok\":false" "\"code\":\"bad_json\"")
expect_line(7 "\"ok\":false" "\"id\":8" "\"code\":\"bad_value\""
  "\"field\":\"seed\"")

# The batch line is an array of two envelopes.
list(GET lines 1 batch)
if(NOT batch MATCHES "^\\[.*\\]$")
  message(FATAL_ERROR "batch response is not a JSON array: ${batch}")
endif()

# --stats lands on stderr, after the listening banner-free stdin session.
string(FIND "${stderr_text}" "netpp_serve: stats: queries=" stats_at)
if(stats_at EQUAL -1)
  message(FATAL_ERROR "expected --stats output on stderr: ${stderr_text}")
endif()
