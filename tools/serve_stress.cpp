// Concurrent-client smoke driver for netpp_serve's socket mode.
//
//   serve_stress --socket PATH [--clients N] [--rounds M]
//
// N clients connect concurrently and each sends M rounds of the same mixed
// query set (analytics, faults, mech, one deliberately-invalid query). The
// driver asserts the protocol invariants that matter under concurrency:
// every request gets exactly one well-formed response envelope, ids echo
// back, the invalid query fails with its documented typed code, and —
// because the engine's warm state is shared across clients — every client
// receives byte-identical payloads for identical queries. Exit 0 on
// success; one diagnostic line and exit 1 on the first violation.
//
// The CI concurrent-client job runs this under ASan/UBSan against a live
// server; it doubles as the protocol-level determinism test.
#include <cstdio>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "netpp/serve/json.h"
#include "netpp/serve/protocol.h"

namespace {

using netpp::serve::JsonKind;
using netpp::serve::JsonValue;

/// The canned query mix. `expect_error` names the typed code the response
/// must carry ("" = must succeed).
struct CannedQuery {
  const char* request;
  const char* expect_error;
};

constexpr CannedQuery kQueries[] = {
    {R"({"command":"cluster","gpus":4096,"output":"csv","id":0})", ""},
    {R"({"command":"savings","prop":0.85,"output":"csv","id":1})", ""},
    {R"({"command":"faults","seed":7,"output":"csv","id":2})", ""},
    {R"({"command":"mech","stack":"dynamic","iters":2,"output":"csv","id":3})",
     ""},
    {R"({"command":"mech","stack":"all","iters":2,"ocs":8,"output":"csv","id":4})",
     ""},
    {R"({"command":"faults","mttr_s":0,"id":5})", "out_of_range"},
};
constexpr std::size_t kNumQueries = sizeof(kQueries) / sizeof(kQueries[0]);

std::mutex g_mutex;
std::vector<std::string> g_reference(kNumQueries);  // first client's payloads
bool g_failed = false;

void fail(const std::string& message) {
  const std::lock_guard<std::mutex> lock{g_mutex};
  std::fprintf(stderr, "serve_stress: %s\n", message.c_str());
  g_failed = true;
}

int connect_to(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

void run_client(const std::string& path, int client, int rounds) {
  const int fd = connect_to(path);
  if (fd < 0) {
    fail("client " + std::to_string(client) + ": connect failed");
    return;
  }
  std::string payload;
  for (int round = 0; round < rounds && !g_failed; ++round) {
    for (std::size_t q = 0; q < kNumQueries; ++q) {
      const CannedQuery& query = kQueries[q];
      try {
        netpp::serve::write_frame(fd, query.request);
        if (!netpp::serve::read_frame(fd, payload)) {
          fail("client " + std::to_string(client) +
               ": server closed mid-conversation");
          break;
        }
        const JsonValue response = netpp::serve::parse_json(payload);
        const JsonValue* ok = response.find("ok");
        const JsonValue* id = response.find("id");
        if (ok == nullptr || ok->kind() != JsonKind::kBool ||
            id == nullptr || id->as_number() != static_cast<double>(q)) {
          fail("client " + std::to_string(client) + " query " +
               std::to_string(q) + ": malformed envelope: " + payload);
          break;
        }
        if (query.expect_error[0] != '\0') {
          const JsonValue* error = response.find("error");
          const JsonValue* code =
              error != nullptr ? error->find("code") : nullptr;
          if (ok->as_bool() || code == nullptr ||
              code->as_string() != query.expect_error) {
            fail("client " + std::to_string(client) + " query " +
                 std::to_string(q) + ": expected " + query.expect_error +
                 ", got: " + payload);
            break;
          }
          continue;
        }
        if (!ok->as_bool()) {
          fail("client " + std::to_string(client) + " query " +
               std::to_string(q) + ": unexpected error: " + payload);
          break;
        }
        const JsonValue* result = response.find("result");
        const JsonValue* body =
            result != nullptr ? result->find("payload") : nullptr;
        if (body == nullptr || body->as_string().empty()) {
          fail("client " + std::to_string(client) + " query " +
               std::to_string(q) + ": empty payload");
          break;
        }
        // Warm state is shared: identical queries must produce identical
        // bytes for every client, every round.
        const std::lock_guard<std::mutex> lock{g_mutex};
        if (g_reference[q].empty()) {
          g_reference[q] = body->as_string();
        } else if (g_reference[q] != body->as_string()) {
          std::fprintf(stderr,
                       "serve_stress: client %d query %zu: payload diverged "
                       "across clients\n",
                       client, q);
          g_failed = true;
          break;
        }
      } catch (const std::exception& e) {
        fail("client " + std::to_string(client) + " query " +
             std::to_string(q) + ": " + e.what());
        break;
      }
    }
  }
  ::close(fd);
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  int clients = 4;
  int rounds = 3;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--socket" && i + 1 < argc) {
      path = argv[++i];
    } else if (flag == "--clients" && i + 1 < argc) {
      clients = std::atoi(argv[++i]);
    } else if (flag == "--rounds" && i + 1 < argc) {
      rounds = std::atoi(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: serve_stress --socket PATH [--clients N] "
                   "[--rounds M]\n");
      return 2;
    }
  }
  if (path.empty() || clients < 1 || rounds < 1) {
    std::fprintf(stderr,
                 "usage: serve_stress --socket PATH [--clients N] "
                 "[--rounds M]\n");
    return 2;
  }
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    workers.emplace_back(run_client, path, c, rounds);
  }
  for (std::thread& worker : workers) worker.join();
  if (g_failed) return 1;
  std::printf("serve_stress: %d clients x %d rounds x %zu queries ok\n",
              clients, rounds, kNumQueries);
  return 0;
}
