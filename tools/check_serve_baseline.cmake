# Warm-baseline save/load round-trip, plus fixture setup for the damaged-
# baseline error tests.
#
#   * --save-baseline writes the default faults baseline image;
#   * --baseline installs it, and a query answered from the installed image
#     must be byte-identical to the in-process (no --baseline) answer;
#   * snapcorrupt then produces truncated / bit-flipped / section-damaged
#     copies for the serve_error_baseline_* tests, which assert that forking
#     a damaged image yields a typed corrupt_baseline rejection instead of
#     taking the server down.
#
# Usage: cmake -DSERVE=<netpp_serve> -DCORRUPT=<snapcorrupt> -DOUT_DIR=<dir>
#              -P check_serve_baseline.cmake
if(NOT DEFINED SERVE OR NOT DEFINED CORRUPT OR NOT DEFINED OUT_DIR)
  message(FATAL_ERROR "check_serve_baseline.cmake needs SERVE, CORRUPT, OUT_DIR")
endif()

set(baseline ${OUT_DIR}/serve_baseline.snap)

function(run_tool out_var)
  execute_process(
    COMMAND ${ARGN}
    RESULT_VARIABLE exit_code
    OUTPUT_VARIABLE stdout_text
    ERROR_VARIABLE stderr_text
  )
  if(NOT exit_code EQUAL 0)
    message(FATAL_ERROR "${ARGN} failed (${exit_code}): ${stderr_text}")
  endif()
  set(${out_var} "${stdout_text}" PARENT_SCOPE)
endfunction()

run_tool(ignored ${SERVE} --save-baseline ${baseline})
if(NOT EXISTS ${baseline})
  message(FATAL_ERROR "--save-baseline did not write ${baseline}")
endif()

# The default faults answer from the installed image vs built in-process.
set(query "{\"command\":\"faults\",\"output\":\"csv\"}")
run_tool(from_file ${SERVE} --baseline ${baseline} --oneshot ${query})
run_tool(in_process ${SERVE} --oneshot ${query})
if(NOT from_file STREQUAL in_process)
  message(FATAL_ERROR
    "answer from the loaded baseline diverged from the in-process one\n"
    "--- loaded ---\n${from_file}\n--- in-process ---\n${in_process}")
endif()

# Damaged copies for the serve_error_baseline_* tests.
foreach(damage
    "truncate;64;serve_baseline_truncated.snap"
    "flip;100;serve_baseline_flipped.snap"
    "flip-section;fault_experiment;serve_baseline_badsection.snap")
  list(GET damage 0 mode)
  list(GET damage 1 arg)
  list(GET damage 2 name)
  execute_process(
    COMMAND ${CORRUPT} ${baseline} ${OUT_DIR}/${name} ${mode} ${arg}
    RESULT_VARIABLE exit_code
    ERROR_VARIABLE stderr_text
  )
  if(NOT exit_code EQUAL 0)
    message(FATAL_ERROR "snapcorrupt ${mode} failed: ${stderr_text}")
  endif()
endforeach()
