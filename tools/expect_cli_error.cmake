# Asserts a CLI-contract error path: non-zero exit plus exactly one
# `<tool>: error: ...` diagnostic line on stderr. PREFIX defaults to the
# netpp_cli contract; netpp_serve's error tests pass their own.
#
# Usage: cmake -DCLI=<path> -DCLI_ARGS=<semicolon-list> -DPATTERN=<regex>
#              [-DPREFIX=<literal>] -P expect_cli_error.cmake
if(NOT DEFINED CLI OR NOT DEFINED CLI_ARGS OR NOT DEFINED PATTERN)
  message(FATAL_ERROR "expect_cli_error.cmake needs CLI, CLI_ARGS, PATTERN")
endif()
if(NOT DEFINED PREFIX)
  set(PREFIX "netpp_cli: error: ")
endif()

execute_process(
  COMMAND ${CLI} ${CLI_ARGS}
  RESULT_VARIABLE exit_code
  OUTPUT_VARIABLE stdout_text
  ERROR_VARIABLE stderr_text
)

if(exit_code EQUAL 0)
  message(FATAL_ERROR
    "expected a non-zero exit from: ${CLI} ${CLI_ARGS}\nstderr: ${stderr_text}")
endif()
string(FIND "${stderr_text}" "${PREFIX}" prefix_at)
if(prefix_at EQUAL -1)
  message(FATAL_ERROR
    "expected a '${PREFIX}' diagnostic, got: ${stderr_text}")
endif()
if(NOT stderr_text MATCHES "${PATTERN}")
  message(FATAL_ERROR
    "stderr does not match '${PATTERN}': ${stderr_text}")
endif()
# One-line contract: a single trailing newline and no embedded ones.
string(REGEX REPLACE "\n$" "" trimmed "${stderr_text}")
if(trimmed MATCHES "\n")
  message(FATAL_ERROR "expected a one-line diagnostic, got: ${stderr_text}")
endif()
