// End-to-end guarantees of the telemetry layer:
//  - attaching telemetry never changes simulation results (purely
//    observational);
//  - registry counters bit-match the legacy realloc_stats() /
//    RouteCacheStats accessors on the same run (they are views of the same
//    slots);
//  - fault experiments produce balanced fault spans and a sampled time
//    series without extending the event horizon.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "netpp/faults/experiment.h"
#include "netpp/mech/composite.h"
#include "netpp/mech/load_trace.h"
#include "netpp/telemetry/telemetry.h"
#include "netpp/topo/builders.h"
#include "netpp/traffic/generators.h"

namespace netpp {
namespace {

using namespace netpp::literals;

std::vector<FlowSpec> canned_workload(const BuiltTopology& topo) {
  MlTrafficConfig cfg;
  cfg.compute_time = Seconds{0.2};
  cfg.comm_allowance = Seconds{0.3};
  cfg.volume_per_host = Bits::from_gigabits(6.0);
  cfg.iterations = 3;
  return make_ml_training_traffic(topo.hosts, cfg).flows;
}

FaultSchedule canned_faults(const BuiltTopology& topo) {
  FaultGeneratorConfig cfg;
  cfg.switches = DeviceReliability{Seconds{3.0}, Seconds{0.4}};
  cfg.links = DeviceReliability{Seconds{6.0}, Seconds{0.4}};
  cfg.degraded_fraction = 0.25;
  cfg.horizon = Seconds{2.0};
  cfg.seed = 11;
  return FaultGenerator{cfg}.generate(topo.graph);
}

FaultExperimentConfig canned_config(const BuiltTopology& topo,
                                    telemetry::Telemetry* tel) {
  FaultExperimentConfig config;
  config.tailor = true;
  config.telemetry = tel;
  for (std::size_t i = 0; i < topo.hosts.size(); ++i) {
    config.demands.push_back(TrafficDemand{
        topo.hosts[i], topo.hosts[(i + 1) % topo.hosts.size()], 20_Gbps});
  }
  return config;
}

TEST(TelemetryIntegration, AttachingTelemetryIsPurelyObservational) {
  const BuiltTopology topo = build_leaf_spine(3, 3, 3, 100_Gbps, 100_Gbps);
  const auto workload = canned_workload(topo);
  const auto schedule = canned_faults(topo);

  telemetry::TelemetryConfig tcfg;
  tcfg.sample_period = Seconds{0.05};
  telemetry::Telemetry tel{tcfg};

  const auto with = run_fault_experiment(topo, workload, schedule,
                                         canned_config(topo, &tel));
  const auto without = run_fault_experiment(topo, workload, schedule,
                                            canned_config(topo, nullptr));

  // Bit-identical outcomes: same end time, same counters, same report.
  EXPECT_EQ(with.end.value(), without.end.value());
  EXPECT_EQ(with.realloc.full_solves, without.realloc.full_solves);
  EXPECT_EQ(with.realloc.reroutes, without.realloc.reroutes);
  EXPECT_EQ(with.realloc.stranded, without.realloc.stranded);
  EXPECT_EQ(with.realloc.route_cache.hits, without.realloc.route_cache.hits);
  EXPECT_EQ(with.report.availability, without.report.availability);
  EXPECT_EQ(with.report.stranded_demand_gbit_seconds,
            without.report.stranded_demand_gbit_seconds);
  EXPECT_EQ(with.fct.mean(), without.fct.mean());
}

TEST(TelemetryIntegration, RegistryCountersBitMatchLegacyAccessors) {
  const BuiltTopology topo = build_leaf_spine(3, 3, 3, 100_Gbps, 100_Gbps);
  telemetry::TelemetryConfig tcfg;
  tcfg.sample_period = Seconds{0.05};
  telemetry::Telemetry tel{tcfg};

  const auto result = run_fault_experiment(topo, canned_workload(topo),
                                           canned_faults(topo),
                                           canned_config(topo, &tel));

  const telemetry::MetricRegistry& m = tel.metrics();
  const FlowSimulator::ReallocStats& rs = result.realloc;
  EXPECT_EQ(m.counter_value("netsim.realloc.full_solves"), rs.full_solves);
  EXPECT_EQ(m.counter_value("netsim.realloc.fast_arrivals"),
            rs.fast_arrivals);
  EXPECT_EQ(m.counter_value("netsim.realloc.fast_departures"),
            rs.fast_departures);
  EXPECT_EQ(m.counter_value("netsim.realloc.binding_solves"),
            rs.binding_solves);
  EXPECT_EQ(m.counter_value("netsim.realloc.binding_subset_flows"),
            rs.binding_subset_flows);
  EXPECT_EQ(m.counter_value("netsim.realloc.topology_changes"),
            rs.topology_changes);
  EXPECT_EQ(m.counter_value("netsim.realloc.reroutes"), rs.reroutes);
  EXPECT_EQ(m.counter_value("netsim.realloc.stranded"), rs.stranded);
  EXPECT_EQ(m.counter_value("netsim.realloc.resumed"), rs.resumed);

  const RouteCacheStats& rc = rs.route_cache;
  EXPECT_EQ(m.counter_value("netsim.route_cache.hits"), rc.hits);
  EXPECT_EQ(m.counter_value("netsim.route_cache.misses"), rc.misses);
  EXPECT_EQ(m.counter_value("netsim.route_cache.epoch_flushes"),
            rc.epoch_flushes);
  EXPECT_EQ(m.gauge_value("netsim.route_cache.entries"),
            static_cast<double>(rc.entries));

  EXPECT_EQ(m.counter_value("faults.emergency_wakes"),
            result.emergency_wakes);
  EXPECT_EQ(m.counter_value("faults.retailor_passes"),
            result.retailor_passes);
  EXPECT_EQ(m.gauge_value("faults.powered_switches"),
            static_cast<double>(result.powered_at_end));
}

TEST(TelemetryIntegration, FaultSpansBalanceAndSamplerRecordsSeries) {
  const BuiltTopology topo = build_leaf_spine(3, 3, 3, 100_Gbps, 100_Gbps);
  telemetry::TelemetryConfig tcfg;
  tcfg.sample_period = Seconds{0.05};
  telemetry::Telemetry tel{tcfg};

  const auto result = run_fault_experiment(topo, canned_workload(topo),
                                           canned_faults(topo),
                                           canned_config(topo, &tel));
  ASSERT_GT(result.report.faults_injected, 0u);

  // Every applied fault opens a "faults" span; every repair closes one.
  // The generator guarantees recovery within the horizon, so they balance.
  std::map<std::uint64_t, int> open;
  std::size_t begins = 0;
  for (const telemetry::TraceEvent& e : tel.events().events()) {
    if (std::string_view{e.category} != "faults") continue;
    if (e.phase == 'b') {
      ++begins;
      ++open[e.id];
    } else if (e.phase == 'e') {
      --open[e.id];
    }
  }
  EXPECT_EQ(begins, result.report.faults_injected);
  for (const auto& [id, depth] : open) {
    EXPECT_EQ(depth, 0) << "unbalanced fault span id " << id;
  }

  // The sampler recorded the experiment's time series without pushing the
  // end time past the run (event-driven sampling).
  const telemetry::TimeSeriesSampler& sampler = tel.sampler();
  EXPECT_GT(sampler.times().size(), 1u);
  EXPECT_LE(sampler.times().back().value(), result.end.value());
  bool found_watts = false;
  for (std::size_t s = 0; s < sampler.num_series(); ++s) {
    if (sampler.series_name(s) == "faults.fabric_watts") found_watts = true;
  }
  EXPECT_TRUE(found_watts);
}

TEST(TelemetryIntegration, MechanismRunRecordsTransitionsAndTotals) {
  // A square load pulse through the stacked policy: parking must wake and
  // park pipelines, and every transition lands in the event log.
  LoadTrace trace;
  trace.times = {Seconds{0.0}, Seconds{1.0}, Seconds{2.0}, Seconds{3.0}};
  trace.loads = {{0.1}, {0.9}, {0.1}, {0.1}};
  trace.end = Seconds{4.0};

  ParkingConfig parking;
  parking.switch_capacity = Gbps{400.0};
  parking.wake_latency = Seconds::from_milliseconds(1.0);
  RateAdaptConfig rate;
  StackedSwitchPolicy policy{parking, rate,
                             StackedSwitchPolicy::Stages{true, true}};

  telemetry::Telemetry tel;
  const MechanismReport report = run_mechanism(trace, policy, &tel);

  std::size_t wake_requests = 0;
  std::size_t wake_cancels = 0;
  std::size_t parks = 0;
  for (const telemetry::TraceEvent& e : tel.events().events()) {
    if (std::string_view{e.category} != "power") continue;
    const std::string_view name{e.name};
    if (name == "power.wake_request" || name == "power.on") ++wake_requests;
    if (name == "power.wake_cancel") ++wake_cancels;
    if (name == "power.park" || name == "power.sleep") ++parks;
  }
  ASSERT_GT(wake_requests, 0u);
  // A cancelled wake is un-counted in the report but stays in the trace.
  EXPECT_EQ(wake_requests - wake_cancels, report.wake_transitions);
  EXPECT_EQ(parks, report.park_transitions);

  const telemetry::MetricRegistry& m = tel.metrics();
  const std::string prefix = "mech." + report.mechanism + ".";
  EXPECT_EQ(m.counter_value(prefix + "wakes"), report.wake_transitions);
  EXPECT_EQ(m.counter_value(prefix + "parks"), report.park_transitions);
  EXPECT_DOUBLE_EQ(m.gauge_value(prefix + "energy_joules"),
                   report.energy.value());
  EXPECT_EQ(m.counter_value("mech.runs"), 1u);
}

}  // namespace
}  // namespace netpp
