#include "netpp/telemetry/metrics.h"

#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>
#include <string>

namespace netpp::telemetry {
namespace {

TEST(MetricRegistry, CounterIncrementsAndReads) {
  MetricRegistry registry;
  Counter c = registry.counter("flows.completed", "flows");
  EXPECT_TRUE(c.attached());
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  EXPECT_EQ(registry.counter_value("flows.completed"), 42u);
}

TEST(MetricRegistry, RegistrationIsIdempotentPerNameAndKind) {
  MetricRegistry registry;
  Counter a = registry.counter("shared");
  Counter b = registry.counter("shared");
  a.inc(3);
  b.inc(4);
  EXPECT_EQ(a.value(), 7u);  // both handles point at the same slot
  EXPECT_EQ(registry.size(), 1u);
}

TEST(MetricRegistry, KindMismatchThrows) {
  MetricRegistry registry;
  registry.counter("x");
  EXPECT_THROW(registry.gauge("x"), std::invalid_argument);
  EXPECT_THROW(registry.histogram("x", {1.0}), std::invalid_argument);
}

TEST(MetricRegistry, EmptyNameThrows) {
  MetricRegistry registry;
  EXPECT_THROW(registry.counter(""), std::invalid_argument);
}

TEST(MetricRegistry, DetachedHandlesAreNoOps) {
  Counter c;
  Gauge g;
  Histogram h;
  EXPECT_FALSE(c.attached());
  c.inc();
  g.set(5.0);
  g.add(1.0);
  h.observe(2.0);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0.0);
  EXPECT_EQ(h.count(), 0u);
}

TEST(MetricRegistry, GaugeSetAndAdd) {
  MetricRegistry registry;
  Gauge g = registry.gauge("util");
  g.set(0.25);
  g.add(0.5);
  EXPECT_DOUBLE_EQ(g.value(), 0.75);
  EXPECT_DOUBLE_EQ(registry.gauge_value("util"), 0.75);
}

TEST(MetricRegistry, HistogramBucketsCountAndStats) {
  MetricRegistry registry;
  Histogram h = registry.histogram("fct", {1.0, 10.0}, "seconds");
  h.observe(0.5);   // bucket 0 (<= 1)
  h.observe(5.0);   // bucket 1 (<= 10)
  h.observe(50.0);  // overflow bucket
  h.observe(1.0);   // boundary lands in bucket 0
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 56.5);

  const auto samples = registry.snapshot();
  ASSERT_EQ(samples.size(), 1u);
  const MetricSample& s = samples[0];
  EXPECT_EQ(s.kind, MetricKind::kHistogram);
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.min, 0.5);
  EXPECT_DOUBLE_EQ(s.max, 50.0);
  ASSERT_EQ(s.buckets.size(), 3u);
  EXPECT_EQ(s.buckets[0], 2u);
  EXPECT_EQ(s.buckets[1], 1u);
  EXPECT_EQ(s.buckets[2], 1u);
}

TEST(MetricRegistry, HistogramBoundsValidated) {
  MetricRegistry registry;
  // Empty bounds are legal: a single catch-all bucket.
  Histogram all = registry.histogram("a", {});
  all.observe(123.0);
  EXPECT_EQ(all.count(), 1u);
  EXPECT_THROW(registry.histogram("b", {1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(registry.histogram("c", {2.0, 1.0}), std::invalid_argument);
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_THROW(registry.histogram("d", {1.0, inf}), std::invalid_argument);
  registry.histogram("ok", {1.0, 2.0});
  // Re-registration with the same bounds is fine; different bounds throw.
  registry.histogram("ok", {1.0, 2.0});
  EXPECT_THROW(registry.histogram("ok", {1.0, 3.0}), std::invalid_argument);
}

TEST(MetricRegistry, SnapshotPreservesRegistrationOrderAndMetadata) {
  MetricRegistry registry;
  registry.counter("first", "events", "the first metric");
  registry.gauge("second", "watts");
  Counter c = registry.counter("first");
  c.inc(9);
  const auto samples = registry.snapshot();
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_EQ(samples[0].name, "first");
  EXPECT_EQ(samples[0].unit, "events");
  EXPECT_EQ(samples[0].help, "the first metric");
  EXPECT_EQ(samples[0].count, 9u);  // exact integer counter value
  EXPECT_DOUBLE_EQ(samples[0].value, 9.0);
  EXPECT_EQ(samples[1].name, "second");
}

TEST(MetricRegistry, LookupsThrowOnMissingOrWrongKind) {
  MetricRegistry registry;
  registry.counter("c");
  EXPECT_THROW(registry.counter_value("missing"), std::out_of_range);
  EXPECT_THROW(registry.gauge_value("c"), std::out_of_range);
}

TEST(MetricRegistry, SlotsSurviveManyRegistrations) {
  // Handles must stay valid while later registrations grow the registry.
  MetricRegistry registry;
  Counter first = registry.counter("metric.0");
  for (int i = 1; i < 200; ++i) {
    registry.counter("metric." + std::to_string(i));
  }
  first.inc(7);
  EXPECT_EQ(registry.counter_value("metric.0"), 7u);
}

}  // namespace
}  // namespace netpp::telemetry
