#include "netpp/telemetry/sampler.h"

#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>

#include "netpp/sim/engine.h"
#include "netpp/telemetry/metrics.h"

namespace netpp::telemetry {
namespace {

TEST(TimeSeriesSampler, DisabledWithoutPeriod) {
  MetricRegistry registry;
  TimeSeriesSampler sampler{registry};
  sampler.track("g");
  EXPECT_FALSE(sampler.enabled());
  EXPECT_FALSE(sampler.due(Seconds{0.0}));
  sampler.maybe_sample(Seconds{0.0});
  EXPECT_TRUE(sampler.times().empty());
}

TEST(TimeSeriesSampler, PeriodValidation) {
  MetricRegistry registry;
  TimeSeriesSampler sampler{registry};
  EXPECT_THROW(sampler.set_period(Seconds{-1.0}), std::invalid_argument);
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_THROW(sampler.set_period(Seconds{inf}), std::invalid_argument);
  sampler.set_period(Seconds{0.5});
  EXPECT_TRUE(sampler.enabled());
}

TEST(TimeSeriesSampler, MaybeSampleHonorsCadence) {
  MetricRegistry registry;
  Gauge g = registry.gauge("load");
  TimeSeriesSampler sampler{registry};
  sampler.set_period(Seconds{1.0});
  sampler.track("load");

  g.set(1.0);
  sampler.maybe_sample(Seconds{0.0});  // first call always samples
  g.set(2.0);
  sampler.maybe_sample(Seconds{0.5});  // not due
  g.set(3.0);
  sampler.maybe_sample(Seconds{1.0});  // due again
  g.set(4.0);
  sampler.maybe_sample(Seconds{1.2});  // not due

  ASSERT_EQ(sampler.times().size(), 2u);
  EXPECT_DOUBLE_EQ(sampler.times()[0].value(), 0.0);
  EXPECT_DOUBLE_EQ(sampler.times()[1].value(), 1.0);
  ASSERT_EQ(sampler.num_series(), 1u);
  EXPECT_EQ(sampler.series_name(0), "load");
  ASSERT_EQ(sampler.series_values(0).size(), 2u);
  EXPECT_DOUBLE_EQ(sampler.series_values(0)[0], 1.0);
  EXPECT_DOUBLE_EQ(sampler.series_values(0)[1], 3.0);
}

TEST(TimeSeriesSampler, DueLetsCallersPrecomputeExpensiveGauges) {
  MetricRegistry registry;
  TimeSeriesSampler sampler{registry};
  sampler.set_period(Seconds{1.0});
  sampler.track("g");
  EXPECT_TRUE(sampler.due(Seconds{0.0}));
  sampler.sample(Seconds{0.0});
  EXPECT_FALSE(sampler.due(Seconds{0.9}));
  EXPECT_TRUE(sampler.due(Seconds{1.0}));
}

TEST(TimeSeriesSampler, TrackingTwiceIsANoOp) {
  MetricRegistry registry;
  TimeSeriesSampler sampler{registry};
  sampler.track("g");
  sampler.track("g");
  EXPECT_EQ(sampler.num_series(), 1u);
}

TEST(TimeSeriesSampler, ConfigurationLockedAfterFirstSample) {
  MetricRegistry registry;
  TimeSeriesSampler sampler{registry};
  sampler.set_period(Seconds{1.0});
  sampler.track("g");
  sampler.sample(Seconds{0.0});
  EXPECT_THROW(sampler.set_period(Seconds{2.0}), std::invalid_argument);
  EXPECT_THROW(sampler.track("h"), std::invalid_argument);
}

TEST(TimeSeriesSampler, ArmSchedulesSelfRearmingSamples) {
  MetricRegistry registry;
  Gauge g = registry.gauge("g");
  TimeSeriesSampler sampler{registry};
  sampler.set_period(Seconds{0.25});
  sampler.track("g");

  SimEngine engine;
  g.set(42.0);
  sampler.arm(engine, Seconds{1.0});
  engine.run();

  // Samples at 0, 0.25, 0.5, 0.75, 1.0 (inclusive of the end).
  ASSERT_EQ(sampler.times().size(), 5u);
  EXPECT_DOUBLE_EQ(sampler.times().back().value(), 1.0);
  for (double v : sampler.series_values(0)) EXPECT_DOUBLE_EQ(v, 42.0);
}

}  // namespace
}  // namespace netpp::telemetry
