#include "netpp/telemetry/export.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <limits>
#include <string>

#include "netpp/telemetry/event_log.h"
#include "netpp/telemetry/metrics.h"
#include "netpp/telemetry/sampler.h"

namespace netpp::telemetry {
namespace {

TEST(ChromeTraceExport, EmitsProcessAndThreadMetadata) {
  EventLog log;
  log.set_enabled(true);
  log.instant("solver", "solve.full", Seconds{1.0}, "flows", 3.0);
  const std::string json = to_chrome_trace_json(log);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"name\":\"netpp\"}"), std::string::npos);
  // The category gets a named thread track.
  EXPECT_NE(json.find("\"thread_name\",\"args\":{\"name\":\"solver\"}"),
            std::string::npos);
}

TEST(ChromeTraceExport, ScalesSecondsToMicrosecondsAndKeepsIds) {
  EventLog log;
  log.set_enabled(true);
  log.begin_span("faults", "fault.link_down", Seconds{0.5}, 42);
  log.end_span("faults", "fault.link_down", Seconds{1.5}, 42);
  const std::string json = to_chrome_trace_json(log);
  // Shortest round-trip doubles: 0.5 s -> 5e+05 us, 1.5 s -> 1500000 us.
  EXPECT_NE(json.find("\"ts\":5e+05"), std::string::npos);
  EXPECT_NE(json.find("\"ts\":1500000"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"b\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"e\""), std::string::npos);
  EXPECT_NE(json.find("\"id\":42"), std::string::npos);
}

TEST(ChromeTraceExport, SamplerSeriesBecomeCounterTracks) {
  EventLog log;
  log.set_enabled(true);
  MetricRegistry registry;
  Gauge g = registry.gauge("watts");
  TimeSeriesSampler sampler{registry};
  sampler.set_period(Seconds{1.0});
  sampler.track("watts");
  g.set(350.0);
  sampler.sample(Seconds{0.0});
  const std::string json = to_chrome_trace_json(log, &sampler);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"watts\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"value\":350}"), std::string::npos);
}

TEST(ChromeTraceExport, EscapesQuotesInNames) {
  EventLog log;
  log.set_enabled(true);
  static const char kName[] = "odd\"name";
  log.instant("cat", kName, Seconds{0.0});
  const std::string json = to_chrome_trace_json(log);
  EXPECT_NE(json.find("odd\\\"name"), std::string::npos);
}

TEST(MetricsJsonExport, SelfDescribingDocument) {
  MetricRegistry registry;
  registry.counter("events.total", "events", "all events").inc(7);
  registry.gauge("load").set(0.5);
  Histogram h = registry.histogram("lat", {1.0, 2.0}, "seconds");
  h.observe(0.5);
  h.observe(3.0);
  const std::string json = to_metrics_json(registry);
  EXPECT_NE(json.find("\"netpp_metrics_version\":1"), std::string::npos);
  // Counters export as exact integers, with metadata.
  EXPECT_NE(json.find("\"name\":\"events.total\",\"kind\":\"counter\","
                      "\"unit\":\"events\",\"help\":\"all events\","
                      "\"value\":7"),
            std::string::npos);
  EXPECT_NE(json.find("\"name\":\"load\",\"kind\":\"gauge\""),
            std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"histogram\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":2"), std::string::npos);
  EXPECT_NE(json.find("\"bounds\":[1,2]"), std::string::npos);
  EXPECT_NE(json.find("\"buckets\":[1,0,1]"), std::string::npos);
}

TEST(MetricsJsonExport, NonFiniteGaugesBecomeNull) {
  MetricRegistry registry;
  registry.gauge("bad").set(std::numeric_limits<double>::quiet_NaN());
  const std::string json = to_metrics_json(registry);
  EXPECT_NE(json.find("\"value\":null"), std::string::npos);
}

TEST(CsvExport, HeaderAndAlignedRows) {
  MetricRegistry registry;
  Gauge a = registry.gauge("a");
  Gauge b = registry.gauge("b");
  TimeSeriesSampler sampler{registry};
  sampler.set_period(Seconds{1.0});
  sampler.track("a");
  sampler.track("b");
  a.set(1.0);
  b.set(2.0);
  sampler.sample(Seconds{0.0});
  a.set(3.0);
  b.set(4.0);
  sampler.sample(Seconds{1.0});
  EXPECT_EQ(to_csv(sampler), "time_s,a,b\n0,1,2\n1,3,4\n");
}

TEST(WriteFile, RoundTripsAndReportsFailures) {
  const std::string path =
      testing::TempDir() + "/netpp_export_test_roundtrip.json";
  std::string error;
  ASSERT_TRUE(write_file(path, "{\"ok\":true}\n", error)) << error;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char buf[64] = {};
  const std::size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_EQ(std::string(buf, n), "{\"ok\":true}\n");

  EXPECT_FALSE(write_file("/nonexistent-dir/x.json", "x", error));
  EXPECT_NE(error.find("/nonexistent-dir/x.json"), std::string::npos);
  EXPECT_EQ(error.find('\n'), std::string::npos);  // one-line diagnostic
}

}  // namespace
}  // namespace netpp::telemetry
