#include "netpp/telemetry/event_log.h"

#include <gtest/gtest.h>

namespace netpp::telemetry {
namespace {

TEST(EventLog, DisabledByDefaultAndRecordsNothing) {
  EventLog log;
  EXPECT_FALSE(log.enabled());
  log.instant("cat", "name", Seconds{1.0});
  log.begin_span("cat", "name", Seconds{1.0}, 7);
  log.end_span("cat", "name", Seconds{2.0}, 7);
  EXPECT_EQ(log.size(), 0u);
}

TEST(EventLog, RecordsInstantsWithAndWithoutArgs) {
  EventLog log;
  log.set_enabled(true);
  log.instant("topology", "link.down", Seconds{0.5});
  log.instant("solver", "solve.full", Seconds{1.5}, "flows", 12.0);
  ASSERT_EQ(log.size(), 2u);

  const TraceEvent& bare = log.events()[0];
  EXPECT_STREQ(bare.category, "topology");
  EXPECT_STREQ(bare.name, "link.down");
  EXPECT_EQ(bare.phase, 'i');
  EXPECT_DOUBLE_EQ(bare.at.value(), 0.5);
  EXPECT_EQ(bare.arg_name, nullptr);

  const TraceEvent& with_arg = log.events()[1];
  EXPECT_STREQ(with_arg.arg_name, "flows");
  EXPECT_DOUBLE_EQ(with_arg.arg_value, 12.0);
}

TEST(EventLog, SpansCarryCorrelationIds) {
  EventLog log;
  log.set_enabled(true);
  log.begin_span("faults", "fault.link_down", Seconds{1.0}, 3, "link", 9.0);
  log.begin_span("faults", "fault.switch_down", Seconds{1.2}, 4);
  log.end_span("faults", "fault.link_down", Seconds{2.0}, 3);
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log.events()[0].phase, 'b');
  EXPECT_EQ(log.events()[0].id, 3u);
  EXPECT_EQ(log.events()[1].id, 4u);
  EXPECT_EQ(log.events()[2].phase, 'e');
  EXPECT_EQ(log.events()[2].id, 3u);
}

TEST(EventLog, ClearEmptiesTheLog) {
  EventLog log;
  log.set_enabled(true);
  log.instant("a", "b", Seconds{0.0});
  ASSERT_EQ(log.size(), 1u);
  log.clear();
  EXPECT_EQ(log.size(), 0u);
  EXPECT_TRUE(log.enabled());  // clearing does not disable
}

TEST(EventLog, ReenablingResumesRecording) {
  EventLog log;
  log.set_enabled(true);
  log.instant("a", "one", Seconds{0.0});
  log.set_enabled(false);
  log.instant("a", "dropped", Seconds{1.0});
  log.set_enabled(true);
  log.instant("a", "two", Seconds{2.0});
  ASSERT_EQ(log.size(), 2u);
  EXPECT_STREQ(log.events()[1].name, "two");
}

}  // namespace
}  // namespace netpp::telemetry
