#include "netpp/cluster/cluster.h"

#include <gtest/gtest.h>

namespace netpp {
namespace {

using namespace netpp::literals;

TEST(ClusterModel, BaselineComputeEnvelope) {
  const ClusterModel cluster{ClusterConfig{}};
  EXPECT_DOUBLE_EQ(cluster.compute_envelope().max_power().megawatts(), 7.5);
  EXPECT_DOUBLE_EQ(cluster.compute_envelope().idle_power().megawatts(),
                   1.125);
}

TEST(ClusterModel, BaselineNetworkInventory) {
  const ClusterModel cluster{ClusterConfig{}};
  const auto& net = cluster.network();
  EXPECT_DOUBLE_EQ(net.nics, 15000.0);
  EXPECT_NEAR(net.tree.switches, 380.0, 5.0);
  EXPECT_GT(net.transceivers, 0.0);
  // NICs: 15000 * 25.4 W = 381 kW.
  EXPECT_NEAR(net.nic_power.kilowatts(), 381.0, 0.1);
}

TEST(ClusterModel, BaselineNetworkShareNearTwelvePercent) {
  const ClusterModel cluster{ClusterConfig{}};
  // Paper §3.1: the network accounts for ~12% of average cluster power.
  EXPECT_NEAR(cluster.network_share_of_average(), 0.12, 0.01);
}

TEST(ClusterModel, BaselineNetworkEfficiencyNearElevenPercent) {
  const ClusterModel cluster{ClusterConfig{}};
  EXPECT_NEAR(cluster.network_energy_efficiency(), 0.11, 0.005);
}

TEST(ClusterModel, BaselineComputeShareOfComputationPhase) {
  // Paper Fig. 2a: GPU&Server ~ 88.1% of the computation-phase power.
  const ClusterModel cluster{ClusterConfig{}};
  const auto comp = cluster.phase_power(Phase::kComputation);
  EXPECT_NEAR(comp.gpu / comp.total(), 0.881, 0.02);
}

TEST(ClusterModel, CommunicationPhaseRoughlyEvenSplit) {
  // Paper Fig. 2a: close to 50/50 during communication.
  const ClusterModel cluster{ClusterConfig{}};
  const auto comm = cluster.phase_power(Phase::kCommunication);
  const double network_share = comm.network_active() / comm.total();
  const double compute_share = comm.idle / comm.total();
  EXPECT_NEAR(network_share + compute_share, 1.0, 1e-12);
  EXPECT_NEAR(network_share, 0.5, 0.1);
}

TEST(ClusterModel, AveragePowerIsDutyWeighted) {
  const ClusterModel cluster{ClusterConfig{}};
  const auto comp = cluster.phase_power(Phase::kComputation).total();
  const auto comm = cluster.phase_power(Phase::kCommunication).total();
  const double r = cluster.config().communication_ratio;
  EXPECT_NEAR(cluster.average_total_power().value(),
              (comp * (1.0 - r) + comm * r).value(), 1e-6);
  EXPECT_NEAR(cluster.average_power().total().value(),
              cluster.average_total_power().value(), 1e-6);
}

TEST(ClusterModel, PeakIsComputationPhaseForBaseline) {
  const ClusterModel cluster{ClusterConfig{}};
  EXPECT_DOUBLE_EQ(
      cluster.peak_total_power().value(),
      cluster.phase_power(Phase::kComputation).total().value());
}

TEST(ClusterModel, ProportionalityOnlyAffectsIdleNetworkPower) {
  const ClusterModel base{ClusterConfig{}};
  const ClusterModel better = base.with_network_proportionality(0.85);
  EXPECT_DOUBLE_EQ(better.network_envelope().max_power().value(),
                   base.network_envelope().max_power().value());
  EXPECT_LT(better.network_envelope().idle_power().value(),
            base.network_envelope().idle_power().value());
  EXPECT_LT(better.average_total_power().value(),
            base.average_total_power().value());
}

TEST(ClusterModel, HigherBandwidthMeansBiggerNetworkPower) {
  ClusterConfig cfg;
  double prev = 0.0;
  for (double bw : {100.0, 200.0, 400.0, 800.0, 1600.0}) {
    cfg.bandwidth_per_gpu = Gbps{bw};
    const ClusterModel cluster{cfg};
    const double net = cluster.network().max_power().value();
    EXPECT_GT(net, prev) << "bw=" << bw;
    prev = net;
  }
}

TEST(ClusterModel, InvalidConfigsThrow) {
  ClusterConfig cfg;
  cfg.num_gpus = 0.0;
  EXPECT_THROW(ClusterModel{cfg}, std::invalid_argument);
  cfg = ClusterConfig{};
  cfg.bandwidth_per_gpu = Gbps{0.0};
  EXPECT_THROW(ClusterModel{cfg}, std::invalid_argument);
  cfg = ClusterConfig{};
  cfg.communication_ratio = 1.5;
  EXPECT_THROW(ClusterModel{cfg}, std::invalid_argument);
  cfg = ClusterConfig{};
  cfg.communication_ratio = -0.1;
  EXPECT_THROW(ClusterModel{cfg}, std::invalid_argument);
  cfg = ClusterConfig{};
  cfg.network_proportionality = 1.01;
  EXPECT_THROW(ClusterModel{cfg}, std::invalid_argument);
}

TEST(ClusterModel, CustomCatalogIsUsed) {
  DeviceCatalog::Config cat_cfg;
  cat_cfg.switch_max = Watts{1500.0};  // twice as hungry
  const DeviceCatalog catalog{cat_cfg};
  ClusterConfig cfg;
  cfg.catalog = &catalog;
  const ClusterModel custom{cfg};
  const ClusterModel standard{ClusterConfig{}};
  EXPECT_NEAR(custom.network().switch_power.value(),
              2.0 * standard.network().switch_power.value(), 1e-6);
}

// Parameterized: across bandwidths and proportionalities, phase powers are
// internally consistent.
struct ClusterParam {
  double bandwidth;
  double proportionality;
};

class ClusterConsistency : public ::testing::TestWithParam<ClusterParam> {};

TEST_P(ClusterConsistency, BreakdownSumsToEnvelopeTotals) {
  ClusterConfig cfg;
  cfg.bandwidth_per_gpu = Gbps{GetParam().bandwidth};
  cfg.network_proportionality = GetParam().proportionality;
  const ClusterModel cluster{cfg};

  const auto comp = cluster.phase_power(Phase::kComputation);
  EXPECT_NEAR(comp.total().value(),
              (cluster.compute_envelope().max_power() +
               cluster.network_envelope().idle_power())
                  .value(),
              1e-6);

  const auto comm = cluster.phase_power(Phase::kCommunication);
  EXPECT_NEAR(comm.total().value(),
              (cluster.compute_envelope().idle_power() +
               cluster.network_envelope().max_power())
                  .value(),
              1e-6);
}

TEST_P(ClusterConsistency, NetworkEnvelopeMatchesInventory) {
  ClusterConfig cfg;
  cfg.bandwidth_per_gpu = Gbps{GetParam().bandwidth};
  cfg.network_proportionality = GetParam().proportionality;
  const ClusterModel cluster{cfg};
  EXPECT_NEAR(cluster.network_envelope().max_power().value(),
              cluster.network().max_power().value(), 1e-6);
  EXPECT_NEAR(cluster.network_envelope().proportionality(),
              GetParam().proportionality, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ClusterConsistency,
    ::testing::Values(ClusterParam{100.0, 0.0}, ClusterParam{100.0, 0.5},
                      ClusterParam{200.0, 0.1}, ClusterParam{400.0, 0.1},
                      ClusterParam{400.0, 0.85}, ClusterParam{800.0, 0.2},
                      ClusterParam{800.0, 1.0}, ClusterParam{1600.0, 0.5},
                      ClusterParam{1600.0, 1.0}));

}  // namespace
}  // namespace netpp
