#include "netpp/units.h"

#include <gtest/gtest.h>

namespace netpp {
namespace {

using namespace netpp::literals;

TEST(Units, WattsArithmetic) {
  const Watts a{100.0};
  const Watts b{50.0};
  EXPECT_DOUBLE_EQ((a + b).value(), 150.0);
  EXPECT_DOUBLE_EQ((a - b).value(), 50.0);
  EXPECT_DOUBLE_EQ((a * 2.0).value(), 200.0);
  EXPECT_DOUBLE_EQ((2.0 * a).value(), 200.0);
  EXPECT_DOUBLE_EQ((a / 4.0).value(), 25.0);
  EXPECT_DOUBLE_EQ(a / b, 2.0);
  EXPECT_DOUBLE_EQ((-a).value(), -100.0);
}

TEST(Units, CompoundAssignment) {
  Watts w{10.0};
  w += Watts{5.0};
  EXPECT_DOUBLE_EQ(w.value(), 15.0);
  w -= Watts{3.0};
  EXPECT_DOUBLE_EQ(w.value(), 12.0);
  w *= 2.0;
  EXPECT_DOUBLE_EQ(w.value(), 24.0);
  w /= 4.0;
  EXPECT_DOUBLE_EQ(w.value(), 6.0);
}

TEST(Units, Comparisons) {
  EXPECT_LT(Watts{1.0}, Watts{2.0});
  EXPECT_GT(Gbps{400.0}, Gbps{100.0});
  EXPECT_EQ(Seconds{1.0}, Seconds{1.0});
  EXPECT_LE(Joules{3.0}, Joules{3.0});
}

TEST(Units, Conversions) {
  EXPECT_DOUBLE_EQ(Watts::from_kilowatts(1.5).value(), 1500.0);
  EXPECT_DOUBLE_EQ(Watts::from_megawatts(2.0).kilowatts(), 2000.0);
  EXPECT_DOUBLE_EQ(Watts{750.0}.megawatts(), 0.00075);
  EXPECT_DOUBLE_EQ(Gbps::from_tbps(51.2).value(), 51200.0);
  EXPECT_DOUBLE_EQ(Gbps{400.0}.tbps(), 0.4);
  EXPECT_DOUBLE_EQ(Gbps{1.0}.bits_per_second(), 1e9);
  EXPECT_DOUBLE_EQ(Seconds::from_hours(2.0).value(), 7200.0);
  EXPECT_DOUBLE_EQ(Seconds::from_milliseconds(1.0).value(), 1e-3);
  EXPECT_DOUBLE_EQ(Seconds::from_microseconds(1.0).value(), 1e-6);
  EXPECT_DOUBLE_EQ(Seconds::from_nanoseconds(1.0).value(), 1e-9);
  EXPECT_DOUBLE_EQ(Joules::from_kilowatt_hours(1.0).value(), 3.6e6);
  EXPECT_DOUBLE_EQ(Joules{3.6e6}.kilowatt_hours(), 1.0);
  EXPECT_DOUBLE_EQ(Bits::from_gigabits(2.0).value(), 2e9);
  EXPECT_DOUBLE_EQ(Bits::from_bytes(1.0).value(), 8.0);
}

TEST(Units, CrossUnitRelations) {
  // 1 kW for 1 hour = 1 kWh.
  const Joules e = Watts::from_kilowatts(1.0) * Seconds::from_hours(1.0);
  EXPECT_DOUBLE_EQ(e.kilowatt_hours(), 1.0);
  EXPECT_DOUBLE_EQ((e / Seconds::from_hours(1.0)).kilowatts(), 1.0);
  EXPECT_DOUBLE_EQ((e / Watts::from_kilowatts(1.0)).hours(), 1.0);

  // 400 Gbps for 1 s moves 400 Gbit.
  const Bits v = Gbps{400.0} * Seconds{1.0};
  EXPECT_DOUBLE_EQ(v.gigabits(), 400.0);
  EXPECT_DOUBLE_EQ((v / Gbps{400.0}).value(), 1.0);
  EXPECT_DOUBLE_EQ((v / Seconds{2.0}).value(), 200.0);
}

TEST(Units, Literals) {
  EXPECT_DOUBLE_EQ((400.0_W).value(), 400.0);
  EXPECT_DOUBLE_EQ((400_W).value(), 400.0);
  EXPECT_DOUBLE_EQ((1.5_kW).value(), 1500.0);
  EXPECT_DOUBLE_EQ((2.0_MW).value(), 2e6);
  EXPECT_DOUBLE_EQ((51.2_Tbps).value(), 51200.0);
  EXPECT_DOUBLE_EQ((400_Gbps).value(), 400.0);
  EXPECT_DOUBLE_EQ((1.0_ms).value(), 1e-3);
  EXPECT_DOUBLE_EQ((5.0_us).value(), 5e-6);
  EXPECT_DOUBLE_EQ((3_s).value(), 3.0);
}

TEST(Units, Formatting) {
  EXPECT_EQ(to_string(Watts{1.5e6}), "1.5 MW");
  EXPECT_EQ(to_string(Watts{750.0}), "750 W");
  EXPECT_EQ(to_string(Gbps{400.0}), "400 Gbps");
  EXPECT_EQ(to_string(Seconds{0.001}), "1 ms");
}

TEST(Units, DefaultIsZero) {
  EXPECT_DOUBLE_EQ(Watts{}.value(), 0.0);
  EXPECT_DOUBLE_EQ(Gbps{}.value(), 0.0);
  EXPECT_DOUBLE_EQ(Seconds{}.value(), 0.0);
  EXPECT_DOUBLE_EQ(Joules{}.value(), 0.0);
}

}  // namespace
}  // namespace netpp
