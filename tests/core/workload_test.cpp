#include "netpp/workload/phase_model.h"

#include <gtest/gtest.h>

namespace netpp {
namespace {

using namespace netpp::literals;

TEST(IterationProfile, BasicAccounting) {
  const IterationProfile p{0.9_s, 0.1_s};
  EXPECT_DOUBLE_EQ(p.iteration_time().value(), 1.0);
  EXPECT_DOUBLE_EQ(p.communication_ratio(), 0.1);
}

TEST(IterationProfile, ZeroIterationHasZeroRatio) {
  const IterationProfile p{0.0_s, 0.0_s};
  EXPECT_DOUBLE_EQ(p.communication_ratio(), 0.0);
}

TEST(WorkloadModel, PaperBaseline) {
  const auto wl = WorkloadModel::paper_baseline();
  EXPECT_DOUBLE_EQ(wl.reference().communication_ratio(), 0.1);
  EXPECT_DOUBLE_EQ(wl.reference_gpus(), 15000.0);
  EXPECT_DOUBLE_EQ(wl.reference_bandwidth().value(), 400.0);
}

TEST(WorkloadModel, FigureOneDoubleGpus) {
  // Paper Fig. 1: 2x GPUs halves the computation phase only.
  const auto wl = WorkloadModel::paper_baseline();
  const auto p = wl.scaled(30000.0, 400_Gbps);
  EXPECT_DOUBLE_EQ(p.computation.value(), 0.45);
  EXPECT_DOUBLE_EQ(p.communication.value(), 0.1);
}

TEST(WorkloadModel, FigureOneHalfBandwidth) {
  // Paper Fig. 1: 0.5x bandwidth doubles the communication phase only;
  // the resulting ratio becomes 0.2/1.1 ~ 18% (the figure's "20%" callout
  // refers to comm vs compute at 2:10... we check the exact model values).
  const auto wl = WorkloadModel::paper_baseline();
  const auto p = wl.scaled(15000.0, 200_Gbps);
  EXPECT_DOUBLE_EQ(p.computation.value(), 0.9);
  EXPECT_DOUBLE_EQ(p.communication.value(), 0.2);
}

TEST(WorkloadModel, ScalingIsLinearInBothResources) {
  const auto wl = WorkloadModel::paper_baseline();
  const auto p = wl.scaled(60000.0, 1600_Gbps);
  EXPECT_DOUBLE_EQ(p.computation.value(), 0.9 / 4.0);
  EXPECT_DOUBLE_EQ(p.communication.value(), 0.1 / 4.0);
}

TEST(WorkloadModel, ReferencePointIsFixedPoint) {
  const auto wl = WorkloadModel::paper_baseline();
  const auto p = wl.scaled(15000.0, 400_Gbps);
  EXPECT_DOUBLE_EQ(p.computation.value(), 0.9);
  EXPECT_DOUBLE_EQ(p.communication.value(), 0.1);
}

TEST(WorkloadModel, FixedRatioKeepsRatioAcrossGpuCounts) {
  const auto wl = WorkloadModel::paper_baseline();
  for (double gpus : {1000.0, 7500.0, 15000.0, 40000.0}) {
    const auto p = wl.scaled_fixed_ratio(gpus);
    EXPECT_NEAR(p.communication_ratio(), 0.1, 1e-12) << "gpus=" << gpus;
    EXPECT_DOUBLE_EQ(p.computation.value(), 0.9 * 15000.0 / gpus);
  }
}

TEST(WorkloadModel, InvalidArgumentsThrow) {
  const auto wl = WorkloadModel::paper_baseline();
  EXPECT_THROW((void)wl.scaled(0.0, 400_Gbps), std::invalid_argument);
  EXPECT_THROW((void)wl.scaled(-5.0, 400_Gbps), std::invalid_argument);
  EXPECT_THROW((void)wl.scaled(100.0, Gbps{0.0}), std::invalid_argument);
  EXPECT_THROW((void)wl.scaled_fixed_ratio(0.0), std::invalid_argument);
  EXPECT_THROW((WorkloadModel{IterationProfile{0.9_s, 0.1_s}, 0.0, 400_Gbps}),
               std::invalid_argument);
  EXPECT_THROW(
      (WorkloadModel{IterationProfile{0.9_s, 0.1_s}, 100.0, Gbps{0.0}}),
      std::invalid_argument);
  EXPECT_THROW(
      (WorkloadModel{IterationProfile{Seconds{-1.0}, 0.1_s}, 1.0, 400_Gbps}),
      std::invalid_argument);
}

TEST(WorkloadModel, FixedRatioWithAllCommReferenceThrows) {
  const WorkloadModel wl{IterationProfile{0.0_s, 1.0_s}, 100.0, 400_Gbps};
  EXPECT_THROW((void)wl.scaled_fixed_ratio(100.0), std::logic_error);
}

// Parameterized sweep: fixed-workload iteration time is monotone
// non-increasing in each resource.
class WorkloadScaling : public ::testing::TestWithParam<double> {};

TEST_P(WorkloadScaling, MoreGpusNeverSlower) {
  const auto wl = WorkloadModel::paper_baseline();
  const Gbps bw{GetParam()};
  double prev = 1e300;
  for (double gpus = 1000.0; gpus <= 256000.0; gpus *= 2.0) {
    const double t = wl.scaled(gpus, bw).iteration_time().value();
    EXPECT_LT(t, prev);
    prev = t;
  }
}

TEST_P(WorkloadScaling, MoreBandwidthNeverSlower) {
  const auto wl = WorkloadModel::paper_baseline();
  double prev = 1e300;
  for (double bw = 50.0; bw <= 3200.0; bw *= 2.0) {
    const double t =
        wl.scaled(GetParam() * 100.0, Gbps{bw}).iteration_time().value();
    EXPECT_LT(t, prev);
    prev = t;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, WorkloadScaling,
                         ::testing::Values(100.0, 200.0, 400.0, 800.0,
                                           1600.0));

}  // namespace
}  // namespace netpp
