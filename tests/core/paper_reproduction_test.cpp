// Integration test: end-to-end reproduction of every quantitative claim in
// the paper's evaluation (§3) from the public API, in one place. If this
// file passes, the headline numbers of the reproduction hold.
#include <gtest/gtest.h>

#include "netpp/analysis/savings.h"
#include "netpp/analysis/speedup.h"
#include "netpp/cluster/cluster.h"
#include "netpp/workload/phase_model.h"

namespace netpp {
namespace {

using namespace netpp::literals;

class PaperReproduction : public ::testing::Test {
 protected:
  ClusterModel baseline_{ClusterConfig{}};
};

// Abstract: "the network ... accounts for a still sizeable fraction of the
// total (12%)".
TEST_F(PaperReproduction, NetworkIsTwelvePercentOfCluster) {
  EXPECT_NEAR(baseline_.network_share_of_average(), 0.12, 0.01);
}

// Abstract: "consumed with an appallingly low efficiency of 11%".
TEST_F(PaperReproduction, NetworkEfficiencyElevenPercent) {
  EXPECT_NEAR(baseline_.network_energy_efficiency(), 0.11, 0.005);
}

// Abstract: "improving network power proportionality to match that of the
// compute, one could save close to 9% of the overall cluster energy".
TEST_F(PaperReproduction, MatchingComputeProportionalitySavesNinePercent) {
  const auto cell = savings_at(ClusterConfig{}, 400_Gbps, 0.85);
  EXPECT_NEAR(cell.savings_fraction, 0.09, 0.01);
}

// §1: "Improving network power proportionality to 50% ... could save around
// 5% of the total cluster power."
TEST_F(PaperReproduction, FiftyPercentProportionalitySavesFivePercent) {
  const auto cell = savings_at(ClusterConfig{}, 400_Gbps, 0.50);
  EXPECT_NEAR(cell.savings_fraction, 0.05, 0.01);
}

// §3.1 / Fig. 2a: compute is 88% of the computation-phase power.
TEST_F(PaperReproduction, ComputationPhaseSplit) {
  const auto comp = baseline_.phase_power(Phase::kComputation);
  EXPECT_NEAR(comp.gpu / comp.total(), 0.88, 0.02);
}

// §3.1: "The split with network power is more even during the communication
// phase, close to 50/50."
TEST_F(PaperReproduction, CommunicationPhaseSplit) {
  const auto comm = baseline_.phase_power(Phase::kCommunication);
  EXPECT_NEAR(comm.network_active() / comm.total(), 0.5, 0.08);
}

// §2.3.1: GPU idle power of 75 W at 500 W max.
TEST_F(PaperReproduction, GpuIdlePower) {
  const auto gpu = baseline_.catalog().gpu_envelope();
  EXPECT_DOUBLE_EQ(gpu.max_power().value(), 500.0);
  EXPECT_DOUBLE_EQ(gpu.idle_power().value(), 75.0);
}

// Table 3, full grid, tolerance 2 pp absolute (our network sizing is a
// reconstruction of the paper's; see EXPERIMENTS.md for the side-by-side).
TEST_F(PaperReproduction, Table3FullGrid) {
  const double paper[5][5] = {
      {0.000, 0.003, 0.012, 0.023, 0.027},  // 100 G
      {0.000, 0.006, 0.025, 0.048, 0.057},  // 200 G
      {0.000, 0.012, 0.047, 0.088, 0.106},  // 400 G
      {0.000, 0.022, 0.087, 0.164, 0.197},  // 800 G
      {0.000, 0.039, 0.156, 0.293, 0.351},  // 1600 G
  };
  const double bws[5] = {100.0, 200.0, 400.0, 800.0, 1600.0};
  const double props[5] = {0.10, 0.20, 0.50, 0.85, 1.00};
  for (int r = 0; r < 5; ++r) {
    for (int c = 0; c < 5; ++c) {
      const auto cell = savings_at(ClusterConfig{}, Gbps{bws[r]}, props[c]);
      EXPECT_NEAR(cell.savings_fraction, paper[r][c], 0.02)
          << "row " << bws[r] << "G col " << props[c];
    }
  }
}

// §3.2: 365 kW average reduction, $416k/yr electricity, $125k/yr cooling.
TEST_F(PaperReproduction, CostEstimates) {
  const auto cell = savings_at(ClusterConfig{}, 400_Gbps, 0.50);
  const CostModel cost;
  EXPECT_NEAR(cell.absolute_savings.kilowatts(), 365.0, 15.0);
  EXPECT_NEAR(cost.annual_electricity_savings(cell.absolute_savings).value(),
              416000.0, 20000.0);
  EXPECT_NEAR(cost.annual_cooling_savings(cell.absolute_savings).value(),
              125000.0, 7000.0);
}

// Fig. 3: the full set of qualitative claims in §3.3 "Fixed Workload".
TEST_F(PaperReproduction, Figure3Claims) {
  const auto solver = BudgetSolver::paper_baseline();
  const std::vector<Gbps> bws = {100_Gbps, 200_Gbps, 400_Gbps, 800_Gbps,
                                 1600_Gbps};
  const std::vector<double> props = {0.0, 0.1, 0.5, 0.9, 0.95, 1.0};
  const auto series = fixed_workload_speedup(solver, bws, props);
  const auto speedup = [&](int bw, int p) {
    return series[bw].points[p].speedup;
  };

  // Baseline (400 G @ 10%) is the zero reference.
  EXPECT_NEAR(speedup(2, 1), 0.0, 1e-4);

  // "lower network bandwidth is faster overall if the network power
  // proportionality is poor" — at p=0 ordering is 200 > 400 > 800 > 1600.
  EXPECT_GT(speedup(1, 0), speedup(2, 0));
  EXPECT_GT(speedup(2, 0), speedup(3, 0));
  EXPECT_GT(speedup(3, 0), speedup(4, 0));

  // "even at 50% proportionality, a 200 Gbps network is still faster than a
  // 400 Gbps one".
  EXPECT_GT(speedup(1, 2), speedup(2, 2));

  // "800 and 1600 Gbps speeds become the best alternatives only at very
  // high proportionality values (> 90%)": at 90% they are not yet the best;
  // at 100% the best bandwidth is >= 800 G.
  int best_at_100 = 0;
  for (int b = 1; b < 5; ++b) {
    if (speedup(b, 5) > speedup(best_at_100, 5)) best_at_100 = b;
  }
  EXPECT_GE(best_at_100, 3);

  int best_at_50 = 0;
  for (int b = 1; b < 5; ++b) {
    if (speedup(b, 2) > speedup(best_at_50, 2)) best_at_50 = b;
  }
  EXPECT_LE(best_at_50, 2);  // at 50%, a low bandwidth still wins
}

// Fig. 4: higher bandwidth benefits more; 800 G @ 50% ~ 10% speedup.
TEST_F(PaperReproduction, Figure4Claims) {
  const auto solver = BudgetSolver::paper_baseline();
  const std::vector<Gbps> bws = {100_Gbps, 200_Gbps, 400_Gbps, 800_Gbps,
                                 1600_Gbps};
  const auto series = fixed_ratio_speedup(solver, bws, {0.25, 0.5, 1.0});
  for (std::size_t p = 0; p < 3; ++p) {
    for (std::size_t b = 1; b < bws.size(); ++b) {
      EXPECT_GT(series[b].points[p].speedup, series[b - 1].points[p].speedup)
          << "p index " << p;
    }
  }
  EXPECT_NEAR(series[3].points[1].speedup, 0.10, 0.03);
}

}  // namespace
}  // namespace netpp
