// Compile-and-smoke test of the umbrella header: every public module is
// reachable from one include and the core objects compose.
#include "netpp/netpp.h"

#include <gtest/gtest.h>

namespace netpp {
namespace {

TEST(Umbrella, CoreTypesCompose) {
  using namespace netpp::literals;
  const ClusterModel cluster{ClusterConfig{}};
  const auto cell = savings_at(ClusterConfig{}, 400_Gbps, 0.85);
  EXPECT_GT(cell.savings_fraction, 0.0);
  EXPECT_GT(cluster.network_share_of_average(), 0.0);

  SimEngine engine;
  const auto topo = build_leaf_spine(2, 2, 2, 100_Gbps, 100_Gbps);
  Router router{topo.graph};
  FlowSimulator sim{topo.graph, router, engine};
  sim.submit(FlowSpec{topo.hosts[0], topo.hosts[2],
                      Bits::from_gigabits(1.0), Seconds{0.0}, 0});
  engine.run();
  EXPECT_EQ(sim.completed().size(), 1u);
  EXPECT_GT(bisection_bandwidth(topo).value(), 0.0);
}

}  // namespace
}  // namespace netpp
