#include "netpp/analysis/overlap.h"

#include <gtest/gtest.h>

namespace netpp {
namespace {

using namespace netpp::literals;

const IterationProfile kBaseline{0.9_s, 0.1_s};

TEST(OverlapModel, ZeroOverlapMatchesPhaseModel) {
  const OverlapModel model{kBaseline, 0.0};
  EXPECT_DOUBLE_EQ(model.iteration().compute_only.value(), 0.9);
  EXPECT_DOUBLE_EQ(model.iteration().overlap.value(), 0.0);
  EXPECT_DOUBLE_EQ(model.iteration().comm_only.value(), 0.1);
  EXPECT_DOUBLE_EQ(model.iteration_speedup(), 0.0);

  const ClusterModel cluster{ClusterConfig{}};
  EXPECT_NEAR(model.average_power(cluster).value(),
              cluster.average_total_power().value(), 1e-6);
  EXPECT_NEAR(model.network_efficiency(cluster),
              cluster.network_energy_efficiency(), 1e-12);
}

TEST(OverlapModel, FullOverlapHidesAllCommunication) {
  const OverlapModel model{kBaseline, 1.0};
  EXPECT_DOUBLE_EQ(model.iteration().comm_only.value(), 0.0);
  EXPECT_DOUBLE_EQ(model.iteration().iteration_time().value(), 0.9);
  EXPECT_NEAR(model.iteration_speedup(), 1.0 / 0.9 - 1.0, 1e-12);
}

TEST(OverlapModel, IntervalsSumToIterationTime) {
  for (double o : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    const OverlapModel model{kBaseline, o};
    const auto& it = model.iteration();
    EXPECT_NEAR(it.iteration_time().value(), 1.0 - 0.1 * o, 1e-12);
    EXPECT_NEAR(it.compute_only.value() + it.overlap.value(), 0.9, 1e-12);
  }
}

TEST(OverlapModel, NetworkActiveFractionGrowsWithOverlap) {
  double prev = 0.0;
  for (double o : {0.0, 0.3, 0.6, 1.0}) {
    const OverlapModel model{kBaseline, o};
    const double active = model.iteration().network_active_fraction();
    EXPECT_GE(active, prev);
    prev = active;
  }
  // With full overlap the network works 0.1 of a 0.9 iteration.
  const OverlapModel full{kBaseline, 1.0};
  EXPECT_NEAR(full.iteration().network_active_fraction(), 0.1 / 0.9, 1e-12);
}

TEST(OverlapModel, EfficiencyImprovesWithOverlap) {
  // More network-active time = better utilization of the fixed idle draw.
  const ClusterModel cluster{ClusterConfig{}};
  double prev = 0.0;
  for (double o : {0.0, 0.5, 1.0}) {
    const OverlapModel model{kBaseline, o};
    const double eff = model.network_efficiency(cluster);
    EXPECT_GT(eff, prev) << "o=" << o;
    prev = eff;
  }
}

TEST(OverlapModel, SavingsStillSubstantialUnderOverlap) {
  // §3.4's claim: overlap reduces but does not eliminate the opportunity.
  const ClusterModel cluster{ClusterConfig{}};
  const OverlapModel none{kBaseline, 0.0};
  const OverlapModel half{kBaseline, 0.5};
  const OverlapModel full{kBaseline, 1.0};
  const double s_none = none.savings_fraction(cluster, 0.85);
  const double s_half = half.savings_fraction(cluster, 0.85);
  const double s_full = full.savings_fraction(cluster, 0.85);
  EXPECT_GT(s_none, s_half);
  EXPECT_GT(s_half, s_full);
  // Even fully-overlapped training keeps most of the savings: the network
  // still idles through (compute - comm) of each iteration.
  EXPECT_GT(s_full, 0.5 * s_none);
}

TEST(OverlapModel, AveragePowerRisesWithOverlap) {
  // Overlap shortens the iteration: the same energy-ish in less time.
  const ClusterModel cluster{ClusterConfig{}};
  const OverlapModel none{kBaseline, 0.0};
  const OverlapModel full{kBaseline, 1.0};
  EXPECT_GT(full.average_power(cluster).value(),
            none.average_power(cluster).value());
}

TEST(OverlapModel, InvalidInputsThrow) {
  EXPECT_THROW((OverlapModel{kBaseline, -0.1}), std::invalid_argument);
  EXPECT_THROW((OverlapModel{kBaseline, 1.1}), std::invalid_argument);
  // More communication than computation cannot be fully hidden.
  const IterationProfile comm_heavy{0.1_s, 0.9_s};
  EXPECT_THROW((OverlapModel{comm_heavy, 1.0}), std::invalid_argument);
  EXPECT_NO_THROW((OverlapModel{comm_heavy, 0.1}));
}

}  // namespace
}  // namespace netpp
