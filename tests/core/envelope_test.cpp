#include "netpp/power/envelope.h"

#include <gtest/gtest.h>

namespace netpp {
namespace {

TEST(PowerEnvelope, ProportionalityDefinition) {
  // Paper eq. 1 on the paper's own example: 500 W max, 85% proportional
  // compute => 75 W idle.
  const auto env = PowerEnvelope::from_proportionality(Watts{500.0}, 0.85);
  EXPECT_DOUBLE_EQ(env.idle_power().value(), 75.0);
  EXPECT_DOUBLE_EQ(env.proportionality(), 0.85);
}

TEST(PowerEnvelope, ZeroProportionalityMeansConstantPower) {
  const auto env = PowerEnvelope::from_proportionality(Watts{750.0}, 0.0);
  EXPECT_DOUBLE_EQ(env.idle_power().value(), 750.0);
  EXPECT_DOUBLE_EQ(env.at_load(0.0).value(), 750.0);
  EXPECT_DOUBLE_EQ(env.at_load(1.0).value(), 750.0);
}

TEST(PowerEnvelope, FullProportionalityMeansZeroIdle) {
  const auto env = PowerEnvelope::from_proportionality(Watts{750.0}, 1.0);
  EXPECT_DOUBLE_EQ(env.idle_power().value(), 0.0);
  EXPECT_DOUBLE_EQ(env.proportionality(), 1.0);
}

TEST(PowerEnvelope, AtLoadInterpolatesAndClamps) {
  const PowerEnvelope env{Watts{100.0}, Watts{20.0}};
  EXPECT_DOUBLE_EQ(env.at_load(0.0).value(), 20.0);
  EXPECT_DOUBLE_EQ(env.at_load(0.5).value(), 60.0);
  EXPECT_DOUBLE_EQ(env.at_load(1.0).value(), 100.0);
  EXPECT_DOUBLE_EQ(env.at_load(-1.0).value(), 20.0);
  EXPECT_DOUBLE_EQ(env.at_load(2.0).value(), 100.0);
}

TEST(PowerEnvelope, ScaledMultipliesBothStates) {
  const PowerEnvelope env{Watts{100.0}, Watts{10.0}};
  const PowerEnvelope big = env.scaled(15000.0);
  EXPECT_DOUBLE_EQ(big.max_power().value(), 1.5e6);
  EXPECT_DOUBLE_EQ(big.idle_power().value(), 1.5e5);
  EXPECT_DOUBLE_EQ(big.proportionality(), env.proportionality());
}

TEST(PowerEnvelope, SumAddsStates) {
  const PowerEnvelope a{Watts{100.0}, Watts{10.0}};
  const PowerEnvelope b{Watts{50.0}, Watts{40.0}};
  const PowerEnvelope sum = a + b;
  EXPECT_DOUBLE_EQ(sum.max_power().value(), 150.0);
  EXPECT_DOUBLE_EQ(sum.idle_power().value(), 50.0);
}

TEST(PowerEnvelope, InvalidArgumentsThrow) {
  EXPECT_THROW((PowerEnvelope{Watts{10.0}, Watts{20.0}}),
               std::invalid_argument);
  EXPECT_THROW((PowerEnvelope{Watts{10.0}, Watts{-1.0}}),
               std::invalid_argument);
  EXPECT_THROW(PowerEnvelope::from_proportionality(Watts{10.0}, -0.1),
               std::invalid_argument);
  EXPECT_THROW(PowerEnvelope::from_proportionality(Watts{10.0}, 1.1),
               std::invalid_argument);
}

TEST(PowerEnvelope, ZeroMaxIsFullyProportional) {
  const PowerEnvelope env{Watts{0.0}, Watts{0.0}};
  EXPECT_DOUBLE_EQ(env.proportionality(), 1.0);
}

TEST(EnergyEfficiency, PaperBaselineNetworkIsElevenPercent) {
  // 10%-proportional network active 10% of the time (paper §3.1: "the
  // energy efficiency of the network infrastructure reaches an appallingly
  // low value of 11%").
  const auto net = PowerEnvelope::from_proportionality(Watts{1.0}, 0.10);
  EXPECT_NEAR(energy_efficiency(net, 0.10), 0.11, 0.001);
}

TEST(EnergyEfficiency, IdealDeviceIsAlwaysFullyEfficient) {
  const auto ideal = PowerEnvelope::from_proportionality(Watts{1.0}, 1.0);
  for (double active : {0.0, 0.1, 0.5, 1.0}) {
    EXPECT_DOUBLE_EQ(energy_efficiency(ideal, active), 1.0);
  }
}

TEST(EnergyEfficiency, AlwaysActiveDeviceIsFullyEfficient) {
  const auto env = PowerEnvelope::from_proportionality(Watts{1.0}, 0.3);
  EXPECT_DOUBLE_EQ(energy_efficiency(env, 1.0), 1.0);
}

// Property sweep: efficiency is monotone increasing in both proportionality
// and activity.
class EfficiencyMonotonicity : public ::testing::TestWithParam<double> {};

TEST_P(EfficiencyMonotonicity, IncreasesWithProportionality) {
  const double active = GetParam();
  double prev = -1.0;
  for (double p = 0.0; p <= 1.0001; p += 0.05) {
    const auto env =
        PowerEnvelope::from_proportionality(Watts{1.0}, std::min(p, 1.0));
    const double eff = energy_efficiency(env, active);
    EXPECT_GE(eff, prev) << "p=" << p << " active=" << active;
    prev = eff;
  }
}

TEST_P(EfficiencyMonotonicity, IncreasesWithActivity) {
  const double p = GetParam();
  const auto env = PowerEnvelope::from_proportionality(Watts{1.0}, p);
  double prev = -1.0;
  for (double active = 0.0; active <= 1.0001; active += 0.05) {
    const double eff = energy_efficiency(env, std::min(active, 1.0));
    EXPECT_GE(eff, prev) << "p=" << p << " active=" << active;
    prev = eff;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, EfficiencyMonotonicity,
                         ::testing::Values(0.05, 0.1, 0.25, 0.5, 0.75, 0.95));

}  // namespace
}  // namespace netpp
