#include "netpp/analysis/savings.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace netpp {
namespace {

using namespace netpp::literals;

TEST(Savings, BaselineCellIsZero) {
  const auto cell = savings_at(ClusterConfig{}, 400_Gbps, 0.10, 0.10);
  EXPECT_DOUBLE_EQ(cell.savings_fraction, 0.0);
  EXPECT_DOUBLE_EQ(cell.absolute_savings.value(), 0.0);
}

TEST(Savings, PaperHeadlineNumbers) {
  // §3.2: ~5% savings at 50% proportionality, ~9% at 85% (400 G cluster).
  const auto at50 = savings_at(ClusterConfig{}, 400_Gbps, 0.50);
  const auto at85 = savings_at(ClusterConfig{}, 400_Gbps, 0.85);
  EXPECT_NEAR(at50.savings_fraction, 0.047, 0.005);
  EXPECT_NEAR(at85.savings_fraction, 0.088, 0.005);
}

TEST(Savings, PaperAbsoluteSavings400G50) {
  // §3.2: "5% power savings convert to an average power draw reduction of
  // 365 kW" for the 400 G case.
  const auto cell = savings_at(ClusterConfig{}, 400_Gbps, 0.50);
  EXPECT_NEAR(cell.absolute_savings.kilowatts(), 365.0, 15.0);
}

TEST(Savings, Table3ShapeHolds) {
  const std::vector<Gbps> bws = {100_Gbps, 200_Gbps, 400_Gbps, 800_Gbps,
                                 1600_Gbps};
  const std::vector<double> props = {0.10, 0.20, 0.50, 0.85, 1.00};
  const auto rows = savings_table(ClusterConfig{}, bws, props);
  ASSERT_EQ(rows.size(), 5u);

  // Within a row, savings grow with proportionality.
  for (const auto& row : rows) {
    ASSERT_EQ(row.cells.size(), 5u);
    for (std::size_t i = 1; i < row.cells.size(); ++i) {
      EXPECT_GT(row.cells[i].savings_fraction,
                row.cells[i - 1].savings_fraction)
          << "bw=" << row.bandwidth.value();
    }
  }
  // Within a column (beyond baseline), savings grow with bandwidth.
  for (std::size_t c = 1; c < props.size(); ++c) {
    for (std::size_t r = 1; r < rows.size(); ++r) {
      EXPECT_GT(rows[r].cells[c].savings_fraction,
                rows[r - 1].cells[c].savings_fraction)
          << "col=" << c;
    }
  }
}

TEST(Savings, Table3SelectedCellsMatchPaper) {
  struct Expected {
    double bw, prop, paper;
  };
  // Paper Table 3 values; tolerance 2 pp absolute (our fat-tree sizing is
  // a reconstruction; orderings are exact, magnitudes within ~2 pp).
  const Expected cells[] = {
      {100.0, 0.20, 0.003},  {100.0, 0.50, 0.012},  {100.0, 1.00, 0.027},
      {200.0, 0.50, 0.025},  {200.0, 0.85, 0.048},  {400.0, 0.20, 0.012},
      {400.0, 0.50, 0.047},  {400.0, 0.85, 0.088},  {400.0, 1.00, 0.106},
      {800.0, 0.50, 0.087},  {800.0, 0.85, 0.164},  {1600.0, 0.50, 0.156},
      {1600.0, 0.85, 0.293}, {1600.0, 1.00, 0.351},
  };
  for (const auto& e : cells) {
    const auto cell = savings_at(ClusterConfig{}, Gbps{e.bw}, e.prop);
    EXPECT_NEAR(cell.savings_fraction, e.paper, 0.02)
        << "bw=" << e.bw << " prop=" << e.prop;
  }
}

TEST(Savings, LowerBaselineProportionalityMeansBiggerSavings) {
  const auto vs10 = savings_at(ClusterConfig{}, 400_Gbps, 0.85, 0.10);
  const auto vs0 = savings_at(ClusterConfig{}, 400_Gbps, 0.85, 0.0);
  EXPECT_GT(vs0.savings_fraction, vs10.savings_fraction);
}

TEST(CostModel, PaperDollarFigures) {
  // §3.2: 365 kW reduction -> ~$416k/year electricity at 13 c/kWh,
  // plus ~30% cooling -> ~$125k/year.
  const CostModel cost;
  const Watts reduction = Watts::from_kilowatts(365.0);
  EXPECT_NEAR(cost.annual_electricity_savings(reduction).value(), 416000.0,
              1000.0);
  EXPECT_NEAR(cost.annual_cooling_savings(reduction).value(), 125000.0,
              1000.0);
  EXPECT_NEAR(cost.annual_total_savings(reduction).value(), 541000.0, 2000.0);
}

TEST(CostModel, ScalesLinearly) {
  const CostModel cost;
  const auto one = cost.annual_total_savings(Watts{1000.0});
  const auto ten = cost.annual_total_savings(Watts{10000.0});
  EXPECT_NEAR(ten.value(), 10.0 * one.value(), 1e-6);
}

TEST(CostModel, CarbonSavings) {
  // 365 kW avg reduction + 30% cooling at 369 g/kWh:
  // 365 * 1.3 * 8760 kWh * 369 g = ~1534 t CO2e per year.
  const CostModel cost;
  EXPECT_NEAR(cost.annual_co2_savings_tons(Watts::from_kilowatts(365.0)),
              365.0 * 1.3 * 8760.0 * 369.0 / 1e6, 1e-6);
  EXPECT_NEAR(cost.annual_co2_savings_tons(Watts::from_kilowatts(365.0)),
              1534.0, 5.0);
}

TEST(CostModel, CarbonScalesWithIntensity) {
  CostModel::Config cfg;
  cfg.grams_co2_per_kwh = 0.0;  // fully renewable grid
  const CostModel green{cfg};
  EXPECT_DOUBLE_EQ(green.annual_co2_savings_tons(Watts{1e6}), 0.0);
}

TEST(CostModel, CustomRates) {
  CostModel::Config cfg;
  cfg.usd_per_kwh = 0.26;  // e.g. European rates
  cfg.cooling_overhead = 0.0;
  const CostModel cost{cfg};
  const Watts reduction = Watts::from_kilowatts(100.0);
  EXPECT_NEAR(cost.annual_electricity_savings(reduction).value(),
              100.0 * 8760.0 * 0.26, 1e-6);
  EXPECT_DOUBLE_EQ(cost.annual_cooling_savings(reduction).value(), 0.0);
}


TEST(MechanismValue, ConvertsEnergyPairToAnnualValue) {
  // 1000 J baseline vs 600 J actual over 10 s: a sustained 40 W reduction.
  const CostModel cost;
  const MechanismValue value =
      mechanism_value(Joules{1000.0}, Joules{600.0}, Seconds{10.0}, cost);
  EXPECT_DOUBLE_EQ(value.average_reduction.value(), 40.0);
  EXPECT_DOUBLE_EQ(value.savings_fraction, 0.4);
  EXPECT_NEAR(value.annual_savings.value(),
              cost.annual_total_savings(Watts{40.0}).value(), 1e-12);
  EXPECT_NEAR(value.annual_co2_tons,
              cost.annual_co2_savings_tons(Watts{40.0}), 1e-12);
}

TEST(MechanismValue, HandlesDegenerateInputs) {
  const MechanismValue empty =
      mechanism_value(Joules{0.0}, Joules{0.0}, Seconds{1.0});
  EXPECT_DOUBLE_EQ(empty.savings_fraction, 0.0);
  EXPECT_DOUBLE_EQ(empty.average_reduction.value(), 0.0);
  EXPECT_THROW((void)mechanism_value(Joules{1.0}, Joules{1.0}, Seconds{0.0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace netpp
