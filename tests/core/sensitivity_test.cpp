#include "netpp/analysis/sensitivity.h"

#include <gtest/gtest.h>

namespace netpp {
namespace {

TEST(Sensitivity, BaselineHeadlines) {
  const auto metrics = headline_metrics(ClusterConfig{});
  EXPECT_NEAR(metrics.network_share, 0.12, 0.01);
  EXPECT_NEAR(metrics.network_efficiency, 0.11, 0.005);
  EXPECT_NEAR(metrics.savings_at_50, 0.047, 0.005);
  EXPECT_NEAR(metrics.savings_at_85, 0.088, 0.005);
}

TEST(Sensitivity, SuiteCoversPaperAssumptions) {
  const auto suite = make_paper_sensitivity_suite();
  ASSERT_EQ(suite.size(), 5u);
  for (const auto& param : suite) {
    EXPECT_FALSE(param.values.empty()) << param.name;
    EXPECT_TRUE(param.configure) << param.name;
  }
}

TEST(Sensitivity, RunProducesOnePointPerValue) {
  const auto suite = make_paper_sensitivity_suite();
  const auto points = run_sensitivity(suite);
  std::size_t expected = 0;
  for (const auto& p : suite) expected += p.values.size();
  EXPECT_EQ(points.size(), expected);
}

TEST(Sensitivity, PaperValuesReproduceBaseline) {
  // Each sweep contains the paper's nominal value; headline metrics there
  // must match the unperturbed baseline.
  const auto base = headline_metrics(ClusterConfig{});
  const auto suite = make_paper_sensitivity_suite();
  const double nominal[] = {0.85, 0.10, 750.0, 1.0, 1.0};
  for (std::size_t i = 0; i < suite.size(); ++i) {
    const auto metrics = headline_metrics(suite[i].configure(nominal[i]));
    EXPECT_NEAR(metrics.network_share, base.network_share, 1e-9)
        << suite[i].name;
    EXPECT_NEAR(metrics.savings_at_85, base.savings_at_85, 1e-9)
        << suite[i].name;
  }
}

TEST(Sensitivity, DirectionsAreAsExpected) {
  const auto suite = make_paper_sensitivity_suite();
  const auto by_name = [&](const std::string& name) -> const auto& {
    for (const auto& p : suite) {
      if (p.name == name) return p;
    }
    throw std::out_of_range(name);
  };

  // Worse compute proportionality -> higher compute idle draw -> smaller
  // network share -> smaller relative savings.
  {
    const auto& p = by_name("compute proportionality");
    const auto low = headline_metrics(p.configure(0.70));
    const auto high = headline_metrics(p.configure(0.95));
    EXPECT_LT(low.savings_at_85, high.savings_at_85);
  }
  // Higher communication ratio -> network busier -> better efficiency,
  // and lower compute average -> larger network share.
  {
    const auto& p = by_name("communication ratio");
    const auto low = headline_metrics(p.configure(0.05));
    const auto high = headline_metrics(p.configure(0.30));
    EXPECT_GT(high.network_efficiency, low.network_efficiency);
    EXPECT_GT(high.network_share, low.network_share);
  }
  // Hungrier switches -> larger share and savings.
  {
    const auto& p = by_name("switch max power (W)");
    const auto low = headline_metrics(p.configure(525.0));
    const auto high = headline_metrics(p.configure(975.0));
    EXPECT_GT(high.network_share, low.network_share);
    EXPECT_GT(high.savings_at_85, low.savings_at_85);
  }
}

TEST(Sensitivity, HeadlinesAreRobust) {
  // Across the whole suite, the qualitative story holds: the network is a
  // sizeable share (>6%) and 85% proportionality saves >4%.
  const auto points = run_sensitivity(make_paper_sensitivity_suite());
  for (const auto& point : points) {
    EXPECT_GT(point.metrics.network_share, 0.06)
        << point.parameter << "=" << point.value;
    EXPECT_GT(point.metrics.savings_at_85, 0.04)
        << point.parameter << "=" << point.value;
  }
}

}  // namespace
}  // namespace netpp
