#include "netpp/analysis/peak_power.h"

#include <gtest/gtest.h>

namespace netpp {
namespace {

TEST(PeakPower, BaselinePointIsReference) {
  const auto points = peak_power_sweep(ClusterConfig{}, {0.10});
  ASSERT_EQ(points.size(), 1u);
  EXPECT_DOUBLE_EQ(points[0].peak_reduction, 0.0);
  const ClusterModel cluster{ClusterConfig{}};
  EXPECT_NEAR(points[0].peak.value(), cluster.peak_total_power().value(),
              1e-6);
}

TEST(PeakPower, ProportionalityFlattensThePeak) {
  const auto points =
      peak_power_sweep(ClusterConfig{}, {0.10, 0.50, 0.85, 1.00});
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_LT(points[i].peak.value(), points[i - 1].peak.value());
    EXPECT_GT(points[i].peak_reduction, points[i - 1].peak_reduction);
  }
  // At full proportionality the network draws nothing during computation:
  // peak = compute max = 7.5 MW; baseline peak ~ 7.5 MW + idle network.
  EXPECT_NEAR(points.back().peak.megawatts(), 7.5, 0.01);
}

TEST(PeakPower, ReductionMatchesIdleDrawShaved) {
  // Peak reduction = network idle at 10% minus idle at p, over the baseline
  // peak.
  const ClusterModel cluster{ClusterConfig{}};
  const double net_max = cluster.network_envelope().max_power().value();
  const double base_peak = cluster.peak_total_power().value();
  const auto points = peak_power_sweep(ClusterConfig{}, {0.50});
  const double expected = net_max * (0.50 - 0.10) / base_peak;
  EXPECT_NEAR(points[0].peak_reduction, expected, 1e-9);
}

TEST(PeakPower, PeakToAverageAboveOne) {
  const auto points = peak_power_sweep(ClusterConfig{}, {0.10, 0.85});
  for (const auto& p : points) {
    EXPECT_GT(p.peak_to_average, 1.0);
  }
}

TEST(PeakPower, HeadroomBuysGpus) {
  const double extra = extra_gpus_from_peak_headroom(ClusterConfig{}, 0.85);
  // Shaved idle ~ 0.75 * ~900 kW ~ 675 kW; a GPU (plus its marginal
  // network) costs a bit over 500 W -> several hundred extra GPUs.
  EXPECT_GT(extra, 400.0);
  EXPECT_LT(extra, 1500.0);
}

TEST(PeakPower, NoHeadroomAtBaselineProportionality) {
  EXPECT_NEAR(extra_gpus_from_peak_headroom(ClusterConfig{}, 0.10), 0.0,
              1.0);
}

TEST(PeakPower, WorseProportionalityGivesZero) {
  EXPECT_DOUBLE_EQ(extra_gpus_from_peak_headroom(ClusterConfig{}, 0.0), 0.0);
}

}  // namespace
}  // namespace netpp
