#include "netpp/power/catalog.h"

#include <gtest/gtest.h>

namespace netpp {
namespace {

using namespace netpp::literals;

TEST(PowerTable, ExactEntriesReturnedVerbatim) {
  const PowerTable table{{{100.0, 4.0}, {200.0, 6.5}, {400.0, 10.0}}};
  EXPECT_DOUBLE_EQ(table.at(100_Gbps).value(), 4.0);
  EXPECT_DOUBLE_EQ(table.at(200_Gbps).value(), 6.5);
  EXPECT_DOUBLE_EQ(table.at(400_Gbps).value(), 10.0);
  ASSERT_TRUE(table.exact(200_Gbps).has_value());
  EXPECT_DOUBLE_EQ(table.exact(200_Gbps)->value(), 6.5);
  EXPECT_FALSE(table.exact(300_Gbps).has_value());
}

TEST(PowerTable, PaperNicExtrapolationMatchesStarredValues) {
  // Table 2: 800 G -> 38.6 W and 1600 G -> 58.8 W are the paper's starred
  // (extrapolated) values; they follow from continuing the 200->400 G
  // per-doubling ratio geometrically.
  const PowerTable nics{{{100.0, 8.6}, {200.0, 16.7}, {400.0, 25.4}}};
  EXPECT_NEAR(nics.at(800_Gbps).value(), 38.6, 0.05);
  EXPECT_NEAR(nics.at(1600_Gbps).value(), 58.8, 0.1);
}

TEST(PowerTable, InterpolationIsMonotoneBetweenPoints) {
  const PowerTable table{{{100.0, 8.6}, {200.0, 16.7}, {400.0, 25.4}}};
  double prev = 0.0;
  for (double s = 100.0; s <= 400.0; s += 10.0) {
    const double p = table.at(Gbps{s}).value();
    EXPECT_GT(p, prev) << "speed " << s;
    prev = p;
  }
}

TEST(PowerTable, BelowTableContinuesFirstSegment) {
  const PowerTable table{{{200.0, 16.7}, {400.0, 25.4}}};
  const double p100 = table.at(100_Gbps).value();
  // Geometric continuation downward: 16.7 / 1.521 ~ 10.98.
  EXPECT_NEAR(p100, 16.7 * 16.7 / 25.4, 0.05);
  EXPECT_LT(p100, 16.7);
  EXPECT_GT(p100, 0.0);
}

TEST(PowerTable, SingleEntryScalesLinearly) {
  const PowerTable table{{{100.0, 5.0}}};
  EXPECT_DOUBLE_EQ(table.at(200_Gbps).value(), 10.0);
  EXPECT_DOUBLE_EQ(table.at(50_Gbps).value(), 2.5);
}

TEST(PowerTable, InvalidInputsThrow) {
  EXPECT_THROW(PowerTable{{}}, std::invalid_argument);
  EXPECT_THROW((PowerTable{{{-1.0, 5.0}}}), std::invalid_argument);
  EXPECT_THROW((PowerTable{{{100.0, -5.0}}}), std::invalid_argument);
  const PowerTable table{{{100.0, 5.0}}};
  EXPECT_THROW((void)table.at(Gbps{0.0}), std::invalid_argument);
  EXPECT_THROW((void)table.at(Gbps{-10.0}), std::invalid_argument);
}

TEST(DeviceCatalog, PaperGpuEnvelope) {
  // §2.3.1: 400 W GPU + 800 W server / 8 GPUs = 500 W max; 85% proportional
  // => 75 W idle.
  const auto& cat = DeviceCatalog::paper_baseline();
  EXPECT_DOUBLE_EQ(cat.gpu_max_power().value(), 500.0);
  EXPECT_DOUBLE_EQ(cat.gpu_envelope().idle_power().value(), 75.0);
  EXPECT_DOUBLE_EQ(cat.gpu_envelope().proportionality(), 0.85);
}

TEST(DeviceCatalog, PaperSwitch) {
  const auto& cat = DeviceCatalog::paper_baseline();
  EXPECT_DOUBLE_EQ(cat.switch_max_power().value(), 750.0);
  EXPECT_DOUBLE_EQ(cat.switch_capacity().tbps(), 51.2);
}

TEST(DeviceCatalog, SwitchRadixPerPortSpeed) {
  const auto& cat = DeviceCatalog::paper_baseline();
  EXPECT_EQ(cat.switch_radix(100_Gbps), 512);
  EXPECT_EQ(cat.switch_radix(200_Gbps), 256);
  EXPECT_EQ(cat.switch_radix(400_Gbps), 128);
  EXPECT_EQ(cat.switch_radix(800_Gbps), 64);
  EXPECT_EQ(cat.switch_radix(1600_Gbps), 32);
  EXPECT_THROW((void)cat.switch_radix(Gbps{0.0}), std::invalid_argument);
}

TEST(DeviceCatalog, NicPowersMatchTable2) {
  const auto& cat = DeviceCatalog::paper_baseline();
  EXPECT_DOUBLE_EQ(cat.nic_power(100_Gbps).value(), 8.6);
  EXPECT_DOUBLE_EQ(cat.nic_power(200_Gbps).value(), 16.7);
  EXPECT_DOUBLE_EQ(cat.nic_power(400_Gbps).value(), 25.4);
  EXPECT_NEAR(cat.nic_power(800_Gbps).value(), 38.6, 0.05);
  EXPECT_NEAR(cat.nic_power(1600_Gbps).value(), 58.8, 0.1);
}

TEST(DeviceCatalog, TransceiverPowersMatchTable2) {
  const auto& cat = DeviceCatalog::paper_baseline();
  EXPECT_DOUBLE_EQ(cat.transceiver_power(100_Gbps).value(), 4.0);
  EXPECT_DOUBLE_EQ(cat.transceiver_power(200_Gbps).value(), 6.5);
  EXPECT_DOUBLE_EQ(cat.transceiver_power(400_Gbps).value(), 10.0);
  EXPECT_DOUBLE_EQ(cat.transceiver_power(800_Gbps).value(), 16.5);
  EXPECT_DOUBLE_EQ(cat.transceiver_power(1600_Gbps).value(), 27.27);
}

TEST(DeviceCatalog, CustomConfig) {
  DeviceCatalog::Config cfg;
  cfg.gpu_max = Watts{700.0};  // e.g. B200-class part
  cfg.server_overhead = Watts{1600.0};
  cfg.gpus_per_server = 4;
  cfg.compute_proportionality = 0.9;
  const DeviceCatalog cat{cfg};
  EXPECT_DOUBLE_EQ(cat.gpu_max_power().value(), 1100.0);
  EXPECT_NEAR(cat.gpu_envelope().idle_power().value(), 110.0, 1e-9);
}

TEST(DeviceCatalog, InvalidConfigThrows) {
  DeviceCatalog::Config cfg;
  cfg.gpus_per_server = 0;
  EXPECT_THROW(DeviceCatalog{cfg}, std::invalid_argument);
}

}  // namespace
}  // namespace netpp
