#include "netpp/analysis/speedup.h"

#include <gtest/gtest.h>

namespace netpp {
namespace {

using namespace netpp::literals;

TEST(BudgetSolver, BudgetEqualsBaselineAveragePower) {
  const auto solver = BudgetSolver::paper_baseline();
  const ClusterModel baseline{ClusterConfig{}};
  EXPECT_NEAR(solver.budget().value(),
              baseline.average_total_power().value(), 1e-6);
}

TEST(BudgetSolver, BaselineOperatingPointSolvesToBaselineGpuCount) {
  const auto solver = BudgetSolver::paper_baseline();
  const auto c =
      solver.solve(400_Gbps, 0.10, BudgetScenario::kFixedWorkload);
  EXPECT_NEAR(c.num_gpus, 15000.0, 1.0);
  EXPECT_NEAR(c.iteration.iteration_time().value(), 1.0, 1e-3);
}

TEST(BudgetSolver, SolvedClusterConsumesTheBudget) {
  const auto solver = BudgetSolver::paper_baseline();
  for (double bw : {100.0, 400.0, 1600.0}) {
    for (double p : {0.0, 0.5, 1.0}) {
      const auto c =
          solver.solve(Gbps{bw}, p, BudgetScenario::kFixedWorkload);
      EXPECT_NEAR(c.average_power.value() / solver.budget().value(), 1.0,
                  1e-4)
          << "bw=" << bw << " p=" << p;
    }
  }
}

TEST(BudgetSolver, BetterProportionalityBuysMoreGpus) {
  const auto solver = BudgetSolver::paper_baseline();
  for (auto scenario : {BudgetScenario::kFixedWorkload,
                        BudgetScenario::kFixedCommRatio}) {
    double prev = 0.0;
    for (double p = 0.0; p <= 1.0001; p += 0.25) {
      const auto c = solver.solve(800_Gbps, std::min(p, 1.0), scenario);
      EXPECT_GT(c.num_gpus, prev) << "p=" << p;
      prev = c.num_gpus;
    }
  }
}

TEST(BudgetSolver, AveragePowerMonotoneInGpus) {
  const auto solver = BudgetSolver::paper_baseline();
  for (auto scenario : {BudgetScenario::kFixedWorkload,
                        BudgetScenario::kFixedCommRatio}) {
    double prev = 0.0;
    for (double gpus = 1000.0; gpus <= 64000.0; gpus *= 2.0) {
      const double p =
          solver.average_power(gpus, 400_Gbps, 0.1, scenario).value();
      EXPECT_GT(p, prev) << "gpus=" << gpus;
      prev = p;
    }
  }
}

TEST(Figure3, BaselineSpeedupIsZero) {
  const auto solver = BudgetSolver::paper_baseline();
  const auto series =
      fixed_workload_speedup(solver, {400_Gbps}, {0.10});
  ASSERT_EQ(series.size(), 1u);
  ASSERT_EQ(series[0].points.size(), 1u);
  EXPECT_NEAR(series[0].points[0].speedup, 0.0, 1e-4);
}

TEST(Figure3, PaperQualitativeClaims) {
  const auto solver = BudgetSolver::paper_baseline();
  const std::vector<Gbps> bws = {100_Gbps, 200_Gbps, 400_Gbps, 800_Gbps,
                                 1600_Gbps};
  const auto series = fixed_workload_speedup(solver, bws, {0.0, 0.5, 1.0});
  ASSERT_EQ(series.size(), 5u);
  const auto speedup = [&](int bw_idx, int p_idx) {
    return series[bw_idx].points[p_idx].speedup;
  };

  // At 0% proportionality, lower bandwidths beat higher ones; high
  // bandwidths lose badly (1600 G around -30%).
  EXPECT_GT(speedup(1, 0), speedup(2, 0));  // 200 > 400
  EXPECT_GT(speedup(2, 0), speedup(3, 0));  // 400 > 800
  EXPECT_GT(speedup(3, 0), speedup(4, 0));  // 800 > 1600
  EXPECT_LT(speedup(4, 0), -0.20);
  EXPECT_GT(speedup(4, 0), -0.40);

  // "Even at 50% proportionality, a 200 Gbps network is still faster than a
  // 400 Gbps one."
  EXPECT_GT(speedup(1, 1), speedup(2, 1));

  // At 100% proportionality the highest bandwidths win.
  EXPECT_GT(speedup(4, 2), speedup(2, 2));
  EXPECT_GT(speedup(3, 2), speedup(2, 2));
}

TEST(Figure3, SpeedupMonotoneInProportionality) {
  const auto solver = BudgetSolver::paper_baseline();
  const auto series = fixed_workload_speedup(
      solver, {100_Gbps, 800_Gbps}, {0.0, 0.25, 0.5, 0.75, 1.0});
  for (const auto& s : series) {
    for (std::size_t i = 1; i < s.points.size(); ++i) {
      EXPECT_GT(s.points[i].speedup, s.points[i - 1].speedup)
          << "bw=" << s.bandwidth.value() << " i=" << i;
    }
  }
}

TEST(Figure4, ZeroProportionalityReferenceIsZero) {
  const auto solver = BudgetSolver::paper_baseline();
  const auto series = fixed_ratio_speedup(solver, {400_Gbps}, {0.0});
  EXPECT_NEAR(series[0].points[0].speedup, 0.0, 1e-6);
}

TEST(Figure4, PaperQualitativeClaims) {
  const auto solver = BudgetSolver::paper_baseline();
  const std::vector<Gbps> bws = {100_Gbps, 200_Gbps, 400_Gbps, 800_Gbps,
                                 1600_Gbps};
  const auto series = fixed_ratio_speedup(solver, bws, {0.5});
  // Higher bandwidth gains more from proportionality.
  for (std::size_t i = 1; i < series.size(); ++i) {
    EXPECT_GT(series[i].points[0].speedup, series[i - 1].points[0].speedup);
  }
  // "a network power proportionality of 50% on a 800 Gbps network would
  // enable a 10% speedup" (we land at ~11%).
  EXPECT_NEAR(series[3].points[0].speedup, 0.10, 0.03);
}

TEST(Figure4, FixedRatioKeepsCommunicationRatio) {
  const auto solver = BudgetSolver::paper_baseline();
  const auto c = solver.solve(1600_Gbps, 0.7, BudgetScenario::kFixedCommRatio);
  EXPECT_NEAR(c.iteration.communication_ratio(), 0.10, 1e-9);
}

TEST(Crossover, BaselineBandwidthCrossesAtItsOwnProportionality) {
  const auto solver = BudgetSolver::paper_baseline();
  const auto needed = proportionality_to_match_baseline(solver, 400_Gbps);
  ASSERT_TRUE(needed.has_value());
  EXPECT_NEAR(*needed, 0.10, 1e-3);
}

TEST(Crossover, HigherBandwidthsNeedMoreProportionality) {
  const auto solver = BudgetSolver::paper_baseline();
  const auto at800 = proportionality_to_match_baseline(solver, 800_Gbps);
  const auto at1600 = proportionality_to_match_baseline(solver, 1600_Gbps);
  ASSERT_TRUE(at800 && at1600);
  EXPECT_GT(*at800, 0.30);
  EXPECT_GT(*at1600, *at800);
  EXPECT_LT(*at1600, 1.0);
}

TEST(Crossover, TwoHundredGigAlreadyWinsAtZero) {
  const auto solver = BudgetSolver::paper_baseline();
  const auto needed = proportionality_to_match_baseline(solver, 200_Gbps);
  ASSERT_TRUE(needed.has_value());
  EXPECT_DOUBLE_EQ(*needed, 0.0);
}

TEST(BudgetSolver, SolvesAtTheTinyEnd) {
  // A budget derived from a single-GPU cluster solves back to ~1 GPU when
  // the workload reference matches that cluster.
  ClusterConfig tiny;
  tiny.num_gpus = 1.0;
  const WorkloadModel wl{IterationProfile{0.9_s, 0.1_s}, 1.0, 400_Gbps};
  const BudgetSolver solver{tiny, wl};
  const auto c = solver.solve(400_Gbps, 0.10, BudgetScenario::kFixedWorkload);
  EXPECT_NEAR(c.num_gpus, 1.0, 0.01);
}

TEST(BudgetSolver, ThrowsWhenBudgetCannotHostOneGpu) {
  // A 1-GPU budget with the paper's 15000-GPU reference workload: a single
  // GPU then computes ~15000x longer, its duty cycle approaches pure
  // computation, and the average power exceeds the baseline's (which spends
  // 10% of its time in the low-power communication phase).
  ClusterConfig tiny;
  tiny.num_gpus = 1.0;
  const BudgetSolver solver{tiny, WorkloadModel::paper_baseline()};
  EXPECT_THROW((void)solver.solve(400_Gbps, 0.10, BudgetScenario::kFixedWorkload),
               std::runtime_error);
}

}  // namespace
}  // namespace netpp
