#include "netpp/topomodel/fattree.h"

#include <gtest/gtest.h>

namespace netpp {
namespace {

TEST(FatTreeModel, ClassicKaryFatTreeClosedForm) {
  // k-ary fat tree: k^3/4 hosts, 5k^2/4 switches. k = 48 is the canonical
  // textbook example: 27648 hosts, 2880 switches.
  const FatTreeModel model{48};
  EXPECT_DOUBLE_EQ(model.hosts_at_tier(3), 27648.0);
  EXPECT_DOUBLE_EQ(model.switches_at_tier(3), 2880.0);
}

TEST(FatTreeModel, LeafSpineClosedForm) {
  // 2-tier: R^2/2 hosts with 3R/2 switches.
  const FatTreeModel model{128};
  EXPECT_DOUBLE_EQ(model.hosts_at_tier(2), 8192.0);
  EXPECT_DOUBLE_EQ(model.switches_at_tier(2), 192.0);
}

TEST(FatTreeModel, SingleTier) {
  const FatTreeModel model{128};
  EXPECT_DOUBLE_EQ(model.hosts_at_tier(1), 128.0);
  EXPECT_DOUBLE_EQ(model.switches_at_tier(1), 1.0);
}

TEST(FatTreeModel, TiersForHosts) {
  const FatTreeModel model{128};
  EXPECT_EQ(model.tiers_for_hosts(1.0), 1);
  EXPECT_EQ(model.tiers_for_hosts(128.0), 1);
  EXPECT_EQ(model.tiers_for_hosts(129.0), 2);
  EXPECT_EQ(model.tiers_for_hosts(8192.0), 2);
  EXPECT_EQ(model.tiers_for_hosts(8193.0), 3);
  EXPECT_EQ(model.tiers_for_hosts(15000.0), 3);
  EXPECT_EQ(model.tiers_for_hosts(524288.0), 3);
  EXPECT_EQ(model.tiers_for_hosts(524289.0), 4);
}

TEST(FatTreeModel, ExactTierBoundariesUseClosedForm) {
  const FatTreeModel model{128};
  EXPECT_DOUBLE_EQ(model.size_for_hosts(8192.0).switches, 192.0);
  EXPECT_DOUBLE_EQ(model.size_for_hosts(524288.0).switches, 20480.0);
}

TEST(FatTreeModel, SingleSwitchForTinyClusters) {
  const FatTreeModel model{128};
  const auto size = model.size_for_hosts(10.0);
  EXPECT_DOUBLE_EQ(size.switches, 1.0);
  EXPECT_EQ(size.tiers, 1);
  EXPECT_DOUBLE_EQ(size.inter_switch_links, 0.0);
  EXPECT_DOUBLE_EQ(size.transceivers, 0.0);
}

TEST(FatTreeModel, PaperBaselineSizing) {
  // 15000 hosts at 400 G on 51.2 Tbps switches (radix 128): between the
  // 2-tier (8192 hosts) and 3-tier (524288 hosts) capacities.
  const FatTreeModel model{128};
  const auto size = model.size_for_hosts(15000.0);
  EXPECT_EQ(size.tiers, 3);
  EXPECT_GT(size.switches, 192.0);
  EXPECT_LT(size.switches, 20480.0);
  // Geometric interpolation: ~380 switches (validated against Table 3).
  EXPECT_NEAR(size.switches, 380.0, 5.0);
}

TEST(FatTreeModel, InterpolationIsContinuousAtBoundaries) {
  const FatTreeModel model{32};
  // Just below / at / just above the 2-tier boundary (512 hosts).
  const double at = model.size_for_hosts(512.0).switches;
  const double below = model.size_for_hosts(511.999).switches;
  const double above = model.size_for_hosts(512.001).switches;
  EXPECT_NEAR(below, at, 0.01);
  EXPECT_NEAR(above, at, 0.01);
}

TEST(FatTreeModel, PortAccounting) {
  const FatTreeModel model{128};
  const auto size = model.size_for_hosts(8192.0);
  EXPECT_DOUBLE_EQ(size.total_ports, 192.0 * 128.0);
  EXPECT_DOUBLE_EQ(size.host_ports, 8192.0);
  // Full 2-tier tree: every leaf has 64 up ports -> 8192 inter-switch links.
  EXPECT_DOUBLE_EQ(size.inter_switch_links, (192.0 * 128.0 - 8192.0) / 2.0);
  EXPECT_DOUBLE_EQ(size.transceivers, 2.0 * size.inter_switch_links);
}

TEST(FatTreeModel, InvalidArgumentsThrow) {
  EXPECT_THROW(FatTreeModel{0}, std::invalid_argument);
  EXPECT_THROW(FatTreeModel{-4}, std::invalid_argument);
  EXPECT_THROW(FatTreeModel{7}, std::invalid_argument);  // odd radix
  const FatTreeModel model{8};
  EXPECT_THROW((void)model.hosts_at_tier(0), std::invalid_argument);
  EXPECT_THROW((void)model.switches_at_tier(-1), std::invalid_argument);
  EXPECT_THROW((void)model.size_for_hosts(0.5), std::invalid_argument);
}

// Property sweep across radices: sizing is monotone in host count, and the
// interpolated switch count always lies between the bracketing tiers.
class FatTreeProperties : public ::testing::TestWithParam<int> {};

TEST_P(FatTreeProperties, SwitchCountMonotoneInHosts) {
  const FatTreeModel model{GetParam()};
  double prev = 0.0;
  for (double hosts = 1.0; hosts <= 100000.0; hosts *= 1.37) {
    const double s = model.size_for_hosts(hosts).switches;
    EXPECT_GE(s, prev) << "hosts=" << hosts << " radix=" << GetParam();
    prev = s;
  }
}

TEST_P(FatTreeProperties, InterpolationStaysWithinBrackets) {
  const FatTreeModel model{GetParam()};
  for (double hosts = 2.0; hosts <= 200000.0; hosts *= 1.61) {
    const auto size = model.size_for_hosts(hosts);
    if (size.tiers == 1) continue;
    EXPECT_GE(size.switches, model.switches_at_tier(size.tiers - 1));
    EXPECT_LE(size.switches, model.switches_at_tier(size.tiers));
  }
}

TEST_P(FatTreeProperties, EnoughPortsForHostsAndLinks) {
  const FatTreeModel model{GetParam()};
  for (double hosts = 2.0; hosts <= 200000.0; hosts *= 2.3) {
    const auto size = model.size_for_hosts(hosts);
    EXPECT_GE(size.total_ports,
              size.host_ports + 2.0 * size.inter_switch_links - 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Radices, FatTreeProperties,
                         ::testing::Values(4, 8, 16, 32, 64, 128, 256, 512));

}  // namespace
}  // namespace netpp
