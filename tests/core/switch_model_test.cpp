#include "netpp/power/switch_model.h"

#include <gtest/gtest.h>

namespace netpp {
namespace {

TEST(SwitchPowerModel, DefaultsMatchPaperBaseline) {
  const SwitchPowerModel model;
  EXPECT_DOUBLE_EQ(model.max_power().value(), 750.0);
  // Default fractions give 10% proportionality — the paper's baseline.
  EXPECT_NEAR(model.proportionality(), 0.10, 1e-9);
  EXPECT_NEAR(model.idle_power().value(), 675.0, 1e-9);
}

TEST(SwitchPowerModel, ChassisIsThirtyPercent) {
  const SwitchPowerModel model;
  EXPECT_NEAR(model.chassis_power().value(), 225.0, 1e-9);
}

TEST(SwitchPowerModel, PipelinePowerComponents) {
  const SwitchPowerModel model;
  // Per pipeline: 750 * 0.40 / 4 = 75 W max.
  const double max = 75.0;
  EXPECT_NEAR(model.pipeline_power({true, 1.0, 1.0}).value(), max, 1e-9);
  // Idle at full clock: leakage + clock = (0.4 + 0.35) * 75.
  EXPECT_NEAR(model.pipeline_power({true, 1.0, 0.0}).value(), 0.75 * max,
              1e-9);
  // Half clock, idle: leakage + 0.5 * clock.
  EXPECT_NEAR(model.pipeline_power({true, 0.5, 0.0}).value(),
              (0.4 + 0.35 * 0.5) * max, 1e-9);
  // Powered off: zero (leakage gone — §4.4's advantage over rate scaling).
  EXPECT_DOUBLE_EQ(model.pipeline_power({false, 1.0, 0.0}).value(), 0.0);
}

TEST(SwitchPowerModel, PipelineLoadCannotExceedClock) {
  const SwitchPowerModel model;
  EXPECT_THROW((void)model.pipeline_power({true, 0.5, 0.8}), std::invalid_argument);
  EXPECT_NO_THROW((void)model.pipeline_power({true, 0.5, 0.5}));
}

TEST(SwitchPowerModel, PortPower) {
  const SwitchPowerModel model;
  // Per port: 750 * 0.30 / 64.
  const double per_port = 750.0 * 0.30 / 64.0;
  EXPECT_NEAR(model.port_power({true, 1.0}).value(), per_port, 1e-9);
  EXPECT_NEAR(model.port_power({true, 0.25}).value(), per_port / 4.0, 1e-9);
  EXPECT_DOUBLE_EQ(model.port_power({false, 1.0}).value(), 0.0);
  EXPECT_THROW((void)model.port_power({true, 0.0}), std::invalid_argument);
  EXPECT_THROW((void)model.port_power({true, 1.5}), std::invalid_argument);
}

TEST(SwitchPowerModel, TotalPowerComposes) {
  const SwitchPowerModel model;
  const auto& cfg = model.config();
  std::vector<PipelineState> pipelines(cfg.num_pipelines,
                                       PipelineState{true, 1.0, 1.0});
  std::vector<PortState> ports(cfg.num_ports, PortState{});
  EXPECT_NEAR(model.total_power(pipelines, ports).value(), 750.0, 1e-9);

  // Park half the pipelines: lose half the pipeline budget.
  pipelines[0].powered = false;
  pipelines[1].powered = false;
  pipelines[2].load = 1.0;
  pipelines[3].load = 1.0;
  EXPECT_NEAR(model.total_power(pipelines, ports).value(), 750.0 - 150.0,
              1e-9);
}

TEST(SwitchPowerModel, StateVectorSizeMismatchThrows) {
  const SwitchPowerModel model;
  std::vector<PipelineState> few(2, PipelineState{});
  std::vector<PortState> ports(model.config().num_ports, PortState{});
  EXPECT_THROW((void)model.total_power(few, ports), std::invalid_argument);
}

TEST(SwitchPowerModel, UniformLoadIsLinear) {
  const SwitchPowerModel model;
  const double p0 = model.at_uniform_load(0.0).value();
  const double p5 = model.at_uniform_load(0.5).value();
  const double p1 = model.at_uniform_load(1.0).value();
  EXPECT_NEAR(p5, (p0 + p1) / 2.0, 1e-9);
  EXPECT_THROW((void)model.at_uniform_load(1.5), std::invalid_argument);
}

TEST(SwitchPowerModel, InvalidConfigsThrow) {
  SwitchPowerConfig cfg;
  cfg.chassis_fraction = 0.5;  // sums to 1.2
  EXPECT_THROW(SwitchPowerModel{cfg}, std::invalid_argument);
  cfg = SwitchPowerConfig{};
  cfg.pipeline_leakage_fraction = 0.9;  // pipeline split sums to 1.5
  EXPECT_THROW(SwitchPowerModel{cfg}, std::invalid_argument);
  cfg = SwitchPowerConfig{};
  cfg.num_pipelines = 0;
  EXPECT_THROW(SwitchPowerModel{cfg}, std::invalid_argument);
  cfg = SwitchPowerConfig{};
  cfg.max_power = Watts{0.0};
  EXPECT_THROW(SwitchPowerModel{cfg}, std::invalid_argument);
}

// Proportionality sweep: adjusting the gateable fractions changes the
// envelope as expected.
class SwitchModelFractions
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(SwitchModelFractions, ProportionalityMatchesSwitchingShare) {
  const auto [switching, clock] = GetParam();
  SwitchPowerConfig cfg;
  cfg.pipeline_switching_fraction = switching;
  cfg.pipeline_clock_fraction = clock;
  cfg.pipeline_leakage_fraction = 1.0 - switching - clock;
  const SwitchPowerModel model{cfg};
  // Only switching power scales with load when everything stays on.
  EXPECT_NEAR(model.proportionality(),
              cfg.pipelines_fraction * switching, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SwitchModelFractions,
    ::testing::Values(std::make_tuple(0.25, 0.35), std::make_tuple(0.1, 0.5),
                      std::make_tuple(0.5, 0.2), std::make_tuple(0.0, 0.5)));

}  // namespace
}  // namespace netpp
