#include "netpp/analysis/report.h"

#include <gtest/gtest.h>

#include <sstream>

namespace netpp {
namespace {

TEST(Table, AsciiRendering) {
  Table t{{"a", "bb"}};
  t.add_row({"1", "2"});
  t.add_row({"333", "4"});
  const std::string ascii = t.to_ascii();
  EXPECT_NE(ascii.find("| a   | bb |"), std::string::npos);
  EXPECT_NE(ascii.find("| 333 | 4  |"), std::string::npos);
  EXPECT_NE(ascii.find("+-----+----+"), std::string::npos);
}

TEST(Table, CsvRendering) {
  Table t{{"name", "value"}};
  t.add_row({"plain", "1"});
  t.add_row({"with,comma", "2"});
  t.add_row({"with\"quote", "3"});
  EXPECT_EQ(t.to_csv(),
            "name,value\n"
            "plain,1\n"
            "\"with,comma\",2\n"
            "\"with\"\"quote\",3\n");
}

TEST(Table, WriteCsvToStream) {
  Table t{{"x"}};
  t.add_row({"1"});
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(), "x\n1\n");
}

TEST(Table, Accessors) {
  Table t{{"a", "b"}};
  t.add_row({"1", "2"});
  EXPECT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.num_columns(), 2u);
  EXPECT_EQ(t.row(0)[1], "2");
  EXPECT_THROW((void)t.row(5), std::out_of_range);
}

TEST(Table, ArityMismatchThrows) {
  Table t{{"a", "b"}};
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
  EXPECT_THROW(t.add_row({"1", "2", "3"}), std::invalid_argument);
  EXPECT_THROW(Table{std::vector<std::string>{}}, std::invalid_argument);
}

TEST(Fmt, Doubles) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(3.14159, 0), "3");
  EXPECT_EQ(fmt(-1.5, 1), "-1.5");
}

TEST(Fmt, Percent) {
  EXPECT_EQ(fmt_percent(0.047), "4.7%");
  EXPECT_EQ(fmt_percent(0.351), "35.1%");
  EXPECT_EQ(fmt_percent(1.0, 0), "100%");
  EXPECT_EQ(fmt_percent(-0.278), "-27.8%");
}

}  // namespace
}  // namespace netpp
