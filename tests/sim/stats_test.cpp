#include "netpp/sim/stats.h"

#include <gtest/gtest.h>

namespace netpp {
namespace {

using namespace netpp::literals;

TEST(SummaryStat, EmptyIsZero) {
  SummaryStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(SummaryStat, BasicMoments) {
  SummaryStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(SummaryStat, SingleValue) {
  SummaryStat s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(TimeWeighted, ConstantSignal) {
  TimeWeighted tw{5.0};
  EXPECT_DOUBLE_EQ(tw.integral(10.0_s), 50.0);
  EXPECT_DOUBLE_EQ(tw.average(10.0_s), 5.0);
}

TEST(TimeWeighted, StepSignal) {
  TimeWeighted tw{0.0};
  tw.set(2.0_s, 10.0);   // 0 for [0,2), 10 afterwards
  tw.set(6.0_s, 0.0);    // 10 for [2,6), 0 afterwards
  EXPECT_DOUBLE_EQ(tw.integral(8.0_s), 40.0);
  EXPECT_DOUBLE_EQ(tw.average(8.0_s), 5.0);
  EXPECT_DOUBLE_EQ(tw.current(), 0.0);
}

TEST(TimeWeighted, NonZeroStart) {
  TimeWeighted tw{2.0, 1.0_s};
  tw.set(3.0_s, 4.0);
  EXPECT_DOUBLE_EQ(tw.integral(5.0_s), 2.0 * 2.0 + 4.0 * 2.0);
  EXPECT_DOUBLE_EQ(tw.average(5.0_s), 12.0 / 4.0);
}

TEST(TimeWeighted, SameTimeUpdateReplacesValueForward) {
  TimeWeighted tw{1.0};
  tw.set(2.0_s, 5.0);
  tw.set(2.0_s, 7.0);  // zero-length segment at 5; 7 applies onwards
  EXPECT_DOUBLE_EQ(tw.integral(4.0_s), 1.0 * 2.0 + 7.0 * 2.0);
}

TEST(TimeWeighted, BackwardsTimeThrows) {
  TimeWeighted tw{0.0};
  tw.set(5.0_s, 1.0);
  EXPECT_THROW(tw.set(4.0_s, 2.0), std::invalid_argument);
  EXPECT_THROW((void)tw.integral(4.0_s), std::invalid_argument);
}

TEST(TimeWeighted, AverageAtStartIsCurrent) {
  TimeWeighted tw{3.0, 2.0_s};
  EXPECT_DOUBLE_EQ(tw.average(2.0_s), 3.0);
}

TEST(Histogram, CountsAndBuckets) {
  Histogram h{0.0, 10.0, 10};
  for (double x : {0.5, 1.5, 1.7, 9.9, -1.0, 10.0, 25.0}) h.add(x);
  EXPECT_EQ(h.count(), 7u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);  // 10.0 lands in overflow ([0,10) range)
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(1), 2u);
  EXPECT_EQ(h.bin_count(9), 1u);
}

TEST(Histogram, Quantiles) {
  Histogram h{0.0, 100.0, 100};
  for (int i = 0; i < 100; ++i) h.add(i + 0.5);
  EXPECT_NEAR(h.quantile(0.5), 50.0, 1.0);
  EXPECT_NEAR(h.quantile(0.99), 99.0, 1.5);
  EXPECT_NEAR(h.quantile(0.01), 1.0, 1.5);
}

TEST(Histogram, QuantileEdgeCases) {
  Histogram h{0.0, 10.0, 10};
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);  // empty -> lo
  h.add(5.5);
  EXPECT_NEAR(h.quantile(1.0), 6.0, 1e-9);
  EXPECT_THROW((void)h.quantile(-0.1), std::invalid_argument);
  EXPECT_THROW((void)h.quantile(1.1), std::invalid_argument);
}

TEST(Histogram, InvalidConstructionThrows) {
  EXPECT_THROW(Histogram(5.0, 5.0, 10), std::invalid_argument);
  EXPECT_THROW(Histogram(5.0, 1.0, 10), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

}  // namespace
}  // namespace netpp
