#include "netpp/sim/random.h"

#include <gtest/gtest.h>

#include <cmath>

namespace netpp {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a{123}, b{123};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a{1}, b{2};
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng{7};
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, UniformRange) {
  Rng rng{7};
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 5.0);
  }
  EXPECT_THROW(rng.uniform(5.0, -3.0), std::invalid_argument);
}

TEST(Rng, UniformIntInclusiveAndUnbiasedish) {
  Rng rng{11};
  int counts[6] = {0};
  for (int i = 0; i < 60000; ++i) {
    const auto v = rng.uniform_int(0, 5);
    ASSERT_GE(v, 0);
    ASSERT_LE(v, 5);
    ++counts[v];
  }
  for (int c : counts) EXPECT_NEAR(c, 10000, 500);
  EXPECT_THROW(rng.uniform_int(3, 2), std::invalid_argument);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng{13};
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / n, 0.25, 0.01);
  EXPECT_THROW(rng.exponential(0.0), std::invalid_argument);
}

TEST(Rng, NormalMoments) {
  Rng rng{17};
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(10.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.1);
}

TEST(Rng, BoundedParetoStaysInBounds) {
  Rng rng{19};
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.bounded_pareto(1.2, 100.0, 1e6);
    ASSERT_GE(x, 100.0 * (1.0 - 1e-9));
    ASSERT_LE(x, 1e6 * (1.0 + 1e-9));
  }
  EXPECT_THROW(rng.bounded_pareto(0.0, 1.0, 2.0), std::invalid_argument);
  EXPECT_THROW(rng.bounded_pareto(1.0, 2.0, 1.0), std::invalid_argument);
}

TEST(Rng, BoundedParetoIsHeavyTailed) {
  // Most mass near the minimum: the median should be far below the mean.
  Rng rng{23};
  double sum = 0.0;
  int below_double_min = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.bounded_pareto(1.2, 1.0, 1e6);
    sum += x;
    if (x < 2.0) ++below_double_min;
  }
  EXPECT_GT(below_double_min, n / 2);  // median < 2x minimum
  EXPECT_GT(sum / n, 4.0);             // mean dominated by the tail
}

TEST(Rng, PoissonMean) {
  Rng rng{29};
  for (double mean : {0.5, 5.0, 100.0}) {
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(mean));
    EXPECT_NEAR(sum / n, mean, mean * 0.05 + 0.05) << "mean=" << mean;
  }
  EXPECT_EQ(rng.poisson(0.0), 0u);
  EXPECT_THROW(rng.poisson(-1.0), std::invalid_argument);
}

TEST(Rng, BernoulliProbability) {
  Rng rng{31};
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
  EXPECT_THROW(rng.bernoulli(1.5), std::invalid_argument);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent{37};
  Rng child = parent.split();
  // The two streams should not be identical.
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.next_u64() == child.next_u64()) ++same;
  }
  EXPECT_LT(same, 3);
}

}  // namespace
}  // namespace netpp
