#include "netpp/sim/sweep.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <vector>

namespace netpp {
namespace {

TEST(SweepRunner, ResultsLandInIndexOrder) {
  SweepRunner runner{{4, 123}};
  const auto results = runner.map<std::size_t>(
      32, [](std::size_t index, Rng&) { return index * index; });
  ASSERT_EQ(results.size(), 32u);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i], i * i);
  }
}

TEST(SweepRunner, ThreadCountDoesNotChangeResults) {
  // The per-scenario RNG must make results a pure function of (seed, index).
  const auto sample = [](std::size_t, Rng& rng) {
    double sum = 0.0;
    for (int i = 0; i < 100; ++i) sum += rng.uniform();
    return sum;
  };
  SweepRunner serial{{1, 42}};
  SweepRunner pooled{{8, 42}};
  const auto a = serial.map<double>(50, sample);
  const auto b = pooled.map<double>(50, sample);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << "scenario " << i;
  }
}

TEST(SweepRunner, RepeatedRunsAreIdentical) {
  SweepRunner runner{{0, 7}};
  const auto draw = [](std::size_t, Rng& rng) { return rng.next_u64(); };
  const auto first = runner.map<std::uint64_t>(20, draw);
  const auto second = runner.map<std::uint64_t>(20, draw);
  EXPECT_EQ(first, second);
}

TEST(SweepRunner, ScenarioSeedsAreStableAndDistinct) {
  SweepRunner runner{{2, 99}};
  std::set<std::uint64_t> seeds;
  for (std::size_t i = 0; i < 1000; ++i) {
    const auto seed = runner.scenario_seed(i);
    EXPECT_EQ(seed, runner.scenario_seed(i));
    seeds.insert(seed);
  }
  EXPECT_EQ(seeds.size(), 1000u);
  // A different base seed derives a different schedule.
  SweepRunner other{{2, 100}};
  EXPECT_NE(runner.scenario_seed(0), other.scenario_seed(0));
}

TEST(SweepRunner, EveryIndexRunsExactlyOnce) {
  SweepRunner runner{{8, 5}};
  std::vector<std::atomic<int>> hits(257);
  runner.run_indexed(hits.size(),
                     [&](std::size_t index) { hits[index]++; });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(SweepRunner, EmptySweepIsANoop) {
  SweepRunner runner{{4, 1}};
  const auto results =
      runner.map<int>(0, [](std::size_t, Rng&) { return 1; });
  EXPECT_TRUE(results.empty());
}

TEST(SweepRunner, FirstFailingIndexPropagates) {
  SweepRunner runner{{4, 1}};
  try {
    runner.run_indexed(64, [](std::size_t index) {
      if (index % 7 == 3) {  // smallest failing index is 3
        throw std::runtime_error("scenario " + std::to_string(index));
      }
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "scenario 3");
  }
}

TEST(SweepRunner, ProgressCallbackSeesEveryCompletion) {
  SweepRunner runner{{8, 5}};
  std::vector<std::size_t> seen;
  runner.set_progress_callback([&](std::size_t done, std::size_t total) {
    EXPECT_EQ(total, 100u);
    seen.push_back(done);  // unsynchronized on purpose: callback serializes
  });
  std::atomic<int> ran{0};
  runner.run_indexed(100, [&](std::size_t) { ran++; });
  EXPECT_EQ(ran.load(), 100);
  ASSERT_EQ(seen.size(), 100u);
  for (std::size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i], i + 1);  // completion-ordered: 1, 2, ..., total
  }
}

TEST(SweepRunner, ProgressCallbackCountsFailedScenarios) {
  SweepRunner runner{{4, 1}};
  std::size_t last = 0;
  runner.set_progress_callback(
      [&](std::size_t done, std::size_t) { last = done; });
  EXPECT_THROW(runner.run_indexed(32,
                                  [](std::size_t index) {
                                    if (index == 5) {
                                      throw std::runtime_error("boom");
                                    }
                                  }),
               std::runtime_error);
  EXPECT_EQ(last, 32u);  // a failed scenario still counts as done
}

TEST(SweepRunner, DefaultThreadCountIsPositive) {
  SweepRunner runner{};
  EXPECT_GE(runner.num_threads(), 1u);
}

}  // namespace
}  // namespace netpp
