#include "netpp/sim/engine.h"

#include <gtest/gtest.h>

#include <vector>

namespace netpp {
namespace {

using namespace netpp::literals;

TEST(SimEngine, StartsAtZeroAndEmpty) {
  SimEngine engine;
  EXPECT_DOUBLE_EQ(engine.now().value(), 0.0);
  EXPECT_TRUE(engine.empty());
  EXPECT_EQ(engine.pending_events(), 0u);
}

TEST(SimEngine, ExecutesInTimeOrder) {
  SimEngine engine;
  std::vector<int> order;
  engine.schedule_at(3.0_s, [&] { order.push_back(3); });
  engine.schedule_at(1.0_s, [&] { order.push_back(1); });
  engine.schedule_at(2.0_s, [&] { order.push_back(2); });
  EXPECT_EQ(engine.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(engine.now().value(), 3.0);
}

TEST(SimEngine, TiesBreakFifo) {
  SimEngine engine;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    engine.schedule_at(1.0_s, [&order, i] { order.push_back(i); });
  }
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimEngine, ScheduleAfterIsRelative) {
  SimEngine engine;
  double fired_at = -1.0;
  engine.schedule_at(2.0_s, [&] {
    engine.schedule_after(1.5_s, [&] { fired_at = engine.now().value(); });
  });
  engine.run();
  EXPECT_DOUBLE_EQ(fired_at, 3.5);
}

TEST(SimEngine, EventsCanScheduleMoreEvents) {
  SimEngine engine;
  int count = 0;
  std::function<void()> tick = [&] {
    ++count;
    if (count < 10) engine.schedule_after(1.0_s, tick);
  };
  engine.schedule_at(0.0_s, tick);
  EXPECT_EQ(engine.run(), 10u);
  EXPECT_DOUBLE_EQ(engine.now().value(), 9.0);
}

TEST(SimEngine, CancelPreventsExecution) {
  SimEngine engine;
  bool ran = false;
  const auto id = engine.schedule_at(1.0_s, [&] { ran = true; });
  EXPECT_TRUE(engine.cancel(id));
  EXPECT_EQ(engine.run(), 0u);
  EXPECT_FALSE(ran);
}

TEST(SimEngine, CancelTwiceFails) {
  SimEngine engine;
  const auto id = engine.schedule_at(1.0_s, [] {});
  EXPECT_TRUE(engine.cancel(id));
  EXPECT_FALSE(engine.cancel(id));
}

TEST(SimEngine, CancelAfterFiringFails) {
  SimEngine engine;
  const auto id = engine.schedule_at(1.0_s, [] {});
  engine.run();
  EXPECT_FALSE(engine.cancel(id));
}

TEST(SimEngine, RunUntilStopsAtDeadlineAndAdvancesClock) {
  SimEngine engine;
  std::vector<double> fired;
  for (double t : {1.0, 2.0, 3.0, 4.0}) {
    engine.schedule_at(Seconds{t}, [&fired, &engine] {
      fired.push_back(engine.now().value());
    });
  }
  EXPECT_EQ(engine.run_until(2.5_s), 2u);
  EXPECT_EQ(fired, (std::vector<double>{1.0, 2.0}));
  EXPECT_DOUBLE_EQ(engine.now().value(), 2.5);
  EXPECT_EQ(engine.pending_events(), 2u);
  engine.run();
  EXPECT_EQ(fired.size(), 4u);
}

TEST(SimEngine, RunUntilInclusiveOfDeadline) {
  SimEngine engine;
  bool ran = false;
  engine.schedule_at(2.0_s, [&] { ran = true; });
  engine.run_until(2.0_s);
  EXPECT_TRUE(ran);
}

TEST(SimEngine, RunUntilWithDrainedQueueAdvancesClock) {
  SimEngine engine;
  engine.run_until(5.0_s);
  EXPECT_DOUBLE_EQ(engine.now().value(), 5.0);
}

TEST(SimEngine, StepExecutesOne) {
  SimEngine engine;
  int count = 0;
  engine.schedule_at(1.0_s, [&] { ++count; });
  engine.schedule_at(2.0_s, [&] { ++count; });
  EXPECT_TRUE(engine.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(engine.step());
  EXPECT_FALSE(engine.step());
}

TEST(SimEngine, InvalidSchedulesThrow) {
  SimEngine engine;
  engine.schedule_at(5.0_s, [] {});
  engine.run();
  EXPECT_THROW(engine.schedule_at(1.0_s, [] {}), std::invalid_argument);
  EXPECT_THROW(engine.schedule_after(Seconds{-1.0}, [] {}),
               std::invalid_argument);
  EXPECT_THROW(engine.schedule_at(10.0_s, nullptr), std::invalid_argument);
  EXPECT_THROW(engine.run_until(1.0_s), std::invalid_argument);
}

}  // namespace
}  // namespace netpp
