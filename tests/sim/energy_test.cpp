#include "netpp/sim/energy.h"

#include <gtest/gtest.h>

namespace netpp {
namespace {

using namespace netpp::literals;

TEST(EnergyMeter, ConstantPowerIntegrates) {
  EnergyMeter meter{750.0_W, 750.0_W};
  EXPECT_DOUBLE_EQ(meter.energy(10.0_s).value(), 7500.0);
  EXPECT_DOUBLE_EQ(meter.average_power(10.0_s).value(), 750.0);
}

TEST(EnergyMeter, PowerStateChanges) {
  EnergyMeter meter{100.0_W, 100.0_W};
  meter.set_power(5.0_s, 20.0_W);   // 100 W for 5 s, then 20 W
  EXPECT_DOUBLE_EQ(meter.energy(10.0_s).value(), 500.0 + 100.0);
  EXPECT_DOUBLE_EQ(meter.average_power(10.0_s).value(), 60.0);
  EXPECT_DOUBLE_EQ(meter.current_power().value(), 20.0);
}

TEST(EnergyMeter, EfficiencyOfIdealDevice) {
  // A device that draws max power exactly while loaded and zero otherwise.
  EnergyMeter meter{100.0_W, 0.0_W};
  meter.set_load(0.0_s, 0.0);
  meter.set_power(2.0_s, 100.0_W);
  meter.set_load(2.0_s, 1.0);
  meter.set_power(4.0_s, 0.0_W);
  meter.set_load(4.0_s, 0.0);
  EXPECT_NEAR(meter.efficiency(10.0_s), 1.0, 1e-12);
}

TEST(EnergyMeter, EfficiencyOfPaperBaselineNetwork) {
  // 10%-proportional device, active 10% of a 10 s window: ~11% efficiency,
  // matching the paper's §3.1 number.
  EnergyMeter meter{100.0_W, 90.0_W};  // idle draw 90 W
  meter.set_power(0.0_s, 90.0_W);
  meter.set_power(9.0_s, 100.0_W);  // active for the last second
  meter.set_load(9.0_s, 1.0);
  EXPECT_NEAR(meter.efficiency(10.0_s), 100.0 / (90.0 * 9.0 + 100.0), 1e-9);
  EXPECT_NEAR(meter.efficiency(10.0_s), 0.11, 0.005);
}

TEST(EnergyMeter, EfficiencyWithNoEnergyIsOne) {
  EnergyMeter meter{100.0_W, 0.0_W};
  EXPECT_DOUBLE_EQ(meter.efficiency(5.0_s), 1.0);
}

TEST(EnergyMeter, AverageLoad) {
  EnergyMeter meter{100.0_W, 50.0_W};
  meter.set_load(5.0_s, 1.0);
  EXPECT_DOUBLE_EQ(meter.average_load(10.0_s), 0.5);
}

TEST(EnergyMeter, InvalidInputsThrow) {
  EXPECT_THROW((EnergyMeter{Watts{-1.0}, 0.0_W}), std::invalid_argument);
  EnergyMeter meter{100.0_W, 50.0_W};
  EXPECT_THROW(meter.set_power(1.0_s, Watts{-5.0}), std::invalid_argument);
  EXPECT_THROW(meter.set_load(1.0_s, 1.5), std::invalid_argument);
  EXPECT_THROW(meter.set_load(1.0_s, -0.5), std::invalid_argument);
}

TEST(EnergyLedger, AggregatesMeters) {
  EnergyLedger ledger;
  const auto gpu = ledger.add("gpu", 500.0_W, 500.0_W);
  const auto nic = ledger.add("nic", 25.0_W, 25.0_W);
  EXPECT_EQ(ledger.size(), 2u);
  EXPECT_EQ(ledger.name(gpu), "gpu");
  EXPECT_EQ(ledger.name(nic), "nic");
  ledger.meter(gpu).set_power(5.0_s, 75.0_W);
  EXPECT_DOUBLE_EQ(ledger.total_energy(10.0_s).value(),
                   (500.0 * 5.0 + 75.0 * 5.0) + 25.0 * 10.0);
  EXPECT_DOUBLE_EQ(ledger.total_average_power(10.0_s).value(),
                   287.5 + 25.0);
}

TEST(EnergyLedger, OutOfRangeThrows) {
  EnergyLedger ledger;
  EXPECT_THROW((void)ledger.meter(0), std::out_of_range);
}

}  // namespace
}  // namespace netpp
