// Tests for the collective traffic patterns: volume conservation (every
// collective moves the same bandwidth-optimal total per host), pattern
// structure, and locality differences.
#include <gtest/gtest.h>

#include <map>

#include "netpp/traffic/generators.h"

namespace netpp {
namespace {

using namespace netpp::literals;

std::vector<NodeId> fake_hosts(int n) {
  std::vector<NodeId> hosts;
  for (int i = 0; i < n; ++i) hosts.push_back(static_cast<NodeId>(i));
  return hosts;
}

MlTrafficConfig one_iteration(CollectiveKind kind) {
  MlTrafficConfig cfg;
  cfg.iterations = 1;
  cfg.collective = kind;
  cfg.volume_per_host = Bits::from_gigabits(64.0);
  return cfg;
}

double sent_by_host(const MlTraffic& traffic, NodeId host) {
  double total = 0.0;
  for (const auto& flow : traffic.flows) {
    if (flow.src == host) total += flow.size.value();
  }
  return total;
}

TEST(Collectives, AllKindsMoveTheSameVolumePerHost) {
  const auto hosts = fake_hosts(8);
  const double expected =
      Bits::from_gigabits(64.0).value() * 2.0 * 7.0 / 8.0;
  for (auto kind : {CollectiveKind::kRing, CollectiveKind::kHalvingDoubling,
                    CollectiveKind::kAllToAll}) {
    const auto traffic =
        make_ml_training_traffic(hosts, one_iteration(kind));
    for (NodeId host : hosts) {
      EXPECT_NEAR(sent_by_host(traffic, host), expected, expected * 1e-12)
          << "kind " << static_cast<int>(kind) << " host " << host;
    }
  }
}

TEST(Collectives, RingHasOneFlowPerHost) {
  const auto traffic = make_ml_training_traffic(
      fake_hosts(8), one_iteration(CollectiveKind::kRing));
  EXPECT_EQ(traffic.flows.size(), 8u);
}

TEST(Collectives, HalvingDoublingHasLogRounds) {
  const auto traffic = make_ml_training_traffic(
      fake_hosts(8), one_iteration(CollectiveKind::kHalvingDoubling));
  // 3 rounds x 8 hosts.
  EXPECT_EQ(traffic.flows.size(), 24u);
  // Every flow's partner is src XOR a power of two.
  for (const auto& flow : traffic.flows) {
    const NodeId diff = flow.src ^ flow.dst;
    EXPECT_NE(diff, 0u);
    EXPECT_EQ(diff & (diff - 1), 0u) << "not a power-of-two stride";
  }
}

TEST(Collectives, HalvingDoublingRoundVolumesHalve) {
  const auto traffic = make_ml_training_traffic(
      fake_hosts(4), one_iteration(CollectiveKind::kHalvingDoubling));
  // Strides 1 and 2; stride-1 flows carry twice the stride-2 flows.
  std::map<NodeId, double> by_stride;
  for (const auto& flow : traffic.flows) {
    by_stride[flow.src ^ flow.dst] = flow.size.value();
  }
  ASSERT_EQ(by_stride.size(), 2u);
  EXPECT_NEAR(by_stride[1], 2.0 * by_stride[2], 1e-9);
}

TEST(Collectives, AllToAllIsComplete) {
  const auto hosts = fake_hosts(6);
  const auto traffic = make_ml_training_traffic(
      hosts, one_iteration(CollectiveKind::kAllToAll));
  EXPECT_EQ(traffic.flows.size(), 6u * 5u);
  // Uniform sizes.
  for (const auto& flow : traffic.flows) {
    EXPECT_NEAR(flow.size.value(), traffic.flows[0].size.value(), 1e-9);
    EXPECT_NE(flow.src, flow.dst);
  }
}

TEST(Collectives, HalvingDoublingRequiresPowerOfTwo) {
  EXPECT_THROW(
      make_ml_training_traffic(fake_hosts(6),
                               one_iteration(CollectiveKind::kHalvingDoubling)),
      std::invalid_argument);
  EXPECT_NO_THROW(make_ml_training_traffic(
      fake_hosts(16), one_iteration(CollectiveKind::kHalvingDoubling)));
}

TEST(Collectives, RingIsMostLocalPattern) {
  // Mean |src-dst| index distance: ring = 1 (mod wrap), all-to-all ~ n/3.
  const auto hosts = fake_hosts(8);
  const auto ring = make_ml_training_traffic(
      hosts, one_iteration(CollectiveKind::kRing));
  const auto a2a = make_ml_training_traffic(
      hosts, one_iteration(CollectiveKind::kAllToAll));
  const auto mean_distance = [&](const MlTraffic& t) {
    double sum = 0.0;
    for (const auto& f : t.flows) {
      const int d = std::abs(static_cast<int>(f.src) -
                             static_cast<int>(f.dst));
      sum += std::min(d, 8 - d);
    }
    return sum / static_cast<double>(t.flows.size());
  };
  EXPECT_LT(mean_distance(ring), mean_distance(a2a));
}

}  // namespace
}  // namespace netpp
