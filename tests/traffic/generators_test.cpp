#include "netpp/traffic/generators.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace netpp {
namespace {

using namespace netpp::literals;

std::vector<NodeId> fake_hosts(int n) {
  std::vector<NodeId> hosts;
  for (int i = 0; i < n; ++i) hosts.push_back(static_cast<NodeId>(i));
  return hosts;
}

TEST(MlTraffic, RingFlowsPerIteration) {
  MlTrafficConfig cfg;
  cfg.iterations = 3;
  const auto traffic = make_ml_training_traffic(fake_hosts(8), cfg);
  EXPECT_EQ(traffic.flows.size(), 8u * 3u);
  EXPECT_EQ(traffic.schedule.size(), 3u);
}

TEST(MlTraffic, RingNeighborsAndVolume) {
  MlTrafficConfig cfg;
  cfg.iterations = 1;
  cfg.volume_per_host = Bits::from_gigabits(80.0);
  const auto hosts = fake_hosts(4);
  const auto traffic = make_ml_training_traffic(hosts, cfg);
  // 2(n-1)/n * 80 = 120 Gbit per flow for n=4.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(traffic.flows[i].src, hosts[i]);
    EXPECT_EQ(traffic.flows[i].dst, hosts[(i + 1) % 4]);
    EXPECT_NEAR(traffic.flows[i].size.gigabits(), 120.0, 1e-9);
  }
}

TEST(MlTraffic, PhaseStructureIsRespected) {
  MlTrafficConfig cfg;
  cfg.compute_time = 0.9_s;
  cfg.comm_allowance = 0.1_s;
  cfg.iterations = 3;
  const auto traffic = make_ml_training_traffic(fake_hosts(4), cfg);
  for (const auto& w : traffic.schedule) {
    EXPECT_DOUBLE_EQ(w.compute_begin.value(), w.iteration * 1.0);
    EXPECT_DOUBLE_EQ(w.comm_begin.value(), w.iteration * 1.0 + 0.9);
  }
  for (const auto& flow : traffic.flows) {
    const auto& w = traffic.schedule[flow.tag];
    EXPECT_DOUBLE_EQ(flow.start.value(), w.comm_begin.value());
  }
}

TEST(MlTraffic, InvalidConfigThrows) {
  EXPECT_THROW(make_ml_training_traffic(fake_hosts(1), MlTrafficConfig{}),
               std::invalid_argument);
  MlTrafficConfig cfg;
  cfg.iterations = 0;
  EXPECT_THROW(make_ml_training_traffic(fake_hosts(4), cfg),
               std::invalid_argument);
  cfg = MlTrafficConfig{};
  cfg.volume_per_host = Bits{0.0};
  EXPECT_THROW(make_ml_training_traffic(fake_hosts(4), cfg),
               std::invalid_argument);
}

TEST(PoissonTraffic, DeterministicForSeed) {
  PoissonTrafficConfig cfg;
  cfg.duration = 2.0_s;
  const auto a = make_poisson_traffic(fake_hosts(8), cfg);
  const auto b = make_poisson_traffic(fake_hosts(8), cfg);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].src, b[i].src);
    EXPECT_DOUBLE_EQ(a[i].start.value(), b[i].start.value());
    EXPECT_DOUBLE_EQ(a[i].size.value(), b[i].size.value());
  }
}

TEST(PoissonTraffic, RateIsApproximatelyRespected) {
  PoissonTrafficConfig cfg;
  cfg.arrivals_per_second = 500.0;
  cfg.duration = 20.0_s;
  const auto flows = make_poisson_traffic(fake_hosts(8), cfg);
  EXPECT_NEAR(static_cast<double>(flows.size()), 10000.0, 300.0);
}

TEST(PoissonTraffic, NoSelfFlowsAndSorted) {
  PoissonTrafficConfig cfg;
  cfg.duration = 5.0_s;
  const auto flows = make_poisson_traffic(fake_hosts(4), cfg);
  ASSERT_FALSE(flows.empty());
  for (std::size_t i = 0; i < flows.size(); ++i) {
    EXPECT_NE(flows[i].src, flows[i].dst);
    if (i > 0) {
      EXPECT_GE(flows[i].start.value(), flows[i - 1].start.value());
    }
    EXPECT_GE(flows[i].size.value(), cfg.min_size.value() * (1 - 1e-9));
    EXPECT_LE(flows[i].size.value(), cfg.max_size.value() * (1 + 1e-9));
  }
}

TEST(DiurnalTraffic, PeakHourHasMoreArrivalsThanTrough) {
  DiurnalTrafficConfig cfg;
  cfg.peak_arrivals_per_second = 2000.0;
  cfg.trough_ratio = 0.2;
  cfg.peak_hour = 12.0;
  cfg.day_duration = 24.0_s;  // 1 s per "hour"
  const auto flows = make_diurnal_traffic(fake_hosts(8), cfg);
  ASSERT_GT(flows.size(), 100u);
  // Count arrivals in hour 12 (peak) vs hour 0 (trough).
  int peak = 0, trough = 0;
  for (const auto& f : flows) {
    const double hour = f.start.value();
    if (hour >= 12.0 && hour < 13.0) ++peak;
    if (hour < 1.0) ++trough;
  }
  EXPECT_GT(peak, 2 * trough);
}

TEST(DiurnalTraffic, MultipleDaysAreTagged) {
  DiurnalTrafficConfig cfg;
  cfg.day_duration = 5.0_s;
  cfg.days = 3;
  const auto flows = make_diurnal_traffic(fake_hosts(4), cfg);
  std::uint64_t max_tag = 0;
  for (const auto& f : flows) {
    EXPECT_LT(f.start.value(), 15.0);
    max_tag = std::max(max_tag, f.tag);
  }
  EXPECT_EQ(max_tag, 2u);
}

TEST(DiurnalTraffic, InvalidConfigThrows) {
  DiurnalTrafficConfig cfg;
  cfg.trough_ratio = 0.0;
  EXPECT_THROW(make_diurnal_traffic(fake_hosts(4), cfg),
               std::invalid_argument);
  cfg = DiurnalTrafficConfig{};
  cfg.days = 0;
  EXPECT_THROW(make_diurnal_traffic(fake_hosts(4), cfg),
               std::invalid_argument);
}

}  // namespace
}  // namespace netpp
