#include "netpp/traffic/training_loop.h"

#include <gtest/gtest.h>

#include "netpp/topo/builders.h"
#include "netpp/workload/phase_model.h"

namespace netpp {
namespace {

using namespace netpp::literals;

struct Rig {
  explicit Rig(Gbps speed = 100_Gbps) : topo(build_fat_tree(4, speed)) {}
  BuiltTopology topo;
  SimEngine engine;
  Router router{topo.graph};
  FlowSimulator sim{topo.graph, router, engine};
};

TEST(TrainingLoop, RunsAllIterations) {
  Rig rig;
  TrainingLoopConfig cfg;
  cfg.iterations = 4;
  cfg.compute_time = 0.9_s;
  cfg.volume_per_host = Bits::from_gigabits(2.0);
  TrainingLoopSim loop{rig.sim, rig.topo.hosts, cfg};
  loop.start();
  rig.engine.run();
  ASSERT_TRUE(loop.finished());
  ASSERT_EQ(loop.records().size(), 4u);
  for (const auto& r : loop.records()) {
    EXPECT_GT(r.communication_time().value(), 0.0);
    EXPECT_NEAR((r.comm_begin - r.compute_begin).value(), 0.9, 1e-9);
  }
}

TEST(TrainingLoop, IterationsAreSequential) {
  Rig rig;
  TrainingLoopConfig cfg;
  cfg.iterations = 3;
  cfg.volume_per_host = Bits::from_gigabits(2.0);
  TrainingLoopSim loop{rig.sim, rig.topo.hosts, cfg};
  loop.start();
  rig.engine.run();
  const auto& records = loop.records();
  for (std::size_t i = 1; i < records.size(); ++i) {
    // Next compute starts exactly when the previous comm finished.
    EXPECT_NEAR(records[i].compute_begin.value(),
                records[i - 1].comm_end.value(), 1e-9);
  }
}

TEST(TrainingLoop, CommunicationTimeMatchesAnalyticScaling) {
  // Ring all-reduce on same-speed access links without fabric contention:
  // per-flow size / line rate. The analytic WorkloadModel predicts comm
  // time scales as 1/bandwidth; measure at two speeds.
  const auto measure = [](double gbps) {
    Rig rig{Gbps{gbps}};
    TrainingLoopConfig cfg;
    cfg.iterations = 2;
    cfg.volume_per_host = Bits::from_gigabits(8.0);
    TrainingLoopSim loop{rig.sim, rig.topo.hosts, cfg};
    loop.start();
    rig.engine.run();
    return loop.mean_communication_time().value();
  };
  const double at100 = measure(100.0);
  const double at200 = measure(200.0);
  EXPECT_NEAR(at100 / at200, 2.0, 0.05);
  // Absolute: flow = 2*(15/16)*8 Gbit = 15 Gbit at 100 G -> 0.15 s.
  EXPECT_NEAR(at100, 0.15, 0.02);
}

TEST(TrainingLoop, MeasuredRatioTracksAnalyticModel) {
  Rig rig;
  TrainingLoopConfig cfg;
  cfg.iterations = 3;
  cfg.compute_time = 0.9_s;
  // Flow 2*(15/16)*V; want comm ~0.1 s at 100 G: V = 0.1*100/1.875 ~ 5.33.
  cfg.volume_per_host = Bits::from_gigabits(100.0 * 0.1 * 16.0 / 30.0);
  TrainingLoopSim loop{rig.sim, rig.topo.hosts, cfg};
  loop.start();
  rig.engine.run();
  for (const auto& r : loop.records()) {
    EXPECT_NEAR(r.communication_ratio(), 0.10, 0.02);
  }
}

TEST(TrainingLoop, AllToAllSlowerThanRingOnOversubscribedFabric) {
  // On a fat tree both are full-bisection-feasible, but ECMP hash
  // collisions hurt the many-flow all-to-all more; at minimum it must not
  // be faster than the ring for the same volume.
  const auto measure = [](CollectiveKind kind) {
    Rig rig;
    TrainingLoopConfig cfg;
    cfg.iterations = 2;
    cfg.collective = kind;
    cfg.volume_per_host = Bits::from_gigabits(8.0);
    TrainingLoopSim loop{rig.sim, rig.topo.hosts, cfg};
    loop.start();
    rig.engine.run();
    return loop.mean_communication_time().value();
  };
  EXPECT_GE(measure(CollectiveKind::kAllToAll),
            measure(CollectiveKind::kRing) * 0.5);
}

TEST(TrainingLoop, DisconnectedTopologyThrows) {
  Rig rig;
  // Cut a host off.
  const auto& adj = rig.topo.graph.neighbors(rig.topo.hosts[0]);
  rig.router.set_link_enabled(adj[0].link, false);
  TrainingLoopConfig cfg;
  cfg.iterations = 1;
  TrainingLoopSim loop{rig.sim, rig.topo.hosts, cfg};
  loop.start();
  EXPECT_THROW(rig.engine.run(), std::runtime_error);
}

TEST(TrainingLoop, InvalidConfigsThrow) {
  Rig rig;
  TrainingLoopConfig cfg;
  cfg.iterations = 0;
  EXPECT_THROW((TrainingLoopSim{rig.sim, rig.topo.hosts, cfg}),
               std::invalid_argument);
  cfg = TrainingLoopConfig{};
  cfg.volume_per_host = Bits{0.0};
  EXPECT_THROW((TrainingLoopSim{rig.sim, rig.topo.hosts, cfg}),
               std::invalid_argument);
  EXPECT_THROW((TrainingLoopSim{rig.sim, {rig.topo.hosts[0]},
                                TrainingLoopConfig{}}),
               std::invalid_argument);
}

}  // namespace
}  // namespace netpp
