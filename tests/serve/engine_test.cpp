// QueryEngine warm-state guarantees:
//
//   * forking the warm baseline is bit-exact — repeated forks of the same
//     image answer with byte-identical payloads, on both backends;
//   * warm answers equal cold answers — an engine that has served other
//     queries first (so the fork/cache paths are hot) produces the same
//     bytes as a fresh engine answering only that query;
//   * batches are independent of worker-thread count;
//   * the reuse accounting (EngineStats) reflects the paths taken;
//   * malformed queries become typed error envelopes in place, never
//     exceptions, and never poison the rest of a batch.
#include "netpp/serve/engine.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "netpp/serve/json.h"

namespace netpp::serve {
namespace {

/// Answers `text` and returns the ok-envelope payload string.
std::string payload_of(QueryEngine& engine, const std::string& text) {
  const JsonValue response = engine.handle(parse_json(text));
  const JsonValue* ok = response.find("ok");
  EXPECT_NE(ok, nullptr);
  if (ok == nullptr || !ok->as_bool()) {
    ADD_FAILURE() << "query failed: " << response.dump();
    return {};
  }
  return response.find("result")->find("payload")->as_string();
}

const char* const kFaultsCsv = R"({"command":"faults","seed":7,"output":"csv"})";
const char* const kFaultsShardedCsv =
    R"({"command":"faults","seed":7,"backend":"sharded","shards":2,"output":"csv"})";
const char* const kMechCsv = R"({"command":"mech","iters":2,"output":"csv"})";

TEST(QueryEngine, RepeatedForksAreBitIdentical) {
  for (const char* query : {kFaultsCsv, kFaultsShardedCsv}) {
    QueryEngine engine{EngineConfig{.result_cache = false}};
    const std::string first = payload_of(engine, query);
    ASSERT_FALSE(first.empty());
    for (int i = 0; i < 3; ++i) {
      EXPECT_EQ(payload_of(engine, query), first)
          << query << ": fork " << i << " diverged";
    }
    const EngineStats stats = engine.stats();
    EXPECT_EQ(stats.baselines_built, 1u) << query;
    EXPECT_EQ(stats.baseline_forks, 4u) << query;
    EXPECT_EQ(stats.result_reuses, 0u) << query;
  }
}

TEST(QueryEngine, WarmAnswersEqualColdAnswers) {
  // Warm engine: serve a mixed workload first so every answer below comes
  // from hot forks / composite-cache hits.
  QueryEngine warm{EngineConfig{.result_cache = false}};
  (void)payload_of(warm, R"({"command":"faults","seed":7,"output":"table"})");
  (void)payload_of(warm, R"({"command":"mech","iters":2,"output":"table"})");
  (void)payload_of(warm,
                   R"({"command":"mech","stack":"dynamic","iters":2,"output":"csv"})");

  for (const char* query :
       {kFaultsCsv, kFaultsShardedCsv, kMechCsv,
        R"({"command":"faults","seed":7,"output":"metrics"})",
        R"({"command":"mech","iters":2,"output":"metrics"})"}) {
    QueryEngine cold{EngineConfig{.result_cache = false}};
    EXPECT_EQ(payload_of(warm, query), payload_of(cold, query))
        << "warm answer diverged from cold for " << query;
  }
}

TEST(QueryEngine, BatchesAreIndependentOfThreadCount) {
  JsonValue batch = JsonValue::make_array();
  int id = 0;
  for (const char* query :
       {kFaultsCsv, kFaultsShardedCsv, kMechCsv,
        R"({"command":"mech","stack":"dynamic","iters":2,"output":"csv"})",
        R"({"command":"savings","prop":0.85,"output":"csv"})",
        R"({"command":"faults","seed":11,"output":"csv"})"}) {
    JsonValue q = parse_json(query);
    q.set("id", JsonValue::make_number(id++));
    batch.push_back(std::move(q));
  }
  std::vector<std::string> responses;
  for (const std::size_t threads : {1u, 4u}) {
    QueryEngine engine{
        EngineConfig{.num_threads = threads, .result_cache = false}};
    responses.push_back(engine.handle(batch).dump());
  }
  EXPECT_EQ(responses[0], responses[1])
      << "batch answers depend on the worker-thread count";
}

TEST(QueryEngine, ResultCacheShortCircuitsIdenticalQueries) {
  QueryEngine engine;  // result_cache on by default
  const std::string first = payload_of(engine, kMechCsv);
  EXPECT_EQ(payload_of(engine, kMechCsv), first);
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.queries, 2u);
  EXPECT_EQ(stats.result_reuses, 1u);
}

TEST(QueryEngine, MechQueriesShareTheCompositeCache) {
  QueryEngine engine{EngineConfig{.result_cache = false}};
  const std::string first = payload_of(engine, kMechCsv);
  EXPECT_EQ(payload_of(engine, kMechCsv), first);
  // The second run reused backend simulations and stage totals instead of
  // resimulating from scratch.
  const EngineStats stats = engine.stats();
  EXPECT_GT(stats.sim_reuses, 0u);
  EXPECT_GT(stats.stage_reuses, 0u);
}

TEST(QueryEngine, ErrorsBecomeTypedEnvelopesInPlace) {
  QueryEngine engine;
  // Malformed text: a bad_json envelope, not an exception.
  const std::string bad = engine.handle_text("this is not json");
  EXPECT_NE(bad.find("\"ok\":false"), std::string::npos);
  EXPECT_NE(bad.find("\"code\":\"bad_json\""), std::string::npos);
  // A batch with one bad query answers the good ones and slots a typed
  // error envelope at the bad one's position.
  const JsonValue response = engine.handle(parse_json(
      R"([{"command":"cluster","output":"csv","id":0},)"
      R"({"command":"faults","mttr_s":0,"id":1},)"
      R"({"command":"savings","prop":0.5,"id":2}])"));
  const std::vector<JsonValue>& answers = response.as_array();
  ASSERT_EQ(answers.size(), 3u);
  EXPECT_TRUE(answers[0].find("ok")->as_bool());
  EXPECT_FALSE(answers[1].find("ok")->as_bool());
  EXPECT_EQ(answers[1].find("error")->find("code")->as_string(),
            "out_of_range");
  EXPECT_EQ(answers[1].find("id")->as_number(), 1.0);
  EXPECT_TRUE(answers[2].find("ok")->as_bool());
}

TEST(QueryEngine, EchoesTheQueryId) {
  QueryEngine engine;
  const JsonValue response = engine.handle(
      parse_json(R"({"command":"cluster","output":"csv","id":"alpha"})"));
  EXPECT_EQ(response.find("id")->as_string(), "alpha");
  // No id: echoed as null.
  const JsonValue anon =
      engine.handle(parse_json(R"({"command":"cluster","output":"csv"})"));
  EXPECT_TRUE(anon.find("id")->is_null());
}

}  // namespace
}  // namespace netpp::serve
