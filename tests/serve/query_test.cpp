// Query parsing and the typed-error taxonomy: every schema violation must
// surface as a ServeError with the documented machine-readable code and the
// offending field, and cache_key must identify queries up to their id.
#include "netpp/serve/query.h"

#include <string>

#include <gtest/gtest.h>

#include "netpp/serve/json.h"
#include "netpp/serve/protocol.h"

namespace netpp::serve {
namespace {

Query parse(const std::string& text) { return parse_query(parse_json(text)); }

/// Asserts `text` is rejected with `code` on `field`.
void expect_rejected(const std::string& text, ErrorCode code,
                     const std::string& field) {
  try {
    (void)parse(text);
    FAIL() << "accepted: " << text;
  } catch (const ServeError& e) {
    EXPECT_EQ(e.code(), code) << text << " -> " << e.what();
    EXPECT_EQ(e.field(), field) << text << " -> " << e.what();
  }
}

TEST(ParseQuery, MinimalQueryGetsCliDefaults) {
  const Query q = parse(R"({"command":"faults"})");
  EXPECT_EQ(q.kind, QueryKind::kFaults);
  EXPECT_EQ(q.output, QueryOutput::kCsv);
  EXPECT_TRUE(q.id.is_null());
  // The ScenarioOptions defaults are the CLI defaults.
  EXPECT_DOUBLE_EQ(q.opt.mtbf_s, 10.0);
  EXPECT_DOUBLE_EQ(q.opt.mttr_s, 0.5);
  EXPECT_EQ(q.opt.fault_seed, 1u);
}

TEST(ParseQuery, OverridesAndIdEcho) {
  const Query q = parse(
      R"({"command":"mech","stack":"dynamic","iters":2,"ocs":8,)"
      R"("output":"table","id":7})");
  EXPECT_EQ(q.kind, QueryKind::kMech);
  EXPECT_EQ(q.output, QueryOutput::kTable);
  EXPECT_DOUBLE_EQ(q.id.as_number(), 7.0);
  EXPECT_EQ(q.opt.stack, "dynamic");
  EXPECT_EQ(q.opt.mech_iterations, 2);
  EXPECT_EQ(q.opt.mech_ocs_devices, 8);
}

TEST(ParseQuery, RequestLevelErrors) {
  expect_rejected("[1,2]", ErrorCode::kBadRequest, "");
  expect_rejected(R"({"output":"csv"})", ErrorCode::kBadRequest, "command");
  expect_rejected(R"({"command":"warp"})", ErrorCode::kUnknownCommand,
                  "command");
  expect_rejected(R"({"command":3})", ErrorCode::kBadValue, "command");
}

TEST(ParseQuery, FieldLevelErrors) {
  // A field outside the command's schema.
  expect_rejected(R"({"command":"mech","frobnicate":1})",
                  ErrorCode::kUnknownField, "frobnicate");
  // A faults-only knob on a mech query is just as unknown.
  expect_rejected(R"({"command":"mech","mtbf_s":3})", ErrorCode::kUnknownField,
                  "mtbf_s");
  // Wrong JSON type / unknown enum string.
  expect_rejected(R"({"command":"faults","seed":"7"})", ErrorCode::kBadValue,
                  "seed");
  expect_rejected(R"({"command":"mech","stack":"everything"})",
                  ErrorCode::kBadValue, "stack");
  expect_rejected(R"({"command":"cluster","output":"hologram"})",
                  ErrorCode::kBadValue, "output");
  // metrics output needs a simulated command.
  expect_rejected(R"({"command":"cluster","output":"metrics"})",
                  ErrorCode::kBadValue, "output");
  // An id must be a scalar to echo cleanly.
  expect_rejected(R"({"command":"cluster","id":[1]})", ErrorCode::kBadValue,
                  "id");
}

TEST(ParseQuery, RangeAndBackendErrors) {
  expect_rejected(R"({"command":"faults","mttr_s":0})", ErrorCode::kOutOfRange,
                  "mttr_s");
  expect_rejected(R"({"command":"mech","iters":0})", ErrorCode::kOutOfRange,
                  "iters");
  expect_rejected(R"({"command":"faults","backend":"banana"})",
                  ErrorCode::kBadValue, "backend");
  expect_rejected(R"({"command":"faults","backend":"single","shards":4})",
                  ErrorCode::kBackendMismatch, "shards");
  expect_rejected(R"({"command":"mech","backend":"sharded","shards":0})",
                  ErrorCode::kOutOfRange, "shards");
}

TEST(CacheKey, IdentifiesQueriesUpToId) {
  const Query a = parse(R"({"command":"faults","seed":7,"id":1})");
  const Query b = parse(R"({"command":"faults","seed":7,"id":"other"})");
  const Query c = parse(R"({"command":"faults","seed":8,"id":1})");
  EXPECT_EQ(cache_key(a), cache_key(b));
  EXPECT_NE(cache_key(a), cache_key(c));
  // Output format is part of the rendered answer, so part of the key.
  const Query d = parse(R"({"command":"faults","seed":7,"output":"table"})");
  EXPECT_NE(cache_key(a), cache_key(d));
}

TEST(ErrorEnvelope, CarriesTheWireContract) {
  const JsonValue env = make_error_response(
      JsonValue::make_number(4), ErrorCode::kOutOfRange, "mttr_s",
      "mttr_s must be > 0");
  EXPECT_EQ(
      env.dump(),
      R"({"ok":false,"id":4,"error":{"code":"out_of_range",)"
      R"("field":"mttr_s","message":"mttr_s must be > 0"}})");
  // Every code has a stable string form.
  EXPECT_STREQ(to_string(ErrorCode::kBadFrame), "bad_frame");
  EXPECT_STREQ(to_string(ErrorCode::kBadJson), "bad_json");
  EXPECT_STREQ(to_string(ErrorCode::kCorruptBaseline), "corrupt_baseline");
  EXPECT_STREQ(to_string(ErrorCode::kInternal), "internal");
}

TEST(Framing, EncodeFrameIsLittleEndianLengthPlusBytes) {
  const std::string frame = encode_frame("abc");
  ASSERT_EQ(frame.size(), 7u);
  EXPECT_EQ(static_cast<unsigned char>(frame[0]), 3u);
  EXPECT_EQ(static_cast<unsigned char>(frame[1]), 0u);
  EXPECT_EQ(static_cast<unsigned char>(frame[2]), 0u);
  EXPECT_EQ(static_cast<unsigned char>(frame[3]), 0u);
  EXPECT_EQ(frame.substr(4), "abc");
}

}  // namespace
}  // namespace netpp::serve
