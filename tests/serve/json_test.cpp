// The serve JSON layer: strict parsing, deterministic serialization, and
// the "Json: ..." rejection contract the bad_json envelope is built on.
#include "netpp/serve/json.h"

#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

namespace netpp::serve {
namespace {

TEST(JsonParse, ScalarsRoundTrip) {
  EXPECT_TRUE(parse_json("null").is_null());
  EXPECT_TRUE(parse_json("true").as_bool());
  EXPECT_FALSE(parse_json(" false ").as_bool());
  EXPECT_DOUBLE_EQ(parse_json("3.5").as_number(), 3.5);
  EXPECT_DOUBLE_EQ(parse_json("-17").as_number(), -17.0);
  EXPECT_DOUBLE_EQ(parse_json("1e3").as_number(), 1000.0);
  EXPECT_EQ(parse_json("\"hi\"").as_string(), "hi");
}

TEST(JsonParse, StringEscapes) {
  const JsonValue v = parse_json(R"("a\"b\\c\nd\teA")");
  EXPECT_EQ(v.as_string(), "a\"b\\c\nd\teA");
}

TEST(JsonParse, NestedContainers) {
  const JsonValue v =
      parse_json(R"({"command":"mech","knobs":[1,2,3],"deep":{"x":true}})");
  ASSERT_EQ(v.kind(), JsonKind::kObject);
  EXPECT_EQ(v.find("command")->as_string(), "mech");
  ASSERT_EQ(v.find("knobs")->as_array().size(), 3u);
  EXPECT_DOUBLE_EQ(v.find("knobs")->as_array()[2].as_number(), 3.0);
  EXPECT_TRUE(v.find("deep")->find("x")->as_bool());
  EXPECT_EQ(v.find("absent"), nullptr);
}

TEST(JsonParse, RejectsMalformedInputWithJsonPrefix) {
  const char* bad[] = {
      "",           "{",          "[1,]",     "{\"a\":}",  "\"unterminated",
      "tru",        "1 2",        "{\"a\" 1}", "\"bad \\q esc\"",
      "{\"a\":1,}", "[1,2] tail", "nan",      "{\"a\":1,\"a\":2}",
  };
  for (const char* text : bad) {
    try {
      (void)parse_json(text);
      FAIL() << "accepted malformed input: " << text;
    } catch (const std::invalid_argument& e) {
      EXPECT_EQ(std::string{e.what()}.rfind("Json:", 0), 0u)
          << "diagnostic for '" << text << "' is not 'Json: ...': "
          << e.what();
    }
  }
}

TEST(JsonDump, IsDeterministicAndPreservesMemberOrder) {
  JsonValue obj = JsonValue::make_object();
  obj.set("zeta", JsonValue::make_number(1));
  obj.set("alpha", JsonValue::make_string("x"));
  obj.set("flag", JsonValue::make_bool(false));
  EXPECT_EQ(obj.dump(), R"({"zeta":1,"alpha":"x","flag":false})");
  // Stable under re-parse: dump(parse(dump(v))) == dump(v).
  EXPECT_EQ(parse_json(obj.dump()).dump(), obj.dump());
}

TEST(JsonDump, IntegralNumbersPrintWithoutFraction) {
  EXPECT_EQ(JsonValue::make_number(42).dump(), "42");
  EXPECT_EQ(JsonValue::make_number(-3).dump(), "-3");
  EXPECT_EQ(JsonValue::make_number(0.25).dump(), "0.25");
}

TEST(JsonDump, EscapesControlCharactersAndQuotes) {
  EXPECT_EQ(JsonValue::make_string("a\"b\\c\nd").dump(),
            R"("a\"b\\c\nd")");
  EXPECT_EQ(json_escape("tab\there"), R"("tab\there")");
  // Round-trips through the parser.
  EXPECT_EQ(parse_json(json_escape("a\"b\\c\n\t\x01")).as_string(),
            "a\"b\\c\n\t\x01");
}

TEST(JsonValue, TypedAccessorsThrowOnKindMismatch) {
  const JsonValue num = JsonValue::make_number(1);
  EXPECT_THROW((void)num.as_string(), std::logic_error);
  EXPECT_THROW((void)num.as_array(), std::logic_error);
  EXPECT_EQ(num.find("x"), nullptr);  // non-object find is a safe nullptr
}

}  // namespace
}  // namespace netpp::serve
