#include "netpp/topo/maxflow.h"

#include <gtest/gtest.h>

namespace netpp {
namespace {

using namespace netpp::literals;

TEST(MaxFlow, SingleLink) {
  Graph g;
  const NodeId a = g.add_node(NodeKind::kHost);
  const NodeId b = g.add_node(NodeKind::kHost);
  g.add_link(a, b, 100_Gbps);
  EXPECT_DOUBLE_EQ(max_flow(g, a, b).value(), 100.0);
}

TEST(MaxFlow, SeriesTakesTheMinimum) {
  Graph g;
  const NodeId a = g.add_node(NodeKind::kHost);
  const NodeId s = g.add_node(NodeKind::kSwitch);
  const NodeId b = g.add_node(NodeKind::kHost);
  g.add_link(a, s, 100_Gbps);
  g.add_link(s, b, 40_Gbps);
  EXPECT_DOUBLE_EQ(max_flow(g, a, b).value(), 40.0);
}

TEST(MaxFlow, ParallelPathsAdd) {
  Graph g;
  const NodeId a = g.add_node(NodeKind::kHost);
  const NodeId b = g.add_node(NodeKind::kHost);
  const NodeId s1 = g.add_node(NodeKind::kSwitch);
  const NodeId s2 = g.add_node(NodeKind::kSwitch);
  g.add_link(a, s1, 100_Gbps);
  g.add_link(s1, b, 100_Gbps);
  g.add_link(a, s2, 60_Gbps);
  g.add_link(s2, b, 60_Gbps);
  EXPECT_DOUBLE_EQ(max_flow(g, a, b).value(), 160.0);
}

TEST(MaxFlow, ClassicAugmentingPathCase) {
  // The textbook diamond with a cross edge that tempts a greedy algorithm.
  Graph g;
  const NodeId s = g.add_node(NodeKind::kHost);
  const NodeId u = g.add_node(NodeKind::kSwitch);
  const NodeId v = g.add_node(NodeKind::kSwitch);
  const NodeId t = g.add_node(NodeKind::kHost);
  g.add_link(s, u, Gbps{10.0});
  g.add_link(s, v, Gbps{10.0});
  g.add_link(u, v, Gbps{1.0});
  g.add_link(u, t, Gbps{10.0});
  g.add_link(v, t, Gbps{10.0});
  EXPECT_DOUBLE_EQ(max_flow(g, s, t).value(), 20.0);
}

TEST(MaxFlow, DisconnectedIsZero) {
  Graph g;
  const NodeId a = g.add_node(NodeKind::kHost);
  const NodeId b = g.add_node(NodeKind::kHost);
  g.add_node(NodeKind::kSwitch);
  EXPECT_DOUBLE_EQ(max_flow(g, a, b).value(), 0.0);
}

TEST(MaxFlow, HostPairOnFatTreeIsAccessLimited) {
  const auto topo = build_fat_tree(4, 100_Gbps);
  EXPECT_DOUBLE_EQ(
      max_flow(topo.graph, topo.hosts.front(), topo.hosts.back()).value(),
      100.0);
}

TEST(MaxFlow, FatTreeIsFullBisection) {
  // k=4 at 100 G: 16 hosts; either half can send its full 8 x 100 G.
  const auto topo = build_fat_tree(4, 100_Gbps);
  EXPECT_DOUBLE_EQ(bisection_bandwidth(topo).value(), 800.0);
}

TEST(MaxFlow, LeafSpineBisectionLimitedBySpines) {
  // 2 leaves, 1 spine, 4 hosts/leaf at 100 G; fabric links 100 G: the
  // index split puts each leaf's hosts on one side, so all traffic crosses
  // the single leaf-spine-leaf path: 100 G.
  const auto topo = build_leaf_spine(2, 1, 4, 100_Gbps, 100_Gbps);
  EXPECT_DOUBLE_EQ(bisection_bandwidth(topo).value(), 100.0);
}

TEST(MaxFlow, OversubscriptionShowsUp) {
  // Same but with 2 spines: 200 G bisection for 400 G of host capacity
  // per side -> 2:1 oversubscribed.
  const auto topo = build_leaf_spine(2, 2, 4, 100_Gbps, 100_Gbps);
  EXPECT_DOUBLE_EQ(bisection_bandwidth(topo).value(), 200.0);
}

TEST(MaxFlow, RouterMaskReducesFlow) {
  const auto topo = build_fat_tree(4, 100_Gbps);
  Router router{topo.graph};
  const double before = bisection_bandwidth(topo, &router).value();
  // Power off half the cores: bisection halves in a k=4 fat tree.
  const auto cores = topo.graph.nodes_at_tier(3);
  router.set_node_enabled(cores[0], false);
  router.set_node_enabled(cores[1], false);
  const double after = bisection_bandwidth(topo, &router).value();
  EXPECT_DOUBLE_EQ(before, 800.0);
  EXPECT_LT(after, before);
  EXPECT_GE(after, 400.0);
}

TEST(MaxFlow, SetFlowMatchesSumOfDisjointPairs) {
  const auto topo = build_leaf_spine(2, 4, 2, 100_Gbps, 100_Gbps);
  // Hosts 0,1 on leaf 0; hosts 2,3 on leaf 1. Set flow limited by the 4
  // fabric links (400 G) vs 200 G of host access: min = 200 G.
  const Gbps flow = max_flow(topo.graph, {topo.hosts[0], topo.hosts[1]},
                             {topo.hosts[2], topo.hosts[3]});
  EXPECT_DOUBLE_EQ(flow.value(), 200.0);
}

TEST(MaxFlow, InvalidInputsThrow) {
  Graph g;
  const NodeId a = g.add_node(NodeKind::kHost);
  const NodeId b = g.add_node(NodeKind::kHost);
  g.add_link(a, b, 100_Gbps);
  EXPECT_THROW((void)max_flow(g, a, a), std::invalid_argument);
  EXPECT_THROW((void)max_flow(g, a, 99), std::out_of_range);
  const std::vector<NodeId> empty;
  const std::vector<NodeId> only_a = {a};
  const std::vector<NodeId> only_b = {b};
  EXPECT_THROW((void)max_flow(g, empty, only_b), std::invalid_argument);
  EXPECT_THROW((void)max_flow(g, only_a, only_a), std::invalid_argument);
}

// Property: powering off switches never increases bisection bandwidth.
class MaxFlowMonotonicity : public ::testing::TestWithParam<int> {};

TEST_P(MaxFlowMonotonicity, DisablingSwitchesOnlyHurts) {
  const auto topo = build_fat_tree(4, 100_Gbps);
  Router router{topo.graph};
  double prev = bisection_bandwidth(topo, &router).value();
  // Deterministically disable aggregation switches one by one.
  const auto aggs = topo.graph.nodes_at_tier(2);
  const int count = GetParam();
  for (int i = 0; i < count && i < static_cast<int>(aggs.size()); ++i) {
    router.set_node_enabled(aggs[i], false);
    const double now = bisection_bandwidth(topo, &router).value();
    EXPECT_LE(now, prev + 1e-9);
    prev = now;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, MaxFlowMonotonicity,
                         ::testing::Values(1, 2, 4, 8));

}  // namespace
}  // namespace netpp
