#include "netpp/topo/graph.h"

#include <gtest/gtest.h>

namespace netpp {
namespace {

using namespace netpp::literals;

TEST(Graph, AddNodesAndLinks) {
  Graph g;
  const NodeId a = g.add_node(NodeKind::kHost, 0, "a");
  const NodeId b = g.add_node(NodeKind::kSwitch, 1, "b");
  const LinkId l = g.add_link(a, b, 400_Gbps);
  EXPECT_EQ(g.num_nodes(), 2u);
  EXPECT_EQ(g.num_links(), 1u);
  EXPECT_EQ(g.node(a).name, "a");
  EXPECT_EQ(g.node(b).kind, NodeKind::kSwitch);
  EXPECT_EQ(g.link(l).a, a);
  EXPECT_EQ(g.link(l).b, b);
  EXPECT_DOUBLE_EQ(g.link(l).capacity.value(), 400.0);
  EXPECT_FALSE(g.link(l).optical);
}

TEST(Graph, LinkOther) {
  Graph g;
  const NodeId a = g.add_node(NodeKind::kHost);
  const NodeId b = g.add_node(NodeKind::kHost);
  const LinkId l = g.add_link(a, b, 100_Gbps);
  EXPECT_EQ(g.link(l).other(a), b);
  EXPECT_EQ(g.link(l).other(b), a);
}

TEST(Graph, AdjacencyIsSymmetric) {
  Graph g;
  const NodeId a = g.add_node(NodeKind::kSwitch);
  const NodeId b = g.add_node(NodeKind::kSwitch);
  const NodeId c = g.add_node(NodeKind::kSwitch);
  g.add_link(a, b, 100_Gbps);
  g.add_link(a, c, 100_Gbps);
  EXPECT_EQ(g.degree(a), 2u);
  EXPECT_EQ(g.degree(b), 1u);
  EXPECT_EQ(g.neighbors(b)[0].neighbor, a);
  EXPECT_EQ(g.neighbors(a)[0].neighbor, b);
  EXPECT_EQ(g.neighbors(a)[1].neighbor, c);
}

TEST(Graph, NodesOfKindAndTier) {
  Graph g;
  g.add_node(NodeKind::kHost, 0);
  g.add_node(NodeKind::kSwitch, 1);
  g.add_node(NodeKind::kSwitch, 2);
  g.add_node(NodeKind::kOpticalCircuitSwitch, 2);
  EXPECT_EQ(g.nodes_of_kind(NodeKind::kSwitch).size(), 2u);
  EXPECT_EQ(g.nodes_of_kind(NodeKind::kOpticalCircuitSwitch).size(), 1u);
  EXPECT_EQ(g.nodes_at_tier(2).size(), 2u);
  EXPECT_EQ(g.nodes_at_tier(5).size(), 0u);
}

TEST(Graph, InvalidLinksThrow) {
  Graph g;
  const NodeId a = g.add_node(NodeKind::kHost);
  EXPECT_THROW(g.add_link(a, 99, 100_Gbps), std::out_of_range);
  EXPECT_THROW(g.add_link(a, a, 100_Gbps), std::invalid_argument);
  const NodeId b = g.add_node(NodeKind::kHost);
  EXPECT_THROW(g.add_link(a, b, Gbps{0.0}), std::invalid_argument);
}

}  // namespace
}  // namespace netpp
