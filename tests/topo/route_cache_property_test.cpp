// Property test for the route cache's one load-bearing claim: after ANY
// sequence of node/link enable/disable toggles, a cached lookup returns
// exactly what a Router built from scratch on the same masks returns —
// same status, same paths, element-wise. The cache never sees the toggles
// directly (epoch-versioned lazy invalidation), so this exercises the
// flush path, the symmetry canonicalization under degraded attachment
// links, and pool reuse across generations.
#include <gtest/gtest.h>

#include <vector>

#include "netpp/sim/random.h"
#include "netpp/topo/builders.h"
#include "netpp/topo/route_cache.h"

namespace netpp {
namespace {

using namespace netpp::literals;

/// A Router constructed from scratch with the given masks applied — the
/// memoization-free ground truth.
Router fresh_router(const BuiltTopology& topo,
                    const std::vector<bool>& node_on,
                    const std::vector<bool>& link_on) {
  Router router{topo.graph};
  for (NodeId n = 0; n < topo.graph.num_nodes(); ++n) {
    if (!node_on[n]) router.set_node_enabled(n, false);
  }
  for (LinkId l = 0; l < topo.graph.num_links(); ++l) {
    if (!link_on[l]) router.set_link_enabled(l, false);
  }
  return router;
}

void expect_same(const RouteResult& cached, const RouteResult& truth,
                 NodeId src, NodeId dst) {
  ASSERT_EQ(cached.status, truth.status) << "pair " << src << "->" << dst;
  ASSERT_EQ(cached.paths.size(), truth.paths.size())
      << "pair " << src << "->" << dst;
  for (std::size_t i = 0; i < truth.paths.size(); ++i) {
    EXPECT_EQ(cached.paths[i].links, truth.paths[i].links)
        << "pair " << src << "->" << dst << " path " << i;
  }
}

/// Runs `rounds` rounds of random toggles on one live Router + RouteCache;
/// after each round compares sampled pairs against a fresh Router.
void toggle_sweep(const BuiltTopology& topo, std::uint64_t seed, int rounds,
                  int pairs_per_round) {
  Rng rng{seed};
  Router live{topo.graph};
  RouteCache cache{live, RouteCache::Config{}};

  std::vector<bool> node_on(topo.graph.num_nodes(), true);
  std::vector<bool> link_on(topo.graph.num_links(), true);
  const auto num_hosts = static_cast<std::int64_t>(topo.hosts.size());

  for (int round = 0; round < rounds; ++round) {
    // 1-4 toggles per round: links, transit switches, and occasionally a
    // host node (endpoints are exempt from the node mask, but its uplink's
    // far end isn't — the canonicalization must notice).
    const int toggles = static_cast<int>(rng.uniform_int(1, 4));
    for (int t = 0; t < toggles; ++t) {
      switch (rng.uniform_int(0, 2)) {
        case 0: {
          const auto l = static_cast<LinkId>(rng.uniform_int(
              0, static_cast<std::int64_t>(topo.graph.num_links()) - 1));
          link_on[l] = !link_on[l];
          live.set_link_enabled(l, link_on[l]);
          break;
        }
        case 1: {
          const auto i = static_cast<std::size_t>(rng.uniform_int(
              0, static_cast<std::int64_t>(topo.switches.size()) - 1));
          const NodeId n = topo.switches[i];
          node_on[n] = !node_on[n];
          live.set_node_enabled(n, node_on[n]);
          break;
        }
        default: {
          const auto i = static_cast<std::size_t>(
              rng.uniform_int(0, num_hosts - 1));
          const NodeId n = topo.hosts[i];
          node_on[n] = !node_on[n];
          live.set_node_enabled(n, node_on[n]);
          break;
        }
      }
    }

    const Router truth = fresh_router(topo, node_on, link_on);
    for (int p = 0; p < pairs_per_round; ++p) {
      const NodeId src = topo.hosts[static_cast<std::size_t>(
          rng.uniform_int(0, num_hosts - 1))];
      const NodeId dst = topo.hosts[static_cast<std::size_t>(
          rng.uniform_int(0, num_hosts - 1))];
      if (src == dst) continue;
      expect_same(cache.find_paths_copy(src, dst),
                  truth.find_paths(src, dst), src, dst);
      // Per-flow selection must agree too (same set, same hash).
      const auto picked = cache.route(src, dst, /*flow_id=*/round * 131u + p);
      const auto direct = truth.ecmp_route(src, dst, round * 131u + p);
      ASSERT_EQ(picked.has_value(), direct.has_value());
      if (picked) EXPECT_EQ(picked->links(), direct->links);
    }
  }
}

TEST(RouteCacheProperty, FatTreeK4ToggleSweep) {
  const auto topo = build_fat_tree(4, 400_Gbps);
  for (std::uint64_t seed : {1ull, 2ull, 3ull, 4ull}) {
    toggle_sweep(topo, 0xA11CEull + seed, /*rounds=*/24, /*pairs_per_round=*/24);
  }
}

TEST(RouteCacheProperty, FatTreeK6ToggleSweep) {
  const auto topo = build_fat_tree(6, 400_Gbps);
  for (std::uint64_t seed : {1ull, 2ull}) {
    toggle_sweep(topo, 0xB0B5ull + seed, /*rounds=*/12, /*pairs_per_round=*/16);
  }
}

TEST(RouteCacheProperty, LeafSpineToggleSweep) {
  const auto topo = build_leaf_spine(4, 4, 4, 100_Gbps, 100_Gbps);
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    toggle_sweep(topo, 0xCAFEull + seed, /*rounds=*/20, /*pairs_per_round=*/20);
  }
}

TEST(RouteCacheProperty, BackboneRingToggleSweep) {
  // Non-fat-tree shape: multi-hop rings where symmetry canonicalization
  // still applies to the single-homed access hosts.
  const auto topo = build_backbone_ring(10, 3, 400_Gbps);
  toggle_sweep(topo, 0xD1A1ull, /*rounds=*/20, /*pairs_per_round=*/20);
}

}  // namespace
}  // namespace netpp
