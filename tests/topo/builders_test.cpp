#include "netpp/topo/builders.h"

#include <gtest/gtest.h>

namespace netpp {
namespace {

using namespace netpp::literals;

TEST(FatTreeBuilder, K4Counts) {
  // k=4: 16 hosts, 4 core + 8 agg + 8 edge = 20 switches,
  // links: 16 host + 16 edge-agg + 16 agg-core = 48.
  const auto topo = build_fat_tree(4, 400_Gbps);
  EXPECT_EQ(topo.hosts.size(), 16u);
  EXPECT_EQ(topo.switches.size(), 20u);
  EXPECT_EQ(topo.graph.num_links(), 48u);
}

TEST(FatTreeBuilder, MatchesClosedFormAcrossK) {
  for (int k : {2, 4, 6, 8}) {
    const auto topo = build_fat_tree(k, 100_Gbps);
    EXPECT_EQ(topo.hosts.size(), static_cast<std::size_t>(k * k * k / 4))
        << "k=" << k;
    EXPECT_EQ(topo.switches.size(), static_cast<std::size_t>(5 * k * k / 4))
        << "k=" << k;
  }
}

TEST(FatTreeBuilder, EverySwitchHasRadixK) {
  const int k = 4;
  const auto topo = build_fat_tree(k, 400_Gbps);
  for (NodeId sw : topo.switches) {
    EXPECT_EQ(topo.graph.degree(sw), static_cast<std::size_t>(k))
        << topo.graph.node(sw).name;
  }
}

TEST(FatTreeBuilder, HostsHaveOneLink) {
  const auto topo = build_fat_tree(4, 400_Gbps);
  for (NodeId host : topo.hosts) {
    EXPECT_EQ(topo.graph.degree(host), 1u);
  }
}

TEST(FatTreeBuilder, InterSwitchLinksAreOptical) {
  const auto topo = build_fat_tree(4, 400_Gbps);
  for (const auto& link : topo.graph.links()) {
    const bool host_link =
        topo.graph.node(link.a).kind == NodeKind::kHost ||
        topo.graph.node(link.b).kind == NodeKind::kHost;
    EXPECT_EQ(link.optical, !host_link);
  }
}

TEST(FatTreeBuilder, TiersAreLabelled) {
  const auto topo = build_fat_tree(4, 400_Gbps);
  EXPECT_EQ(topo.graph.nodes_at_tier(0).size(), 16u);  // hosts
  EXPECT_EQ(topo.graph.nodes_at_tier(1).size(), 8u);   // edge
  EXPECT_EQ(topo.graph.nodes_at_tier(2).size(), 8u);   // agg
  EXPECT_EQ(topo.graph.nodes_at_tier(3).size(), 4u);   // core
}

TEST(FatTreeBuilder, InvalidKThrows) {
  EXPECT_THROW(build_fat_tree(3, 100_Gbps), std::invalid_argument);
  EXPECT_THROW(build_fat_tree(0, 100_Gbps), std::invalid_argument);
}

TEST(LeafSpineBuilder, Counts) {
  const auto topo = build_leaf_spine(4, 2, 8, 100_Gbps, 400_Gbps);
  EXPECT_EQ(topo.hosts.size(), 32u);
  EXPECT_EQ(topo.switches.size(), 6u);
  // Links: 4*2 fabric + 32 host.
  EXPECT_EQ(topo.graph.num_links(), 40u);
}

TEST(LeafSpineBuilder, FabricSpeedsDiffer) {
  const auto topo = build_leaf_spine(2, 2, 1, 100_Gbps, 400_Gbps);
  for (const auto& link : topo.graph.links()) {
    if (link.optical) {
      EXPECT_DOUBLE_EQ(link.capacity.value(), 400.0);
    } else {
      EXPECT_DOUBLE_EQ(link.capacity.value(), 100.0);
    }
  }
}

TEST(LeafSpineBuilder, InvalidDimensionsThrow) {
  EXPECT_THROW(build_leaf_spine(0, 2, 8, 100_Gbps, 400_Gbps),
               std::invalid_argument);
}

TEST(BackboneBuilder, RingStructure) {
  const auto topo = build_backbone_ring(8, 0, 400_Gbps);
  EXPECT_EQ(topo.switches.size(), 8u);
  EXPECT_EQ(topo.hosts.size(), 8u);
  // 8 ring links + 8 access links.
  EXPECT_EQ(topo.graph.num_links(), 16u);
}

TEST(BackboneBuilder, ChordsAddShortcuts) {
  const auto plain = build_backbone_ring(10, 0, 400_Gbps);
  const auto chorded = build_backbone_ring(10, 3, 400_Gbps);
  EXPECT_GT(chorded.graph.num_links(), plain.graph.num_links());
}

TEST(BackboneBuilder, TooFewPopsThrows) {
  EXPECT_THROW(build_backbone_ring(2, 0, 400_Gbps), std::invalid_argument);
}

}  // namespace
}  // namespace netpp
