#include "netpp/topo/route_cache.h"

#include <gtest/gtest.h>

#include <set>

#include "netpp/topo/builders.h"

namespace netpp {
namespace {

using namespace netpp::literals;

class RouteCacheFatTree : public ::testing::Test {
 protected:
  BuiltTopology topo_ = build_fat_tree(4, 400_Gbps);
  Router router_{topo_.graph};
  RouteCache cache_{router_, RouteCache::Config{}};
};

TEST_F(RouteCacheFatTree, FirstLookupMissesRepeatHits) {
  const NodeId src = topo_.hosts[0];
  const NodeId dst = topo_.hosts.back();
  (void)cache_.find_paths(src, dst);
  auto stats = cache_.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.entries, 1u);

  (void)cache_.find_paths(src, dst);
  stats = cache_.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
}

TEST_F(RouteCacheFatTree, SymmetryKeySharesEntriesAcrossHostPairs) {
  // Hosts 0 and 1 hang off the same edge switch, as do the last two hosts:
  // all four cross-pod combinations canonicalize to one (ToR, ToR) entry.
  const NodeId a0 = topo_.hosts[0], a1 = topo_.hosts[1];
  const NodeId b0 = topo_.hosts[topo_.hosts.size() - 2];
  const NodeId b1 = topo_.hosts.back();
  (void)cache_.find_paths(a0, b0);
  (void)cache_.find_paths(a0, b1);
  (void)cache_.find_paths(a1, b0);
  (void)cache_.find_paths(a1, b1);
  const auto stats = cache_.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 3u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST_F(RouteCacheFatTree, ResidentSetScalesWithTorPairsNotHostPairs) {
  // All ordered host pairs of the k=4 tree: 16 x 15 = 240 queries. With
  // (ToR, ToR) canonical keys the resident set is bounded by ordered pairs
  // of the 8 edge switches (56) plus the 8 same-ToR keys.
  std::uint64_t queries = 0;
  for (NodeId s : topo_.hosts) {
    for (NodeId d : topo_.hosts) {
      if (s == d) continue;
      ASSERT_TRUE(cache_.find_paths(s, d).ok());
      ++queries;
    }
  }
  const auto stats = cache_.stats();
  EXPECT_EQ(queries, 240u);
  EXPECT_LE(stats.entries, 64u);
  EXPECT_EQ(stats.misses, stats.entries);
  EXPECT_EQ(stats.hits, queries - stats.misses);
  EXPECT_GT(stats.pool_bytes, 0u);
}

TEST_F(RouteCacheFatTree, FindPathsCopyMatchesRouterExactly) {
  for (const NodeId dst : {topo_.hosts[1], topo_.hosts[5], topo_.hosts.back()}) {
    const auto cached = cache_.find_paths_copy(topo_.hosts[0], dst);
    const auto fresh = router_.find_paths(topo_.hosts[0], dst);
    ASSERT_EQ(cached.status, fresh.status);
    ASSERT_EQ(cached.paths.size(), fresh.paths.size());
    for (std::size_t i = 0; i < fresh.paths.size(); ++i) {
      EXPECT_EQ(cached.paths[i].links, fresh.paths[i].links);
    }
  }
}

TEST_F(RouteCacheFatTree, RouteMatchesEcmpRouteSelection) {
  const NodeId src = topo_.hosts[0];
  const NodeId dst = topo_.hosts.back();
  for (std::uint64_t flow = 0; flow < 64; ++flow) {
    const auto cached = cache_.route(src, dst, flow);
    const auto direct = router_.ecmp_route(src, dst, flow);
    ASSERT_TRUE(cached.has_value());
    ASSERT_TRUE(direct.has_value());
    EXPECT_EQ(cached->links(), direct->links);
  }
}

TEST_F(RouteCacheFatTree, PathRefIndexedAccessMatchesMaterialized) {
  const auto view = cache_.find_paths(topo_.hosts[0], topo_.hosts.back());
  ASSERT_TRUE(view.ok());
  ASSERT_EQ(view.size(), 4u);  // 2 aggs x 2 cores in a k=4 tree
  std::set<std::vector<LinkId>> distinct;
  for (std::size_t i = 0; i < view.size(); ++i) {
    const auto ref = view.path(i);
    const auto links = ref.links();
    ASSERT_EQ(links.size(), ref.hops());
    for (std::size_t h = 0; h < ref.hops(); ++h) {
      EXPECT_EQ(ref.link(h), links[h]);
    }
    distinct.insert(links);
  }
  EXPECT_EQ(distinct.size(), view.size());
}

TEST_F(RouteCacheFatTree, SameEndpointIsOneTrivialPath) {
  const auto view = cache_.find_paths(topo_.hosts[3], topo_.hosts[3]);
  EXPECT_TRUE(view.ok());
  ASSERT_EQ(view.size(), 1u);
  EXPECT_EQ(view.path(0).hops(), 0u);
  // Trivial pairs never touch the table.
  EXPECT_EQ(cache_.stats().misses, 0u);
}

TEST_F(RouteCacheFatTree, InvalidEndpointReportedWithoutCaching) {
  const auto view = cache_.find_paths(NodeId{100000}, topo_.hosts[0]);
  EXPECT_EQ(view.status(), RouteStatus::kInvalidEndpoint);
  EXPECT_EQ(cache_.stats().misses, 0u);
  EXPECT_EQ(cache_.stats().entries, 0u);
}

TEST_F(RouteCacheFatTree, TopologyToggleFlushesOnNextLookup) {
  const NodeId src = topo_.hosts[0];
  const NodeId dst = topo_.hosts.back();
  const auto before = cache_.find_paths_copy(src, dst);
  ASSERT_TRUE(before.ok());

  // Disable one link of the cached set; the epoch bump invalidates lazily.
  router_.set_link_enabled(before.paths[0].links[2], false);
  EXPECT_EQ(cache_.stats().epoch_flushes, 0u);  // nothing observed yet

  const auto after = cache_.find_paths_copy(src, dst);
  const auto stats = cache_.stats();
  EXPECT_EQ(stats.epoch_flushes, 1u);
  EXPECT_EQ(stats.entries, 1u);  // rebuilt fresh
  const auto fresh = router_.find_paths(src, dst);
  ASSERT_EQ(after.status, fresh.status);
  ASSERT_EQ(after.paths.size(), fresh.paths.size());
  for (std::size_t i = 0; i < fresh.paths.size(); ++i) {
    EXPECT_EQ(after.paths[i].links, fresh.paths[i].links);
  }
  // The disabled link is gone from every surviving path.
  for (const auto& p : after.paths) {
    for (LinkId lid : p.links) EXPECT_NE(lid, before.paths[0].links[2]);
  }
}

TEST_F(RouteCacheFatTree, RevertedToggleStillFlushesOnce) {
  // Epoch comparison, not mask comparison: disable + re-enable is two
  // epoch bumps, so the next lookup flushes even though the masks are back
  // to the original state — and the result matches the original.
  const NodeId src = topo_.hosts[0];
  const NodeId dst = topo_.hosts.back();
  const auto before = cache_.find_paths_copy(src, dst);
  router_.set_link_enabled(0, false);
  router_.set_link_enabled(0, true);
  const auto after = cache_.find_paths_copy(src, dst);
  EXPECT_EQ(cache_.stats().epoch_flushes, 1u);
  ASSERT_EQ(after.paths.size(), before.paths.size());
  for (std::size_t i = 0; i < before.paths.size(); ++i) {
    EXPECT_EQ(after.paths[i].links, before.paths[i].links);
  }
}

TEST_F(RouteCacheFatTree, DisabledAttachmentLinkFallsBackToDirectKey) {
  // With a host's uplink down the pair is disconnected; the canonical key
  // must not route around the forced first hop via the symmetry shortcut.
  const NodeId src = topo_.hosts[0];
  const NodeId dst = topo_.hosts.back();
  const auto adj = topo_.graph.neighbors(src);
  ASSERT_EQ(adj.size(), 1u);
  router_.set_link_enabled(adj[0].link, false);
  const auto view = cache_.find_paths(src, dst);
  EXPECT_EQ(view.status(), RouteStatus::kDisconnected);
  // Other pairs under the same ToR pair still route.
  EXPECT_TRUE(cache_.find_paths(topo_.hosts[1], dst).ok());
}

TEST(RouteCacheLeafSpine, SwitchEndpointsBypassSymmetryKeying) {
  // Multi-homed nodes (switches queried as endpoints) keep their direct
  // key; results still match the Router.
  const auto topo = build_leaf_spine(3, 2, 2, 100_Gbps, 100_Gbps);
  Router router{topo.graph};
  RouteCache cache{router, RouteCache::Config{}};
  const NodeId leaf = topo.switches[0];
  const NodeId spine = topo.switches[topo.switches.size() - 1];
  const auto cached = cache.find_paths_copy(leaf, spine);
  const auto fresh = router.find_paths(leaf, spine);
  ASSERT_EQ(cached.status, fresh.status);
  ASSERT_EQ(cached.paths.size(), fresh.paths.size());
  for (std::size_t i = 0; i < fresh.paths.size(); ++i) {
    EXPECT_EQ(cached.paths[i].links, fresh.paths[i].links);
  }
}

}  // namespace
}  // namespace netpp
