#include "netpp/topo/routing.h"

#include <gtest/gtest.h>

#include <set>

#include "netpp/topo/builders.h"

namespace netpp {
namespace {

using namespace netpp::literals;

class RoutingFatTree : public ::testing::Test {
 protected:
  BuiltTopology topo_ = build_fat_tree(4, 400_Gbps);
  Router router_{topo_.graph};
};

TEST_F(RoutingFatTree, SameEdgePairIsTwoHops) {
  // Hosts 0 and 1 share an edge switch in pod 0.
  const auto path = router_.shortest_path(topo_.hosts[0], topo_.hosts[1]);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->hops(), 2u);
}

TEST_F(RoutingFatTree, CrossPodPairIsSixHops) {
  // Host 0 (pod 0) to the last host (pod 3): up to core and back down.
  const auto path =
      router_.shortest_path(topo_.hosts[0], topo_.hosts.back());
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->hops(), 6u);
}

TEST_F(RoutingFatTree, PathNodesAreConsistent) {
  const auto path =
      router_.shortest_path(topo_.hosts[0], topo_.hosts.back());
  ASSERT_TRUE(path.has_value());
  const auto nodes = path->nodes(topo_.graph);
  EXPECT_EQ(nodes.front(), topo_.hosts[0]);
  EXPECT_EQ(nodes.back(), topo_.hosts.back());
  EXPECT_EQ(nodes.size(), path->hops() + 1);
}

TEST_F(RoutingFatTree, EcmpEnumeratesCorePaths) {
  // Cross-pod in a k=4 fat tree: 4 equal-cost paths (2 aggs x 2 cores).
  const auto paths =
      router_.ecmp_paths(topo_.hosts[0], topo_.hosts.back(), 16);
  EXPECT_EQ(paths.size(), 4u);
  for (const auto& p : paths) EXPECT_EQ(p.hops(), 6u);
  // Paths must be distinct.
  std::set<std::vector<LinkId>> distinct;
  for (const auto& p : paths) distinct.insert(p.links);
  EXPECT_EQ(distinct.size(), paths.size());
}

TEST_F(RoutingFatTree, EcmpMaxPathsIsRespected) {
  const auto paths =
      router_.ecmp_paths(topo_.hosts[0], topo_.hosts.back(), 2);
  EXPECT_EQ(paths.size(), 2u);
}

TEST_F(RoutingFatTree, EcmpRouteIsDeterministicPerFlow) {
  const auto a =
      router_.ecmp_route(topo_.hosts[0], topo_.hosts.back(), 12345);
  const auto b =
      router_.ecmp_route(topo_.hosts[0], topo_.hosts.back(), 12345);
  ASSERT_TRUE(a && b);
  EXPECT_EQ(a->links, b->links);
}

TEST_F(RoutingFatTree, EcmpRouteSpreadsFlows) {
  std::set<std::vector<LinkId>> seen;
  for (std::uint64_t flow = 0; flow < 64; ++flow) {
    const auto p =
        router_.ecmp_route(topo_.hosts[0], topo_.hosts.back(), flow);
    ASSERT_TRUE(p.has_value());
    seen.insert(p->links);
  }
  EXPECT_GE(seen.size(), 3u);  // most of the 4 ECMP paths get used
}

TEST_F(RoutingFatTree, DisabledNodeIsRoutedAround) {
  const auto before =
      router_.ecmp_paths(topo_.hosts[0], topo_.hosts.back(), 16);
  ASSERT_EQ(before.size(), 4u);
  // Disable one core switch: half the cross-pod paths disappear.
  const auto cores = topo_.graph.nodes_at_tier(3);
  router_.set_node_enabled(cores[0], false);
  const auto after =
      router_.ecmp_paths(topo_.hosts[0], topo_.hosts.back(), 16);
  EXPECT_EQ(after.size(), 3u);
  for (const auto& p : after) {
    for (const NodeId n : p.nodes(topo_.graph)) EXPECT_NE(n, cores[0]);
  }
}

TEST_F(RoutingFatTree, DisabledLinkIsRoutedAround) {
  // Disabling the host's access link disconnects it.
  const auto& host_adj = topo_.graph.neighbors(topo_.hosts[0]);
  router_.set_link_enabled(host_adj[0].link, false);
  EXPECT_FALSE(
      router_.shortest_path(topo_.hosts[0], topo_.hosts[1]).has_value());
  EXPECT_TRUE(
      router_.shortest_path(topo_.hosts[1], topo_.hosts[2]).has_value());
}

TEST_F(RoutingFatTree, DisablingAllCoresDisconnectsPods) {
  for (NodeId core : topo_.graph.nodes_at_tier(3)) {
    router_.set_node_enabled(core, false);
  }
  // Intra-pod still fine; cross-pod dead.
  EXPECT_TRUE(
      router_.shortest_path(topo_.hosts[0], topo_.hosts[1]).has_value());
  EXPECT_FALSE(
      router_.shortest_path(topo_.hosts[0], topo_.hosts.back()).has_value());
}

TEST_F(RoutingFatTree, SelfRouteIsEmpty) {
  const auto path = router_.shortest_path(topo_.hosts[0], topo_.hosts[0]);
  ASSERT_TRUE(path.has_value());
  EXPECT_TRUE(path->empty());
}

TEST_F(RoutingFatTree, OutOfRangeEndpointsThrow) {
  EXPECT_THROW(router_.shortest_path(topo_.hosts[0], 100000),
               std::out_of_range);
}

TEST(Routing, FindPathsReportsStructuredStatus) {
  const auto topo = build_leaf_spine(2, 1, 1, 100_Gbps, 100_Gbps);
  Router router{topo.graph};

  // Healthy endpoints: kOk with at least one path.
  const auto ok = router.find_paths(topo.hosts[0], topo.hosts[1]);
  EXPECT_EQ(ok.status, RouteStatus::kOk);
  EXPECT_TRUE(ok.ok());
  EXPECT_FALSE(ok.paths.empty());

  // Bad input (endpoint does not exist) is distinguishable from a healthy
  // pair that is merely disconnected.
  const auto invalid = router.find_paths(topo.hosts[0], 100000);
  EXPECT_EQ(invalid.status, RouteStatus::kInvalidEndpoint);
  EXPECT_FALSE(invalid.ok());
  EXPECT_TRUE(invalid.paths.empty());

  router.set_node_enabled(topo.graph.nodes_at_tier(2).front(),
                          false);  // the only spine
  const auto cut = router.find_paths(topo.hosts[0], topo.hosts[1]);
  EXPECT_EQ(cut.status, RouteStatus::kDisconnected);
  EXPECT_FALSE(cut.ok());

  EXPECT_FALSE(router.connected(topo.hosts[0], topo.hosts[1]));
  EXPECT_TRUE(router.connected(topo.hosts[0], topo.hosts[0]));
}

TEST(Routing, EcmpPathsStillThrowsOnInvalidEndpoint) {
  // The legacy throwing API delegates to find_paths but keeps its contract.
  const auto topo = build_leaf_spine(2, 1, 1, 100_Gbps, 100_Gbps);
  Router router{topo.graph};
  EXPECT_THROW(router.ecmp_paths(topo.hosts[0], 100000), std::out_of_range);
  router.set_node_enabled(topo.graph.nodes_at_tier(2).front(), false);
  EXPECT_TRUE(router.ecmp_paths(topo.hosts[0], topo.hosts[1]).empty());
}

TEST(Routing, LongerEquallyCheapPathsOnRing) {
  // On an even ring, the two directions to the antipode are equal cost.
  const auto topo = build_backbone_ring(6, 0, 400_Gbps);
  Router router{topo.graph};
  const auto paths =
      router.ecmp_paths(topo.switches[0], topo.switches[3], 16);
  EXPECT_EQ(paths.size(), 2u);
}

}  // namespace
}  // namespace netpp
