#include "netpp/mech/parking.h"

#include <gtest/gtest.h>

#include <limits>

namespace netpp {
namespace {

using namespace netpp::literals;

AggregateLoadTrace constant_trace(double load, double duration) {
  AggregateLoadTrace trace;
  trace.times = {Seconds{0.0}};
  trace.loads = {load};
  trace.end = Seconds{duration};
  return trace;
}

/// ML-phase-like trace: idle compute phases with communication bursts.
AggregateLoadTrace phase_trace(int iterations, double burst_load) {
  AggregateLoadTrace trace;
  for (int k = 0; k < iterations; ++k) {
    trace.times.push_back(Seconds{k * 1.0});        // compute: idle
    trace.loads.push_back(0.0);
    trace.times.push_back(Seconds{k * 1.0 + 0.9});  // comm burst
    trace.loads.push_back(burst_load);
  }
  trace.end = Seconds{static_cast<double>(iterations)};
  return trace;
}

ParkingConfig default_config() {
  ParkingConfig cfg;
  cfg.model = SwitchPowerModel{};
  return cfg;
}

TEST(Parking, IdleTraceParksDownToMinimum) {
  const auto cfg = default_config();
  const auto result =
      simulate_parking_reactive(constant_trace(0.0, 10.0), cfg);
  EXPECT_NEAR(result.mean_active_pipelines, 1.0, 0.05);
  EXPECT_GT(result.savings_vs_all_on, 0.0);
  EXPECT_DOUBLE_EQ(result.dropped.value(), 0.0);
}

TEST(Parking, FullLoadKeepsEverythingOn) {
  const auto cfg = default_config();
  const int pipes = cfg.model.config().num_pipelines;
  const auto result =
      simulate_parking_reactive(constant_trace(1.0, 10.0), cfg);
  EXPECT_NEAR(result.mean_active_pipelines, pipes, 1e-9);
  // The circuit switch overhead makes it slightly *worse* than all-on.
  EXPECT_LT(result.savings_vs_all_on, 0.0);
}

TEST(Parking, ParkingSavesLeakageUnlikeRateAdaptation) {
  // At zero load, parked pipelines save their full share (leakage included),
  // so the floor power is chassis + ports + 1 pipeline + circuit switch.
  const auto cfg = default_config();
  const auto result =
      simulate_parking_reactive(constant_trace(0.0, 100.0), cfg);
  const auto& m = cfg.model;
  const double floor = m.chassis_power().value() +
                       0.30 * 750.0 +  // ports
                       m.pipeline_power(PipelineState{true, 1.0, 0.0}).value() +
                       cfg.circuit_switch_power.value();
  EXPECT_NEAR(result.average_power.value(), floor, 1.0);
}

TEST(Parking, ReactiveFollowsBursts) {
  const auto cfg = default_config();
  const auto result = simulate_parking_reactive(phase_trace(5, 0.9), cfg);
  // Should park during compute and wake for bursts: mean well below max,
  // above min.
  EXPECT_GT(result.mean_active_pipelines, 1.0);
  EXPECT_LT(result.mean_active_pipelines, 4.0);
  EXPECT_GT(result.wake_transitions, 0u);
  EXPECT_GT(result.park_transitions, 0u);
  EXPECT_GT(result.savings_vs_all_on, 0.10);
}

TEST(Parking, ReactiveBuffersDuringWake) {
  auto cfg = default_config();
  cfg.wake_latency = Seconds::from_milliseconds(10.0);
  const auto result = simulate_parking_reactive(phase_trace(3, 0.9), cfg);
  // The burst hits while pipelines are waking: traffic must be buffered.
  EXPECT_GT(result.max_buffered.value(), 0.0);
  EXPECT_GT(result.max_added_delay.value(), 0.0);
}

TEST(Parking, SmallBufferDropsDuringWake) {
  auto cfg = default_config();
  cfg.wake_latency = Seconds::from_milliseconds(50.0);
  cfg.buffer_capacity = Bits::from_bytes(1e3);  // absurdly small
  const auto result = simulate_parking_reactive(phase_trace(3, 0.9), cfg);
  EXPECT_GT(result.dropped.value(), 0.0);
}

TEST(Parking, PredictivePreWakingAvoidsBuffering) {
  auto cfg = default_config();
  cfg.wake_latency = Seconds::from_milliseconds(10.0);

  const auto trace = phase_trace(5, 0.9);
  // Forecast mirrors the trace exactly (ML predictability).
  std::vector<LoadForecast> forecast;
  for (std::size_t i = 0; i < trace.times.size(); ++i) {
    forecast.push_back(LoadForecast{trace.times[i], trace.loads[i]});
  }

  const auto reactive = simulate_parking_reactive(trace, cfg);
  const auto predictive = simulate_parking_predictive(trace, forecast, cfg);

  EXPECT_GT(reactive.max_buffered.value(), 0.0);
  EXPECT_NEAR(predictive.max_buffered.value(), 0.0, 1e-6);
  EXPECT_NEAR(predictive.max_added_delay.value(), 0.0, 1e-9);
  // Predictive still saves energy.
  EXPECT_GT(predictive.savings_vs_all_on, 0.10);
}

TEST(Parking, PredictiveEnergyCloseToReactive) {
  auto cfg = default_config();
  cfg.wake_latency = Seconds::from_milliseconds(1.0);
  const auto trace = phase_trace(5, 0.9);
  std::vector<LoadForecast> forecast;
  for (std::size_t i = 0; i < trace.times.size(); ++i) {
    forecast.push_back(LoadForecast{trace.times[i], trace.loads[i]});
  }
  const auto reactive = simulate_parking_reactive(trace, cfg);
  const auto predictive = simulate_parking_predictive(trace, forecast, cfg);
  EXPECT_NEAR(predictive.energy.value(), reactive.energy.value(),
              0.15 * reactive.energy.value());
}

TEST(Parking, ZeroWakeLatencyNeverBuffers) {
  auto cfg = default_config();
  cfg.wake_latency = Seconds{0.0};
  const auto result = simulate_parking_reactive(phase_trace(4, 0.95), cfg);
  EXPECT_NEAR(result.max_buffered.value(), 0.0, 1e-6);
  EXPECT_DOUBLE_EQ(result.dropped.value(), 0.0);
}

TEST(Parking, MinActiveIsRespected) {
  auto cfg = default_config();
  cfg.min_active = 2;
  const auto result =
      simulate_parking_reactive(constant_trace(0.0, 10.0), cfg);
  EXPECT_GE(result.mean_active_pipelines, 2.0 - 1e-9);
}

TEST(Parking, InvalidConfigsThrow) {
  auto cfg = default_config();
  cfg.hi_threshold = 0.5;
  cfg.lo_threshold = 0.6;  // lo >= hi
  EXPECT_THROW((void)simulate_parking_reactive(constant_trace(0.5, 1.0), cfg),
               std::invalid_argument);
  cfg = default_config();
  cfg.min_active = 0;
  EXPECT_THROW((void)simulate_parking_reactive(constant_trace(0.5, 1.0), cfg),
               std::invalid_argument);
  cfg = default_config();
  std::vector<LoadForecast> unsorted = {{Seconds{1.0}, 0.5},
                                        {Seconds{0.5}, 0.2}};
  EXPECT_THROW((void)
      simulate_parking_predictive(constant_trace(0.5, 2.0), unsorted, cfg),
      std::invalid_argument);
}

TEST(Parking, TraceValidation) {
  const auto cfg = default_config();
  AggregateLoadTrace empty;
  EXPECT_THROW((void)simulate_parking_reactive(empty, cfg), std::invalid_argument);
  AggregateLoadTrace bad;
  bad.times = {Seconds{0.0}, Seconds{0.0}};
  bad.loads = {0.1, 0.2};
  bad.end = Seconds{1.0};
  EXPECT_THROW((void)simulate_parking_reactive(bad, cfg), std::invalid_argument);
}

TEST(Parking, TraceValidationRejectsNonFiniteValues) {
  const auto cfg = default_config();
  // NaN slips through plain range comparisons; validate() must catch it.
  AggregateLoadTrace nan_load = constant_trace(0.5, 1.0);
  nan_load.loads[0] = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW((void)simulate_parking_reactive(nan_load, cfg),
               std::invalid_argument);
  AggregateLoadTrace inf_time = constant_trace(0.5, 1.0);
  inf_time.times[0] = Seconds{std::numeric_limits<double>::infinity()};
  EXPECT_THROW((void)simulate_parking_reactive(inf_time, cfg),
               std::invalid_argument);
  AggregateLoadTrace nan_end = constant_trace(0.5, 1.0);
  nan_end.end = Seconds{std::numeric_limits<double>::quiet_NaN()};
  EXPECT_THROW((void)simulate_parking_reactive(nan_end, cfg),
               std::invalid_argument);
}

TEST(Parking, ResilientWithNoRecallsMatchesReactiveExactly) {
  const auto cfg = default_config();
  const auto trace = phase_trace(4, 0.9);
  const auto reactive = simulate_parking_reactive(trace, cfg);
  const auto resilient = simulate_parking_reactive_resilient(trace, {}, cfg);
  EXPECT_EQ(resilient.energy.value(), reactive.energy.value());
  EXPECT_EQ(resilient.mean_active_pipelines, reactive.mean_active_pipelines);
  EXPECT_EQ(resilient.wake_transitions, reactive.wake_transitions);
  EXPECT_EQ(resilient.park_transitions, reactive.park_transitions);
  EXPECT_EQ(resilient.emergency_wakes, 0u);
}

TEST(Parking, EmergencyRecallWakesEveryPipeline) {
  const auto cfg = default_config();
  const int pipes = cfg.model.config().num_pipelines;
  // Idle trace: the reactive policy parks down to 1 pipeline; an emergency
  // recall mid-trace must force all of them awake and add the rerouted load.
  const auto trace = constant_trace(0.05, 10.0);
  std::vector<EmergencyRecall> recalls = {
      EmergencyRecall{Seconds{4.0}, Seconds{6.0}, 0.5}};
  const auto result =
      simulate_parking_reactive_resilient(trace, recalls, cfg);
  EXPECT_GE(result.emergency_wakes, static_cast<std::size_t>(pipes - 1));
  // 2 s of 10 s with all pipes on, the rest near 1: mean well above idle.
  const auto baseline = simulate_parking_reactive(trace, cfg);
  EXPECT_GT(result.mean_active_pipelines, baseline.mean_active_pipelines);
  EXPECT_LT(result.savings_vs_all_on, baseline.savings_vs_all_on);
}

TEST(Parking, EmergencyRecallValidation) {
  const auto cfg = default_config();
  const auto trace = constant_trace(0.2, 5.0);
  std::vector<EmergencyRecall> inverted = {
      EmergencyRecall{Seconds{2.0}, Seconds{1.0}, 0.1}};
  EXPECT_THROW(
      (void)simulate_parking_reactive_resilient(trace, inverted, cfg),
      std::invalid_argument);
  std::vector<EmergencyRecall> nan_load = {
      EmergencyRecall{Seconds{1.0}, Seconds{2.0},
                      std::numeric_limits<double>::quiet_NaN()}};
  EXPECT_THROW(
      (void)simulate_parking_reactive_resilient(trace, nan_load, cfg),
      std::invalid_argument);
}

}  // namespace
}  // namespace netpp
