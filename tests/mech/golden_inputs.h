// Deterministic input scenarios for the mechanism golden-equivalence suite.
//
// These inputs were fixed when the pre-refactor ("seed") simulators were
// still in place; golden_equivalence_test.cpp pins every simulator's outputs
// on them bit-for-bit. tools target `golden_record` re-prints the expected
// values should they ever need re-recording (only legitimate after a
// deliberate, documented behavior change).
#pragma once

#include <vector>

#include "netpp/mech/downrate.h"
#include "netpp/mech/eee.h"
#include "netpp/mech/parking.h"
#include "netpp/mech/rateadapt.h"
#include "netpp/units.h"

namespace netpp::golden {

inline PipelineLoadTrace pipeline_trace() {
  PipelineLoadTrace trace;
  trace.times = {Seconds{0.0},  Seconds{10.0}, Seconds{20.0},
                 Seconds{30.0}, Seconds{40.0}, Seconds{50.0}};
  trace.pipeline_loads = {
      {0.9, 0.8, 0.7, 0.6},    {0.2, 0.1, 0.05, 0.3}, {0.5, 0.5, 0.5, 0.5},
      {0.05, 0.9, 0.1, 0.2},   {0.0, 0.0, 0.0, 0.0},  {0.6, 0.55, 0.62, 0.58},
  };
  trace.end = Seconds{60.0};
  return trace;
}

inline RateAdaptConfig rateadapt_config(bool lanes) {
  RateAdaptConfig config;
  config.headroom = 0.10;
  config.min_frequency = 0.25;
  config.hysteresis = 0.05;
  if (lanes) config.lane_steps = {0.25, 0.5, 1.0};
  return config;
}

inline AggregateLoadTrace aggregate_trace() {
  AggregateLoadTrace trace;
  trace.times = {Seconds{0.0},  Seconds{5.0},  Seconds{10.0}, Seconds{15.0},
                 Seconds{20.0}, Seconds{25.0}, Seconds{30.0}, Seconds{35.0}};
  trace.loads = {0.9, 0.2, 0.1, 0.85, 0.3, 0.95, 0.05, 0.5};
  trace.end = Seconds{40.0};
  return trace;
}

inline ParkingConfig parking_config() {
  ParkingConfig config;
  config.wake_latency = Seconds{0.5};
  config.buffer_capacity = Bits::from_bytes(1e6);
  return config;
}

inline std::vector<LoadForecast> forecast() {
  return {{Seconds{0.0}, 0.9},  {Seconds{5.0}, 0.2},  {Seconds{15.0}, 0.8},
          {Seconds{20.0}, 0.3}, {Seconds{25.0}, 0.95}, {Seconds{30.0}, 0.05},
          {Seconds{35.0}, 0.5}};
}

inline std::vector<EmergencyRecall> recalls() {
  return {{Seconds{7.0}, Seconds{12.0}, 0.4},
          {Seconds{22.0}, Seconds{24.0}, 0.3}};
}

inline AggregateLoadTrace diurnal_trace() {
  AggregateLoadTrace trace;
  trace.loads = {0.9, 0.5, 0.2, 0.1, 0.15, 0.4, 0.8, 0.95};
  for (std::size_t i = 0; i < trace.loads.size(); ++i) {
    trace.times.push_back(Seconds{600.0 * static_cast<double>(i)});
  }
  trace.end = Seconds{600.0 * static_cast<double>(trace.loads.size())};
  return trace;
}

inline DownrateConfig downrate_config() {
  DownrateConfig config;
  config.gating_effectiveness = 0.6;
  return config;
}

inline EeeConfig eee_config(bool coalescing) {
  EeeConfig config;
  if (coalescing) {
    config.coalescing_timer = Seconds::from_microseconds(10.0);
    config.coalesce_frames = 3;
  }
  return config;
}

inline std::vector<EeeFrame> eee_frames() {
  const Bits mtu = Bits::from_bytes(1500.0);
  const Bits small = Bits::from_bytes(64.0);
  return {
      {Seconds{0.0}, mtu},
      {Seconds::from_microseconds(1.0), mtu},
      {Seconds::from_microseconds(2.0), small},
      {Seconds::from_microseconds(1000.0), mtu},
      {Seconds::from_microseconds(1001.0), mtu},
      {Seconds::from_microseconds(1003.0), mtu},
      {Seconds::from_microseconds(10000.0), small},
      {Seconds::from_microseconds(20000.0), mtu},
      {Seconds::from_microseconds(20000.5), mtu},
      {Seconds::from_microseconds(20007.0), mtu},
      {Seconds::from_microseconds(40000.0), small},
  };
}

inline Seconds eee_horizon() { return Seconds{0.05}; }

}  // namespace netpp::golden
