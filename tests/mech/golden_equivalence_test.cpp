// Golden equivalence suite: every refactored §4 mechanism simulator must
// reproduce the pre-refactor ("seed") outputs bit-identically on the fixed
// scenarios in golden_inputs.h. The expected values below were recorded by
// tests/mech/golden_record_main.cpp against the seed implementations, before
// the mechanisms moved onto the unified PowerStateTimeline / run_mechanism
// engine. Every comparison is exact (EXPECT_EQ on doubles, no tolerance):
// the refactor must preserve floating-point operation order, not just
// "approximately the same answer".
#include <gtest/gtest.h>

#include "golden_inputs.h"

namespace netpp {
namespace {

struct RateAdaptGolden {
  double energy_j = 0.0;
  double average_power_w = 0.0;
  double savings = 0.0;
  std::size_t transitions = 0;
  double mean_frequency = 0.0;
};

void expect_eq(const RateAdaptResult& r, const RateAdaptGolden& e) {
  EXPECT_EQ(r.energy.value(), e.energy_j);
  EXPECT_EQ(r.average_power.value(), e.average_power_w);
  EXPECT_EQ(r.savings_vs_none, e.savings);
  EXPECT_EQ(r.frequency_transitions, e.transitions);
  EXPECT_EQ(r.mean_frequency, e.mean_frequency);
}

TEST(GoldenEquivalence, RateAdaptationNone) {
  RateAdaptGolden e;
  e.energy_j = 0x1.49f4cp+15;  // 42234.375
  e.average_power_w = 0x1.5ff4p+9;  // 703.90625
  e.savings = 0x0p+0;  // 0
  e.transitions = 0;
  e.mean_frequency = 0x1p+0;  // 1
  expect_eq(simulate_rate_adaptation(golden::pipeline_trace(),
                                     golden::rateadapt_config(false),
                                     RateAdaptMode::kNone),
            e);
}

TEST(GoldenEquivalence, RateAdaptationGlobalAsic) {
  RateAdaptGolden e;
  e.energy_j = 0x1.37ecf33333333p+15;  // 39926.474999999999
  e.average_power_w = 0x1.4cb87ae147ae1p+9;  // 665.44124999999997
  e.savings = 0x1.bfa6ffc233e3p-5;  // 0.054645061043285259
  e.transitions = 20;
  e.mean_frequency = 0x1.446ff513cc1e1p-1;  // 0.63366666666666671
  expect_eq(simulate_rate_adaptation(golden::pipeline_trace(),
                                     golden::rateadapt_config(false),
                                     RateAdaptMode::kGlobalAsic),
            e);
}

TEST(GoldenEquivalence, RateAdaptationPerPipeline) {
  RateAdaptGolden e;
  e.energy_j = 0x1.312c2p+15;  // 39062.0625
  e.average_power_w = 0x1.4584666666666p+9;  // 651.03437499999995
  e.savings = 0x1.33a8be305fe78p-4;  // 0.075112097669256417
  e.transitions = 20;
  e.mean_frequency = 0x1.fc5f92c5f92c6p-2;  // 0.49645833333333333
  expect_eq(simulate_rate_adaptation(golden::pipeline_trace(),
                                     golden::rateadapt_config(false),
                                     RateAdaptMode::kPerPipeline),
            e);
}

TEST(GoldenEquivalence, RateAdaptationPerPipelineWithLanes) {
  RateAdaptGolden e;
  e.energy_j = 0x1.053a2p+15;  // 33437.0625
  e.average_power_w = 0x1.16a4666666666p+9;  // 557.28437499999995
  e.savings = 0x1.aa97da1f4a604p-3;  // 0.20829744728079913
  e.transitions = 20;
  e.mean_frequency = 0x1.fc5f92c5f92c6p-2;  // 0.49645833333333333
  expect_eq(simulate_rate_adaptation(golden::pipeline_trace(),
                                     golden::rateadapt_config(true),
                                     RateAdaptMode::kPerPipeline),
            e);
}

struct ParkingGolden {
  double energy_j = 0.0;
  double average_power_w = 0.0;
  double savings = 0.0;
  double mean_active = 0.0;
  std::size_t wakes = 0;
  std::size_t parks = 0;
  double max_buffered_bits = 0.0;
  double dropped_bits = 0.0;
  double max_added_delay_s = 0.0;
  std::size_t emergency_wakes = 0;
};

void expect_eq(const ParkingResult& r, const ParkingGolden& e) {
  EXPECT_EQ(r.energy.value(), e.energy_j);
  EXPECT_EQ(r.average_power.value(), e.average_power_w);
  EXPECT_EQ(r.savings_vs_all_on, e.savings);
  EXPECT_EQ(r.mean_active_pipelines, e.mean_active);
  EXPECT_EQ(r.wake_transitions, e.wakes);
  EXPECT_EQ(r.park_transitions, e.parks);
  EXPECT_EQ(r.max_buffered.value(), e.max_buffered_bits);
  EXPECT_EQ(r.dropped.value(), e.dropped_bits);
  EXPECT_EQ(r.max_added_delay.value(), e.max_added_delay_s);
  EXPECT_EQ(r.emergency_wakes, e.emergency_wakes);
}

TEST(GoldenEquivalence, ParkingReactive) {
  ParkingGolden e;
  e.energy_j = 0x1.9c5f8p+14;  // 26391.875
  e.average_power_w = 0x1.49e6p+9;  // 659.796875
  e.savings = 0x1.277a2aaefc9dp-4;  // 0.07213799165018675
  e.mean_active = 0x1.5666666666666p+1;  // 2.6749999999999998
  e.wakes = 6;
  e.parks = 7;
  e.max_buffered_bits = 0x1.e848p+22;  // 8000000
  e.dropped_bits = 0x1.8727b6bcap+44;  // 26879976000000
  e.max_added_delay_s = 0x1.4f8b588e368f1p-21;  // 6.25e-07
  expect_eq(simulate_parking_reactive(golden::aggregate_trace(),
                                      golden::parking_config()),
            e);
}

TEST(GoldenEquivalence, ParkingPredictive) {
  ParkingGolden e;
  e.energy_j = 0x1.97468p+14;  // 26065.625
  e.average_power_w = 0x1.45d2p+9;  // 651.640625
  e.savings = 0x1.5675572225038p-4;  // 0.083607998242144599
  e.mean_active = 0x1.4p+1;  // 2.5
  e.wakes = 7;
  e.parks = 8;
  expect_eq(simulate_parking_predictive(golden::aggregate_trace(),
                                        golden::forecast(),
                                        golden::parking_config()),
            e);
}

TEST(GoldenEquivalence, ParkingReactiveResilient) {
  ParkingGolden e;
  e.energy_j = 0x1.abaa8p+14;  // 27370.625
  e.average_power_w = 0x1.5622p+9;  // 684.265625
  e.savings = 0x1.6abdf98aa773p-5;  // 0.044280040155383893
  e.mean_active = 0x1.7e66666666666p+1;  // 2.9874999999999998
  e.wakes = 9;
  e.parks = 10;
  e.max_buffered_bits = 0x1.e848p+22;  // 8000000
  e.dropped_bits = 0x1.ac686d5b80001p+44;  // 29439968000000.004
  e.max_added_delay_s = 0x1.4f8b588e368f1p-21;  // 6.25e-07
  e.emergency_wakes = 3;
  expect_eq(simulate_parking_reactive_resilient(golden::aggregate_trace(),
                                                golden::recalls(),
                                                golden::parking_config()),
            e);
}

TEST(GoldenEquivalence, ResilientWithoutRecallsMatchesReactive) {
  const auto reactive = simulate_parking_reactive(golden::aggregate_trace(),
                                                  golden::parking_config());
  const auto resilient = simulate_parking_reactive_resilient(
      golden::aggregate_trace(), {}, golden::parking_config());
  EXPECT_EQ(reactive.energy.value(), resilient.energy.value());
  EXPECT_EQ(reactive.wake_transitions, resilient.wake_transitions);
  EXPECT_EQ(reactive.park_transitions, resilient.park_transitions);
  EXPECT_EQ(reactive.dropped.value(), resilient.dropped.value());
}

TEST(GoldenEquivalence, Downrating) {
  const auto r = simulate_downrating(golden::diurnal_trace(),
                                     golden::downrate_config());
  EXPECT_EQ(r.energy.value(), 0x1.3a88p+16);  // 80520
  EXPECT_EQ(r.nominal_energy.value(), 0x1.77p+16);  // 96000
  EXPECT_EQ(r.savings_fraction, 0x1.4a3d70a3d70a4p-3);  // 0.16125
  EXPECT_EQ(r.transitions, 3u);
  EXPECT_EQ(r.violation_time.value(), 0.0);
  EXPECT_EQ(r.outage_time.value(), 0x1.3333333333334p-3);  // 0.15
  EXPECT_EQ(r.mean_speed.value(), 0x1.068p+8);  // 262.5
}

struct EeeGolden {
  double energy_j = 0.0;
  double always_on_energy_j = 0.0;
  double savings = 0.0;
  double lpi_fraction = 0.0;
  double mean_added_delay_s = 0.0;
  double max_added_delay_s = 0.0;
  std::size_t wakes = 0;
  std::size_t frames = 0;
};

void expect_eq(const EeeResult& r, const EeeGolden& e) {
  EXPECT_EQ(r.energy.value(), e.energy_j);
  EXPECT_EQ(r.always_on_energy.value(), e.always_on_energy_j);
  EXPECT_EQ(r.energy_savings_fraction, e.savings);
  EXPECT_EQ(r.lpi_time_fraction, e.lpi_fraction);
  EXPECT_EQ(r.mean_added_delay.value(), e.mean_added_delay_s);
  EXPECT_EQ(r.max_added_delay.value(), e.max_added_delay_s);
  EXPECT_EQ(r.wake_transitions, e.wakes);
  EXPECT_EQ(r.frames, e.frames);
}

TEST(GoldenEquivalence, EeeLink) {
  EeeGolden e;
  e.energy_j = 0x1.49e1d337151dcp-6;  // 0.020134407296000009
  e.always_on_energy_j = 0x1.999999999999ap-3;  // 0.2
  e.savings = 0x1.cc74b6ff64b36p-1;  // 0.89932796352
  e.lpi_fraction = 0x1.ff9e20a9fe1cap-1;  // 0.99925329279999997
  e.mean_added_delay_s = 0x1.4d97916260c8cp-19;  // 2.4854545454547075e-06
  e.max_added_delay_s = 0x1.2ca5d05ea8p-18;  // 4.4800000000011497e-06
  e.wakes = 4;
  e.frames = 11;
  expect_eq(simulate_eee_link(golden::eee_config(false), golden::eee_frames(),
                              golden::eee_horizon()),
            e);
}

TEST(GoldenEquivalence, EeeLinkCoalescing) {
  EeeGolden e;
  e.energy_j = 0x1.49bf65f138e7ep-6;  // 0.020126199296000007
  e.always_on_energy_j = 0x1.999999999999ap-3;  // 0.2
  e.savings = 0x1.cc7a18124f1bcp-1;  // 0.89936900351999993
  e.lpi_fraction = 0x1.ffa41abf0290ap-1;  // 0.99929889279999995
  e.mean_added_delay_s = 0x1.c9ed2e1a25846p-18;  // 6.8236363636367435e-06
  e.max_added_delay_s = 0x1.e5de40bd8bp-17;  // 1.4480000000004212e-05
  e.wakes = 4;
  e.frames = 11;
  expect_eq(simulate_eee_link(golden::eee_config(true), golden::eee_frames(),
                              golden::eee_horizon()),
            e);
}

}  // namespace
}  // namespace netpp
