#include "netpp/mech/rateadapt.h"

#include <gtest/gtest.h>

namespace netpp {
namespace {

using namespace netpp::literals;

PipelineLoadTrace constant_trace(double load, int pipes, double duration) {
  PipelineLoadTrace trace;
  trace.times = {Seconds{0.0}};
  trace.pipeline_loads = {std::vector<double>(pipes, load)};
  trace.end = Seconds{duration};
  return trace;
}

RateAdaptConfig default_config() {
  RateAdaptConfig cfg;
  cfg.model = SwitchPowerModel{};
  return cfg;
}

TEST(RateAdapt, NoneModeMatchesEnvelope) {
  const auto cfg = default_config();
  // Idle trace, no adaptation: the switch draws its idle power (90% of max
  // with default fractions) the whole time.
  const auto result = simulate_rate_adaptation(
      constant_trace(0.0, cfg.model.config().num_pipelines, 10.0), cfg,
      RateAdaptMode::kNone);
  EXPECT_NEAR(result.average_power.value(),
              cfg.model.idle_power().value(), 1e-6);
  EXPECT_EQ(result.frequency_transitions, 0u);
  EXPECT_DOUBLE_EQ(result.savings_vs_none, 0.0);
}

TEST(RateAdapt, FullLoadLeavesNothingToSave) {
  const auto cfg = default_config();
  const int pipes = cfg.model.config().num_pipelines;
  const auto result = simulate_rate_adaptation(constant_trace(1.0, pipes, 5.0),
                                               cfg, RateAdaptMode::kPerPipeline);
  EXPECT_NEAR(result.savings_vs_none, 0.0, 1e-9);
  EXPECT_NEAR(result.mean_frequency, 1.0, 1e-9);
}

TEST(RateAdapt, IdleTraceSavesClockPower) {
  const auto cfg = default_config();
  const int pipes = cfg.model.config().num_pipelines;
  const auto result = simulate_rate_adaptation(constant_trace(0.0, pipes, 5.0),
                                               cfg, RateAdaptMode::kPerPipeline);
  // At min_frequency 0.25, the clock tree power drops by 75% of its share:
  // pipelines are 40% of 750 W, clock is 35% of that -> saving =
  // 0.75*0.35*0.40*750 = 78.75 W off the 675 W idle draw.
  EXPECT_NEAR(result.average_power.value(), 675.0 - 78.75, 1e-6);
  EXPECT_GT(result.savings_vs_none, 0.1);
}

TEST(RateAdapt, PerPipelineBeatsGlobalOnSkewedLoad) {
  const auto cfg = default_config();
  const int pipes = cfg.model.config().num_pipelines;
  // One hot pipeline, the rest idle.
  PipelineLoadTrace trace;
  trace.times = {Seconds{0.0}};
  std::vector<double> loads(pipes, 0.05);
  loads[0] = 0.9;
  trace.pipeline_loads = {loads};
  trace.end = Seconds{10.0};

  const auto global =
      simulate_rate_adaptation(trace, cfg, RateAdaptMode::kGlobalAsic);
  const auto per_pipe =
      simulate_rate_adaptation(trace, cfg, RateAdaptMode::kPerPipeline);
  EXPECT_LT(per_pipe.energy.value(), global.energy.value());
  EXPECT_GT(per_pipe.savings_vs_none, global.savings_vs_none);
}

TEST(RateAdapt, GlobalEqualsPerPipelineOnUniformLoad) {
  const auto cfg = default_config();
  const int pipes = cfg.model.config().num_pipelines;
  const auto trace = constant_trace(0.4, pipes, 5.0);
  const auto global =
      simulate_rate_adaptation(trace, cfg, RateAdaptMode::kGlobalAsic);
  const auto per_pipe =
      simulate_rate_adaptation(trace, cfg, RateAdaptMode::kPerPipeline);
  EXPECT_NEAR(global.energy.value(), per_pipe.energy.value(), 1e-6);
}

TEST(RateAdapt, SerDesDownRatingAddsSavings) {
  auto cfg = default_config();
  const int pipes = cfg.model.config().num_pipelines;
  const auto without = simulate_rate_adaptation(
      constant_trace(0.1, pipes, 5.0), cfg, RateAdaptMode::kPerPipeline);
  cfg.lane_steps = {0.25, 0.5, 1.0};
  const auto with = simulate_rate_adaptation(
      constant_trace(0.1, pipes, 5.0), cfg, RateAdaptMode::kPerPipeline);
  EXPECT_LT(with.energy.value(), without.energy.value());
  // Load 0.1 with 10% headroom fits the 0.25 lane step: SerDes at a quarter
  // power saves 0.75 * 0.30 * 750 = 168.75 W.
  EXPECT_NEAR(without.average_power.value() - with.average_power.value(),
              168.75, 1e-6);
}

TEST(RateAdapt, HysteresisLimitsTransitions) {
  auto cfg = default_config();
  const int pipes = cfg.model.config().num_pipelines;
  // Load oscillating inside a narrow band.
  PipelineLoadTrace trace;
  for (int i = 0; i < 50; ++i) {
    trace.times.push_back(Seconds{i * 0.1});
    trace.pipeline_loads.push_back(
        std::vector<double>(pipes, 0.50 + 0.01 * (i % 2)));
  }
  trace.end = Seconds{5.0};

  cfg.hysteresis = 0.001;
  const auto flappy =
      simulate_rate_adaptation(trace, cfg, RateAdaptMode::kPerPipeline);
  cfg.hysteresis = 0.10;
  const auto damped =
      simulate_rate_adaptation(trace, cfg, RateAdaptMode::kPerPipeline);
  EXPECT_GT(flappy.frequency_transitions, damped.frequency_transitions);
}

TEST(RateAdapt, UpwardMovesAlwaysHonored) {
  auto cfg = default_config();
  cfg.hysteresis = 0.5;  // huge band
  const int pipes = cfg.model.config().num_pipelines;
  PipelineLoadTrace trace;
  trace.times = {Seconds{0.0}, Seconds{1.0}};
  trace.pipeline_loads = {std::vector<double>(pipes, 0.1),
                          std::vector<double>(pipes, 0.9)};
  trace.end = Seconds{2.0};
  // Must not throw: the load spike forces the clock up despite hysteresis
  // (pipeline_power would reject load > frequency).
  const auto result =
      simulate_rate_adaptation(trace, cfg, RateAdaptMode::kPerPipeline);
  EXPECT_GT(result.frequency_transitions, 0u);
}

TEST(RateAdapt, TraceValidation) {
  const auto cfg = default_config();
  const int pipes = cfg.model.config().num_pipelines;
  PipelineLoadTrace empty;
  EXPECT_THROW((void)
      simulate_rate_adaptation(empty, cfg, RateAdaptMode::kNone),
      std::invalid_argument);

  PipelineLoadTrace bad_arity;
  bad_arity.times = {Seconds{0.0}};
  bad_arity.pipeline_loads = {std::vector<double>(pipes + 1, 0.0)};
  bad_arity.end = Seconds{1.0};
  EXPECT_THROW((void)
      simulate_rate_adaptation(bad_arity, cfg, RateAdaptMode::kNone),
      std::invalid_argument);

  auto bad_load = constant_trace(1.5, pipes, 1.0);
  EXPECT_THROW((void)
      simulate_rate_adaptation(bad_load, cfg, RateAdaptMode::kNone),
      std::invalid_argument);

  auto bad_end = constant_trace(0.5, pipes, 1.0);
  bad_end.end = Seconds{0.0};
  EXPECT_THROW((void)
      simulate_rate_adaptation(bad_end, cfg, RateAdaptMode::kNone),
      std::invalid_argument);
}

TEST(RateAdapt, SavingsGrowAsLoadShrinks) {
  const auto cfg = default_config();
  const int pipes = cfg.model.config().num_pipelines;
  double prev = 1.0;
  for (double load : {0.8, 0.6, 0.4, 0.2, 0.0}) {
    const auto result = simulate_rate_adaptation(
        constant_trace(load, pipes, 5.0), cfg, RateAdaptMode::kPerPipeline);
    EXPECT_LT(result.average_power.value() / cfg.model.max_power().value(),
              prev + 1e-12)
        << "load=" << load;
    prev = result.average_power.value() / cfg.model.max_power().value();
  }
}

}  // namespace
}  // namespace netpp
