// Tests for the shared run_mechanism driver: interval cutting (segment
// boundaries, wake completions, policy breakpoints), capacity-shortfall
// buffering, and the generically-filled MechanismReport.
#include "netpp/mech/mechanism.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "netpp/mech/load_trace.h"
#include "netpp/power/state_timeline.h"
#include "netpp/sim/engine.h"
#include "netpp/units.h"

namespace netpp {
namespace {

using namespace netpp::literals;

LoadTrace step_trace() {
  // One channel: busy, idle, busy.
  LoadTrace trace;
  trace.times = {0.0_s, 2.0_s, 6.0_s};
  trace.loads = {{0.8}, {0.1}, {0.9}};
  trace.end = 8.0_s;
  return trace;
}

/// Gates its single component off when load < 0.5, on otherwise; prices
/// on-time at 100 W against an always-on 100 W baseline.
class ThresholdPolicy : public MechanismPolicy {
 public:
  explicit ThresholdPolicy(Seconds wake_latency = 0.0_s)
      : wake_latency_(wake_latency) {}

  [[nodiscard]] std::string_view name() const override { return "threshold"; }

  [[nodiscard]] PowerStateTimeline make_timeline(
      const LoadTrace& trace) override {
    PowerStateTimeline timeline{1, TransitionRules{wake_latency_},
                                trace.times.front()};
    timeline.set_power_model(
        [](std::span<const ComponentTrack> tracks) {
          return Watts{tracks[0].state == PowerState::kOff ? 0.0 : 100.0};
        },
        [](std::span<const ComponentTrack>) { return Watts{100.0}; });
    return timeline;
  }

  void observe(const LoadSegment& seg, PowerStateTimeline& timeline) override {
    observations.push_back(seg.at.value());
    if (seg.loads[0] < 0.5) {
      if (timeline.track(0).state == PowerState::kOn) timeline.request_off(0);
    } else {
      timeline.request_on(0);
    }
  }

  std::vector<double> observations;

 private:
  Seconds wake_latency_;
};

TEST(RunMechanism, FillsReportFromTimeline) {
  const LoadTrace trace = step_trace();
  ThresholdPolicy policy;
  const MechanismReport report = run_mechanism(trace, policy);

  EXPECT_EQ(report.mechanism, "threshold");
  EXPECT_DOUBLE_EQ(report.duration.value(), 8.0);
  // Off during the idle [2, 6) window, on elsewhere.
  EXPECT_DOUBLE_EQ(report.energy.value(), 4.0 * 100.0);
  EXPECT_DOUBLE_EQ(report.baseline_energy.value(), 8.0 * 100.0);
  EXPECT_DOUBLE_EQ(report.savings, 0.5);
  EXPECT_DOUBLE_EQ(report.average_power.value(), 50.0);
  EXPECT_EQ(report.wake_transitions, 1u);
  EXPECT_EQ(report.park_transitions, 1u);
  EXPECT_EQ(report.level_transitions, 0u);
  EXPECT_EQ(report.transitions(), 2u);
  EXPECT_DOUBLE_EQ(report.residency[static_cast<std::size_t>(PowerState::kOn)]
                       .value(),
                   4.0);
  EXPECT_DOUBLE_EQ(report.residency[static_cast<std::size_t>(PowerState::kOff)]
                       .value(),
                   4.0);
  EXPECT_DOUBLE_EQ(report.mean_on_components, 0.5);
  EXPECT_DOUBLE_EQ(report.mean_level, 1.0);
  // No buffering requested: loss accounting untouched.
  EXPECT_DOUBLE_EQ(report.max_buffered.value(), 0.0);
  EXPECT_DOUBLE_EQ(report.dropped.value(), 0.0);
}

TEST(RunMechanism, ObservesEverySegmentBoundary) {
  const LoadTrace trace = step_trace();
  ThresholdPolicy policy;
  (void)run_mechanism(trace, policy);
  EXPECT_EQ(policy.observations, (std::vector<double>{0.0, 2.0, 6.0}));
}

TEST(RunMechanism, CutsIntervalsAtWakeCompletions) {
  const LoadTrace trace = step_trace();
  ThresholdPolicy policy{1.5_s};
  const MechanismReport report = run_mechanism(trace, policy);

  // The wake requested at t=6 completes at 7.5, so the driver re-observes
  // there; [6, 7.5) draws waking (idle) power, which is still 100 W here.
  EXPECT_EQ(policy.observations, (std::vector<double>{0.0, 2.0, 6.0, 7.5}));
  EXPECT_DOUBLE_EQ(
      report.residency[static_cast<std::size_t>(PowerState::kWaking)].value(),
      1.5);
  EXPECT_DOUBLE_EQ(
      report.residency[static_cast<std::size_t>(PowerState::kOn)].value(),
      2.0 + 0.5);
}

TEST(RunMechanism, CutsIntervalsAtPolicyBreakpoints) {
  class BreakpointPolicy : public ThresholdPolicy {
   public:
    [[nodiscard]] double next_breakpoint(double t) const override {
      return t + 1e-15 < 3.0 ? 3.0 : std::numeric_limits<double>::infinity();
    }
  };

  const LoadTrace trace = step_trace();
  BreakpointPolicy policy;
  (void)run_mechanism(trace, policy);
  EXPECT_EQ(policy.observations, (std::vector<double>{0.0, 2.0, 3.0, 6.0}));
}

TEST(RunMechanism, ConvenienceOverloadMatchesExplicitEngine) {
  const LoadTrace trace = step_trace();
  ThresholdPolicy a;
  ThresholdPolicy b;
  SimEngine engine;
  const MechanismReport with_engine = run_mechanism(engine, trace, a);
  const MechanismReport standalone = run_mechanism(trace, b);
  EXPECT_EQ(with_engine.energy.value(), standalone.energy.value());
  EXPECT_EQ(with_engine.transitions(), standalone.transitions());
  // The engine clock tracks the mechanism time through the trace end.
  EXPECT_DOUBLE_EQ(engine.now().value(), trace.end.value());
}

TEST(RunMechanism, RejectsInvalidTraces) {
  LoadTrace bad = step_trace();
  bad.loads[0][0] = 1.5;
  ThresholdPolicy policy;
  EXPECT_THROW((void)run_mechanism(bad, policy), std::invalid_argument);
}

/// Serves at fixed half capacity so a 0.8 offered load builds shortfall
/// buffer that later drains during the idle segment.
class HalfCapacityPolicy : public MechanismPolicy {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "half-capacity";
  }

  [[nodiscard]] PowerStateTimeline make_timeline(const LoadTrace&) override {
    return PowerStateTimeline{1, TransitionRules{}};
  }

  void observe(const LoadSegment&, PowerStateTimeline&) override {}

  [[nodiscard]] bool models_buffering() const override { return true; }
  [[nodiscard]] double capacity_fraction(
      const PowerStateTimeline&) const override {
    return 0.5;
  }
  [[nodiscard]] Bits buffer_capacity() const override { return Bits{40.0}; }
  [[nodiscard]] double nominal_capacity_bps() const override { return 100.0; }
};

TEST(RunMechanism, BuffersShortfallThenDrops) {
  // Offered 0.8 vs served 0.5 on a 100 bps device: the buffer fills at
  // 30 bits/s. It hits the 40-bit cap after 4/3 s; the rest of the busy
  // segment overflows: (2 - 4/3) * 30 = 20 bits dropped.
  LoadTrace trace;
  trace.times = {0.0_s, 2.0_s};
  trace.loads = {{0.8}, {0.1}};
  trace.end = 4.0_s;

  HalfCapacityPolicy policy;
  const MechanismReport report = run_mechanism(trace, policy);

  EXPECT_NEAR(report.max_buffered.value(), 40.0, 1e-9);
  EXPECT_NEAR(report.dropped.value(), 20.0, 1e-9);
  // Worst-case added delay: a full buffer over the served rate.
  EXPECT_NEAR(report.max_added_delay.value(), 40.0 / 50.0, 1e-9);
}

TEST(RunMechanism, DrainsBufferBeforeTraceEnd) {
  // One busy second builds 30 bits; the idle remainder drains at
  // (0.5 - 0.1) * 100 = 40 bits/s, so the buffer is empty by t = 1.75 and
  // nothing is dropped.
  LoadTrace trace;
  trace.times = {0.0_s, 1.0_s};
  trace.loads = {{0.8}, {0.1}};
  trace.end = 4.0_s;

  HalfCapacityPolicy policy;
  const MechanismReport report = run_mechanism(trace, policy);

  EXPECT_NEAR(report.max_buffered.value(), 30.0, 1e-9);
  EXPECT_DOUBLE_EQ(report.dropped.value(), 0.0);
}

TEST(RunMechanism, StartsMidTimelineWhenTraceDoes) {
  // A trace that starts at t=10 drives the engine clock from there.
  LoadTrace trace;
  trace.times = {10.0_s, 11.0_s};
  trace.loads = {{0.8}, {0.1}};
  trace.end = 12.0_s;

  ThresholdPolicy policy;
  SimEngine engine;
  const MechanismReport report = run_mechanism(engine, trace, policy);
  EXPECT_EQ(policy.observations, (std::vector<double>{10.0, 11.0}));
  EXPECT_DOUBLE_EQ(report.duration.value(), 2.0);
  EXPECT_DOUBLE_EQ(engine.now().value(), 12.0);
}

}  // namespace
}  // namespace netpp
