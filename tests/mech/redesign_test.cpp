#include "netpp/mech/redesign.h"

#include <gtest/gtest.h>

namespace netpp {
namespace {

using namespace netpp::literals;

TEST(GranularPipelines, BudgetGrowsWithGranularity) {
  const GranularPipelineModel model;
  EXPECT_NEAR(model.pipeline_budget(4).value(), 300.0, 1e-9);  // 40% of 750
  EXPECT_NEAR(model.pipeline_budget(8).value(), 300.0 * 1.05, 1e-9);
  EXPECT_NEAR(model.pipeline_budget(32).value(), 300.0 * 1.15, 1e-9);
  // Coarser than baseline: no credit.
  EXPECT_NEAR(model.pipeline_budget(2).value(), 300.0, 1e-9);
  EXPECT_THROW((void)model.pipeline_budget(0), std::invalid_argument);
}

TEST(GranularPipelines, PowerQuantizesToPipelines) {
  const GranularPipelineModel model;
  const double fixed = 750.0 * 0.60;
  // n=4, load 0.3: ceil(1.2) = 2 of 4 pipelines on.
  EXPECT_NEAR(model.power_at_load(4, 0.3).value(), fixed + 300.0 * 0.5,
              1e-9);
  // n=64, load 0.3: ceil(19.2)=20 of 64 -> much closer to 0.3.
  const double budget64 = 300.0 * (1.0 + 0.05 * 4.0);
  EXPECT_NEAR(model.power_at_load(64, 0.3).value(),
              fixed + budget64 * (20.0 / 64.0), 1e-9);
}

TEST(GranularPipelines, ZeroLoadParksEverything) {
  const GranularPipelineModel model;
  for (int n : {1, 4, 16, 64}) {
    EXPECT_NEAR(model.power_at_load(n, 0.0).value(), 450.0, 1e-9) << n;
  }
}

TEST(GranularPipelines, ExactBoundaryDoesNotOverProvision) {
  const GranularPipelineModel model;
  // load = k/n must power exactly k pipelines (ceil guard against fp).
  EXPECT_NEAR(model.power_at_load(4, 0.5).value(), 450.0 + 300.0 * 0.5,
              1e-9);
  EXPECT_NEAR(model.power_at_load(8, 0.25).value(),
              450.0 + 300.0 * 1.05 * 0.25, 1e-9);
}

TEST(GranularPipelines, EffectiveProportionality) {
  const GranularPipelineModel model;
  // P(1)=750, P(0)=450 at baseline: 40% proportional via parking alone.
  EXPECT_NEAR(model.effective_proportionality(4), 300.0 / 750.0, 1e-9);
  // Finer granularity: slightly better than 40% despite overhead? No -
  // the overhead inflates full power, so proportionality rises slightly
  // (bigger dynamic share) but average power may still suffer.
  EXPECT_GT(model.effective_proportionality(64),
            model.effective_proportionality(4));
}

TEST(GranularPipelines, FinerGranularityWinsAtPartialLoad) {
  const GranularPipelineModel model;
  // Active 10% of the time at 40% load (ML comm phase not saturating).
  const Watts coarse = model.duty_cycle_average(4, 0.1, 0.4);
  const Watts fine = model.duty_cycle_average(16, 0.1, 0.4);
  EXPECT_LT(fine.value(), coarse.value());
}

TEST(GranularPipelines, OverheadCapsUsefulGranularity) {
  GranularPipelineModel::Config cfg;
  cfg.overhead_per_doubling = 0.20;  // expensive duplication
  const GranularPipelineModel model{cfg};
  // With heavy overhead, very fine granularity loses at full-load duty.
  const int best = model.best_granularity(0.1, 1.0, 256);
  EXPECT_LE(best, 8);
}

TEST(GranularPipelines, BestGranularityAtPartialLoad) {
  const GranularPipelineModel model;  // 5% per doubling
  const int best = model.best_granularity(0.1, 0.35, 256);
  EXPECT_GT(best, 4);  // quantization relief beats the mild overhead
}

TEST(GranularPipelines, InvalidInputsThrow) {
  GranularPipelineModel::Config cfg;
  cfg.chassis_fraction = 0.5;  // sums != 1
  EXPECT_THROW(GranularPipelineModel{cfg}, std::invalid_argument);
  const GranularPipelineModel model;
  EXPECT_THROW((void)model.power_at_load(4, 1.5), std::invalid_argument);
  EXPECT_THROW((void)model.duty_cycle_average(4, -0.1), std::invalid_argument);
  EXPECT_THROW((void)model.best_granularity(0.1, 1.0, 2), std::invalid_argument);
}

TEST(CpoRetrofit, SavesOnTheBaselineCluster) {
  const CpoRetrofit cpo;  // 0.6x power, 80% proportional optics
  const double savings = cpo.savings_fraction(ClusterConfig{});
  EXPECT_GT(savings, 0.01);
  EXPECT_LT(savings, 0.10);
}

TEST(CpoRetrofit, NeutralConfigIsNoOp) {
  CpoRetrofit::Config cfg;
  cfg.power_factor = 1.0;
  cfg.optics_proportionality = 0.10;  // same as the cluster's network
  const CpoRetrofit cpo{cfg};
  EXPECT_NEAR(cpo.savings_fraction(ClusterConfig{}), 0.0, 1e-9);
}

TEST(CpoRetrofit, BothLeversContribute) {
  ClusterConfig base;
  CpoRetrofit::Config only_factor;
  only_factor.power_factor = 0.6;
  only_factor.optics_proportionality = base.network_proportionality;
  CpoRetrofit::Config only_prop;
  only_prop.power_factor = 1.0;
  only_prop.optics_proportionality = 0.8;
  const double from_factor = CpoRetrofit{only_factor}.savings_fraction(base);
  const double from_prop = CpoRetrofit{only_prop}.savings_fraction(base);
  const double both = CpoRetrofit{}.savings_fraction(base);
  EXPECT_GT(from_factor, 0.0);
  EXPECT_GT(from_prop, 0.0);
  EXPECT_GT(both, std::max(from_factor, from_prop));
}

TEST(CpoRetrofit, InvalidConfigsThrow) {
  CpoRetrofit::Config cfg;
  cfg.power_factor = 0.0;
  EXPECT_THROW(CpoRetrofit{cfg}, std::invalid_argument);
  cfg = CpoRetrofit::Config{};
  cfg.optics_proportionality = 1.5;
  EXPECT_THROW(CpoRetrofit{cfg}, std::invalid_argument);
}

}  // namespace
}  // namespace netpp
